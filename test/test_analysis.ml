(* The static lockset / MHP analyzer: unit tests on small programs and
   the soundness contract over the full bug corpus — every dynamically
   observed data race must be statically classified Unguarded or
   Ambiguous, and seeding LIFS with the hints must not lose any
   reproduction. *)

open Ksim.Program.Build
module Iid = Ksim.Access.Iid

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let check_names msg expected actual =
  Alcotest.(check (list string))
    msg expected
    (Analysis.Lockset.Names.elements actual)

let prog instrs = Ksim.Program.make ~name:"p" instrs

let point_at p label =
  match Analysis.Lockset.find (Analysis.Lockset.of_program p) label with
  | Some pt -> pt
  | None -> Alcotest.failf "no lockset point at %s" label

(* --- absaddr ---------------------------------------------------------- *)

let test_absaddr_of_instr () =
  let open Ksim.Instr in
  Alcotest.(check (option (pair string string)))
    "free is a whole-object write"
    (Some ("obj", "W"))
    (Option.map
       (fun (a, k) ->
         (Analysis.Absaddr.to_string a, Fmt.to_to_string pp_access_kind k))
       (Analysis.Absaddr.of_instr (Free { ptr = Reg "p" })));
  checkb "alloc is not an access" true
    (Analysis.Absaddr.of_instr
       (Alloc
          { dst = "p"; tag = "obj"; fields = []; slots = 0;
            leak_check = false })
    = None);
  checkb "store to a global" true
    (Analysis.Absaddr.of_instr (Store { dst = Global "g"; src = Const (Ksim.Value.Int 1) })
    = Some (Analysis.Absaddr.Global "g", Write))

let test_absaddr_alias () =
  let open Analysis.Absaddr in
  checkb "same global aliases" true (may_alias (Global "g") (Global "g"));
  checkb "distinct globals do not" false
    (may_alias (Global "g") (Global "h"));
  checkb "same field name aliases" true
    (may_alias (Field "state") (Field "state"));
  checkb "distinct fields do not" false
    (may_alias (Field "state") (Field "next"));
  checkb "slots alias slots" true (may_alias Slot Slot);
  checkb "field vs slot do not" false (may_alias (Field "state") Slot);
  checkb "whole aliases fields" true (may_alias Whole (Field "state"));
  checkb "whole aliases slots" true (may_alias Slot Whole);
  checkb "whole does not alias globals" false (may_alias Whole (Global "g"));
  checkb "read-read does not conflict" false
    (conflicting_kinds Ksim.Instr.Read Ksim.Instr.Read);
  checkb "read-write conflicts" true
    (conflicting_kinds Ksim.Instr.Read Ksim.Instr.Write);
  checkb "update-update conflicts" true
    (conflicting_kinds Ksim.Instr.Update Ksim.Instr.Update)

(* --- lockset ---------------------------------------------------------- *)

let test_lockset_straight_line () =
  let p =
    prog
      [ store "s0" (g "x") (cint 0);
        lock "l1" "m";
        store "s1" (g "x") (cint 1);
        unlock "u1" "m";
        store "s2" (g "x") (cint 2) ]
  in
  check_names "before lock" [] (point_at p "s0").must;
  check_names "inside lock" [ "m" ] (point_at p "s1").must;
  check_names "after unlock" [] (point_at p "s2").must;
  (* the Unlock instruction itself still executes holding the lock *)
  check_names "at unlock" [ "m" ] (point_at p "u1").must

let test_lockset_nested () =
  let p =
    prog
      [ lock "l1" "outer";
        lock "l2" "inner";
        store "s1" (g "x") (cint 1);
        unlock "u2" "inner";
        store "s2" (g "x") (cint 2);
        unlock "u1" "outer" ]
  in
  check_names "nested region" [ "inner"; "outer" ] (point_at p "s1").must;
  check_names "after inner unlock" [ "outer" ] (point_at p "s2").must

let test_lockset_reacquire () =
  let p =
    prog
      [ lock "l1" "m";
        store "s1" (g "x") (cint 1);
        unlock "u1" "m";
        lock "l2" "m";
        store "s2" (g "x") (cint 2);
        unlock "u2" "m" ]
  in
  check_names "first region" [ "m" ] (point_at p "s1").must;
  check_names "second region" [ "m" ] (point_at p "s2").must

let test_lockset_branch_merge () =
  (* the lock is taken on one path only: after the merge it is may-held
     but not must-held *)
  let p =
    prog
      [ load "ld" "r" (g "cond");
        branch_if "b" (Eq (reg "r", cint 0)) "merge";
        lock "l1" "m";
        store "s1" (g "x") (cint 1);
        store "merge" (g "x") (cint 2) ]
  in
  check_names "locked path" [ "m" ] (point_at p "s1").must;
  check_names "merge must" [] (point_at p "merge").must;
  check_names "merge may" [ "m" ] (point_at p "merge").may

let test_lockset_unreachable () =
  let p =
    prog
      [ lock "l1" "m";
        return "r1";
        store "dead" (g "x") (cint 1) ]
  in
  (* vacuously guarded: no execution reaches it, and the top element is
     the whole lock universe *)
  check_names "unreachable must = universe" [ "m" ]
    (point_at p "dead").must

let test_lockset_loop () =
  (* a loop body whose lock/unlock is balanced per iteration keeps a
     stable lockset at the head *)
  let p =
    prog
      [ assign "i0" "i" (cint 0);
        lock "head" "m";
        store "s1" (g "x") (cint 1);
        unlock "u1" "m";
        assign "inc" "i" (Add (reg "i", cint 1));
        branch_if "back" (Lt (reg "i", cint 3)) "head";
        store "out" (g "x") (cint 2) ]
  in
  check_names "loop body" [ "m" ] (point_at p "s1").must;
  check_names "after loop" [] (point_at p "out").must

(* --- mhp -------------------------------------------------------------- *)

let spec name ?(instrs = [ nop (name ^ "0") ]) () =
  { Ksim.Program.spec_name = name;
    context = Ksim.Program.Syscall { call = name; sysno = 0 };
    program = Ksim.Program.make ~name instrs;
    resources = [] }

let test_mhp () =
  let group =
    Ksim.Program.group ~name:"mhp"
      ~entries:
        [ ("worker", prog [ nop "w0" ]);
          ("orphan", prog [ nop "o0" ]) ]
      [ spec "init" ();
        spec "A" ~instrs:[ queue_work "A0" "worker" ] ();
        spec "B" () ]
  in
  let m = Analysis.Mhp.of_group ~serial:[ "init" ] group in
  let mhp = Analysis.Mhp.may_happen_in_parallel m in
  checkb "A ∥ B" true (mhp "A" "B");
  checkb "serial init ∦ A" false (mhp "init" "A");
  checkb "a thread never overlaps itself" false (mhp "A" "A");
  checkb "spawned entry ∥ B" true (mhp "worker" "B");
  checkb "entry overlaps itself (re-queue)" true (mhp "worker" "worker");
  checkb "entry overlaps serial too" true (mhp "worker" "init");
  checkb "unreachable entry excluded" true
    (Analysis.Mhp.find m "orphan" = None);
  checkb "unknown names are not parallel" false (mhp "A" "nosuch")

(* --- candidate classification ----------------------------------------- *)

let two_threads a_instrs b_instrs ~locks =
  Ksim.Program.group ~name:"pairs" ~locks
    ~globals:[ ("x", Ksim.Value.Int 0); ("cond", Ksim.Value.Int 0) ]
    [ spec "A" ~instrs:a_instrs (); spec "B" ~instrs:b_instrs () ]

let the_pair (r : Analysis.Candidates.result) =
  match r.pairs with
  | [ p ] -> p
  | ps -> Alcotest.failf "expected one pair, got %d" (List.length ps)

let test_classify_guarded () =
  let group =
    two_threads ~locks:[ "m" ]
      [ lock "A1" "m"; store "A2" (g "x") (cint 1); unlock "A3" "m" ]
      [ lock "B1" "m"; store "B2" (g "x") (cint 2); unlock "B3" "m" ]
  in
  let p = the_pair (Analysis.Candidates.analyze group) in
  checkb "guarded" true (p.cls = Analysis.Candidates.Guarded);
  Alcotest.(check (list string)) "witness" [ "m" ] p.witness

let test_classify_ambiguous () =
  let group =
    two_threads ~locks:[ "m" ]
      [ load "A0" "r" (g "cond");
        branch_if "A1" (Eq (reg "r", cint 0)) "A3";
        lock "A2" "m";
        store "A3" (g "x") (cint 1) ]
      [ lock "B1" "m"; store "B2" (g "x") (cint 2); unlock "B3" "m" ]
  in
  let r = Analysis.Candidates.analyze group in
  (* A0 reads cond, B never touches cond; the only conflicting pair is
     A3/B2 on x *)
  let p = the_pair r in
  checkb "ambiguous" true (p.cls = Analysis.Candidates.Ambiguous);
  Alcotest.(check (list string)) "witness" [ "m" ] p.witness

let test_classify_unguarded () =
  let group =
    two_threads ~locks:[]
      [ store "A1" (g "x") (cint 1) ]
      [ store "B1" (g "x") (cint 2) ]
  in
  let p = the_pair (Analysis.Candidates.analyze group) in
  checkb "unguarded" true (p.cls = Analysis.Candidates.Unguarded);
  checkb "no witness" true (p.witness = [])

let test_classify_filters () =
  (* read-read pairs and serial-thread pairs are not candidates *)
  let group =
    two_threads ~locks:[]
      [ load "A1" "r" (g "x") ]
      [ load "B1" "r" (g "x") ]
  in
  checki "read-read excluded" 0
    (List.length (Analysis.Candidates.analyze group).pairs);
  let group =
    two_threads ~locks:[]
      [ store "A1" (g "x") (cint 1) ]
      [ store "B1" (g "x") (cint 2) ]
  in
  checki "serial thread excluded" 0
    (List.length
       (Analysis.Candidates.analyze ~serial:[ "A" ] group).pairs)

(* --- hints and ranks --------------------------------------------------- *)

let test_hints_rank () =
  let group =
    two_threads ~locks:[ "m" ]
      [ lock "A1" "m"; store "A2" (g "x") (cint 1); unlock "A3" "m" ]
      [ lock "B1" "m"; store "B2" (g "x") (cint 2); unlock "B3" "m" ]
  in
  let h = Analysis.Summary.hints (Analysis.Candidates.analyze group) in
  checki "guarded pair ranks prunable" Analysis.Summary.guarded_rank
    (Analysis.Summary.rank h ~a:("A", "A2") ~b:("B", "B2"));
  checki "symmetric" Analysis.Summary.guarded_rank
    (Analysis.Summary.rank h ~a:("B", "B2") ~b:("A", "A2"));
  checkb "classify" true
    (Analysis.Summary.classify h ~a:("A", "A2") ~b:("B", "B2")
    = Some Analysis.Candidates.Guarded);
  checkb "unknown pair below unguarded, above guarded" true
    (let unknown = Analysis.Summary.rank h ~a:("A", "A9") ~b:("B", "B9") in
     unknown > 0 && unknown < Analysis.Summary.guarded_rank)

let test_stats () =
  let group =
    two_threads ~locks:[ "m" ]
      [ lock "A1" "m"; store "A2" (g "x") (cint 1); unlock "A3" "m" ]
      [ store "B1" (g "x") (cint 2) ]
  in
  let s = Analysis.Summary.stats (Analysis.Candidates.analyze group) in
  checki "threads" 2 s.n_threads;
  checki "pairs" 1 s.n_pairs;
  checki "guarded" 0 s.n_guarded;
  checki "unguarded" 1 s.n_unguarded

(* --- report JSON -------------------------------------------------------- *)

let test_json_escaping () =
  Alcotest.(check string)
    "escapes" "a\\\"b\\\\c\\nd\\u0001"
    (Analysis.Report_json.escape "a\"b\\c\nd\x01")

let test_json_shape () =
  let group =
    two_threads ~locks:[ "m" ]
      [ lock "A1" "m"; store "A2" (g "x") (cint 1); unlock "A3" "m" ]
      [ store "B1" (g "x") (cint 2) ]
  in
  let s = Analysis.Report_json.to_string (Analysis.Candidates.analyze group) in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      checkb (Fmt.str "report contains %s" needle) true (contains needle))
    [ "\"group\":\"pairs\""; "\"must_locks\":[\"m\"]";
      "\"class\":\"unguarded\""; "\"pruning_ratio\"" ]

(* --- LIFS integration --------------------------------------------------- *)

(* A guarded store pair plus an unguarded one: with hints, every
   candidate preemption around the guarded pair is skipped and counted,
   and the search result is unchanged. *)
let test_lifs_static_prune () =
  let group =
    two_threads ~locks:[ "m" ]
      [ lock "A1" "m"; store "A2" (g "x") (cint 1); unlock "A3" "m" ]
      [ lock "B1" "m"; store "B2" (g "x") (cint 2); unlock "B3" "m" ]
  in
  let hints = Analysis.Summary.hints (Analysis.Candidates.analyze group) in
  let search ?static_hints () =
    let vm = Hypervisor.Vm.create group in
    Aitia.Lifs.search ?static_hints ~max_interleavings:2 vm
      ~target:(fun _ -> true) ()
  in
  let plain = search () in
  let hinted = search ~static_hints:hints () in
  checkb "nothing fails either way" true
    (plain.found = None && hinted.found = None);
  checki "no static pruning without hints" 0 plain.stats.static_pruned;
  checkb "guarded candidates skipped" true
    (hinted.stats.static_pruned > 0);
  checkb "hinted explores no more schedules" true
    (hinted.stats.schedules <= plain.stats.schedules)

(* --- lock-order lint ----------------------------------------------------- *)

(* Serial prologue thread names of a case, as the CLI computes them. *)
let serial_names (case : Aitia.Diagnose.case) =
  List.concat_map
    (fun (s : Trace.Slicer.t) ->
      List.map (fun (e : Trace.History.episode) -> e.thread) s.setup)
    (Trace.Slicer.slices case.history)
  |> List.sort_uniq String.compare

let lint_of (bug : Bugs.Bug.t) =
  let case = bug.case () in
  Analysis.Lockorder.analyze ~serial:(serial_names case) case.group

let test_lockorder_abba () =
  let group =
    Ksim.Program.group ~name:"abba" ~locks:[ "a"; "b" ]
      [ spec "A"
          ~instrs:
            [ lock "A1" "a"; lock "A2" "b"; unlock "A3" "b";
              unlock "A4" "a" ]
          ();
        spec "B"
          ~instrs:
            [ lock "B1" "b"; lock "B2" "a"; unlock "B3" "a";
              unlock "B4" "b" ]
          () ]
  in
  let r = Analysis.Lockorder.analyze group in
  checki "two acquisition edges" 2 (List.length r.edges);
  (match r.cycles with
  | [ c ] ->
    Alcotest.(check (slist string compare))
      "cycle locks" [ "a"; "b" ] c.cycle_locks;
    checkb "witness edge per hop" true (List.length c.cycle_edges = 2);
    checkb "both hops must-held" true
      (List.for_all (fun (e : Analysis.Lockorder.edge) -> e.must)
         c.cycle_edges);
    checkb "schedulable (threads overlap)" true c.parallel
  | cs -> Alcotest.failf "expected one cycle, got %d" (List.length cs));
  checki "no inversions" 0 (List.length r.inversions)

let test_lockorder_consistent () =
  (* Both threads take a before b: edges exist, but no cycle. *)
  let group =
    Ksim.Program.group ~name:"consistent" ~locks:[ "a"; "b" ]
      [ spec "A"
          ~instrs:
            [ lock "A1" "a"; lock "A2" "b"; unlock "A3" "b";
              unlock "A4" "a" ]
          ();
        spec "B"
          ~instrs:
            [ lock "B1" "a"; lock "B2" "b"; unlock "B3" "b";
              unlock "B4" "a" ]
          () ]
  in
  let r = Analysis.Lockorder.analyze group in
  checkb "edges recorded" true (r.edges <> []);
  checkb "consistent order has no cycle" true (r.cycles = []);
  checkb "edges all a->b" true
    (List.for_all
       (fun (e : Analysis.Lockorder.edge) ->
         e.held = "a" && e.acquired = "b")
       r.edges)

let test_lockorder_serial_not_parallel () =
  (* The same ABBA pattern with one side serialized: the cycle is still
     in the graph but not schedulable. *)
  let group =
    Ksim.Program.group ~name:"abba-serial" ~locks:[ "a"; "b" ]
      [ spec "A"
          ~instrs:
            [ lock "A1" "a"; lock "A2" "b"; unlock "A3" "b";
              unlock "A4" "a" ]
          ();
        spec "B"
          ~instrs:
            [ lock "B1" "b"; lock "B2" "a"; unlock "B3" "a";
              unlock "B4" "b" ]
          () ]
  in
  let r = Analysis.Lockorder.analyze ~serial:[ "B" ] group in
  match r.cycles with
  | [ c ] -> checkb "cycle not schedulable" false c.parallel
  | cs -> Alcotest.failf "expected one cycle, got %d" (List.length cs)

let test_lint_fig1_clean () =
  let r = lint_of Bugs.Fig1_nullderef.bug in
  let ls = Analysis.Summary.lint_stats r in
  checkb "fig1 is clean" true (Analysis.Summary.clean ls);
  checki "no false cycles" 0 ls.n_cycles;
  checki "no false inversions" 0 ls.n_inversions

let test_lint_ext_lock_flagged () =
  let r = lint_of Bugs.Ext_lock_order.bug in
  let ls = Analysis.Summary.lint_stats r in
  checkb "ext-lock is flagged" false (Analysis.Summary.clean ls);
  match r.inversions with
  | [ v ] ->
    Alcotest.(check string) "serializing lock" "dev_lock" v.inv_lock;
    checkb "publisher and consumer differ" true
      (fst v.publisher <> fst v.consumer)
  | vs -> Alcotest.failf "expected one inversion, got %d" (List.length vs)

let test_lint_json_shape () =
  let s = Analysis.Report_json.lint_to_string (lint_of Bugs.Ext_lock_order.bug) in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      checkb (Fmt.str "lint json contains %s" needle) true (contains needle))
    [ "\"cycles\":[]"; "\"inversions\":["; "\"lock\":\"dev_lock\"";
      "\"witness_cycle\":[" ]

(* --- flip feasibility ----------------------------------------------------- *)

let test_flipfeas_prunable () =
  let open Analysis.Flipfeas in
  Alcotest.(check (option string))
    "infeasible prunes" (Some "infeasible: x")
    (prunable (Infeasible "x"));
  Alcotest.(check (option string))
    "preserves-failure prunes"
    (Some "preserves failure: y")
    (prunable (Preserves_failure "y"));
  Alcotest.(check (option string)) "unknown executes" None
    (prunable (Unknown "z"))

let test_flipfeas_identity_plan () =
  (* A plan that replays the failing order verbatim cannot enforce the
     reversed order: Infeasible.  The genuinely reordered plan for the
     same race touches the faulting slice: Unknown (must execute). *)
  let group =
    two_threads ~locks:[]
      [ store "a1" (g "x") (cint 1) ]
      [ load "b1" "v" (g "x") ]
  in
  let plan0 =
    Hypervisor.Schedule.plan
      [ Iid.make ~tid:0 ~label:"a1" ~occ:1;
        Iid.make ~tid:1 ~label:"b1" ~occ:1 ]
  in
  let o =
    Hypervisor.Controller.run
      (Ksim.Machine.create group)
      (Hypervisor.Schedule.plan_policy plan0)
  in
  let r =
    List.find
      (fun (r : Aitia.Race.t) -> r.first.iid.Iid.label = "a1")
      (Aitia.Race.of_trace o.trace)
  in
  let feas plan =
    Analysis.Flipfeas.analyze ~trace:o.trace ~plan ~first:r.first
      ~second:r.second
  in
  checkb "identity plan is infeasible" true
    (match
       feas (List.map (fun (e : Ksim.Machine.event) -> e.iid) o.trace)
     with
    | Analysis.Flipfeas.Infeasible _ -> true
    | _ -> false);
  let flipped = Aitia.Causality.flip_plan o.trace r in
  checkb "reordering the sliced pair stays unknown" true
    (match feas flipped.Hypervisor.Schedule.events with
    | Analysis.Flipfeas.Unknown _ -> true
    | _ -> false)

let test_flipfeas_nesting_depth () =
  let group =
    two_threads ~locks:[ "o"; "m" ]
      [ lock "A1" "o"; lock "A2" "m"; store "A3" (g "x") (cint 1);
        unlock "A4" "m"; unlock "A5" "o" ]
      [ load "B1" "v" (g "x") ]
  in
  let plan0 =
    Hypervisor.Schedule.plan
      (List.map
         (fun (tid, label) -> Iid.make ~tid ~label ~occ:1)
         [ (0, "A1"); (0, "A2"); (0, "A3"); (0, "A4"); (0, "A5");
           (1, "B1") ])
  in
  let o =
    Hypervisor.Controller.run
      (Ksim.Machine.create group)
      (Hypervisor.Schedule.plan_policy plan0)
  in
  let depth label =
    Analysis.Flipfeas.nesting_depth o.trace
      (Iid.make ~tid:0 ~label ~occ:1)
  in
  checki "store under two locks" 2 (depth "A3");
  checki "outer acquisition counts itself" 1 (depth "A1");
  checki "inner acquisition" 2 (depth "A2");
  checki "after both releases" 0
    (Analysis.Flipfeas.nesting_depth o.trace
       (Iid.make ~tid:1 ~label:"B1" ~occ:1))

(* --- corpus soundness ---------------------------------------------------- *)

(* One diagnosis pass per bug, plain and hinted, shared by the corpus
   tests below. *)
let corpus =
  lazy
    (List.map
       (fun (bug : Bugs.Bug.t) ->
         let case = bug.case () in
         let plain =
           Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
             case
         in
         let hinted =
           Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
             ~static_hints:true case
         in
         (bug, case, plain, hinted))
       Bugs.Registry.all)

(* Soundness: every data race LIFS observed dynamically — both endpoints
   executed, no common lock held — must be statically classified
   Unguarded or Ambiguous by the full-group analysis.  (A commonly
   locked pair may legitimately be Guarded: that is the
   critical-section-order case lockset reasoning proves race-free.) *)
let test_soundness (bug : Bugs.Bug.t) (case : Aitia.Diagnose.case)
    (plain : Aitia.Diagnose.report) () =
  match plain.lifs.found with
  | None -> Alcotest.failf "%s did not reproduce" bug.id
  | Some success ->
    let hints =
      Analysis.Summary.hints
        (Analysis.Candidates.analyze ~serial:[] case.group)
    in
    let final = success.outcome.final in
    let site (a : Ksim.Access.t) =
      (Ksim.Machine.thread_base final a.iid.Iid.tid, a.iid.Iid.label)
    in
    List.iter
      (fun (r : Aitia.Race.t) ->
        if
          Aitia.Race.occurred_in success.outcome.trace r
          && not (Aitia.Race.is_cs_order r)
        then
          match
            Analysis.Summary.classify hints ~a:(site r.first)
              ~b:(site r.second)
          with
          | Some Analysis.Candidates.Unguarded
          | Some Analysis.Candidates.Ambiguous -> ()
          | Some Analysis.Candidates.Guarded ->
            Alcotest.failf "%s: race %a classified Guarded" bug.id
              Aitia.Race.pp_short r
          | None ->
            Alcotest.failf "%s: race %a missed by the static analysis"
              bug.id Aitia.Race.pp_short r)
      success.races

(* Reproduction parity: the hinted search may explore a different number
   of schedules (usually fewer; the ordering heuristic can lose on an
   individual case) but must reproduce exactly what the plain search
   reproduces. *)
let test_hinted_parity (plain : Aitia.Diagnose.report)
    (hinted : Aitia.Diagnose.report) () =
  checkb "hinted reproduces" (Aitia.Diagnose.reproduced plain)
    (Aitia.Diagnose.reproduced hinted)

(* Chain parity: statically pruned flips are Benign by proof, so the
   hinted pipeline must build exactly the causality chain the plain one
   builds. *)
let chain_str (r : Aitia.Diagnose.report) =
  match r.chain with Some c -> Aitia.Chain.to_string c | None -> "-"

let test_chain_parity (bug : Bugs.Bug.t) (plain : Aitia.Diagnose.report)
    (hinted : Aitia.Diagnose.report) () =
  Alcotest.(check string)
    (bug.id ^ " chain identical under static hints")
    (chain_str plain) (chain_str hinted)

(* Bookkeeping of the flip-feasibility pruning: the stat equals the
   number of pruned entries, a pruned flip never ran (no outcome, not
   enforced, Benign), and the plain pipeline never prunes. *)
let test_pruning_consistency (bug : Bugs.Bug.t)
    (plain : Aitia.Diagnose.report) (hinted : Aitia.Diagnose.report) () =
  (match plain.causality with
  | None -> ()
  | Some ca ->
    checki (bug.id ^ " plain never prunes") 0
      ca.stats.flips_statically_pruned;
    checkb (bug.id ^ " plain entries all executed") true
      (List.for_all
         (fun (t : Aitia.Causality.tested) ->
           t.pruned = None && t.flip_outcome <> None)
         ca.tested));
  match hinted.causality with
  | None -> ()
  | Some ca ->
    let pruned =
      List.filter
        (fun (t : Aitia.Causality.tested) -> t.pruned <> None)
        ca.tested
    in
    checki (bug.id ^ " stat counts pruned entries")
      (List.length pruned) ca.stats.flips_statically_pruned;
    List.iter
      (fun (t : Aitia.Causality.tested) ->
        checkb (bug.id ^ " pruned flip never ran") true
          (t.flip_outcome = None);
        checkb (bug.id ^ " pruned flip not enforced") false t.enforced;
        checkb (bug.id ^ " pruned flip is Benign") true
          (t.verdict = Aitia.Causality.Benign))
      pruned

(* In aggregate the hints must pay for themselves: on the 22 real-world
   bugs, at least half reproduce with strictly fewer schedules. *)
let test_hinted_aggregate () =
  let real =
    List.filter
      (fun ((bug : Bugs.Bug.t), _, _, _) ->
        match bug.source with
        | Bugs.Bug.Cve _ | Bugs.Bug.Syzkaller _ -> true
        | Bugs.Bug.Figure _ | Bugs.Bug.Extension _ -> false)
      (Lazy.force corpus)
  in
  let improved =
    List.length
      (List.filter
         (fun (_, _, (p : Aitia.Diagnose.report),
               (h : Aitia.Diagnose.report)) ->
           h.lifs.stats.schedules < p.lifs.stats.schedules)
         real)
  in
  checkb
    (Fmt.str "%d of %d bugs explore strictly fewer schedules" improved
       (List.length real))
    true
    (2 * improved >= List.length real)

(* And the flip-feasibility pruning must pay for itself too: on the 22
   real-world bugs, at least 10 execute strictly fewer flips than the
   plain Causality Analysis runs. *)
let test_pruning_aggregate () =
  let real =
    List.filter
      (fun ((bug : Bugs.Bug.t), _, _, _) ->
        match bug.source with
        | Bugs.Bug.Cve _ | Bugs.Bug.Syzkaller _ -> true
        | Bugs.Bug.Figure _ | Bugs.Bug.Extension _ -> false)
      (Lazy.force corpus)
  in
  let flips (ca : Aitia.Causality.result option) =
    match ca with
    | None -> 0
    | Some ca ->
      List.length
        (List.filter
           (fun (t : Aitia.Causality.tested) -> t.pruned = None)
           ca.tested)
  in
  let improved =
    List.length
      (List.filter
         (fun (_, _, (p : Aitia.Diagnose.report),
               (h : Aitia.Diagnose.report)) ->
           p.causality <> None && h.causality <> None
           && flips h.causality < flips p.causality)
         real)
  in
  checkb
    (Fmt.str "%d of %d bugs execute strictly fewer flips" improved
       (List.length real))
    true (improved >= 10)

let corpus_cases () =
  List.concat_map
    (fun (bug, case, plain, hinted) ->
      [ Alcotest.test_case
          (bug.Bugs.Bug.id ^ " soundness") `Quick
          (test_soundness bug case plain);
        Alcotest.test_case
          (bug.Bugs.Bug.id ^ " hinted parity") `Quick
          (test_hinted_parity plain hinted);
        Alcotest.test_case
          (bug.Bugs.Bug.id ^ " chain parity") `Quick
          (test_chain_parity bug plain hinted);
        Alcotest.test_case
          (bug.Bugs.Bug.id ^ " pruning consistency") `Quick
          (test_pruning_consistency bug plain hinted) ])
    (Lazy.force corpus)

let () =
  Alcotest.run "analysis"
    [ ( "absaddr",
        [ Alcotest.test_case "of_instr" `Quick test_absaddr_of_instr;
          Alcotest.test_case "aliasing" `Quick test_absaddr_alias ] );
      ( "lockset",
        [ Alcotest.test_case "straight line" `Quick
            test_lockset_straight_line;
          Alcotest.test_case "nested" `Quick test_lockset_nested;
          Alcotest.test_case "re-acquire" `Quick test_lockset_reacquire;
          Alcotest.test_case "branch merge" `Quick
            test_lockset_branch_merge;
          Alcotest.test_case "unreachable" `Quick test_lockset_unreachable;
          Alcotest.test_case "loop" `Quick test_lockset_loop ] );
      ("mhp", [ Alcotest.test_case "relation" `Quick test_mhp ]);
      ( "candidates",
        [ Alcotest.test_case "guarded" `Quick test_classify_guarded;
          Alcotest.test_case "ambiguous" `Quick test_classify_ambiguous;
          Alcotest.test_case "unguarded" `Quick test_classify_unguarded;
          Alcotest.test_case "filters" `Quick test_classify_filters ] );
      ( "summary",
        [ Alcotest.test_case "hints and ranks" `Quick test_hints_rank;
          Alcotest.test_case "stats" `Quick test_stats ] );
      ( "json",
        [ Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "shape" `Quick test_json_shape ] );
      ( "lifs",
        [ Alcotest.test_case "static pruning" `Quick
            test_lifs_static_prune ] );
      ( "lockorder",
        [ Alcotest.test_case "ABBA cycle" `Quick test_lockorder_abba;
          Alcotest.test_case "consistent order" `Quick
            test_lockorder_consistent;
          Alcotest.test_case "serial not schedulable" `Quick
            test_lockorder_serial_not_parallel;
          Alcotest.test_case "fig1 clean" `Quick test_lint_fig1_clean;
          Alcotest.test_case "ext-lock flagged" `Quick
            test_lint_ext_lock_flagged;
          Alcotest.test_case "lint json shape" `Quick
            test_lint_json_shape ] );
      ( "flipfeas",
        [ Alcotest.test_case "prunable mapping" `Quick
            test_flipfeas_prunable;
          Alcotest.test_case "identity plan" `Quick
            test_flipfeas_identity_plan;
          Alcotest.test_case "nesting depth" `Quick
            test_flipfeas_nesting_depth ] );
      ("corpus", corpus_cases ());
      ( "aggregate",
        [ Alcotest.test_case "hints pay off on half the corpus" `Quick
            test_hinted_aggregate;
          Alcotest.test_case "pruning pays off on 10+ bugs" `Quick
            test_pruning_aggregate ] ) ]
