(* The generated-program corpus shared by the brute-force differential
   oracle (test_oracle.ml) and the invariant-pruning parity property
   (test_invariants.ml).

   Tiny programs: loads/stores/assigns/forward branches over shared
   globals — every interleaving terminates, no locks, no spawns, so an
   exhaustive oracle and LIFS's preemption schedules range over the
   same behaviours.  The optionally-failing thread ends in a BUG_ON
   over a value loaded from a shared global. *)

open Ksim.Program.Build

let oracle_globals = [ "g0"; "g1" ]

let render_group (group : Ksim.Program.group) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "group %s@." group.group_name);
  List.iter
    (fun (gv, v) ->
      Buffer.add_string buf (Fmt.str "  global %s = %a@." gv Ksim.Value.pp v))
    group.globals;
  List.iter
    (fun (t : Ksim.Program.thread_spec) ->
      Buffer.add_string buf (Fmt.str "  thread %s:@." t.spec_name);
      let p = t.program in
      for i = 0 to Ksim.Program.length p - 1 do
        let l = Ksim.Program.get p i in
        Buffer.add_string buf
          (Fmt.str "    %s: %a@." l.label Ksim.Instr.pp l.instr)
      done)
    group.threads;
  Buffer.contents buf

let gen_body ~prefix ~len : Ksim.Program.labeled list QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 len in
  let gen_instr i =
    let label = Fmt.str "%s%d" prefix i in
    let* k = int_range 0 4 in
    let* gvar = oneofl oracle_globals in
    match k with
    | 0 -> return (load label "r" (g gvar))
    | 1 ->
      let* v = int_range 0 3 in
      return (store label (g gvar) (cint v))
    | 2 ->
      let* v = int_range 0 3 in
      return (assign label "r" (cint v))
    | 3 when i + 1 < n ->
      let* target = int_range (i + 1) (n - 1) in
      let* v = int_range 0 1 in
      return
        (branch_if label (Eq (reg "r", cint v)) (Fmt.str "%s%d" prefix target))
    | _ -> return (nop label)
  in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else
      let* instr = gen_instr i in
      build (i + 1) (instr :: acc)
  in
  build 0 []

let gen_thread ~name ~len ~failing =
  let open QCheck.Gen in
  let* body = gen_body ~prefix:(String.lowercase_ascii name) ~len in
  let* tail =
    if not failing then return []
    else
      let* gvar = oneofl oracle_globals in
      let* v = int_range 1 3 in
      return
        [ load (String.lowercase_ascii name ^ "_chk_ld") "r" (g gvar);
          bug_on (String.lowercase_ascii name ^ "_chk") (Eq (reg "r", cint v)) ]
  in
  return
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program =
        Ksim.Program.make ~name
          ((assign (String.lowercase_ascii name ^ "_init") "r" (cint 0) :: body)
          @ tail);
      resources = [] }

let gen_oracle_group : Ksim.Program.group QCheck.Gen.t =
  let open QCheck.Gen in
  let* three = frequency [ (4, return false); (1, return true) ] in
  let* failing = bool in
  let names = if three then [ "A"; "B"; "C" ] else [ "A"; "B" ] in
  let len = if three then 2 else 5 in
  let* threads =
    List.fold_right
      (fun name acc ->
        let* rest = acc in
        (* at most one thread carries the assertion, keeping failure
           identity crisp; which one varies with the generator state *)
        let* t = gen_thread ~name ~len ~failing:(failing && name = "A") in
        return (t :: rest))
      names (return [])
  in
  return
    (Ksim.Program.group ~name:"oracle"
       ~globals:(List.map (fun gv -> (gv, Ksim.Value.Int 0)) oracle_globals)
       threads)

let arb_oracle_group = QCheck.make ~print:render_group gen_oracle_group

(* --- engine-parity corpus ---------------------------------------------

   A richer generator for the reference-vs-compiled differential oracle
   (test_engine.ml), covering the constructs the compiled engine
   special-cases: nested critical sections (up to two locks), heap
   objects dereferenced after a possible midway free (use-after-free /
   double-free paths), failure predicates over values loaded from heap
   fields, and kthread spawn edges writing back to globals.  Registers
   are initialized before use and branches only jump forward, so every
   interleaving terminates. *)

let engine_locks = [ "L0"; "L1" ]

let gen_engine_body ~prefix ~len : Ksim.Program.labeled list QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 2 len in
  let lbl i = Fmt.str "%s%d" prefix i in
  let gen_instr i =
    let label = lbl i in
    let* k = int_range 0 9 in
    let* gvar = oneofl oracle_globals in
    match k with
    | 0 -> return [ load label "r" (g gvar) ]
    | 1 ->
      let* v = int_range 0 3 in
      return [ store label (g gvar) (cint v) ]
    | 2 ->
      (* critical section around a shared-counter update; the nested
         variant always acquires L0 before L1, so no lock-order
         deadlock — the section still exercises lock-blocked paths.
         The counter global "gc" never holds a pointer, so the rmw
         arithmetic is always well-typed. *)
      let* nested = bool in
      if nested then
        return
          [ lock label "L0";
            lock (label ^ "_lk1") "L1";
            rmw (label ^ "_rmw") (g "gc") (cint 1);
            unlock (label ^ "_ul1") "L1";
            unlock (label ^ "_ul0") "L0" ]
      else
        let* l = oneofl engine_locks in
        return
          [ lock label l;
            rmw (label ^ "_rmw") (g "gc") (cint 1);
            unlock (label ^ "_ul") l ]
    | 3 ->
      (* allocate, publish to a global, read a field back *)
      return
        [ alloc ~fields:[ ("val", cint (i + 1)) ] label "p" "engine_obj";
          store (label ^ "_pub") (g gvar) (reg "p");
          load (label ^ "_fld") "r" (reg "p" **-> "val") ]
    | 4 ->
      (* load a published pointer and dereference it if non-null: the
         use-after-free window when another thread freed it meanwhile *)
      return
        [ load label "q" (g gvar);
          branch_if (label ^ "_nz") (Is_null (reg "q")) (lbl (i + 1));
          load (label ^ "_use") "r" (reg "q" **-> "val") ]
    | 5 ->
      (* free whatever the global holds (kfree(NULL) is a no-op;
         racing frees give double-free coverage) *)
      return
        [ load label "q" (g gvar);
          branch_if (label ^ "_nz") (Is_null (reg "q")) (lbl (i + 1));
          free (label ^ "_fr") (reg "q") ]
    | 6 ->
      (* failure predicate over a heap value *)
      let* v = int_range 1 3 in
      return
        [ load label "q" (g gvar);
          branch_if (label ^ "_nz") (Is_null (reg "q")) (lbl (i + 1));
          load (label ^ "_val") "r" (reg "q" **-> "val");
          bug_on (label ^ "_chk") (Eq (reg "r", cint v)) ]
    | 7 -> return [ queue_work ~arg:(cint i) label "worker" ]
    | 8 when i + 1 < n ->
      let* target = int_range (i + 1) (n - 1) in
      let* v = int_range 0 1 in
      return [ branch_if label (Eq (reg "r", cint v)) (lbl target) ]
    | _ -> return [ nop label ]
  in
  let rec build i acc =
    if i >= n then return (List.rev (nop (lbl n) :: acc))
    else
      let* instrs = gen_instr i in
      build (i + 1) (List.rev_append instrs acc)
  in
  build 0 []

let gen_engine_thread ~name ~len =
  let open QCheck.Gen in
  let p = String.lowercase_ascii name in
  let* body = gen_engine_body ~prefix:p ~len in
  return
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program =
        Ksim.Program.make ~name
          (assign (p ^ "_init") "r" (cint 0)
          :: assign (p ^ "_initq") "q" cnull
          :: body);
      resources = [] }

(* The kworker entry spawned by construct 7: records its argument in a
   global, so spawn edges are observable in the final state. *)
let engine_worker_entry =
  Ksim.Program.make ~name:"worker"
    [ store "worker_mark" (g "g1") (reg "arg"); return "worker_done" ]

let gen_engine_group : Ksim.Program.group QCheck.Gen.t =
  let open QCheck.Gen in
  let* three = frequency [ (3, return false); (1, return true) ] in
  let names = if three then [ "A"; "B"; "C" ] else [ "A"; "B" ] in
  let len = if three then 3 else 4 in
  let* threads =
    List.fold_right
      (fun name acc ->
        let* rest = acc in
        let* t = gen_engine_thread ~name ~len in
        return (t :: rest))
      names (return [])
  in
  return
    (Ksim.Program.group ~name:"engine"
       ~entries:[ ("worker", engine_worker_entry) ]
       ~globals:
         (List.map
            (fun gv -> (gv, Ksim.Value.Int 0))
            (oracle_globals @ [ "gc" ]))
       ~locks:engine_locks threads)

let arb_engine_group = QCheck.make ~print:render_group gen_engine_group
