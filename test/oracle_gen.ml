(* The generated-program corpus shared by the brute-force differential
   oracle (test_oracle.ml) and the invariant-pruning parity property
   (test_invariants.ml).

   Tiny programs: loads/stores/assigns/forward branches over shared
   globals — every interleaving terminates, no locks, no spawns, so an
   exhaustive oracle and LIFS's preemption schedules range over the
   same behaviours.  The optionally-failing thread ends in a BUG_ON
   over a value loaded from a shared global. *)

open Ksim.Program.Build

let oracle_globals = [ "g0"; "g1" ]

let render_group (group : Ksim.Program.group) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "group %s@." group.group_name);
  List.iter
    (fun (gv, v) ->
      Buffer.add_string buf (Fmt.str "  global %s = %a@." gv Ksim.Value.pp v))
    group.globals;
  List.iter
    (fun (t : Ksim.Program.thread_spec) ->
      Buffer.add_string buf (Fmt.str "  thread %s:@." t.spec_name);
      let p = t.program in
      for i = 0 to Ksim.Program.length p - 1 do
        let l = Ksim.Program.get p i in
        Buffer.add_string buf
          (Fmt.str "    %s: %a@." l.label Ksim.Instr.pp l.instr)
      done)
    group.threads;
  Buffer.contents buf

let gen_body ~prefix ~len : Ksim.Program.labeled list QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 len in
  let gen_instr i =
    let label = Fmt.str "%s%d" prefix i in
    let* k = int_range 0 4 in
    let* gvar = oneofl oracle_globals in
    match k with
    | 0 -> return (load label "r" (g gvar))
    | 1 ->
      let* v = int_range 0 3 in
      return (store label (g gvar) (cint v))
    | 2 ->
      let* v = int_range 0 3 in
      return (assign label "r" (cint v))
    | 3 when i + 1 < n ->
      let* target = int_range (i + 1) (n - 1) in
      let* v = int_range 0 1 in
      return
        (branch_if label (Eq (reg "r", cint v)) (Fmt.str "%s%d" prefix target))
    | _ -> return (nop label)
  in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else
      let* instr = gen_instr i in
      build (i + 1) (instr :: acc)
  in
  build 0 []

let gen_thread ~name ~len ~failing =
  let open QCheck.Gen in
  let* body = gen_body ~prefix:(String.lowercase_ascii name) ~len in
  let* tail =
    if not failing then return []
    else
      let* gvar = oneofl oracle_globals in
      let* v = int_range 1 3 in
      return
        [ load (String.lowercase_ascii name ^ "_chk_ld") "r" (g gvar);
          bug_on (String.lowercase_ascii name ^ "_chk") (Eq (reg "r", cint v)) ]
  in
  return
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program =
        Ksim.Program.make ~name
          ((assign (String.lowercase_ascii name ^ "_init") "r" (cint 0) :: body)
          @ tail);
      resources = [] }

let gen_oracle_group : Ksim.Program.group QCheck.Gen.t =
  let open QCheck.Gen in
  let* three = frequency [ (4, return false); (1, return true) ] in
  let* failing = bool in
  let names = if three then [ "A"; "B"; "C" ] else [ "A"; "B" ] in
  let len = if three then 2 else 5 in
  let* threads =
    List.fold_right
      (fun name acc ->
        let* rest = acc in
        (* at most one thread carries the assertion, keeping failure
           identity crisp; which one varies with the generator state *)
        let* t = gen_thread ~name ~len ~failing:(failing && name = "A") in
        return (t :: rest))
      names (return [])
  in
  return
    (Ksim.Program.group ~name:"oracle"
       ~globals:(List.map (fun gv -> (gv, Ksim.Value.Int 0)) oracle_globals)
       threads)

let arb_oracle_group = QCheck.make ~print:render_group gen_oracle_group
