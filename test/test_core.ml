(* Tests for LIFS, Causality Analysis, chain construction and the
   diagnose pipeline, mostly exercised through the paper's own
   examples. *)

module Iid = Ksim.Access.Iid

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let chain_string (report : Aitia.Diagnose.report) =
  match report.chain with
  | Some c -> Aitia.Chain.to_string c
  | None -> "-"

let diagnose (bug : Bugs.Bug.t) =
  Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
    (bug.case ())

(* --- LIFS ---------------------------------------------------------------- *)

let lifs_on (bug : Bugs.Bug.t) =
  let case = bug.case () in
  let crash = Trace.History.crash case.history in
  let slice = List.hd (Trace.Slicer.slices case.history) in
  let group, prologue =
    match Aitia.Diagnose.realize case slice with
    | Some x -> x
    | None -> Alcotest.fail "slice not realizable"
  in
  let vm = Hypervisor.Vm.create group in
  ( Aitia.Lifs.search ~prologue vm ~target:(Trace.Crash.matches crash) (),
    vm )

let test_lifs_reproduces_fig1 () =
  let result, vm = lifs_on Bugs.Fig1_nullderef.bug in
  (match result.found with
  | None -> Alcotest.fail "fig1 not reproduced"
  | Some s -> (
    checki "two races" 2 (List.length s.races);
    match s.failure with
    | Ksim.Failure.Null_dereference _ -> ()
    | f -> Alcotest.failf "unexpected failure %s" (Ksim.Failure.to_string f)));
  checki "interleaving count 1" 1 result.stats.interleavings;
  checki "vm accounted" result.stats.schedules (Hypervisor.Vm.runs vm)

let test_lifs_serial_phase_first () =
  (* fig7 manifests serially: LIFS must find it with 0 interleavings on
     the very first schedule. *)
  let result, _ = lifs_on Bugs.Fig7_nested.bug in
  checki "interleavings" 0 result.stats.interleavings;
  checki "one schedule" 1 result.stats.schedules

let test_lifs_explores_deeper_only_when_needed () =
  let result, _ = lifs_on Bugs.Cve_2017_15649.bug in
  checki "needs two preemptions" 2 result.stats.interleavings;
  checkb "prunes equivalents" true (result.stats.pruned > 0)

let test_lifs_gives_up_within_bound () =
  (* A race-free group can never reproduce the reported crash. *)
  let open Ksim.Program.Build in
  let t name =
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program = Ksim.Program.make ~name [ assign "a" "x" (cint 1) ];
      resources = [] }
  in
  let group = Ksim.Program.group ~name:"quiet" [ t "A"; t "B" ] in
  let vm = Hypervisor.Vm.create group in
  let result =
    Aitia.Lifs.search ~max_interleavings:2 vm ~target:(fun _ -> true) ()
  in
  checkb "not found" true (result.found = None);
  checkb "ran something" true (result.stats.schedules > 0)

let test_lifs_discovers_kthread_dynamically () =
  (* fig5: thread K exists only on the race-steered path; LIFS must find
     the failure involving it. *)
  let result, _ = lifs_on Bugs.Fig5_search.bug in
  match result.found with
  | None -> Alcotest.fail "fig5 not reproduced"
  | Some s ->
    let tids =
      List.sort_uniq compare
        (List.map
           (fun (e : Ksim.Machine.event) -> e.iid.Iid.tid)
           s.outcome.trace)
    in
    checkb "three contexts in failing run" true (List.length tids >= 3)

(* --- Causality Analysis --------------------------------------------------- *)

let causality_of (bug : Bugs.Bug.t) =
  let report = diagnose bug in
  match report.causality with
  | Some ca -> (report, ca)
  | None -> Alcotest.failf "%s not diagnosed" bug.id

let test_causality_fig1 () =
  let _, ca = causality_of Bugs.Fig1_nullderef.bug in
  checki "two root causes" 2 (List.length ca.root_causes);
  checki "no benign" 0 (List.length ca.benign);
  checki "one edge" 1 (List.length ca.edges)

let test_causality_filters_benign () =
  let _, ca = causality_of Bugs.Cve_2017_15649.bug in
  checki "four roots" 4 (List.length ca.root_causes);
  checkb "noise filtered" true (List.length ca.benign > 0);
  (* No statistics-counter race survives into the root causes. *)
  List.iter
    (fun (r : Aitia.Race.t) ->
      checkb "no noise in roots" false
        (String.length r.first.iid.Iid.label > 4
        && String.sub r.first.iid.Iid.label 0 4 = "A_n_"))
    ca.root_causes

let test_causality_ambiguity_fig7 () =
  let _, ca = causality_of Bugs.Fig7_nested.bug in
  checki "one ambiguous" 1 (List.length ca.ambiguous);
  let amb = List.hd ca.ambiguous in
  (* the surrounding race A1 => B2 *)
  Alcotest.(check string) "surrounding race" "A1" amb.first.iid.Iid.label

let test_causality_tests_backward () =
  let _, ca = causality_of Bugs.Fig1_nullderef.bug in
  match ca.tested with
  | first :: _ ->
    (* The race with the latest second access is tested first. *)
    Alcotest.(check string) "last race first" "A2"
      first.race.second.iid.Iid.label
  | [] -> Alcotest.fail "nothing tested"

let test_flip_plan_moves_block () =
  (* Directly exercise flip-plan construction on a synthetic trace. *)
  let open Ksim.Program.Build in
  let t name instrs =
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program = Ksim.Program.make ~name instrs;
      resources = [] }
  in
  let grp =
    Ksim.Program.group ~name:"flip"
      [ t "A" [ store "a1" (g "x") (cint 1); store "a2" (g "y") (cint 1) ];
        t "B" [ load "b1" "v" (g "y"); load "b2" "w" (g "x") ] ]
  in
  let plan0 =
    Hypervisor.Schedule.plan
      [ Iid.make ~tid:0 ~label:"a1" ~occ:1;
        Iid.make ~tid:0 ~label:"a2" ~occ:1;
        Iid.make ~tid:1 ~label:"b1" ~occ:1;
        Iid.make ~tid:1 ~label:"b2" ~occ:1 ]
  in
  let o =
    Hypervisor.Controller.run (Ksim.Machine.create grp)
      (Hypervisor.Schedule.plan_policy plan0)
  in
  let races = Aitia.Race.of_trace o.trace in
  let r =
    List.find
      (fun (r : Aitia.Race.t) -> r.first.iid.Iid.label = "a1")
      races
  in
  let flipped = Aitia.Causality.flip_plan o.trace r in
  let o' =
    Hypervisor.Controller.run (Ksim.Machine.create grp)
      (Hypervisor.Schedule.plan_policy flipped)
  in
  (* In the flipped run b2 must precede a1. *)
  let pos label =
    let rec go i = function
      | [] -> -1
      | (e : Ksim.Machine.event) :: rest ->
        if String.equal e.iid.Iid.label label then i else go (i + 1) rest
    in
    go 0 o'.trace
  in
  checkb "b2 before a1" true (pos "b2" < pos "a1");
  checkb "b1 before b2 (program order kept)" true (pos "b1" < pos "b2")

let test_flip_critical_section_as_unit () =
  (* ext-lock: both endpoints are lock-protected; the flip must displace
     the consumer's whole critical section, not deadlock inside it. *)
  let report = diagnose Bugs.Ext_lock_order.bug in
  match report.causality with
  | None -> Alcotest.fail "not diagnosed"
  | Some ca ->
    checki "one root cause" 1 (List.length ca.root_causes);
    let r = List.hd ca.root_causes in
    Alcotest.(check string) "the CS-order race" "B2"
      r.first.iid.Iid.label

(* Shared scaffolding for the flip-plan edge cases below: run a fixed
   plan, find the race whose first endpoint is [first_label], flip it,
   and re-run the flipped plan. *)
let flip_and_rerun grp plan0 ~first_label =
  let o =
    Hypervisor.Controller.run (Ksim.Machine.create grp)
      (Hypervisor.Schedule.plan_policy plan0)
  in
  let r =
    List.find
      (fun (r : Aitia.Race.t) -> r.first.iid.Iid.label = first_label)
      (Aitia.Race.of_trace o.trace)
  in
  let flipped = Aitia.Causality.flip_plan o.trace r in
  Hypervisor.Controller.run (Ksim.Machine.create grp)
    (Hypervisor.Schedule.plan_policy flipped)

let pos_in (o : Hypervisor.Controller.outcome) label =
  let rec go i = function
    | [] -> -1
    | (e : Ksim.Machine.event) :: rest ->
      if String.equal e.iid.Iid.label label then i else go (i + 1) rest
  in
  go 0 o.trace

let spec name instrs =
  { Ksim.Program.spec_name = name;
    context = Ksim.Program.Syscall { call = name; sysno = 0 };
    program = Ksim.Program.make ~name instrs;
    resources = [] }

let plan_of labels =
  Hypervisor.Schedule.plan
    (List.map (fun (tid, label) -> Iid.make ~tid ~label ~occ:1) labels)

let test_flip_nested_sections () =
  (* Both endpoints sit under the same two nested locks: the flip must
     displace the consumer's outermost section as one unit, keeping the
     lock order inside it, and the re-run must not deadlock. *)
  let open Ksim.Program.Build in
  let grp =
    Ksim.Program.group ~name:"nested-flip" ~locks:[ "o"; "m" ]
      ~globals:[ ("x", Ksim.Value.Int 0) ]
      [ spec "A"
          [ lock "ao" "o"; lock "am" "m"; store "a1" (g "x") (cint 1);
            unlock "um" "m"; unlock "uo" "o" ];
        spec "B"
          [ lock "bo" "o"; lock "bm" "m"; load "b1" "v" (g "x");
            unlock "vm" "m"; unlock "vo" "o" ] ]
  in
  let plan0 =
    plan_of
      [ (0, "ao"); (0, "am"); (0, "a1"); (0, "um"); (0, "uo");
        (1, "bo"); (1, "bm"); (1, "b1"); (1, "vm"); (1, "vo") ]
  in
  let o = flip_and_rerun grp plan0 ~first_label:"a1" in
  checkb "completes (no deadlock)" true
    (o.verdict = Hypervisor.Controller.Completed);
  let p = pos_in o in
  checkb "b1 before a1" true (p "b1" < p "a1");
  checkb "B's outer lock moved with it" true (p "bo" < p "bm");
  checkb "whole nested unit precedes A's sections" true (p "vo" < p "ao")

let test_flip_unit_spans_whole_section () =
  (* The race is in the middle of A's critical section; flipping it must
     displace B's whole section before A's section *start*, not merely
     before the racing store. *)
  let open Ksim.Program.Build in
  let grp =
    Ksim.Program.group ~name:"span-flip" ~locks:[ "m" ]
      ~globals:[ ("x", Ksim.Value.Int 0); ("y", Ksim.Value.Int 0) ]
      [ spec "A"
          [ lock "la" "m"; store "a1" (g "x") (cint 1);
            store "a2" (g "y") (cint 1); unlock "ua" "m" ];
        spec "B"
          [ lock "lb" "m"; load "b1" "v" (g "y"); unlock "ub" "m" ] ]
  in
  let plan0 =
    plan_of
      [ (0, "la"); (0, "a1"); (0, "a2"); (0, "ua");
        (1, "lb"); (1, "b1"); (1, "ub") ]
  in
  let o = flip_and_rerun grp plan0 ~first_label:"a2" in
  checkb "completes (no deadlock)" true
    (o.verdict = Hypervisor.Controller.Completed);
  let p = pos_in o in
  checkb "b1 before the racing store a2" true (p "b1" < p "a2");
  checkb "b1 before the whole section (a1 too)" true (p "b1" < p "a1");
  checkb "B releases before A acquires" true (p "ub" < p "la")

let test_ambiguity_both_root_causes () =
  (* §3.4 / Figure 7: when a surrounding race and the race nested inside
     it are both root causes, the surrounding one is reported ambiguous
     (its flip necessarily also flipped the nested order) and the nested
     one stays certain. *)
  let _, ca = causality_of Bugs.Fig7_nested.bug in
  let amb =
    match ca.ambiguous with
    | [ r ] -> r
    | l -> Alcotest.failf "expected one ambiguous race, got %d"
             (List.length l)
  in
  checkb "the ambiguous (surrounding) race is a root cause" true
    (List.exists (Aitia.Race.equal amb) ca.root_causes);
  let nested =
    List.filter
      (fun r ->
        (not (Aitia.Race.equal amb r)) && Aitia.Race.surrounds amb r)
      ca.root_causes
  in
  checkb "the nested race is also a root cause" true (nested <> []);
  List.iter
    (fun r ->
      checkb "the nested race itself is not ambiguous" false
        (List.exists (Aitia.Race.equal r) ca.ambiguous))
    nested

let test_irq_chain_crosses_boundary () =
  let report = diagnose Bugs.Ext_irq_nic.bug in
  match report.chain with
  | None -> Alcotest.fail "not diagnosed"
  | Some chain ->
    let final =
      match report.lifs.found with
      | Some s -> s.outcome.final
      | None -> Alcotest.fail "no failing run"
    in
    checkb "an endpoint runs in hardirq context" true
      (List.exists
         (fun (r : Aitia.Race.t) ->
           Ksim.Machine.thread_context final r.second.iid.Iid.tid
           = Ksim.Program.Hardirq
           || Ksim.Machine.thread_context final r.first.iid.Iid.tid
              = Ksim.Program.Hardirq)
         (Aitia.Chain.races chain))

(* --- chain ----------------------------------------------------------------- *)

let test_chain_fig1 () =
  let report = diagnose Bugs.Fig1_nullderef.bug in
  Alcotest.(check string) "chain"
    "(A1 => B1) --> (B2 => A2) --> null-ptr-deref" (chain_string report)

let test_chain_conjunction_15649 () =
  let report = diagnose Bugs.Cve_2017_15649.bug in
  Alcotest.(check string) "chain"
    "(B2 => A6) /\\ (A2 => B11) --> (A6 => B12) --> (B17 => A12) --> kernel \
     BUG (BUG_ON)"
    (chain_string report)

let test_chain_excludes_ambiguous () =
  let report = diagnose Bugs.Fig7_nested.bug in
  (match report.chain with
  | Some c ->
    checki "chain keeps the certain race" 1 (Aitia.Chain.length c)
  | None -> Alcotest.fail "no chain");
  match report.causality with
  | Some ca -> checki "ambiguity reported" 1 (List.length ca.ambiguous)
  | None -> Alcotest.fail "no causality"

let test_chain_crosses_thread_boundary () =
  let report = diagnose Bugs.Fig9_irqfd.bug in
  match report.chain with
  | None -> Alcotest.fail "no chain"
  | Some c ->
    let tids =
      List.concat_map
        (fun (r : Aitia.Race.t) ->
          [ r.first.iid.Iid.tid; r.second.iid.Iid.tid ])
        (Aitia.Chain.races c)
      |> List.sort_uniq compare
    in
    checkb "three contexts in chain" true (List.length tids >= 3)

(* --- the Sec. 2.1 fix study --------------------------------------------------- *)

let test_wrong_fix_still_fails () =
  (* Enforcing only B17 => A12 (what a single-pattern tool suggests)
     trades the BUG_ON for a double list_add corruption (Sec. 2.1). *)
  let r =
    Aitia.Diagnose.diagnose ~max_steps:20_000
      (Bugs.Cve_2017_15649_fixes.wrong_fix_case ())
  in
  (match r.lifs.found with
  | Some s -> (
    match s.failure with
    | Ksim.Failure.List_corruption _ -> ()
    | f -> Alcotest.failf "unexpected failure %s" (Ksim.Failure.to_string f))
  | None -> Alcotest.fail "wrong fix should still fail");
  checkb "diagnosed" true (Aitia.Diagnose.reproduced r)

let test_correct_fix_passes () =
  (* The developers' fix cuts the chain's head conjunction: no schedule
     reproduces any failure. *)
  let r =
    Aitia.Diagnose.diagnose ~max_steps:20_000
      (Bugs.Cve_2017_15649_fixes.correct_fix_case ())
  in
  checkb "not reproduced" false (Aitia.Diagnose.reproduced r);
  checkb "searched seriously" true (r.lifs.stats.schedules > 5)

let test_unfixed_full_model_diagnoses () =
  let r =
    Aitia.Diagnose.diagnose ~max_steps:20_000
      (Bugs.Cve_2017_15649_fixes.unfixed_case ())
  in
  checkb "reproduced" true (Aitia.Diagnose.reproduced r)

(* --- diagnose pipeline ------------------------------------------------------ *)

let test_diagnose_selects_right_slice () =
  let report = diagnose Bugs.Fig1_nullderef.bug in
  checkb "reproduced" true (Aitia.Diagnose.reproduced report);
  Alcotest.(check (slist string compare)) "slice threads" [ "A"; "B" ]
    report.slice_threads

let test_diagnose_metrics () =
  let report = diagnose Bugs.Cve_2017_15649.bug in
  match report.metrics with
  | None -> Alcotest.fail "no metrics"
  | Some m ->
    checkb "many accesses" true (m.mem_accessing_instrs > 20);
    checkb "chain much smaller than race set" true
      (m.races_in_chain < m.races_detected);
    checki "chain races" 4 m.races_in_chain

let test_diagnose_falls_through_slices () =
  (* Sec. 4.2: "A slice may not contain the root cause.  If AITIA cannot
     reproduce the failure, AITIA selects the next slice."  Build a
     history whose failure-nearest concurrent window is a harmless decoy;
     the racing pair sits in an earlier window. *)
  let open Ksim.Program.Build in
  let t name instrs =
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program = Ksim.Program.make ~name instrs;
      resources = [] }
  in
  let racing_a = t "A" [ store "A1" (g "x") (cint 1) ] in
  let racing_b =
    t "B"
      [ load "B1" "v" (g "x");
        bug_on "B2" (Eq (reg "v", cint 1)) ]
  in
  let decoy_c = t "C" [ assign "C1" "r" (cint 0) ] in
  let decoy_d = t "D" [ assign "D1" "r" (cint 0) ] in
  let group =
    Ksim.Program.group ~name:"fallthrough"
      ~globals:[ ("x", Ksim.Value.Int 0) ]
      [ racing_a; racing_b; decoy_c; decoy_d ]
  in
  let enter time call thread =
    { Trace.Event.time;
      kind = Trace.Event.Syscall_enter { call; thread; resources = [] } }
  in
  let exit_ time call thread =
    { Trace.Event.time; kind = Trace.Event.Syscall_exit { call; thread } }
  in
  let history =
    Trace.History.make
      ~events:
        [ (* the racing window, earlier *)
          enter 1.0 "A" "A"; enter 1.01 "B" "B";
          exit_ 1.5 "A" "A"; exit_ 1.5 "B" "B";
          (* the decoy window, nearest to the crash *)
          enter 2.0 "C" "C"; enter 2.01 "D" "D";
          exit_ 2.5 "C" "C"; exit_ 2.5 "D" "D" ]
      ~crash:
        { Trace.Crash.symptom = "kernel BUG (BUG_ON)"; location = Some "B2";
          subsystem = "test"; report_time = 2.6 }
  in
  let case : Aitia.Diagnose.case =
    { case_name = "fallthrough"; subsystem = "test"; group; history }
  in
  let report = Aitia.Diagnose.diagnose case in
  checkb "reproduced via the second slice" true
    (Aitia.Diagnose.reproduced report);
  checki "decoy slice tried first" 2 report.slices_tried;
  Alcotest.(check (slist string compare)) "right slice" [ "A"; "B" ]
    report.slice_threads

let test_report_renders () =
  let report = diagnose Bugs.Fig1_nullderef.bug in
  let s = Aitia.Report.to_string report in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions chain" true (contains "causality chain" s);
  checkb "mentions root causes" true (contains "root-cause races" s);
  checkb "non-empty" true (String.length s > 100)

let () =
  Alcotest.run "core"
    [ ( "lifs",
        [ Alcotest.test_case "reproduces fig1" `Quick
            test_lifs_reproduces_fig1;
          Alcotest.test_case "serial first" `Quick
            test_lifs_serial_phase_first;
          Alcotest.test_case "deeper when needed" `Quick
            test_lifs_explores_deeper_only_when_needed;
          Alcotest.test_case "bounded give-up" `Quick
            test_lifs_gives_up_within_bound;
          Alcotest.test_case "dynamic kthread" `Quick
            test_lifs_discovers_kthread_dynamically ] );
      ( "causality",
        [ Alcotest.test_case "fig1 roots" `Quick test_causality_fig1;
          Alcotest.test_case "benign filtered" `Quick
            test_causality_filters_benign;
          Alcotest.test_case "ambiguity" `Quick test_causality_ambiguity_fig7;
          Alcotest.test_case "backward order" `Quick
            test_causality_tests_backward;
          Alcotest.test_case "flip plan" `Quick test_flip_plan_moves_block;
          Alcotest.test_case "critical-section unit" `Quick
            test_flip_critical_section_as_unit;
          Alcotest.test_case "nested sections flip" `Quick
            test_flip_nested_sections;
          Alcotest.test_case "flip unit spans section" `Quick
            test_flip_unit_spans_whole_section;
          Alcotest.test_case "nested+surrounding ambiguity" `Quick
            test_ambiguity_both_root_causes;
          Alcotest.test_case "irq boundary" `Quick
            test_irq_chain_crosses_boundary ] );
      ( "chain",
        [ Alcotest.test_case "fig1 chain" `Quick test_chain_fig1;
          Alcotest.test_case "conjunction" `Quick
            test_chain_conjunction_15649;
          Alcotest.test_case "ambiguous excluded" `Quick
            test_chain_excludes_ambiguous;
          Alcotest.test_case "thread boundary" `Quick
            test_chain_crosses_thread_boundary ] );
      ( "diagnose",
        [ Alcotest.test_case "slice selection" `Quick
            test_diagnose_selects_right_slice;
          Alcotest.test_case "metrics" `Quick test_diagnose_metrics;
          Alcotest.test_case "slice fall-through" `Quick
            test_diagnose_falls_through_slices;
          Alcotest.test_case "wrong fix still fails" `Quick
            test_wrong_fix_still_fails;
          Alcotest.test_case "correct fix passes" `Quick
            test_correct_fix_passes;
          Alcotest.test_case "unfixed full model" `Quick
            test_unfixed_full_model_diagnoses;
          Alcotest.test_case "report" `Quick test_report_renders ] ) ]
