(* Reference-vs-compiled differential oracle: the engine parity harness.

   The compiled arena/undo-log interpreter must be observably
   indistinguishable from the persistent reference semantics.  The
   lockstep driver boots BOTH engines on the same group, drives them
   with an identical schedule, and after every step asserts: identical
   runnable sets, identical events (iid, instruction, access, lock op,
   spawn edges, context), identical failure state and identical
   [Machine.fingerprint].  At the end of a run the leak-checked
   failures must agree (failure iff-equivalence), the race sets
   independently recomputed from each engine's trace must be equal, and
   the kcov coverage extracted from each trace must agree.

   The driver runs over 250+ generated programs (Oracle_gen's
   engine-parity corpus: nested critical sections, use-after-free and
   double-free windows, heap-value failure predicates, kthread spawn
   edges), the full modeled bug corpus, and fault-injected diagnoses
   with identical seeded fault streams on both engines.

   Property tests additionally pin the compiled engine's snapshot
   machinery (undo-log restore == fresh re-execution, including
   restores from a frozen snapshot whose arena tip moved on) and its
   static instrumentation tables (flag-bitset and watchpoint parity
   against dynamic events under randomly placed breakpoints and
   watchpoints).

   QCHECK_SEED fixes the generator seed; QCHECK_LONG multiplies the
   iteration count (both read by qcheck-alcotest).  Divergences are
   appended to engine_counterexamples.txt — with the schedule, the
   divergence step and the reason, i.e. a replayable counterexample —
   for CI artifact upload. *)

module Engine = Ksim.Engine
module Machine = Ksim.Machine
module Iid = Ksim.Access.Iid
module Race = Aitia.Race
module Kcov = Ksim.Kcov
module Smap = Map.Make (String)

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- counterexample dump -------------------------------------------------- *)

let counterexample_file = "engine_counterexamples.txt"

let dump_counterexample ~schedule ~picked ~step ~reason group =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 counterexample_file
  in
  output_string oc
    (Fmt.str
       "=== engine counterexample: %s@.schedule=%s picks=[%s] step=%d@.%s@."
       reason schedule
       (String.concat ";" (List.rev_map string_of_int picked))
       step
       (Oracle_gen.render_group group));
  close_out oc

(* --- schedules -------------------------------------------------------------

   A schedule factory returns a fresh pick function per run (the seeded
   ones carry mutable PRNG state).  [pick step runnable] chooses the
   thread to step next; both engines are driven by the SAME pick, so any
   divergence is the engine's, never the scheduler's. *)

let schedules =
  [ ( "round-robin",
      fun () step tids -> List.nth tids (step mod List.length tids) );
    ("first-runnable", fun () _ tids -> List.hd tids);
    ( "seeded-17",
      fun () ->
        let st = Random.State.make [| 17 |] in
        fun _ tids -> List.nth tids (Random.State.int st (List.length tids)) );
    ( "seeded-23",
      fun () ->
        let st = Random.State.make [| 23 |] in
        fun _ tids -> List.nth tids (Random.State.int st (List.length tids)) )
  ]

(* --- the lockstep driver --------------------------------------------------- *)

type run = {
  trace_ref : Machine.event list;   (* reference-engine trace, in order *)
  trace_cmp : Machine.event list;   (* compiled-engine trace, in order *)
  final_ref : Machine.t;
  final_cmp : Machine.t;
  failure : string option;          (* agreed leak-checked failure *)
  steps : int;
}

type divergence = { at_step : int; reason : string; picked : int list }

let failure_str m = Option.map Ksim.Failure.to_string (Machine.failed m)

(* Events are compared field by field so a divergence names what broke;
   [instr]/[src] are static program data and rendered for comparison. *)
let event_mismatch (a : Machine.event) (b : Machine.event) =
  if not (Iid.equal a.iid b.iid) then Some "event iid"
  else if a.access <> b.access then Some "event access"
  else if a.spawned <> b.spawned then Some "event spawn edges"
  else if a.lock_op <> b.lock_op then Some "event lock op"
  else if a.context <> b.context then Some "event context"
  else if not (String.equal a.thread_name b.thread_name) then
    Some "event thread name"
  else if
    not (String.equal (Ksim.Instr.to_string a.instr)
           (Ksim.Instr.to_string b.instr))
  then Some "event instruction"
  else None

(* A step may also abort with [Model_error] (malformed model, e.g. a
   generated program dereferencing an integer it stored into a pointer
   global) — the engines must agree on that too, message and all. *)
type stepped =
  | S_ok of Machine.t * Machine.event
  | S_err of Machine.step_error
  | S_model of string

let try_step m tid =
  match Engine.step m tid with
  | Ok (m', ev) -> S_ok (m', ev)
  | Error e -> S_err e
  | exception Machine.Model_error msg -> S_model msg

(* Drive both engines under one schedule, checking parity after every
   step.  Every generated program terminates under every schedule; the
   step cap only guards corpus noise loops against scheduler livelock
   and counts as a clean (partial) end. *)
let lockstep ?(max_steps = 6_000) ~pick group : (run, divergence) result =
  let rec go mr mc trace_r trace_c picked steps =
    let err reason = Error { at_step = steps; reason; picked } in
    if not (String.equal (Engine.fingerprint mr) (Engine.fingerprint mc))
    then err "fingerprints diverge"
    else if failure_str mr <> failure_str mc then err "failures diverge"
    else
      let runnable = Machine.runnable mr in
      if runnable <> Machine.runnable mc then err "runnable sets diverge"
      else
        let finish mr mc =
          let mr = Machine.check_leaks mr and mc = Machine.check_leaks mc in
          let fr = failure_str mr and fc = failure_str mc in
          if fr <> fc then err "leak-checked failures diverge"
          else if
            not
              (String.equal (Engine.fingerprint mr) (Engine.fingerprint mc))
          then err "post-leak-check fingerprints diverge"
          else
            Ok
              { trace_ref = List.rev trace_r;
                trace_cmp = List.rev trace_c;
                final_ref = mr;
                final_cmp = mc;
                failure = fr;
                steps }
        in
        match runnable with
        | [] -> finish mr mc
        | _ when steps >= max_steps -> finish mr mc
        | tids -> (
          let tid = pick steps tids in
          let picked = tid :: picked in
          match (try_step mr tid, try_step mc tid) with
          | S_ok (mr', er), S_ok (mc', ec) -> (
            match event_mismatch er ec with
            | Some what -> err (what ^ " diverges")
            | None ->
              go mr' mc' (er :: trace_r) (ec :: trace_c) picked (steps + 1))
          | S_model a, S_model b when String.equal a b ->
            (* Both engines reject the malformed model identically: a
               terminal agreement.  The pre-step machines were already
               fingerprint-equal; the aborted step's state is unusable
               by contract, so the run ends here. *)
            Ok
              { trace_ref = List.rev trace_r;
                trace_cmp = List.rev trace_c;
                final_ref = mr;
                final_cmp = mc;
                failure = Some ("model-error: " ^ a);
                steps }
          | S_err a, S_err b when a = b ->
            err "both engines refuse a runnable thread"
          | _ -> err "step results diverge (Ok vs Error vs Model_error)")
  in
  go
    (Engine.boot Engine.Reference group)
    (Engine.boot Engine.Compiled group)
    [] [] [] 0

(* Post-run agreement derived from the traces rather than the machines:
   the race set and kcov coverage feed diagnosis, so both engines' event
   streams must drive them identically. *)
let race_keys trace =
  List.sort_uniq String.compare (List.map Race.key (Race.of_trace trace))

let coverage_of final trace =
  Kcov.coverage [ trace ] ~thread_base:(Machine.thread_base final)

let run_agrees ~schedule group (r : run) =
  let dump reason =
    dump_counterexample ~schedule ~picked:[] ~step:r.steps ~reason group;
    false
  in
  if race_keys r.trace_ref <> race_keys r.trace_cmp then
    dump "race sets diverge on identical schedules"
  else if
    not
      (Smap.equal Int.equal
         (coverage_of r.final_ref r.trace_ref)
         (coverage_of r.final_cmp r.trace_cmp))
  then dump "kcov coverage diverges on identical schedules"
  else true

(* One group under one named schedule: lockstep, then trace agreement. *)
let check_group ~schedule mk group =
  match lockstep ~pick:(mk ()) group with
  | Error d ->
    dump_counterexample ~schedule ~picked:d.picked ~step:d.at_step
      ~reason:d.reason group;
    None
  | Ok r -> if run_agrees ~schedule group r then Some r else None

(* --- generated programs ---------------------------------------------------- *)

let checked = ref 0
let failing_runs = ref 0

let prop_lockstep =
  QCheck.Test.make ~count:250 ~long_factor:4
    ~name:"reference and compiled engines agree in lockstep"
    Oracle_gen.arb_engine_group
    (fun group ->
      incr checked;
      List.for_all
        (fun (schedule, mk) ->
          match check_group ~schedule mk group with
          | None -> false
          | Some r ->
            (match r.failure with
            | Some f when not (String.starts_with ~prefix:"model-error" f) ->
              incr failing_runs
            | _ -> ());
            true)
        schedules)

let test_lockstep_coverage () =
  (* The acceptance bar: the differential comparison really ran on at
     least 250 generated programs, and the failing direction (failure
     iff-equivalence with a manifested failure) was exercised. *)
  checkb
    (Fmt.str "checked %d generated programs >= 250" !checked)
    true (!checked >= 250);
  checkb "some lockstep runs actually failed" true (!failing_runs > 0)

(* --- snapshot / restore: undo-log restore == fresh re-execution ------------ *)

(* Compiled-engine snapshots are undo-log marks into a shared arena.
   Record a full run's schedule and per-step fingerprints, then snapshot
   at a random cut, step PAST the snapshot (so a restore must rewind the
   arena through the undo log), restore, and re-drive the suffix: every
   suffix fingerprint must equal the fresh run's at the same step. *)
let arb_restore =
  QCheck.make
    ~print:(fun (g, cut, _) ->
      Fmt.str "cut=%d@.%s" cut (Oracle_gen.render_group g))
    QCheck.Gen.(
      triple Oracle_gen.gen_engine_group (int_range 0 40) (int_range 0 1000))

let prop_restore_equals_fresh =
  QCheck.Test.make ~count:120 ~long_factor:4
    ~name:"compiled engine: undo-log restore == fresh re-execution"
    arb_restore
    (fun (group, cut_raw, seed) ->
      let st = Random.State.make [| seed |] in
      let pick _ tids =
        List.nth tids (Random.State.int st (List.length tids))
      in
      (* Fresh run: record the schedule and the fingerprint after every
         step. *)
      let m0 = Engine.boot Engine.Compiled group in
      let rec record m tids fps steps =
        match Machine.runnable m with
        | [] -> (List.rev tids, List.rev fps)
        | _ when steps >= 2_000 -> (List.rev tids, List.rev fps)
        | runnable -> (
          let tid = pick steps runnable in
          match Engine.step m tid with
          | Error _ | (exception Machine.Model_error _) ->
            (List.rev tids, List.rev fps)
          | Ok (m', _) ->
            record m' (tid :: tids) (Engine.fingerprint m' :: fps)
              (steps + 1))
      in
      let sched, fps = record m0 [] [] 0 in
      let n = List.length sched in
      if n = 0 then QCheck.assume_fail ()
      else begin
        let cut = cut_raw mod n in
        (* Replay the prefix, snapshot, dirty the arena past the cut,
           then restore and re-drive the suffix. *)
        let m = ref (Engine.boot Engine.Compiled group) in
        List.iteri
          (fun i tid ->
            if i < cut then
              match Engine.step !m tid with
              | Ok (m', _) -> m := m'
              | Error _ -> Alcotest.fail "prefix replay refused a step")
          sched;
        let snap = Engine.snapshot !m in
        (* Step past the snapshot so the restore is a genuine rewind,
           not the arena tip. *)
        let dirty = ref (Engine.restore snap) in
        List.iteri
          (fun i tid ->
            if i >= cut then
              match Engine.step !dirty tid with
              | Ok (m', _) -> dirty := m'
              | Error _ -> ())
          sched;
        (* Restore and re-drive: every suffix step must reproduce the
           fresh run's fingerprint exactly. *)
        let r = ref (Engine.restore snap) in
        let ok = ref true in
        List.iteri
          (fun i tid ->
            if i >= cut && !ok then
              match Engine.step !r tid with
              | Ok (m', _) ->
                r := m';
                if
                  not
                    (String.equal (Engine.fingerprint m') (List.nth fps i))
                then ok := false
              | Error _ -> ok := false)
          sched;
        if not !ok then
          dump_counterexample ~schedule:(Fmt.str "seeded-%d" seed)
            ~picked:(List.rev sched) ~step:cut
            ~reason:"restore+suffix diverges from fresh execution" group;
        !ok
      end)

(* --- static instrumentation: bitsets and watchpoints ------------------------ *)

(* Map a dynamic event back to its static pc: thread base name ->
   program, label -> position. *)
let program_of group base =
  match
    List.find_opt
      (fun (t : Ksim.Program.thread_spec) -> String.equal t.spec_name base)
      group.Ksim.Program.threads
  with
  | Some t -> t.program
  | None -> Ksim.Program.find_entry group base

let arb_bitset =
  QCheck.make
    ~print:(fun (g, _) -> Oracle_gen.render_group g)
    QCheck.Gen.(pair Oracle_gen.gen_engine_group (int_range 0 1000))

let prop_bitset_parity =
  QCheck.Test.make ~count:120 ~long_factor:4
    ~name:"static flag/watchpoint tables match dynamic events"
    arb_bitset
    (fun (group, seed) ->
      let st = Random.State.make [| seed |] in
      let pick _ tids =
        List.nth tids (Random.State.int st (List.length tids))
      in
      (* Randomly placed watchpoints (over declared globals) and
         breakpoints (over static labels of every program). *)
      let gnames = List.map fst group.Ksim.Program.globals in
      let watched = List.filter (fun _ -> Random.State.bool st) gnames in
      let all_labels =
        List.concat_map
          (fun (t : Ksim.Program.thread_spec) ->
            Ksim.Program.labels t.program)
          group.Ksim.Program.threads
        @ List.concat_map
            (fun (_, p) -> Ksim.Program.labels p)
            group.Ksim.Program.entries
      in
      let breaks =
        List.filter (fun _ -> Random.State.int st 4 = 0) all_labels
      in
      match check_group ~schedule:(Fmt.str "bitset-seeded-%d" seed)
              (fun () -> pick) group with
      | None -> false
      | Some r ->
        let base = Machine.thread_base r.final_ref in
        let ok_event (ev : Machine.event) =
          let p = program_of group (base ev.iid.Iid.tid) in
          let pc = Ksim.Program.position_of_label p ev.iid.Iid.label in
          let flags = Machine.instr_flags p pc in
          let statics = Machine.instr_globals p pc in
          let has bit = flags land bit <> 0 in
          let access_ok =
            match ev.access with
            | None -> true
            | Some a ->
              has Machine.Flags.accesses
              && (match a.Ksim.Access.kind with
                 | Ksim.Instr.Read -> has Machine.Flags.read
                 | Ksim.Instr.Write -> has Machine.Flags.write
                 | Ksim.Instr.Update -> has Machine.Flags.update)
              &&
              (* watchpoint parity: a dynamic global access must be in
                 the static watchpoint set (no missed watchpoint), and a
                 pc whose static set avoids every watched global must
                 never dynamically touch one (no spurious hit). *)
              (match a.Ksim.Access.addr with
              | Ksim.Addr.Global gv ->
                List.mem gv statics
                && (not (List.mem gv watched)
                   || List.exists (fun s -> List.mem s watched) statics)
              | _ -> true)
          in
          access_ok
          && (ev.lock_op = None || has Machine.Flags.lock)
          && (ev.spawned = [] || has Machine.Flags.spawn)
        in
        let static_ok = List.for_all ok_event r.trace_ref in
        (* breakpoint parity: both engines hit the same breakpoints in
           the same order with the same dynamic identities. *)
        let hits trace =
          List.filter_map
            (fun (ev : Machine.event) ->
              if List.mem ev.iid.Iid.label breaks then
                Some (Iid.to_string ev.iid)
              else None)
            trace
        in
        let break_ok = hits r.trace_ref = hits r.trace_cmp in
        if not (static_ok && break_ok) then
          dump_counterexample ~schedule:(Fmt.str "bitset-seeded-%d" seed)
            ~picked:[] ~step:r.steps
            ~reason:
              (if static_ok then "breakpoint hit sequences diverge"
               else "static flag/watchpoint table contradicts a dynamic event")
            group;
        static_ok && break_ok)

(* --- corpus bugs ------------------------------------------------------------ *)

let test_corpus_bug (bug : Bugs.Bug.t) () =
  let case = bug.case () in
  List.iter
    (fun (schedule, mk) ->
      match check_group ~schedule mk case.group with
      | None ->
        Alcotest.failf "%s: engines diverge under %s (see %s)" bug.id
          schedule counterexample_file
      | Some (_ : run) -> ())
    schedules

(* --- fault-injected diagnoses ----------------------------------------------- *)

(* Identical seeded fault streams on both engines must produce
   byte-identical reports: faults consult only their own PRNG and the
   sequence of decision points, which engine parity keeps identical. *)
let fault_spec =
  match Hypervisor.Faults.spec_of_string "rate=0.2" with
  | Ok s -> s
  | Error e -> failwith e

let test_faulted_parity (bug : Bugs.Bug.t) () =
  List.iter
    (fun seed ->
      let report engine =
        let faults = Hypervisor.Faults.create ~seed fault_spec in
        Aitia.Report.to_string
          (Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
             ~faults ~engine (bug.case ()))
      in
      checks
        (Fmt.str "%s: identical faulted report at seed %d" bug.id seed)
        (report Engine.Reference) (report Engine.Compiled))
    [ 3; 11 ]

(* --- suite ------------------------------------------------------------------- *)

let () =
  (try Sys.remove counterexample_file with Sys_error _ -> ());
  (match Sys.getenv_opt "QCHECK_LONG" with
  | Some _ -> Fmt.pr "engine: QCHECK_LONG set, extended iteration count@."
  | None -> ());
  let corpus_cases =
    List.map
      (fun (bug : Bugs.Bug.t) ->
        Alcotest.test_case bug.id `Quick (test_corpus_bug bug))
      Bugs.Registry.all
  in
  let faulted_cases =
    List.map
      (fun (bug : Bugs.Bug.t) ->
        Alcotest.test_case bug.id `Slow (test_faulted_parity bug))
      [ Bugs.Fig1_nullderef.bug; Bugs.Fig5_search.bug ]
  in
  Alcotest.run "engine"
    [ ( "generated",
        [ QCheck_alcotest.to_alcotest ~speed_level:`Quick prop_lockstep;
          Alcotest.test_case "differential coverage" `Quick
            test_lockstep_coverage ] );
      ( "snapshots",
        [ QCheck_alcotest.to_alcotest ~speed_level:`Quick
            prop_restore_equals_fresh ] );
      ( "instrumentation",
        [ QCheck_alcotest.to_alcotest ~speed_level:`Quick prop_bitset_parity ]
      );
      ("corpus", corpus_cases);
      ("faulted", faulted_cases) ]
