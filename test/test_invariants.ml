(* The error-invariant engine (Analysis.Invariants / Absdom) and the
   invariant-pruned diagnosis path.

   The qcheck property runs the full pipeline twice over the shared
   generated-program corpus (Oracle_gen): a diagnosis under
   --prune=invariants must reproduce iff the plain diagnosis does,
   report the bit-identical causality chain and root causes, and never
   execute more schedules.  The unit tests exercise the derivation
   rules on hand-built traces: the empty displaced window, an
   irrelevant displaced window, ambiguous (heap) aliasing falling back
   to the replay rule, a pending-insertion plan that must execute, the
   family cache, certificate re-checking, and the redundant
   critical-section lint (including nested sections). *)

open Ksim.Program.Build
module Iid = Ksim.Access.Iid
module Invariants = Analysis.Invariants
module Absdom = Analysis.Absdom

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- the parity property ---------------------------------------------------- *)

let case_of_group (group : Ksim.Program.group) : Aitia.Diagnose.case =
  (* The generated failing thread is always "A" and its assertion label
     "a_chk" (Oracle_gen.gen_thread). *)
  { Aitia.Diagnose.case_name = group.Ksim.Program.group_name;
    subsystem = "oracle";
    group;
    history =
      Bugs.Caselib.history ~group ~symptom:"kernel BUG (BUG_ON)"
        ~location:"a_chk" ~subsystem:"oracle" () }

let chain_render (r : Aitia.Diagnose.report) =
  match r.chain with
  | None -> "<no chain>"
  | Some c -> Aitia.Chain.to_string c

let root_keys (r : Aitia.Diagnose.report) =
  match r.causality with
  | None -> []
  | Some ca -> List.map Aitia.Race.key ca.Aitia.Causality.root_causes

let total_schedules (r : Aitia.Diagnose.report) =
  r.lifs.stats.schedules
  +
  match r.causality with
  | Some (ca : Aitia.Causality.result) -> ca.stats.schedules
  | None -> 0

let checked = ref 0
let reproduced_cases = ref 0

let prop_invariant_diagnosis_parity =
  QCheck.Test.make ~count:250 ~long_factor:4
    ~name:"--prune=invariants diagnosis is chain-identical to unpruned"
    Oracle_gen.arb_oracle_group
    (fun group ->
      incr checked;
      let plain =
        Aitia.Diagnose.diagnose ~max_interleavings:16 (case_of_group group)
      in
      let inv =
        Aitia.Diagnose.diagnose ~max_interleavings:16 ~prune:`Invariants
          (case_of_group group)
      in
      if Aitia.Diagnose.reproduced plain then incr reproduced_cases;
      Aitia.Diagnose.reproduced plain = Aitia.Diagnose.reproduced inv
      && String.equal (chain_render plain) (chain_render inv)
      && root_keys plain = root_keys inv
      && total_schedules inv <= total_schedules plain)

let test_parity_coverage () =
  checkb
    (Fmt.str "parity compared on %d generated programs >= 250" !checked)
    true (!checked >= 250);
  checkb "some generated programs reproduced a failure" true
    (!reproduced_cases > 0)

(* --- hand-built traces for the derivation rules ----------------------------- *)

let mk_thread name instrs =
  { Ksim.Program.spec_name = name;
    context = Ksim.Program.Syscall { call = name; sysno = 0 };
    program = Ksim.Program.make ~name instrs;
    resources = [] }

(* flag feeds B's BUG_ON (relevant); stat is pure noise (irrelevant).
   Running B's load before A1 leaves r = 0 and trips the assertion. *)
let fixture =
  Ksim.Program.group ~name:"inv-fixture"
    ~globals:[ ("flag", Ksim.Value.Int 0); ("stat", Ksim.Value.Int 0) ]
    [ mk_thread "A"
        [ store "A0" (g "stat") (cint 1); store "A1" (g "flag") (cint 1) ];
      mk_thread "B"
        [ store "B0" (g "stat") (cint 2); load "B1" "r" (g "flag");
          bug_on "B2" (Eq (reg "r", cint 0)) ] ]

(* Drive the machine through an explicit tid sequence; the final step
   may fault (the events list then ends with the faulting event). *)
let drive group tids =
  let rec go m acc = function
    | [] -> List.rev acc
    | tid :: rest -> (
      match Ksim.Machine.step m tid with
      | Ok (m', ev) -> go m' (ev :: acc) rest
      | Error _ -> Alcotest.fail "drive: machine stuck")
  in
  go (Ksim.Machine.create group) [] tids

let iids trace = List.map (fun (e : Ksim.Machine.event) -> e.iid) trace
let budget = 2_000

let failing_trace = lazy (drive fixture [ 0; 1; 1; 1 ] (* A0 B0 B1 B2 *))

let test_relevance_closure () =
  let rel = Absdom.of_group fixture in
  checkb "flag (feeds the assertion) is relevant" true
    (Absdom.mem_addr rel (Ksim.Addr.Global "flag"));
  checkb "stat (pure noise) is irrelevant" false
    (Absdom.mem_addr rel (Ksim.Addr.Global "stat"))

let test_segment_empty_window () =
  let trace = Lazy.force failing_trace in
  let e = Invariants.create fixture in
  match
    Invariants.prune e ~key:"k-id" ~trace ~plan:(iids trace)
      ~run_through_budget:budget
  with
  | None -> Alcotest.fail "identity plan must be discharged"
  | Some (reason, c) ->
    checkb "segment reason" true
      (String.starts_with ~prefix:"invariant segment:" reason);
    checkb "segment rule" true (c.cert_rule = Invariants.Segment);
    checkb "no displaced window" true (c.cert_window = None);
    checki "no replay steps" 0 c.cert_steps;
    checkb "certificate re-checks" true
      (Invariants.check e ~trace ~plan:(iids trace)
         ~run_through_budget:budget c)

let test_segment_irrelevant_window () =
  let trace = Lazy.force failing_trace in
  let plan =
    match iids trace with
    | a0 :: b0 :: rest -> b0 :: a0 :: rest (* swap the two stat stores *)
    | _ -> Alcotest.fail "unexpected trace shape"
  in
  let e = Invariants.create fixture in
  match
    Invariants.prune e ~key:"k-seg" ~trace ~plan ~run_through_budget:budget
  with
  | None -> Alcotest.fail "irrelevant displacement must be discharged"
  | Some (_, c) ->
    checkb "segment rule" true (c.cert_rule = Invariants.Segment);
    checkb "window covers the swap" true (c.cert_window = Some (0, 1));
    Alcotest.(check (list string))
      "displaced locations" [ "&stat" ] c.cert_displaced;
    (* Tampered evidence must not re-check. *)
    checkb "tampered certificate rejected" false
      (Invariants.check e ~trace ~plan ~run_through_budget:budget
         { c with cert_displaced = [ "&flag" ] })

let test_replay_relevant_window () =
  (* Delaying A0 past the whole of B displaces B's relevant flag load:
     no abstract proof, but the replay mirror still reaches the
     assertion, so the flip is discharged with a state-fingerprint
     chain. *)
  let trace = Lazy.force failing_trace in
  let plan =
    match iids trace with
    | a0 :: rest -> rest @ [ a0 ]
    | _ -> Alcotest.fail "unexpected trace shape"
  in
  let e = Invariants.create fixture in
  match
    Invariants.prune e ~key:"k-rep" ~trace ~plan ~run_through_budget:budget
  with
  | None -> Alcotest.fail "still-failing order must be discharged"
  | Some (reason, c) ->
    checkb "replay reason" true
      (String.starts_with ~prefix:"invariant replay:" reason);
    checkb "replay rule" true (c.cert_rule = Invariants.Replay);
    checkb "replay executed steps" true (c.cert_steps > 0);
    checkb "invariant chain sampled" true (c.cert_fingerprints <> []);
    checkb "certificate re-checks" true
      (Invariants.check e ~trace ~plan ~run_through_budget:budget c)

let test_pending_insertion_no_proof () =
  (* Inserting A1 (pending: never executed in the failing trace) before
     B publishes the flag: the mirrored re-run completes, so no proof
     exists and the flip must execute. *)
  let trace = Lazy.force failing_trace in
  let plan =
    Iid.make ~tid:0 ~label:"A1" ~occ:1 :: iids trace
  in
  let e = Invariants.create fixture in
  checkb "averting flip must execute" true
    (Invariants.prune e ~key:"k-avert" ~trace ~plan
       ~run_through_budget:budget
    = None)

let test_family_cache () =
  let trace = Lazy.force failing_trace in
  let e = Invariants.create fixture in
  let first =
    Invariants.prune e ~key:"race-1" ~trace ~plan:(iids trace)
      ~run_through_budget:budget
  in
  let second =
    Invariants.prune e ~key:"race-2" ~trace ~plan:(iids trace)
      ~run_through_budget:budget
  in
  match first, second with
  | Some _, Some (reason, c) ->
    checkb "family reason" true
      (String.starts_with ~prefix:"invariant family:" reason);
    checks "shares the first proof" "race-1" c.cert_key
  | _ -> Alcotest.fail "both plans must be discharged"

(* Ambiguous aliasing: the displaced window contains a heap-field store
   whose abstraction (Field) may alias across objects — the segment
   rule must refuse even though nothing relevant is displaced, leaving
   the concrete replay rule to decide. *)
let heap_fixture =
  Ksim.Program.group ~name:"inv-heap"
    ~globals:[ ("flag", Ksim.Value.Int 0); ("stat", Ksim.Value.Int 0) ]
    [ mk_thread "A"
        [ alloc "H0" "p" "obj" ~fields:[ ("pad", cint 0) ];
          store "H1" (reg "p" **-> "pad") (cint 1);
          store "H2" (g "flag") (cint 1) ];
      mk_thread "B"
        [ store "B0" (g "stat") (cint 2); load "B1" "r" (g "flag");
          bug_on "B2" (Eq (reg "r", cint 0)) ] ]

let test_ambiguous_aliasing_no_segment_proof () =
  let trace = drive heap_fixture [ 0; 0; 1; 1; 1 ] (* H0 H1 B0 B1 B2 *) in
  let plan =
    match iids trace with
    | h0 :: h1 :: b0 :: rest -> h0 :: b0 :: h1 :: rest
    | _ -> Alcotest.fail "unexpected trace shape"
  in
  let e = Invariants.create heap_fixture in
  match
    Invariants.prune e ~key:"k-heap" ~trace ~plan ~run_through_budget:budget
  with
  | None -> Alcotest.fail "still-failing order must be discharged"
  | Some (_, c) ->
    checkb "heap displacement falls back to replay" true
      (c.cert_rule = Invariants.Replay)

(* --- redundant critical sections -------------------------------------------- *)

(* A's outer L1 section nests the L2 section, so only the inner one is
   straight-line; B's L2 section guards the relevant flag load. *)
let lock_fixture =
  Ksim.Program.group ~name:"inv-locks" ~locks:[ "L1"; "L2" ]
    ~globals:[ ("flag", Ksim.Value.Int 0); ("stat", Ksim.Value.Int 0) ]
    [ mk_thread "A"
        [ lock "A0" "L1"; lock "A1" "L2"; store "A2" (g "stat") (cint 1);
          unlock "A3" "L2"; unlock "A4" "L1"; store "A5" (g "flag") (cint 1)
        ];
      mk_thread "B"
        [ lock "B0" "L2"; load "B1" "r" (g "flag"); unlock "B2" "L2";
          bug_on "B3" (Eq (reg "r", cint 0)) ] ]

let test_redundant_sections () =
  match Invariants.redundant_sections lock_fixture with
  | [ r ] ->
    checks "thread" "A" r.red_thread;
    checks "lock" "L2" r.red_lock;
    checks "witness start" "A1" r.red_start;
    checks "witness stop" "A3" r.red_stop;
    checki "body size" 1 r.red_body
  | rs ->
    Alcotest.failf "expected exactly the inner noise section, got %d"
      (List.length rs)

let () =
  Alcotest.run "invariants"
    [ ( "parity",
        [ QCheck_alcotest.to_alcotest ~speed_level:`Quick
            prop_invariant_diagnosis_parity;
          Alcotest.test_case "coverage" `Quick test_parity_coverage ] );
      ( "derivation",
        [ Alcotest.test_case "relevance closure" `Quick
            test_relevance_closure;
          Alcotest.test_case "empty displaced window" `Quick
            test_segment_empty_window;
          Alcotest.test_case "irrelevant displaced window" `Quick
            test_segment_irrelevant_window;
          Alcotest.test_case "relevant window -> replay" `Quick
            test_replay_relevant_window;
          Alcotest.test_case "pending insertion -> no proof" `Quick
            test_pending_insertion_no_proof;
          Alcotest.test_case "family cache" `Quick test_family_cache;
          Alcotest.test_case "ambiguous aliasing -> no segment proof"
            `Quick test_ambiguous_aliasing_no_segment_proof ] );
      ( "lint",
        [ Alcotest.test_case "redundant sections" `Quick
            test_redundant_sections ] ) ]
