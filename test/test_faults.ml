(* Fault injection and the resilient execution layer: unit tests for
   the deterministic fault stream (spec parsing, seeded determinism,
   watchdog caps, verdict flaps), the executor's per-class reactions
   (retry on taint, quorum voting, snapshot poisoning on corrupted
   restores), the resumable diagnosis journal, and the acceptance
   suites — chaos parity across the 22-bug corpus at a 5% mixed fault
   rate, the retries-disabled degraded mode (exit code 3, never a
   crash), and journal resume re-executing strictly fewer instructions
   while producing a byte-identical report.

   CHAOS_SEED overrides the fault seed for the corpus suites (the
   nightly CI job randomizes it); parity mismatches are appended to
   chaos_counterexamples.txt so CI can upload them. *)

open Ksim.Program.Build
module Faults = Hypervisor.Faults
module Schedule = Hypervisor.Schedule
module Snapshots = Hypervisor.Snapshots
module Executor = Aitia.Executor
module Resilience = Aitia.Resilience
module Journal = Aitia.Journal
module Iid = Ksim.Access.Iid

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> int_of_string s
  | None -> 7

let corpus = Bugs.Registry.cves @ Bugs.Registry.syzkaller

let chaos_spec =
  match Faults.spec_of_string "rate=0.05" with
  | Ok s -> s
  | Error e -> failwith e

let no_retry = { Resilience.max_retries = 0; quorum = 1; backoff_base = 0. }

let chain_str (r : Aitia.Diagnose.report) =
  match r.chain with Some c -> Aitia.Chain.to_string c | None -> "-"

let taintable (c : Faults.counts) =
  c.n_boot + c.n_hang + c.n_miss + c.n_spurious

(* --- fixtures (as in test_snapshots) ------------------------------------ *)

let globals = [ ("g0", Ksim.Value.Int 0); ("g1", Ksim.Value.Int 0) ]

let mk_group name specs =
  Ksim.Program.group ~name ~globals
    (List.map
       (fun (tname, instrs) ->
         { Ksim.Program.spec_name = tname;
           context = Ksim.Program.Syscall { call = tname; sysno = 0 };
           program = Ksim.Program.make ~name:tname instrs;
           resources = [] })
       specs)

(* A deterministic failing group: serial [A; B] faults at [a3]. *)
let failing_group () =
  mk_group "fault-fail"
    [ ( "A",
        [ store "a1" (g "g0") (cint 1);
          load "a2" "r" (g "g0");
          bug_on "a3" (Eq (reg "r", cint 1)) ] );
      ("B", [ store "b1" (g "g0") (cint 0); nop "b2" ]) ]

let benign_group () =
  mk_group "fault-ok"
    [ ( "A",
        [ store "a1" (g "g0") (cint 1);
          load "a2" "r" (g "g1");
          store "a3" (g "g1") (cint 2);
          nop "a4" ] );
      ( "B",
        [ load "b1" "r" (g "g0");
          store "b2" (g "g0") (cint 3);
          nop "b3" ] ) ]

let serial_sched = Schedule.serial [ 0; 1 ]

let iids_of (o : Hypervisor.Controller.outcome) =
  List.map (fun (e : Ksim.Machine.event) -> e.iid) o.trace

let same_outcome (a : Hypervisor.Controller.outcome)
    (b : Hypervisor.Controller.outcome) =
  a.verdict = b.verdict && a.steps = b.steps
  && List.length a.trace = List.length b.trace
  && List.for_all2 Iid.equal (iids_of a) (iids_of b)
  && String.equal
       (Ksim.Machine.fingerprint a.final)
       (Ksim.Machine.fingerprint b.final)

let child_of (o : Hypervisor.Controller.outcome) ~index ~switch_to =
  let e = List.nth o.trace index in
  { serial_sched with
    Schedule.switches =
      [ { Schedule.after = e.Ksim.Machine.iid; switch_to } ] }

(* --- unit: spec parsing -------------------------------------------------- *)

let test_spec_parse () =
  (match Faults.spec_of_string "rate=0.3" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    let p = 0.3 /. 6. in
    checkb "rate splits evenly across the six kinds" true
      (s.boot = p && s.hang = p && s.miss = p && s.spurious = p
     && s.restore = p && s.flap = p && s.site = None));
  (match Faults.spec_of_string "boot=0.25, flap=0.5,site=a2" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    checkb "per-kind keys and site" true
      (s.boot = 0.25 && s.flap = 0.5 && s.site = Some "a2" && s.hang = 0.));
  (match Faults.spec_of_string "rate=0.6,flap=0" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    checkb "later keys override earlier ones" true
      (s.flap = 0. && s.boot = 0.6 /. 6.));
  let bad s =
    match Faults.spec_of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "rate above 1 rejected" true (bad "rate=1.5");
  checkb "negative rate rejected" true (bad "boot=-0.1");
  checkb "garbage rate rejected" true (bad "hang=lots");
  checkb "unknown kind rejected" true (bad "cosmic=0.5");
  checkb "missing '=' rejected" true (bad "boot");
  checkb "empty site rejected" true (bad "site=")

(* --- unit: determinism --------------------------------------------------- *)

let test_determinism () =
  let bug = Bugs.Fig1_nullderef.bug in
  let run seed =
    let faults = Faults.create ~seed (Faults.mixed 0.6) in
    let r = Aitia.Diagnose.diagnose ~faults (bug.case ()) in
    (Aitia.Report.to_string r, r.faults_injected)
  in
  (* Find a seed whose fault schedule actually perturbs this (small)
     case, then re-run it: determinism must hold fault-for-fault. *)
  let rec firing seed =
    if seed > 60 then Alcotest.fail "no firing seed found"
    else
      let s, n = run seed in
      if n > 0 then (seed, s, n) else firing (seed + 1)
  in
  let seed, s1, n1 = firing 1 in
  let s2, n2 = run seed in
  checks "same (spec, seed) => identical report" s1 s2;
  checki "same (spec, seed) => identical fault count" n1 n2

(* --- unit: watchdog, boot, flap decision points --------------------------- *)

let test_decision_points () =
  let f = Faults.create ~seed:5 { Faults.none with hang = 1.0 } in
  Faults.start_attempt f;
  (match Faults.plan_hang f ~max_steps:100 with
  | None -> Alcotest.fail "hang=1.0 must always plan a hang"
  | Some cap ->
    checkb "hang cap within the watchdog budget" true (cap >= 1 && cap < 100);
    checkb "planning alone does not taint" false (Faults.tainted f);
    Faults.note_hang f;
    checkb "a fired hang taints the attempt" true (Faults.tainted f);
    checki "and is counted" 1 (Faults.counts f).n_hang);
  let b = Faults.create ~seed:5 { Faults.none with boot = 1.0 } in
  Faults.start_attempt b;
  checkb "boot=1.0 always fails the boot" true (Faults.boot_fails b);
  checkb "boot failure taints" true (Faults.tainted b);
  (* Flaps flip the verdict and never taint. *)
  let group = failing_group () in
  let clean =
    (Executor.run_preemption (Hypervisor.Vm.create group) serial_sched)
      .outcome
  in
  checkb "fixture fails fault-free" true
    (match clean.verdict with
    | Hypervisor.Controller.Failed _ -> true
    | _ -> false);
  let fl = Faults.create ~seed:5 { Faults.none with flap = 1.0 } in
  Faults.start_attempt fl;
  let flipped = Faults.flap fl clean in
  checkb "flap flips the verdict" true (flipped.verdict <> clean.verdict);
  checkb "flap does not taint" false (Faults.tainted fl);
  checki "flap counted" 1 (Faults.counts fl).n_flap

(* --- unit: retry masks transient taints ---------------------------------- *)

let test_retry_masks_taints () =
  (* Every schedule suffers a missed preemption; retries re-run until a
     clean attempt, so the outcome still matches the fault-free run. *)
  let group = failing_group () in
  let clean =
    (Executor.run_preemption (Hypervisor.Vm.create group) serial_sched)
      .outcome
  in
  let sched =
    { serial_sched with
      Schedule.switches =
        [ { Schedule.after = Iid.make ~tid:0 ~label:"a1" ~occ:1;
            switch_to = 1 } ] }
  in
  let clean_sw =
    (Executor.run_preemption (Hypervisor.Vm.create group) sched).outcome
  in
  let faults = Faults.create ~seed:2 { Faults.none with miss = 0.9 } in
  let vm = Hypervisor.Vm.create ~faults group in
  let res = Resilience.create () in
  let r = Executor.run_preemption ~resilience:res vm sched in
  checkb "faults fired" true ((Faults.counts faults).n_miss > 0);
  if res.stats.gave_up = 0 then begin
    checkb "retried outcome identical to fault-free" true
      (same_outcome r.outcome clean_sw);
    checkb "full confidence after clean retry" true (r.confidence = 1.0);
    checkb "retries were spent" true (res.stats.retries > 0)
  end
  else
    (* Budget exhausted at this seed: the degraded contract instead. *)
    checkb "exhausted budget yields zero confidence" true
      (r.confidence = 0.0);
  ignore clean

(* --- unit: quorum voting -------------------------------------------------- *)

let test_quorum_unanimous_flap () =
  (* flap=1.0: every clean run flaps the same way, the quorum agrees on
     the flipped verdict — undetectable by construction. *)
  let group = failing_group () in
  let faults = Faults.create ~seed:3 { Faults.none with flap = 1.0 } in
  let vm = Hypervisor.Vm.create ~faults group in
  let res = Resilience.create () in
  let r = Executor.run_preemption ~resilience:res vm serial_sched in
  checkb "quorum gathered extra runs" true (res.stats.quorum_runs > 0);
  checkb "unanimous flap accepted at full confidence" true
    (r.confidence = 1.0);
  checkb "verdict is the flipped one" true
    (match r.outcome.verdict with
    | Hypervisor.Controller.Failed _ -> false
    | _ -> true)

let test_quorum_masks_and_flags () =
  (* At flap=0.5 sweep seeds for (a) a masked flap: the quorum verdict
     equals the fault-free one even though flaps were injected, and
     (b) a disagreement accepted below full confidence. *)
  let group = failing_group () in
  let clean_failed =
    match
      (Executor.run_preemption (Hypervisor.Vm.create group) serial_sched)
        .outcome
        .verdict
    with
    | Hypervisor.Controller.Failed _ -> true
    | _ -> false
  in
  checkb "fixture fails fault-free" true clean_failed;
  let masked = ref false and flagged = ref false in
  for seed = 1 to 60 do
    if not (!masked && !flagged) then begin
      let faults = Faults.create ~seed { Faults.none with flap = 0.5 } in
      let vm = Hypervisor.Vm.create ~faults group in
      let res = Resilience.create () in
      let r = Executor.run_preemption ~resilience:res vm serial_sched in
      let failed =
        match r.outcome.verdict with
        | Hypervisor.Controller.Failed _ -> true
        | _ -> false
      in
      if (Faults.counts faults).n_flap > 0 && failed then masked := true;
      if res.stats.quorum_disagreements > 0 then begin
        flagged := true;
        checkb "disagreement lowers confidence" true (r.confidence < 1.0);
        checkb "disagreement accounted" true (res.stats.low_confidence > 0);
        checkb "disagreement degrades" true (Resilience.degraded res)
      end
    end
  done;
  checkb "quorum masked an injected flap at some seed" true !masked;
  checkb "quorum flagged a disagreement at some seed" true !flagged

(* --- unit: corrupted restores poison the cache ---------------------------- *)

let test_corruption_poisons_cache () =
  let group = benign_group () in
  let faults = Faults.create ~seed:3 { Faults.none with restore = 1.0 } in
  let cache = Snapshots.create () in
  let vm = Hypervisor.Vm.create ~faults group in
  let recorder = Telemetry.Recorder.create () in
  Telemetry.Probe.with_sink (Telemetry.Recorder.sink recorder) (fun () ->
      let parent = Executor.run_preemption ~snapshots:cache vm serial_sched in
      checki "parent stored" 1 (Snapshots.cached_vectors cache);
      let child = child_of parent.outcome ~index:1 ~switch_to:1 in
      let cached = Executor.run_preemption ~snapshots:cache vm child in
      let fresh =
        (Executor.run_preemption (Hypervisor.Vm.create group) child).outcome
      in
      checkb "corrupted restore degrades to a correct fresh run" true
        (same_outcome cached.outcome fresh);
      checkb "restore fault counted" true
        ((Faults.counts faults).n_restore > 0);
      checkb "entry poisoned" true (Snapshots.poisonings cache > 0);
      (* The poisoned entry is refused on the next lookup. *)
      checkb "poisoned entry refused" true
        (Snapshots.find_preemption cache child = None);
      checkb "refusal counted" true (Snapshots.poisoned_refusals cache > 0));
  checkb "faults.restore telemetry counter" true
    (Telemetry.Recorder.counter recorder "faults.restore" > 0);
  checkb "snapshot.poisonings telemetry counter" true
    (Telemetry.Recorder.counter recorder "snapshot.poisonings" > 0);
  checkb "snapshot.poisoned_refusals telemetry counter" true
    (Telemetry.Recorder.counter recorder "snapshot.poisoned_refusals" > 0)

(* --- unit: journal load/save --------------------------------------------- *)

let test_journal_files () =
  let missing = Filename.temp_file "aitia-journal-missing" ".json" in
  Sys.remove missing;
  (match Journal.load missing with
  | Ok j -> checkb "missing file is a fresh journal" true (Journal.path j = missing)
  | Error e -> Alcotest.failf "missing file must not error: %s" e);
  let garbage = Filename.temp_file "aitia-journal-garbage" ".json" in
  let oc = open_out garbage in
  output_string oc "{\"cases\": [truncated";
  close_out oc;
  (match Journal.load garbage with
  | Ok _ -> Alcotest.fail "malformed journal must be an Error"
  | Error _ -> ());
  Sys.remove garbage

let test_journal_fixpoint () =
  (* A journaled diagnosis, loaded and saved again, round-trips to the
     same entries: the parser and printer agree. *)
  let bug = Bugs.Fig1_nullderef.bug in
  let path = Filename.temp_file "aitia-journal-fix" ".json" in
  let j = Journal.create path in
  let r = Aitia.Diagnose.diagnose ~journal:j (bug.case ()) in
  checkb "diagnosed" true (Aitia.Diagnose.reproduced r);
  let j1 =
    match Journal.load path with
    | Ok j -> j
    | Error e -> Alcotest.failf "reload: %s" e
  in
  let e1 = Journal.find_case j1 r.case.case_name in
  checkb "case journaled" true (e1 <> None);
  (match e1 with
  | Some e ->
    checkb "case complete" true e.complete;
    checki "one slice per attempt" r.slices_tried (List.length e.slices);
    (match List.rev e.slices with
    | Journal.Reproduced rs :: _ ->
      checkb "every flip journaled" true
        (match r.causality with
        | Some ca -> List.length rs.r_flips = List.length ca.tested
        | None -> false);
      checkb "causality marked complete" true rs.r_ca_complete
    | _ -> Alcotest.fail "last slice must be the reproducing one")
  | None -> ());
  Journal.save j1;
  let j2 =
    match Journal.load path with
    | Ok j -> j
    | Error e -> Alcotest.failf "second reload: %s" e
  in
  checkb "save/load is a fixpoint" true
    (Journal.find_case j2 r.case.case_name = e1);
  Sys.remove path

(* --- unit: exit codes ------------------------------------------------------ *)

let test_exit_status () =
  let bug = Bugs.Fig1_nullderef.bug in
  let ok = Aitia.Diagnose.diagnose (bug.case ()) in
  checkb "fig1 diagnoses cleanly" true
    (Aitia.Diagnose.reproduced ok && not ok.degraded);
  let norepro = Aitia.Diagnose.diagnose ~max_steps:1 (bug.case ()) in
  checkb "1-step budget cannot reproduce" false
    (Aitia.Diagnose.reproduced norepro);
  let rec degraded_at seed =
    if seed > 60 then Alcotest.fail "no degrading seed found"
    else
      let faults = Faults.create ~seed (Faults.mixed 0.5) in
      let r =
        Aitia.Diagnose.diagnose ~faults ~resilience:no_retry (bug.case ())
      in
      if r.degraded then r else degraded_at (seed + 1)
  in
  let deg = degraded_at 1 in
  checki "all clean => 0" 0 (Aitia.Report.exit_status [ ok ]);
  checki "clean non-reproduction => 1" 1 (Aitia.Report.exit_status [ norepro ]);
  checki "non-reproduction dominates" 1
    (Aitia.Report.exit_status [ ok; norepro; deg ]);
  checki "degraded => 3" 3 (Aitia.Report.exit_status [ ok; deg ]);
  checki "empty => 0" 0 (Aitia.Report.exit_status [])

(* --- acceptance: chaos parity across the corpus ---------------------------- *)

let clean_reports =
  lazy
    (List.map
       (fun (bug : Bugs.Bug.t) ->
         ( bug,
           Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
             (bug.case ()) ))
       corpus)

let log_counterexample ~bug ~seed ~clean ~faulted =
  let oc =
    open_out_gen
      [ Open_append; Open_creat ]
      0o644 "chaos_counterexamples.txt"
  in
  Printf.fprintf oc
    "bug=%s seed=%d spec=%s\n  clean:   %s\n  faulted: %s\n" bug seed
    (Faults.spec_to_string chaos_spec)
    clean faulted;
  close_out oc

(* Confidence annotations ([~67%]) are resilience metadata on a chain
   node, not diagnosis structure: a quorum that converged to the right
   verdict 2-to-1 still annotates.  Strip them before the structural
   comparison; raw bit-identity is additionally required whenever the
   faulted run never lost confidence (annotations then cannot exist). *)
let strip_confidence s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents b
    else if i + 1 < n && s.[i] = '[' && s.[i + 1] = '~' then
      match String.index_from_opt s i ']' with
      | Some j -> go (j + 1)
      | None ->
        Buffer.add_char b s.[i];
        go (i + 1)
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

let chaos_parity (bug : Bugs.Bug.t) () =
  let _, clean =
    List.find (fun (b, _) -> b == bug) (Lazy.force clean_reports)
  in
  let faults = Faults.create ~seed:chaos_seed chaos_spec in
  let faulted =
    Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings ~faults
      (bug.case ())
  in
  let cs = chain_str clean and fs = chain_str faulted in
  if not (String.equal cs (strip_confidence fs)) then
    log_counterexample ~bug:bug.id ~seed:chaos_seed ~clean:cs ~faulted:fs;
  checks "identical causality chain under 5% faults" cs
    (strip_confidence fs);
  if not faulted.degraded then
    checks "bit-identical causality chain under 5% faults" cs fs;
  checkb "reproduction preserved" true
    (Aitia.Diagnose.reproduced clean = Aitia.Diagnose.reproduced faulted);
  (match (clean.causality, faulted.causality) with
  | Some a, Some b ->
    checki "identical root-cause count" (List.length a.root_causes)
      (List.length b.root_causes)
  | None, None -> ()
  | _ -> Alcotest.fail "faults changed whether causality analysis ran")

(* --- acceptance: retries disabled degrades visibly, never crashes ---------- *)

let test_degraded_mode () =
  let reports =
    List.map
      (fun (bug : Bugs.Bug.t) ->
        let faults = Faults.create ~seed:chaos_seed chaos_spec in
        let r =
          Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
            ~faults ~resilience:no_retry (bug.case ())
        in
        (* Any taintable fault with a zero retry budget must surface as
           a degraded diagnosis — and only those may degrade. *)
        checkb
          (Fmt.str "%s: degraded iff a taintable fault fired" bug.id)
          (taintable (Faults.counts faults) > 0)
          r.degraded;
        r)
      corpus
  in
  let injected =
    List.fold_left (fun n (r : Aitia.Diagnose.report) -> n + r.faults_injected)
      0 reports
  in
  checkb "faults actually fired across the corpus" true (injected > 0);
  checkb "at least one diagnosis degraded" true
    (List.exists (fun (r : Aitia.Diagnose.report) -> r.degraded) reports);
  let status = Aitia.Report.exit_status reports in
  checkb "degradation is visible in the exit status" true
    (status = 1 || status = 3)

(* --- acceptance: journal resume ------------------------------------------- *)

let instrs_during f =
  let recorder = Telemetry.Recorder.create () in
  let v = Telemetry.Probe.with_sink (Telemetry.Recorder.sink recorder) f in
  (v, Telemetry.Recorder.counter recorder "controller.instructions", recorder)

exception Interrupted

(* A sink that raises once the (n+1)-th Causality flip closes: the
   journal then holds exactly n checkpointed flips — a deterministic
   stand-in for a kill mid-diagnosis, landing between two of the
   journal's atomic saves. *)
let interrupt_after_flips n inner =
  let seen = ref 0 in
  { inner with
    Telemetry.Sink.on_span =
      (fun s ->
        inner.Telemetry.Sink.on_span s;
        if String.equal s.Telemetry.Sink.span_name "causality.flip" then begin
          incr seen;
          if !seen > n then raise Interrupted
        end) }

let test_journal_resume () =
  let bug = Bugs.Fig5_search.bug in
  let case () = bug.case () in
  let fresh, fresh_instrs, _ =
    instrs_during (fun () -> Aitia.Diagnose.diagnose (case ()))
  in
  let fresh_s = Aitia.Report.to_string fresh in
  let path = Filename.temp_file "aitia-journal-resume" ".json" in
  let journaled, journaled_instrs, _ =
    instrs_during (fun () ->
        Aitia.Diagnose.diagnose ~journal:(Journal.create path) (case ()))
  in
  checks "journaling changes nothing in the report" fresh_s
    (Aitia.Report.to_string journaled);
  checki "journaling executes exactly the same instructions" fresh_instrs
    journaled_instrs;
  Sys.remove path;
  (* Kill the diagnosis after its first checkpointed flip, then resume:
     finished slices and journaled flips replay instead of
     re-executing. *)
  let recorder = Telemetry.Recorder.create () in
  (match
     Telemetry.Probe.with_sink
       (interrupt_after_flips 1 (Telemetry.Recorder.sink recorder))
       (fun () ->
         Aitia.Diagnose.diagnose ~journal:(Journal.create path) (case ()))
   with
  | (_ : Aitia.Diagnose.report) ->
    Alcotest.fail "diagnosis was supposed to be interrupted"
  | exception Interrupted -> ());
  (match Journal.load path with
  | Ok j -> (
    match Journal.find_case j fresh.case.case_name with
    | Some entry ->
      checkb "interrupted case is incomplete" false entry.complete
    | None -> Alcotest.fail "interrupted journal lost the case")
  | Error e -> Alcotest.failf "interrupted journal unreadable: %s" e);
  let resumed, resumed_instrs, recorder =
    instrs_during (fun () ->
        match Journal.load path with
        | Ok j -> Aitia.Diagnose.diagnose ~journal:j (case ())
        | Error e -> Alcotest.failf "resume load: %s" e)
  in
  checks "resumed report is byte-identical" fresh_s
    (Aitia.Report.to_string resumed);
  checkb
    (Fmt.str "resume executes strictly fewer instructions (%d < %d)"
       resumed_instrs fresh_instrs)
    true
    (resumed_instrs < fresh_instrs);
  checkb "journaled flips replayed" true
    (Telemetry.Recorder.counter recorder "causality.flips_replayed" > 0);
  (* Resume over the now-complete journal re-runs only the reproducing
     schedule — cheaper still. *)
  let complete, complete_instrs, _ =
    instrs_during (fun () ->
        match Journal.load path with
        | Ok j -> Aitia.Diagnose.diagnose ~journal:j (case ())
        | Error e -> Alcotest.failf "complete load: %s" e)
  in
  checks "complete-journal report is byte-identical" fresh_s
    (Aitia.Report.to_string complete);
  checkb
    (Fmt.str "complete journal replays even more (%d < %d)" complete_instrs
       resumed_instrs)
    true
    (complete_instrs < resumed_instrs);
  Sys.remove path

(* --- suite ------------------------------------------------------------------ *)

let () =
  let parity_cases =
    List.map
      (fun (bug : Bugs.Bug.t) ->
        Alcotest.test_case bug.id `Quick (chaos_parity bug))
      corpus
  in
  Alcotest.run "faults"
    [ ( "units",
        [ Alcotest.test_case "fault spec parsing" `Quick test_spec_parse;
          Alcotest.test_case "seeded determinism" `Quick test_determinism;
          Alcotest.test_case "decision points" `Quick test_decision_points;
          Alcotest.test_case "retry masks transient taints" `Quick
            test_retry_masks_taints;
          Alcotest.test_case "quorum: unanimous flap" `Quick
            test_quorum_unanimous_flap;
          Alcotest.test_case "quorum: masking and disagreement" `Quick
            test_quorum_masks_and_flags;
          Alcotest.test_case "corrupted restore poisons the cache" `Quick
            test_corruption_poisons_cache ] );
      ( "journal",
        [ Alcotest.test_case "missing and malformed files" `Quick
            test_journal_files;
          Alcotest.test_case "save/load fixpoint" `Quick
            test_journal_fixpoint ] );
      ("exit-codes", [ Alcotest.test_case "exit_status" `Quick test_exit_status ]);
      ("chaos-parity", parity_cases);
      ( "degraded-mode",
        [ Alcotest.test_case "retries disabled: visible, never crashes"
            `Quick test_degraded_mode ] );
      ( "resume",
        [ Alcotest.test_case "journal resume is cheaper and identical"
            `Quick test_journal_resume ] ) ]
