(* Brute-force differential oracle for LIFS + the snapshot cache.

   For small generated programs the oracle exhaustively enumerates
   EVERY interleaving (every runnable-thread choice at every step) and
   records which of them fail.  LIFS — searching with the snapshot
   cache enabled — must find a failure iff the oracle does, its failing
   trace must be one of the oracle's failing interleavings, and its
   reported race set must equal an independent computation over that
   same interleaving.

   The fig* corpus bugs are run through a fingerprint-memoized variant
   of the oracle (complete for failure reachability, tractable on the
   larger state spaces) and cross-checked the same way.

   QCHECK_SEED fixes the generator seed; QCHECK_LONG multiplies the
   iteration count (both read by qcheck-alcotest).  Failing cases are
   appended to oracle_counterexamples.txt for CI artifact upload. *)

module Iid = Ksim.Access.Iid
module Schedule = Hypervisor.Schedule
module Snapshots = Hypervisor.Snapshots
module Lifs = Aitia.Lifs
module Race = Aitia.Race

let checkb = Alcotest.(check bool)

(* --- the oracle ----------------------------------------------------------- *)

let digest_of_iids iids =
  Digest.to_hex
    (Digest.string (String.concat ";" (List.map Iid.to_string iids)))

type oracle = {
  mutable paths : int;        (** terminal interleavings enumerated *)
  mutable capped : bool;      (** hit the path budget: result partial *)
  failing : (string, string list) Hashtbl.t;
      (** digest of the failing trace's iid sequence -> sorted race keys *)
  failures : (string, unit) Hashtbl.t;  (** distinct failure renderings *)
}

let race_keys trace =
  List.sort_uniq String.compare (List.map Race.key (Race.of_trace trace))

let record_failure o trace_rev f =
  let trace = List.rev trace_rev in
  let iids = List.map (fun (e : Ksim.Machine.event) -> e.iid) trace in
  Hashtbl.replace o.failing (digest_of_iids iids) (race_keys trace);
  Hashtbl.replace o.failures (Ksim.Failure.to_string f) ()

(* Exhaustive enumeration: one DFS branch per runnable thread per step.
   Terminal nodes are failures (the machine faulted), completions
   (leak-checked) and deadlocks.  Matches the controller's semantics
   exactly — the controller is one path of this tree.  Runs on the
   reference engine by default, so the oracle's ground truth is the
   reference semantics while LIFS under test runs the session default;
   pass [~engine] to brute-force the other engine instead. *)
let enumerate ?(max_paths = 60_000) ?(max_depth = 200)
    ?(engine = Ksim.Engine.Reference) group =
  let o =
    { paths = 0; capped = false; failing = Hashtbl.create 64;
      failures = Hashtbl.create 8 }
  in
  let rec go m trace_rev depth =
    if o.capped then ()
    else if depth > max_depth then o.capped <- true
    else
      match Ksim.Machine.runnable m with
      | [] ->
        o.paths <- o.paths + 1;
        if o.paths > max_paths then o.capped <- true
        else if Ksim.Machine.all_done m then (
          match Ksim.Machine.failed (Ksim.Machine.check_leaks m) with
          | Some f -> record_failure o trace_rev f
          | None -> ())
      | tids ->
        List.iter
          (fun tid ->
            if not o.capped then
              match Ksim.Engine.step m tid with
              | Error _ -> ()
              | Ok (m', ev) -> (
                match Ksim.Machine.failed m' with
                | Some f ->
                  o.paths <- o.paths + 1;
                  if o.paths > max_paths then o.capped <- true
                  else record_failure o (ev :: trace_rev) f
                | None -> go m' (ev :: trace_rev) (depth + 1)))
          tids
  in
  go (Ksim.Engine.boot engine group) [] 0;
  o

(* Memoized variant: complete for WHICH failures are reachable (every
   reachable state is expanded exactly once), but does not keep the
   failing traces — used for the corpus bugs whose interleaving count
   is beyond full enumeration. *)
let enumerate_memo ?(max_states = 300_000) ?(engine = Ksim.Engine.Reference)
    group =
  let o =
    { paths = 0; capped = false; failing = Hashtbl.create 1;
      failures = Hashtbl.create 8 }
  in
  let seen = Hashtbl.create 4096 in
  let rec go m =
    if o.capped then ()
    else
      let fp = Ksim.Engine.fingerprint m in
      if Hashtbl.mem seen fp then ()
      else begin
        Hashtbl.replace seen fp ();
        if Hashtbl.length seen > max_states then o.capped <- true
        else
          match Ksim.Machine.runnable m with
          | [] ->
            if Ksim.Machine.all_done m then (
              match Ksim.Machine.failed (Ksim.Machine.check_leaks m) with
              | Some f -> Hashtbl.replace o.failures (Ksim.Failure.to_string f) ()
              | None -> ())
          | tids ->
            List.iter
              (fun tid ->
                if not o.capped then
                  match Ksim.Engine.step m tid with
                  | Error _ -> ()
                  | Ok (m', _) -> (
                    match Ksim.Machine.failed m' with
                    | Some f ->
                      Hashtbl.replace o.failures
                        (Ksim.Failure.to_string f) ()
                    | None -> go m'))
              tids
      end
  in
  go (Ksim.Engine.boot engine group);
  o

let oracle_finds o = Hashtbl.length o.failures > 0

(* --- LIFS under test ------------------------------------------------------- *)

let lifs_with_cache ?max_interleavings group =
  let cache = Snapshots.create () in
  let vm = Hypervisor.Vm.create group in
  Lifs.search ?max_interleavings ~snapshots:cache vm
    ~target:(fun _ -> true) ()

(* --- counterexample dump --------------------------------------------------- *)

let counterexample_file = "oracle_counterexamples.txt"

let render_group = Oracle_gen.render_group

let dump_counterexample group reason =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 counterexample_file
  in
  output_string oc
    (Fmt.str "=== oracle counterexample: %s@.%s@." reason
       (render_group group));
  close_out oc

(* --- generated programs ---------------------------------------------------- *)

(* The generator lives in Oracle_gen, shared with test_invariants.ml. *)
let arb_oracle_group = Oracle_gen.arb_oracle_group

let checked = ref 0
let agreements_failing = ref 0

let prop_lifs_matches_oracle =
  QCheck.Test.make ~count:250 ~long_factor:10
    ~name:"LIFS+cache finds a failure iff the brute-force oracle does"
    arb_oracle_group
    (fun group ->
      let o = enumerate group in
      if o.capped then true (* state space too large: not a verdict *)
      else begin
        incr checked;
        let result = lifs_with_cache ~max_interleavings:16 group in
        let ok =
          match result.found with
          | None ->
            if oracle_finds o then (
              dump_counterexample group
                "oracle finds a failing interleaving, LIFS does not";
              false)
            else true
          | Some s ->
            incr agreements_failing;
            if not (oracle_finds o) then (
              dump_counterexample group
                "LIFS reports a failure the oracle cannot reach";
              false)
            else
              let iids =
                List.map
                  (fun (e : Ksim.Machine.event) -> e.iid)
                  s.outcome.trace
              in
              let digest = digest_of_iids iids in
              (match Hashtbl.find_opt o.failing digest with
              | None ->
                dump_counterexample group
                  "LIFS's failing trace is not an oracle interleaving";
                false
              | Some oracle_races ->
                (* LIFS reports trace races plus db-derived pending
                   races; the oracle independently recomputed the trace
                   races of the identical interleaving, so those must
                   coincide exactly and be contained in the report. *)
                let trace_races = race_keys s.outcome.trace in
                let reported =
                  List.sort_uniq String.compare (List.map Race.key s.races)
                in
                if trace_races <> oracle_races then (
                  dump_counterexample group
                    "race sets differ on the same failing interleaving";
                  false)
                else if
                  not
                    (List.for_all
                       (fun k -> List.mem k reported)
                       oracle_races)
                then (
                  dump_counterexample group
                    "LIFS's reported races omit a race of its own trace";
                  false)
                else true)
        in
        ok
      end)

let test_oracle_coverage () =
  (* The acceptance bar: the differential comparison really ran on at
     least 200 generated programs, and the failing direction was
     exercised, not just vacuously agreed on. *)
  checkb
    (Fmt.str "checked %d generated programs >= 200" !checked)
    true (!checked >= 200);
  checkb "some generated programs actually failed" true
    (!agreements_failing > 0)

(* --- fig* corpus bugs ------------------------------------------------------ *)

let fig_bugs =
  List.filter
    (fun (b : Bugs.Bug.t) ->
      String.length b.id >= 3 && String.sub b.id 0 3 = "fig")
    Bugs.Registry.all

let test_fig_bug (bug : Bugs.Bug.t) () =
  let case = bug.case () in
  let o = enumerate_memo case.group in
  checkb
    (Fmt.str "%s: oracle reaches a failure" bug.id)
    true
    (o.capped || oracle_finds o);
  if not o.capped then begin
    (* the diagnosis pipeline (with the cache) agrees with the oracle *)
    let report =
      Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
        ~snapshot_cache:true case
    in
    checkb
      (Fmt.str "%s: pipeline reproduces what the oracle reaches" bug.id)
      true
      (Aitia.Diagnose.reproduced report)
  end

let () =
  (try Sys.remove counterexample_file with Sys_error _ -> ());
  (match Sys.getenv_opt "QCHECK_LONG" with
  | Some _ -> Fmt.pr "oracle: QCHECK_LONG set, extended iteration count@."
  | None -> ());
  let fig_cases =
    List.map
      (fun (bug : Bugs.Bug.t) ->
        Alcotest.test_case bug.id `Slow (test_fig_bug bug))
      fig_bugs
  in
  Alcotest.run "oracle"
    [ ( "generated",
        [ QCheck_alcotest.to_alcotest ~speed_level:`Quick
            prop_lifs_matches_oracle;
          Alcotest.test_case "differential coverage" `Quick
            test_oracle_coverage ] );
      ("figures", fig_cases) ]
