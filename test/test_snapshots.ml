(* The prefix-sharing snapshot cache: unit tests for the cache
   mechanics (eviction, poisoning, zero budget) and qcheck properties
   asserting that restore+suffix execution is state-identical to a
   fresh run — machine fingerprint, heap, verdict, trace — and that the
   whole diagnosis pipeline is bit-identical with the cache on or off
   across the full bug corpus. *)

open Ksim.Program.Build
module Iid = Ksim.Access.Iid
module Schedule = Hypervisor.Schedule
module Snapshots = Hypervisor.Snapshots
module Executor = Aitia.Executor

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- outcome identity -------------------------------------------------- *)

let iids_of (o : Hypervisor.Controller.outcome) =
  List.map (fun (e : Ksim.Machine.event) -> e.iid) o.trace

(* Full observable identity of two runs: verdict, executed instruction
   sequence, step count, and the canonical digest of the final machine
   (threads, registers, memory, heap, locks, failure). *)
let same_outcome (a : Hypervisor.Controller.outcome)
    (b : Hypervisor.Controller.outcome) =
  a.verdict = b.verdict && a.steps = b.steps
  && List.length a.trace = List.length b.trace
  && List.for_all2 Iid.equal (iids_of a) (iids_of b)
  && String.equal
       (Ksim.Engine.fingerprint a.final)
       (Ksim.Engine.fingerprint b.final)

(* --- fixtures ----------------------------------------------------------- *)

let globals = [ ("g0", Ksim.Value.Int 0); ("g1", Ksim.Value.Int 0) ]

let mk_group name specs =
  Ksim.Program.group ~name ~globals
    (List.map
       (fun (tname, instrs) ->
         { Ksim.Program.spec_name = tname;
           context = Ksim.Program.Syscall { call = tname; sysno = 0 };
           program = Ksim.Program.make ~name:tname instrs;
           resources = [] })
       specs)

(* A deterministic failing group: serial [A; B] faults at [a3]. *)
let failing_group () =
  mk_group "snap-fail"
    [ ( "A",
        [ store "a1" (g "g0") (cint 1);
          load "a2" "r" (g "g0");
          bug_on "a3" (Eq (reg "r", cint 1)) ] );
      ("B", [ store "b1" (g "g0") (cint 0); nop "b2" ]) ]

(* A benign group with enough steps to make prefixes worth sharing. *)
let benign_group () =
  mk_group "snap-ok"
    [ ( "A",
        [ store "a1" (g "g0") (cint 1);
          load "a2" "r" (g "g1");
          store "a3" (g "g1") (cint 2);
          nop "a4" ] );
      ( "B",
        [ load "b1" "r" (g "g0");
          store "b2" (g "g0") (cint 3);
          nop "b3" ] ) ]

let serial_sched = Schedule.serial [ 0; 1 ]

let run_with ?snapshots group sched =
  let vm = Hypervisor.Vm.create group in
  (Executor.run_preemption ?snapshots vm sched).outcome

(* --- unit: zero budget -------------------------------------------------- *)

let test_zero_budget () =
  let cache = Snapshots.create ~budget_bytes:0 () in
  checkb "disabled" false (Snapshots.enabled cache);
  let group = benign_group () in
  let cached = run_with ~snapshots:cache group serial_sched in
  let plain = run_with group serial_sched in
  checkb "outcome identical to plain path" true (same_outcome cached plain);
  checki "no hits" 0 (Snapshots.hits cache);
  checki "no misses" 0 (Snapshots.misses cache);
  checki "nothing stored" 0 (Snapshots.cached_vectors cache)

(* --- unit: hit on a child schedule -------------------------------------- *)

let child_of (o : Hypervisor.Controller.outcome) ~index ~switch_to =
  let e = List.nth o.trace index in
  { serial_sched with
    Schedule.switches =
      [ { Schedule.after = e.Ksim.Machine.iid; switch_to } ] }

let test_child_hit () =
  let group = benign_group () in
  let cache = Snapshots.create () in
  let vm = Hypervisor.Vm.create group in
  let parent = (Executor.run_preemption ~snapshots:cache vm serial_sched).outcome in
  checki "parent stored" 1 (Snapshots.cached_vectors cache);
  let child = child_of parent ~index:1 ~switch_to:1 in
  let cached = (Executor.run_preemption ~snapshots:cache vm child).outcome in
  checki "one hit" 1 (Snapshots.hits cache);
  checkb "prefix restored" true (Snapshots.restored_instrs cache > 0);
  checkb "resume counted" true (Hypervisor.Vm.resumes vm = 1);
  checkb "saved steps counted" true (Hypervisor.Vm.saved_steps vm > 0);
  checkb "sim seconds saved" true (Hypervisor.Vm.simulated_saved vm > 0.);
  let fresh = run_with group child in
  checkb "child identical to fresh run" true (same_outcome cached fresh);
  (* the child's own vector was stored and serves a grandchild *)
  checki "child stored too" 2 (Snapshots.cached_vectors cache);
  let grandchild =
    { child with
      Schedule.switches =
        child.Schedule.switches
        @ [ { Schedule.after = (List.nth cached.trace 3).Ksim.Machine.iid;
              switch_to = 0 } ] }
  in
  let gc_cached = (Executor.run_preemption ~snapshots:cache vm grandchild).outcome in
  let gc_fresh = run_with group grandchild in
  checkb "grandchild identical to fresh run" true
    (same_outcome gc_cached gc_fresh)

(* --- unit: eviction ------------------------------------------------------ *)

let test_eviction () =
  let group = benign_group () in
  (* Budget fits roughly one vector: storing a second evicts the first. *)
  let cache = Snapshots.create ~budget_bytes:3000 () in
  let vm = Hypervisor.Vm.create group in
  let parent =
    (Executor.run_preemption ~snapshots:cache vm serial_sched).outcome
  in
  let other = Schedule.serial [ 1; 0 ] in
  ignore (Executor.run_preemption ~snapshots:cache vm other);
  checkb "eviction happened" true (Snapshots.evictions cache >= 1);
  checkb "within budget" true (Snapshots.cached_bytes cache <= 3000);
  (* the first vector is gone: its child misses and falls back *)
  let child = child_of parent ~index:1 ~switch_to:1 in
  let cached = (Executor.run_preemption ~snapshots:cache vm child).outcome in
  let fresh = run_with group child in
  checkb "evicted prefix falls back to a full run" true
    (same_outcome cached fresh);
  checki "no hits after eviction" 0 (Snapshots.hits cache)

(* --- unit: undo-log snapshot accounting ----------------------------------- *)

(* The LRU budget must track what snapshots actually cost per engine:
   reference snaps share persistent map structure (a flat constant
   each), while a compiled chain sharing one arena is charged one full
   clone at its head and only the marginal undo-log delta for each
   successor.  Regression test for the accounting bug where every
   compiled snap was charged as an unrelated machine, exhausting the
   byte budget n times too fast on undo-log snapshots. *)
let test_undo_log_accounting () =
  let group = benign_group () in
  let chain engine =
    let rec go m acc =
      match Ksim.Machine.runnable m with
      | [] -> List.rev acc
      | tid :: _ -> (
        match Ksim.Engine.step m tid with
        | Ok (m', _) -> go m' (m' :: acc)
        | Error _ -> List.rev acc)
    in
    go (Ksim.Engine.boot engine group) []
  in
  let costs ms =
    List.mapi
      (fun k m ->
        let prev = if k = 0 then None else Some (List.nth ms (k - 1)) in
        Ksim.Engine.snapshot_cost ?prev m)
      ms
  in
  let rc = costs (chain Ksim.Engine.Reference) in
  checki "benign group runs 7 steps" 7 (List.length rc);
  List.iter (fun c -> checki "reference snap: flat constant" 256 c) rc;
  let compiled = chain Ksim.Engine.Compiled in
  (match costs compiled with
  | head :: rest ->
    checki "compiled chain head: one full clone" 4096 head;
    List.iter
      (fun c ->
        checkb
          (Fmt.str "compiled successor: marginal undo delta (%d bytes)" c)
          true
          (c >= 48 && c <= 256))
      rest
  | [] -> Alcotest.fail "compiled chain is empty");
  (* A predecessor from a different boot shares no arena: full clone. *)
  let unrelated = Ksim.Engine.boot Ksim.Engine.Compiled group in
  (match compiled with
  | m :: _ ->
    checki "unrelated predecessor: full clone" 4096
      (Ksim.Engine.snapshot_cost ~prev:unrelated m)
  | [] -> ());
  (* Cache-level: the stored vector's byte estimate follows the same
     accounting through Snapshots.store. *)
  let bytes_with engine =
    let cache = Snapshots.create () in
    let vm = Hypervisor.Vm.create ~engine group in
    ignore (Executor.run_preemption ~snapshots:cache vm serial_sched);
    Snapshots.cached_bytes cache
  in
  checki "reference vector: 1024 + 256*n"
    (1024 + (256 * 7))
    (bytes_with Ksim.Engine.Reference);
  let cb = bytes_with Ksim.Engine.Compiled in
  checkb
    (Fmt.str "compiled vector: one clone + marginal deltas (%d bytes)" cb)
    true
    (cb >= 1024 + 4096 + (6 * 48) && cb <= 1024 + 4096 + (6 * 256))

(* --- unit: poisoned snapshots are never reused --------------------------- *)

let test_poisoned_never_reused () =
  let group = failing_group () in
  let cache = Snapshots.create () in
  let vm = Hypervisor.Vm.create group in
  let parent =
    (Executor.run_preemption ~snapshots:cache vm serial_sched).outcome
  in
  checkb "parent run failed" true
    (match parent.verdict with
    | Hypervisor.Controller.Failed _ -> true
    | _ -> false);
  (* A switch placed after the faulting step would restore a machine
     that already carries the failure verdict: the lookup must refuse. *)
  let faulting = List.length parent.trace - 1 in
  let child = child_of parent ~index:faulting ~switch_to:1 in
  checkb "poisoned snapshot refused" true
    (Snapshots.find_preemption cache child = None);
  let cached = (Executor.run_preemption ~snapshots:cache vm child).outcome in
  let fresh = run_with group child in
  checkb "fallback identical to fresh run" true (same_outcome cached fresh);
  (* A switch before the fault is a healthy prefix and may be reused. *)
  let early = child_of parent ~index:0 ~switch_to:1 in
  checkb "healthy prefix of a failing run is reusable" true
    (Snapshots.find_preemption cache early <> None)

(* --- unit: unfired parent switches block reuse --------------------------- *)

let test_unfired_switch_blocks_reuse () =
  let group = benign_group () in
  let cache = Snapshots.create () in
  let vm = Hypervisor.Vm.create group in
  (* The parent's switch never fires: its trigger names an instruction
     that does not execute.  Resuming a child from such a run would
     drop the still-pending switch, so the lookup must refuse. *)
  let never = Iid.make ~tid:0 ~label:"no_such_label" ~occ:1 in
  let parent =
    { serial_sched with
      Schedule.switches = [ { Schedule.after = never; switch_to = 1 } ] }
  in
  let po = (Executor.run_preemption ~snapshots:cache vm parent).outcome in
  let child =
    { parent with
      Schedule.switches =
        parent.Schedule.switches
        @ [ { Schedule.after = (List.nth po.trace 1).Ksim.Machine.iid;
              switch_to = 1 } ] }
  in
  checkb "unfired pending switch refused" true
    (Snapshots.find_preemption cache child = None);
  let cached = (Executor.run_preemption ~snapshots:cache vm child).outcome in
  let fresh = run_with group child in
  checkb "fallback identical to fresh run" true (same_outcome cached fresh)

(* --- unit: plan lookups -------------------------------------------------- *)

let test_plan_resume () =
  let group = failing_group () in
  let cache = Snapshots.create () in
  let vm = Hypervisor.Vm.create group in
  let key = Schedule.preemption_key serial_sched in
  let parent =
    (Executor.run_preemption ~snapshots:cache vm serial_sched).outcome
  in
  (* Enforcing the original order resumes from the cached prefix (capped
     before the poisoned final snapshot) and re-executes the fault. *)
  let plan = Schedule.plan (iids_of parent) in
  (match Snapshots.find_plan cache ~key plan with
  | None -> Alcotest.fail "expected a plan hit"
  | Some hit ->
    checkb "matched a non-empty prefix" true (hit.Snapshots.matched > 0);
    checkb "poisoned tail not restored" true
      (hit.Snapshots.matched < List.length parent.trace));
  let cached =
    (Executor.run_plan ~snapshots:(cache, key) vm plan).outcome
  in
  let fresh = (Executor.run_plan (Hypervisor.Vm.create group) plan).outcome in
  checkb "plan resume identical to fresh enforcement" true
    (same_outcome cached fresh);
  (* A plan diverging at the first event misses and falls back. *)
  let swapped =
    match plan.Schedule.events with
    | a :: b :: rest -> Schedule.plan (b :: a :: rest)
    | _ -> plan
  in
  let cached' =
    (Executor.run_plan ~snapshots:(cache, key) vm swapped).outcome
  in
  let fresh' =
    (Executor.run_plan (Hypervisor.Vm.create group) swapped).outcome
  in
  checkb "diverging plan identical to fresh enforcement" true
    (same_outcome cached' fresh')

(* --- qcheck: resume+suffix is state-identical to a fresh run ------------- *)

(* Shared with test_props: random two-thread programs over three
   globals, with optional failure assertions. *)
let prop_globals = [ "g0"; "g1"; "g2" ]

let gen_program ~prefix ~failing : Ksim.Program.labeled list QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 8 in
  let gen_instr i =
    let label = Fmt.str "%s%d" prefix i in
    let* k = int_range 0 4 in
    let* gvar = oneofl prop_globals in
    match k with
    | 0 -> return (load label "r" (g gvar))
    | 1 ->
      let* v = int_range 0 9 in
      return (store label (g gvar) (cint v))
    | 2 ->
      let* v = int_range 0 9 in
      return (assign label "r" (cint v))
    | 3 when i + 1 < n ->
      let* target = int_range (i + 1) (n - 1) in
      let* v = int_range 0 1 in
      return
        (branch_if label (Eq (reg "r", cint v)) (Fmt.str "%s%d" prefix target))
    | _ -> return (nop label)
  in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else
      let* instr = gen_instr i in
      build (i + 1) (instr :: acc)
  in
  let* body = build 0 [] in
  if not failing then return body
  else
    let* gvar = oneofl prop_globals in
    let* v = int_range 1 9 in
    return
      (body
      @ [ load (prefix ^ "_chk_ld") "r" (g gvar);
          bug_on (prefix ^ "_chk") (Eq (reg "r", cint v)) ])

let gen_group ~failing : Ksim.Program.group QCheck.Gen.t =
  let open QCheck.Gen in
  let* pa = gen_program ~prefix:"a" ~failing in
  let* pb = gen_program ~prefix:"b" ~failing in
  let thread name instrs =
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program =
        Ksim.Program.make ~name
          (assign (name ^ "_init") "r" (cint 0) :: instrs);
      resources = [] }
  in
  return
    (Ksim.Program.group ~name:"snap-prop"
       ~globals:(List.map (fun gv -> (gv, Ksim.Value.Int 0)) prop_globals)
       [ thread "A" pa; thread "B" pb ])

let arb_case =
  QCheck.make
    ~print:(fun (grp, i, f) ->
      Fmt.str "group %s, index %d, failing %b" grp.Ksim.Program.group_name i
        f)
    QCheck.Gen.(
      let* failing = bool in
      let* grp = gen_group ~failing in
      let* i = int_range 0 30 in
      return (grp, i, failing))

(* Count hits across the whole property run so we can assert the
   property actually exercised the resume path, not just fallbacks. *)
let prop_hits = ref 0

let prop_resume_identity =
  QCheck.Test.make ~count:300
    ~name:"snapshot resume+suffix == fresh execution"
    arb_case
    (fun (group, i, _failing) ->
      let cache = Snapshots.create () in
      let vm = Hypervisor.Vm.create group in
      let parent =
        (Executor.run_preemption ~snapshots:cache vm serial_sched).outcome
      in
      let n = List.length parent.trace in
      if n = 0 then true
      else
        let index = i mod n in
        let e = List.nth parent.trace index in
        let switch_to = 1 - e.Ksim.Machine.iid.Iid.tid in
        let child = child_of parent ~index ~switch_to in
        let before = Snapshots.hits cache in
        let cached =
          (Executor.run_preemption ~snapshots:cache vm child).outcome
        in
        prop_hits := !prop_hits + (Snapshots.hits cache - before);
        let fresh = run_with group child in
        (* and the plan path against the same cached vector *)
        let key = Schedule.preemption_key serial_sched in
        let plan = Schedule.plan (iids_of parent) in
        let plan_cached =
          (Executor.run_plan ~snapshots:(cache, key) vm plan).outcome
        in
        let plan_fresh =
          (Executor.run_plan (Hypervisor.Vm.create group) plan).outcome
        in
        same_outcome cached fresh && same_outcome plan_cached plan_fresh)

let test_prop_exercised_hits () =
  checkb "resume property hit the cache" true (!prop_hits > 0)

(* --- corpus: cache on/off bit-identity ----------------------------------- *)

let corpus_reports =
  lazy
    (List.map
       (fun (bug : Bugs.Bug.t) ->
         let off =
           Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
             ~snapshot_cache:false (bug.case ())
         in
         let on =
           Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
             ~snapshot_cache:true (bug.case ())
         in
         (bug, off, on))
       Bugs.Registry.all)

let chain_str (r : Aitia.Diagnose.report) =
  match r.chain with Some c -> Aitia.Chain.to_string c | None -> "-"

let test_corpus_chain_parity (bug : Bugs.Bug.t) () =
  let _, off, on =
    List.find (fun (b, _, _) -> b == bug) (Lazy.force corpus_reports)
  in
  checks "identical causality chain" (chain_str off) (chain_str on);
  checki "identical LIFS schedule count" off.lifs.stats.schedules
    on.lifs.stats.schedules;
  checki "identical LIFS pruning" off.lifs.stats.pruned on.lifs.stats.pruned;
  (match (off.causality, on.causality) with
  | Some ca_off, Some ca_on ->
    checki "identical CA schedule count" ca_off.stats.schedules
      ca_on.stats.schedules;
    checki "identical CA verdict count" (List.length ca_off.tested)
      (List.length ca_on.tested)
  | None, None -> ()
  | _ -> Alcotest.fail "cache changed whether causality analysis ran");
  match (off.lifs.found, on.lifs.found) with
  | Some a, Some b ->
    checks "identical reproducing schedule"
      (Schedule.preemption_key a.schedule)
      (Schedule.preemption_key b.schedule);
    checkb "identical failing trace" true (same_outcome a.outcome b.outcome)
  | None, None -> ()
  | _ -> Alcotest.fail "cache changed reproduction"

(* The headline win: across the corpus, the cache cuts the instructions
   actually executed by at least 30% (ISSUE 4 acceptance criterion). *)
let test_corpus_instr_reduction () =
  let total_off, total_on =
    List.fold_left
      (fun (toff, ton) (_, (off : Aitia.Diagnose.report), on) ->
        let instrs (r : Aitia.Diagnose.report) =
          r.lifs.stats.executed_instrs
          + match r.causality with
            | Some ca -> ca.stats.executed_instrs
            | None -> 0
        in
        (toff + instrs off, ton + instrs on))
      (0, 0) (Lazy.force corpus_reports)
  in
  checkb "cache-off executes more instructions" true (total_on < total_off);
  let reduction =
    1.0 -. (float_of_int total_on /. float_of_int total_off)
  in
  Fmt.pr "corpus instruction reduction: %.1f%% (%d -> %d)@."
    (100. *. reduction) total_off total_on;
  checkb
    (Fmt.str "instruction reduction %.1f%% >= 30%%" (100. *. reduction))
    true
    (reduction >= 0.30)

let test_corpus_sim_reduction () =
  List.iter
    (fun ((bug : Bugs.Bug.t), (off : Aitia.Diagnose.report),
          (on : Aitia.Diagnose.report)) ->
      match (off.causality, on.causality) with
      | Some ca_off, Some ca_on ->
        checkb
          (Fmt.str "%s: cache reduces simulated seconds" bug.id)
          true
          (ca_on.stats.simulated < ca_off.stats.simulated)
      | _ -> ())
    (Lazy.force corpus_reports)

(* --- suite ---------------------------------------------------------------- *)

let () =
  let corpus_parity =
    List.map
      (fun (bug : Bugs.Bug.t) ->
        Alcotest.test_case bug.id `Quick (test_corpus_chain_parity bug))
      Bugs.Registry.all
  in
  Alcotest.run "snapshots"
    [ ( "cache",
        [ Alcotest.test_case "zero budget degrades to reboot path" `Quick
            test_zero_budget;
          Alcotest.test_case "child schedule hits parent prefix" `Quick
            test_child_hit;
          Alcotest.test_case "eviction falls back gracefully" `Quick
            test_eviction;
          Alcotest.test_case "undo-log snapshot accounting" `Quick
            test_undo_log_accounting;
          Alcotest.test_case "poisoned snapshot never reused" `Quick
            test_poisoned_never_reused;
          Alcotest.test_case "unfired parent switch blocks reuse" `Quick
            test_unfired_switch_blocks_reuse;
          Alcotest.test_case "plan lookups resume the failure run" `Quick
            test_plan_resume ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest [ prop_resume_identity ]
        @ [ Alcotest.test_case "property exercised cache hits" `Quick
              test_prop_exercised_hits ] );
      ("corpus-parity", corpus_parity);
      ( "corpus-savings",
        [ Alcotest.test_case "instructions executed drop >= 30%" `Quick
            test_corpus_instr_reduction;
          Alcotest.test_case "CA simulated seconds strictly reduced" `Quick
            test_corpus_sim_reduction ] ) ]
