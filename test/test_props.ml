(* Property-based tests (qcheck) on the simulator and the core
   algorithms: determinism, persistence, race well-formedness, plan
   replay faithfulness. *)

open Ksim.Program.Build
module Iid = Ksim.Access.Iid

(* --- generators ------------------------------------------------------------ *)

let globals = [ "g0"; "g1"; "g2" ]

(* A random terminating straight-line-with-forward-branches program. *)
let gen_program ~prefix : Ksim.Program.labeled list QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 8 in
  let gen_instr i =
    let label = Fmt.str "%s%d" prefix i in
    let* k = int_range 0 4 in
    let* gvar = oneofl globals in
    match k with
    | 0 -> return (load label "r" (g gvar))
    | 1 ->
      let* v = int_range 0 9 in
      return (store label (g gvar) (cint v))
    | 2 ->
      let* v = int_range 0 9 in
      return (assign label "r" (cint v))
    | 3 when i + 1 < n ->
      (* forward branch: always terminates.  "r" is safe to read: every
         generated thread initializes it first. *)
      let* target = int_range (i + 1) (n - 1) in
      let* v = int_range 0 1 in
      return
        (branch_if label (Eq (reg "r", cint v)) (Fmt.str "%s%d" prefix target))
    | _ -> return (nop label)
  in
  let rec build i acc =
    if i >= n then return (List.rev acc)
    else
      let* instr = gen_instr i in
      build (i + 1) (instr :: acc)
  in
  build 0 []

let gen_group : Ksim.Program.group QCheck.Gen.t =
  let open QCheck.Gen in
  let* pa = gen_program ~prefix:"a" in
  let* pb = gen_program ~prefix:"b" in
  let thread name instrs =
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program = Ksim.Program.make ~name (assign (name ^ "_init") "r" (cint 0) :: instrs);
      resources = [] }
  in
  return
    (Ksim.Program.group ~name:"prop"
       ~globals:(List.map (fun gv -> (gv, Ksim.Value.Int 0)) globals)
       [ thread "A" pa; thread "B" pb ])

(* Like [gen_program], but the thread can also assert on what it reads —
   so interleavings can actually fail. *)
let gen_failing_program ~prefix : Ksim.Program.labeled list QCheck.Gen.t =
  let open QCheck.Gen in
  let* base = gen_program ~prefix in
  let* gvar = oneofl globals in
  let* v = int_range 1 9 in
  return
    (base
    @ [ load (prefix ^ "_chk_ld") "r" (g gvar);
        bug_on (prefix ^ "_chk") (Eq (reg "r", cint v)) ])

let gen_failing_group : Ksim.Program.group QCheck.Gen.t =
  let open QCheck.Gen in
  let* pa = gen_failing_program ~prefix:"a" in
  let* pb = gen_failing_program ~prefix:"b" in
  let thread name instrs =
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program =
        Ksim.Program.make ~name
          (assign (name ^ "_init") "r" (cint 0) :: instrs);
      resources = [] }
  in
  return
    (Ksim.Program.group ~name:"prop-fail"
       ~globals:(List.map (fun gv -> (gv, Ksim.Value.Int 0)) globals)
       [ thread "A" pa; thread "B" pb ])

let gen_seed = QCheck.Gen.int_range 0 1_000_000

(* Run a group under a seeded random policy. *)
let random_run group seed =
  let rng = Fuzz.Rng.create seed in
  Hypervisor.Controller.run (Ksim.Machine.create group)
    (fun _m runnable ->
      match runnable with [] -> None | xs -> Some (Fuzz.Rng.pick rng xs))

let arb_group_seed =
  QCheck.make
    ~print:(fun (grp, seed) ->
      Fmt.str "group %s, seed %d" grp.Ksim.Program.group_name seed)
    QCheck.Gen.(pair gen_group gen_seed)

let iids_of (o : Hypervisor.Controller.outcome) =
  List.map (fun (e : Ksim.Machine.event) -> e.iid) o.trace

(* --- properties ------------------------------------------------------------- *)

let prop_determinism =
  QCheck.Test.make ~count:200 ~name:"same seed => same trace" arb_group_seed
    (fun (group, seed) ->
      let o1 = random_run group seed in
      let o2 = random_run group seed in
      List.for_all2 Iid.equal (iids_of o1) (iids_of o2)
      && o1.verdict = o2.verdict)

let prop_persistence =
  QCheck.Test.make ~count:200 ~name:"stepping never mutates the snapshot"
    arb_group_seed (fun (group, seed) ->
      let m0 = Ksim.Machine.create group in
      let before =
        List.map (fun gv -> Ksim.Machine.mem_read m0 (Ksim.Addr.Global gv))
          globals
      in
      let _ = random_run group seed in
      let after =
        List.map (fun gv -> Ksim.Machine.mem_read m0 (Ksim.Addr.Global gv))
          globals
      in
      List.for_all2 Ksim.Value.equal before after)

let prop_races_well_formed =
  QCheck.Test.make ~count:200 ~name:"extracted races are well-formed"
    arb_group_seed (fun (group, seed) ->
      let o = random_run group seed in
      let races = Aitia.Race.of_trace o.trace in
      List.for_all
        (fun (r : Aitia.Race.t) ->
          r.first.iid.Iid.tid <> r.second.iid.Iid.tid
          && Ksim.Addr.overlaps r.first.addr r.second.addr
          && (Ksim.Access.is_write r.first || Ksim.Access.is_write r.second)
          && r.first.time < r.second.time)
        races)

let prop_plan_replay =
  QCheck.Test.make ~count:200 ~name:"plan replay reproduces the trace"
    arb_group_seed (fun (group, seed) ->
      let o = random_run group seed in
      QCheck.assume (o.verdict = Hypervisor.Controller.Completed);
      let plan = Hypervisor.Schedule.plan (iids_of o) in
      let o' =
        Hypervisor.Controller.run (Ksim.Machine.create group)
          (Hypervisor.Schedule.plan_policy plan)
      in
      List.length o.trace = List.length o'.trace
      && List.for_all2 Iid.equal (iids_of o) (iids_of o'))

let prop_race_keys_unique =
  QCheck.Test.make ~count:200 ~name:"race keys are unique within a trace"
    arb_group_seed (fun (group, seed) ->
      let o = random_run group seed in
      let keys = List.map Aitia.Race.key (Aitia.Race.of_trace o.trace) in
      List.length keys = List.length (List.sort_uniq String.compare keys))

let prop_permutations =
  QCheck.Test.make ~count:100 ~name:"permutations: count and uniqueness"
    (QCheck.make QCheck.Gen.(int_range 0 5))
    (fun n ->
      let xs = List.init n Fun.id in
      let perms = Aitia.Lifs.permutations xs in
      let fact = List.fold_left ( * ) 1 (List.init n (fun i -> i + 1)) in
      List.length perms = fact
      && List.length (List.sort_uniq compare perms) = fact
      && List.for_all
           (fun p -> List.sort compare p = xs)
           perms)

let prop_location_sequences_sorted =
  QCheck.Test.make ~count:200 ~name:"location sequences are time-sorted"
    arb_group_seed (fun (group, seed) ->
      let o = random_run group seed in
      let accesses = Aitia.Race.accesses_of_trace o.trace in
      Aitia.Race.location_sequences accesses
      |> List.for_all (fun (_, seq) ->
             let rec sorted = function
               | (a : Ksim.Access.t) :: (b :: _ as rest) ->
                 a.time <= b.time && sorted rest
               | [ _ ] | [] -> true
             in
             sorted seq))

let prop_rng_int_bounds =
  QCheck.Test.make ~count:500 ~name:"rng int respects bounds"
    (QCheck.make QCheck.Gen.(pair gen_seed (int_range 1 1000)))
    (fun (seed, bound) ->
      let r = Fuzz.Rng.create seed in
      let x = Fuzz.Rng.int r bound in
      x >= 0 && x < bound)

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~count:200 ~name:"rng shuffle permutes"
    (QCheck.make QCheck.Gen.(pair gen_seed (list_size (int_range 0 20) int)))
    (fun (seed, xs) ->
      let r = Fuzz.Rng.create seed in
      List.sort compare (Fuzz.Rng.shuffle r xs) = List.sort compare xs)

let prop_flip_plan_preserves_events =
  QCheck.Test.make ~count:200
    ~name:"flip plan preserves the trace's event multiset"
    arb_group_seed (fun (group, seed) ->
      let o = random_run group seed in
      QCheck.assume (o.verdict = Hypervisor.Controller.Completed);
      match Aitia.Race.of_trace o.trace with
      | [] -> true
      | r :: _ ->
        let plan = Aitia.Causality.flip_plan o.trace r in
        let sort =
          List.sort (fun a b -> compare (Fmt.str "%a" Iid.pp_full a) (Fmt.str "%a" Iid.pp_full b))
        in
        sort plan.Hypervisor.Schedule.events = sort (iids_of o))

let prop_flip_plan_inverts_order =
  QCheck.Test.make ~count:200 ~name:"flip plan puts second before first"
    arb_group_seed (fun (group, seed) ->
      let o = random_run group seed in
      QCheck.assume (o.verdict = Hypervisor.Controller.Completed);
      match Aitia.Race.of_trace o.trace with
      | [] -> true
      | r :: _ ->
        let plan = Aitia.Causality.flip_plan o.trace r in
        let pos iid =
          let rec go i = function
            | [] -> -1
            | x :: rest -> if Iid.equal x iid then i else go (i + 1) rest
          in
          go 0 plan.Hypervisor.Schedule.events
        in
        pos r.second.iid < pos r.first.iid)

(* LIFS restricts preemption candidates to conflicting instructions
   (DPOR, §3.3).  This property validates the reduction: on random
   programs, LIFS at interleaving count <= 1 finds a failure exactly
   when brute-force enumeration of ALL one-preemption schedules —
   preempting at every position, conflicting or not — finds one. *)
let brute_force_one_preemption group =
  let run sched =
    Hypervisor.Controller.run (Ksim.Machine.create group)
      (Hypervisor.Schedule.preemption_policy sched)
  in
  let serials = [ [ 0; 1 ]; [ 1; 0 ] ] in
  let serial_outcomes =
    List.map (fun o -> (Hypervisor.Schedule.serial o, run (Hypervisor.Schedule.serial o))) serials
  in
  if
    List.exists
      (fun (_, (o : Hypervisor.Controller.outcome)) ->
        Hypervisor.Controller.is_failure o)
      serial_outcomes
  then true
  else
    List.exists
      (fun ((sched : Hypervisor.Schedule.preemption),
            (o : Hypervisor.Controller.outcome)) ->
        List.exists
          (fun (e : Ksim.Machine.event) ->
            List.exists
              (fun u ->
                u <> e.iid.Iid.tid
                &&
                let cand =
                  { sched with
                    Hypervisor.Schedule.switches =
                      [ { Hypervisor.Schedule.after = e.iid; switch_to = u } ]
                  }
                in
                Hypervisor.Controller.is_failure (run cand))
              [ 0; 1 ])
          o.trace)
      serial_outcomes

let prop_lifs_matches_brute_force =
  QCheck.Test.make ~count:150
    ~name:"LIFS (conflicting-instruction candidates) = brute force at k<=1"
    (QCheck.make
       ~print:(fun g -> g.Ksim.Program.group_name)
       gen_failing_group)
    (fun group ->
      let brute = brute_force_one_preemption group in
      let vm = Hypervisor.Vm.create group in
      let lifs =
        Aitia.Lifs.search ~max_interleavings:1 vm ~target:(fun _ -> true) ()
      in
      (lifs.found <> None) = brute)

(* The same reduction validated one level deeper: exhaustive enumeration
   of ALL two-preemption schedules (every pair of positions, conflicting
   or not) agrees with LIFS at interleaving count <= 2.  Kept to tiny
   programs: brute force is quadratic in the trace. *)
let brute_force_two_preemptions group =
  let run sched =
    Hypervisor.Controller.run (Ksim.Machine.create group)
      (Hypervisor.Schedule.preemption_policy sched)
  in
  let extend_all (sched, (o : Hypervisor.Controller.outcome)) =
    List.concat_map
      (fun (e : Ksim.Machine.event) ->
        List.filter_map
          (fun u ->
            if u = e.iid.Iid.tid then None
            else
              Some
                { sched with
                  Hypervisor.Schedule.switches =
                    sched.Hypervisor.Schedule.switches
                    @ [ { Hypervisor.Schedule.after = e.iid; switch_to = u } ]
                })
          [ 0; 1 ])
      o.trace
  in
  let rec search frontier depth =
    let outcomes = List.map (fun s -> (s, run s)) frontier in
    if
      List.exists
        (fun (_, o) -> Hypervisor.Controller.is_failure o)
        outcomes
    then true
    else if depth >= 2 then false
    else
      (* only extend after the last existing switch has fired *)
      let next =
        List.concat_map
          (fun ((sched : Hypervisor.Schedule.preemption), o) ->
            match List.rev sched.switches with
            | [] -> extend_all (sched, o)
            | { after; _ } :: _ ->
              let fired = ref false in
              let tail =
                List.filter
                  (fun (e : Ksim.Machine.event) ->
                    if !fired then true
                    else (
                      if Ksim.Access.Iid.equal e.iid after then fired := true;
                      false))
                  o.Hypervisor.Controller.trace
              in
              extend_all (sched, { o with trace = tail }))
          outcomes
      in
      search next (depth + 1)
  in
  search
    [ Hypervisor.Schedule.serial [ 0; 1 ];
      Hypervisor.Schedule.serial [ 1; 0 ] ]
    0

let gen_tiny_failing_group : Ksim.Program.group QCheck.Gen.t =
  let open QCheck.Gen in
  let tiny prefix =
    let* n = int_range 1 3 in
    let* base =
      let rec build i acc =
        if i >= n then return (List.rev acc)
        else
          let* gvar = oneofl globals in
          let* k = int_range 0 1 in
          let* v = int_range 0 2 in
          let instr =
            if k = 0 then load (Fmt.str "%s%d" prefix i) "r" (g gvar)
            else store (Fmt.str "%s%d" prefix i) (g gvar) (cint v)
          in
          build (i + 1) (instr :: acc)
      in
      build 0 []
    in
    let* gvar = oneofl globals in
    let* v = int_range 1 2 in
    return
      (base
      @ [ load (prefix ^ "_chk_ld") "r" (g gvar);
          bug_on (prefix ^ "_chk") (Eq (reg "r", cint v)) ])
  in
  let* pa = tiny "a" in
  let* pb = tiny "b" in
  let thread name instrs =
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program =
        Ksim.Program.make ~name
          (assign (name ^ "_init") "r" (cint 0) :: instrs);
      resources = [] }
  in
  return
    (Ksim.Program.group ~name:"prop-tiny"
       ~globals:(List.map (fun gv -> (gv, Ksim.Value.Int 0)) globals)
       [ thread "A" pa; thread "B" pb ])

let prop_lifs_matches_brute_force_k2 =
  QCheck.Test.make ~count:60
    ~name:"LIFS = brute force at k<=2 (tiny programs)"
    (QCheck.make
       ~print:(fun g -> g.Ksim.Program.group_name)
       gen_tiny_failing_group)
    (fun group ->
      let brute = brute_force_two_preemptions group in
      let vm = Hypervisor.Vm.create group in
      let lifs =
        Aitia.Lifs.search ~max_interleavings:2 vm ~target:(fun _ -> true) ()
      in
      (lifs.found <> None) = brute)

(* "LIFS produces an instruction sequence that deterministically causes
   a concurrency failure" (§3.3): replaying the found schedule must
   reproduce the same failure. *)
let prop_failing_schedule_replays =
  QCheck.Test.make ~count:150
    ~name:"the failure-causing schedule replays deterministically"
    (QCheck.make
       ~print:(fun g -> g.Ksim.Program.group_name)
       gen_failing_group)
    (fun group ->
      let vm = Hypervisor.Vm.create group in
      let lifs =
        Aitia.Lifs.search ~max_interleavings:2 vm ~target:(fun _ -> true) ()
      in
      match lifs.found with
      | None -> QCheck.assume_fail ()
      | Some s -> (
        let replay =
          Hypervisor.Controller.run (Ksim.Machine.create group)
            (Hypervisor.Schedule.preemption_policy s.schedule)
        in
        match replay.verdict with
        | Hypervisor.Controller.Failed f -> Ksim.Failure.same_bug f s.failure
        | _ -> false))

(* Causality Analysis "does not have false-positives; it excludes all
   benign races" (§3.4): every reported root cause's flip really
   survived, and every benign race's flip really still failed. *)
let prop_ca_verdicts_are_witnessed =
  QCheck.Test.make ~count:100
    ~name:"every CA verdict is witnessed by its flip run"
    (QCheck.make
       ~print:(fun g -> g.Ksim.Program.group_name)
       gen_failing_group)
    (fun group ->
      let vm = Hypervisor.Vm.create group in
      let lifs =
        Aitia.Lifs.search ~max_interleavings:2 vm ~target:(fun _ -> true) ()
      in
      match lifs.found with
      | None -> QCheck.assume_fail ()
      | Some s ->
        let ca_vm = Hypervisor.Vm.create group in
        let ca =
          Aitia.Causality.analyze ca_vm ~failing:s.outcome ~races:s.races ()
        in
        List.for_all
          (fun (t : Aitia.Causality.tested) ->
            match t.flip_outcome with
            | None -> false (* no static pruning without static_hints *)
            | Some o -> (
              match t.verdict, o.verdict with
              | Aitia.Causality.Root_cause, Hypervisor.Controller.Completed
                ->
                true
              | Aitia.Causality.Benign,
                ( Hypervisor.Controller.Failed _
                | Hypervisor.Controller.Deadlock
                | Hypervisor.Controller.Step_limit ) ->
                true
              | _, _ -> false))
          ca.tested)

(* --- static analysis soundness ---------------------------------------------- *)

(* Straight-line programs whose accesses are randomly wrapped in
   balanced lock blocks over a small lock pool. *)
let locks = [ "m0"; "m1" ]

let gen_locked_program ~prefix : Ksim.Program.labeled list QCheck.Gen.t =
  let open QCheck.Gen in
  let* n_blocks = int_range 1 4 in
  let gen_access j =
    let label = Fmt.str "%s%d" prefix j in
    let* gvar = oneofl globals in
    let* k = int_range 0 1 in
    if k = 0 then return (load label "r" (g gvar))
    else
      let* v = int_range 0 9 in
      return (store label (g gvar) (cint v))
  in
  let gen_block b =
    let* m = int_range 1 3 in
    let* accesses =
      flatten_l (List.init m (fun j -> gen_access ((b * 10) + j)))
    in
    let* lk = opt (oneofl locks) in
    match lk with
    | None -> return accesses
    | Some l ->
      return
        ((lock (Fmt.str "%sL%d" prefix b) l :: accesses)
        @ [ unlock (Fmt.str "%sU%d" prefix b) l ])
  in
  let* blocks = flatten_l (List.init n_blocks gen_block) in
  return (List.concat blocks)

let gen_locked_group : Ksim.Program.group QCheck.Gen.t =
  let open QCheck.Gen in
  let* pa = gen_locked_program ~prefix:"a" in
  let* pb = gen_locked_program ~prefix:"b" in
  let thread name instrs =
    { Ksim.Program.spec_name = name;
      context = Ksim.Program.Syscall { call = name; sysno = 0 };
      program = Ksim.Program.make ~name instrs;
      resources = [] }
  in
  return
    (Ksim.Program.group ~name:"prop-locks" ~locks
       ~globals:(List.map (fun gv -> (gv, Ksim.Value.Int 0)) globals)
       [ thread "A" pa; thread "B" pb ])

(* Lockset soundness (the Eraser invariant): a pair the static analysis
   classifies Guarded holds a common lock in every execution, so any
   dynamic race between those two sites must be a critical-section-order
   pair — never a lock-free data race. *)
let prop_guarded_pairs_never_data_race =
  QCheck.Test.make ~count:300
    ~name:"statically Guarded pairs never data-race dynamically"
    (QCheck.make
       ~print:(fun (grp, seed) ->
         Fmt.str "group %s, seed %d" grp.Ksim.Program.group_name seed)
       QCheck.Gen.(pair gen_locked_group gen_seed))
    (fun (group, seed) ->
      let hints =
        Analysis.Summary.hints (Analysis.Candidates.analyze group)
      in
      let o = random_run group seed in
      let site (a : Ksim.Access.t) =
        (Ksim.Machine.thread_base o.final a.iid.Iid.tid, a.iid.Iid.label)
      in
      List.for_all
        (fun (r : Aitia.Race.t) ->
          match
            Analysis.Summary.classify hints ~a:(site r.first)
              ~b:(site r.second)
          with
          | Some Analysis.Candidates.Guarded -> Aitia.Race.is_cs_order r
          | Some Analysis.Candidates.Unguarded
          | Some Analysis.Candidates.Ambiguous -> true
          | None ->
            (* a race the static pass missed would be unsound *)
            false)
        (Aitia.Race.of_trace o.trace))

let () =
  Alcotest.run "props"
    [ ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [ prop_determinism; prop_persistence; prop_races_well_formed;
            prop_plan_replay; prop_race_keys_unique; prop_permutations;
            prop_location_sequences_sorted; prop_rng_int_bounds;
            prop_rng_shuffle_permutes; prop_flip_plan_preserves_events;
            prop_flip_plan_inverts_order; prop_lifs_matches_brute_force;
            prop_lifs_matches_brute_force_k2; prop_failing_schedule_replays;
            prop_ca_verdicts_are_witnessed;
            prop_guarded_pairs_never_data_race ]
      ) ]
