(* Worker-pool tests: work-stealing units (ordering, exhaustion,
   exception propagation), mutual exclusion through the backend lock,
   qcheck properties that no worker count ever changes a merged
   result, chain parity between sequential and pooled diagnoses over
   the corpus, and shared snapshot-cache behaviour under contention —
   including the generation counter that closes the hit→store window. *)

module Pool = Hypervisor.Pool

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- work-stealing units ------------------------------------------------- *)

let test_empty () =
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs in
      checki "no tasks, no results" 0 (Array.length (Pool.run p (fun i -> i) 0));
      checkb "empty map" true (Pool.map_list p (fun x -> x) [] = []))
    [ 1; 4 ]

let test_single_worker_order () =
  let p = Pool.create ~jobs:1 in
  checkb "jobs=1 keeps index order" true
    (Pool.run p (fun i -> 2 * i) 7 = Array.init 7 (fun i -> 2 * i))

let test_more_tasks_than_workers () =
  let p = Pool.create ~jobs:3 in
  let ran = Array.make 100 0 in
  let results =
    Pool.run p
      (fun i ->
        ran.(i) <- ran.(i) + 1;
        i * i)
      100
  in
  checkb "100 tasks on 3 workers, results in index order" true
    (results = Array.init 100 (fun i -> i * i));
  (* every task ran exactly once — no steal duplicated or dropped one
     (workers write disjoint slots, and the joins publish the writes) *)
  Array.iteri (fun i n -> checki (Fmt.str "task %d ran once" i) 1 n) ran

let test_exception_propagation () =
  let p = Pool.create ~jobs:4 in
  (* failing indices 5, 12, 19: the pool must re-raise the lowest one
     so error reporting is deterministic under any interleaving *)
  Alcotest.check_raises "lowest failing index wins" (Failure "boom-5")
    (fun () ->
      ignore
        (Pool.run p
           (fun i ->
             if i mod 7 = 5 then failwith (Fmt.str "boom-%d" i) else i)
           20))

let test_map_list () =
  let p = Pool.create ~jobs:4 in
  let words = [ "least"; "interleaving"; "first"; "search" ] in
  checkb "map_list preserves order" true
    (Pool.map_list p String.capitalize_ascii words
    = List.map String.capitalize_ascii words)

let test_backend_sane () =
  checkb "backend names the build variant" true
    (List.mem Pool.backend [ "domains"; "sequential" ]);
  checkb "parallel_available matches the backend" true
    (Pool.parallel_available = (Pool.backend = "domains"));
  checkb "default_jobs is positive" true (Pool.default_jobs () >= 1);
  Alcotest.check_raises "jobs < 1 is rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

(* --- backend lock -------------------------------------------------------- *)

let test_lock_mutual_exclusion () =
  let lock = Pool.Lock.create () in
  let counter = ref 0 in
  let p = Pool.create ~jobs:4 in
  ignore
    (Pool.run p
       (fun _ ->
         for _ = 1 to 5_000 do
           Pool.Lock.protect lock (fun () -> incr counter)
         done)
       8);
  checki "no increment lost under contention" (8 * 5_000) !counter

(* --- qcheck: worker count never changes a merged result ------------------ *)

let prop_pool_order =
  QCheck.Test.make ~count:100
    ~name:"pool run/map results are index-ordered for any worker count"
    (QCheck.make
       ~print:(fun (l, jobs) ->
         Fmt.str "jobs=%d over %a" jobs Fmt.(Dump.list int) l)
       QCheck.Gen.(
         pair (list_size (int_range 0 50) small_nat) (int_range 1 6)))
    (fun (l, jobs) ->
      let p = Pool.create ~jobs in
      let f x = (x * 31) + 7 in
      let n = List.length l in
      Pool.map_list p f l = List.map f l
      && Pool.run p (fun i -> i * i) n = Array.init n (fun i -> i * i))

(* Everything a diagnosis decides, rendered comparable; simulated time
   and host time are deliberately excluded (per-flip guests lose the
   consecutive-run reboot-avoidance credit — documented divergence). *)
let diag_fingerprint ~jobs (bug : Bugs.Bug.t) =
  let r =
    Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings ~jobs
      (bug.case ())
  in
  let chain =
    match r.chain with Some c -> Aitia.Chain.to_string c | None -> "-"
  in
  let flips =
    match r.causality with
    | None -> []
    | Some ca ->
      List.map
        (fun (t : Aitia.Causality.tested) ->
          Fmt.str "%s=%s%s"
            (Aitia.Race.key t.race)
            (match t.verdict with
            | Aitia.Causality.Root_cause -> "root"
            | Aitia.Causality.Benign -> "benign")
            (match t.pruned with Some p -> "!" ^ p | None -> ""))
        ca.tested
  in
  ( Aitia.Diagnose.reproduced r, chain, flips, r.lifs.stats.schedules,
    r.lifs.stats.pruned, r.slices_tried )

let corpus = Array.of_list (Bugs.Registry.cves @ Bugs.Registry.syzkaller)

let prop_chain_parity =
  QCheck.Test.make ~count:10
    ~name:"pooled diagnosis is chain- and verdict-identical to sequential"
    (QCheck.make
       ~print:(fun (i, jobs) -> Fmt.str "%s jobs=%d" corpus.(i).id jobs)
       QCheck.Gen.(
         pair (int_range 0 (Array.length corpus - 1)) (int_range 2 4)))
    (fun (i, jobs) ->
      diag_fingerprint ~jobs:1 corpus.(i) = diag_fingerprint ~jobs corpus.(i))

(* --- shared snapshot cache under contention ------------------------------ *)

let lifs_fingerprint (r : Aitia.Lifs.result) =
  ( (match r.found with
    | Some s -> Hypervisor.Schedule.preemption_key s.schedule
    | None -> "-"),
    r.stats.schedules, r.stats.pruned,
    List.map
      (fun (s, (o : Hypervisor.Controller.outcome)) ->
        ( Hypervisor.Schedule.preemption_key s,
          Fmt.str "%a" Hypervisor.Controller.pp_verdict o.verdict ))
      r.runs )

(* N workers hammer one shared cache (every run stores into and
   restores from it concurrently); the search must be fingerprint-
   identical to the plain sequential, uncached one. *)
let test_shared_cache_contention (bug : Bugs.Bug.t) () =
  let case = bug.case () in
  let crash = Trace.History.crash case.history in
  let slice = List.hd (Trace.Slicer.slices case.history) in
  match Aitia.Diagnose.realize case slice with
  | None -> Alcotest.fail "slice not realizable"
  | Some (group, prologue) ->
    let search ?pool ?snapshots () =
      let vm = Hypervisor.Vm.create group in
      Aitia.Lifs.search ?max_interleavings:bug.max_interleavings ~prologue
        ?pool ?snapshots vm
        ~target:(Trace.Crash.matches crash) ()
    in
    let plain = search () in
    let cache = Hypervisor.Snapshots.create () in
    let pooled =
      search ~pool:(Pool.create ~jobs:4) ~snapshots:cache ()
    in
    checkb "pooled+shared-cache search is fingerprint-identical" true
      (lifs_fingerprint plain = lifs_fingerprint pooled);
    checkb "the shared cache was actually exercised" true
      (Hypervisor.Snapshots.cached_vectors cache > 0)

(* The hit→store window: a store whose restored prefix came from a
   vector poisoned in between must be dropped (stale generation), while
   stores under a live generation or with an evicted/absent parent
   proceed. *)
let test_generation_drop () =
  let group = (Bugs.Fig1_nullderef.bug.case ()).group in
  let m0 = Ksim.Machine.create group in
  let tid = List.hd (Ksim.Machine.thread_ids m0) in
  let machine, ev =
    match Ksim.Machine.step m0 tid with
    | Ok r -> r
    | Error _ -> Alcotest.fail "first step refused"
  in
  let snap =
    { Hypervisor.Snapshots.machine; trace_rev = [ ev ]; steps = 1;
      queue = [ tid ]; pending = [] }
  in
  let t = Hypervisor.Snapshots.create () in
  Hypervisor.Snapshots.store t ~key:"p" ~base:[||] ~suffix_rev:[ snap ] ();
  checki "parent stored" 1 (Hypervisor.Snapshots.cached_vectors t);
  (* generation 0 is live: the child built on p's prefix is accepted *)
  Hypervisor.Snapshots.store t ~key:"c1" ~parent:("p", 0) ~base:[||]
    ~suffix_rev:[ snap ] ();
  checki "fresh-generation child stored" 2
    (Hypervisor.Snapshots.cached_vectors t);
  Hypervisor.Snapshots.poison t ~key:"p";
  checki "poisoning counted" 1 (Hypervisor.Snapshots.poisonings t);
  (* generation 0 is now stale: this child restored its prefix before
     the poisoning and must be dropped *)
  Hypervisor.Snapshots.store t ~key:"c2" ~parent:("p", 0) ~base:[||]
    ~suffix_rev:[ snap ] ();
  checki "stale-generation child dropped" 2
    (Hypervisor.Snapshots.cached_vectors t);
  (* an evicted / absent parent is benign, not suspect *)
  Hypervisor.Snapshots.store t ~key:"c3" ~parent:("gone", 0) ~base:[||]
    ~suffix_rev:[ snap ] ();
  checki "absent-parent child stored" 3
    (Hypervisor.Snapshots.cached_vectors t)

(* --- registration -------------------------------------------------------- *)

let () =
  Alcotest.run "pool"
    [ ( "stealing",
        [ Alcotest.test_case "empty queue" `Quick test_empty;
          Alcotest.test_case "single worker order" `Quick
            test_single_worker_order;
          Alcotest.test_case "more tasks than workers" `Quick
            test_more_tasks_than_workers;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "backend sanity" `Quick test_backend_sane ] );
      ( "lock",
        [ Alcotest.test_case "mutual exclusion" `Quick
            test_lock_mutual_exclusion ] );
      ( "shared-cache",
        [ Alcotest.test_case "contention (fig5)" `Quick
            (test_shared_cache_contention Bugs.Fig5_search.bug);
          Alcotest.test_case "contention (cve-2017-15649)" `Quick
            (test_shared_cache_contention Bugs.Cve_2017_15649.bug);
          Alcotest.test_case "generation store-drop" `Quick
            test_generation_drop ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pool_order; prop_chain_parity ] ) ]
