(* The telemetry subsystem: JSON parse/print, the probe facade (span
   nesting, the disabled-sink no-op contract), the recorder, Chrome
   trace-event well-formedness, the perf-regression gate, and the
   corpus parity check — the metrics counters must agree with the
   Summary statistics the reports themselves carry, on every real bug. *)

module J = Telemetry.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse s =
  match J.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

(* --- JSON ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    J.obj
      [ ("name", J.str "a \"quoted\"\nvalue");
        ("n", J.int 42);
        ("f", J.float 2.5);
        ("ok", J.bool true);
        ("xs", J.arr [ J.int 1; J.int 2 ]);
        ("none", "null") ]
  in
  let v = parse doc in
  checks "string field survives escaping" "a \"quoted\"\nvalue"
    (match J.member "name" v with
    | Some (J.Str s) -> s
    | _ -> "?");
  checkb "int field" true (J.member "n" v = Some (J.Num 42.0));
  checkb "float field" true (J.member "f" v = Some (J.Num 2.5));
  checkb "bool field" true (J.member "ok" v = Some (J.Bool true));
  checki "array field" 2
    (match Option.bind (J.member "xs" v) J.to_list with
    | Some l -> List.length l
    | None -> -1);
  checkb "null field" true (J.member "none" v = Some J.Null);
  checkb "reparse of render agrees" true (parse (J.render v) = v)

let test_json_unicode () =
  checkb "\\uXXXX decodes to UTF-8" true
    (parse "\"\\u00e9\\u0041\"" = J.Str "\xc3\xa9A");
  checkb "whitespace tolerated" true
    (parse "  { \"a\" : [ 1 , true ] }\n"
    = J.Obj [ ("a", J.Arr [ J.Num 1.0; J.Bool true ]) ])

let test_json_errors () =
  let bad s =
    match J.of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "truncated object" true (bad "{\"a\": 1");
  checkb "trailing garbage" true (bad "1 2");
  checkb "bare word" true (bad "flse");
  checkb "empty input" true (bad "")

let test_json_float_stable () =
  checks "four decimals, always" "0.1000" (J.float 0.1);
  checks "negative" "-3.5000" (J.float (-3.5))

(* Parser error paths: truncation at every structural position must be
   a clean [Error], never an exception or a silent partial value. *)
let test_json_truncated () =
  let bad s =
    match J.of_string s with Ok _ -> false | Error _ -> true
  in
  List.iter
    (fun s -> checkb (Fmt.str "truncated %S rejected" s) true (bad s))
    [ "{"; "{\"a\""; "{\"a\":"; "{\"a\":1"; "{\"a\":1,"; "[";
      "[1"; "[1,"; "\"unterminated"; "\"esc\\"; "\"\\u00"; "tru";
      "fal"; "nul"; "-"; "1e"; "{\"a\":[1,{\"b\":"; "[[[[" ]

(* Wrong-typed fields: the accessors answer [None] instead of raising,
   so report readers degrade gracefully on schema drift. *)
let test_json_wrong_types () =
  let v = parse "{\"s\":\"x\",\"n\":3,\"b\":true,\"a\":[1],\"o\":{}}" in
  let f k = J.member k v in
  checkb "to_num on a string" true (Option.bind (f "s") J.to_num = None);
  checkb "to_str on a number" true (Option.bind (f "n") J.to_str = None);
  checkb "to_bool on a number" true (Option.bind (f "n") J.to_bool = None);
  checkb "to_list on an object" true (Option.bind (f "o") J.to_list = None);
  checkb "to_list on a scalar" true (Option.bind (f "b") J.to_list = None);
  checkb "member on an array" true
    (Option.bind (f "a") (J.member "x") = None);
  checkb "member on a scalar" true
    (Option.bind (f "n") (J.member "x") = None);
  checkb "absent member" true (f "missing" = None)

(* Duplicate keys parse (the grammar allows them); [member] answers the
   first binding, deterministically. *)
let test_json_duplicate_keys () =
  let v = parse "{\"a\":1,\"b\":true,\"a\":2}" in
  checkb "first binding wins" true (J.member "a" v = Some (J.Num 1.0));
  checkb "other keys unaffected" true
    (J.member "b" v = Some (J.Bool true));
  checkb "both bindings preserved in the tree" true
    (match v with
    | J.Obj kvs -> List.length (List.filter (fun (k, _) -> k = "a") kvs) = 2
    | _ -> false)

(* --- probe: disabled no-op -------------------------------------------- *)

let test_probe_disabled () =
  Telemetry.Probe.uninstall ();
  checkb "no sink installed" false (Telemetry.Probe.installed ());
  (* Every probe is safe and inert with no sink. *)
  Telemetry.Probe.span_begin "orphan";
  Telemetry.Probe.span_end ();
  Telemetry.Probe.span_end ();
  Telemetry.Probe.count "nothing";
  Telemetry.Probe.observe "nothing" 1.0;
  Telemetry.Probe.instant "nothing";
  checki "with_span is the identity" 7
    (Telemetry.Probe.with_span "s" (fun () -> 7));
  (* Probes left nothing behind: a fresh recorder sees only its own
     events. *)
  let r = Telemetry.Recorder.create () in
  Telemetry.Probe.with_sink (Telemetry.Recorder.sink r) (fun () ->
      Telemetry.Probe.count "mine");
  checkb "only the in-scope event recorded" true
    (Telemetry.Recorder.counters r = [ ("mine", 1) ])

(* --- probe: span nesting ---------------------------------------------- *)

let test_span_nesting () =
  let r = Telemetry.Recorder.create () in
  Telemetry.Probe.with_sink (Telemetry.Recorder.sink r) (fun () ->
      Telemetry.Probe.with_span "outer" (fun () ->
          Telemetry.Probe.with_span "inner" (fun () -> ());
          Telemetry.Probe.with_span ~args:[ ("k", "v") ] "inner2"
            (fun () -> ())));
  let spans = Telemetry.Recorder.spans r in
  checki "three spans" 3 (List.length spans);
  let by_name n =
    List.find (fun (s : Telemetry.Sink.span) -> s.span_name = n) spans
  in
  checki "outer at depth 0" 0 (by_name "outer").span_depth;
  checki "inner at depth 1" 1 (by_name "inner").span_depth;
  checkb "inner closes before outer" true
    ((by_name "outer").span_name
    = (List.nth spans 2).Telemetry.Sink.span_name);
  checkb "args preserved" true
    ((by_name "inner2").span_args = [ ("k", "v") ]);
  List.iter
    (fun (s : Telemetry.Sink.span) ->
      checkb (s.span_name ^ " duration non-negative") true
        (s.span_dur_us >= 0.0);
      checkb (s.span_name ^ " start non-negative") true
        (s.span_start_us >= 0.0))
    spans;
  checkb "inner nested within outer" true
    ((by_name "outer").span_start_us <= (by_name "inner").span_start_us)

let test_span_exception () =
  let r = Telemetry.Recorder.create () in
  (try
     Telemetry.Probe.with_sink (Telemetry.Recorder.sink r) (fun () ->
         Telemetry.Probe.with_span "boom" (fun () -> failwith "kaput"))
   with Failure _ -> ());
  match Telemetry.Recorder.spans r with
  | [ s ] ->
    checks "span closed despite the raise" "boom" s.span_name;
    checkb "error recorded in args" true
      (List.mem_assoc "error" s.span_args)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_manual_span_pairing () =
  let r = Telemetry.Recorder.create () in
  Telemetry.Probe.with_sink (Telemetry.Recorder.sink r) (fun () ->
      Telemetry.Probe.span_begin ~cat:"c" "a";
      Telemetry.Probe.span_begin "b";
      Telemetry.Probe.span_end ~args:[ ("who", "b") ] ();
      Telemetry.Probe.span_end ());
  match Telemetry.Recorder.spans r with
  | [ b; a ] ->
    checks "innermost closes first" "b" b.span_name;
    checki "b depth" 1 b.span_depth;
    checks "a second" "a" a.span_name;
    checks "a category" "c" a.span_cat
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

(* --- counters and histograms ------------------------------------------ *)

let test_counters_histograms () =
  let r = Telemetry.Recorder.create () in
  Telemetry.Probe.with_sink (Telemetry.Recorder.sink r) (fun () ->
      Telemetry.Probe.count "c";
      Telemetry.Probe.count ~by:4 "c";
      Telemetry.Probe.count "d";
      Telemetry.Probe.observe "h" 2.0;
      Telemetry.Probe.observe "h" 6.0;
      Telemetry.Probe.observe "h" 4.0);
  checki "counter accumulates" 5 (Telemetry.Recorder.counter r "c");
  checki "absent counter is 0" 0 (Telemetry.Recorder.counter r "absent");
  checkb "counters sorted by name" true
    (Telemetry.Recorder.counters r = [ ("c", 5); ("d", 1) ]);
  match Telemetry.Recorder.histogram r "h" with
  | None -> Alcotest.fail "histogram h missing"
  | Some h ->
    checki "count" 3 h.h_count;
    checkb "sum" true (h.h_sum = 12.0);
    checkb "min" true (h.h_min = 2.0);
    checkb "max" true (h.h_max = 6.0)

(* --- Chrome trace well-formedness ------------------------------------- *)

let test_chrome_trace () =
  let r = Telemetry.Recorder.create () in
  Telemetry.Probe.with_sink (Telemetry.Recorder.sink r) (fun () ->
      Telemetry.Probe.with_span ~cat:"test" "outer" (fun () ->
          Telemetry.Probe.with_span "inner" (fun () -> ());
          Telemetry.Probe.instant ~args:[ ("x", "1") ] "mark");
      Telemetry.Probe.count ~by:3 "widgets");
  let doc = parse (Telemetry.Chrome_trace.to_string r) in
  let events =
    match Option.bind (J.member "traceEvents" doc) J.to_list with
    | Some es -> es
    | None -> Alcotest.fail "no traceEvents array"
  in
  (* 2 spans + 1 instant + 1 counter sample *)
  checki "event count" 4 (List.length events);
  let field e k = J.member k e in
  let phase e = match field e "ph" with Some (J.Str p) -> p | _ -> "?" in
  List.iter
    (fun e ->
      checkb "every event has a name" true
        (match field e "name" with Some (J.Str _) -> true | _ -> false);
      checkb "every event has a numeric ts" true
        (match field e "ts" with Some (J.Num _) -> true | _ -> false);
      checkb "pid and tid present" true
        (field e "pid" <> None && field e "tid" <> None);
      if phase e = "X" then
        checkb "complete events carry dur >= 0" true
          (match field e "dur" with Some (J.Num d) -> d >= 0.0 | _ -> false))
    events;
  let phases = List.sort_uniq compare (List.map phase events) in
  checkb "X, i and C phases all present" true
    (phases = [ "C"; "X"; "i" ]);
  (* Events are sorted by timestamp — what chrome://tracing expects. *)
  let ts = List.filter_map (fun e -> Option.bind (field e "ts") J.to_num) events in
  checkb "sorted by ts" true (List.sort compare ts = ts);
  checkb "displayTimeUnit set" true
    (J.member "displayTimeUnit" doc = Some (J.Str "ms"))

let test_metrics_export () =
  let r = Telemetry.Recorder.create () in
  Telemetry.Probe.with_sink (Telemetry.Recorder.sink r) (fun () ->
      Telemetry.Probe.count ~by:2 "c";
      Telemetry.Probe.observe "h" 3.0;
      Telemetry.Probe.with_span "s" (fun () -> ()));
  let doc = parse (Telemetry.Metrics.to_string r) in
  checkb "counter exported" true
    (Option.bind (J.member "counters" doc) (J.member "c")
    = Some (J.Num 2.0));
  checkb "histogram mean exported" true
    (match
       Option.bind (J.member "histograms" doc) (J.member "h")
       |> Fun.flip Option.bind (J.member "mean")
     with
    | Some (J.Num m) -> m = 3.0
    | _ -> false);
  checkb "span rollup exported" true
    (match
       Option.bind (J.member "spans" doc) (J.member "s")
       |> Fun.flip Option.bind (J.member "count")
     with
    | Some (J.Num 1.0) -> true
    | _ -> false)

(* --- the overhead contract: no sink => bit-identical reports ----------- *)

let test_bit_identical_no_sink () =
  let bug = Bugs.Fig1_nullderef.bug in
  let chain_of (r : Aitia.Diagnose.report) =
    match r.chain with Some c -> Aitia.Chain.to_string c | None -> "-"
  in
  Telemetry.Probe.uninstall ();
  let plain = Aitia.Diagnose.diagnose ~static_hints:true (bug.case ()) in
  let recorder = Telemetry.Recorder.create () in
  let traced =
    Telemetry.Probe.with_sink (Telemetry.Recorder.sink recorder) (fun () ->
        Aitia.Diagnose.diagnose ~static_hints:true (bug.case ()))
  in
  checkb "tracing actually happened" true
    (Telemetry.Recorder.counter recorder "lifs.schedules" > 0);
  checks "identical chain" (chain_of plain) (chain_of traced);
  checki "identical schedules" plain.lifs.stats.schedules
    traced.lifs.stats.schedules;
  checki "identical interleavings" plain.lifs.stats.interleavings
    traced.lifs.stats.interleavings;
  checkb "identical simulated time" true
    (plain.lifs.stats.simulated = traced.lifs.stats.simulated);
  match plain.causality, traced.causality with
  | Some p, Some t ->
    checki "identical flips" (List.length p.tested) (List.length t.tested);
    checki "identical CA schedules" p.stats.schedules t.stats.schedules
  | _ -> Alcotest.fail "fig1 must diagnose"

(* --- corpus parity: counters == Summary stats on every real bug -------- *)

let corpus_parity (bug : Bugs.Bug.t) () =
  let r = Telemetry.Recorder.create () in
  let report =
    Telemetry.Probe.with_sink (Telemetry.Recorder.sink r) (fun () ->
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
          ~static_hints:true (bug.case ()))
  in
  let c = Telemetry.Recorder.counter r in
  checkb "reproduced" true (Aitia.Diagnose.reproduced report);
  (* Causality Analysis runs exactly once (on the reproducing slice), so
     its counters must equal the report's own statistics exactly. *)
  (match report.causality with
  | None -> Alcotest.fail "no causality result"
  | Some ca ->
    let flips = List.length ca.tested in
    let pruned = ca.stats.flips_statically_pruned in
    checki "causality.flips counter" flips (c "causality.flips");
    checki "causality.flips_statically_pruned counter" pruned
      (c "causality.flips_statically_pruned");
    checki "causality.flips_executed counter" (flips - pruned)
      (c "causality.flips_executed");
    checki "causality.root_causes counter" (List.length ca.root_causes)
      (c "causality.root_causes"));
  (* LIFS counters accumulate over every slice tried; the report keeps
     only the reproducing slice's stats.  Equality holds when the first
     slice reproduced, a lower bound otherwise. *)
  if report.slices_tried = 1 then
    checki "lifs.schedules counter" report.lifs.stats.schedules
      (c "lifs.schedules")
  else
    checkb "lifs.schedules counter covers the reproducing slice" true
      (c "lifs.schedules" >= report.lifs.stats.schedules);
  checki "diagnose.slices counter" report.slices_tried
    (c "diagnose.slices");
  checkb "every schedule ran through the controller" true
    (c "controller.runs" >= c "lifs.schedules")

let corpus_cases () =
  List.map
    (fun (bug : Bugs.Bug.t) ->
      Alcotest.test_case bug.id `Quick (corpus_parity bug))
    (Bugs.Registry.cves @ Bugs.Registry.syzkaller)

(* --- the perf gate ----------------------------------------------------- *)

let row ~bug ~flips ~sim ~identical =
  J.Obj
    [ ("bug", J.Str bug);
      ("flips", J.Num (float_of_int flips));
      ("sim", J.Num sim);
      ("host_elapsed_s", J.Num 1.0);
      ("chain_identical", J.Bool identical) ]

let baseline_rows =
  [ row ~bug:"a" ~flips:4 ~sim:2.0 ~identical:true;
    row ~bug:"b" ~flips:10 ~sim:5.0 ~identical:true ]

let gate ?tolerance fresh =
  Telemetry.Gate.compare_rows ?tolerance
    ~ignore_fields:[ "host_elapsed_s" ] ~id_key:"bug"
    ~baseline:baseline_rows ~fresh ()

let test_gate_pass () =
  let v = gate baseline_rows in
  checkb "identical doc passes" true v.gate_ok;
  checkb "comparisons counted" true (v.checked > 0)

let test_gate_regression () =
  let v =
    gate
      [ row ~bug:"a" ~flips:7 ~sim:2.0 ~identical:true;
        row ~bug:"b" ~flips:10 ~sim:5.0 ~identical:true ]
  in
  checkb "regression fails" false v.gate_ok;
  checki "one violation" 1 (List.length v.violations)

let test_gate_tolerance () =
  let fresh =
    [ row ~bug:"a" ~flips:4 ~sim:2.05 ~identical:true;
      row ~bug:"b" ~flips:10 ~sim:5.0 ~identical:true ]
  in
  checkb "2.5% slip passes at 5%" true (gate ~tolerance:0.05 fresh).gate_ok;
  checkb "2.5% slip fails at 1%" false
    (gate ~tolerance:0.01 fresh).gate_ok

let test_gate_invariant () =
  let v =
    gate
      [ row ~bug:"a" ~flips:4 ~sim:2.0 ~identical:false;
        row ~bug:"b" ~flips:10 ~sim:5.0 ~identical:true ]
  in
  checkb "broken boolean invariant fails" false v.gate_ok

let test_gate_missing_row () =
  let v = gate [ row ~bug:"a" ~flips:4 ~sim:2.0 ~identical:true ] in
  checkb "missing bug fails" false v.gate_ok;
  let v' =
    gate
      (baseline_rows @ [ row ~bug:"extra" ~flips:1 ~sim:1.0 ~identical:true ])
  in
  checkb "extra fresh row is fine" true v'.gate_ok

let test_gate_ignored_field () =
  let fresh =
    [ row ~bug:"a" ~flips:4 ~sim:2.0 ~identical:true;
      J.Obj
        [ ("bug", J.Str "b");
          ("flips", J.Num 10.0);
          ("sim", J.Num 5.0);
          ("host_elapsed_s", J.Num 900.0);
          ("chain_identical", J.Bool true) ] ]
  in
  checkb "host wall clock ignored" true (gate fresh).gate_ok

let test_gate_docs () =
  let doc rows = J.Obj [ ("causality", J.Arr rows) ] in
  let v =
    Telemetry.Gate.compare_docs ~ignore_fields:[ "host_elapsed_s" ]
      ~baseline:(doc baseline_rows) ~fresh:(doc baseline_rows) ()
  in
  checkb "merged-object documents compare" true v.gate_ok;
  let v' =
    Telemetry.Gate.compare_docs ~ignore_fields:[ "host_elapsed_s" ]
      ~baseline:(J.Arr baseline_rows) ~fresh:(doc baseline_rows) ()
  in
  checkb "bare-array baseline still accepted" true v'.gate_ok

let () =
  Alcotest.run "telemetry"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode + whitespace" `Quick
            test_json_unicode;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "stable floats" `Quick test_json_float_stable;
          Alcotest.test_case "truncated inputs" `Quick test_json_truncated;
          Alcotest.test_case "wrong-typed fields" `Quick
            test_json_wrong_types;
          Alcotest.test_case "duplicate keys" `Quick
            test_json_duplicate_keys ] );
      ( "probe",
        [ Alcotest.test_case "disabled is a no-op" `Quick
            test_probe_disabled;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception;
          Alcotest.test_case "manual begin/end pairing" `Quick
            test_manual_span_pairing;
          Alcotest.test_case "counters and histograms" `Quick
            test_counters_histograms ] );
      ( "export",
        [ Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace;
          Alcotest.test_case "metrics json" `Quick test_metrics_export ] );
      ( "overhead",
        [ Alcotest.test_case "no sink => bit-identical" `Quick
            test_bit_identical_no_sink ] );
      ("corpus-parity", corpus_cases ());
      ( "gate",
        [ Alcotest.test_case "pass" `Quick test_gate_pass;
          Alcotest.test_case "regression" `Quick test_gate_regression;
          Alcotest.test_case "tolerance" `Quick test_gate_tolerance;
          Alcotest.test_case "invariant" `Quick test_gate_invariant;
          Alcotest.test_case "missing row" `Quick test_gate_missing_row;
          Alcotest.test_case "ignored field" `Quick
            test_gate_ignored_field;
          Alcotest.test_case "documents" `Quick test_gate_docs ] ) ]
