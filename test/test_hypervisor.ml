(* Unit tests for the scheduling control plane: controller, schedules,
   VM accounting. *)

open Ksim.Program.Build
module Schedule = Hypervisor.Schedule
module Controller = Hypervisor.Controller
module Iid = Ksim.Access.Iid

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let thread name instrs =
  { Ksim.Program.spec_name = name;
    context = Ksim.Program.Syscall { call = name; sysno = 0 };
    program = Ksim.Program.make ~name instrs;
    resources = [] }

let group ?entries ?globals ?locks threads =
  Ksim.Program.group ?entries ?globals ?locks ~name:"test" threads

let labels_of (o : Controller.outcome) =
  List.map (fun (e : Ksim.Machine.event) -> e.iid.Iid.label) o.trace

let run_serial ?max_steps grp order =
  Controller.run ?max_steps (Ksim.Machine.create grp)
    (Schedule.preemption_policy (Schedule.serial order))

(* --- controller ---------------------------------------------------------- *)

let test_completion () =
  let grp = group [ thread "A" [ nop "a1"; nop "a2" ] ] in
  let o = run_serial grp [ 0 ] in
  checkb "completed" true (o.verdict = Controller.Completed);
  checki "steps" 2 o.steps

let test_failure_verdict () =
  let grp = group [ thread "A" [ bug_on "b" (cint 1) ] ] in
  let o = run_serial grp [ 0 ] in
  match o.verdict with
  | Controller.Failed (Ksim.Failure.Assertion_violation _) -> ()
  | _ -> Alcotest.fail "expected failure verdict"

let test_deadlock_verdict () =
  let grp =
    group ~locks:[ "m"; "n" ]
      [ thread "A"
          [ lock "a1" "m"; lock "a2" "n"; unlock "a3" "n"; unlock "a4" "m" ];
        thread "B"
          [ lock "b1" "n"; lock "b2" "m"; unlock "b3" "m"; unlock "b4" "n" ] ]
  in
  (* Force the classic ABBA interleaving: A takes m, then switch to B. *)
  let sched =
    { Schedule.order = [ 0; 1 ];
      switches =
        [ { Schedule.after = Iid.make ~tid:0 ~label:"a1" ~occ:1;
            switch_to = 1 } ] }
  in
  let o =
    Controller.run (Ksim.Machine.create grp) (Schedule.preemption_policy sched)
  in
  checkb "deadlock" true (o.verdict = Controller.Deadlock)

let test_step_limit () =
  let grp = group [ thread "A" [ nop "top"; goto "again" "top" ] ] in
  let o = run_serial ~max_steps:50 grp [ 0 ] in
  checkb "watchdog" true (o.verdict = Controller.Step_limit);
  checki "steps" 50 o.steps

(* --- preemption schedules ------------------------------------------------- *)

let test_serial_order () =
  let grp =
    group [ thread "A" [ nop "a1"; nop "a2" ]; thread "B" [ nop "b1" ] ]
  in
  let o = run_serial grp [ 1; 0 ] in
  Alcotest.(check (list string)) "B first" [ "b1"; "a1"; "a2" ] (labels_of o)

let test_switch_after_instruction () =
  let grp =
    group
      [ thread "A" [ nop "a1"; nop "a2" ]; thread "B" [ nop "b1"; nop "b2" ] ]
  in
  let sched =
    { Schedule.order = [ 0; 1 ];
      switches =
        [ { Schedule.after = Iid.make ~tid:0 ~label:"a1" ~occ:1;
            switch_to = 1 } ] }
  in
  let o =
    Controller.run (Ksim.Machine.create grp) (Schedule.preemption_policy sched)
  in
  Alcotest.(check (list string)) "preempted after a1"
    [ "a1"; "b1"; "b2"; "a2" ] (labels_of o)

let test_spawned_runs_after_spawner () =
  let worker = ("w", Ksim.Program.make ~name:"w" [ nop "k1" ]) in
  let grp =
    group ~entries:[ worker ]
      [ thread "A" [ queue_work "q" "w"; nop "a2" ]; thread "B" [ nop "b1" ] ]
  in
  let o = run_serial grp [ 0; 1 ] in
  (* Spawned worker is inserted right after its spawner in the queue:
     A completes, then w, then B. *)
  Alcotest.(check (list string)) "kworker before B" [ "q"; "a2"; "k1"; "b1" ]
    (labels_of o)

let test_interleaving_count_and_key () =
  let s0 = Schedule.serial [ 0; 1 ] in
  checki "serial count" 0 (Schedule.interleaving_count s0);
  let s1 =
    { s0 with
      Schedule.switches =
        [ { Schedule.after = Iid.make ~tid:0 ~label:"x" ~occ:1;
            switch_to = 1 } ] }
  in
  checki "one switch" 1 (Schedule.interleaving_count s1);
  checkb "keys differ" false
    (String.equal (Schedule.preemption_key s0) (Schedule.preemption_key s1))

(* --- plan schedules -------------------------------------------------------- *)

let test_plan_exact_replay () =
  let grp =
    group
      [ thread "A"
          [ store "a1" (g "x") (cint 1); store "a2" (g "y") (cint 1) ];
        thread "B" [ store "b1" (g "x") (cint 2) ] ]
  in
  let plan =
    Schedule.plan
      [ Iid.make ~tid:0 ~label:"a1" ~occ:1;
        Iid.make ~tid:1 ~label:"b1" ~occ:1;
        Iid.make ~tid:0 ~label:"a2" ~occ:1 ]
  in
  let o =
    Controller.run (Ksim.Machine.create grp) (Schedule.plan_policy plan)
  in
  Alcotest.(check (list string)) "exact order" [ "a1"; "b1"; "a2" ]
    (labels_of o);
  checkb "completed" true (o.verdict = Controller.Completed)

let test_plan_run_through_divergence () =
  (* The plan references a label on a branch path that is not taken; the
     policy runs the thread through the new path and drops the planned
     event. *)
  let grp =
    group
      [ thread "A"
          [ load "a1" "v" (g "flag");
            branch_if "a2" (Eq (reg "v", cint 0)) "skip";
            store "a3" (g "x") (cint 1);
            nop "skip" ] ]
  in
  let plan =
    Schedule.plan
      [ Iid.make ~tid:0 ~label:"a1" ~occ:1;
        Iid.make ~tid:0 ~label:"a2" ~occ:1;
        Iid.make ~tid:0 ~label:"a3" ~occ:1 (* never executes: flag = 0 *) ]
  in
  let o =
    Controller.run (Ksim.Machine.create grp) (Schedule.plan_policy plan)
  in
  checkb "completed" true (o.verdict = Controller.Completed);
  checkb "a3 skipped" false (List.mem "a3" (labels_of o))

let test_plan_lock_liveness () =
  (* The plan asks for B first, but B needs the lock A holds; the policy
     must run A (the holder) to release it. *)
  let grp =
    group ~locks:[ "m" ]
      [ thread "A" [ lock "a1" "m"; nop "a2"; unlock "a3" "m" ];
        thread "B" [ lock "b1" "m"; unlock "b2" "m" ] ]
  in
  let plan =
    Schedule.plan
      [ Iid.make ~tid:0 ~label:"a1" ~occ:1;
        Iid.make ~tid:1 ~label:"b1" ~occ:1 (* blocked: A holds m *);
        Iid.make ~tid:1 ~label:"b2" ~occ:1;
        Iid.make ~tid:0 ~label:"a2" ~occ:1;
        Iid.make ~tid:0 ~label:"a3" ~occ:1 ]
  in
  let o =
    Controller.run (Ksim.Machine.create grp) (Schedule.plan_policy plan)
  in
  checkb "completed (no deadlock)" true (o.verdict = Controller.Completed)

let test_plan_executed_events () =
  let grp = group [ thread "A" [ nop "a1"; nop "a2" ] ] in
  let plan =
    Schedule.plan
      [ Iid.make ~tid:0 ~label:"a1" ~occ:1;
        Iid.make ~tid:0 ~label:"missing" ~occ:1 ]
  in
  let o =
    Controller.run (Ksim.Machine.create grp) (Schedule.plan_policy plan)
  in
  let executed = Schedule.executed_events plan o.trace in
  checki "only a1 of the plan ran" 1 (List.length executed)

(* --- vm -------------------------------------------------------------------- *)

let test_vm_accounting () =
  let grp = group [ thread "A" [ bug_on "b" (cint 1) ] ] in
  let vm = Hypervisor.Vm.create grp in
  let policy () = Schedule.preemption_policy (Schedule.serial [ 0 ]) in
  let _ = Hypervisor.Vm.run vm (policy ()) in
  let _ = Hypervisor.Vm.run vm (policy ()) in
  checki "runs" 2 (Hypervisor.Vm.runs vm);
  checki "failures" 2 (Hypervisor.Vm.failures vm);
  checkb "failing runs cost reboots" true
    (Hypervisor.Vm.simulated_seconds vm
    > 2.0 *. Hypervisor.Vm.default_costs.per_schedule)

let test_vm_costs_shape () =
  (* A failing run must be more expensive than a passing one: reboots
     dominate, which is why Causality Analysis takes longer (§5.1). *)
  let pass = group [ thread "A" [ nop "n" ] ] in
  let fail_ = group [ thread "A" [ bug_on "b" (cint 1) ] ] in
  let vm_pass = Hypervisor.Vm.create pass in
  let vm_fail = Hypervisor.Vm.create fail_ in
  let _ =
    Hypervisor.Vm.run vm_pass
      (Schedule.preemption_policy (Schedule.serial [ 0 ]))
  in
  let _ =
    Hypervisor.Vm.run vm_fail
      (Schedule.preemption_policy (Schedule.serial [ 0 ]))
  in
  checkb "failure costlier" true
    (Hypervisor.Vm.simulated_seconds vm_fail
    > Hypervisor.Vm.simulated_seconds vm_pass)

let test_vm_custom_costs () =
  let grp = group [ thread "A" [ bug_on "b" (cint 1) ] ] in
  let costs = { Hypervisor.Vm.per_schedule = 2.0; per_reboot = 10.0; per_restore = 0.1 } in
  let vm = Hypervisor.Vm.create ~costs grp in
  let _ =
    Hypervisor.Vm.run vm (Schedule.preemption_policy (Schedule.serial [ 0 ]))
  in
  checkb "custom model applied" true
    (Float.abs (Hypervisor.Vm.simulated_seconds vm -. 12.0) < 1e-9);
  checkb "stats render" true
    (String.length (Fmt.str "%a" Hypervisor.Vm.pp_stats vm) > 5)

let test_schedule_printing () =
  let sched =
    { Schedule.order = [ 0; 1 ];
      switches =
        [ { Schedule.after = Iid.make ~tid:0 ~label:"a1" ~occ:1;
            switch_to = 1 } ] }
  in
  checkb "preemption renders" true
    (String.length (Fmt.str "%a" Schedule.pp_preemption sched) > 10);
  let plan = Schedule.plan [ Iid.make ~tid:0 ~label:"a1" ~occ:1 ] in
  checkb "plan renders" true
    (String.length (Fmt.str "%a" Schedule.pp_plan plan) > 5)

let test_irq_in_progress () =
  let handler = ("h", Ksim.Program.make ~name:"h" [ nop "h1"; nop "h2" ]) in
  let grp =
    group ~entries:[ handler ]
      [ thread "A"
          [ Ksim.Program.Build.enable_irq "e" "h"; nop "a2" ] ]
  in
  let m = Ksim.Machine.create grp in
  let m, _ = (match Ksim.Machine.step m 0 with Ok x -> x | Error _ -> assert false) in
  (* handler spawned but not started *)
  checkb "not in progress yet" true
    (Hypervisor.Controller.irq_in_progress m (Ksim.Machine.runnable m) = None);
  let m, _ = (match Ksim.Machine.step m 1 with Ok x -> x | Error _ -> assert false) in
  checkb "in progress after first step" true
    (Hypervisor.Controller.irq_in_progress m (Ksim.Machine.runnable m)
    = Some 1)

let () =
  Alcotest.run "hypervisor"
    [ ( "controller",
        [ Alcotest.test_case "completion" `Quick test_completion;
          Alcotest.test_case "failure" `Quick test_failure_verdict;
          Alcotest.test_case "deadlock" `Quick test_deadlock_verdict;
          Alcotest.test_case "step limit" `Quick test_step_limit ] );
      ( "preemption",
        [ Alcotest.test_case "serial order" `Quick test_serial_order;
          Alcotest.test_case "switch point" `Quick
            test_switch_after_instruction;
          Alcotest.test_case "spawn placement" `Quick
            test_spawned_runs_after_spawner;
          Alcotest.test_case "count/key" `Quick
            test_interleaving_count_and_key ] );
      ( "plan",
        [ Alcotest.test_case "exact replay" `Quick test_plan_exact_replay;
          Alcotest.test_case "divergence" `Quick
            test_plan_run_through_divergence;
          Alcotest.test_case "lock liveness" `Quick test_plan_lock_liveness;
          Alcotest.test_case "executed events" `Quick
            test_plan_executed_events ] );
      ( "vm",
        [ Alcotest.test_case "accounting" `Quick test_vm_accounting;
          Alcotest.test_case "cost shape" `Quick test_vm_costs_shape;
          Alcotest.test_case "custom costs" `Quick test_vm_custom_costs;
          Alcotest.test_case "printers" `Quick test_schedule_printing;
          Alcotest.test_case "irq in progress" `Quick test_irq_in_progress
        ] ) ]
