(* CI perf-regression gate: compare a fresh bench metrics document
   against the committed baseline and fail loudly on regression.

     perf_gate BASELINE FRESH [--target NAME] [--tolerance F]
               [--ignore FIELD]...

   Documents are either bare row arrays (the historical
   BENCH_causality.json format) or the merged multi-target object that
   `bench/main.exe --json` writes; rows are matched per bug.  Host wall
   clock is ignored by default — it measures the CI runner, not the
   code. *)

(* Host wall clock measures the CI runner, not the code; the
   schedules-per-simulated-second rates are higher-is-better, the
   opposite of the gate's regression direction.  The parallel columns
   (--jobs rows: wall times, speedup, worker count) are likewise
   host-dependent and higher-is-better where numeric — the
   parallel-parity gate owns them, not this one. *)
let default_ignored =
  [ "host_elapsed_s"; "plain_sched_per_simsec"; "snap_sched_per_simsec";
    "jobs"; "seq_wall_s"; "par_wall_s"; "speedup"; "par_sched_per_simsec" ]

let usage () =
  Fmt.epr
    "usage: perf_gate BASELINE FRESH [--target NAME] [--tolerance F] \
     [--ignore FIELD]...@.";
  exit 2

let read_doc file =
  let ic =
    try open_in file
    with Sys_error e ->
      Fmt.epr "perf_gate: %s@." e;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Telemetry.Json.of_string s with
  | Ok doc -> doc
  | Error e ->
    Fmt.epr "perf_gate: %s: %s@." file e;
    exit 2

let () =
  let files = ref [] in
  let target = ref "causality" in
  let tolerance = ref 0.02 in
  let ignored = ref default_ignored in
  let rec parse = function
    | [] -> ()
    | "--target" :: v :: rest ->
      target := v;
      parse rest
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tolerance := f
      | _ ->
        Fmt.epr "perf_gate: bad tolerance %S@." v;
        exit 2);
      parse rest
    | "--ignore" :: v :: rest ->
      ignored := v :: !ignored;
      parse rest
    | ("--target" | "--tolerance" | "--ignore") :: [] -> usage ()
    | a :: _ when String.length a > 2 && String.sub a 0 2 = "--" -> usage ()
    | a :: rest ->
      files := a :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline_file; fresh_file ] ->
    let baseline = read_doc baseline_file in
    let fresh = read_doc fresh_file in
    let v =
      Telemetry.Gate.compare_docs ~tolerance:!tolerance
        ~ignore_fields:!ignored ~target:!target ~baseline ~fresh ()
    in
    if v.gate_ok then (
      Fmt.pr "perf gate OK: %d metric(s) within %.0f%% of %s@." v.checked
        (100.0 *. !tolerance) baseline_file;
      exit 0)
    else (
      Fmt.epr "perf gate FAILED (%d metric(s) checked):@." v.checked;
      List.iter (fun m -> Fmt.epr "  %s@." m) v.violations;
      exit 1)
  | _ -> usage ()
