(* CI perf-regression gate: compare a fresh bench metrics document
   against the committed baseline and fail loudly on regression.

     perf_gate BASELINE FRESH [--target NAME] [--tolerance F]
               [--ignore FIELD]...

   Documents are either bare row arrays (the historical
   BENCH_causality.json format) or the merged multi-target object that
   `bench/main.exe --json` writes; rows are matched per bug.  Host wall
   clock is ignored by default — it measures the CI runner, not the
   code. *)

(* Host wall clock measures the CI runner, not the code; the
   schedules-per-simulated-second rates are higher-is-better, the
   opposite of the gate's regression direction.  The parallel columns
   (--jobs rows: wall times, speedup, worker count) are likewise
   host-dependent and higher-is-better where numeric — the
   parallel-parity gate owns them, not this one.  The engine
   instrs-per-second columns are host-dependent too; the
   reference-vs-compiled ratio is gated by the floor below instead. *)
let default_ignored =
  [ "host_elapsed_s"; "plain_sched_per_simsec"; "snap_sched_per_simsec";
    "jobs"; "seq_wall_s"; "par_wall_s"; "speedup"; "par_sched_per_simsec";
    "engine_ref_ips"; "engine_compiled_ips"; "engine_speedup";
    "corpus_engine_speedup" ]

(* Higher-is-better minimums checked against the FRESH document (ratios
   are host-independent, so no baseline needed): the compiled engine
   must stay at least 5x faster than the reference interpreter across
   the corpus. *)
let default_floors = [ ("corpus_engine_speedup", 5.0) ]

let usage () =
  Fmt.epr
    "usage: perf_gate BASELINE FRESH [--target NAME] [--tolerance F] \
     [--ignore FIELD]... [--floor FIELD:MIN]...@.";
  exit 2

let read_doc file =
  let ic =
    try open_in file
    with Sys_error e ->
      Fmt.epr "perf_gate: %s@." e;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Telemetry.Json.of_string s with
  | Ok doc -> doc
  | Error e ->
    Fmt.epr "perf_gate: %s: %s@." file e;
    exit 2

(* Rows of the [target] section: the document is either a bare row
   array (historical format) or the merged multi-target object. *)
let rows_of_doc ~target doc =
  let open Telemetry.Json in
  let body =
    match doc with
    | Obj _ -> ( match member target doc with Some d -> d | None -> doc)
    | d -> d
  in
  match to_list body with Some rows -> rows | None -> []

(* Check every row carrying [field] against the floor; a floor whose
   field appears in no row fails too — a silently vanished metric must
   not read as a pass. *)
let check_floors ~target ~floors fresh =
  let open Telemetry.Json in
  let rows = rows_of_doc ~target fresh in
  List.concat_map
    (fun (field, min_v) ->
      let seen = ref false in
      let bad =
        List.filter_map
          (fun row ->
            match member field row with
            | Some v -> (
              seen := true;
              match to_num v with
              | Some f when f >= min_v -> None
              | Some f ->
                let bug =
                  match Option.bind (member "bug" row) to_str with
                  | Some b -> b
                  | None -> "?"
                in
                Some (Fmt.str "%s/%s: %.4f below floor %.4f" bug field f min_v)
              | None -> Some (Fmt.str "%s: not numeric" field))
            | None -> None)
          rows
      in
      if !seen then bad
      else [ Fmt.str "%s: floored field missing from fresh document" field ])
    floors

let () =
  let files = ref [] in
  let target = ref "causality" in
  let tolerance = ref 0.02 in
  let ignored = ref default_ignored in
  let floors = ref default_floors in
  let rec parse = function
    | [] -> ()
    | "--target" :: v :: rest ->
      target := v;
      parse rest
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> tolerance := f
      | _ ->
        Fmt.epr "perf_gate: bad tolerance %S@." v;
        exit 2);
      parse rest
    | "--ignore" :: v :: rest ->
      ignored := v :: !ignored;
      parse rest
    | "--floor" :: v :: rest ->
      (match String.index_opt v ':' with
      | Some i -> (
        let field = String.sub v 0 i in
        let min_s = String.sub v (i + 1) (String.length v - i - 1) in
        match float_of_string_opt min_s with
        | Some f when field <> "" -> floors := (field, f) :: !floors
        | _ ->
          Fmt.epr "perf_gate: bad floor %S (want FIELD:MIN)@." v;
          exit 2)
      | None ->
        Fmt.epr "perf_gate: bad floor %S (want FIELD:MIN)@." v;
        exit 2);
      parse rest
    | ("--target" | "--tolerance" | "--ignore" | "--floor") :: [] -> usage ()
    | a :: _ when String.length a > 2 && String.sub a 0 2 = "--" -> usage ()
    | a :: rest ->
      files := a :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline_file; fresh_file ] ->
    let baseline = read_doc baseline_file in
    let fresh = read_doc fresh_file in
    let v =
      Telemetry.Gate.compare_docs ~tolerance:!tolerance
        ~ignore_fields:!ignored ~target:!target ~baseline ~fresh ()
    in
    let floor_violations =
      check_floors ~target:!target ~floors:!floors fresh
    in
    if v.gate_ok && floor_violations = [] then (
      Fmt.pr
        "perf gate OK: %d metric(s) within %.0f%% of %s, %d floor(s) held@."
        v.checked
        (100.0 *. !tolerance)
        baseline_file
        (List.length !floors);
      exit 0)
    else (
      Fmt.epr "perf gate FAILED (%d metric(s) checked):@." v.checked;
      List.iter (fun m -> Fmt.epr "  %s@." m) v.violations;
      List.iter (fun m -> Fmt.epr "  %s@." m) floor_violations;
      exit 1)
  | _ -> usage ()
