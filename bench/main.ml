(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (§5), plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe            — everything
     dune exec bench/main.exe -- LIST    — only the named targets
     ... -- causality --jobs 4          — adds parallel speedup/parity
                                          columns to the causality rows

   Targets: table1 table2 table3 table_5_3 fig1 fig3 fig5 fig6 fig7 fig9
            conciseness detector study wrongfix ablations analysis
            causality resilience micro

   Absolute times are simulated under the VM cost model (the substrate
   is a simulator, not the paper's 32-VM Xeon testbed); the comparisons
   to check are the shapes: who reproduces what, at which interleaving
   count, how chains compare to raw race counts, and where Causality
   Analysis dominates the cost. *)

module Iid = Ksim.Access.Iid

let pr = Fmt.pr

let section title =
  pr "@.============================================================@.";
  pr "%s@." title;
  pr "============================================================@."

(* --- memoized diagnoses ------------------------------------------------- *)

let reports : (string, Aitia.Diagnose.report) Hashtbl.t = Hashtbl.create 32

let report_of (bug : Bugs.Bug.t) =
  match Hashtbl.find_opt reports bug.id with
  | Some r -> r
  | None ->
    let r =
      Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
        (bug.case ())
    in
    Hashtbl.add reports bug.id r;
    r

let chain_len (r : Aitia.Diagnose.report) =
  match r.chain with Some c -> Aitia.Chain.length c | None -> 0

let chain_str (r : Aitia.Diagnose.report) =
  match r.chain with Some c -> Aitia.Chain.to_string c | None -> "-"

(* Machine-readable artifact sink (--json FILE): targets that produce
   trackable rows register them here; after every selected target has
   run, the rows land in FILE as one object keyed by target name —
   several targets in one invocation merge instead of overwriting each
   other. *)
let json_file : string option ref = ref None
let json_docs : (string * string) list ref = ref []

(* --jobs N: the causality target then re-runs each bug's diagnosis
   fanned out over N pool workers and reports wall-clock speedup and
   chain parity next to the sequential columns. *)
let jobs_opt : int ref = ref 1

let emit_json ~target doc =
  match !json_file with
  | Some f ->
    json_docs := (target, doc) :: !json_docs;
    pr "%s json queued for %s@." target f
  | None -> pr "json: %s@." doc

let flush_json () =
  match (!json_file, List.rev !json_docs) with
  | None, _ | _, [] -> ()
  | Some f, docs ->
    let oc = open_out f in
    output_string oc (Analysis.Report_json.obj docs);
    output_string oc "\n";
    close_out oc;
    pr "json written to %s (targets: %s)@." f
      (String.concat ", " (List.map fst docs))

(* --- Table 1 ------------------------------------------------------------- *)

let table1 () =
  section "Table 1: root-cause diagnosis requirements";
  let caps =
    List.filter_map
      (fun (bug : Bugs.Bug.t) ->
        match Baselines.Requirements.evidence_of_report (report_of bug) with
        | Some ev ->
          Some
            (Baselines.Requirements.capability
               ~single_variable:(bug.variables = Bugs.Bug.Single)
               ev)
        | None -> None)
      Bugs.Registry.syzkaller
  in
  let scores = Baselines.Requirements.table1 caps in
  pr "%-30s %-6s %-6s %-6s@." "tool" "compr." "p-agn." "concise";
  List.iter (fun s -> pr "%a@." Baselines.Requirements.pp_score s) scores;
  pr "@.(paper: AITIA y/y/y; Kairux -/y/y; CBL cond/-/y; MUVI cond/-/y; \
      REPT & RR y/y/-)@."

(* --- Tables 2 and 3 -------------------------------------------------------- *)

let row2 (bug : Bugs.Bug.t) =
  let r = report_of bug in
  let ca_scheds, ca_sim =
    match r.causality with
    | Some ca ->
      (ca.Aitia.Causality.stats.schedules, ca.Aitia.Causality.stats.simulated)
    | None -> (0, 0.0)
  in
  let p_lt, p_ls, p_i, p_ct, p_cs =
    match bug.paper with
    | Some p ->
      ( p.p_lifs_time, p.p_lifs_scheds, p.p_interleavings, p.p_ca_time,
        p.p_ca_scheds )
    | None -> (0.0, 0, 0, 0.0, 0)
  in
  pr
    "%-18s %-14s | %7.1f %6d %5d | %7.1f %6d | (paper: %.0fs %d %d | %.0fs \
     %d)@."
    bug.id bug.subsystem r.lifs.stats.simulated r.lifs.stats.schedules
    r.lifs.stats.interleavings ca_sim ca_scheds p_lt p_ls p_i p_ct p_cs

let table2 () =
  section "Table 2: CVEs (LIFS sim-time/#sched/inter | CA sim-time/#sched)";
  pr "%-18s %-14s | %7s %6s %5s | %7s %6s@." "bug" "subsystem" "lifs(s)"
    "#sched" "inter" "ca(s)" "#sched";
  List.iter row2 Bugs.Registry.cves

let table3 () =
  section "Table 3: Syzkaller bugs";
  pr "%-18s %-26s %-5s %-5s %-6s@." "bug" "type" "multi" "inter" "#chain";
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let r = report_of bug in
      pr "%-18s %-26s %-5s %-5d %-6d (paper: inter %d, chain %s)@." bug.id
        (Bugs.Bug.bug_type_name bug.bug_type)
        (Bugs.Bug.variables_name bug.variables)
        r.lifs.stats.interleavings (chain_len r)
        (match bug.paper with Some p -> p.p_interleavings | None -> 0)
        (match bug.paper with
        | Some { p_chain_races = Some n; _ } -> string_of_int n
        | _ -> "?"))
    Bugs.Registry.syzkaller;
  pr "@.timing detail:@.";
  List.iter row2 Bugs.Registry.syzkaller

(* --- Section 5.3 capability -------------------------------------------------- *)

let table_5_3 () =
  section "Section 5.3: diagnosis capability per tool (12 Syzkaller bugs)";
  pr "%-18s %-6s %-7s %-5s %-5s@." "bug" "AITIA" "Kairux" "CBL" "MUVI";
  let totals = Array.make 4 0 in
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      match Baselines.Requirements.evidence_of_report (report_of bug) with
      | None -> ()
      | Some ev ->
        let cap =
          Baselines.Requirements.capability
            ~single_variable:(bug.variables = Bugs.Bug.Single)
            ev
        in
        let b i x =
          if x then (
            totals.(i) <- totals.(i) + 1;
            "yes")
          else "no"
        in
        pr "%-18s %-6s %-7s %-5s %-5s@." bug.id (b 0 cap.cap_aitia)
          (b 1 cap.cap_kairux) (b 2 cap.cap_cbl) (b 3 cap.cap_muvi))
    Bugs.Registry.syzkaller;
  pr "totals: AITIA %d/12, Kairux %d/12, CBL %d/12, MUVI %d/12@." totals.(0)
    totals.(1) totals.(2) totals.(3);
  pr
    "(paper: AITIA 12/12; CBL cannot diagnose the multi-variable half; MUVI \
     explains 3/12)@."

(* --- figures ------------------------------------------------------------------ *)

let print_chain (bug : Bugs.Bug.t) =
  let r = report_of bug in
  match r.chain with
  | Some c -> pr "%s:@.  %a@." bug.id Aitia.Chain.pp c
  | None -> pr "%s: not reproduced@." bug.id

let fig1 () =
  section "Figure 1: abstract example and its causality chain";
  print_chain Bugs.Fig1_nullderef.bug;
  pr "(paper: (A1 => B1) --> (B2 => A2) --> NULL deref)@."

let fig3 () =
  section "Figure 3: causality chain of CVE-2017-15649";
  print_chain Bugs.Cve_2017_15649.bug;
  pr
    "(paper: (A2 => B11) /\\ (B2 => A6) --> (A6 => B12) --> (B17 => A12) --> \
     BUG_ON)@."

let fig4 () =
  section "Figure 4: complex kernel concurrency patterns";
  pr "(a)/(c) three contexts with a race-steered kworker invocation:@.";
  print_chain Bugs.Fig5_search.bug;
  pr "(b) a single system call racing with its own background threads:@.";
  print_chain Bugs.Fig4_single_syscall.bug

let fig5 () =
  section "Figure 5: LIFS search order with partial-order-reduction skips";
  let bug = Bugs.Fig5_search.bug in
  let case = bug.case () in
  let crash = Trace.History.crash case.history in
  let slice = List.hd (Trace.Slicer.slices case.history) in
  match Aitia.Diagnose.realize case slice with
  | None -> pr "slice not realizable@."
  | Some (group, prologue) ->
    let vm = Hypervisor.Vm.create group in
    let result =
      Aitia.Lifs.search ~prologue vm ~target:(Trace.Crash.matches crash) ()
    in
    List.iteri
      (fun i
           ( (sched : Hypervisor.Schedule.preemption),
             (o : Hypervisor.Controller.outcome) ) ->
        pr "search order %d: inter=%d  %-52s %a@." (i + 1)
          (Hypervisor.Schedule.interleaving_count sched)
          (Fmt.str "%a" Hypervisor.Schedule.pp_preemption sched)
          Hypervisor.Controller.pp_verdict o.verdict)
      result.runs;
    pr "pruned as equivalent (the figure's 'skip' nodes): %d@."
      result.stats.pruned;
    (match result.found with
    | Some s -> pr "reproduced: %a@." Ksim.Failure.pp s.failure
    | None -> pr "not reproduced@.")

let fig6 () =
  section "Figure 6: Causality Analysis steps for CVE-2017-15649";
  let r = report_of Bugs.Cve_2017_15649.bug in
  match r.causality with
  | None -> pr "not diagnosed@."
  | Some ca ->
    List.iteri
      (fun i (t : Aitia.Causality.tested) ->
        pr "step %2d: flip %-22s -> %-11s%s@." (i + 1)
          (Fmt.str "%a" Aitia.Race.pp_short t.race)
          (match t.verdict with
          | Aitia.Causality.Root_cause -> "no failure"
          | Aitia.Causality.Benign -> "still fails")
          (match t.disappeared with
          | [] -> ""
          | ds ->
            Fmt.str "  (disappeared: %a)"
              (Fmt.list ~sep:Fmt.comma Aitia.Race.pp_short)
              ds))
      ca.tested;
    pr
      "(paper steps: B17=>A12, A6=>B12, A2=>B11, B2=>A6 all flip to \
       no-failure; statistics races are benign)@."

let fig7 () =
  section "Figure 7: nested data race and ambiguity";
  let r = report_of Bugs.Fig7_nested.bug in
  print_chain Bugs.Fig7_nested.bug;
  (match r.causality with
  | Some ca ->
    pr "ambiguous: %a@."
      (Fmt.list ~sep:Fmt.comma Aitia.Race.pp_short)
      ca.ambiguous
  | None -> ());
  pr
    "(paper: Causality Analysis reports the surrounding race A1 => B2 as \
     ambiguous)@."

let fig9 () =
  section "Figure 9: the irqfd case study (bug #4)";
  print_chain Bugs.Fig9_irqfd.bug;
  print_chain Bugs.Syz_04_kvm_irqfd.bug;
  pr
    "(paper: (A1 => B1) --> (K1 => A2) --> failure, across the kworkerd \
     thread boundary)@."

(* --- conciseness (Section 5.2) -------------------------------------------------- *)

let conciseness () =
  section "Section 5.2: conciseness of causality chains";
  pr "%-18s %10s %8s %8s@." "bug" "mem-instrs" "races" "chain";
  let ms =
    List.filter_map
      (fun (bug : Bugs.Bug.t) ->
        match (report_of bug).metrics with
        | Some m ->
          pr "%-18s %10d %8d %8d@." bug.id m.mem_accessing_instrs
            m.races_detected m.races_in_chain;
          Some m
        | None -> None)
      Bugs.Registry.syzkaller
  in
  let avg f =
    List.fold_left (fun a m -> a +. float_of_int (f m)) 0.0 ms
    /. float_of_int (max 1 (List.length ms))
  in
  pr
    "average: %.1f memory-accessing instructions, %.1f data races, %.1f \
     races per chain@."
    (avg (fun (m : Aitia.Diagnose.metrics) -> m.mem_accessing_instrs))
    (avg (fun (m : Aitia.Diagnose.metrics) -> m.races_detected))
    (avg (fun (m : Aitia.Diagnose.metrics) -> m.races_in_chain));
  pr
    "(paper: 9592.8 instructions, 108.4 races, 3.0 per chain — the same \
     orders-of-magnitude collapse)@."

(* --- ablations ------------------------------------------------------------------ *)

(* Context switches in a trace: how tangled the reproduction is.  The
   point of least-interleaving-first search is not raw speed to a crash
   — a random scheduler can stumble into one — but a deterministic
   failure-causing sequence with the *fewest* preemptions, which is what
   Causality Analysis needs to flip races one at a time. *)
let switches_of (trace : Ksim.Machine.event list) =
  let rec go prev n = function
    | [] -> n
    | (e : Ksim.Machine.event) :: rest ->
      let tid = e.iid.Iid.tid in
      go (Some tid) (if prev = Some tid || prev = None then n else n + 1) rest
  in
  go None 0 trace

(* Random schedule search: runs until the same crash, and how many
   context switches its failing run contains. *)
let random_search (bug : Bugs.Bug.t) ~seed ~max_runs =
  let case = bug.case () in
  let crash = Trace.History.crash case.history in
  let slice = List.hd (Trace.Slicer.slices case.history) in
  match Aitia.Diagnose.realize case slice with
  | None -> None
  | Some (group, prologue) ->
    let rng = Fuzz.Rng.create seed in
    let rec go i =
      if i >= max_runs then None
      else
        let run_rng = Fuzz.Rng.split rng in
        let policy =
          Fuzz.Fuzzer.with_prologue prologue
            (Fuzz.Fuzzer.random_policy run_rng)
        in
        let o = Hypervisor.Controller.run (Ksim.Machine.create group) policy in
        match o.verdict with
        | Hypervisor.Controller.Failed f when Trace.Crash.matches crash f ->
          Some (i + 1, switches_of o.trace)
        | _ -> go (i + 1)
    in
    go 0

let ablation_order () =
  section "Ablation: least-interleaving-first vs random scheduling";
  pr "%-18s | %12s %14s | %12s %16s@." "bug" "LIFS #sched" "LIFS #switches"
    "random #runs" "random #switches";
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let r = report_of bug in
      let lifs_switches =
        match r.lifs.found with
        | Some s -> switches_of s.outcome.trace
        | None -> -1
      in
      let random_runs, random_switches =
        match random_search bug ~seed:7 ~max_runs:20_000 with
        | Some (n, sw) -> (string_of_int n, string_of_int sw)
        | None -> (">20000", "-")
      in
      pr "%-18s | %12d %14d | %12s %16s@." bug.id r.lifs.stats.schedules
        lifs_switches random_runs random_switches)
    [ Bugs.Fig1_nullderef.bug; Bugs.Cve_2017_15649.bug;
      Bugs.Syz_02_packet_assert.bug; Bugs.Syz_08_can_j1939.bug ];
  pr
    "(random scheduling may hit a crash quickly, but its reproduction is \
     not a controlled minimal interleaving)@."

let ablation_dpor () =
  section "Ablation: DPOR-style equivalence pruning on/off";
  pr "%-18s %14s %14s %8s@." "bug" "pruned #sched" "unpruned" "skipped";
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let case = bug.case () in
      let crash = Trace.History.crash case.history in
      let slice = List.hd (Trace.Slicer.slices case.history) in
      match Aitia.Diagnose.realize case slice with
      | None -> ()
      | Some (group, prologue) ->
        let search ~prune =
          let vm = Hypervisor.Vm.create group in
          Aitia.Lifs.search
            ?max_interleavings:bug.max_interleavings ~prologue ~prune vm
            ~target:(Trace.Crash.matches crash) ()
        in
        let with_ = search ~prune:true in
        let without = search ~prune:false in
        pr "%-18s %14d %14d %8d@." bug.id with_.stats.schedules
          without.stats.schedules with_.stats.pruned)
    [ Bugs.Cve_2017_15649.bug; Bugs.Cve_2017_7533.bug;
      Bugs.Syz_06_bpf_gpf.bug ]

let ablation_backward () =
  section "Ablation: backward vs forward flip testing in Causality Analysis";
  pr "%-18s %14s %14s %10s %10s@." "bug" "vac(backward)" "vac(forward)"
    "roots(bwd)" "roots(fwd)";
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let r = report_of bug in
      match r.lifs.found with
      | None -> ()
      | Some success -> (
        let case = bug.case () in
        let slice = List.hd (Trace.Slicer.slices case.history) in
        match Aitia.Diagnose.realize case slice with
        | None -> ()
        | Some (group, prologue) ->
          let run direction =
            let vm = Hypervisor.Vm.create group in
            let ca =
              Aitia.Causality.analyze ~prologue ~direction vm
                ~failing:success.outcome ~races:success.races ()
            in
            let vacuous =
              List.length
                (List.filter
                   (fun (t : Aitia.Causality.tested) -> not t.enforced)
                   ca.tested)
            in
            (vacuous, List.length ca.root_causes)
          in
          let vb, rb = run `Backward in
          let vf, rf = run `Forward in
          pr "%-18s %14d %14d %10d %10d@." bug.id vb vf rb rf))
    [ Bugs.Cve_2017_15649.bug; Bugs.Syz_02_packet_assert.bug;
      Bugs.Syz_03_l2tp_uaf.bug ]

let ablation_slicing () =
  section "Ablation: slicing backward from the failure vs forward";
  pr "%-18s %16s %16s@." "bug" "slices(nearest)" "slices(farthest)";
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let near =
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
          ~slice_order:`Nearest_first (bug.case ())
      in
      let far =
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
          ~slice_order:`Farthest_first (bug.case ())
      in
      pr "%-18s %16d %16d@." bug.id near.slices_tried far.slices_tried)
    [ Bugs.Fig1_nullderef.bug; Bugs.Cve_2017_15649.bug;
      Bugs.Syz_03_l2tp_uaf.bug ];
  pr
    "(the root cause is close to the failure — the common wisdom the \
     backward order exploits, Sec. 4.2)@."

let ablations () =
  ablation_order ();
  ablation_dpor ();
  ablation_backward ();
  ablation_slicing ()

(* --- DataCollider comparison (Sec. 2.3) -------------------------------------------- *)

let detector () =
  section
    "DataCollider-style detection vs AITIA chains (Sec. 2.3's benign burden)";
  pr "%-18s %8s %8s %8s %14s@." "bug" "traps" "races" "chain" "benign frac";
  let fracs = ref [] in
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let case = bug.case () in
      let slice = List.hd (Trace.Slicer.slices case.history) in
      match Aitia.Diagnose.realize case slice with
      | None -> ()
      | Some (group, prologue) -> (
        let det = Baselines.Data_collider.detect ~prologue group in
        let r = report_of bug in
        match r.chain with
        | None -> ()
        | Some chain ->
          let frac = Baselines.Data_collider.benign_fraction det chain in
          fracs := frac :: !fracs;
          pr "%-18s %8d %8d %8d %13.0f%%@." bug.id det.traps_placed
            (List.length det.races) (Aitia.Chain.length chain)
            (100.0 *. frac)))
    (Bugs.Registry.cves @ Bugs.Registry.syzkaller);
  let avg =
    List.fold_left ( +. ) 0.0 !fracs
    /. float_of_int (max 1 (List.length !fracs))
  in
  pr
    "average benign fraction: %.0f%%  (paper quotes DataCollider at 104/113      = 92%%; Causality Analysis removes this triage burden)@."
    (100.0 *. avg)

(* --- the Sec. 2 study over the real-world corpus ------------------------------------ *)

let study () =
  section "Section 2 study: what the 22 real-world bugs look like";
  let real = Bugs.Registry.cves @ Bugs.Registry.syzkaller in
  let diagnosed =
    List.filter_map
      (fun (bug : Bugs.Bug.t) ->
        let r = report_of bug in
        match r.causality, r.chain with
        | Some ca, Some chain -> Some (bug, ca, chain)
        | _ -> None)
      real
  in
  let race_steered =
    List.filter (fun (_, (ca : Aitia.Causality.result), _) -> ca.edges <> [])
      diagnosed
  in
  let multi =
    List.filter
      (fun ((b : Bugs.Bug.t), _, _) -> b.variables <> Bugs.Bug.Single)
      diagnosed
  in
  let loose =
    List.filter
      (fun ((b : Bugs.Bug.t), _, _) -> b.variables = Bugs.Bug.Multi_loose)
      diagnosed
  in
  let kthread =
    List.filter
      (fun ((b : Bugs.Bug.t), _, _) -> b.expectation.exp_kthread)
      diagnosed
  in
  pr "diagnosed bugs:                         %d / %d@."
    (List.length diagnosed) (List.length real);
  pr "with race-steered control flows:        %d   (paper: 16 of 22)@."
    (List.length race_steered);
  pr "multi-variable:                         %d   (paper: 6 of the 12       Syzkaller bugs + 6 of 10 CVEs)@."
    (List.length multi);
  pr "with loosely correlated objects:        %d   (paper: 3 of the 12)@."
    (List.length loose);
  pr "involving kernel background threads:    %d   (paper: 4 of the 12)@."
    (List.length kthread);
  let with_benign =
    List.filter
      (fun (_, (ca : Aitia.Causality.result), _) -> ca.benign <> [])
      diagnosed
  in
  pr "with benign races filtered by flips:    %d@."
    (List.length with_benign)

(* --- the Sec. 2.1 fix study --------------------------------------------------------- *)

let wrongfix () =
  section
    "Sec. 2.1 fix study: partial order-enforcement vs the chain's conjunction";
  let diag case =
    Aitia.Diagnose.diagnose ~max_steps:20_000 case
  in
  (* 1. The unfixed kernel (full Figure 2, including bind's re-link). *)
  let unfixed = diag (Bugs.Cve_2017_15649_fixes.unfixed_case ()) in
  (match unfixed.chain with
  | Some chain -> pr "unfixed:    %a@." Aitia.Chain.pp chain
  | None -> pr "unfixed:    not reproduced@.");
  (* 2. The wrong fix: enforce only B17 => A12 (what a single-pattern
     tool suggests).  The BUG_ON is gone; a double list_add remains. *)
  let wrong = diag (Bugs.Cve_2017_15649_fixes.wrong_fix_case ()) in
  (match wrong.lifs.found, wrong.chain with
  | Some s, Some chain ->
    pr "wrong fix:  still fails with %a@."
      Fmt.string (Ksim.Failure.symptom s.failure);
    pr "            %a@." Aitia.Chain.pp chain
  | _ -> pr "wrong fix:  no failure found (unexpected)@.");
  (* 3. The developers' fix: the (po->running, po->fanout) pair accessed
     atomically — cutting the chain's head conjunction. *)
  let fixed = diag (Bugs.Cve_2017_15649_fixes.correct_fix_case ()) in
  (match fixed.lifs.found with
  | None ->
    pr "right fix:  no schedule reproduces any failure (%d searched)@."
      fixed.lifs.stats.schedules
  | Some s ->
    pr "right fix:  UNEXPECTED failure %a@." Ksim.Failure.pp s.failure);
  pr
    "(paper: 'enforcing the order B17 => A12 is not a correct fix... both      threads still can execute fanout_link() concurrently')@."

(* --- static analysis scenario ------------------------------------------------ *)

(* Static lockset/MHP hints: per bug, the static conflict-space stats
   and how seeding LIFS with them changes the search (schedules explored
   with and without hints, both of which must reproduce).  The JSON
   trailer makes the numbers machine-trackable across revisions. *)
let analysis () =
  section "Static analysis: lockset/MHP hints feeding LIFS";
  pr "%-18s %6s %8s %7s | %9s %9s %7s %7s@." "bug" "pairs" "guarded"
    "ratio" "plain#s" "hinted#s" "static" "speedup";
  let rows = ref [] in
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let case = bug.case () in
      let stats =
        Analysis.Summary.stats (Analysis.Candidates.analyze case.group)
      in
      let plain =
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings case
      in
      let hinted =
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
          ~static_hints:true case
      in
      let ps = plain.lifs.stats.schedules
      and hs = hinted.lifs.stats.schedules in
      let speedup =
        if hs = 0 then 1.0 else float_of_int ps /. float_of_int hs
      in
      pr "%-18s %6d %8d %7.2f | %9d %9d %7d %6.2fx@." bug.id stats.n_pairs
        stats.n_guarded stats.pruning_ratio ps hs
        hinted.lifs.stats.static_pruned speedup;
      let open Analysis.Report_json in
      rows :=
        obj
          [ ("bug", str bug.id);
            ("pairs", int stats.n_pairs);
            ("guarded", int stats.n_guarded);
            ("unguarded", int stats.n_unguarded);
            ("ambiguous", int stats.n_ambiguous);
            ("pruning_ratio", float stats.pruning_ratio);
            ("plain_schedules", int ps);
            ("hinted_schedules", int hs);
            ("static_pruned", int hinted.lifs.stats.static_pruned);
            ("speedup", float speedup);
            ("plain_reproduced", bool (Aitia.Diagnose.reproduced plain));
            ("hinted_reproduced", bool (Aitia.Diagnose.reproduced hinted)) ]
        :: !rows)
    (Bugs.Registry.cves @ Bugs.Registry.syzkaller);
  emit_json ~target:"analysis" (Analysis.Report_json.arr (List.rev !rows))

(* --- engine throughput (compiled vs reference) ------------------------------ *)

(* Executor-style replay: the controller's runnable+step drive loop on
   a fresh guest per round, timed exclusive of boot so the metric is
   step throughput rather than machine construction.  The deterministic
   first-runnable schedule makes both engines execute the identical
   instruction sequence; every started run completes before the clock
   is read, so counted steps always cover whole schedules. *)
let step_throughput engine group ~seconds =
  Gc.full_major ();
  let steps = ref 0 and elapsed = ref 0.0 in
  (* executor-style driving: consult [runnable] before every step, as
     the diagnosis scheduler does, so both the scheduling query and the
     step itself are inside the timed region *)
  while !elapsed < seconds do
    let m = ref (Ksim.Engine.boot engine group) in
    let t0 = Unix.gettimeofday () in
    let continue = ref true in
    while !continue do
      match Ksim.Machine.runnable !m with
      | [] -> continue := false
      | tid :: _ -> (
        match Ksim.Engine.step !m tid with
        | Ok (m', _) ->
          incr steps;
          m := m'
        | Error _ -> continue := false)
    done;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0)
  done;
  (!steps, !elapsed)

(* --- Causality Analysis pruning scenario ----------------------------------- *)

(* Flip-feasibility pruning and snapshot-cache re-execution: per bug,
   plain Causality Analysis vs the statically pruned one vs the
   snapshot-cached pipeline vs the error-invariant engine with gain
   scheduling — flips executed, flips pruned, schedules, simulated
   cost, instructions actually executed and the
   schedules-per-simulated-second throughput, with the chain-parity
   checks that make every optimisation trustworthy.  Rows land in
   BENCH_causality.json under --json; the invariant columns feed the
   CI pruning-parity gate (bench/pruning_gate.ml). *)
let causality () =
  section
    "Causality Analysis: flip-feasibility pruning, snapshot cache and \
     error invariants (plain vs hinted vs cached vs invariants+gain)";
  pr "%-18s %6s | %7s %7s %7s | %8s %8s %8s | %9s %9s | %6s %6s | %s@." "bug"
    "flips" "plain#s" "hint#s" "pruned" "plain(s)" "hint(s)" "snap(s)"
    "plain#i" "snap#i" "hint#t" "inv#t" "chain";
  let rows = ref [] in
  let par_seq_total = ref 0.0 in
  let par_par_total = ref 0.0 in
  let par_all_identical = ref true in
  (* engine columns: per-bug step throughput of each engine plus the
     reference-vs-compiled chain parity; aggregated into the corpus
     engine_speedup ratio the perf gate floors at 5x.  Long diagnosis
     workloads dominate the aggregate, so boot-heavy figure examples
     carry little weight. *)
  let eng_ref_steps = ref 0 and eng_ref_time = ref 0.0 in
  let eng_cmp_steps = ref 0 and eng_cmp_time = ref 0.0 in
  let eng_chains_identical = ref true in
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let t0 = Unix.gettimeofday () in
      let plain = report_of bug in
      let hinted =
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
          ~static_hints:true (bug.case ())
      in
      let snap =
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
          ~snapshot_cache:true (bug.case ())
      in
      let inv =
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
          ~prune:`Invariants ~order:`Gain (bug.case ())
      in
      let host_elapsed = Unix.gettimeofday () -. t0 in
      (* Parallel pass (--jobs N): one fresh sequential diagnosis and
         one fanned out over N pool workers, timed back to back on the
         same case — the chains must match and the wall-clock ratio is
         the per-bug speedup.  Wall times measure the host, so these
         columns are ignored by the perf gate (the parallel-parity gate
         owns them). *)
      let par =
        if !jobs_opt <= 1 then None
        else begin
          let t0 = Unix.gettimeofday () in
          let seq_r =
            Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
              (bug.case ())
          in
          let t1 = Unix.gettimeofday () in
          let par_r =
            Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
              ~jobs:!jobs_opt (bug.case ())
          in
          let t2 = Unix.gettimeofday () in
          Some (t1 -. t0, t2 -. t1, par_r,
                String.equal (chain_str seq_r) (chain_str par_r))
        end
      in
      match plain.causality, hinted.causality, snap.causality, inv.causality
      with
      | Some pca, Some hca, Some sca, Some ica ->
        let flips = List.length pca.tested in
        let executed =
          List.length
            (List.filter
               (fun (t : Aitia.Causality.tested) -> t.pruned = None)
               hca.tested)
        in
        let pruned = hca.stats.flips_statically_pruned in
        let same_chain = String.equal (chain_str plain) (chain_str hinted) in
        let snap_chain = String.equal (chain_str plain) (chain_str snap) in
        let inv_chain = String.equal (chain_str plain) (chain_str inv) in
        (* executed-schedule totals (LIFS + CA) per pruning level; the
           pruning-parity gate requires inv <= hinted on every bug *)
        let hinted_total =
          hinted.lifs.stats.schedules + hca.stats.schedules
        in
        let inv_total = inv.lifs.stats.schedules + ica.stats.schedules in
        let invariant_pruned =
          inv.lifs.stats.invariant_pruned + ica.stats.flips_invariant_pruned
        in
        (* pipeline totals: LIFS reproduction + Causality Analysis *)
        let plain_instrs =
          plain.lifs.stats.executed_instrs + pca.stats.executed_instrs
        in
        let snap_instrs =
          snap.lifs.stats.executed_instrs + sca.stats.executed_instrs
        in
        let per_simsec schedules simulated =
          if simulated > 0. then float_of_int schedules /. simulated else 0.
        in
        let plain_rate = per_simsec pca.stats.schedules pca.stats.simulated in
        let snap_rate = per_simsec sca.stats.schedules sca.stats.simulated in
        pr "%-18s %6d | %7d %7d %7d | %8.1f %8.1f %8.1f | %9d %9d | %6d %6d | %s@."
          bug.id flips pca.stats.schedules hca.stats.schedules pruned
          pca.stats.simulated hca.stats.simulated sca.stats.simulated
          plain_instrs snap_instrs hinted_total inv_total
          (if same_chain && snap_chain && inv_chain then "identical"
           else "DIFFERS");
        Option.iter
          (fun (seq_wall, par_wall, _, par_identical) ->
            par_seq_total := !par_seq_total +. seq_wall;
            par_par_total := !par_par_total +. par_wall;
            if not par_identical then par_all_identical := false;
            pr
              "  parallel (--jobs %d): seq %.3fs  par %.3fs  speedup \
               %.2fx  chain %s@."
              !jobs_opt seq_wall par_wall
              (if par_wall > 0. then seq_wall /. par_wall else 0.)
              (if par_identical then "identical" else "DIFFERS"))
          par;
        let eng_group = (bug.case ()).Aitia.Diagnose.group in
        (* three interleaved leg pairs, keeping each engine's best-rate
           leg: transient host contention slows individual legs, and
           the ratio of best legs is robust to it *)
        let leg_rate (s, t) = if t > 0. then float_of_int s /. t else 0. in
        let best_ref = ref (0, 0.0) and best_cmp = ref (0, 0.0) in
        for _ = 1 to 3 do
          let r = step_throughput Ksim.Engine.Reference eng_group ~seconds:0.05 in
          if leg_rate r > leg_rate !best_ref then best_ref := r;
          let c = step_throughput Ksim.Engine.Compiled eng_group ~seconds:0.05 in
          if leg_rate c > leg_rate !best_cmp then best_cmp := c
        done;
        let rs, rt = !best_ref in
        let cs, ct = !best_cmp in
        let ref_ips = float_of_int rs /. rt in
        let cmp_ips = float_of_int cs /. ct in
        let eng_speedup = if ref_ips > 0. then cmp_ips /. ref_ips else 0. in
        (* [plain] ran on the session-default (compiled) engine; a
           reference-engine diagnosis must produce the identical chain *)
        let ref_report =
          Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
            ~engine:Ksim.Engine.Reference (bug.case ())
        in
        let eng_chain = String.equal (chain_str plain) (chain_str ref_report) in
        eng_ref_steps := !eng_ref_steps + rs;
        eng_ref_time := !eng_ref_time +. rt;
        eng_cmp_steps := !eng_cmp_steps + cs;
        eng_cmp_time := !eng_cmp_time +. ct;
        if not eng_chain then eng_chains_identical := false;
        pr
          "  engine: reference %9.0f i/s  compiled %9.0f i/s  speedup \
           %5.2fx  chain %s@."
          ref_ips cmp_ips eng_speedup
          (if eng_chain then "identical" else "DIFFERS");
        let open Analysis.Report_json in
        rows :=
          obj
            ([ ("bug", str bug.id);
              ("flips", int flips);
              ("flips_executed", int executed);
              ("flips_pruned", int pruned);
              ("plain_ca_schedules", int pca.stats.schedules);
              ("hinted_ca_schedules", int hca.stats.schedules);
              ("plain_ca_simulated", float pca.stats.simulated);
              ("hinted_ca_simulated", float hca.stats.simulated);
              ("plain_lifs_schedules", int plain.lifs.stats.schedules);
              ("hinted_lifs_schedules", int hinted.lifs.stats.schedules);
              ("hinted_lifs_static_pruned",
               int hinted.lifs.stats.static_pruned);
              ("plain_lifs_simulated", float plain.lifs.stats.simulated);
              ("hinted_lifs_simulated", float hinted.lifs.stats.simulated);
              ("snap_ca_schedules", int sca.stats.schedules);
              ("snap_ca_simulated", float sca.stats.simulated);
              ("plain_instrs", int plain_instrs);
              ("snap_instrs", int snap_instrs);
              ("plain_sched_per_simsec", float plain_rate);
              ("snap_sched_per_simsec", float snap_rate);
              ("host_elapsed_s", float host_elapsed);
              ("chain_identical", bool same_chain);
              ("snap_chain_identical", bool snap_chain);
              ("snap_reduces_sim",
               bool (sca.stats.simulated < pca.stats.simulated));
              ("snap_reduces_instrs", bool (snap_instrs < plain_instrs));
              ("executed_schedules", int hinted_total);
              ("inv_lifs_schedules", int inv.lifs.stats.schedules);
              ("inv_ca_schedules", int ica.stats.schedules);
              ("inv_executed_schedules", int inv_total);
              ("invariant_pruned", int invariant_pruned);
              ("gain_reorderings",
               int
                 (inv.lifs.stats.gain_reorderings
                 + ica.stats.gain_reorderings));
              ("inv_chain_identical", bool inv_chain);
              ("inv_fewer", bool (inv_total < hinted_total));
              ("engine_ref_ips", float ref_ips);
              ("engine_compiled_ips", float cmp_ips);
              ("engine_speedup", float eng_speedup);
              ("engine_chain_identical", bool eng_chain) ]
             @ (match par with
              | None -> []
              | Some (seq_wall, par_wall, par_r, par_identical) ->
                let par_rate =
                  match par_r.Aitia.Diagnose.causality with
                  | Some pca ->
                    per_simsec pca.stats.schedules pca.stats.simulated
                  | None -> 0.
                in
                [ ("jobs", int !jobs_opt);
                  ("seq_wall_s", float seq_wall);
                  ("par_wall_s", float par_wall);
                  ("speedup",
                   float
                     (if par_wall > 0. then seq_wall /. par_wall else 0.));
                  ("par_sched_per_simsec", float par_rate);
                  ("par_chain_identical", bool par_identical) ]))
          :: !rows
      | _ -> pr "%-18s not diagnosed@." bug.id)
    (Bugs.Registry.cves @ Bugs.Registry.syzkaller);
  if !jobs_opt > 1 then begin
    let speedup =
      if !par_par_total > 0. then !par_seq_total /. !par_par_total else 0.
    in
    pr
      "corpus parallel summary (--jobs %d): seq %.3fs  par %.3fs  \
       speedup %.2fx  chains %s@."
      !jobs_opt !par_seq_total !par_par_total speedup
      (if !par_all_identical then "all identical" else "SOME DIFFER");
    let open Analysis.Report_json in
    rows :=
      obj
        [ ("bug", str "_corpus");
          ("jobs", int !jobs_opt);
          ("seq_wall_s", float !par_seq_total);
          ("par_wall_s", float !par_par_total);
          ("speedup", float speedup);
          ("par_chain_identical", bool !par_all_identical) ]
      :: !rows
  end;
  let corpus_ref_ips =
    if !eng_ref_time > 0. then float_of_int !eng_ref_steps /. !eng_ref_time
    else 0.
  in
  let corpus_cmp_ips =
    if !eng_cmp_time > 0. then float_of_int !eng_cmp_steps /. !eng_cmp_time
    else 0.
  in
  let corpus_speedup =
    if corpus_ref_ips > 0. then corpus_cmp_ips /. corpus_ref_ips else 0.
  in
  pr
    "corpus engine summary: reference %9.0f i/s  compiled %9.0f i/s  \
     speedup %.2fx  chains %s@."
    corpus_ref_ips corpus_cmp_ips corpus_speedup
    (if !eng_chains_identical then "all identical" else "SOME DIFFER");
  let open Analysis.Report_json in
  rows :=
    obj
      [ ("bug", str "_engine");
        ("engine_ref_ips", float corpus_ref_ips);
        ("engine_compiled_ips", float corpus_cmp_ips);
        ("corpus_engine_speedup", float corpus_speedup);
        ("engine_speedup_ge_5", bool (corpus_speedup >= 5.0));
        ("engine_chains_identical", bool !eng_chains_identical) ]
    :: !rows;
  emit_json ~target:"causality" (arr (List.rev !rows))

(* --- resilience scenario ------------------------------------------------------ *)

(* Fault injection vs the fault-free pipeline: per bug, a diagnosis
   under a 5% mixed fault rate (the retry/quorum machinery armed with
   the default policy) against the memoized clean one — faults actually
   injected, retries spent, quorum confirmation runs, exhausted
   budgets, and whether the causality chain converged to the clean
   chain anyway.  Rows land under --json for tracking; this target is
   deliberately NOT part of the perf gate (fault schedules change as
   decision points move), the chain-parity column is the invariant. *)
let resilience () =
  section "Resilience: 5% mixed fault rate with retry/quorum vs fault-free";
  let spec =
    match Hypervisor.Faults.spec_of_string "rate=0.05" with
    | Ok s -> s
    | Error e -> Fmt.failwith "bad fault spec: %s" e
  in
  pr "%-18s %8s %7s %7s %7s %8s | %s@." "bug" "injected" "retries" "quorum"
    "gave_up" "degraded" "chain";
  let rows = ref [] in
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      let clean = report_of bug in
      let faults = Hypervisor.Faults.create ~seed:1009 spec in
      let faulted =
        Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
          ~faults (bug.case ())
      in
      let retries, quorum_runs, gave_up =
        match faulted.resilience with
        | Some (res : Aitia.Resilience.t) ->
          (res.stats.retries, res.stats.quorum_runs, res.stats.gave_up)
        | None -> (0, 0, 0)
      in
      let converged = String.equal (chain_str clean) (chain_str faulted) in
      pr "%-18s %8d %7d %7d %7d %8b | %s@." bug.id faulted.faults_injected
        retries quorum_runs gave_up faulted.degraded
        (if converged then "identical" else "DIFFERS");
      let open Analysis.Report_json in
      rows :=
        obj
          [ ("bug", str bug.id);
            ("faults_injected", int faulted.faults_injected);
            ("retries", int retries);
            ("quorum_runs", int quorum_runs);
            ("gave_up", int gave_up);
            ("degraded", bool faulted.degraded);
            ("reproduced", bool (Aitia.Diagnose.reproduced faulted));
            ("chain_identical", bool converged) ]
        :: !rows)
    (Bugs.Registry.cves @ Bugs.Registry.syzkaller);
  emit_json ~target:"resilience" (Analysis.Report_json.arr (List.rev !rows))

(* --- micro-benchmarks (bechamel) ------------------------------------------------- *)

let micro () =
  section "Micro-benchmarks (host wall clock, bechamel OLS ns/run)";
  let open Bechamel in
  let fig1_bug = Bugs.Fig1_nullderef.bug in
  let t_step =
    Test.make ~name:"machine: run fig1 serially"
      (Staged.stage (fun () ->
           let case = fig1_bug.case () in
           let m = Ksim.Machine.create case.group in
           Hypervisor.Controller.run m
             (Hypervisor.Schedule.preemption_policy
                (Hypervisor.Schedule.serial [ 0; 1; 2 ]))))
  in
  let t_lifs =
    Test.make ~name:"lifs: reproduce fig1"
      (Staged.stage (fun () ->
           let case = fig1_bug.case () in
           let crash = Trace.History.crash case.history in
           let slice = List.hd (Trace.Slicer.slices case.history) in
           match Aitia.Diagnose.realize case slice with
           | None -> ()
           | Some (group, prologue) ->
             let vm = Hypervisor.Vm.create group in
             ignore
               (Aitia.Lifs.search ~prologue vm
                  ~target:(Trace.Crash.matches crash) ())))
  in
  let t_ca =
    (* Causality Analysis alone, on a precomputed failing run. *)
    let case = fig1_bug.case () in
    let crash = Trace.History.crash case.history in
    let slice = List.hd (Trace.Slicer.slices case.history) in
    let group, prologue =
      match Aitia.Diagnose.realize case slice with
      | Some x -> x
      | None -> assert false
    in
    let vm = Hypervisor.Vm.create group in
    let lifs =
      Aitia.Lifs.search ~prologue vm ~target:(Trace.Crash.matches crash) ()
    in
    let success = Option.get lifs.found in
    Test.make ~name:"causality: flip-test fig1"
      (Staged.stage (fun () ->
           let ca_vm = Hypervisor.Vm.create group in
           ignore
             (Aitia.Causality.analyze ~prologue ca_vm
                ~failing:success.outcome ~races:success.races ())))
  in
  let t_diag =
    Test.make ~name:"diagnose: full pipeline, CVE-2017-15649"
      (Staged.stage (fun () ->
           ignore (Aitia.Diagnose.diagnose (Bugs.Cve_2017_15649.bug.case ()))))
  in
  let tests =
    Test.make_grouped ~name:"aitia" [ t_step; t_lifs; t_ca; t_diag ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> pr "%-45s %12.0f ns/run@." name est
      | _ -> pr "%-45s (no estimate)@." name)
    results

(* --- main --------------------------------------------------------------------- *)

let all_targets =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("table_5_3", table_5_3); ("fig1", fig1); ("fig3", fig3); ("fig4", fig4); ("fig5", fig5);
    ("fig6", fig6); ("fig7", fig7); ("fig9", fig9);
    ("conciseness", conciseness); ("detector", detector); ("study", study);
    ("wrongfix", wrongfix); ("ablations", ablations);
    ("analysis", analysis); ("causality", causality);
    ("resilience", resilience); ("micro", micro) ]

let trace_file : string option ref = ref None
let metrics_file : string option ref = ref None

let () =
  (* Throughput-bench GC hygiene: the compiled engine is allocation-
     throughput-bound, so the default 256k-word minor heap spends a
     measurable fraction of each leg in minor collections.  A 2M-word
     nursery applies equally to both engines. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 2 * 1024 * 1024 };
  let raw = List.tl (Array.to_list Sys.argv) in
  let rec split targets = function
    | [] -> List.rev targets
    | "--json" :: file :: rest ->
      json_file := Some file;
      split targets rest
    | "--trace-out" :: file :: rest ->
      trace_file := Some file;
      split targets rest
    | "--metrics-out" :: file :: rest ->
      metrics_file := Some file;
      split targets rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> jobs_opt := j
      | _ ->
        Fmt.epr "--jobs needs a positive integer (got %S)@." n;
        exit 1);
      split targets rest
    | [ ("--json" | "--trace-out" | "--metrics-out" | "--jobs") as flag ] ->
      Fmt.epr "%s needs an argument@." flag;
      exit 1
    | a :: rest -> split (a :: targets) rest
  in
  let args = split [] raw in
  let recorder =
    match (!trace_file, !metrics_file) with
    | None, None -> None
    | _ ->
      let r = Telemetry.Recorder.create () in
      Telemetry.Probe.install (Telemetry.Recorder.sink r);
      Some r
  in
  let selected =
    match args with
    | [] -> all_targets
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_targets with
          | Some f -> (n, f)
          | None ->
            Fmt.epr "unknown target %s (have: %a)@." n
              (Fmt.list ~sep:Fmt.comma Fmt.string)
              (List.map fst all_targets);
            exit 1)
        names
  in
  List.iter (fun (_, f) -> f ()) selected;
  flush_json ();
  match recorder with
  | None -> ()
  | Some r ->
    Option.iter
      (fun f ->
        Telemetry.Chrome_trace.write ~file:f r;
        pr "chrome trace written to %s@." f)
      !trace_file;
    Option.iter
      (fun f ->
        Telemetry.Metrics.write ~file:f r;
        pr "metrics written to %s@." f)
      !metrics_file
