(* CI pruning-parity gate: the error-invariant engine must never make a
   diagnosis slower than the flip-feasibility baseline it subsumes.

     pruning_gate BENCH [-o ARTIFACT]

   BENCH is a bench metrics document (bare row array or the merged
   object bench/main.exe --json writes, keyed "causality").  For every
   bug row the gate requires

     - inv_executed_schedules <= executed_schedules (the --static-hints
       baseline), and
     - inv_chain_identical (the chain under --prune=invariants
       --order=gain is bit-identical to the plain diagnosis).

   The per-bug comparison is written to ARTIFACT (default
   pruning_parity.json) for CI upload; any violation exits 1. *)

module J = Telemetry.Json

let usage () =
  Fmt.epr "usage: pruning_gate BENCH [-o ARTIFACT]@.";
  exit 2

let read_doc file =
  let ic =
    try open_in file
    with Sys_error e ->
      Fmt.epr "pruning_gate: %s@." e;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match J.of_string s with
  | Ok doc -> doc
  | Error e ->
    Fmt.epr "pruning_gate: %s: %s@." file e;
    exit 2

let rows_of doc =
  let rows =
    match doc with
    | J.Arr _ -> J.to_list doc
    | J.Obj _ -> Option.bind (J.member "causality" doc) J.to_list
    | _ -> None
  in
  match rows with
  | Some rows -> rows
  | None ->
    Fmt.epr "pruning_gate: no causality rows in the document@.";
    exit 2

let num_field row name =
  match Option.bind (J.member name row) J.to_num with
  | Some f -> int_of_float f
  | None ->
    Fmt.epr "pruning_gate: row %s lacks %S@."
      (match Option.bind (J.member "bug" row) J.to_str with
      | Some b -> b
      | None -> "?")
      name;
    exit 2

let bool_field row name =
  match Option.bind (J.member name row) J.to_bool with
  | Some b -> b
  | None ->
    Fmt.epr "pruning_gate: row lacks %S@." name;
    exit 2

let () =
  let files = ref [] in
  let artifact = ref "pruning_parity.json" in
  let rec parse = function
    | [] -> ()
    | "-o" :: v :: rest ->
      artifact := v;
      parse rest
    | [ "-o" ] -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest ->
      files := a :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let bench_file =
    match List.rev !files with [ f ] -> f | _ -> usage ()
  in
  let rows = rows_of (read_doc bench_file) in
  let violations = ref [] in
  let out_rows =
    List.map
      (fun row ->
        let bug =
          match Option.bind (J.member "bug" row) J.to_str with
          | Some b -> b
          | None ->
            Fmt.epr "pruning_gate: row without a bug id@.";
            exit 2
        in
        let flipfeas = num_field row "executed_schedules" in
        let inv = num_field row "inv_executed_schedules" in
        let pruned = num_field row "invariant_pruned" in
        let chain_ok = bool_field row "inv_chain_identical" in
        let ok = inv <= flipfeas && chain_ok in
        if inv > flipfeas then
          violations :=
            Fmt.str "%s: %d schedule(s) with --prune=invariants vs %d with \
                     --prune=flipfeas"
              bug inv flipfeas
            :: !violations;
        if not chain_ok then
          violations :=
            Fmt.str "%s: chain differs under --prune=invariants" bug
            :: !violations;
        let open Analysis.Report_json in
        obj
          [ ("bug", str bug);
            ("flipfeas_schedules", int flipfeas);
            ("invariants_schedules", int inv);
            ("invariant_pruned", int pruned);
            ("chain_identical", bool chain_ok);
            ("ok", bool ok) ])
      rows
  in
  let oc = open_out !artifact in
  output_string oc (Analysis.Report_json.arr out_rows);
  output_string oc "\n";
  close_out oc;
  match List.rev !violations with
  | [] ->
    Fmt.pr "pruning parity OK: %d bug(s), artifact %s@." (List.length rows)
      !artifact;
    exit 0
  | vs ->
    Fmt.epr "pruning parity FAILED (%d bug(s) checked):@." (List.length rows);
    List.iter (fun v -> Fmt.epr "  %s@." v) vs;
    exit 1
