(* CI parallel-parity gate: diagnose the 22-bug corpus sequentially and
   under the worker pool, and fail unless every causality chain — and
   every per-flip verdict behind it — is bit-identical.

     parallel_gate [--jobs N] [--min-speedup F] [-o FILE] [BUG...]

   Three passes over the corpus:

     seq     one diagnosis per bug, --jobs 1        (the baseline)
     intra   one diagnosis per bug, --jobs N        (pool inside LIFS/CA)
     pooled  all bugs fanned out over an N-worker
             pool, --jobs 1 inside each             (batch-style)

   Parity compares intra and pooled against seq: chain rendering,
   reproduction flag, and the full (race key, verdict, pruned) flip
   sequence must match per bug.  The speedup check compares the seq
   wall clock against the pooled pass — bugs are independent, so an
   N-core runner should approach Nx; --min-speedup 0 (the default)
   disables it for single-core machines where only parity is
   meaningful.  -o writes the parity/speedup report as JSON (CI uploads
   it as an artifact on failure).

   Exit: 0 parity (and speedup, if demanded) holds; 1 some chain or
   verdict differs, or the speedup floor is missed; 2 usage error. *)

module Json = Telemetry.Json

let usage () =
  Fmt.epr
    "usage: parallel_gate [--jobs N] [--min-speedup F] [-o FILE] [BUG...]@.";
  exit 2

(* What parity means for one bug: everything the diagnosis decides,
   rendered to comparable strings.  Host times and [stats.simulated]
   are deliberately absent — per-flip guests lose the consecutive-run
   reboot-avoidance credit, which is documented, not a divergence. *)
type fingerprint = {
  fp_reproduced : bool;
  fp_chain : string;
  fp_flips : string list;  (* "<race key> <verdict> <pruned?>" in order *)
}

let fingerprint_of (r : Aitia.Diagnose.report) : fingerprint =
  { fp_reproduced = Aitia.Diagnose.reproduced r;
    fp_chain =
      (match r.chain with Some c -> Aitia.Chain.to_string c | None -> "-");
    fp_flips =
      (match r.causality with
      | None -> []
      | Some ca ->
        List.map
          (fun (t : Aitia.Causality.tested) ->
            Fmt.str "%s %s%s" (Aitia.Race.key t.race)
              (match t.verdict with
              | Aitia.Causality.Root_cause -> "root"
              | Aitia.Causality.Benign -> "benign")
              (match t.pruned with Some p -> " pruned:" ^ p | None -> ""))
          ca.tested) }

let fp_equal a b =
  a.fp_reproduced = b.fp_reproduced
  && String.equal a.fp_chain b.fp_chain
  && List.length a.fp_flips = List.length b.fp_flips
  && List.for_all2 String.equal a.fp_flips b.fp_flips

let diagnose ~jobs (bug : Bugs.Bug.t) =
  Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings ~jobs
    (bug.case ())

let () =
  let jobs = ref 4 in
  let min_speedup = ref 0.0 in
  let out = ref None in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 2 -> jobs := n
      | _ ->
        Fmt.epr "parallel_gate: --jobs needs an integer >= 2 (got %S)@." v;
        exit 2);
      parse rest
    | "--min-speedup" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> min_speedup := f
      | _ ->
        Fmt.epr "parallel_gate: bad --min-speedup %S@." v;
        exit 2);
      parse rest
    | "-o" :: v :: rest ->
      out := Some v;
      parse rest
    | [ ("--jobs" | "--min-speedup" | "-o") ] -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest ->
      ids := a :: !ids;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let corpus =
    match List.rev !ids with
    | [] -> Bugs.Registry.cves @ Bugs.Registry.syzkaller
    | ids ->
      List.map
        (fun id ->
          match Bugs.Registry.find id with
          | Some b -> b
          | None ->
            Fmt.epr "parallel_gate: unknown bug id %s@." id;
            exit 2)
        ids
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Fmt.pr "parallel_gate: %d bugs, --jobs %d (pool backend: %s, %d cpus)@."
    (List.length corpus) !jobs Hypervisor.Pool.backend
    (Hypervisor.Pool.default_jobs ());
  let seq, seq_wall =
    time (fun () -> List.map (fun b -> fingerprint_of (diagnose ~jobs:1 b))
                      corpus)
  in
  let intra, intra_wall =
    time (fun () ->
        List.map (fun b -> fingerprint_of (diagnose ~jobs:!jobs b)) corpus)
  in
  let pooled, pooled_wall =
    time (fun () ->
        let pool = Hypervisor.Pool.create ~jobs:!jobs in
        Hypervisor.Pool.map_list pool
          (fun b -> fingerprint_of (diagnose ~jobs:1 b))
          corpus)
  in
  let rows =
    List.map2
      (fun ((bug : Bugs.Bug.t), s) (i, p) ->
        let intra_ok = fp_equal s i and pooled_ok = fp_equal s p in
        if not (intra_ok && pooled_ok) then
          Fmt.epr
            "parallel_gate: PARITY FAILURE on %s@.  seq:    %s@.  \
             intra:  %s@.  pooled: %s@."
            bug.id s.fp_chain i.fp_chain p.fp_chain;
        (bug, s, intra_ok, pooled_ok))
      (List.combine corpus seq)
      (List.combine intra pooled)
  in
  let parity_ok =
    List.for_all (fun (_, _, i, p) -> i && p) rows
  in
  let speedup =
    if pooled_wall > 0. then seq_wall /. pooled_wall else 0.
  in
  let intra_speedup =
    if intra_wall > 0. then seq_wall /. intra_wall else 0.
  in
  let speedup_ok = speedup >= !min_speedup in
  Fmt.pr
    "parallel_gate: seq %.3fs  intra %.3fs (%.2fx)  pooled %.3fs \
     (%.2fx)  parity %s  speedup floor %.2fx %s@."
    seq_wall intra_wall intra_speedup pooled_wall speedup
    (if parity_ok then "OK" else "FAILED")
    !min_speedup
    (if !min_speedup <= 0. then "(disabled)"
     else if speedup_ok then "OK"
     else "FAILED");
  let doc =
    Json.obj
      [ ("jobs", Json.int !jobs);
        ("backend", Json.str Hypervisor.Pool.backend);
        ("cpus", Json.int (Hypervisor.Pool.default_jobs ()));
        ("seq_wall_s", Json.float seq_wall);
        ("intra_wall_s", Json.float intra_wall);
        ("pooled_wall_s", Json.float pooled_wall);
        ("intra_speedup", Json.float intra_speedup);
        ("pooled_speedup", Json.float speedup);
        ("min_speedup", Json.float !min_speedup);
        ("parity_ok", Json.bool parity_ok);
        ("speedup_ok", Json.bool speedup_ok);
        ("bugs",
         Json.arr
           (List.map
              (fun ((bug : Bugs.Bug.t), (s : fingerprint), i, p) ->
                Json.obj
                  [ ("bug", Json.str bug.id);
                    ("reproduced", Json.bool s.fp_reproduced);
                    ("chain", Json.str s.fp_chain);
                    ("flips", Json.int (List.length s.fp_flips));
                    ("intra_identical", Json.bool i);
                    ("pooled_identical", Json.bool p) ])
              rows)) ]
  in
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (doc ^ "\n");
      close_out oc;
      Fmt.pr "parallel_gate: report written to %s@." file)
    !out;
  exit (if parity_ok && speedup_ok then 0 else 1)
