(* The aitia command-line interface.

   aitia list                 — the modeled bug corpus
   aitia diagnose <id> …      — run the full pipeline, print the report
   aitia analyze <id> …       — static lockset/MHP analysis, JSON report
   aitia lint <id> …          — static lock-order lint (cycles, inversions)
   aitia stats <id> …         — diagnose under telemetry, print the metrics
   aitia chain <id> …         — print only the causality chain
   aitia batch <manifest>     — run a manifest of requests concurrently
   aitia fuzz <id> [--seed n] — fuzz the workload, then diagnose the crash
   aitia compare <id> …       — run the prior-work baselines on a bug

   Every subcommand accepts --trace-out FILE (Chrome trace-event JSON
   of the whole invocation, for chrome://tracing) and --metrics-out
   FILE (flat counters/histograms/span-rollup JSON).

   diagnose and stats additionally take the robustness options:
   --fault-spec/--fault-seed (deterministic fault injection),
   --max-retries/--step-timeout (resilient execution), and
   --journal/--resume (checkpointed, resumable diagnosis).

   Exit status: 0 every case diagnosed; 1 some case cleanly failed to
   reproduce; 2 usage or configuration error; 3 diagnosis degraded
   (retry budget exhausted or quorum disagreement — partial chain). *)

open Cmdliner

let setup_logs =
  let debug =
    Arg.(value & flag & info [ "debug" ] ~doc:"Enable debug logging \
                                              (same as --log-level=debug)")
  in
  let level =
    let doc =
      "Log verbosity: $(b,quiet), $(b,error), $(b,warning), $(b,info) or \
       $(b,debug)."
    in
    Arg.(value & opt (some string) None
         & info [ "log-level" ] ~docv:"LEVEL" ~doc)
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON of this invocation to \
                   $(docv) (load it in chrome://tracing or Perfetto)")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write flat metrics JSON (counters, histograms, span \
                   rollups) of this invocation to $(docv)")
  in
  let init debug level trace_out metrics_out =
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ());
    let lvl =
      match level with
      | None -> Some (if debug then Logs.Debug else Logs.Warning)
      | Some s -> (
        match Logs.level_of_string s with
        | Ok l -> l
        | Error (`Msg m) ->
          Fmt.epr "aitia: %s@." m;
          exit 2)
    in
    Logs.set_level lvl;
    (* Telemetry sinks: one recorder for the whole invocation, flushed
       to the requested files when the process exits. *)
    match (trace_out, metrics_out) with
    | None, None -> ()
    | _ ->
      let r = Telemetry.Recorder.create () in
      Telemetry.Probe.install (Telemetry.Recorder.sink r);
      at_exit (fun () ->
          Option.iter
            (fun file -> Telemetry.Chrome_trace.write ~file r)
            trace_out;
          Option.iter
            (fun file -> Telemetry.Metrics.write ~file r)
            metrics_out)
  in
  Term.(const init $ debug $ level $ trace_out $ metrics_out)

let bug_arg =
  let doc = "Bug id(s) from the corpus (see `aitia list'); 'all' selects \
             every bug." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"BUG" ~doc)

let resolve ids =
  let all = Bugs.Registry.all in
  if List.mem "all" ids then all
  else
    List.map
      (fun id ->
        match Bugs.Registry.find id with
        | Some b -> b
        | None ->
          Fmt.epr "unknown bug id %s; try `aitia list'@." id;
          exit 2)
      ids

(* --- numeric option validation ----------------------------------------- *)

(* Reject garbage and out-of-range values at parse time, so a typo like
   `--max-retries -1` or `--step-timeout many` is a usage error (exit
   code 2), not a silent misconfiguration. *)
let int_conv ~what ~ok ~expect =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when ok n -> Ok n
    | Some n -> Error (`Msg (Fmt.str "%s must be %s (got %d)" what expect n))
    | None ->
      Error (`Msg (Fmt.str "%s expects %s, got %S" what expect s))
  in
  Arg.conv (parse, Fmt.int)

let nonneg_int ~what =
  int_conv ~what ~ok:(fun n -> n >= 0) ~expect:"a non-negative integer"

let pos_int ~what =
  int_conv ~what ~ok:(fun n -> n > 0) ~expect:"a positive integer"

(* --- robustness options (fault injection, resilience, journal) --------- *)

let fault_spec_conv =
  let parse s =
    match Hypervisor.Faults.spec_of_string s with
    | Ok spec -> Ok spec
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Hypervisor.Faults.pp_spec)

type exec_opts = {
  fault_spec : Hypervisor.Faults.spec option;
  fault_seed : int;
  max_retries : int option;
  step_timeout : int option;
  snapshot_budget : int option;
  journal_file : string option;
  resume : bool;
  engine : Ksim.Engine.kind;
}

let exec_opts_term =
  let fault_spec =
    Arg.(value & opt (some fault_spec_conv) None
         & info [ "fault-spec" ] ~docv:"SPEC"
             ~doc:
               "Inject deterministic faults into the execution layer; \
                $(docv) is comma-separated key=value pairs: $(b,rate=R) \
                splits a total per-run fault rate evenly across all six \
                kinds, or set $(b,boot), $(b,hang), $(b,miss), \
                $(b,spurious), $(b,restore), $(b,flap) individually \
                (probabilities in [0,1]); $(b,site=LABEL) restricts \
                missed preemptions to scheduling points at that \
                instruction label")
  in
  let fault_seed =
    Arg.(value & opt (nonneg_int ~what:"--fault-seed") 1
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:
               "Seed of the fault-injection stream; identical \
                (spec, seed) pairs inject identical fault schedules")
  in
  let max_retries =
    Arg.(value & opt (some (nonneg_int ~what:"--max-retries")) None
         & info [ "max-retries" ] ~docv:"N"
             ~doc:
               "Re-run attempts perturbed by a detectable fault up to \
                $(docv) times with exponential backoff (default 3 when \
                faults are injected); 0 disables retrying AND quorum \
                confirmation — fault-perturbed decisions are then \
                accepted degraded (exit code 3) instead of re-executed")
  in
  let step_timeout =
    Arg.(value & opt (some (pos_int ~what:"--step-timeout")) None
         & info [ "step-timeout" ] ~docv:"STEPS"
             ~doc:
               "Watchdog: bound every schedule execution to $(docv) \
                controller steps, so a hung run is cut off \
                deterministically instead of running forever")
  in
  let snapshot_budget =
    Arg.(value & opt (some (nonneg_int ~what:"--snapshot-budget")) None
         & info [ "snapshot-budget" ] ~docv:"BYTES"
             ~doc:
               "Byte budget (estimated) of the prefix-sharing snapshot \
                cache enabled by $(b,--snapshot-cache); 0 disables the \
                cache")
  in
  let journal_file =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:
               "Checkpoint per-slice / per-flip diagnosis progress to \
                $(docv) (atomically, after every unit of work) so an \
                interrupted diagnosis can be resumed with $(b,--resume)")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:
               "Resume from the journal named by $(b,--journal): \
                finished slices and flip verdicts are replayed from the \
                journal instead of re-executed, and the report is \
                identical to an uninterrupted run")
  in
  let engine =
    Arg.(value
         & opt
             (enum
                [ ("reference", Ksim.Engine.Reference);
                  ("compiled", Ksim.Engine.Compiled) ])
             Ksim.Engine.default
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:
               "Machine implementation the guest VMs run on: \
                $(b,compiled) (default) executes programs compiled to \
                flat integer opcodes in a mutable arena with an undo \
                log; $(b,reference) is the persistent reference \
                semantics.  Chains, verdicts and race sets are \
                bit-identical across engines")
  in
  let make fault_spec fault_seed max_retries step_timeout snapshot_budget
      journal_file resume engine =
    { fault_spec; fault_seed; max_retries; step_timeout; snapshot_budget;
      journal_file; resume; engine }
  in
  Term.(const make $ fault_spec $ fault_seed $ max_retries $ step_timeout
        $ snapshot_budget $ journal_file $ resume $ engine)

(* Usage errors detected after parsing (option combinations, unreadable
   journals) exit with code 2, like parse errors. *)
let usage_error fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "aitia: %s@." msg;
      exit 2)
    fmt

let setup_journal (o : exec_opts) : Aitia.Journal.t option =
  match o.journal_file with
  | None ->
    if o.resume then usage_error "--resume requires --journal FILE"
    else None
  | Some file ->
    if o.resume then (
      match Aitia.Journal.load file with
      | Ok j -> Some j
      | Error e -> usage_error "cannot resume: %s" e)
    else Some (Aitia.Journal.create file)

(* A fresh fault harness per bug: multi-bug invocations inject the same
   per-bug fault schedule as single-bug ones. *)
let faults_for (o : exec_opts) =
  Option.map
    (fun spec -> Hypervisor.Faults.create ~seed:o.fault_seed spec)
    o.fault_spec

let resilience_for (o : exec_opts) : Aitia.Resilience.policy option =
  match (o.fault_spec, o.max_retries) with
  | None, None -> None
  | _ ->
    let max_retries =
      Option.value ~default:Aitia.Resilience.default_policy.max_retries
        o.max_retries
    in
    (* No retry budget, no quorum either: --max-retries 0 means "accept
       whatever a single attempt produced, degraded". *)
    let quorum =
      if max_retries = 0 then 1
      else Aitia.Resilience.default_policy.quorum
    in
    Some
      { Aitia.Resilience.max_retries; quorum;
        backoff_base = Aitia.Resilience.default_policy.backoff_base }

let diagnose_bug ?static_hints ?prune ?order ?jobs ?snapshot_cache ?opts
    ?journal (bug : Bugs.Bug.t) =
  let faults = Option.bind opts faults_for in
  let resilience = Option.bind opts resilience_for in
  let max_steps = Option.bind opts (fun o -> o.step_timeout) in
  let snapshot_budget = Option.bind opts (fun o -> o.snapshot_budget) in
  let engine = Option.map (fun o -> o.engine) opts in
  Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
    ?static_hints ?prune ?order ?jobs ?snapshot_cache ?snapshot_budget
    ?max_steps ?faults ?resilience ?journal ?engine (bug.case ())

let jobs_arg =
  Cmdliner.Arg.(
    value & opt (pos_int ~what:"--jobs") 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          (Fmt.str
             "Fan the diagnosis out over $(docv) workers (pool backend: \
              %s): LIFS frontiers and Causality flips run in parallel \
              shards merged deterministically, so chains and verdicts \
              are bit-identical to $(b,--jobs 1).  Ignored under \
              $(b,--order gain) or fault injection, where execution \
              order feeds back into decisions"
             Hypervisor.Pool.backend))

let snapshot_cache_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "snapshot-cache" ]
        ~doc:
          "Re-execute schedules through the prefix-sharing snapshot \
           cache: LIFS children resume from their parent's cached \
           prefix and Causality flips restore the snapshot just before \
           the flipped race instead of rebooting.  Schedules, verdicts \
           and chains are bit-identical with or without the cache; only \
           re-execution is avoided (see the snapshot.* counters under \
           `stats')")

(* Static-proof level and schedule-order selection, shared by diagnose
   and stats.  --static-hints survives as a deprecated alias for
   --prune=flipfeas. *)
let prune_arg =
  Cmdliner.Arg.(
    value
    & opt
        (some
           (enum
              [ ("none", `None); ("flipfeas", `Flipfeas);
                ("invariants", `Invariants) ]))
        None
    & info [ "prune" ] ~docv:"LEVEL"
        ~doc:
          "Static proofs that may skip a re-execution: $(b,none) runs \
           everything; $(b,flipfeas) enables the lockset/MHP hints and \
           the flip-feasibility pre-analysis (same as the deprecated \
           $(b,--static-hints)); $(b,invariants) adds the \
           error-invariant engine — flip families are discharged by \
           segment/replay certificates and LIFS runs one \
           representative per invariant-equivalent frontier class.  \
           Causality chains are identical at every level")

let order_arg =
  Cmdliner.Arg.(
    value
    & opt (enum [ ("backward", `Fixed); ("gain", `Gain) ]) `Fixed
    & info [ "order" ] ~docv:"ORDER"
        ~doc:
          "Schedule-selection order: $(b,backward) is the paper's fixed \
           order (flips latest-first, LIFS breadth-first); $(b,gain) \
           ranks candidates by expected information gain — closest to \
           even odds first, updated by the verdicts and reproduction \
           attempts the session accumulates")

(* --- list ------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Fmt.pr "%-18s %-14s %-26s %-5s %a@." "ID" "SUBSYSTEM" "BUG TYPE" "MULTI"
      Fmt.string "SOURCE";
    List.iter
      (fun (b : Bugs.Bug.t) ->
        Fmt.pr "%-18s %-14s %-26s %-5s %a@." b.id b.subsystem
          (Bugs.Bug.bug_type_name b.bug_type)
          (Bugs.Bug.variables_name b.variables)
          Bugs.Bug.pp_source b.source)
      Bugs.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the modeled bug corpus")
    Term.(const run $ setup_logs)

(* --- diagnose --------------------------------------------------------- *)

let diagnose_cmd =
  let flips =
    Arg.(value & flag
         & info [ "flips" ] ~doc:"Print the Causality Analysis flip log")
  in
  let hints =
    Arg.(value & flag
         & info [ "static-hints" ]
             ~doc:"Deprecated alias for $(b,--prune=flipfeas): seed LIFS \
                   with the static lockset/MHP analysis and enable the \
                   flip-feasibility pre-analysis")
  in
  let run () ids show_flips static_hints prune order jobs snapshot_cache
      opts =
    let journal = setup_journal opts in
    let reports =
      List.map
        (fun bug ->
          let report =
            diagnose_bug ~static_hints ?prune ~order ~jobs ~snapshot_cache
              ~opts ?journal bug
          in
          Fmt.pr "%a@." Aitia.Report.pp report;
          (if show_flips then
             match report.causality with
             | None -> ()
             | Some ca ->
               Fmt.pr "flip log:@.";
               List.iteri
                 (fun i (t : Aitia.Causality.tested) ->
                   Fmt.pr "  step %2d: flip %-24s -> %s@." (i + 1)
                     (Fmt.str "%a" Aitia.Race.pp_short t.race)
                     (match t.verdict with
                     | Aitia.Causality.Root_cause -> "no failure (root cause)"
                     | Aitia.Causality.Benign -> "still fails (benign)"))
                 ca.tested);
          report)
        (resolve ids)
    in
    Aitia.Report.exit_status reports
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Reproduce a failure and build its causality chain"
       ~exits:
         [ Cmd.Exit.info 0 ~doc:"every case was diagnosed";
           Cmd.Exit.info 1 ~doc:"some case failed to reproduce";
           Cmd.Exit.info 2 ~doc:"usage or configuration error";
           Cmd.Exit.info 3
             ~doc:
               "diagnosis degraded: retry budget exhausted or quorum \
                disagreement, the chain is partial" ])
    Term.(const run $ setup_logs $ bug_arg $ flips $ hints $ prune_arg
          $ order_arg $ jobs_arg $ snapshot_cache_flag $ exec_opts_term)

(* --- analyze ---------------------------------------------------------- *)

(* The serial prologue of a case, as thread names: every thread some
   slice realizes as setup (resource closure) rather than as a racing
   episode.  This mirrors what Diagnose.realize forces serial. *)
let serial_names (case : Aitia.Diagnose.case) =
  List.concat_map
    (fun (s : Trace.Slicer.t) ->
      List.map (fun (e : Trace.History.episode) -> e.thread) s.setup)
    (Trace.Slicer.slices case.history)
  |> List.sort_uniq String.compare

let analyze_cmd =
  let run () ids prune =
    let with_invariants = prune = Some `Invariants in
    let reports =
      List.map
        (fun (bug : Bugs.Bug.t) ->
          let case = bug.case () in
          let serial = serial_names case in
          let candidates =
            Analysis.Report_json.to_string
              (Analysis.Candidates.analyze ~serial case.group)
          in
          if with_invariants then
            let rel = Analysis.Absdom.of_group case.group in
            Analysis.Report_json.obj
              [ ("analysis", candidates);
                ("invariants",
                 Analysis.Report_json.invariants_to_string rel
                   (Analysis.Invariants.redundant_sections ~relevance:rel
                      case.group)) ]
          else candidates)
        (resolve ids)
    in
    Fmt.pr "[%s]@." (String.concat "," reports);
    0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static lockset / may-happen-in-parallel analysis of a \
             case's kernel programs, as JSON: every memory-accessing \
             site with its must/may locksets and every conflicting pair \
             classified Guarded, Unguarded or Ambiguous.  With \
             $(b,--prune=invariants) the report additionally carries \
             the error-invariant section: the failure-relevance closure \
             and the critical sections it proves redundant")
    Term.(const run $ setup_logs $ bug_arg $ prune_arg)

(* --- lint ------------------------------------------------------------- *)

let lint_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the lint report as a JSON array")
  in
  let run () ids json =
    let bugs = resolve ids in
    let reports =
      List.map
        (fun (bug : Bugs.Bug.t) ->
          let case = bug.case () in
          let serial = serial_names case in
          ( bug,
            Analysis.Lockorder.analyze ~serial case.group,
            (* Advisory, invariant-derived: lock acquisitions whose
               critical section provably guards nothing
               failure-relevant.  Never affects the exit status. *)
            Analysis.Invariants.redundant_sections case.group ))
        bugs
    in
    if json then
      Fmt.pr "[%s]@."
        (String.concat ","
           (List.map
              (fun ((bug : Bugs.Bug.t), r, red) ->
                Analysis.Report_json.obj
                  [ ("bug", Analysis.Report_json.str bug.id);
                    ("lint", Analysis.Report_json.lint_to_string r);
                    ("redundant_sections",
                     Analysis.Report_json.arr
                       (List.map Analysis.Report_json.redundant_json red))
                  ])
              reports))
    else
      List.iter
        (fun ((bug : Bugs.Bug.t), r, red) ->
          let ls = Analysis.Summary.lint_stats r in
          Fmt.pr "%-18s %a%s@." bug.id Analysis.Summary.pp_lint_stats ls
            (if Analysis.Summary.clean ls then "" else "  [FLAGGED]");
          List.iter
            (fun c -> Fmt.pr "  cycle: %a@." Analysis.Lockorder.pp_cycle c)
            r.cycles;
          List.iter
            (fun v ->
              Fmt.pr "  inversion: %a@." Analysis.Lockorder.pp_inversion v)
            r.inversions;
          List.iter
            (fun s ->
              Fmt.pr "  redundant lock: %a@." Analysis.Invariants.pp_redundant
                s)
            red)
        reports;
    0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Lockdep-style static lock-order lint: build the cross-thread \
             lock-acquisition-order graph from the per-instruction \
             locksets, report cycles (potential ABBA deadlocks) with \
             witness paths, guarded-publication inversions, and \
             (advisory) lock acquisitions whose critical section the \
             error-invariant engine proves redundant")
    Term.(const run $ setup_logs $ bug_arg $ json)

(* --- stats ------------------------------------------------------------ *)

let stats_cmd =
  let hints =
    Arg.(value & flag
         & info [ "static-hints" ]
             ~doc:"Deprecated alias for $(b,--prune=flipfeas): diagnose \
                   with the static lockset/MHP and flip-feasibility \
                   hints enabled")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit one flat metrics JSON object per bug instead of \
                   the table")
  in
  let run () ids static_hints prune order jobs snapshot_cache json opts =
    let journal = setup_journal opts in
    let reports = ref [] in
    List.iter
      (fun (bug : Bugs.Bug.t) ->
        (* A per-bug recorder; tee into the invocation-wide sink (from
           --trace-out/--metrics-out) when one is installed, so the
           Chrome trace still sees these runs. *)
        let r = Telemetry.Recorder.create () in
        let sink =
          match Telemetry.Probe.current_sink () with
          | None -> Telemetry.Recorder.sink r
          | Some outer ->
            Telemetry.Sink.tee outer (Telemetry.Recorder.sink r)
        in
        let report =
          Telemetry.Probe.with_sink sink (fun () ->
              diagnose_bug ~static_hints ?prune ~order ~jobs ~snapshot_cache
                ~opts ?journal bug)
        in
        reports := report :: !reports;
        if json then
          Fmt.pr "%s@."
            (Analysis.Report_json.obj
               [ ("bug", Analysis.Report_json.str bug.id);
                 ("reproduced",
                  Analysis.Report_json.bool
                    (Aitia.Diagnose.reproduced report));
                 ("metrics",
                  Telemetry.Metrics.to_string r) ])
        else (
          Fmt.pr "%s: %s@." bug.id
            (if Aitia.Diagnose.reproduced report then "reproduced"
             else "not reproduced");
          Fmt.pr "  counters:@.";
          List.iter
            (fun (name, v) -> Fmt.pr "    %-42s %10d@." name v)
            (Telemetry.Recorder.counters r);
          Fmt.pr "  spans:%50s %10s@." "count" "total(ms)";
          List.iter
            (fun (name, (s : Telemetry.Recorder.span_stat)) ->
              Fmt.pr "    %-42s %10d %10.2f@." name s.s_count
                (s.s_total_us /. 1000.0))
            (Telemetry.Recorder.span_stats r)))
      (resolve ids);
    Aitia.Report.exit_status (List.rev !reports)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Diagnose under a telemetry recorder and print the collected \
             metrics: schedule/flip/instruction counters and per-span \
             wall-time rollups")
    Term.(const run $ setup_logs $ bug_arg $ hints $ prune_arg $ order_arg
          $ jobs_arg $ snapshot_cache_flag $ json $ exec_opts_term)

(* --- chain ------------------------------------------------------------ *)

let chain_cmd =
  let run () ids jobs opts =
    List.iter
      (fun (bug : Bugs.Bug.t) ->
        let report = diagnose_bug ~jobs ~opts bug in
        match report.chain with
        | Some chain -> Fmt.pr "%-18s %a@." bug.id Aitia.Chain.pp chain
        | None -> Fmt.pr "%-18s (not reproduced)@." bug.id)
      (resolve ids);
    0
  in
  Cmd.v (Cmd.info "chain" ~doc:"Print only the causality chain")
    Term.(const run $ setup_logs $ bug_arg $ jobs_arg $ exec_opts_term)

(* --- batch ------------------------------------------------------------ *)

let batch_cmd =
  let manifest_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MANIFEST"
             ~doc:
               "JSON manifest of diagnosis requests: an array (or an \
                object with a $(b,requests) array) of objects, each with \
                a unique $(b,id), a corpus $(b,bug), and optional \
                per-request knobs $(b,jobs), $(b,prune), $(b,order), \
                $(b,snapshot_cache), $(b,snapshot_budget), \
                $(b,fault_spec), $(b,fault_seed), $(b,max_retries), \
                $(b,step_timeout), $(b,journal)")
  in
  let batch_jobs =
    Arg.(value & opt (pos_int ~what:"--jobs") 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:
               "Run up to $(docv) requests concurrently (pool backend: \
                see `aitia diagnose --help'); outcomes are reported in \
                manifest order regardless of completion order")
  in
  let journal_dir =
    Arg.(value & opt (some string) None
         & info [ "journal-dir" ] ~docv:"DIR"
             ~doc:
               "Give every request an isolated journal at \
                $(docv)/<id>.journal.json (the directory is created if \
                missing); combine with $(b,--resume) to pick an \
                interrupted batch back up per-request")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:
               "Load the per-request journals from $(b,--journal-dir) \
                (or each request's $(b,journal) field) instead of \
                truncating them")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:
               "Write the consolidated JSON report (overall exit code \
                plus per-request outcomes) to $(docv)")
  in
  let run () manifest jobs journal_dir resume out =
    (match (resume, journal_dir) with
    | true, None -> usage_error "batch --resume requires --journal-dir"
    | _ -> ());
    let requests =
      match Aitia.Batch.manifest_of_file manifest with
      | Ok rqs -> rqs
      | Error e -> usage_error "bad manifest %s: %s" manifest e
    in
    Option.iter
      (fun dir ->
        if not (Sys.file_exists dir) then
          try Sys.mkdir dir 0o755
          with Sys_error e -> usage_error "cannot create %s: %s" dir e)
      journal_dir;
    let resolve id =
      Option.map
        (fun (b : Bugs.Bug.t) -> (b.case (), b.max_interleavings))
        (Bugs.Registry.find id)
    in
    let summary =
      Aitia.Batch.run ~jobs ?journal_dir ~resume ~resolve requests
    in
    Fmt.pr "%-12s %-18s %-4s %-10s %-8s %9s  %s@." "ID" "BUG" "EXIT"
      "REPRODUCED" "DEGRADED" "ELAPSED" "CHAIN/ERROR";
    List.iter
      (fun (o : Aitia.Batch.outcome) ->
        Fmt.pr "%-12s %-18s %-4d %-10s %-8s %8.2fs  %s@." o.o_id o.o_bug
          o.o_exit
          (if o.o_reproduced then "yes" else "no")
          (if o.o_degraded then "yes" else "no")
          o.o_elapsed
          (match (o.o_error, o.o_chain) with
          | Some e, _ -> e
          | None, Some c -> c
          | None, None -> "-"))
      summary.outcomes;
    Option.iter
      (fun file ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc
              (Aitia.Batch.summary_to_json summary ^ "\n")))
      out;
    summary.batch_exit
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a manifest of diagnosis requests with bounded concurrency \
          and write one consolidated report"
       ~exits:
         [ Cmd.Exit.info 0 ~doc:"every request was diagnosed";
           Cmd.Exit.info 1
             ~doc:"some request cleanly failed to reproduce";
           Cmd.Exit.info 2
             ~doc:
               "usage error, malformed manifest, or some request erred \
                (unknown bug, bad fault spec, crash)";
           Cmd.Exit.info 3 ~doc:"some request's diagnosis is degraded" ])
    Term.(const run $ setup_logs $ manifest_arg $ batch_jobs $ journal_dir
          $ resume $ out)

(* --- fuzz ------------------------------------------------------------- *)

(* Indices of the bug's resource-setup threads (serial prologue). *)
let prologue_of (group : Ksim.Program.group) =
  List.filteri
    (fun _ (s : Ksim.Program.thread_spec) -> String.equal s.spec_name "init")
    group.Ksim.Program.threads
  |> List.map (fun (s : Ksim.Program.thread_spec) ->
         let rec index i = function
           | [] -> -1
           | (x : Ksim.Program.thread_spec) :: rest ->
             if String.equal x.spec_name s.spec_name then i
             else index (i + 1) rest
         in
         index 0 group.Ksim.Program.threads)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed")
  in
  let run () ids seed =
    List.iter
      (fun (bug : Bugs.Bug.t) ->
        let case = bug.case () in
        let prologue = prologue_of case.group in
        match
          Fuzz.Fuzzer.run ~seed ~prologue ~subsystem:bug.subsystem case.group
        with
        | Error stats ->
          Fmt.pr "%-18s no crash in %d runs@." bug.id stats.executed
        | Ok finding ->
          Fmt.pr "%-18s crashed after %d run(s): %a@." bug.id
            finding.runs_until_crash Ksim.Failure.pp finding.failure;
          let case' = { case with history = finding.history } in
          let report =
            Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
              case'
          in
          Fmt.pr "%a@." Aitia.Report.pp report)
      (resolve ids);
    0
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz a workload Syzkaller-style, then diagnose the crash")
    Term.(const run $ setup_logs $ bug_arg $ seed)

(* --- compare ---------------------------------------------------------- *)

let compare_cmd =
  let run () ids =
    Fmt.pr "%-18s %-6s %-7s %-5s %-5s@." "ID" "AITIA" "KAIRUX" "CBL" "MUVI";
    List.iter
      (fun (bug : Bugs.Bug.t) ->
        let report = diagnose_bug bug in
        match Baselines.Requirements.evidence_of_report report with
        | None -> Fmt.pr "%-18s (not reproduced)@." bug.id
        | Some ev ->
          let single_variable = bug.variables = Bugs.Bug.Single in
          let cap = Baselines.Requirements.capability ~single_variable ev in
          let b x = if x then "yes" else "no" in
          Fmt.pr "%-18s %-6s %-7s %-5s %-5s@." bug.id (b cap.cap_aitia)
            (b cap.cap_kairux) (b cap.cap_cbl) (b cap.cap_muvi))
      (resolve ids);
    0
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare AITIA against Kairux / CBL / MUVI on a bug (Sec 5.3)")
    Term.(const run $ setup_logs $ bug_arg)

let main =
  let info =
    Cmd.info "aitia" ~version:"1.0.0"
      ~doc:"Root-cause diagnosis of kernel concurrency failures (EuroSys'23)"
  in
  Cmd.group info
    [ list_cmd; diagnose_cmd; analyze_cmd; lint_cmd; stats_cmd; chain_cmd;
      batch_cmd; fuzz_cmd; compare_cmd ]

(* Map Cmdliner outcomes onto the documented exit codes: subcommands
   return their own status (0 / 1 / 3), and every usage or
   configuration error — unknown option, malformed --fault-spec,
   negative --max-retries — exits 2. *)
let () =
  exit
    (match Cmd.eval_value main with
    | Ok (`Ok status) -> status
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
