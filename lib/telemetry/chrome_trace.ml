(* Chrome trace-event export: the `chrome://tracing` / Perfetto JSON
   format (trace-event spec, "JSON Object Format").

   Every closed span becomes a "ph":"X" complete event (nesting within
   a track is inferred from ts/dur containment), every instant a
   "ph":"i" event, and the final value of every counter a "ph":"C"
   counter sample at the end of the timeline — so the counter tracks
   show the run's totals.  Timestamps are the probe's microseconds. *)

let us f = Printf.sprintf "%.1f" f

let args_json args =
  Json.obj (List.map (fun (k, v) -> (k, Json.str v)) args)

let span_event (s : Sink.span) =
  Json.obj
    [ ("name", Json.str s.span_name);
      ("cat", Json.str s.span_cat);
      ("ph", Json.str "X");
      ("ts", us s.span_start_us);
      ("dur", us s.span_dur_us);
      ("pid", "1");
      ("tid", "1");
      ("args", args_json s.span_args) ]

let instant_event (i : Sink.instant) =
  Json.obj
    [ ("name", Json.str i.i_name);
      ("cat", Json.str i.i_cat);
      ("ph", Json.str "i");
      ("ts", us i.i_ts_us);
      ("pid", "1");
      ("tid", "1");
      ("s", Json.str "t");
      ("args", args_json i.i_args) ]

let counter_event ~ts (name, value) =
  Json.obj
    [ ("name", Json.str name);
      ("cat", Json.str "counter");
      ("ph", Json.str "C");
      ("ts", us ts);
      ("pid", "1");
      ("tid", "1");
      ("args", Json.obj [ ("value", Json.int value) ]) ]

let to_string (r : Recorder.t) =
  let spans = Recorder.spans r and instants = Recorder.instants r in
  let timed =
    List.map (fun (s : Sink.span) -> (s.span_start_us, span_event s)) spans
    @ List.map (fun (i : Sink.instant) -> (i.i_ts_us, instant_event i))
        instants
  in
  let timed =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) timed
  in
  let horizon =
    List.fold_left
      (fun acc (s : Sink.span) ->
        Float.max acc (s.span_start_us +. s.span_dur_us))
      0.0 spans
  in
  let counters =
    List.map (counter_event ~ts:horizon) (Recorder.counters r)
  in
  Json.obj
    [ ("traceEvents", Json.arr (List.map snd timed @ counters));
      ("displayTimeUnit", Json.str "ms") ]

let write ~file r =
  let oc = open_out file in
  output_string oc (to_string r);
  output_string oc "\n";
  close_out oc
