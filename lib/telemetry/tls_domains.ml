(* Thread-local (domain-local) storage, OCaml 5 build: each domain of
   the hypervisor worker pool gets its own probe state, so workers can
   record telemetry concurrently without sharing a span stack.  The
   dune rules copy this file to tls.ml on >= 5.0 and tls_ref.ml (a
   plain cell — the build is single-domain) otherwise. *)

type 'a key = 'a Domain.DLS.key

let new_key (init : unit -> 'a) : 'a key = Domain.DLS.new_key init
let get (k : 'a key) : 'a = Domain.DLS.get k
