(* Minimal JSON for the telemetry subsystem and the repo's reports.

   Two halves, both dependency-free:

   - string-building combinators ([str], [arr], [obj], …) — the same
     surface `Analysis.Report_json` exposed historically; that module
     now re-exports these so every report in the tree shares one
     emitter;
   - a small recursive-descent parser ([of_string]) with accessors,
     for consumers of our own artifacts: the perf-regression gate
     compares two bench JSON files, and the tests check Chrome traces
     for well-formedness by parsing them back. *)

(* --- emission ----------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

let arr items = "[" ^ String.concat "," items ^ "]"

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let str_list ss = arr (List.map str ss)

let bool b = if b then "true" else "false"

let int = string_of_int

let float f = Printf.sprintf "%.4f" f

(* --- parsed values ------------------------------------------------------ *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let rec render = function
  | Null -> "null"
  | Bool b -> bool b
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f
  | Str s -> str s
  | Arr xs -> arr (List.map render xs)
  | Obj kvs -> obj (List.map (fun (k, v) -> (k, render v)) kvs)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

(* --- parsing ------------------------------------------------------------ *)

exception Malformed of string * int

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Malformed (msg, c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.equal (String.sub c.src c.pos n) word
  then (
    c.pos <- c.pos + n;
    value)
  else fail c ("expected " ^ word)

(* Encode a decoded \uXXXX code point as UTF-8 (surrogate pairs are not
   recombined — trace content is ASCII in practice). *)
let add_code_point b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then (
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f))))
  else (
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f))))

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail c "unterminated escape"
      | Some esc ->
        advance c;
        (match esc with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.src then fail c "short \\u escape";
          let hex = String.sub c.src c.pos 4 in
          c.pos <- c.pos + 4;
          let cp =
            try int_of_string ("0x" ^ hex)
            with _ -> fail c "bad \\u escape"
          in
          add_code_point b cp
        | _ -> fail c "unknown escape");
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  if c.pos = start then fail c "expected a value";
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail c ("bad number " ^ s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then (
      advance c;
      Obj [])
    else
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail c "expected , or } in object"
      in
      fields []
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then (
      advance c;
      Arr [])
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
        | _ -> fail c "expected , or ] in array"
      in
      items []
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Malformed (msg, pos) ->
    Error (Printf.sprintf "%s at offset %d" msg pos)
