(** Perf-regression gate over bench metric documents.

    Numeric fields are higher-is-worse and fail beyond
    [baseline * (1 + tolerance)]; [true] booleans are invariants that
    must hold in the fresh document; [ignore_fields] skips metrics that
    are non-deterministic (host wall clock) or higher-is-better. *)

type verdict = {
  gate_ok : bool;
  checked : int;  (** individual metric comparisons performed *)
  violations : string list;
}

val compare_rows :
  ?tolerance:float ->
  ?ignore_fields:string list ->
  id_key:string ->
  baseline:Json.t list ->
  fresh:Json.t list ->
  unit ->
  verdict
(** Compare arrays of per-row objects matched on [id_key].  A baseline
    row or field missing from the fresh side is a violation; extra
    fresh rows/fields are allowed.  [tolerance] defaults to 0.02. *)

val compare_docs :
  ?tolerance:float ->
  ?ignore_fields:string list ->
  ?target:string ->
  baseline:Json.t ->
  fresh:Json.t ->
  unit ->
  verdict
(** Extract the row array from each document — either a bare array or
    the [target] member (default ["causality"]) of a merged bench
    object — and compare with {!compare_rows} keyed on ["bug"]. *)
