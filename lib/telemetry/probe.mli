(** The global instrumentation facade.

    Hot paths call these unconditionally.  With no sink installed every
    probe is a single match on a ref — a no-op cheap enough for the
    controller step loop — and instrumented code is bit-identical to
    uninstrumented code, because probes never influence the computation
    they observe.  Spans nest via one global stack (the system is
    single-threaded). *)

val installed : unit -> bool
val current_sink : unit -> Sink.t option

val install : Sink.t -> unit
(** Install [s] as the global sink (replacing any previous one) and
    reset the span stack. *)

val uninstall : unit -> unit

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Run [f] with the given sink installed, restoring the previous sink
    (and span stack) afterwards, exceptions included. *)

val now_us : unit -> float
(** Microseconds since the probe origin; clamped monotonic. *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** Run [f] inside a named span.  If [f] raises, the span closes with
    an ["error"] argument and the exception is re-raised. *)

val span_begin : ?cat:string -> string -> unit
(** Open a span by hand — for call sites whose span arguments are only
    known at the end (e.g. a flip's verdict).  Pair with {!span_end}. *)

val span_end : ?args:(string * string) list -> unit -> unit
(** Close the innermost open span.  A no-op when no sink is installed
    or no span is open. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration event. *)

val count : ?by:int -> string -> unit
(** Add [by] (default 1) to a named counter. *)

val observe : string -> float -> unit
(** Record one observation of a named histogram. *)
