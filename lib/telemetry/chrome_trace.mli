(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    Spans become ["ph":"X"] complete events, instants ["ph":"i"]
    events, and final counter values ["ph":"C"] samples at the end of
    the timeline.  The output is one self-contained JSON object with a
    [traceEvents] array, loadable as-is. *)

val to_string : Recorder.t -> string

val write : file:string -> Recorder.t -> unit
(** [to_string] plus a trailing newline, written to [file]. *)
