(* Flat metrics export: counters, histogram summaries and per-span
   rollups as one JSON object — the machine-readable side of
   `aitia stats` and the bench `--metrics-out` sink.  Built from the
   same combinators as every other report in the tree. *)

let histogram_json (h : Recorder.histogram) =
  Json.obj
    [ ("count", Json.int h.h_count);
      ("sum", Json.float h.h_sum);
      ("min", Json.float h.h_min);
      ("max", Json.float h.h_max);
      ("mean",
       Json.float
         (if h.h_count = 0 then 0.0
          else h.h_sum /. float_of_int h.h_count)) ]

let span_stat_json (s : Recorder.span_stat) =
  Json.obj
    [ ("count", Json.int s.s_count);
      ("total_ms", Json.float (s.s_total_us /. 1000.0)) ]

let to_string (r : Recorder.t) =
  Json.obj
    [ ("counters",
       Json.obj
         (List.map (fun (k, v) -> (k, Json.int v)) (Recorder.counters r)));
      ("histograms",
       Json.obj
         (List.map
            (fun (k, h) -> (k, histogram_json h))
            (Recorder.histograms r)));
      ("spans",
       Json.obj
         (List.map
            (fun (k, s) -> (k, span_stat_json s))
            (Recorder.span_stats r))) ]

let write ~file r =
  let oc = open_out file in
  output_string oc (to_string r);
  output_string oc "\n";
  close_out oc
