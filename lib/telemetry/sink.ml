(* The pluggable sink interface: where telemetry events go.

   A sink is a record of four callbacks — closed spans, instants,
   counter increments, histogram observations.  The probe layer calls
   them only while a sink is installed, so instrumented code pays a
   single ref read when telemetry is off.  Sinks compose with [tee]
   (e.g. a CLI-wide Chrome-trace recorder plus a per-bug stats
   recorder observing the same run). *)

type span = {
  span_name : string;
  span_cat : string;                   (* Chrome trace category *)
  span_depth : int;                    (* nesting depth, outermost = 0 *)
  span_start_us : float;               (* µs since the probe origin *)
  span_dur_us : float;
  span_args : (string * string) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_ts_us : float;
  i_args : (string * string) list;
}

type t = {
  on_span : span -> unit;              (* called when a span closes *)
  on_instant : instant -> unit;
  on_count : string -> int -> unit;    (* named counter += n *)
  on_observe : string -> float -> unit;  (* histogram observation *)
}

let null =
  { on_span = ignore;
    on_instant = ignore;
    on_count = (fun _ _ -> ());
    on_observe = (fun _ _ -> ()) }

let tee a b =
  { on_span =
      (fun s ->
        a.on_span s;
        b.on_span s);
    on_instant =
      (fun i ->
        a.on_instant i;
        b.on_instant i);
    on_count =
      (fun name n ->
        a.on_count name n;
        b.on_count name n);
    on_observe =
      (fun name v ->
        a.on_observe name v;
        b.on_observe name v) }
