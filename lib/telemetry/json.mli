(** Minimal JSON: the emission combinators shared by every report in
    the tree ({!Analysis.Report_json} re-exports them) and a parser for
    consuming our own artifacts (the perf gate, the trace tests).
    Strings are escaped per RFC 8259.  No external dependency. *)

(** {1 Emission} *)

val escape : string -> string
(** JSON string contents (without the surrounding quotes). *)

val str : string -> string
(** A quoted, escaped JSON string. *)

val arr : string list -> string
(** A JSON array of already-serialized values. *)

val obj : (string * string) list -> string
(** A JSON object from key / already-serialized-value pairs. *)

val str_list : string list -> string
val bool : bool -> string
val int : int -> string

val float : float -> string
(** Fixed four-decimal rendering, stable across platforms. *)

(** {1 Parsed values} *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    byte offset of the problem. *)

val render : t -> string
(** Serialize a parsed value back to a compact document. *)

(** Accessors; [None] on a shape mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_num : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
