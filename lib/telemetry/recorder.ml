(* The in-memory sink: accumulates everything a run emits, for the
   exporters (Chrome trace, flat metrics) and for tests that assert
   counter parity with the Summary stats. *)

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

type span_stat = { s_count : int; s_total_us : float }

type t = {
  mutable rec_spans : Sink.span list;      (* newest first *)
  mutable rec_instants : Sink.instant list;
  mutable rec_observations : (string * float) list;  (* newest first *)
  rec_counters : (string, int) Hashtbl.t;
  rec_histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { rec_spans = [];
    rec_instants = [];
    rec_observations = [];
    rec_counters = Hashtbl.create 32;
    rec_histograms = Hashtbl.create 16 }

let sink t =
  { Sink.on_span = (fun s -> t.rec_spans <- s :: t.rec_spans);
    on_instant = (fun i -> t.rec_instants <- i :: t.rec_instants);
    on_count =
      (fun name by ->
        let prev =
          Option.value ~default:0 (Hashtbl.find_opt t.rec_counters name)
        in
        Hashtbl.replace t.rec_counters name (prev + by));
    on_observe =
      (fun name v ->
        t.rec_observations <- (name, v) :: t.rec_observations;
        let h =
          match Hashtbl.find_opt t.rec_histograms name with
          | None -> { h_count = 1; h_sum = v; h_min = v; h_max = v }
          | Some h ->
            { h_count = h.h_count + 1;
              h_sum = h.h_sum +. v;
              h_min = min h.h_min v;
              h_max = max h.h_max v }
        in
        Hashtbl.replace t.rec_histograms name h) }

let spans t = List.rev t.rec_spans
let instants t = List.rev t.rec_instants

let counter t name =
  Option.value ~default:0 (Hashtbl.find_opt t.rec_counters name)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.rec_counters
let histograms t = sorted_bindings t.rec_histograms
let histogram t name = Hashtbl.find_opt t.rec_histograms name

(* Replay everything this recorder captured into another sink, in
   capture order.  Used by the worker pool: each worker records into a
   private recorder, and the coordinator replays the recorders in shard
   index order, so the merged stream is deterministic regardless of
   which worker finished first.  Counters are replayed as one on_count
   per name (sorted) with the accumulated total; observations are kept
   raw so downstream histograms match a sequential run exactly. *)
let replay t (s : Sink.t) =
  List.iter (fun sp -> s.Sink.on_span sp) (List.rev t.rec_spans);
  List.iter (fun i -> s.Sink.on_instant i) (List.rev t.rec_instants);
  List.iter
    (fun (name, by) -> if by <> 0 then s.Sink.on_count name by)
    (sorted_bindings t.rec_counters);
  List.iter
    (fun (name, v) -> s.Sink.on_observe name v)
    (List.rev t.rec_observations)

(* Per-name rollup of the recorded spans, for the flat metrics export
   and `aitia stats`. *)
let span_stats t =
  let tbl : (string, span_stat) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Sink.span) ->
      let prev =
        match Hashtbl.find_opt tbl s.span_name with
        | None -> { s_count = 0; s_total_us = 0.0 }
        | Some st -> st
      in
      Hashtbl.replace tbl s.span_name
        { s_count = prev.s_count + 1;
          s_total_us = prev.s_total_us +. s.span_dur_us })
    t.rec_spans;
  sorted_bindings tbl
