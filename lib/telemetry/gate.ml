(* The perf-regression gate: compare two metric documents (arrays of
   per-bug JSON rows, as written by `bench … --json`) and flag any
   metric that got worse.

   Every numeric field of the baseline is treated as higher-is-worse —
   schedules explored, flips executed, simulated seconds — and fails
   when the fresh value exceeds baseline * (1 + tolerance).  Boolean
   fields are invariants: a [true] in the baseline (e.g.
   [chain_identical]) must stay [true].  Fields named in
   [ignore_fields] (host wall clock, ratios where higher is better)
   are skipped.  Rows are matched by [id_key]; a baseline row missing
   from the fresh document is a failure, extra fresh rows and extra
   fresh fields are allowed (metrics can grow without invalidating old
   baselines). *)

type verdict = {
  gate_ok : bool;
  checked : int;       (* individual metric comparisons performed *)
  violations : string list;
}

let rows_of ~target doc =
  match doc with
  | Json.Arr rows -> Some rows
  | Json.Obj _ ->
    Option.bind (Json.member target doc) Json.to_list
  | _ -> None

let row_id ~id_key row =
  match Option.bind (Json.member id_key row) Json.to_str with
  | Some id -> id
  | None -> "<no-" ^ id_key ^ ">"

let compare_rows ?(tolerance = 0.02) ?(ignore_fields = []) ~id_key
    ~(baseline : Json.t list) ~(fresh : Json.t list) () : verdict =
  let fresh_by_id =
    List.map (fun row -> (row_id ~id_key row, row)) fresh
  in
  let checked = ref 0 and violations = ref [] in
  let violation fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun brow ->
      let id = row_id ~id_key brow in
      match List.assoc_opt id fresh_by_id with
      | None -> violation "%s: row missing from the fresh document" id
      | Some frow ->
        let fields = match brow with Json.Obj kvs -> kvs | _ -> [] in
        List.iter
          (fun (k, bv) ->
            if String.equal k id_key || List.mem k ignore_fields then ()
            else
              match bv with
              | Json.Num b -> (
                incr checked;
                match Option.bind (Json.member k frow) Json.to_num with
                | None -> violation "%s: %s missing from the fresh row" id k
                | Some f ->
                  if f > (b *. (1.0 +. tolerance)) +. 1e-9 then
                    violation "%s: %s regressed %g -> %g (tolerance %g%%)"
                      id k b f (100.0 *. tolerance))
              | Json.Bool true -> (
                incr checked;
                match Option.bind (Json.member k frow) Json.to_bool with
                | Some true -> ()
                | Some false -> violation "%s: invariant %s broke" id k
                | None -> violation "%s: %s missing from the fresh row" id k)
              | _ -> ())
          fields)
    baseline;
  { gate_ok = !violations = [];
    checked = !checked;
    violations = List.rev !violations }

let compare_docs ?tolerance ?ignore_fields ?(target = "causality")
    ~(baseline : Json.t) ~(fresh : Json.t) () : verdict =
  match (rows_of ~target baseline, rows_of ~target fresh) with
  | None, _ ->
    { gate_ok = false;
      checked = 0;
      violations = [ "baseline has no '" ^ target ^ "' rows" ] }
  | _, None ->
    { gate_ok = false;
      checked = 0;
      violations = [ "fresh document has no '" ^ target ^ "' rows" ] }
  | Some b, Some f ->
    compare_rows ?tolerance ?ignore_fields ~id_key:"bug" ~baseline:b
      ~fresh:f ()
