(** The pluggable sink interface: where telemetry events go.

    The probe layer calls a sink only while one is installed; with no
    sink, instrumentation costs a single ref read and produces nothing
    — the overhead contract of DESIGN.md. *)

type span = {
  span_name : string;
  span_cat : string;  (** Chrome trace category *)
  span_depth : int;  (** nesting depth at emission, outermost = 0 *)
  span_start_us : float;  (** microseconds since the probe origin *)
  span_dur_us : float;
  span_args : (string * string) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_ts_us : float;
  i_args : (string * string) list;
}

type t = {
  on_span : span -> unit;  (** called when a span closes *)
  on_instant : instant -> unit;
  on_count : string -> int -> unit;  (** named counter += n *)
  on_observe : string -> float -> unit;  (** histogram observation *)
}

val null : t
(** Accepts and discards everything. *)

val tee : t -> t -> t
(** Duplicate every event to both sinks, first argument first. *)
