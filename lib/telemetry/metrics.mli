(** Flat metrics JSON export: one object with [counters] (name →
    integer), [histograms] (name → count/sum/min/max/mean) and [spans]
    (name → count/total_ms). *)

val to_string : Recorder.t -> string

val write : file:string -> Recorder.t -> unit
(** [to_string] plus a trailing newline, written to [file]. *)
