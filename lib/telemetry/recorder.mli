(** The in-memory sink: accumulates spans, instants, counters and
    histograms for the exporters and the tests. *)

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
}

type span_stat = { s_count : int; s_total_us : float }

type t

val create : unit -> t

val sink : t -> Sink.t
(** The sink feeding this recorder; install it with {!Probe.install}
    or {!Probe.with_sink}. *)

val spans : t -> Sink.span list
(** Completed spans in completion order. *)

val instants : t -> Sink.instant list

val counter : t -> string -> int
(** Current value of a counter; 0 if never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val histograms : t -> (string * histogram) list
val histogram : t -> string -> histogram option

val span_stats : t -> (string * span_stat) list
(** Per-span-name rollup (count, total duration), sorted by name. *)

val replay : t -> Sink.t -> unit
(** Replay everything captured by this recorder into another sink, in
    capture order (counters as one accumulated on_count per name,
    sorted; observations raw).  The worker pool records into a private
    recorder per task and replays them in shard-index order, making the
    merged telemetry stream deterministic regardless of completion
    order. *)
