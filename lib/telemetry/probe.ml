(* The global instrumentation facade.

   Instrumented code calls [with_span] / [count] / [observe]
   unconditionally; each probe starts with a single match on the
   installed-sink cell, so a build with telemetry off the hot paths
   costs nothing measurable and — because probes never touch the
   instrumented computation — produces bit-identical results.

   Timestamps are microseconds since the first use of the module,
   clamped monotonic (a wall-clock step backwards cannot produce a
   negative duration).  The installed sink, the span stack and the
   monotonic clamp live in thread-local storage (Domain.DLS on OCaml 5,
   a plain cell below), so each domain of the hypervisor worker pool
   records into its own sink without sharing a span stack; the stack
   depth is recorded on each closed span for the exporters. *)

type frame = { f_name : string; f_cat : string; f_start : float }

type state = {
  mutable current : Sink.t option;
  mutable stack : frame list;
  mutable last : float;
}

let key : state Tls.key =
  Tls.new_key (fun () -> { current = None; stack = []; last = 0.0 })

let state () = Tls.get key

let origin = Unix.gettimeofday ()

let now_us () =
  let st = state () in
  let t = (Unix.gettimeofday () -. origin) *. 1e6 in
  let t = if t < st.last then st.last else t in
  st.last <- t;
  t

let installed () = (state ()).current <> None
let current_sink () = (state ()).current

let install s =
  let st = state () in
  st.current <- Some s;
  st.stack <- []

let uninstall () =
  let st = state () in
  st.current <- None;
  st.stack <- []

let with_sink s f =
  let st = state () in
  let saved = st.current and saved_stack = st.stack in
  st.current <- Some s;
  st.stack <- [];
  Fun.protect
    ~finally:(fun () ->
      let st = state () in
      st.current <- saved;
      st.stack <- saved_stack)
    f

let span_begin ?(cat = "aitia") name =
  let st = state () in
  match st.current with
  | None -> ()
  | Some _ ->
    st.stack <- { f_name = name; f_cat = cat; f_start = now_us () } :: st.stack

let span_end ?(args = []) () =
  let st = state () in
  match (st.current, st.stack) with
  | Some s, fr :: rest ->
    st.stack <- rest;
    let stop = now_us () in
    s.Sink.on_span
      { Sink.span_name = fr.f_name;
        span_cat = fr.f_cat;
        span_depth = List.length rest;
        span_start_us = fr.f_start;
        span_dur_us = stop -. fr.f_start;
        span_args = args }
  | _ -> ()

let with_span ?cat ?args name f =
  match (state ()).current with
  | None -> f ()
  | Some _ -> (
    span_begin ?cat name;
    let args = match args with None -> [] | Some a -> a in
    match f () with
    | v ->
      span_end ~args ();
      v
    | exception e ->
      span_end ~args:(("error", Printexc.to_string e) :: args) ();
      raise e)

let instant ?(cat = "aitia") ?(args = []) name =
  match (state ()).current with
  | None -> ()
  | Some s ->
    s.Sink.on_instant
      { Sink.i_name = name; i_cat = cat; i_ts_us = now_us (); i_args = args }

let count ?(by = 1) name =
  match (state ()).current with
  | None -> ()
  | Some s -> s.Sink.on_count name by

let observe name v =
  match (state ()).current with
  | None -> ()
  | Some s -> s.Sink.on_observe name v
