(* The global instrumentation facade.

   Instrumented code calls [with_span] / [count] / [observe]
   unconditionally; each probe starts with a single match on the
   installed-sink ref, so a build with telemetry off the hot paths
   costs nothing measurable and — because probes never touch the
   instrumented computation — produces bit-identical results.

   Timestamps are microseconds since the first use of the module,
   clamped monotonic (a wall-clock step backwards cannot produce a
   negative duration).  The search and the analyses are
   single-threaded, so one global span stack suffices; the stack depth
   is recorded on each closed span for the exporters. *)

type frame = { f_name : string; f_cat : string; f_start : float }

let current : Sink.t option ref = ref None
let stack : frame list ref = ref []

let origin = Unix.gettimeofday ()
let last = ref 0.0

let now_us () =
  let t = (Unix.gettimeofday () -. origin) *. 1e6 in
  let t = if t < !last then !last else t in
  last := t;
  t

let installed () = !current <> None
let current_sink () = !current

let install s =
  current := Some s;
  stack := []

let uninstall () =
  current := None;
  stack := []

let with_sink s f =
  let saved = !current and saved_stack = !stack in
  current := Some s;
  stack := [];
  Fun.protect
    ~finally:(fun () ->
      current := saved;
      stack := saved_stack)
    f

let span_begin ?(cat = "aitia") name =
  match !current with
  | None -> ()
  | Some _ ->
    stack := { f_name = name; f_cat = cat; f_start = now_us () } :: !stack

let span_end ?(args = []) () =
  match (!current, !stack) with
  | Some s, fr :: rest ->
    stack := rest;
    let stop = now_us () in
    s.Sink.on_span
      { Sink.span_name = fr.f_name;
        span_cat = fr.f_cat;
        span_depth = List.length rest;
        span_start_us = fr.f_start;
        span_dur_us = stop -. fr.f_start;
        span_args = args }
  | _ -> ()

let with_span ?cat ?args name f =
  match !current with
  | None -> f ()
  | Some _ -> (
    span_begin ?cat name;
    let args = match args with None -> [] | Some a -> a in
    match f () with
    | v ->
      span_end ~args ();
      v
    | exception e ->
      span_end ~args:(("error", Printexc.to_string e) :: args) ();
      raise e)

let instant ?(cat = "aitia") ?(args = []) name =
  match !current with
  | None -> ()
  | Some s ->
    s.Sink.on_instant
      { Sink.i_name = name; i_cat = cat; i_ts_us = now_us (); i_args = args }

let count ?(by = 1) name =
  match !current with None -> () | Some s -> s.Sink.on_count name by

let observe name v =
  match !current with None -> () | Some s -> s.Sink.on_observe name v
