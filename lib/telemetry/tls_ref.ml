(* Thread-local storage, OCaml 4 build: there is exactly one domain, so
   a key is a lazily-initialized cell.  The dune rules copy this file
   to tls.ml below 5.0 and tls_domains.ml (Domain.DLS) otherwise. *)

type 'a key = { init : unit -> 'a; mutable cell : 'a option }

let new_key init = { init; cell = None }

let get k =
  match k.cell with
  | Some v -> v
  | None ->
    let v = k.init () in
    k.cell <- Some v;
    v
