(* Retry/quorum policy and accounting for the resilient executor. *)

type policy = {
  max_retries : int;
  quorum : int;
  backoff_base : float;
}

let default_policy = { max_retries = 3; quorum = 3; backoff_base = 0.05 }

type stats = {
  mutable retries : int;
  mutable gave_up : int;
  mutable quorum_runs : int;
  mutable quorum_disagreements : int;
  mutable low_confidence : int;
  mutable backoff_simulated : float;
}

type t = {
  policy : policy;
  stats : stats;
}

let create ?(policy = default_policy) () =
  { policy;
    stats =
      { retries = 0; gave_up = 0; quorum_runs = 0; quorum_disagreements = 0;
        low_confidence = 0; backoff_simulated = 0. } }

let degraded t = t.stats.gave_up > 0 || t.stats.low_confidence > 0

let pp_stats ppf t =
  Fmt.pf ppf "retries=%d gave_up=%d quorum_runs=%d disagreements=%d"
    t.stats.retries t.stats.gave_up t.stats.quorum_runs
    t.stats.quorum_disagreements
