(* Resumable diagnosis journal: per-slice / per-flip checkpoints as a
   JSON file, written atomically after every unit of progress.

   Races are journaled with their full endpoint data (thread, label,
   occurrence, address, kind, time, locks held) rather than recomputed
   on resume: [Race.pending_of_failure] depends on the cross-run access
   database, which an interrupted run accumulated along a path the
   resumed run does not retrace.  Flips, by contrast, reference races
   by {!Race.key} — the slice's race list is the lookup table. *)

module J = Telemetry.Json
module Iid = Ksim.Access.Iid
module Schedule = Hypervisor.Schedule

type flip = {
  f_race : string;
  f_verdict : [ `Root_cause | `Benign ];
  f_pruned : string option;
  f_enforced : bool;
  f_disappeared : string list;
  f_confidence : float;
}

type lifs_summary = {
  l_schedules : int;
  l_pruned : int;
  l_static_pruned : int;
  l_invariant_pruned : int;
  l_gain_reorderings : int;
  l_interleavings : int;
  l_simulated : float;
  l_executed_instrs : int;
}

type slice =
  | No_repro of {
      nr_threads : string list;
      nr_lifs : lifs_summary;
    }
  | Reproduced of {
      r_threads : string list;
      r_schedule : Schedule.preemption;
      r_lifs : lifs_summary;
      r_races : Race.t list;
      r_flips : flip list;
      r_ca_schedules : int;
      r_ca_simulated : float;
      r_ca_instrs : int;
      r_ca_elapsed : float;
      r_ca_complete : bool;
    }

type case_entry = {
  slices : slice list;
  complete : bool;
}

type t = {
  path : string;
  mutable cases : (string * case_entry) list;
}

let create path = { path; cases = [] }
let path t = t.path
let find_case t name = List.assoc_opt name t.cases

(* --- emission ----------------------------------------------------------- *)

let iid_json (i : Iid.t) =
  J.obj [ ("tid", J.int i.tid); ("label", J.str i.label);
          ("occ", J.int i.occ) ]

let addr_json : Ksim.Addr.t -> string = function
  | Ksim.Addr.Global name -> J.obj [ ("k", J.str "g"); ("name", J.str name) ]
  | Ksim.Addr.Field (o, f) ->
    J.obj [ ("k", J.str "f"); ("obj", J.int o); ("field", J.str f) ]
  | Ksim.Addr.Index (o, i) ->
    J.obj [ ("k", J.str "i"); ("obj", J.int o); ("idx", J.int i) ]
  | Ksim.Addr.Whole o -> J.obj [ ("k", J.str "w"); ("obj", J.int o) ]

let kind_tag = function
  | Ksim.Instr.Read -> "r"
  | Ksim.Instr.Write -> "w"
  | Ksim.Instr.Update -> "u"

let access_json (a : Ksim.Access.t) =
  J.obj
    [ ("tid", J.int a.iid.Iid.tid);
      ("label", J.str a.iid.Iid.label);
      ("occ", J.int a.iid.Iid.occ);
      ("addr", addr_json a.addr);
      ("kind", J.str (kind_tag a.kind));
      ("time", J.int a.time);
      ("held", J.str_list a.held) ]

let race_json (r : Race.t) =
  J.obj [ ("first", access_json r.first); ("second", access_json r.second) ]

let switch_json (s : Schedule.switch) =
  J.obj [ ("after", iid_json s.after); ("to", J.int s.switch_to) ]

let schedule_json (p : Schedule.preemption) =
  J.obj
    [ ("order", J.arr (List.map J.int p.order));
      ("switches", J.arr (List.map switch_json p.switches)) ]

let flip_json (f : flip) =
  J.obj
    [ ("race", J.str f.f_race);
      ("verdict",
       J.str (match f.f_verdict with
              | `Root_cause -> "root_cause"
              | `Benign -> "benign"));
      ("pruned", match f.f_pruned with Some p -> J.str p | None -> "null");
      ("enforced", J.bool f.f_enforced);
      ("disappeared", J.str_list f.f_disappeared);
      ("confidence", J.float f.f_confidence) ]

let lifs_json (l : lifs_summary) =
  J.obj
    [ ("schedules", J.int l.l_schedules);
      ("pruned", J.int l.l_pruned);
      ("static_pruned", J.int l.l_static_pruned);
      ("invariant_pruned", J.int l.l_invariant_pruned);
      ("gain_reorderings", J.int l.l_gain_reorderings);
      ("interleavings", J.int l.l_interleavings);
      ("simulated", J.float l.l_simulated);
      ("executed_instrs", J.int l.l_executed_instrs) ]

let slice_json = function
  | No_repro s ->
    J.obj
      [ ("kind", J.str "no_repro");
        ("threads", J.str_list s.nr_threads);
        ("lifs", lifs_json s.nr_lifs) ]
  | Reproduced s ->
    J.obj
      [ ("kind", J.str "reproduced");
        ("threads", J.str_list s.r_threads);
        ("schedule", schedule_json s.r_schedule);
        ("lifs", lifs_json s.r_lifs);
        ("races", J.arr (List.map race_json s.r_races));
        ("flips", J.arr (List.map flip_json s.r_flips));
        ("ca",
         J.obj
           [ ("schedules", J.int s.r_ca_schedules);
             ("simulated", J.float s.r_ca_simulated);
             ("instrs", J.int s.r_ca_instrs);
             ("elapsed", J.float s.r_ca_elapsed);
             ("complete", J.bool s.r_ca_complete) ]) ]

let to_string t =
  J.obj
    [ ("version", J.int 1);
      ("cases",
       J.obj
         (List.map
            (fun (name, e) ->
              ( name,
                J.obj
                  [ ("complete", J.bool e.complete);
                    ("slices", J.arr (List.map slice_json e.slices)) ] ))
            t.cases)) ]

(* Atomic save: a kill mid-write leaves the previous checkpoint. *)
let save t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp t.path

let set_case t name entry =
  t.cases <-
    (if List.mem_assoc name t.cases then
       List.map
         (fun (n, e) -> if String.equal n name then (n, entry) else (n, e))
         t.cases
     else t.cases @ [ (name, entry) ]);
  save t

(* --- parsing ------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt

let need what = function
  | Some v -> v
  | None -> bad "missing or ill-typed %s" what

let get k j = need k (J.member k j)
let get_str k j = need k (Option.bind (J.member k j) J.to_str)
let get_num k j = need k (Option.bind (J.member k j) J.to_num)
let get_int k j = int_of_float (get_num k j)
let get_bool k j = need k (Option.bind (J.member k j) J.to_bool)
let get_list k j = need k (Option.bind (J.member k j) J.to_list)

let get_strs k j =
  List.map (fun s -> need (k ^ " element") (J.to_str s)) (get_list k j)

let iid_of_json j =
  Iid.make ~tid:(get_int "tid" j) ~label:(get_str "label" j)
    ~occ:(get_int "occ" j)

let addr_of_json j : Ksim.Addr.t =
  match get_str "k" j with
  | "g" -> Ksim.Addr.Global (get_str "name" j)
  | "f" -> Ksim.Addr.Field (get_int "obj" j, get_str "field" j)
  | "i" -> Ksim.Addr.Index (get_int "obj" j, get_int "idx" j)
  | "w" -> Ksim.Addr.Whole (get_int "obj" j)
  | k -> bad "unknown addr kind %S" k

let kind_of_tag = function
  | "r" -> Ksim.Instr.Read
  | "w" -> Ksim.Instr.Write
  | "u" -> Ksim.Instr.Update
  | k -> bad "unknown access kind %S" k

let access_of_json j : Ksim.Access.t =
  { Ksim.Access.iid = iid_of_json j;
    addr = addr_of_json (get "addr" j);
    kind = kind_of_tag (get_str "kind" j);
    time = get_int "time" j;
    held = get_strs "held" j }

let race_of_json j : Race.t =
  { Race.first = access_of_json (get "first" j);
    second = access_of_json (get "second" j) }

let switch_of_json j : Schedule.switch =
  { Schedule.after = iid_of_json (get "after" j);
    switch_to = get_int "to" j }

let schedule_of_json j : Schedule.preemption =
  { Schedule.order = List.map (fun n -> int_of_float (need "order" (J.to_num n)))
      (get_list "order" j);
    switches = List.map switch_of_json (get_list "switches" j) }

let flip_of_json j : flip =
  { f_race = get_str "race" j;
    f_verdict =
      (match get_str "verdict" j with
      | "root_cause" -> `Root_cause
      | "benign" -> `Benign
      | v -> bad "unknown verdict %S" v);
    f_pruned = Option.bind (J.member "pruned" j) J.to_str;
    f_enforced = get_bool "enforced" j;
    f_disappeared = get_strs "disappeared" j;
    f_confidence = get_num "confidence" j }

(* Absent in journals written before the invariant/gain counters were
   added; such runs executed without them, so zero is exact. *)
let get_int_opt k j =
  match Option.bind (J.member k j) J.to_num with
  | Some f -> int_of_float f
  | None -> 0

let lifs_of_json j : lifs_summary =
  { l_schedules = get_int "schedules" j;
    l_pruned = get_int "pruned" j;
    l_static_pruned = get_int "static_pruned" j;
    l_invariant_pruned = get_int_opt "invariant_pruned" j;
    l_gain_reorderings = get_int_opt "gain_reorderings" j;
    l_interleavings = get_int "interleavings" j;
    l_simulated = get_num "simulated" j;
    l_executed_instrs = get_int "executed_instrs" j }

let slice_of_json j : slice =
  match get_str "kind" j with
  | "no_repro" ->
    No_repro
      { nr_threads = get_strs "threads" j;
        nr_lifs = lifs_of_json (get "lifs" j) }
  | "reproduced" ->
    let ca = get "ca" j in
    Reproduced
      { r_threads = get_strs "threads" j;
        r_schedule = schedule_of_json (get "schedule" j);
        r_lifs = lifs_of_json (get "lifs" j);
        r_races = List.map race_of_json (get_list "races" j);
        r_flips = List.map flip_of_json (get_list "flips" j);
        r_ca_schedules = get_int "schedules" ca;
        r_ca_simulated = get_num "simulated" ca;
        r_ca_instrs = get_int "instrs" ca;
        r_ca_elapsed = get_num "elapsed" ca;
        r_ca_complete = get_bool "complete" ca }
  | k -> bad "unknown slice kind %S" k

let case_of_json j : case_entry =
  { complete = get_bool "complete" j;
    slices = List.map slice_of_json (get_list "slices" j) }

let of_json path j =
  (match J.member "version" j with
  | Some v when J.to_num v = Some 1. -> ()
  | Some _ -> bad "unsupported journal version"
  | None -> bad "missing journal version");
  let cases =
    match get "cases" j with
    | J.Obj fields -> List.map (fun (n, c) -> (n, case_of_json c)) fields
    | _ -> bad "cases is not an object"
  in
  { path; cases }

let load path =
  if not (Sys.file_exists path) then Ok (create path)
  else
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    match J.of_string text with
    | Error e -> Error (Fmt.str "%s: %s" path e)
    | Ok j -> (
      match of_json path j with
      | t -> Ok t
      | exception Bad msg -> Error (Fmt.str "%s: %s" path msg))
