(* Running schedules on a VM and harvesting what AITIA needs from the
   run: the trace, the access database updates, and the races. *)

type run = {
  schedule_kind : [ `Preemption | `Plan ];
  outcome : Hypervisor.Controller.outcome;
}

(* Prologue threads (resource-setup system calls pulled in by the slicer)
   are forced to run to completion, in order, before the interesting
   threads; we wrap the policy. *)
let with_prologue (prologue : int list) (policy : Hypervisor.Controller.policy)
    : Hypervisor.Controller.policy =
 fun m runnable ->
  let rec pick = function
    | [] -> policy m runnable
    | tid :: rest ->
      if Ksim.Machine.is_done m tid then pick rest
      else if List.mem tid runnable then Some tid
      else None (* prologue blocked: give up *)
  in
  pick prologue

let run_preemption ?max_steps ?(prologue = []) (vm : Hypervisor.Vm.t)
    (sched : Hypervisor.Schedule.preemption) : run =
  Telemetry.Probe.with_span ~cat:"executor" "executor.preemption"
  @@ fun () ->
  Telemetry.Probe.count "executor.preemption_runs";
  let policy =
    with_prologue prologue (Hypervisor.Schedule.preemption_policy sched)
  in
  let outcome = Hypervisor.Vm.run ?max_steps vm policy in
  { schedule_kind = `Preemption; outcome }

let run_plan ?max_steps ?(prologue = []) (vm : Hypervisor.Vm.t)
    (plan : Hypervisor.Schedule.plan) : run =
  Telemetry.Probe.with_span ~cat:"executor" "executor.plan" @@ fun () ->
  Telemetry.Probe.count "executor.plan_runs";
  let policy = with_prologue prologue (Hypervisor.Schedule.plan_policy plan) in
  let outcome = Hypervisor.Vm.run ?max_steps vm policy in
  { schedule_kind = `Plan; outcome }

(* Update the cross-run access database from a run, keyed by stable
   thread base names. *)
let learn (db : Ksim.Kcov.db) (r : run) : Ksim.Kcov.db =
  let final = r.outcome.final in
  let thread_base tid = Ksim.Machine.thread_base final tid in
  Ksim.Kcov.add_trace ~thread_base db r.outcome.trace

let failed (r : run) =
  match r.outcome.verdict with
  | Hypervisor.Controller.Failed f -> Some f
  | _ -> None
