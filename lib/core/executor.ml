(* Running schedules on a VM and harvesting what AITIA needs from the
   run: the trace, the access database updates, and the races.

   Under fault injection (Hypervisor.Faults armed on the VM) every run
   goes through a resilience driver:

   - detectable transient faults (boot failures, hangs, missed
     preemptions, spurious switches) taint the attempt, which is
     retried with exponential backoff — modeled seconds charged to the
     VM cost model, never host sleeps;
   - snapshot-restore corruption is detected at the restore site: the
     bad cache entry is poisoned and the run degrades to the reboot
     path, no retry needed;
   - outcome flaps are undetectable on a single run, so when flaps are
     possible a clean run's verdict is confirmed by quorum: independent
     clean re-executions vote and the majority class wins, early-exit
     once a majority is certain (two agreeing runs, in the common
     case).  The accepted run is the earliest clean run of the winning
     class, and [confidence] is the vote share.

   Without faults the driver is bypassed entirely and every path is
   bit-identical to the fault-free build. *)

type run = {
  schedule_kind : [ `Preemption | `Plan ];
  outcome : Hypervisor.Controller.outcome;
  confidence : float;
}

(* Prologue threads (resource-setup system calls pulled in by the slicer)
   are forced to run to completion, in order, before the interesting
   threads; we wrap the policy. *)
let with_prologue (prologue : int list) (policy : Hypervisor.Controller.policy)
    : Hypervisor.Controller.policy =
 fun m runnable ->
  let rec pick = function
    | [] -> policy m runnable
    | tid :: rest ->
      if Ksim.Machine.is_done m tid then pick rest
      else if List.mem tid runnable then Some tid
      else None (* prologue blocked: give up *)
  in
  pick prologue

(* Capture a snapshot after every executed step: the machine plus the
   enforcement policy's dumped state, newest first. *)
let capture dump snaps_rev : Hypervisor.Controller.observer =
 fun m trace_rev steps ->
  let queue, pending = dump () in
  snaps_rev :=
    { Hypervisor.Snapshots.machine = m; trace_rev; steps; queue; pending }
    :: !snaps_rev

(* --- the resilience driver -------------------------------------------- *)

let no_retry =
  { Resilience.max_retries = 0; quorum = 1; backoff_base = 0. }

(* Verdict equivalence class for quorum voting: failures vote by their
   concrete failure (symptom and faulting instruction), every other
   verdict by its name. *)
let verdict_class (o : Hypervisor.Controller.outcome) =
  match o.verdict with
  | Hypervisor.Controller.Failed f -> "failed:" ^ Ksim.Failure.to_string f
  | v -> Hypervisor.Controller.verdict_name v

(* When even the retry budget cannot produce a booted run, synthesize a
   zero-step aborted outcome: diagnosis proceeds (degraded) instead of
   crashing or hanging. *)
let aborted kind (vm : Hypervisor.Vm.t) =
  { schedule_kind = kind;
    outcome =
      { Hypervisor.Controller.verdict = Hypervisor.Controller.Step_limit;
        trace = [];
        final =
          Ksim.Engine.boot (Hypervisor.Vm.engine vm) (Hypervisor.Vm.group vm);
        steps = 0 };
    confidence = 0. }

type attempt_outcome = Clean of run | Exhausted of run option

let resilient ?resilience ~kind (vm : Hypervisor.Vm.t)
    (attempt : unit -> run) : run =
  match Hypervisor.Vm.faults vm with
  | None -> attempt ()
  | Some f ->
    let policy, stats =
      match (resilience : Resilience.t option) with
      | Some r -> (r.policy, Some r.stats)
      | None -> (no_retry, None)
    in
    (* One clean (untainted) run, retrying tainted or boot-aborted
       attempts with exponential backoff until the budget runs out. *)
    let rec clean_attempt k =
      Hypervisor.Faults.start_attempt f;
      let res =
        match attempt () with
        | r -> Some r
        | exception Hypervisor.Vm.Boot_failure -> None
      in
      let tainted = Hypervisor.Faults.tainted f || res = None in
      match (tainted, res) with
      | false, Some r -> Clean r
      | false, None -> assert false (* a boot abort always taints *)
      | true, _ ->
        if k < policy.max_retries then (
          (match stats with
          | Some s -> s.retries <- s.retries + 1
          | None -> ());
          Telemetry.Probe.count "resilience.retries";
          let delay = policy.backoff_base *. (2. ** float_of_int k) in
          if delay > 0. then (
            Hypervisor.Vm.penalize vm delay;
            match stats with
            | Some s -> s.backoff_simulated <- s.backoff_simulated +. delay
            | None -> ());
          clean_attempt (k + 1))
        else Exhausted res
    in
    let give_up res =
      (match stats with
      | Some s -> s.gave_up <- s.gave_up + 1
      | None -> ());
      Telemetry.Probe.count "resilience.gave_up";
      match res with
      | Some r -> { r with confidence = 0. }
      | None -> aborted kind vm
    in
    let quorum_vote first =
      (* Gather clean runs until some verdict class holds a certain
         majority of the quorum, voting stops early, or the retry
         budget dies mid-quorum. *)
      let need = (policy.quorum / 2) + 1 in
      let votes = ref [ first ] in
      let exhausted = ref false in
      let count c =
        List.length
          (List.filter
             (fun r -> String.equal (verdict_class r.outcome) c)
             !votes)
      in
      let decided () =
        List.exists (fun r -> count (verdict_class r.outcome) >= need) !votes
      in
      while
        (not !exhausted) && (not (decided ()))
        && List.length !votes < policy.quorum
      do
        match clean_attempt 0 with
        | Clean r ->
          (match stats with
          | Some s -> s.quorum_runs <- s.quorum_runs + 1
          | None -> ());
          Telemetry.Probe.count "resilience.quorum_runs";
          votes := !votes @ [ r ]
        | Exhausted _ ->
          exhausted := true;
          (match stats with
          | Some s -> s.gave_up <- s.gave_up + 1
          | None -> ());
          Telemetry.Probe.count "resilience.gave_up"
      done;
      (* Majority class, ties broken by earliest appearance; the
         accepted run is the earliest clean run of that class, so a
         genuine (unflapped) run is returned whenever the majority is
         genuine. *)
      let best =
        List.fold_left
          (fun acc r ->
            let c = verdict_class r.outcome in
            match acc with
            | Some b when count b >= count c -> acc
            | _ -> Some c)
          None !votes
      in
      let best = Option.get best in
      let representative =
        List.find
          (fun r -> String.equal (verdict_class r.outcome) best)
          !votes
      in
      let agree = count best and tot = List.length !votes in
      let confidence = float_of_int agree /. float_of_int tot in
      if agree < tot then (
        (match stats with
        | Some s ->
          s.quorum_disagreements <- s.quorum_disagreements + 1;
          s.low_confidence <- s.low_confidence + 1
        | None -> ());
        Telemetry.Probe.count "resilience.quorum_disagreements");
      { representative with confidence }
    in
    (match clean_attempt 0 with
    | Exhausted res -> give_up res
    | Clean r ->
      if Hypervisor.Faults.flappy f && policy.quorum > 1 then quorum_vote r
      else r)

let run_preemption ?max_steps ?(prologue = []) ?snapshots ?resilience
    (vm : Hypervisor.Vm.t) (sched : Hypervisor.Schedule.preemption) : run =
  Telemetry.Probe.with_span ~cat:"executor" "executor.preemption"
  @@ fun () ->
  Telemetry.Probe.count "executor.preemption_runs";
  let faults = Hypervisor.Vm.faults vm in
  let attempt () =
    (* An injected breakpoint miss rewrites the schedule the hypervisor
       actually enforces.  A perturbed attempt must not touch the cache:
       neither look up (the prefix belongs to the unperturbed schedule)
       nor store (the vector would be filed under the wrong key). *)
    let enforced, missed =
      match faults with
      | Some f ->
        let switches, missed =
          Hypervisor.Faults.drop_switches f sched.Hypervisor.Schedule.switches
        in
        ({ sched with Hypervisor.Schedule.switches }, missed)
      | None -> (sched, false)
    in
    match snapshots with
    | Some cache when Hypervisor.Snapshots.enabled cache && not missed ->
      let key = Hypervisor.Schedule.preemption_key enforced in
      let snaps_rev = ref [] in
      let fresh () =
        let policy, dump =
          Hypervisor.Schedule.preemption_policy_tracked enforced
        in
        let policy = with_prologue prologue policy in
        ( Hypervisor.Vm.run ?max_steps ~observe:(capture dump snaps_rev) vm
            policy,
          [||],
          None )
      in
      let outcome, base, parent =
        match Hypervisor.Snapshots.find_preemption cache enforced with
        | Some hit ->
          if
            match faults with
            | Some f -> Hypervisor.Faults.corrupt_restore f
            | None -> false
          then (
            (* Detected restore corruption: poison the source vector so
               nothing restores from it again, and degrade this run to
               the reboot path. *)
            Hypervisor.Snapshots.poison cache ~key:hit.vector_key;
            fresh ())
          else
            let policy, dump =
              Hypervisor.Schedule.resume_policy ~queue:hit.resume_queue
                ~switches:hit.resume_switches
            in
            let policy = with_prologue prologue policy in
            ( Hypervisor.Vm.resume ?max_steps
                ~observe:(capture dump snaps_rev) vm hit.start policy,
              hit.base,
              (* Remember where the base prefix came from: if that
                 vector gets poisoned by a concurrent worker before we
                 store, the store must be dropped. *)
              Some (hit.vector_key, hit.parent_generation) )
        | None -> fresh ()
      in
      (* A tainted run executed perturbed steps (hang truncation is
         harmless but incomplete; a spurious switch diverges from the
         schedule): never store its snapshots. *)
      let store_ok =
        match faults with
        | Some f -> not (Hypervisor.Faults.tainted f)
        | None -> true
      in
      if store_ok then
        Hypervisor.Snapshots.store cache ~key ?parent ~base
          ~suffix_rev:!snaps_rev ();
      { schedule_kind = `Preemption; outcome; confidence = 1. }
    | Some _ | None ->
      let policy =
        with_prologue prologue (Hypervisor.Schedule.preemption_policy enforced)
      in
      let outcome = Hypervisor.Vm.run ?max_steps vm policy in
      { schedule_kind = `Preemption; outcome; confidence = 1. }
  in
  match faults with
  | None -> attempt ()
  | Some _ -> resilient ?resilience ~kind:`Preemption vm attempt

(* Plan runs (Causality Analysis flips) only look snapshots up — each
   flip is executed once, so caching its own suffix buys nothing; the
   payoff is restoring the failure run's prefix under [key] instead of
   rebooting. *)
let run_plan ?max_steps ?(prologue = []) ?snapshots ?resilience
    (vm : Hypervisor.Vm.t) (plan : Hypervisor.Schedule.plan) : run =
  Telemetry.Probe.with_span ~cat:"executor" "executor.plan" @@ fun () ->
  Telemetry.Probe.count "executor.plan_runs";
  let faults = Hypervisor.Vm.faults vm in
  let attempt () =
    let enforced, missed =
      match faults with
      | Some f -> Hypervisor.Faults.drop_plan_event f plan
      | None -> (plan, false)
    in
    let fresh () =
      let policy =
        with_prologue prologue (Hypervisor.Schedule.plan_policy enforced)
      in
      let outcome = Hypervisor.Vm.run ?max_steps vm policy in
      { schedule_kind = `Plan; outcome; confidence = 1. }
    in
    match snapshots with
    | Some (cache, key) when Hypervisor.Snapshots.enabled cache && not missed
      -> (
      match Hypervisor.Snapshots.find_plan cache ~key enforced with
      | Some hit ->
        if
          match faults with
          | Some f -> Hypervisor.Faults.corrupt_restore f
          | None -> false
        then (
          Hypervisor.Snapshots.poison cache ~key;
          fresh ())
        else
          let policy =
            with_prologue prologue (Hypervisor.Schedule.plan_policy hit.suffix)
          in
          let outcome =
            Hypervisor.Vm.resume ?max_steps vm hit.plan_start policy
          in
          { schedule_kind = `Plan; outcome; confidence = 1. }
      | None -> fresh ())
    | Some _ | None -> fresh ()
  in
  match faults with
  | None -> attempt ()
  | Some _ -> resilient ?resilience ~kind:`Plan vm attempt

(* Update the cross-run access database from a run, keyed by stable
   thread base names. *)
let learn (db : Ksim.Kcov.db) (r : run) : Ksim.Kcov.db =
  let final = r.outcome.final in
  let thread_base tid = Ksim.Machine.thread_base final tid in
  Ksim.Kcov.add_trace ~thread_base db r.outcome.trace

let failed (r : run) =
  match r.outcome.verdict with
  | Hypervisor.Controller.Failed f -> Some f
  | _ -> None
