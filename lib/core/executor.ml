(* Running schedules on a VM and harvesting what AITIA needs from the
   run: the trace, the access database updates, and the races. *)

type run = {
  schedule_kind : [ `Preemption | `Plan ];
  outcome : Hypervisor.Controller.outcome;
}

(* Prologue threads (resource-setup system calls pulled in by the slicer)
   are forced to run to completion, in order, before the interesting
   threads; we wrap the policy. *)
let with_prologue (prologue : int list) (policy : Hypervisor.Controller.policy)
    : Hypervisor.Controller.policy =
 fun m runnable ->
  let rec pick = function
    | [] -> policy m runnable
    | tid :: rest ->
      if Ksim.Machine.is_done m tid then pick rest
      else if List.mem tid runnable then Some tid
      else None (* prologue blocked: give up *)
  in
  pick prologue

(* Capture a snapshot after every executed step: the machine plus the
   enforcement policy's dumped state, newest first. *)
let capture dump snaps_rev : Hypervisor.Controller.observer =
 fun m trace_rev steps ->
  let queue, pending = dump () in
  snaps_rev :=
    { Hypervisor.Snapshots.machine = m; trace_rev; steps; queue; pending }
    :: !snaps_rev

let run_preemption ?max_steps ?(prologue = []) ?snapshots
    (vm : Hypervisor.Vm.t) (sched : Hypervisor.Schedule.preemption) : run =
  Telemetry.Probe.with_span ~cat:"executor" "executor.preemption"
  @@ fun () ->
  Telemetry.Probe.count "executor.preemption_runs";
  match snapshots with
  | Some cache when Hypervisor.Snapshots.enabled cache ->
    let key = Hypervisor.Schedule.preemption_key sched in
    let snaps_rev = ref [] in
    let outcome, base =
      match Hypervisor.Snapshots.find_preemption cache sched with
      | Some hit ->
        let policy, dump =
          Hypervisor.Schedule.resume_policy ~queue:hit.resume_queue
            ~switches:hit.resume_switches
        in
        let policy = with_prologue prologue policy in
        ( Hypervisor.Vm.resume ?max_steps ~observe:(capture dump snaps_rev)
            vm hit.start policy,
          hit.base )
      | None ->
        let policy, dump =
          Hypervisor.Schedule.preemption_policy_tracked sched
        in
        let policy = with_prologue prologue policy in
        ( Hypervisor.Vm.run ?max_steps ~observe:(capture dump snaps_rev) vm
            policy,
          [||] )
    in
    Hypervisor.Snapshots.store cache ~key ~base ~suffix_rev:!snaps_rev;
    { schedule_kind = `Preemption; outcome }
  | Some _ | None ->
    let policy =
      with_prologue prologue (Hypervisor.Schedule.preemption_policy sched)
    in
    let outcome = Hypervisor.Vm.run ?max_steps vm policy in
    { schedule_kind = `Preemption; outcome }

(* Plan runs (Causality Analysis flips) only look snapshots up — each
   flip is executed once, so caching its own suffix buys nothing; the
   payoff is restoring the failure run's prefix under [key] instead of
   rebooting. *)
let run_plan ?max_steps ?(prologue = []) ?snapshots (vm : Hypervisor.Vm.t)
    (plan : Hypervisor.Schedule.plan) : run =
  Telemetry.Probe.with_span ~cat:"executor" "executor.plan" @@ fun () ->
  Telemetry.Probe.count "executor.plan_runs";
  let fresh () =
    let policy =
      with_prologue prologue (Hypervisor.Schedule.plan_policy plan)
    in
    let outcome = Hypervisor.Vm.run ?max_steps vm policy in
    { schedule_kind = `Plan; outcome }
  in
  match snapshots with
  | Some (cache, key) when Hypervisor.Snapshots.enabled cache -> (
    match Hypervisor.Snapshots.find_plan cache ~key plan with
    | Some hit ->
      let policy =
        with_prologue prologue (Hypervisor.Schedule.plan_policy hit.suffix)
      in
      let outcome = Hypervisor.Vm.resume ?max_steps vm hit.plan_start policy in
      { schedule_kind = `Plan; outcome }
    | None -> fresh ())
  | Some _ | None -> fresh ()

(* Update the cross-run access database from a run, keyed by stable
   thread base names. *)
let learn (db : Ksim.Kcov.db) (r : run) : Ksim.Kcov.db =
  let final = r.outcome.final in
  let thread_base tid = Ksim.Machine.thread_base final tid in
  Ksim.Kcov.add_trace ~thread_base db r.outcome.trace

let failed (r : run) =
  match r.outcome.verdict with
  | Hypervisor.Controller.Failed f -> Some f
  | _ -> None
