(** Resumable diagnosis journal.

    [Diagnose] checkpoints per-slice and per-flip progress into a JSON
    file as it works; an interrupted diagnosis restarted with the same
    journal replays the recorded results instead of re-executing them —
    finished slices are skipped entirely, the reproducing schedule is
    re-run once (to rebuild the machine state the flips permute), and
    journaled flip verdicts feed Causality Analysis through its
    [replay] hook.  The final report is identical to an uninterrupted
    run; only the re-executed instruction count drops.

    Saves are atomic (write-to-temp then rename), so a kill mid-save
    leaves the previous checkpoint intact. *)

(** The journaled verdict of one Causality flip.  Races are stored by
    {!Race.key} next to the slice's full race list, which carries the
    endpoint data. *)
type flip = {
  f_race : string;  (** {!Race.key} of the flipped race *)
  f_verdict : [ `Root_cause | `Benign ];
  f_pruned : string option;
  f_enforced : bool;
  f_disappeared : string list;  (** {!Race.key}s absent from the flip run *)
  f_confidence : float;
}

type lifs_summary = {
  l_schedules : int;
  l_pruned : int;
  l_static_pruned : int;
  l_invariant_pruned : int;
      (** 0 when replaying a journal written before the counter existed *)
  l_gain_reorderings : int;  (** likewise optional on read, default 0 *)
  l_interleavings : int;
  l_simulated : float;
  l_executed_instrs : int;
}

(** One attempted slice of a case, in attempt order. *)
type slice =
  | No_repro of {
      nr_threads : string list;  (** thread names of the slice *)
      nr_lifs : lifs_summary;
    }
  | Reproduced of {
      r_threads : string list;
      r_schedule : Hypervisor.Schedule.preemption;
          (** the failure-reproducing schedule found by LIFS *)
      r_lifs : lifs_summary;
      r_races : Race.t list;  (** full test set, endpoint data included *)
      r_flips : flip list;    (** journaled so far, in testing order *)
      r_ca_schedules : int;
      r_ca_simulated : float;
      r_ca_instrs : int;
      r_ca_elapsed : float;
      r_ca_complete : bool;   (** every flip of [r_races] is journaled *)
    }

type case_entry = {
  slices : slice list;
  complete : bool;  (** the case's diagnosis finished *)
}

type t

val create : string -> t
(** A fresh, empty journal that will save to the given path.  Nothing
    is written until the first {!save} / {!set_case}. *)

val load : string -> (t, string) result
(** Load an existing journal; a missing file yields a fresh journal
    (resuming from nothing is starting over), a malformed one is an
    [Error] with a parse message. *)

val path : t -> string
val save : t -> unit
val find_case : t -> string -> case_entry option

val set_case : t -> string -> case_entry -> unit
(** Replace (or append) the entry for a case and save immediately. *)
