(** Causality chains — the root cause as AITIA reports it.

    A chain is an ordered sequence of groups of data races: races in one
    group jointly steer the control flow enabling the next group (the
    conjunctions of Figure 3), and the final group enables the failure.
    "If a fix does not allow one of the interleaving orders in the
    chain, it does not incur a failure." *)

type node = {
  race : Race.t;
  ambiguous : bool;
  confidence : float;
      (** resilience confidence of the root-cause verdict; 1.0 unless
          fault-injected re-runs disagreed or the budget was exhausted *)
}

type t = {
  groups : node list list;  (** earliest first; last group -> failure *)
  failure : Ksim.Failure.t;
}

val races : t -> Race.t list
val length : t -> int
val has_ambiguity : t -> bool

val min_confidence : t -> float
(** The weakest verdict confidence in the chain (1.0 when empty). *)

val certain : float -> bool
(** Full confidence within rendering epsilon ([>= 0.999]); certain
    nodes print without any confidence annotation, so fault-free chains
    are byte-identical to the pre-resilience rendering. *)

val of_causality : Causality.result -> failure:Ksim.Failure.t -> t
(** Conjunction groups come from mutual causality edges or identical
    successor sets; ambiguous races are excluded from the chain (they
    are reported alongside it, §3.4). *)

val pp_node : node Fmt.t
val pp : t Fmt.t
val to_string : t -> string
val pp_detailed : t Fmt.t
