(* The AITIA manager (§4.1): modeling -> reproducing -> diagnosing.

   Input: a case — the kernel program group (our guest image), the ftrace
   execution history, and the crash report.  The manager slices the
   history backward from the failure, realizes each slice as a guest
   workload, runs LIFS until the failure is reproduced, then runs
   Causality Analysis and assembles the causality chain.

   Two orthogonal robustness layers ride on top of the pipeline:

   - {e fault injection / resilience}: when the case's VMs carry a
     [Hypervisor.Faults] harness, every execution goes through the
     resilient executor (retry with backoff, quorum confirmation), and
     the report says whether any decision was accepted degraded;

   - {e the diagnosis journal}: with [journal], per-slice and per-flip
     progress is checkpointed to disk as it happens, and a rerun over
     the same journal replays recorded results instead of re-executing
     them — finished slices are skipped, the reproducing schedule is
     re-run once to rebuild the machine state the flips permute, and
     journaled flip verdicts feed Causality Analysis directly. *)

let src = Logs.Src.create "aitia.diagnose" ~doc:"The AITIA manager"

module Log = (val Logs.src_log src : Logs.LOG)

type case = {
  case_name : string;
  subsystem : string;
  group : Ksim.Program.group;     (* all modeled threads (the guest) *)
  history : Trace.History.t;
}

type metrics = {
  mem_accessing_instrs : int;  (* access events in the failed execution *)
  races_detected : int;        (* individual data races in it *)
  races_in_chain : int;        (* after Causality Analysis *)
}

type report = {
  case : case;
  slices_tried : int;
  slice_threads : string list;  (* threads of the reproducing slice *)
  lifs : Lifs.result;
  causality : Causality.result option;
  chain : Chain.t option;
  metrics : metrics option;
  degraded : bool;              (* some decision exhausted its budget or
                                   was accepted below full agreement *)
  resilience : Resilience.t option;
  faults_injected : int;        (* faults injected during this diagnosis *)
}

let reproduced r = r.chain <> None

(* Restrict the case's guest to the threads named by a slice; threads
   pulled in by resource closure become the serial prologue. *)
let realize (case : case) (slice : Trace.Slicer.t) :
    (Ksim.Program.group * int list) option =
  let episode_names =
    List.map (fun (e : Trace.History.episode) -> e.thread) slice.episodes
  in
  let setup_names =
    List.map (fun (e : Trace.History.episode) -> e.thread) slice.setup
  in
  let spec_named n (s : Ksim.Program.thread_spec) =
    String.equal s.spec_name n
  in
  let find n = List.find_opt (spec_named n) case.group.Ksim.Program.threads in
  let setup_specs = List.filter_map find setup_names in
  let main_specs = List.filter_map find episode_names in
  (* Background-thread episodes have no top-level spec: they are spawned
     by the syscalls at runtime, so they need no realization. *)
  if main_specs = [] then None
  else
    let threads = setup_specs @ main_specs in
    let prologue = List.mapi (fun i _ -> i) setup_specs in
    Some ({ case.group with Ksim.Program.threads }, prologue)

let empty_lifs_result () : Lifs.result =
  { found = None;
    stats = { schedules = 0; pruned = 0; static_pruned = 0;
              invariant_pruned = 0; gain_reorderings = 0;
              interleavings = 0; elapsed = 0.; simulated = 0.;
              executed_instrs = 0 };
    db = Ksim.Kcov.empty;
    runs = [] }

(* Static lockset/MHP hints for a realized slice: the prologue threads
   are the serial part, everything else may interleave. *)
let hints_of_group (group : Ksim.Program.group) (prologue : int list) :
    Analysis.Summary.hints =
  let serial =
    List.filteri (fun i _ -> List.mem i prologue)
      group.Ksim.Program.threads
    |> List.map (fun (s : Ksim.Program.thread_spec) -> s.spec_name)
  in
  Analysis.Summary.hints (Analysis.Candidates.analyze ~serial group)

(* --- journal conversions ------------------------------------------------ *)

let summary_of_lifs (s : Lifs.stats) : Journal.lifs_summary =
  { l_schedules = s.schedules;
    l_pruned = s.pruned;
    l_static_pruned = s.static_pruned;
    l_invariant_pruned = s.invariant_pruned;
    l_gain_reorderings = s.gain_reorderings;
    l_interleavings = s.interleavings;
    l_simulated = s.simulated;
    l_executed_instrs = s.executed_instrs }

(* Elapsed host time is not replayable (and not reported); everything
   the report prints is journaled. *)
let lifs_stats_of_summary (s : Journal.lifs_summary) : Lifs.stats =
  { schedules = s.l_schedules;
    pruned = s.l_pruned;
    static_pruned = s.l_static_pruned;
    invariant_pruned = s.l_invariant_pruned;
    gain_reorderings = s.l_gain_reorderings;
    interleavings = s.l_interleavings;
    elapsed = 0.;
    simulated = s.l_simulated;
    executed_instrs = s.l_executed_instrs }

let flip_of_tested (t : Causality.tested) : Journal.flip =
  { f_race = Race.key t.race;
    f_verdict =
      (match t.verdict with
      | Causality.Root_cause -> `Root_cause
      | Causality.Benign -> `Benign);
    f_pruned = t.pruned;
    f_enforced = t.enforced;
    f_disappeared = List.map Race.key t.disappeared;
    f_confidence = t.confidence }

(* Rebuild a tested record from its journaled verdict.  [ambiguous] is
   left false — {!Causality.analyze} recomputes ambiguity over the full
   tested list, replayed or not — and the flip outcome is gone (only
   its consequences were journaled).  [None] when the journaled race
   key no longer matches the test set (stale journal): the flip then
   re-executes. *)
let tested_of_flip (races : Race.t list) (fl : Journal.flip) :
    Causality.tested option =
  match
    List.find_opt (fun r -> String.equal (Race.key r) fl.f_race) races
  with
  | None -> None
  | Some race ->
    Some
      { Causality.race;
        verdict =
          (match fl.f_verdict with
          | `Root_cause -> Causality.Root_cause
          | `Benign -> Causality.Benign);
        flip_outcome = None;
        pruned = fl.f_pruned;
        disappeared =
          List.filter
            (fun r -> List.mem (Race.key r) fl.f_disappeared)
            races;
        ambiguous = false;
        enforced = fl.f_enforced;
        confidence = fl.f_confidence }

let diagnose ?max_interleavings ?max_steps ?(static_hints = false)
    ?prune:prune_opt ?(order = (`Fixed : Causality.order))
    ?(jobs = 1) ?(snapshot_cache = false) ?snapshot_budget
    ?(slice_order = `Nearest_first) ?faults ?resilience:rpolicy ?journal
    ?(engine = Ksim.Engine.default) (case : case) : report =
  Telemetry.Probe.with_span ~cat:"diagnose" "diagnose"
    ~args:[ ("case", case.case_name) ]
  @@ fun () ->
  (* One worker pool for the whole diagnosis; LIFS and Causality
     Analysis decline it themselves under [`Gain] or fault injection. *)
  let pool =
    if jobs > 1 then Some (Hypervisor.Pool.create ~jobs) else None
  in
  (* [static_hints] is the pre-[--prune] spelling of [`Flipfeas]. *)
  let prune : Causality.prune =
    match prune_opt with
    | Some p -> p
    | None -> if static_hints then `Flipfeas else `None
  in
  (* With faults armed, a Resilience.t always exists — even a
     zero-retry policy must account give-ups and low-confidence
     verdicts so the report can say the diagnosis is degraded. *)
  let resilience =
    match faults with
    | Some _ -> Some (Resilience.create ?policy:rpolicy ())
    | None -> Option.map (fun p -> Resilience.create ~policy:p ()) rpolicy
  in
  let injected_before =
    match faults with Some f -> Hypervisor.Faults.injected f | None -> 0
  in
  let assemble ~slices_tried ~slice_threads ~lifs ~causality ~chain ~metrics
      =
    { case; slices_tried; slice_threads; lifs; causality; chain; metrics;
      degraded =
        (match resilience with
        | Some r -> Resilience.degraded r
        | None -> false);
      resilience;
      faults_injected =
        (match faults with
        | Some f -> Hypervisor.Faults.injected f - injected_before
        | None -> 0) }
  in
  (* Journal state: [recorded] is what a previous (interrupted) run left
     for this case, indexed by realized-attempt order; [jslices] is the
     entry being rebuilt by this run, newest first. *)
  let recorded =
    match journal with
    | None -> [||]
    | Some j -> (
      match Journal.find_case j case.case_name with
      | Some e -> Array.of_list e.Journal.slices
      | None -> [||])
  in
  let jslices = ref [] in
  let jsave ~complete =
    match journal with
    | None -> ()
    | Some j ->
      Journal.set_case j case.case_name
        { Journal.slices = List.rev !jslices; complete }
  in
  let crash = Trace.History.crash case.history in
  let target = Trace.Crash.matches crash in
  let slices = Trace.Slicer.slices case.history in
  (* Backward-from-failure is the paper's heuristic (§4.2); the reversed
     order exists for the ablation study. *)
  let slices =
    match slice_order with
    | `Nearest_first -> slices
    | `Farthest_first -> List.rev slices
  in
  (* When no slice reproduces, report the largest search performed (the
     last slice is often a trivial setup-only one). *)
  let widest a b =
    match a with
    | None -> Some b
    | Some (a' : Lifs.result) ->
      if b.Lifs.stats.schedules > a'.stats.schedules then Some b else a
  in
  (* Causality Analysis over a reproduced failure, journaling each flip
     as it is decided.  [prior_flips] are journaled verdicts from an
     interrupted run (empty on a fresh attempt); they replay without
     re-execution. *)
  let run_causality ~group ~prologue ~snapshots ~slice_threads
      ~(success : Lifs.success) ~(lifs : Lifs.result)
      ~(prior_flips : Journal.flip list)
      ~(stats_base : Causality.stats) =
    let ca_vm = Hypervisor.Vm.create ?faults ~engine group in
    let ca_snapshots =
      Option.map
        (fun cache ->
          (cache, Hypervisor.Schedule.preemption_key success.Lifs.schedule))
        snapshots
    in
    let flips = ref (List.rev prior_flips) in  (* newest first *)
    let pushed = ref false in
    let record ~(st : Causality.stats) ~complete_ca =
      if journal <> None then (
        let slice =
          Journal.Reproduced
            { r_threads = slice_threads;
              r_schedule = success.Lifs.schedule;
              r_lifs = summary_of_lifs lifs.Lifs.stats;
              r_races = success.Lifs.races;
              r_flips = List.rev !flips;
              r_ca_schedules = st.Causality.schedules;
              r_ca_simulated = st.Causality.simulated;
              r_ca_instrs = st.Causality.executed_instrs;
              r_ca_elapsed = st.Causality.elapsed;
              r_ca_complete = complete_ca }
        in
        (if !pushed then jslices := slice :: List.tl !jslices
         else (
           jslices := slice :: !jslices;
           pushed := true));
        (* The case is done exactly when CA finishes on the reproducing
           slice. *)
        jsave ~complete:complete_ca)
    in
    record ~st:stats_base ~complete_ca:false;
    let replay =
      if prior_flips = [] then None
      else (
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (fl : Journal.flip) -> Hashtbl.replace tbl fl.f_race fl)
          prior_flips;
        Some
          (fun (r : Race.t) ->
            Option.bind
              (Hashtbl.find_opt tbl (Race.key r))
              (tested_of_flip success.Lifs.races)))
    in
    let checkpoint =
      if journal = None then None
      else
        Some
          (fun t st ->
            flips := flip_of_tested t :: !flips;
            record ~st ~complete_ca:false)
    in
    let ca =
      Causality.analyze ?max_steps ~prologue ~prune ~order ?pool
        ?snapshots:ca_snapshots ?resilience ?replay ?checkpoint ~stats_base
        ca_vm ~failing:success.Lifs.outcome ~races:success.Lifs.races ()
    in
    if journal <> None then (
      (* The authoritative flip list (ambiguity resolved, replays
         included) supersedes the incremental checkpoints. *)
      flips := List.rev_map flip_of_tested ca.Causality.tested;
      record ~st:ca.Causality.stats ~complete_ca:true);
    let chain = Chain.of_causality ca ~failure:success.Lifs.failure in
    let metrics =
      { mem_accessing_instrs =
          List.length
            (Race.accesses_of_trace success.Lifs.outcome.trace);
        races_detected = List.length success.Lifs.races;
        races_in_chain = List.length ca.Causality.root_causes }
    in
    (ca, chain, metrics)
  in
  let rec try_slices tried last_lifs = function
    | [] ->
      jsave ~complete:true;
      assemble ~slices_tried:tried ~slice_threads:[]
        ~lifs:
          (match last_lifs with Some l -> l | None -> empty_lifs_result ())
        ~causality:None ~chain:None ~metrics:None
    | slice :: rest -> (
      match realize case slice with
      | None -> try_slices tried last_lifs rest
      | Some (group, prologue) -> (
        Log.info (fun m ->
            m "case %s: trying slice {%a}" case.case_name
              (Fmt.list ~sep:Fmt.comma Fmt.string)
              (Trace.Slicer.threads slice));
        Telemetry.Probe.count "diagnose.slices";
        let slice_threads = Trace.Slicer.threads slice in
        let recorded_slice =
          if tried < Array.length recorded then Some recorded.(tried)
          else None
        in
        let make_snapshots () =
          (* One snapshot cache per slice attempt: schedule keys are
             only meaningful within one realized group, and the LIFS
             vectors stay warm for Causality Analysis below. *)
          if snapshot_cache then
            Some (Hypervisor.Snapshots.create ?budget_bytes:snapshot_budget ())
          else None
        in
        (* The whole attempt — LIFS, and Causality Analysis on success
           — is one slice span; the recursion to the next slice happens
           outside it, so slice spans are siblings in the trace. *)
        let fresh () =
          let lifs_vm = Hypervisor.Vm.create ?faults ~engine group in
          (* Any pruning level brings the lockset hints; [`Invariants]
             adds the failure-relevance closure of the realized slice. *)
          let hints =
            if prune <> `None then Some (hints_of_group group prologue)
            else None
          in
          let invariants =
            match prune with
            | `Invariants -> Some (Analysis.Absdom.of_group group)
            | `None | `Flipfeas -> None
          in
          (* The thread holding the reported crash site, when the
             report names one: the gain scheduler runs its start
             orders first. *)
          let focus =
            match crash.Trace.Crash.location with
            | None -> None
            | Some label ->
              List.find_index
                (fun (spec : Ksim.Program.thread_spec) ->
                  List.mem label (Ksim.Program.labels spec.program))
                group.Ksim.Program.threads
          in
          let snapshots = make_snapshots () in
          let lifs =
            Lifs.search ?max_interleavings ?max_steps ~prologue
              ?static_hints:hints ?invariants ?focus ~order ?pool
              ?snapshots ?resilience lifs_vm ~target ()
          in
          match lifs.found with
          | None ->
            (if journal <> None then (
               jslices :=
                 Journal.No_repro
                   { nr_threads = slice_threads;
                     nr_lifs = summary_of_lifs lifs.stats }
                 :: !jslices;
               jsave ~complete:false));
            Error lifs
          | Some success ->
            let ca, chain, metrics =
              run_causality ~group ~prologue ~snapshots ~slice_threads
                ~success ~lifs ~prior_flips:[]
                ~stats_base:Causality.zero_stats
            in
            Ok
              (assemble ~slices_tried:(tried + 1) ~slice_threads ~lifs
                 ~causality:(Some ca) ~chain:(Some chain)
                 ~metrics:(Some metrics))
        in
        let attempt () =
          match recorded_slice with
          | Some (Journal.No_repro s)
            when s.nr_threads = slice_threads ->
            (* Journaled non-reproduction: skip the whole LIFS search. *)
            Telemetry.Probe.count "diagnose.slices_replayed";
            jslices := Journal.No_repro s :: !jslices;
            jsave ~complete:false;
            Error
              { Lifs.found = None;
                stats = lifs_stats_of_summary s.nr_lifs;
                db = Ksim.Kcov.empty;
                runs = [] }
          | Some (Journal.Reproduced s)
            when s.r_threads = slice_threads -> (
            (* Journaled reproduction: re-run only the recorded schedule
               to rebuild the machine state the flips permute. *)
            let lifs_vm = Hypervisor.Vm.create ?faults ~engine group in
            let snapshots = make_snapshots () in
            let r =
              Executor.run_preemption ?max_steps ~prologue ?snapshots
                ?resilience lifs_vm s.r_schedule
            in
            match Executor.failed r with
            | Some f when target f ->
              Telemetry.Probe.count "diagnose.slices_replayed";
              let success =
                { Lifs.schedule = s.r_schedule;
                  outcome = r.outcome;
                  failure = f;
                  races = s.r_races }
              in
              let lifs =
                { Lifs.found = Some success;
                  stats = lifs_stats_of_summary s.r_lifs;
                  db = Executor.learn Ksim.Kcov.empty r;
                  runs = [ (s.r_schedule, r.outcome) ] }
              in
              let stats_base =
                { Causality.zero_stats with
                  schedules = s.r_ca_schedules;
                  simulated = s.r_ca_simulated;
                  executed_instrs = s.r_ca_instrs;
                  elapsed = s.r_ca_elapsed }
              in
              let ca, chain, metrics =
                run_causality ~group ~prologue ~snapshots ~slice_threads
                  ~success ~lifs ~prior_flips:s.r_flips ~stats_base
              in
              Ok
                (assemble ~slices_tried:(tried + 1) ~slice_threads ~lifs
                   ~causality:(Some ca) ~chain:(Some chain)
                   ~metrics:(Some metrics))
            | Some _ | None ->
              Log.warn (fun m ->
                  m
                    "case %s: journaled schedule no longer reproduces \
                     (stale journal?); rediagnosing slice"
                    case.case_name);
              fresh ())
          | Some _ ->
            Log.warn (fun m ->
                m
                  "case %s: journaled slice does not match this attempt \
                   (stale journal?); rediagnosing slice"
                  case.case_name);
            fresh ()
          | None -> fresh ()
        in
        match
          Telemetry.Probe.with_span ~cat:"diagnose" "diagnose.slice"
            ~args:
              [ ("threads",
                 String.concat "," (Trace.Slicer.threads slice)) ]
            attempt
        with
        | Error lifs -> try_slices (tried + 1) (widest last_lifs lifs) rest
        | Ok report -> report))
  in
  try_slices 0 None slices
