(* The AITIA manager (§4.1): modeling -> reproducing -> diagnosing.

   Input: a case — the kernel program group (our guest image), the ftrace
   execution history, and the crash report.  The manager slices the
   history backward from the failure, realizes each slice as a guest
   workload, runs LIFS until the failure is reproduced, then runs
   Causality Analysis and assembles the causality chain. *)

let src = Logs.Src.create "aitia.diagnose" ~doc:"The AITIA manager"

module Log = (val Logs.src_log src : Logs.LOG)

type case = {
  case_name : string;
  subsystem : string;
  group : Ksim.Program.group;     (* all modeled threads (the guest) *)
  history : Trace.History.t;
}

type metrics = {
  mem_accessing_instrs : int;  (* access events in the failed execution *)
  races_detected : int;        (* individual data races in it *)
  races_in_chain : int;        (* after Causality Analysis *)
}

type report = {
  case : case;
  slices_tried : int;
  slice_threads : string list;  (* threads of the reproducing slice *)
  lifs : Lifs.result;
  causality : Causality.result option;
  chain : Chain.t option;
  metrics : metrics option;
}

let reproduced r = r.chain <> None

(* Restrict the case's guest to the threads named by a slice; threads
   pulled in by resource closure become the serial prologue. *)
let realize (case : case) (slice : Trace.Slicer.t) :
    (Ksim.Program.group * int list) option =
  let episode_names =
    List.map (fun (e : Trace.History.episode) -> e.thread) slice.episodes
  in
  let setup_names =
    List.map (fun (e : Trace.History.episode) -> e.thread) slice.setup
  in
  let spec_named n (s : Ksim.Program.thread_spec) =
    String.equal s.spec_name n
  in
  let find n = List.find_opt (spec_named n) case.group.Ksim.Program.threads in
  let setup_specs = List.filter_map find setup_names in
  let main_specs = List.filter_map find episode_names in
  (* Background-thread episodes have no top-level spec: they are spawned
     by the syscalls at runtime, so they need no realization. *)
  if main_specs = [] then None
  else
    let threads = setup_specs @ main_specs in
    let prologue = List.mapi (fun i _ -> i) setup_specs in
    Some ({ case.group with Ksim.Program.threads }, prologue)

let empty_lifs_result () : Lifs.result =
  { found = None;
    stats = { schedules = 0; pruned = 0; static_pruned = 0;
              interleavings = 0; elapsed = 0.; simulated = 0.;
              executed_instrs = 0 };
    db = Ksim.Kcov.empty;
    runs = [] }

(* Static lockset/MHP hints for a realized slice: the prologue threads
   are the serial part, everything else may interleave. *)
let hints_of_group (group : Ksim.Program.group) (prologue : int list) :
    Analysis.Summary.hints =
  let serial =
    List.filteri (fun i _ -> List.mem i prologue)
      group.Ksim.Program.threads
    |> List.map (fun (s : Ksim.Program.thread_spec) -> s.spec_name)
  in
  Analysis.Summary.hints (Analysis.Candidates.analyze ~serial group)

let diagnose ?max_interleavings ?max_steps ?(static_hints = false)
    ?(snapshot_cache = false) ?snapshot_budget
    ?(slice_order = `Nearest_first) (case : case) : report =
  Telemetry.Probe.with_span ~cat:"diagnose" "diagnose"
    ~args:[ ("case", case.case_name) ]
  @@ fun () ->
  let crash = Trace.History.crash case.history in
  let target = Trace.Crash.matches crash in
  let slices = Trace.Slicer.slices case.history in
  (* Backward-from-failure is the paper's heuristic (§4.2); the reversed
     order exists for the ablation study. *)
  let slices =
    match slice_order with
    | `Nearest_first -> slices
    | `Farthest_first -> List.rev slices
  in
  (* When no slice reproduces, report the largest search performed (the
     last slice is often a trivial setup-only one). *)
  let widest a b =
    match a with
    | None -> Some b
    | Some (a' : Lifs.result) ->
      if b.Lifs.stats.schedules > a'.stats.schedules then Some b else a
  in
  let rec try_slices tried last_lifs = function
    | [] ->
      { case; slices_tried = tried; slice_threads = [];
        lifs = (match last_lifs with Some l -> l | None -> empty_lifs_result ());
        causality = None; chain = None; metrics = None }
    | slice :: rest -> (
      match realize case slice with
      | None -> try_slices tried last_lifs rest
      | Some (group, prologue) -> (
        Log.info (fun m ->
            m "case %s: trying slice {%a}" case.case_name
              (Fmt.list ~sep:Fmt.comma Fmt.string)
              (Trace.Slicer.threads slice));
        Telemetry.Probe.count "diagnose.slices";
        (* The whole attempt — LIFS, and Causality Analysis on success
           — is one slice span; the recursion to the next slice happens
           outside it, so slice spans are siblings in the trace. *)
        let attempt () =
          let lifs_vm = Hypervisor.Vm.create group in
          let hints =
            if static_hints then Some (hints_of_group group prologue)
            else None
          in
          (* One snapshot cache per slice attempt: schedule keys are
             only meaningful within one realized group, and the LIFS
             vectors stay warm for Causality Analysis below. *)
          let snapshots =
            if snapshot_cache then
              Some
                (Hypervisor.Snapshots.create ?budget_bytes:snapshot_budget ())
            else None
          in
          let lifs =
            Lifs.search ?max_interleavings ?max_steps ~prologue
              ?static_hints:hints ?snapshots lifs_vm ~target ()
          in
          match lifs.found with
          | None -> Error lifs
          | Some success ->
            let ca_vm = Hypervisor.Vm.create group in
            let ca_snapshots =
              Option.map
                (fun cache ->
                  ( cache,
                    Hypervisor.Schedule.preemption_key success.schedule ))
                snapshots
            in
            let ca =
              Causality.analyze ?max_steps ~prologue ~static_hints
                ?snapshots:ca_snapshots ca_vm ~failing:success.outcome
                ~races:success.races ()
            in
            let chain = Chain.of_causality ca ~failure:success.failure in
            let metrics =
              { mem_accessing_instrs =
                  List.length (Race.accesses_of_trace success.outcome.trace);
                races_detected = List.length success.races;
                races_in_chain = List.length ca.root_causes }
            in
            Ok
              { case; slices_tried = tried + 1;
                slice_threads = Trace.Slicer.threads slice;
                lifs; causality = Some ca; chain = Some chain;
                metrics = Some metrics }
        in
        match
          Telemetry.Probe.with_span ~cat:"diagnose" "diagnose.slice"
            ~args:
              [ ("threads",
                 String.concat "," (Trace.Slicer.threads slice)) ]
            attempt
        with
        | Error lifs -> try_slices (tried + 1) (widest last_lifs lifs) rest
        | Ok report -> report))
  in
  try_slices 0 None slices
