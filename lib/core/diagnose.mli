(** The AITIA manager (§4.1): modeling -> reproducing -> diagnosing.

    Input: the kernel program group (the guest), the ftrace execution
    history, and the crash report.  The manager slices the history
    backward from the failure, realizes each slice as a guest workload,
    runs LIFS until the failure reproduces, then runs Causality Analysis
    and assembles the causality chain. *)

type case = {
  case_name : string;
  subsystem : string;
  group : Ksim.Program.group;  (** all modeled threads (the guest) *)
  history : Trace.History.t;
}

type metrics = {
  mem_accessing_instrs : int;  (** access events in the failed execution *)
  races_detected : int;        (** individual data races in it *)
  races_in_chain : int;        (** after Causality Analysis *)
}

type report = {
  case : case;
  slices_tried : int;
  slice_threads : string list;
  lifs : Lifs.result;
  causality : Causality.result option;
  chain : Chain.t option;
  metrics : metrics option;
  degraded : bool;
      (** some decision exhausted its retry budget or was accepted
          below full quorum agreement: the chain is partial/low
          confidence *)
  resilience : Resilience.t option;
      (** retry/quorum accounting, when the resilient executor ran *)
  faults_injected : int;  (** faults injected during this diagnosis *)
}

val reproduced : report -> bool

val realize :
  case -> Trace.Slicer.t -> (Ksim.Program.group * int list) option
(** Restrict the guest to a slice's threads; resource-closure threads
    become the serial prologue (returned as thread indices). *)

val hints_of_group :
  Ksim.Program.group -> int list -> Analysis.Summary.hints
(** Static lockset/MHP hints for a realized slice: the prologue indices
    name the serial setup threads, everything else may interleave. *)

val diagnose :
  ?max_interleavings:int ->
  ?max_steps:int ->
  ?static_hints:bool ->
  ?prune:Causality.prune ->
  ?order:Causality.order ->
  ?jobs:int ->
  ?snapshot_cache:bool ->
  ?snapshot_budget:int ->
  ?slice_order:[ `Nearest_first | `Farthest_first ] ->
  ?faults:Hypervisor.Faults.t ->
  ?resilience:Resilience.policy ->
  ?journal:Journal.t ->
  ?engine:Ksim.Engine.kind ->
  case ->
  report
(** The full pipeline.  Tries slices nearest-to-failure first until one
    reproduces (§4.2); [`Farthest_first] exists for the ablation.
    [static_hints] (default [false]) runs {!Analysis.Candidates.analyze}
    on each realized slice and feeds the result to {!Lifs.search} so the
    frontier is visited Unguarded-first and statically Guarded candidate
    preemptions are skipped, and enables the {!Analysis.Flipfeas}
    pre-analysis in {!Causality.analyze} so provably infeasible or
    outcome-preserving flips are skipped before any VM execution;
    disabled, the pipeline is identical to the hint-free behaviour.
    [prune] supersedes it: [`None] (default), [`Flipfeas] (equivalent
    to [static_hints:true]) or [`Invariants], which additionally runs
    the error-invariant engine ({!Analysis.Invariants}) — flip families
    are discharged by segment/replay certificates and LIFS skips
    frontier candidates preempting failure-irrelevant locations.
    [order:`Gain] replaces the fixed backward flip order and the
    breadth-first LIFS frontier with the expected-information-gain
    scheduler ({!Analysis.Gain}).
    [jobs] (default 1) shares one {!Hypervisor.Pool} across the whole
    diagnosis: LIFS frontiers and Causality flips fan out over up to
    [jobs] workers, with results merged deterministically so chains
    and verdicts are bit-identical to a sequential run.  The pool is
    declined internally under [`Gain] order or fault injection, where
    execution order feeds back into decisions.
    [snapshot_cache] (default [false]) gives each slice attempt a
    prefix-sharing snapshot cache (budget [snapshot_budget] bytes,
    estimated): LIFS children resume from their parent's cached prefix
    and every Causality flip restores the snapshot just before its
    flipped race instead of rebooting — all schedules, verdicts and
    chains are bit-identical with the cache on or off.

    [faults] arms deterministic fault injection on every VM the
    diagnosis creates; the executions then go through the resilient
    executor with the [resilience] policy (default
    {!Resilience.default_policy}) and the report carries the degraded
    flag and accounting.  [journal] checkpoints per-slice / per-flip
    progress to disk: rerunning the same diagnosis over the journal of
    an interrupted run replays finished work instead of re-executing it
    (the reproducing schedule is re-run once to rebuild machine state)
    and produces the same report.

    [engine] (default {!Ksim.Engine.default}) selects the machine
    implementation every VM of this diagnosis boots — the compiled
    arena/undo-log interpreter or the persistent reference semantics.
    Chains, verdicts and race sets are bit-identical across engines;
    the differential oracle in test/test_engine.ml enforces it. *)
