(** Least Interleaving First Search (§3.3): reproduce a reported failure
    by exploring interleavings of conflicting instructions, fewest
    preemptions first, with DPOR-style pruning of equivalent extensions
    and on-the-fly discovery of accesses revealed by race-steered
    control flows. *)

type stats = {
  schedules : int;      (** runs actually executed *)
  pruned : int;         (** candidates skipped as equivalent *)
  static_pruned : int;  (** candidates skipped as statically Guarded *)
  invariant_pruned : int;
      (** candidates skipped because the preempted location cannot
          influence the failure predicate (relevance closure) *)
  gain_reorderings : int;
      (** candidates the gain scheduler popped out of discovery order *)
  interleavings : int;  (** interleaving count of the failing schedule *)
  elapsed : float;      (** host wall-clock seconds *)
  simulated : float;    (** modeled guest seconds (Vm cost model) *)
  executed_instrs : int;
      (** instructions executed, excluding prefixes restored from the
          snapshot cache *)
}

type success = {
  schedule : Hypervisor.Schedule.preemption;
  outcome : Hypervisor.Controller.outcome;
  failure : Ksim.Failure.t;
  races : Race.t list;  (** all races of the failure-causing sequence *)
}

type result = {
  found : success option;
  stats : stats;
  db : Ksim.Kcov.db;
  runs :
    (Hypervisor.Schedule.preemption * Hypervisor.Controller.outcome) list;
    (** every executed run, for baselines needing pass/fail populations *)
}

val default_max_interleavings : int

val permutations : 'a list -> 'a list list

val search :
  ?max_interleavings:int ->
  ?max_steps:int ->
  ?prologue:int list ->
  ?prune:bool ->
  ?static_hints:Analysis.Summary.hints ->
  ?invariants:Analysis.Absdom.t ->
  ?focus:int ->
  ?order:[ `Fixed | `Gain ] ->
  ?pool:Hypervisor.Pool.t ->
  ?snapshots:Hypervisor.Snapshots.t ->
  ?resilience:Resilience.t ->
  Hypervisor.Vm.t ->
  target:(Ksim.Failure.t -> bool) ->
  unit ->
  result
(** [prologue] threads are forced to run serially first (resource
    setup); [prune:false] disables equivalence pruning (ablation).
    [static_hints] (from {!Analysis.Candidates.analyze}) reorders each
    frontier Unguarded-first and drops candidate preemptions whose every
    conflicting target pair is statically Guarded (counted in
    [static_pruned]); omitting it leaves the search bit-identical to the
    hint-free behaviour.  [invariants] (the failure-relevance closure of
    {!Analysis.Absdom}) additionally groups candidates into invariant
    classes — anchors separated only by straight-line instructions
    whose shared accesses hit irrelevant globals yield executions the
    error invariant proves failure-equivalent — and runs only each
    class representative (members are counted in [invariant_pruned]).
    [order:`Gain] replaces the breadth-first phases with a best-first
    queue ordered by expected information gain ({!Analysis.Gain}): one
    serial run seeds the race database, then promising preemptions run
    before the remaining serial orders, executed runs are re-extended
    as later serials complete the database, and sites that keep failing
    to reproduce decay.  [focus] (the thread holding the reported crash
    site) runs the serial orders starting with that thread first.

    [pool] (under [`Fixed] order without faults; ignored otherwise)
    executes each frontier in bounded parallel waves, one fresh guest
    per run sharing the snapshot cache.  A sequential dedup pre-pass
    fixes which candidates run, and the merge walks results in
    frontier order up to the first target failure, so the reproducing
    schedule, database, telemetry counters and run list are
    bit-identical to a sequential search; wave results past the
    failure are discarded (counted by the [lifs.speculative_runs]
    telemetry counter), and [stats.simulated] may differ slightly
    because per-run guests lose the consecutive-run reboot-avoidance
    credit.

    [snapshots] lets frontier expansion resume
    each child schedule from its parent's cached prefix — the explored
    schedule set and every outcome are unchanged, only re-execution is
    avoided.  [resilience] supplies the retry/quorum policy when the VM
    injects faults; without faults it changes nothing. *)
