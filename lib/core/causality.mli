(** Causality Analysis (§3.4).

    From the failure-causing instruction sequence, pop data races from
    the back, flip each one while keeping the other orders, and
    re-execute: a race whose flip averts the failure is a root cause; a
    race whose flip leaves the kernel failing is benign.  Flips of
    root-cause races that erase other root-cause races (race-steered
    control flows) yield causality edges.  Critical sections are flipped
    as units; a race surrounding a nested root cause is ambiguous. *)

type verdict = Root_cause | Benign

type tested = {
  race : Race.t;
  verdict : verdict;
  flip_outcome : Hypervisor.Controller.outcome option;
      (** [None] when the flip was statically pruned (never executed) *)
  pruned : string option;
      (** the flip-feasibility proof that skipped the re-run, if any *)
  disappeared : Race.t list;
      (** test-set races absent from the surviving flipped run *)
  ambiguous : bool;
  enforced : bool;
      (** did the flipped order actually execute? (ablation metric;
          false for statically pruned flips) *)
  confidence : float;
      (** 1.0 normally; the quorum vote share when fault-injected
          re-runs disagreed; 0.0 when the retry budget was exhausted *)
}

type stats = {
  schedules : int;
  flips_statically_pruned : int;
      (** flips proven Benign by the flip-feasibility pre-analysis,
          skipped before any VM execution *)
  flips_invariant_pruned : int;
      (** flips discharged by the error-invariant engine
          (segment/replay/family proofs) *)
  gain_reorderings : int;
      (** times the gain scheduler picked a flip out of base order *)
  elapsed : float;
  simulated : float;
  executed_instrs : int;
      (** instructions executed, excluding prefixes restored from the
          snapshot cache *)
}

val zero_stats : stats
(** All-zero identity for [stats_base]. *)

type prune = [ `None | `Flipfeas | `Invariants ]
(** What may skip a flip re-run: nothing, the flip-feasibility
    pre-analysis (PR 2's [--static-hints]), or flip-feasibility plus
    the error-invariant engine ({!Analysis.Invariants}). *)

type order = [ `Fixed | `Gain ]
(** Test order: the fixed (backward, nested-first) order, or the
    expected-information-gain scheduler ({!Analysis.Gain}). *)

type result = {
  tested : tested list;           (** in testing order *)
  root_causes : Race.t list;      (** in trace order *)
  benign : Race.t list;
  edges : (Race.t * Race.t) list; (** (r1, r2): flipping r1 removes r2 *)
  ambiguous : Race.t list;
  stats : stats;
}

type section = {
  cs_tid : int;
  cs_lock : string;
  cs_start : int;
  cs_stop : int option;
}

val critical_sections : Ksim.Machine.event list -> section list

val flip_plan : Ksim.Machine.event list -> Race.t -> Hypervisor.Schedule.plan
(** The diagnosis schedule enforcing [second => first] while preserving
    the rest of the failing sequence: critical sections move as units,
    background threads' spawning instructions are hoisted along, pending
    second endpoints are inserted before the first. *)

val test_order :
  ?direction:[ `Backward | `Forward ] -> Race.t list -> Race.t list
(** Backward (latest second access first) by default, nested races
    always before the races surrounding them; [`Forward] exists for the
    ablation study. *)

val analyze :
  ?max_steps:int ->
  ?prologue:int list ->
  ?direction:[ `Backward | `Forward ] ->
  ?static_hints:bool ->
  ?prune:prune ->
  ?order:order ->
  ?pool:Hypervisor.Pool.t ->
  ?snapshots:Hypervisor.Snapshots.t * string ->
  ?resilience:Resilience.t ->
  ?replay:(Race.t -> tested option) ->
  ?checkpoint:(tested -> stats -> unit) ->
  ?stats_base:stats ->
  Hypervisor.Vm.t ->
  failing:Hypervisor.Controller.outcome ->
  races:Race.t list ->
  unit ->
  result
(** [prune] (default [`Flipfeas] when the legacy [static_hints] is set,
    [`None] otherwise) selects the static-proof layers: flips proven
    infeasible, outcome-preserving or failure-invariant are marked
    Benign without a VM run and counted in
    [stats.flips_statically_pruned] / [stats.flips_invariant_pruned].
    Under [`Invariants] the error-invariant engine is created from the
    VM's program group (and stands down when the VM injects faults,
    where its pure replay mirror would not be exact).  [order] (default
    [`Fixed]) selects the gain scheduler; verdicts, chains and traces
    are unchanged by reordering — only which schedules execute earlier.
    With the defaults the behaviour is bit-identical to the plain
    analysis.

    [pool] shards flip re-runs across workers under [`Fixed] order
    without faults (a sequential pre-pass replays/prunes, the pool
    executes the surviving flips on one fresh guest each, and the
    merge walks shard indices in test order) — the tested list,
    chains, telemetry counters and checkpoint sequence are
    bit-identical to a sequential run; only [stats.simulated] may
    differ slightly, because per-flip guests lose the consecutive-run
    reboot-avoidance credit of a single guest.  Under [`Gain] or fault
    injection the pool is ignored.  [snapshots] is the cache and
    the preemption key of the reproduced failure run: each flip then
    restores the snapshot just before its flipped race instead of
    rebooting and re-executing the shared prefix — verdicts, chains and
    traces are unchanged.

    [resilience] supplies the retry/quorum policy when the VM injects
    faults.  The remaining three parameters implement resumable
    diagnosis: [replay] maps a race to its already-journaled verdict —
    a hit skips the flip re-run entirely (ambiguity and edges are
    recomputed over the full tested list, so a resumed analysis yields
    the same result); [checkpoint] is invoked after every {e executed}
    flip with the fresh verdict and the cumulative stats so far;
    [stats_base] (default {!zero_stats}) is the journaled progress of
    the interrupted run, folded into the returned [stats] (except
    [flips_statically_pruned], recomputed from the final tested list). *)
