(* Causality Analysis (§3.4).

   From the failure-causing instruction sequence, initialize the test set
   with its data races.  Pop races from the back (last second-access
   first), flip each one while keeping the other orders, and re-execute:

   - if the kernel no longer fails, the race contributed to the failure
     and joins the root cause set;
   - if it still fails, the race is benign and is excluded.

   A flip of a root-cause race that makes another root-cause race
   disappear (race-steered control flow) establishes a causality edge
   between them.  Critical sections are flipped as units (liveness), and
   a race that surrounds a nested root-cause race is reported ambiguous
   because its flip cannot preserve the nested order (Figure 7). *)

module Iid = Ksim.Access.Iid
module Schedule = Hypervisor.Schedule
module Controller = Hypervisor.Controller

let src = Logs.Src.create "aitia.causality" ~doc:"Causality Analysis"

module Log = (val Logs.src_log src : Logs.LOG)

type verdict = Root_cause | Benign

type tested = {
  race : Race.t;
  verdict : verdict;
  (* [None] when the flip was statically pruned: no re-run exists. *)
  flip_outcome : Controller.outcome option;
  (* The static proof that skipped the re-run (flip-feasibility
     pre-analysis); [None] for flips that executed. *)
  pruned : string option;
  (* test-set races absent from the (surviving) flipped run. *)
  disappeared : Race.t list;
  ambiguous : bool;
  (* Did the flipped order actually execute?  A vacuous flip (an
     endpoint erased by a race-steered control flow before it could run)
     is the anomaly backward testing minimizes.  False for statically
     pruned flips, which never run. *)
  enforced : bool;
  (* Resilience confidence of the verdict: 1.0 normally, the quorum
     vote share when fault-injected re-runs disagreed, 0.0 when the
     retry budget was exhausted and the verdict is best-effort. *)
  confidence : float;
}

type stats = {
  schedules : int;
  flips_statically_pruned : int;
  flips_invariant_pruned : int;  (* flips discharged by the error-
                                    invariant engine (segment/replay/
                                    family proofs) *)
  gain_reorderings : int;  (* times the gain scheduler picked a flip
                              out of base (backward) order *)
  elapsed : float;
  simulated : float;
  executed_instrs : int;  (* instructions executed (snapshot-restored
                             prefixes excluded) *)
}

(* The identity for [stats_base] (resumed analyses add the journaled
   progress of the interrupted run here). *)
let zero_stats =
  { schedules = 0; flips_statically_pruned = 0; flips_invariant_pruned = 0;
    gain_reorderings = 0; elapsed = 0.; simulated = 0.; executed_instrs = 0 }

type prune = [ `None | `Flipfeas | `Invariants ]
type order = [ `Fixed | `Gain ]

(* Proofs from the error-invariant engine are distinguished from
   flip-feasibility proofs by their reason prefix — a stable contract
   that survives journal round-trips (the reason string is journaled,
   the provenance is not). *)
let invariant_reason reason =
  String.length reason >= 9 && String.equal (String.sub reason 0 9) "invariant"

type result = {
  tested : tested list;          (* in testing order *)
  root_causes : Race.t list;     (* in trace order (second access asc.) *)
  benign : Race.t list;
  edges : (Race.t * Race.t) list;  (* r1 -> r2: flipping r1 removes r2 *)
  ambiguous : Race.t list;
  stats : stats;
}

(* --- critical sections ------------------------------------------------ *)

type section = {
  cs_tid : int;
  cs_lock : string;
  cs_start : int;           (* trace index of the Lock event *)
  cs_stop : int option;     (* trace index of the Unlock event *)
}

let critical_sections (trace : Ksim.Machine.event list) : section list =
  let open_cs : (int * string, int) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  List.iteri
    (fun i (e : Ksim.Machine.event) ->
      match e.lock_op with
      | Some (l, `Acquire) -> Hashtbl.replace open_cs (e.iid.Iid.tid, l) i
      | Some (l, `Release) -> (
        match Hashtbl.find_opt open_cs (e.iid.Iid.tid, l) with
        | Some start ->
          Hashtbl.remove open_cs (e.iid.Iid.tid, l);
          out :=
            { cs_tid = e.iid.Iid.tid; cs_lock = l; cs_start = start;
              cs_stop = Some i }
            :: !out
        | None -> ())
      | None -> ())
    trace;
  Hashtbl.iter
    (fun (tid, l) start ->
      out := { cs_tid = tid; cs_lock = l; cs_start = start; cs_stop = None }
             :: !out)
    open_cs;
  !out

let section_containing sections ~tid ~index =
  List.find_opt
    (fun s ->
      s.cs_tid = tid && s.cs_start <= index
      && match s.cs_stop with Some e -> index <= e | None -> true)
    sections

(* --- flip-plan construction ------------------------------------------- *)

let index_of_iid trace iid =
  let rec go i = function
    | [] -> None
    | (e : Ksim.Machine.event) :: rest ->
      if Iid.equal e.iid iid then Some i else go (i + 1) rest
  in
  go 0 trace

(* Build the diagnosis schedule enforcing [r.second] before [r.first]
   while preserving the rest of the failing sequence.  When both
   endpoints sit in critical sections of the same lock, the sections are
   flipped as units.  For a pending race (second never executed because
   the failure halted the machine) the second instruction is inserted
   before the first; run-through in the plan policy walks its thread to
   that instruction. *)
let flip_plan (trace : Ksim.Machine.event list) (r : Race.t) :
    Schedule.plan =
  let iids = List.map (fun (e : Ksim.Machine.event) -> e.iid) trace in
  let arr = Array.of_list iids in
  let n = Array.length arr in
  let u = r.second.iid.Iid.tid in
  let i0 = index_of_iid trace r.first.iid in
  let j0 = index_of_iid trace r.second.iid in
  match i0 with
  | None ->
    (* First endpoint not in trace: nothing to reorder. *)
    Schedule.plan iids
  | Some i -> (
    match j0 with
    | None ->
      (* Pending second: insert it just before the first endpoint — or,
         when the first endpoint sits inside a critical section, before
         that section's lock, so the whole section is displaced as a
         unit (the pending thread may need the same lock). *)
      let i =
        match
          section_containing (critical_sections trace)
            ~tid:r.first.iid.Iid.tid ~index:i
        with
        | Some cs -> cs.cs_start
        | None -> i
      in
      let before = Array.to_list (Array.sub arr 0 i) in
      let after = Array.to_list (Array.sub arr i (n - i)) in
      Schedule.plan (before @ (r.second.iid :: after))
    | Some j when j <= i -> Schedule.plan iids  (* already flipped *)
    | Some j ->
      (* Critical-section unit adjustment. *)
      let sections = critical_sections trace in
      let t = r.first.iid.Iid.tid in
      let i, j =
        match
          ( section_containing sections ~tid:t ~index:i,
            section_containing sections ~tid:u ~index:j )
        with
        | Some st, Some su when String.equal st.cs_lock su.cs_lock ->
          let i' = st.cs_start in
          let j' = Option.value ~default:j su.cs_stop in
          (i', j')
        | _ -> (i, j)
      in
      let before = Array.to_list (Array.sub arr 0 i) in
      let after = Array.to_list (Array.sub arr (j + 1) (n - j - 1)) in
      (* Hoist [u]'s window events ahead of [first], together with their
         spawn prerequisites: if [u] (or a hoisted thread) was spawned by
         a queue_work/call_rcu/arm_timer instruction inside the window,
         that instruction — and its thread's preceding window events —
         must be hoisted too, or the enforcement could never run [u]. *)
      let events = Array.of_list trace in
      let len = j - i + 1 in
      let wevent k = events.(i + k) in
      let hoist = Array.make len false in
      for k = 0 to len - 1 do
        if (wevent k).Ksim.Machine.iid.Iid.tid = u then hoist.(k) <- true
      done;
      let changed = ref true in
      while !changed do
        changed := false;
        for k = 0 to len - 1 do
          if hoist.(k) then (
            let t = (wevent k).Ksim.Machine.iid.Iid.tid in
            for m = 0 to len - 1 do
              if
                (not hoist.(m))
                && List.exists
                     (fun (tid', _) -> tid' = t)
                     (wevent m).Ksim.Machine.spawned
              then (
                let w = (wevent m).Ksim.Machine.iid.Iid.tid in
                for p = 0 to m do
                  if
                    (not hoist.(p))
                    && (wevent p).Ksim.Machine.iid.Iid.tid = w
                  then (
                    hoist.(p) <- true;
                    changed := true)
                done)
            done)
        done
      done;
      let u_events = ref [] and others = ref [] in
      for k = len - 1 downto 0 do
        let iid = (wevent k).Ksim.Machine.iid in
        if hoist.(k) then u_events := iid :: !u_events
        else others := iid :: !others
      done;
      Schedule.plan (before @ !u_events @ !others @ after))

(* --- test ordering ----------------------------------------------------- *)

(* Backward from the failure (latest second access first), except that a
   nested race is always tested before a race that surrounds it.  The
   forward direction exists only for the ablation study: testing from
   the front makes flips meet race-steered control flows that erase
   later instructions (§3.4). *)
let test_order ?(direction = `Backward) (races : Race.t list) : Race.t list =
  let cmp a b =
    if Race.surrounds a b then 1        (* a surrounds b: b first *)
    else if Race.surrounds b a then -1
    else
      match direction with
      | `Backward -> Int.compare b.Race.second.time a.Race.second.time
      | `Forward -> Int.compare a.Race.second.time b.Race.second.time
  in
  List.stable_sort cmp races

(* --- the analysis ------------------------------------------------------ *)

let survived (o : Controller.outcome) =
  match o.verdict with
  | Controller.Completed -> true
  | Controller.Failed _ | Controller.Deadlock | Controller.Step_limit -> false

(* The static half of testing one race: flip-feasibility first (cheap,
   purely on the trace), then — under [`Invariants] — the
   error-invariant engine's segment/replay/family proofs.  A proof
   makes the flip Benign without execution (the Benign verdict covers
   every non-completing outcome).  Depends only on the failing trace
   and the plan, never on other flips' outcomes — which is what lets
   the parallel path run it as a sequential pre-pass. *)
let static_proof ~(prune : prune) ?engine ~(failing : Controller.outcome)
    (r : Race.t) (plan : Schedule.plan) : string option =
  match prune with
  | `None -> None
  | `Flipfeas | `Invariants -> (
    match
      Analysis.Flipfeas.prunable
        (Analysis.Flipfeas.analyze ~trace:failing.trace
           ~plan:plan.Schedule.events ~first:r.first ~second:r.second)
    with
    | Some _ as proof -> proof
    | None -> (
      match engine with
      | Some e ->
        Option.map fst
          (Analysis.Invariants.prune e ~key:(Race.key r)
             ~trace:failing.trace ~plan:plan.Schedule.events
             ~run_through_budget:plan.Schedule.run_through_budget)
      | None -> None))

let pruned_tested (r : Race.t) reason : tested =
  Log.debug (fun m ->
      m "flip %a -> statically pruned (%s)" Race.pp_short r reason);
  { race = r;
    verdict = Benign;
    flip_outcome = None;
    pruned = Some reason;
    disappeared = [];
    ambiguous = false;
    enforced = false;
    confidence = 1. }

(* The dynamic half: interpret the re-run of a flip. *)
let executed_tested ~(races : Race.t list) (r : Race.t) (run : Executor.run)
    : tested =
  let ok = survived run.outcome in
  let disappeared =
    if not ok then []
    else
      List.filter
        (fun r' ->
          (not (Race.equal r r'))
          && not (Race.occurred_in run.outcome.trace r'))
        races
  in
  let enforced =
    Race.occurred_in run.outcome.trace
      { Race.first = r.second; second = r.first }
  in
  Log.debug (fun m ->
      m "flip %a -> %s%s" Race.pp_short r
        (if ok then "no failure (root cause)"
         else "still fails (benign)")
        (if enforced then "" else " [vacuous]"));
  { race = r;
    verdict = (if ok then Root_cause else Benign);
    flip_outcome = Some run.outcome;
    pruned = None;
    disappeared;
    ambiguous = false;
    enforced;
    confidence = run.confidence }

(* Test one race end to end: build the flip plan, statically prune it
   when a proof shows the re-run redundant, otherwise execute the
   flip. *)
let test_one ?max_steps ~prologue ~(prune : prune) ?engine ?snapshots
    ?resilience (vm : Hypervisor.Vm.t) ~(failing : Controller.outcome)
    ~(races : Race.t list) (r : Race.t) : tested =
  let plan = flip_plan failing.trace r in
  match static_proof ~prune ?engine ~failing r plan with
  | Some reason -> pruned_tested r reason
  | None ->
    let run =
      Executor.run_plan ?max_steps ~prologue ?snapshots ?resilience vm plan
    in
    executed_tested ~races r run

let analyze ?max_steps ?(prologue = []) ?direction ?(static_hints = false)
    ?prune:prune_opt ?(order = (`Fixed : order)) ?pool ?snapshots ?resilience
    ?replay ?checkpoint ?(stats_base = zero_stats) (vm : Hypervisor.Vm.t)
    ~(failing : Controller.outcome) ~(races : Race.t list) () : result =
  Telemetry.Probe.span_begin ~cat:"causality" "causality.analyze";
  let t0 = Unix.gettimeofday () in
  let runs_before = Hypervisor.Vm.runs vm in
  let instrs_before = Hypervisor.Vm.executed_steps vm in
  (* [static_hints] is the pre-[--prune] spelling of [`Flipfeas]. *)
  let prune : prune =
    match prune_opt with
    | Some p -> p
    | None -> if static_hints then `Flipfeas else `None
  in
  (* The error-invariant engine replays plans on a pure machine mirror;
     that mirror is exact only for fault-free executions, so the engine
     stands down when the VM injects faults. *)
  let engine =
    match prune with
    | `Invariants -> (
      match Hypervisor.Vm.faults vm with
      | None ->
        Some
          (Analysis.Invariants.create ?max_steps ~prologue
             (Hypervisor.Vm.group vm))
      | Some _ -> None)
    | `None | `Flipfeas -> None
  in
  let reorderings = ref 0 in
  (* Progress so far including the journaled base of an interrupted
     analysis; the pruned-flip counts are recomputed from the final
     tested list instead (adding the base would double-count replayed
     pruned flips). *)
  let current_stats () =
    { schedules = stats_base.schedules + (Hypervisor.Vm.runs vm - runs_before);
      flips_statically_pruned = 0;
      flips_invariant_pruned = 0;
      gain_reorderings = stats_base.gain_reorderings + !reorderings;
      elapsed = stats_base.elapsed +. (Unix.gettimeofday () -. t0);
      simulated = stats_base.simulated +. Hypervisor.Vm.simulated_seconds vm;
      executed_instrs =
        stats_base.executed_instrs
        + (Hypervisor.Vm.executed_steps vm - instrs_before) }
  in
  let ordered = test_order ?direction races in
  (* One span per flip test, closed with the verdict (and the static
     proof when the re-run was pruned). *)
  let flip_args (t : tested) =
    [ ("race", Fmt.str "%a" Race.pp_short t.race);
      ("verdict",
       match t.verdict with
       | Root_cause -> "root-cause"
       | Benign -> "benign");
      ("pruned", Option.value ~default:"" t.pruned);
      ("enforced", if t.enforced then "true" else "false") ]
  in
  let executed = ref 0 in
  let run_one (r : Race.t) : tested =
    match match replay with Some lookup -> lookup r | None -> None with
    | Some t ->
      (* Verdict recovered from the diagnosis journal: no re-run. *)
      Telemetry.Probe.count "causality.flips_replayed";
      t
    | None ->
      Telemetry.Probe.span_begin ~cat:"causality" "causality.flip";
      let t = test_one ?max_steps ~prologue ~prune ?engine ?snapshots
          ?resilience vm ~failing ~races r in
      (if Telemetry.Probe.installed () then
         Telemetry.Probe.span_end ~args:(flip_args t) ());
      if t.pruned = None then incr executed;
      (match checkpoint with
      | Some save -> save t (current_stats ())
      | None -> ());
      t
  in
  (* Shard flips across the pool when it can help and nothing forces
     sequential execution: the [`Gain] scheduler picks each flip from
     the previous verdicts, and fault injection couples runs through
     the shared fault stream, so both keep the sequential path. *)
  let par_pool =
    match (order, pool) with
    | `Fixed, Some p
      when Hypervisor.Pool.jobs p > 1 && Hypervisor.Vm.faults vm = None ->
      Some p
    | _ -> None
  in
  (* The parallel [`Fixed] path.  Phase 1 (sequential): replay journal
     verdicts and run the static-prune cascade — both depend only on
     the failing trace, never on other flips' outcomes, so this
     pre-pass decides exactly the set of flips a sequential run would
     execute.  Phase 2: execute those flips on the pool, one fresh
     guest per flip (the paper runs 32 guests), all sharing the
     concurrency-safe snapshot cache; a flip's verdict is a function
     of its plan alone, so outcomes are independent of scheduling.
     Phase 3 (sequential merge, in test order): absorb each worker
     guest's accounting, replay its telemetry recorder, and fire the
     journal checkpoint — making counters, spans and checkpoints
     bit-identical in content and order to a sequential run. *)
  let run_parallel p =
    let pre =
      List.map
        (fun r ->
          match match replay with Some lookup -> lookup r | None -> None with
          | Some t -> `Replayed t
          | None -> (
            let plan = flip_plan failing.trace r in
            match static_proof ~prune ?engine ~failing r plan with
            | Some reason -> `Done (pruned_tested r reason)
            | None -> `Todo (r, plan)))
        ordered
    in
    let todos =
      List.filter_map (function `Todo rp -> Some rp | _ -> None) pre
      |> Array.of_list
    in
    let telemetry = Telemetry.Probe.installed () in
    let results =
      Hypervisor.Pool.run p
        (fun k ->
          let r, plan = todos.(k) in
          let wvm =
            Hypervisor.Vm.create ~engine:(Hypervisor.Vm.engine vm)
              (Hypervisor.Vm.group vm)
          in
          let exec () =
            Telemetry.Probe.span_begin ~cat:"causality" "causality.flip";
            let run =
              Executor.run_plan ?max_steps ~prologue ?snapshots wvm plan
            in
            let t = executed_tested ~races r run in
            if Telemetry.Probe.installed () then
              Telemetry.Probe.span_end ~args:(flip_args t) ();
            t
          in
          if telemetry then (
            let rc = Telemetry.Recorder.create () in
            let t =
              Telemetry.Probe.with_sink (Telemetry.Recorder.sink rc) exec
            in
            (t, wvm, Some rc))
          else (exec (), wvm, None))
        (Array.length todos)
    in
    let next = ref 0 in
    List.map
      (fun pre ->
        match pre with
        | `Replayed t ->
          Telemetry.Probe.count "causality.flips_replayed";
          t
        | `Done t ->
          Telemetry.Probe.span_begin ~cat:"causality" "causality.flip";
          if Telemetry.Probe.installed () then
            Telemetry.Probe.span_end ~args:(flip_args t) ();
          (match checkpoint with
          | Some save -> save t (current_stats ())
          | None -> ());
          t
        | `Todo _ ->
          let t, wvm, rc = results.(!next) in
          incr next;
          Hypervisor.Vm.absorb vm wvm;
          (match (rc, Telemetry.Probe.current_sink ()) with
          | Some rc, Some sink -> Telemetry.Recorder.replay rc sink
          | _ -> ());
          incr executed;
          (match checkpoint with
          | Some save -> save t (current_stats ())
          | None -> ());
          t)
      pre
  in
  let tested =
    match (order, par_pool) with
    | `Fixed, Some p -> run_parallel p
    | `Fixed, None -> List.map run_one ordered
    | `Gain, _ ->
      (* Adaptive order: always flip the race whose verdict is least
         predictable.  Rank 0 (lifetime or write-write endpoints) races
         are the likeliest survivors; the running verdict counts feed
         the Beta posterior, so a streak of benign verdicts drains the
         expected information of look-alike flips.  Nested races stay
         ahead of the races surrounding them (the ambiguity pass
         depends on it); ties fall back to the base backward order. *)
      let race_rank (r : Race.t) =
        let lifetime =
          match (r.first.addr, r.second.addr) with
          | Ksim.Addr.Whole _, _ | _, Ksim.Addr.Whole _ -> true
          | _ -> false
        in
        let ww =
          Ksim.Access.is_write r.first && Ksim.Access.is_write r.second
        in
        if lifetime || ww then 0 else 1
      in
      let roots = ref 0 and benigns = ref 0 in
      let acc = ref [] in
      let remaining = ref ordered in
      while !remaining <> [] do
        let eligible =
          List.filter
            (fun r ->
              not
                (List.exists
                   (fun r' ->
                     (not (Race.equal r r')) && Race.surrounds r r')
                   !remaining))
            !remaining
        in
        let eligible = if eligible = [] then !remaining else eligible in
        let gain_of r =
          Analysis.Gain.flip_gain ~rank:(race_rank r) ~roots:!roots
            ~benigns:!benigns
        in
        let pick, _ =
          List.fold_left
            (fun (best, bg) r ->
              let g = gain_of r in
              if bg >= g then (best, bg) else (r, g))
            (List.hd eligible, gain_of (List.hd eligible))
            (List.tl eligible)
        in
        (match !remaining with
        | hd :: _ when not (Race.equal hd pick) ->
          incr reorderings;
          Telemetry.Probe.count "causality.gain_reorderings"
        | _ -> ());
        let t = run_one pick in
        (* Pruned flips are proven Benign: they count as evidence. *)
        (match t.verdict with
        | Root_cause -> incr roots
        | Benign -> incr benigns);
        acc := t :: !acc;
        remaining :=
          List.filter (fun r -> not (Race.equal r pick)) !remaining
      done;
      List.rev !acc
  in
  let root_tested =
    List.filter (fun t -> t.verdict = Root_cause) tested
  in
  let in_root r =
    List.exists (fun t -> Race.equal t.race r) root_tested
  in
  (* Ambiguity: a surrounding race whose nested race is also a root
     cause cannot be decided (its flip also flipped the nested one). *)
  let tested =
    List.map
      (fun t ->
        if t.verdict <> Root_cause then t
        else
          let amb =
            List.exists
              (fun t' ->
                t' != t && t'.verdict = Root_cause
                && Race.surrounds t.race t'.race)
              tested
          in
          { t with ambiguous = amb })
      tested
  in
  let root_causes =
    List.filter (fun t -> t.verdict = Root_cause) tested
    |> List.map (fun t -> t.race)
    |> List.sort (fun (a : Race.t) b ->
           Int.compare a.second.time b.second.time)
  in
  let benign =
    List.filter (fun t -> t.verdict = Benign) tested
    |> List.map (fun t -> t.race)
  in
  let edges =
    List.concat_map
      (fun t ->
        if t.verdict <> Root_cause then []
        else
          List.filter_map
            (fun r' ->
              if in_root r' && not (Race.equal t.race r') then
                Some (t.race, r')
              else None)
            t.disappeared)
      tested
  in
  let ambiguous =
    List.filter (fun (t : tested) -> t.ambiguous) tested
    |> List.map (fun t -> t.race)
  in
  let invariant_pruned =
    List.length
      (List.filter
         (fun (t : tested) ->
           match t.pruned with
           | Some reason -> invariant_reason reason
           | None -> false)
         tested)
  in
  let stats =
    { (current_stats ()) with
      flips_statically_pruned =
        List.length
          (List.filter (fun (t : tested) -> t.pruned <> None) tested)
        - invariant_pruned;
      flips_invariant_pruned = invariant_pruned }
  in
  if Telemetry.Probe.installed () then (
    Telemetry.Probe.count ~by:(List.length tested) "causality.flips";
    Telemetry.Probe.count ~by:!executed "causality.flips_executed";
    Analysis.Summary.count_pruned ~by:stats.flips_statically_pruned
      `Ca_static;
    Analysis.Summary.count_pruned ~by:stats.flips_invariant_pruned
      `Ca_invariant;
    Telemetry.Probe.count ~by:(List.length root_causes)
      "causality.root_causes";
    Telemetry.Probe.count ~by:(List.length benign) "causality.benign_races";
    Telemetry.Probe.span_end
      ~args:
        [ ("flips", string_of_int (List.length tested));
          ("root_causes", string_of_int (List.length root_causes));
          ("schedules", string_of_int stats.schedules) ]
      ());
  { tested; root_causes; benign; edges; ambiguous; stats }
