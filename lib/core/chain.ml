(* Causality chains — the root cause as AITIA reports it.

   A chain is an ordered sequence of groups of data races: races in one
   group jointly steer the control flow that enables the next group
   (conjunction, as in Figure 3 where (A2 => B11) /\ (B2 => A6) together
   enable A6 => B12), and the final group enables the failure itself.
   "If a fix does not allow one of the interleaving orders in the chain,
   it does not incur a failure." *)

type node = {
  race : Race.t;
  ambiguous : bool;
  (* Resilience confidence of the race's root-cause verdict: 1.0 unless
     fault-injected re-runs disagreed (quorum vote share) or the retry
     budget was exhausted (0.0). *)
  confidence : float;
}

type t = {
  groups : node list list;    (* earliest first; last group -> failure *)
  failure : Ksim.Failure.t;
}

let races t = List.concat_map (fun g -> List.map (fun n -> n.race) g) t.groups

let length t = List.length (races t)

let has_ambiguity t =
  List.exists (List.exists (fun n -> n.ambiguous)) t.groups

let min_confidence t =
  List.fold_left
    (fun acc g -> List.fold_left (fun acc n -> min acc n.confidence) acc g)
    1. t.groups

(* Full confidence within a rendering epsilon: fault-free chains print
   without any confidence annotation, byte-identical to before. *)
let certain c = c >= 0.999

(* Build a chain from the Causality Analysis result.  Two root-cause
   races with mutual causality edges — flipping either one makes the
   other disappear — are two halves of one multi-variable atomicity
   violation and form a conjunction group (Figure 3's
   (A2 => B11) /\ (B2 => A6)).  Groups are ordered by trace position,
   the failure-adjacent group last. *)
let of_causality (ca : Causality.result) ~(failure : Ksim.Failure.t) : t =
  let is_ambiguous r =
    List.exists (Race.equal r) ca.Causality.ambiguous
  in
  let confidence_of r =
    match
      List.find_opt
        (fun (t : Causality.tested) -> Race.equal t.race r)
        ca.Causality.tested
    with
    | Some t -> t.Causality.confidence
    | None -> 1.
  in
  let edge a b =
    List.exists
      (fun (x, y) -> Race.equal x a && Race.equal y b)
      ca.Causality.edges
  in
  let mutual a b = edge a b && edge b a in
  (* Successor key: which root causes disappear when this race is
     flipped.  Races with identical keys are jointly required — neither
     one's flip disturbs the other — and belong to one conjunction. *)
  let successor_key r =
    List.filter_map
      (fun (a, b) -> if Race.equal a r then Some (Race.key b) else None)
      ca.Causality.edges
    |> List.sort_uniq String.compare
    |> String.concat "|"
  in
  let conjoined a b =
    mutual a b || String.equal (successor_key a) (successor_key b)
  in
  (* Ambiguous races cannot be attributed (their flip also disturbed a
     nested root cause, §3.4); they are reported alongside the chain but
     excluded from it. *)
  let roots =
    List.filter (fun r -> not (is_ambiguous r)) ca.Causality.root_causes
  in
  let rec component member rest =
    let more, rest' =
      List.partition (fun r -> List.exists (fun m -> conjoined m r) member) rest
    in
    if more = [] then (member, rest')
    else component (member @ more) rest'
  in
  let rec components = function
    | [] -> []
    | r :: rest ->
      let g, rest' = component [ r ] rest in
      g :: components rest'
  in
  let groups =
    components roots
    |> List.map (fun g ->
           List.map
             (fun r ->
               { race = r; ambiguous = is_ambiguous r;
                 confidence = confidence_of r })
             (List.sort
                (fun (a : Race.t) b -> Int.compare a.second.time b.second.time)
                g))
    |> List.sort (fun ga gb ->
           let pos g =
             List.fold_left
               (fun m n -> max m n.race.Race.second.time)
               min_int g
           in
           Int.compare (pos ga) (pos gb))
  in
  { groups; failure }

let pp_node ppf n =
  Fmt.pf ppf "(%a)%s%s" Race.pp_short n.race
    (if n.ambiguous then "?" else "")
    (if certain n.confidence then ""
     else Fmt.str "[~%.0f%%]" (100. *. n.confidence))

let pp ppf t =
  let pp_group ppf g =
    Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any " /\\ ") pp_node) g
  in
  Fmt.pf ppf "%a --> %s"
    (Fmt.list ~sep:(Fmt.any " --> ") pp_group)
    t.groups
    (Ksim.Failure.symptom t.failure)

let to_string t = Fmt.str "%a" pp t

(* Full form, with addresses: used in detailed reports. *)
let pp_detailed ppf t =
  List.iteri
    (fun i g ->
      Fmt.pf ppf "  [%d] %a@."
        (i + 1)
        (Fmt.list ~sep:(Fmt.any "  /\\  ") (fun ppf n ->
             Fmt.pf ppf "%a%s%s" Race.pp n.race
               (if n.ambiguous then " (ambiguous)" else "")
               (if certain n.confidence then ""
                else Fmt.str " (confidence ~%.0f%%)" (100. *. n.confidence))))
        g)
    t.groups;
  Fmt.pf ppf "  ==> %a" Ksim.Failure.pp t.failure
