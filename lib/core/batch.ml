(* Batch diagnosis over a manifest of requests (see batch.mli).

   Parsing is strict: the manifest is a configuration file, so a typoed
   field name or a duplicate id rejects the whole document up front
   (exit 2 territory) rather than silently running a half-understood
   batch.  Execution is lenient: each accepted request is confined —
   a bad fault spec, an unreadable journal or an escaped exception
   turns into that request's exit-2 outcome and the rest proceed. *)

module Json = Telemetry.Json

let src = Logs.Src.create "aitia.batch" ~doc:"Batch diagnosis"

module Log = (val Logs.src_log src : Logs.LOG)

type request = {
  rq_id : string;
  rq_bug : string;
  rq_jobs : int option;
  rq_prune : Causality.prune option;
  rq_order : Causality.order option;
  rq_snapshot_cache : bool;
  rq_snapshot_budget : int option;
  rq_fault_spec : string option;
  rq_fault_seed : int;
  rq_max_retries : int option;
  rq_step_timeout : int option;
  rq_journal : string option;
  rq_engine : Ksim.Engine.kind option;
}

type outcome = {
  o_id : string;
  o_bug : string;
  o_exit : int;
  o_reproduced : bool;
  o_degraded : bool;
  o_chain : string option;
  o_elapsed : float;
  o_error : string option;
}

type summary = { outcomes : outcome list; batch_exit : int }

(* --- manifest parsing --------------------------------------------------- *)

let ( let* ) = Result.bind

let known_fields =
  [ "id"; "bug"; "jobs"; "prune"; "order"; "snapshot_cache";
    "snapshot_budget"; "fault_spec"; "fault_seed"; "max_retries";
    "step_timeout"; "journal"; "engine" ]

let str_field name fields =
  match List.assoc_opt name fields with
  | None -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Fmt.str "field %S must be a string" name)

let int_field ?(min = 0) name fields =
  match List.assoc_opt name fields with
  | None -> Ok None
  | Some (Json.Num f) when Float.is_integer f && int_of_float f >= min ->
    Ok (Some (int_of_float f))
  | Some _ ->
    Error (Fmt.str "field %S must be an integer >= %d" name min)

let bool_field name fields =
  match List.assoc_opt name fields with
  | None -> Ok None
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Fmt.str "field %S must be a boolean" name)

let request_of_json (j : Json.t) : (request, string) result =
  match j with
  | Json.Obj fields ->
    let* () =
      List.fold_left
        (fun acc (k, _) ->
          let* () = acc in
          if List.mem k known_fields then Ok ()
          else Error (Fmt.str "unknown field %S" k))
        (Ok ()) fields
    in
    let* id = str_field "id" fields in
    let* bug = str_field "bug" fields in
    let* rq_id =
      match id with
      | Some s when s <> "" -> Ok s
      | _ -> Error "request needs a non-empty \"id\""
    in
    let* rq_bug =
      match bug with
      | Some s when s <> "" -> Ok s
      | _ -> Error (Fmt.str "request %S needs a \"bug\"" rq_id)
    in
    let* rq_jobs = int_field ~min:1 "jobs" fields in
    let* prune = str_field "prune" fields in
    let* rq_prune =
      match prune with
      | None -> Ok None
      | Some "none" -> Ok (Some `None)
      | Some "flipfeas" -> Ok (Some `Flipfeas)
      | Some "invariants" -> Ok (Some `Invariants)
      | Some s ->
        Error
          (Fmt.str
             "request %S: prune must be none/flipfeas/invariants (got %S)"
             rq_id s)
    in
    let* order = str_field "order" fields in
    let* rq_order =
      match order with
      | None -> Ok None
      | Some "backward" -> Ok (Some `Fixed)
      | Some "gain" -> Ok (Some `Gain)
      | Some s ->
        Error
          (Fmt.str "request %S: order must be backward/gain (got %S)" rq_id
             s)
    in
    let* snap = bool_field "snapshot_cache" fields in
    let* rq_snapshot_budget = int_field "snapshot_budget" fields in
    let* rq_fault_spec = str_field "fault_spec" fields in
    let* seed = int_field "fault_seed" fields in
    let* rq_max_retries = int_field "max_retries" fields in
    let* rq_step_timeout = int_field ~min:1 "step_timeout" fields in
    let* rq_journal = str_field "journal" fields in
    let* engine = str_field "engine" fields in
    let* rq_engine =
      match engine with
      | None -> Ok None
      | Some s -> (
        match Ksim.Engine.of_string s with
        | Ok k -> Ok (Some k)
        | Error e -> Error (Fmt.str "request %S: %s" rq_id e))
    in
    Ok
      { rq_id; rq_bug; rq_jobs; rq_prune; rq_order;
        rq_snapshot_cache = Option.value ~default:false snap;
        rq_snapshot_budget; rq_fault_spec;
        rq_fault_seed = Option.value ~default:1 seed;
        rq_max_retries; rq_step_timeout; rq_journal; rq_engine }
  | _ -> Error "each request must be a JSON object"

let manifest_of_string (s : string) : (request list, string) result =
  let* doc = Json.of_string s in
  let* items =
    match doc with
    | Json.Arr items -> Ok items
    | Json.Obj _ -> (
      match Json.member "requests" doc with
      | Some (Json.Arr items) -> Ok items
      | _ -> Error "manifest object needs a \"requests\" array")
    | _ -> Error "manifest must be a JSON array or {\"requests\": [...]}"
  in
  let* requests =
    List.fold_left
      (fun acc item ->
        let* rev = acc in
        let* rq = request_of_json item in
        Ok (rq :: rev))
      (Ok []) items
    |> Result.map List.rev
  in
  let* () =
    let seen = Hashtbl.create 16 in
    List.fold_left
      (fun acc (rq : request) ->
        let* () = acc in
        if Hashtbl.mem seen rq.rq_id then
          Error (Fmt.str "duplicate request id %S" rq.rq_id)
        else (
          Hashtbl.replace seen rq.rq_id ();
          Ok ()))
      (Ok ()) requests
  in
  if requests = [] then Error "manifest has no requests" else Ok requests

let manifest_of_file (path : string) : (request list, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> manifest_of_string contents
  | exception Sys_error e -> Error e

(* --- execution ---------------------------------------------------------- *)

let resilience_of (rq : request) : Resilience.policy option =
  match (rq.rq_fault_spec, rq.rq_max_retries) with
  | None, None -> None
  | _ ->
    let max_retries =
      Option.value ~default:Resilience.default_policy.max_retries
        rq.rq_max_retries
    in
    let quorum =
      if max_retries = 0 then 1 else Resilience.default_policy.quorum
    in
    Some
      { Resilience.max_retries; quorum;
        backoff_base = Resilience.default_policy.backoff_base }

let journal_of ?journal_dir ~resume (rq : request) :
    (Journal.t option, string) result =
  let path =
    match rq.rq_journal with
    | Some p -> Some p
    | None ->
      Option.map
        (fun dir -> Filename.concat dir (rq.rq_id ^ ".journal.json"))
        journal_dir
  in
  match path with
  | None -> Ok None
  | Some p ->
    if resume then Result.map Option.some (Journal.load p)
    else Ok (Some (Journal.create p))

let run_request ?journal_dir ~resume ~resolve (rq : request) :
    (Diagnose.report, string) result =
  let* case, default_max_interleavings =
    match resolve rq.rq_bug with
    | Some x -> Ok x
    | None -> Error (Fmt.str "unknown bug id %S" rq.rq_bug)
  in
  let* faults =
    match rq.rq_fault_spec with
    | None -> Ok None
    | Some s -> (
      match Hypervisor.Faults.spec_of_string s with
      | Ok spec ->
        Ok (Some (Hypervisor.Faults.create ~seed:rq.rq_fault_seed spec))
      | Error e -> Error (Fmt.str "bad fault_spec: %s" e))
  in
  let* journal = journal_of ?journal_dir ~resume rq in
  match
    Diagnose.diagnose
      ?max_interleavings:default_max_interleavings
      ?max_steps:rq.rq_step_timeout ?prune:rq.rq_prune ?order:rq.rq_order
      ?jobs:rq.rq_jobs ~snapshot_cache:rq.rq_snapshot_cache
      ?snapshot_budget:rq.rq_snapshot_budget ?faults
      ?resilience:(resilience_of rq) ?journal ?engine:rq.rq_engine case
  with
  | report -> Ok report
  | exception e -> Error (Fmt.str "diagnosis raised: %s" (Printexc.to_string e))

let exit_of_report (r : Diagnose.report) : int =
  if (not (Diagnose.reproduced r)) && not r.Diagnose.degraded then 1
  else if r.Diagnose.degraded then 3
  else 0

let run ?(jobs = 1) ?journal_dir ?(resume = false) ~resolve
    (requests : request list) : summary =
  let exec (rq : request) : outcome =
    let t0 = Unix.gettimeofday () in
    Log.info (fun m -> m "request %s: diagnosing %s" rq.rq_id rq.rq_bug);
    let result = run_request ?journal_dir ~resume ~resolve rq in
    let elapsed = Unix.gettimeofday () -. t0 in
    match result with
    | Ok report ->
      { o_id = rq.rq_id; o_bug = rq.rq_bug;
        o_exit = exit_of_report report;
        o_reproduced = Diagnose.reproduced report;
        o_degraded = report.Diagnose.degraded;
        o_chain = Option.map Chain.to_string report.Diagnose.chain;
        o_elapsed = elapsed; o_error = None }
    | Error msg ->
      Log.warn (fun m -> m "request %s: %s" rq.rq_id msg);
      { o_id = rq.rq_id; o_bug = rq.rq_bug; o_exit = 2;
        o_reproduced = false; o_degraded = false; o_chain = None;
        o_elapsed = elapsed; o_error = Some msg }
  in
  let pool = Hypervisor.Pool.create ~jobs in
  let outcomes = Hypervisor.Pool.map_list pool exec requests in
  let has code = List.exists (fun o -> o.o_exit = code) outcomes in
  let batch_exit =
    if has 2 then 2 else if has 1 then 1 else if has 3 then 3 else 0
  in
  { outcomes; batch_exit }

(* --- report ------------------------------------------------------------- *)

let outcome_to_json (o : outcome) : string =
  Json.obj
    ([ ("id", Json.str o.o_id); ("bug", Json.str o.o_bug);
       ("exit", Json.int o.o_exit);
       ("reproduced", Json.bool o.o_reproduced);
       ("degraded", Json.bool o.o_degraded);
       ("elapsed_s", Json.float o.o_elapsed) ]
    @ (match o.o_chain with
      | Some c -> [ ("chain", Json.str c) ]
      | None -> [])
    @
    match o.o_error with
    | Some e -> [ ("error", Json.str e) ]
    | None -> [])

let summary_to_json (s : summary) : string =
  Json.obj
    [ ("exit", Json.int s.batch_exit);
      ("requests", Json.arr (List.map outcome_to_json s.outcomes)) ]
