(** Retry/quorum policy and accounting for the resilient executor.

    The paper's harness treats bug reproduction as inherently flaky:
    guests hang, breakpoints miss, and repeated reproductions of the
    same schedule disagree.  The executor reacts per fault class —
    detectable transient faults are retried with exponential backoff
    (modeled seconds, never host sleeps), undetectable outcome flaps
    are masked by quorum re-execution (best-of-N majority vote), and
    when the budget is exhausted the decision is accepted at reduced
    confidence instead of failing the whole diagnosis. *)

type policy = {
  max_retries : int;
      (** tainted attempts re-run per decision; 0 disables retrying *)
  quorum : int;
      (** independent clean runs consulted per decision when outcome
          flaps are possible (use an odd value); 1 disables quorum *)
  backoff_base : float;
      (** modeled seconds before retry [k] is [base * 2^k] *)
}

val default_policy : policy
(** 3 retries, quorum of 3, 0.05 s backoff base. *)

type stats = {
  mutable retries : int;          (** tainted attempts re-run *)
  mutable gave_up : int;          (** decisions whose budget exhausted *)
  mutable quorum_runs : int;      (** extra confirmation runs *)
  mutable quorum_disagreements : int;
      (** decisions whose clean runs did not all agree *)
  mutable low_confidence : int;   (** decisions accepted below 1.0 *)
  mutable backoff_simulated : float;  (** modeled backoff seconds *)
}

type t = {
  policy : policy;
  stats : stats;
}

val create : ?policy:policy -> unit -> t

val degraded : t -> bool
(** Some decision was accepted with an exhausted budget or below full
    agreement: the diagnosis (chain, verdicts) must be treated as
    partial. *)

val pp_stats : t Fmt.t
