(** Human-readable diagnosis reports with instruction-level information
    (function names and line numbers of the modeled kernel source). *)

val pp_lifs_stats : Lifs.stats Fmt.t
val pp_ca_stats : Causality.stats Fmt.t

val locate : Diagnose.case -> Ksim.Access.Iid.t -> Ksim.Program.loc option
(** Source location of an instruction in the case's programs. *)

val pp_race_with_source : Diagnose.case -> Race.t Fmt.t

val pp : Diagnose.report Fmt.t
(** Fault-free reports render byte-identically to the pre-resilience
    format; resilience/degraded lines appear only when fault injection
    or the resilient executor actually did something. *)

val to_string : Diagnose.report -> string

val exit_status : Diagnose.report list -> int
(** Process exit status over all diagnosed cases: [0] all diagnosed,
    [1] some case cleanly failed to reproduce, [3] all reproduced or
    degraded but some diagnosis is partial / low-confidence.  ([2] is
    reserved for usage/configuration errors.) *)
