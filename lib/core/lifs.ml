(* Least Interleaving First Search (§3.3).

   LIFS reproduces a reported failure by exploring interleavings of
   conflicting instructions, fewest preemptions first:

   - interleaving count 0: the serial executions (every order of the
     top-level threads), which also seed the access database;
   - interleaving count k: every schedule of count k-1 extended by one
     more preemption, placed after an instruction known (from the access
     database accumulated so far) to conflict with another thread, and
     switching to a thread known to access the same location.  This is
     the DPOR-flavoured restriction to conflicting instructions, and
     newly discovered accesses (race-steered control flows) enter the
     database dynamically and extend the search space on the fly.

   Equivalent extensions — identical executed prefix and identical switch
   target — are pruned and counted, mirroring the partial-order-reduction
   skips of Figure 5. *)

module Iid = Ksim.Access.Iid
module Schedule = Hypervisor.Schedule
module Controller = Hypervisor.Controller

let src = Logs.Src.create "aitia.lifs" ~doc:"Least Interleaving First Search"

module Log = (val Logs.src_log src : Logs.LOG)

type stats = {
  schedules : int;        (* runs actually executed *)
  pruned : int;           (* candidate schedules skipped as equivalent *)
  static_pruned : int;    (* candidates skipped as statically Guarded *)
  invariant_pruned : int; (* candidates skipped as failure-irrelevant
                             (error-invariant relevance closure) *)
  gain_reorderings : int; (* times the gain scheduler popped a candidate
                             out of discovery order *)
  interleavings : int;    (* interleaving count of the failing schedule *)
  elapsed : float;        (* host wall-clock seconds *)
  simulated : float;      (* modeled guest seconds (Vm cost model) *)
  executed_instrs : int;  (* instructions executed (restored prefixes
                             via the snapshot cache excluded) *)
}

type success = {
  schedule : Schedule.preemption;
  outcome : Controller.outcome;
  failure : Ksim.Failure.t;
  races : Race.t list;    (* all races of the failure-causing sequence *)
}

type result = {
  found : success option;
  stats : stats;
  db : Ksim.Kcov.db;
  (* Every executed run, for baselines that need failing/passing traces. *)
  runs : (Schedule.preemption * Controller.outcome) list;
}

let default_max_interleavings = 3

(* All permutations of a list. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let site_of_event final (e : Ksim.Machine.event) : Ksim.Kcov.site =
  { Ksim.Kcov.site_thread = Ksim.Machine.thread_base final e.iid.Iid.tid;
    site_label = e.iid.Iid.label }

(* Index (in the trace) after which a new preemption may be placed: all
   existing switches must already have fired. *)
let extension_start (sched : Schedule.preemption)
    (trace : Ksim.Machine.event array) =
  match List.rev sched.switches with
  | [] -> 0
  | { after; _ } :: _ ->
    let idx = ref 0 in
    Array.iteri
      (fun i (e : Ksim.Machine.event) ->
        if Iid.equal e.iid after then idx := i + 1)
      trace;
    !idx

(* Is thread [u] certainly finished by trace position [i] of this run? *)
let done_by final (trace : Ksim.Machine.event array) u i =
  Ksim.Machine.has_thread final u
  && Ksim.Machine.is_done final u
  &&
  let last = ref (-1) in
  Array.iteri
    (fun j (e : Ksim.Machine.event) -> if e.iid.Iid.tid = u then last := j)
    trace;
  !last <= i

(* Does thread [u] exist at trace position [i]? Top-level threads always
   do; spawned threads exist once their spawn event has occurred. *)
let exists_by n_top (trace : Ksim.Machine.event array) u i =
  u < n_top
  ||
  let spawned = ref false in
  Array.iteri
    (fun j (e : Ksim.Machine.event) ->
      if j <= i && List.exists (fun (t, _) -> t = u) e.spawned then
        spawned := true)
    trace;
  !spawned

(* Candidate one-preemption extensions of an executed run, each paired
   with its equivalence signature (parent schedule, static preemption
   site, accessed location and switch target) and a static priority
   rank.  Candidates that differ only in the dynamic occurrence of the
   same static site (e.g. every iteration of a statistics loop) are
   equivalent in the DPOR sense — they order the same conflicting
   accesses — and are pruned by the caller (the "skip" nodes of
   Figure 5).  Prologue (resource-setup) threads are forced serial, so
   preempting them is pointless and they are skipped.

   When static hints are present, each candidate is ranked by the
   lockset classification of its (preempted site, target site) pairs —
   Unguarded first, then Ambiguous, then unknown — and a candidate all
   of whose target pairs are proven Guarded is dropped entirely: a
   common must-lock serializes the accesses, so the preemption cannot
   order them differently (returned as the second component, the
   statically-pruned count).  Without hints every candidate gets the
   same neutral rank and nothing is dropped: behaviour is bit-identical
   to the hint-free search.

   When a failure-relevance closure is supplied ([invariants], from the
   error-invariant engine's abstract domain), candidates are grouped
   into invariant classes: two candidates with the same parent, switch
   target and static rank whose anchors are separated only by
   displaceable instructions of the same thread — straight-line code
   whose only shared accesses hit global locations outside the
   relevance closure — produce executions that differ exactly in the
   placement of those irrelevant instructions around the target
   thread's run, so the error invariant (the failure predicate's value)
   is unchanged between them.  Only the first member of each class (the
   representative) is kept; the rest are skipped and returned as the
   third component.  This is the per-prefix segment proof of
   {!Analysis.Invariants} applied to the frontier: the skipped slice
   reproduces iff its representative does.

   Each surviving candidate also carries the stable key of its
   preemption site, the currency of the gain scheduler's adaptive
   site-decay feedback.

   [shared] persists the emission and class state across calls: the
   gain-ordered search re-extends executed parents as the database
   grows, and the shared table keeps re-extension from double-emitting
   (or double-counting) candidates already produced by an earlier
   pass. *)
let neutral_rank = 3

(* May this event move across the switch target's execution without
   changing the failure predicate?  Thread-local control (assigns,
   branches, gotos, returns, nops) always may: registers are private,
   and any load feeding a branch pins its location into the relevance
   closure, so the displaced branches' outcomes are fixed.  Shared
   accesses may only when they hit a global location outside the
   closure — heap accesses can shift object identity and lifetime
   events, and relevant globals feed the failure predicate.  Lock
   operations, spawns and every heap/lifetime instruction (alloc, free,
   list and refcount ops) anchor the segment. *)
let displaceable rel (e : Ksim.Machine.event) =
  e.spawned = []
  && e.lock_op = None
  && (match e.instr with
     | Ksim.Instr.Load _ | Ksim.Instr.Store _ | Ksim.Instr.Rmw _
     | Ksim.Instr.Assign _ | Ksim.Instr.Branch_if _ | Ksim.Instr.Goto _
     | Ksim.Instr.Return | Ksim.Instr.Nop ->
       true
     | _ -> false)
  && (match e.access with
     | None -> true
     | Some a ->
       (match a.addr with Ksim.Addr.Global _ -> true | _ -> false)
       && not (Analysis.Absdom.mem_addr rel a.addr))

let extensions ~db ~n_top ~prologue ?hints ?invariants ?shared
    (sched : Schedule.preemption) (outcome : Controller.outcome) :
    (string * int * string * Schedule.preemption) list * int * int =
  let final = outcome.final in
  let trace = Array.of_list outcome.trace in
  let start = extension_start sched trace in
  let parent_key = Schedule.preemption_key sched in
  let all_tids =
    List.filter
      (fun t -> not (List.mem t prologue))
      (Ksim.Machine.thread_ids final)
  in
  let out = ref [] in
  let static_skips = ref 0 in
  let invariant_skips = ref 0 in
  (* Emission / class / skip state, possibly shared across re-extension
     passes.  Keys are namespaced: "c|sig" emitted candidates, "k|..."
     invariant-class representatives, "s|..." already-counted skips. *)
  let tbl : (string, unit) Hashtbl.t =
    match shared with Some t -> t | None -> Hashtbl.create 64
  in
  let once key = if Hashtbl.mem tbl key then false else (Hashtbl.add tbl key (); true) in
  (* Invariant segments: [seg] advances at every event that is not
     displaceable or that changes thread, so two anchors share a
     segment exactly when only displaceable same-thread instructions
     separate them. *)
  let seg = ref 0 in
  let prev_tid = ref (-1) in
  Array.iteri
    (fun i (e : Ksim.Machine.event) ->
      (match invariants with
      | Some rel ->
        if e.iid.Iid.tid <> !prev_tid || not (displaceable rel e) then
          incr seg;
        prev_tid := e.iid.Iid.tid
      | None -> ());
      if i >= start && not (List.mem e.iid.Iid.tid prologue) then
        match e.access with
        | None -> ()
        | Some a ->
          let site = site_of_event final e in
          if Ksim.Kcov.has_conflict db ~site ~addr:a.addr ~kind:a.kind then
            List.iter
              (fun u ->
                if
                  u <> e.iid.Iid.tid
                  && exists_by n_top trace u i
                  && not (done_by final trace u i)
                then
                  (* the target must itself touch the location *)
                  let targets =
                    List.filter
                      (fun ((s : Ksim.Kcov.site), k) ->
                        String.equal s.site_thread
                          (Ksim.Machine.thread_base final u)
                        && (a.kind <> Ksim.Instr.Read
                           || k <> Ksim.Instr.Read))
                      (Ksim.Kcov.accessors db a.addr)
                  in
                  if targets <> [] then (
                    let rank =
                      match hints with
                      | None -> neutral_rank
                      | Some h ->
                        List.fold_left
                          (fun acc ((s : Ksim.Kcov.site), _) ->
                            min acc
                              (Analysis.Summary.rank h
                                 ~a:
                                   ( site.Ksim.Kcov.site_thread,
                                     site.Ksim.Kcov.site_label )
                                 ~b:(s.site_thread, s.site_label)))
                          max_int targets
                    in
                    let occ_key tag =
                      Fmt.str "%s|%s|%a->%d" tag parent_key Iid.pp_full
                        e.iid u
                    in
                    if rank >= Analysis.Summary.guarded_rank then (
                      (* every target pair is proven Guarded *)
                      if once (occ_key "s") then incr static_skips)
                    else
                      let equiv_sig =
                        Fmt.str "%s|%s:%s@%a->%s" parent_key
                          site.Ksim.Kcov.site_thread site.Ksim.Kcov.site_label
                          Ksim.Addr.pp a.addr
                          (Ksim.Machine.thread_base final u)
                      in
                      let class_new =
                        match invariants with
                        | None -> true
                        | Some _ ->
                          Hashtbl.mem tbl ("c|" ^ equiv_sig)
                          || once (Fmt.str "k|%s|%d|%d|%d" parent_key !seg
                                     rank u)
                      in
                      if not class_new then (
                        (* a representative of the same invariant class
                           was already emitted: the displaced slice
                           cannot change the failure predicate *)
                        if once (occ_key "i") then incr invariant_skips)
                      else if
                        shared = None || once ("c|" ^ equiv_sig)
                      then
                        let site_key =
                          site.Ksim.Kcov.site_thread ^ ":"
                          ^ site.Ksim.Kcov.site_label
                        in
                        out :=
                          ( equiv_sig,
                            rank,
                            site_key,
                            { sched with
                              Schedule.switches =
                                sched.Schedule.switches
                                @ [ { Schedule.after = e.iid; switch_to = u }
                                  ]
                            } )
                          :: !out))
              all_tids)
    trace;
  (List.rev !out, !static_skips, !invariant_skips)

(* Exact-duplicate detection: the machine is deterministic, so the
   schedule (order + switches) fully determines the run. *)
let signature (sched : Schedule.preemption) = Schedule.preemption_key sched

(* A pending candidate of the gain-ordered search: a serial execution
   (by index) or a one-preemption extension (by static rank, preemption
   depth and site key, the inputs of its gain estimate). *)
type item = {
  it_seq : int;  (* discovery order; the tie-breaker *)
  it_gain : [ `Serial of int | `Ext of int * int * string ];
  it_sig : string;  (* equivalence signature *)
  it_sched : Schedule.preemption;
}

(* [prune] disables the DPOR-style equivalence pruning when false — the
   ablation of DESIGN.md §5.2 measures how many more schedules the
   search runs without it. *)
let search ?(max_interleavings = default_max_interleavings) ?max_steps
    ?(prologue = []) ?(prune = true) ?static_hints ?invariants ?focus
    ?(order = (`Fixed : [ `Fixed | `Gain ])) ?pool ?snapshots ?resilience
    (vm : Hypervisor.Vm.t) ~(target : Ksim.Failure.t -> bool) () : result =
  Telemetry.Probe.span_begin ~cat:"lifs" "lifs.search";
  let t0 = Unix.gettimeofday () in
  let group = Hypervisor.Vm.group vm in
  (* Frontier slices fan out across the pool only under [`Fixed] order
     without faults: the gain scheduler picks each run from the
     outcomes before it, and fault injection couples runs through the
     shared fault stream — both stay sequential. *)
  let par_pool =
    match pool with
    | Some p
      when Hypervisor.Pool.jobs p > 1 && Hypervisor.Vm.faults vm = None ->
      Some p
    | _ -> None
  in
  let n_top = List.length group.Ksim.Program.threads in
  let top = List.init n_top Fun.id in
  let interesting =
    List.filter (fun tid -> not (List.mem tid prologue)) top
  in
  let db = ref Ksim.Kcov.empty in
  let seen = Hashtbl.create 256 in
  let pruned = ref 0 in
  let static_pruned = ref 0 in
  let invariant_pruned = ref 0 in
  let reorderings = ref 0 in
  let executed = ref [] in  (* (sched, outcome) newest first *)
  let runs_before = Hypervisor.Vm.runs vm in
  let instrs_before = Hypervisor.Vm.executed_steps vm in
  let finish found interleavings =
    let elapsed = Unix.gettimeofday () -. t0 in
    let stats =
      { schedules = Hypervisor.Vm.runs vm - runs_before;
        pruned = !pruned;
        static_pruned = !static_pruned;
        invariant_pruned = !invariant_pruned;
        gain_reorderings = !reorderings;
        interleavings;
        elapsed;
        simulated = Hypervisor.Vm.simulated_seconds vm;
        executed_instrs = Hypervisor.Vm.executed_steps vm - instrs_before }
    in
    if Telemetry.Probe.installed () then (
      Telemetry.Probe.count ~by:stats.schedules "lifs.schedules";
      Analysis.Summary.count_pruned ~by:stats.pruned `Lifs_equivalent;
      Analysis.Summary.count_pruned ~by:stats.static_pruned `Lifs_static;
      Analysis.Summary.count_pruned ~by:stats.invariant_pruned
        `Lifs_invariant;
      Telemetry.Probe.count ~by:stats.gain_reorderings
        "lifs.gain_reorderings";
      if found <> None then Telemetry.Probe.count "lifs.reproduced";
      Telemetry.Probe.span_end
        ~args:
          [ ("schedules", string_of_int stats.schedules);
            ("interleavings", string_of_int interleavings);
            ("reproduced", if found = None then "false" else "true") ]
        ());
    { found; stats; db = !db; runs = List.rev !executed }
  in
  let run_sched (sched : Schedule.preemption) =
    let r =
      Executor.run_preemption ?max_steps ~prologue ?snapshots ?resilience vm
        sched
    in
    db := Executor.learn !db r;
    executed := (sched, r.outcome) :: !executed;
    r
  in
  let success sched (outcome : Controller.outcome) failure =
    let races =
      Race.of_trace outcome.trace
      @ Race.pending_of_failure ~db:!db ~final:outcome.final outcome.trace
    in
    (* The pending scan can re-derive the faulting pair already found in
       the trace; keep one copy of each race. *)
    let races =
      let seen = Hashtbl.create 16 in
      List.filter
        (fun r ->
          let k = Race.key r in
          if Hashtbl.mem seen k then false
          else (
            Hashtbl.add seen k ();
            true))
        races
    in
    (* Orders against the serial prologue are enforced by the workload
       itself (e.g. open() precedes the racing calls); they are not data
       races of the concurrent slice. *)
    let races =
      List.filter
        (fun (r : Race.t) ->
          (not (List.mem r.first.iid.Iid.tid prologue))
          && not (List.mem r.second.iid.Iid.tid prologue))
        races
    in
    { schedule = sched; outcome; failure; races }
  in
  (* Phase 0: serial executions. *)
  let serial_orders = permutations interesting in
  let rec run_phase
      (frontier : (string * int * string * Schedule.preemption) list) k =
    (* With static hints the frontier is visited Unguarded-first — the
       stable sort keeps the hint-free discovery order within each rank,
       so a hint table that ranks everything equally changes nothing. *)
    let frontier =
      match static_hints with
      | None -> frontier
      | Some _ ->
        List.stable_sort
          (fun (_, ra, _, _) (_, rb, _, _) -> compare ra rb)
          frontier
    in
    Telemetry.Probe.span_begin ~cat:"lifs" "lifs.phase";
    Telemetry.Probe.observe "lifs.frontier_size"
      (float_of_int (List.length frontier));
    let failed = ref None in
    (match par_pool with
    | None ->
      List.iter
        (fun (equiv_sig, _rank, _site, sched) ->
          if !failed = None then (
            let key = signature sched in
            if
              Hashtbl.mem seen key
              || (prune && Hashtbl.mem seen equiv_sig)
            then incr pruned
            else (
              Hashtbl.add seen key ();
              if prune then Hashtbl.add seen equiv_sig ();
              let r = run_sched sched in
              match Executor.failed r with
              | Some f when target f -> failed := Some (sched, r.outcome, f)
              | Some _ | None -> ())))
        frontier
    | Some p ->
      (* Parallel frontier slice.  The dedup bookkeeping depends only
         on schedule keys, never on outcomes, so a sequential pre-pass
         decides exactly which candidates a sequential walk would run.
         The pool then executes them in bounded waves on one fresh
         guest each (sharing the snapshot cache), and the merge walks
         results in frontier order: absorb accounting, replay
         telemetry, learn the database, stop at the first run whose
         failure matches the target.  Wave results past that point are
         speculative — a sequential walk would never have executed
         them — so they are discarded wholesale (no stats, no
         telemetry, no learning) and only counted. *)
      let decisions =
        Array.of_list
          (List.map
             (fun (equiv_sig, _rank, _site, sched) ->
               let key = signature sched in
               if
                 Hashtbl.mem seen key
                 || (prune && Hashtbl.mem seen equiv_sig)
               then `Skip
               else (
                 Hashtbl.add seen key ();
                 if prune then Hashtbl.add seen equiv_sig ();
                 `Run sched))
             frontier)
      in
      let runnables =
        let acc = ref [] in
        Array.iteri
          (fun pos d ->
            match d with
            | `Run sched -> acc := (pos, sched) :: !acc
            | `Skip -> ())
          decisions;
        Array.of_list (List.rev !acc)
      in
      let telemetry = Telemetry.Probe.installed () in
      let wave = max 1 (Hypervisor.Pool.jobs p * 4) in
      let n = Array.length runnables in
      let fail_pos = ref max_int in
      let speculative = ref 0 in
      let start = ref 0 in
      while !failed = None && !start < n do
        let len = min wave (n - !start) in
        let base = !start in
        let results =
          Hypervisor.Pool.run p
            (fun i ->
              let _pos, sched = runnables.(base + i) in
              let wvm =
                Hypervisor.Vm.create ~engine:(Hypervisor.Vm.engine vm) group
              in
              let exec () =
                Executor.run_preemption ?max_steps ~prologue ?snapshots wvm
                  sched
              in
              if telemetry then (
                let rc = Telemetry.Recorder.create () in
                let r =
                  Telemetry.Probe.with_sink (Telemetry.Recorder.sink rc) exec
                in
                (r, wvm, Some rc))
              else (exec (), wvm, None))
            len
        in
        Array.iteri
          (fun i (r, wvm, rc) ->
            if !failed = None then (
              let pos, sched = runnables.(base + i) in
              Hypervisor.Vm.absorb vm wvm;
              (match (rc, Telemetry.Probe.current_sink ()) with
              | Some rc, Some sink -> Telemetry.Recorder.replay rc sink
              | _ -> ());
              db := Executor.learn !db r;
              executed := (sched, r.outcome) :: !executed;
              match Executor.failed r with
              | Some f when target f ->
                failed := Some (sched, r.outcome, f);
                fail_pos := pos
              | Some _ | None -> ())
            else incr speculative)
          results;
        start := !start + len
      done;
      (* The skips a sequential walk would have counted: those before
         the failing candidate, or the whole frontier when it
         survives. *)
      Array.iteri
        (fun pos d -> if pos < !fail_pos && d = `Skip then incr pruned)
        decisions;
      if !speculative > 0 then (
        Telemetry.Probe.count ~by:!speculative "lifs.speculative_runs";
        Log.debug (fun m ->
            m "discarded %d speculative wave runs past the reproduction"
              !speculative)));
    if Telemetry.Probe.installed () then
      Telemetry.Probe.span_end
        ~args:
          [ ("interleavings", string_of_int k);
            ("frontier", string_of_int (List.length frontier));
            ("reproduced", if !failed = None then "false" else "true") ]
        ();
    match !failed with
    | Some (sched, outcome, f) ->
      Log.debug (fun m ->
          m "reproduced at interleaving count %d with %a: %a" k
            Schedule.pp_preemption sched Ksim.Failure.pp f);
      finish (Some (success sched outcome f)) k
    | None ->
      Log.debug (fun m ->
          m "interleaving count %d exhausted (%d schedules so far, %d pruned)"
            k
            (Hypervisor.Vm.runs vm - runs_before)
            !pruned);
      if k >= max_interleavings then finish None k
      else (
        (* Extend every executed run of interleaving count k by one more
           preemption, using the database as known so far. *)
        let parents =
          List.filter
            (fun ((s : Schedule.preemption), _) ->
              Schedule.interleaving_count s = k)
            (List.rev !executed)
        in
        let next =
          Telemetry.Probe.with_span ~cat:"lifs" "lifs.extend" (fun () ->
              List.concat_map
                (fun (s, o) ->
                  let cands, skips, inv_skips =
                    extensions ~db:!db ~n_top ~prologue ?hints:static_hints
                      ?invariants s o
                  in
                  static_pruned := !static_pruned + skips;
                  invariant_pruned := !invariant_pruned + inv_skips;
                  cands)
                parents)
        in
        run_phase next (k + 1))
  in
  (* The gain-ordered search replaces the breadth-first phases with one
     best-first queue: pop the candidate with the highest expected
     information, run it, and push its extensions immediately (each
     parent is extended with the database as known right after its own
     run).  The first serial execution has infinite gain — it seeds the
     race database — while the remaining serials score below any
     extension, so for straight-line workloads the search jumps to
     promising preemptions after a single serial run instead of
     exhausting every start order first. *)
  let run_gain () =
    let seqno = ref 0 in
    let site_runs : (string, int) Hashtbl.t = Hashtbl.create 32 in
    let shared : (string, unit) Hashtbl.t = Hashtbl.create 256 in
    let pending = ref [] in
    let push it_gain it_sig it_sched =
      let s = !seqno in
      incr seqno;
      pending := { it_seq = s; it_gain; it_sig; it_sched } :: !pending
    in
    (* Focus: the serial orders that start with the thread holding the
       reported crash site come first.  The failing thread must be the
       one interrupted mid-flight, so its extensions are where the
       minimal reproduction lives, and running its start orders first
       both completes the database for them sooner and hands out the
       lower (earlier tie-break) sequence numbers. *)
    let serial_orders =
      match focus with
      | None -> serial_orders
      | Some f ->
        let hit, miss =
          List.partition
            (function t :: _ -> t = f | [] -> false)
            serial_orders
        in
        hit @ miss
    in
    List.iteri
      (fun i o ->
        let s = Schedule.serial o in
        push (`Serial i) (Schedule.preemption_key s) s)
      serial_orders;
    (* Extend an executed run with the database as known now.  Called
       right after the run itself, and again on every executed run each
       time a serial completes: later serials reach code the first
       start order never executed (guarded branches), and the completed
       database reveals conflicts — and therefore candidates — the
       per-run pass could not see.  [shared] keeps the re-passes from
       re-emitting candidates already pushed. *)
    let extend (s : Schedule.preemption) (o : Controller.outcome) =
      let k = Schedule.interleaving_count s in
      if k < max_interleavings then (
        let cands, skips, inv_skips =
          Telemetry.Probe.with_span ~cat:"lifs" "lifs.extend" (fun () ->
              extensions ~db:!db ~n_top ~prologue ?hints:static_hints
                ?invariants ~shared s o)
        in
        static_pruned := !static_pruned + skips;
        invariant_pruned := !invariant_pruned + inv_skips;
        List.iter
          (fun (equiv_sig, rank, site, sched) ->
            push (`Ext (rank, k + 1, site)) equiv_sig sched)
          cands)
    in
    let gain it =
      match it.it_gain with
      | `Serial index -> Analysis.Gain.serial_gain ~index
      | `Ext (rank, depth, site) ->
        Analysis.Gain.extension_gain ~rank ~depth
          ~site_runs:
            (Option.value ~default:0 (Hashtbl.find_opt site_runs site))
    in
    let found = ref None in
    while Option.is_none !found && !pending <> [] do
      let it =
        match !pending with
        | [] -> assert false
        | hd :: tl ->
          fst
            (List.fold_left
               (fun (best, bg) it ->
                 let g = gain it in
                 if g > bg || (g = bg && it.it_seq < best.it_seq) then
                   (it, g)
                 else (best, bg))
               (hd, gain hd) tl)
      in
      pending := List.filter (fun x -> x.it_seq <> it.it_seq) !pending;
      if List.exists (fun x -> x.it_seq < it.it_seq) !pending then (
        incr reorderings;
        Telemetry.Probe.count "lifs.gain_reorderings");
      let key = signature it.it_sched in
      if Hashtbl.mem seen key || (prune && Hashtbl.mem seen it.it_sig)
      then incr pruned
      else (
        Hashtbl.add seen key ();
        if prune then Hashtbl.add seen it.it_sig ();
        let r = run_sched it.it_sched in
        (match it.it_gain with
        | `Ext (_, _, site) ->
          Hashtbl.replace site_runs site
            (1 + Option.value ~default:0 (Hashtbl.find_opt site_runs site))
        | `Serial _ -> ());
        match Executor.failed r with
        | Some f when target f ->
          found := Some (it.it_sched, r.outcome, f)
        | Some _ | None -> (
          match it.it_gain with
          | `Serial _ ->
            (* a completed serial grows the database; re-extend every
               executed run against it, oldest first *)
            List.iter (fun (s, o) -> extend s o) (List.rev !executed)
          | `Ext _ -> extend it.it_sched r.outcome))
    done;
    match !found with
    | Some (sched, outcome, f) ->
      Log.debug (fun m ->
          m "reproduced at interleaving count %d with %a: %a"
            (Schedule.interleaving_count sched)
            Schedule.pp_preemption sched Ksim.Failure.pp f);
      finish
        (Some (success sched outcome f))
        (Schedule.interleaving_count sched)
    | None -> finish None max_interleavings
  in
  match order with
  | `Gain -> run_gain ()
  | `Fixed ->
    run_phase
      (List.map
         (fun o ->
           ( Schedule.preemption_key (Schedule.serial o),
             neutral_rank,
             "",
             Schedule.serial o ))
         serial_orders)
      0
