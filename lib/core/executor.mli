(** Running schedules on a VM and harvesting what AITIA needs: the
    trace, access-database updates, and failure outcomes.

    When the VM carries a {!Hypervisor.Faults} harness, every run goes
    through a resilience driver: detectable transient faults (boot
    failures, hangs, missed preemptions, spurious switches) are retried
    with exponential backoff; detected snapshot-restore corruption
    poisons the bad cache entry and degrades the run to the reboot
    path; undetectable outcome flaps are masked by quorum re-execution
    — a majority vote of independent clean runs.  Without faults the
    driver is bypassed and all paths are bit-identical to the
    fault-free build. *)

type run = {
  schedule_kind : [ `Preemption | `Plan ];
  outcome : Hypervisor.Controller.outcome;
  confidence : float;
      (** 1.0 normally; the quorum vote share when clean runs
          disagreed; 0.0 when the retry budget was exhausted and the
          result is a best-effort (possibly synthesized) outcome *)
}

val with_prologue :
  int list -> Hypervisor.Controller.policy -> Hypervisor.Controller.policy
(** Force resource-setup threads to run to completion, in order, before
    the policy takes over. *)

val run_preemption :
  ?max_steps:int -> ?prologue:int list ->
  ?snapshots:Hypervisor.Snapshots.t -> ?resilience:Resilience.t ->
  Hypervisor.Vm.t -> Hypervisor.Schedule.preemption -> run
(** With [snapshots], the run restores the longest cached prefix of the
    schedule and executes only the suffix, then stores its own snapshot
    vector for future children.  The outcome is bit-identical to a
    fresh run either way.  Under fault injection, perturbed attempts
    bypass the cache entirely (neither lookup nor store), and
    [resilience] supplies the retry/quorum policy and accounting —
    omitted, faults are still detected but never retried. *)

val run_plan :
  ?max_steps:int -> ?prologue:int list ->
  ?snapshots:Hypervisor.Snapshots.t * string -> ?resilience:Resilience.t ->
  Hypervisor.Vm.t -> Hypervisor.Schedule.plan -> run
(** With [(cache, key)], the plan resumes from the cached run stored
    under [key] (for Causality Analysis: the reproduced failure run)
    at the longest matching prefix, instead of rebooting.  Lookup only
    — flip runs are executed once and not themselves cached. *)

val learn : Ksim.Kcov.db -> run -> Ksim.Kcov.db
(** Fold the run's accesses into the cross-run database, keyed by stable
    thread base names. *)

val failed : run -> Ksim.Failure.t option
