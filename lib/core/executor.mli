(** Running schedules on a VM and harvesting what AITIA needs: the
    trace, access-database updates, and failure outcomes. *)

type run = {
  schedule_kind : [ `Preemption | `Plan ];
  outcome : Hypervisor.Controller.outcome;
}

val with_prologue :
  int list -> Hypervisor.Controller.policy -> Hypervisor.Controller.policy
(** Force resource-setup threads to run to completion, in order, before
    the policy takes over. *)

val run_preemption :
  ?max_steps:int -> ?prologue:int list ->
  ?snapshots:Hypervisor.Snapshots.t -> Hypervisor.Vm.t ->
  Hypervisor.Schedule.preemption -> run
(** With [snapshots], the run restores the longest cached prefix of the
    schedule and executes only the suffix, then stores its own snapshot
    vector for future children.  The outcome is bit-identical to a
    fresh run either way. *)

val run_plan :
  ?max_steps:int -> ?prologue:int list ->
  ?snapshots:Hypervisor.Snapshots.t * string -> Hypervisor.Vm.t ->
  Hypervisor.Schedule.plan -> run
(** With [(cache, key)], the plan resumes from the cached run stored
    under [key] (for Causality Analysis: the reproduced failure run)
    at the longest matching prefix, instead of rebooting.  Lookup only
    — flip runs are executed once and not themselves cached. *)

val learn : Ksim.Kcov.db -> run -> Ksim.Kcov.db
(** Fold the run's accesses into the cross-run database, keyed by stable
    thread base names. *)

val failed : run -> Ksim.Failure.t option
