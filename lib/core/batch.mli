(** Batch diagnosis: a manifest of diagnosis requests executed with
    bounded concurrency and consolidated into one JSON report.

    A manifest is a JSON array of request objects (or an object with a
    ["requests"] array).  Each request names a corpus bug and may
    override the per-diagnosis knobs the CLI exposes; requests get
    isolated journals, so an interrupted batch resumes per-request just
    like [aitia diagnose --journal --resume].

    Requests are independent by construction — one guest, one journal,
    one fault stream each — so the batch layer fans them out across a
    {!Hypervisor.Pool} without any cross-request merging concerns; the
    consolidated report lists outcomes in manifest order regardless of
    completion order. *)

type request = {
  rq_id : string;            (** unique within the manifest *)
  rq_bug : string;           (** corpus bug id, resolved by the caller *)
  rq_jobs : int option;      (** intra-diagnosis workers (default 1) *)
  rq_prune : Causality.prune option;
  rq_order : Causality.order option;
  rq_snapshot_cache : bool;
  rq_snapshot_budget : int option;
  rq_fault_spec : string option;  (** {!Hypervisor.Faults.spec_of_string} *)
  rq_fault_seed : int;            (** default 1 *)
  rq_max_retries : int option;
  rq_step_timeout : int option;
  rq_journal : string option;     (** overrides the [journal_dir] path *)
  rq_engine : Ksim.Engine.kind option;
      (** machine implementation for this request's VMs *)
}

val manifest_of_string : string -> (request list, string) result
(** Parse a manifest document.  Errors on malformed JSON, a missing /
    mistyped field, an unknown field name, or duplicate request ids —
    the whole manifest is rejected, nothing runs. *)

val manifest_of_file : string -> (request list, string) result

(** The per-request result, in the exit-code vocabulary of the CLI:
    [0] diagnosed, [1] clean non-reproduction, [2] request error
    (unknown bug, bad fault spec, unreadable journal, crash), [3]
    degraded diagnosis. *)
type outcome = {
  o_id : string;
  o_bug : string;
  o_exit : int;
  o_reproduced : bool;
  o_degraded : bool;
  o_chain : string option;   (** rendered causality chain *)
  o_elapsed : float;         (** host seconds for this request *)
  o_error : string option;   (** present exactly when [o_exit = 2] *)
}

type summary = {
  outcomes : outcome list;  (** in manifest order *)
  batch_exit : int;
      (** [2] if any request erred, else [1] if any clean
          non-reproduction, else [3] if any degraded, else [0] *)
}

val run :
  ?jobs:int ->
  ?journal_dir:string ->
  ?resume:bool ->
  resolve:(string -> (Diagnose.case * int option) option) ->
  request list ->
  summary
(** Execute the manifest.  [jobs] (default 1) bounds how many requests
    run concurrently; each request's own diagnosis uses [rq_jobs]
    workers (default 1), so batch-level and intra-diagnosis parallelism
    compose.  [resolve] maps a bug id to its case and default
    interleaving bound ([None] → request error, exit 2).
    [journal_dir] gives every request an isolated journal at
    [<dir>/<id>.journal.json] (created if absent); [resume] loads those
    journals instead of truncating them.  A request failure — bad
    configuration or an escaped exception — is confined to its outcome;
    the rest of the batch still runs. *)

val summary_to_json : summary -> string
(** The consolidated report: [{"exit": N, "requests": [...]}] with one
    object per outcome in manifest order. *)
