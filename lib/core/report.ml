(* Human-readable diagnosis reports with instruction-level information
   (function names and line numbers of the modeled kernel source). *)

let pp_lifs_stats ppf (s : Lifs.stats) =
  Fmt.pf ppf
    "LIFS: %d schedule(s), %d pruned%a%a%a, interleaving count %d, %.1f \
     simulated s"
    s.schedules s.pruned
    (fun ppf n ->
      if n > 0 then Fmt.pf ppf " (+%d statically guarded)" n)
    s.static_pruned
    (fun ppf n ->
      if n > 0 then Fmt.pf ppf " (+%d invariant-pruned)" n)
    s.invariant_pruned
    (fun ppf n -> if n > 0 then Fmt.pf ppf " (%d gain reorderings)" n)
    s.gain_reorderings s.interleavings s.simulated

let pp_ca_stats ppf (s : Causality.stats) =
  Fmt.pf ppf "Causality Analysis: %d schedule(s)%s%s%s, %.1f simulated s"
    s.schedules
    (if s.flips_statically_pruned > 0 then
       Fmt.str " (+%d flip(s) statically pruned)" s.flips_statically_pruned
     else "")
    (if s.flips_invariant_pruned > 0 then
       Fmt.str " (+%d flip(s) invariant-pruned)" s.flips_invariant_pruned
     else "")
    (if s.gain_reorderings > 0 then
       Fmt.str " (%d gain reorderings)" s.gain_reorderings
     else "")
    s.simulated

(* Look up the source location of a racing instruction in the case's
   programs. *)
let locate (case : Diagnose.case) (iid : Ksim.Access.Iid.t) :
    Ksim.Program.loc option =
  let find_in (p : Ksim.Program.t) =
    match Ksim.Program.position_of_label p iid.label with
    | i -> Some (Ksim.Program.get p i).src
    | exception Ksim.Program.Unknown_label _ -> None
  in
  let progs =
    List.map (fun (s : Ksim.Program.thread_spec) -> s.program)
      case.group.Ksim.Program.threads
    @ List.map snd case.group.Ksim.Program.entries
  in
  List.find_map find_in progs

let pp_race_with_source case ppf (r : Race.t) =
  let loc ppf iid =
    match locate case iid with
    | Some { func; line } -> Fmt.pf ppf "%s:%d" func line
    | None -> Fmt.string ppf "?"
  in
  Fmt.pf ppf "%a [%a] => %a [%a] on %a%s" Ksim.Access.Iid.pp_full
    r.first.iid loc r.first.iid Ksim.Access.Iid.pp_full r.second.iid loc
    r.second.iid Ksim.Addr.pp r.first.addr
    (if Race.is_cs_order r then " [critical-section order]" else "")

let pp ppf (r : Diagnose.report) =
  Fmt.pf ppf "=== AITIA diagnosis: %s (%s) ===@." r.case.case_name
    r.case.subsystem;
  Fmt.pf ppf "crash: %a@." Trace.Crash.pp
    (Trace.History.crash r.case.history);
  Fmt.pf ppf "slices tried: %d" r.slices_tried;
  (match r.slice_threads with
  | [] -> Fmt.pf ppf "@."
  | ts ->
    Fmt.pf ppf " (reproducing slice: %a)@."
      (Fmt.list ~sep:Fmt.comma Fmt.string) ts);
  Fmt.pf ppf "%a@." pp_lifs_stats r.lifs.stats;
  (match r.lifs.found with
  | None -> Fmt.pf ppf "failure NOT reproduced@."
  | Some s ->
    Fmt.pf ppf "reproduced: %a@." Ksim.Failure.pp s.failure;
    let accesses =
      List.filter
        (fun (e : Ksim.Machine.event) -> e.access <> None)
        s.outcome.trace
    in
    let shown, elided =
      if List.length accesses <= 24 then (accesses, 0)
      else
        (List.filteri (fun i _ -> i < 24) accesses, List.length accesses - 24)
    in
    Fmt.pf ppf "failure-causing sequence: %a%s@."
      (Fmt.list ~sep:(Fmt.any " => ") (fun ppf (e : Ksim.Machine.event) ->
           Ksim.Access.Iid.pp ppf e.iid))
      shown
      (if elided > 0 then Fmt.str " => ... (%d more)" elided else ""));
  (match r.causality with
  | None -> ()
  | Some ca ->
    Fmt.pf ppf "%a@." pp_ca_stats ca.stats;
    Fmt.pf ppf "root-cause races (%d):@." (List.length ca.root_causes);
    List.iter
      (fun race -> Fmt.pf ppf "  %a@." (pp_race_with_source r.case) race)
      ca.root_causes;
    Fmt.pf ppf "benign races excluded: %d@." (List.length ca.benign);
    if ca.ambiguous <> [] then
      Fmt.pf ppf "ambiguous races: %a@."
        (Fmt.list ~sep:Fmt.comma Race.pp_short)
        ca.ambiguous);
  (match r.chain with
  | None -> ()
  | Some chain -> Fmt.pf ppf "causality chain:@.  %a@." Chain.pp chain);
  (match r.metrics with
  | None -> ()
  | Some m ->
    Fmt.pf ppf
      "conciseness: %d memory-accessing instructions, %d data races, %d in \
       chain@."
      m.mem_accessing_instrs m.races_detected m.races_in_chain);
  (* Resilience lines appear only when fault injection or the resilient
     executor actually did something, so fault-free reports stay
     byte-identical to the pre-resilience rendering. *)
  (if r.faults_injected > 0
      ||
      match r.resilience with
      | Some res ->
        res.Resilience.stats.retries > 0
        || res.Resilience.stats.quorum_runs > 0
        || res.Resilience.stats.gave_up > 0
      | None -> false
   then
     let res = r.resilience in
     Fmt.pf ppf "resilience: %d fault(s) injected%a@." r.faults_injected
       (fun ppf -> function
         | Some res -> Fmt.pf ppf ", %a" Resilience.pp_stats res
         | None -> ())
       res);
  if r.degraded then
    Fmt.pf ppf
      "DEGRADED: retry budget exhausted or quorum disagreed — the chain \
       is partial%s@."
      (match r.chain with
      | Some chain when not (Chain.certain (Chain.min_confidence chain)) ->
        Fmt.str " (weakest verdict confidence ~%.0f%%)"
          (100. *. Chain.min_confidence chain)
      | _ -> "")

let to_string r = Fmt.str "%a" pp r

(* Process exit status over all diagnosed cases, for scripting:
   0 = every case diagnosed cleanly;
   1 = some case failed to reproduce (and was not merely degraded);
   3 = every case reproduced (or degraded), but some diagnosis is
       partial / low-confidence.
   (2 is reserved for usage/configuration errors, raised by the CLI.) *)
let exit_status (reports : Diagnose.report list) : int =
  let clean_no_repro r =
    (not (Diagnose.reproduced r)) && not r.Diagnose.degraded
  in
  if List.exists clean_no_repro reports then 1
  else if List.exists (fun r -> r.Diagnose.degraded) reports then 3
  else 0
