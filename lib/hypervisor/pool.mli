(** Work-stealing worker pool over the build-time selected backend
    (OCaml 5 domains, or a sequential stand-in below 5.0).

    Tasks are submitted as an indexed batch; results come back as an
    array indexed by task, so callers can merge shards in submission
    order and obtain output that is bit-identical to a sequential run
    regardless of which worker finished first.  Exceptions raised by
    tasks are captured per index and the lowest-indexed one is
    re-raised after the batch drains, mirroring what a sequential
    left-to-right run would have reported first. *)

type t

val backend : string
(** Name of the compiled-in backend: ["domains"] or ["sequential"]. *)

val parallel_available : bool
(** [true] iff the backend can actually run tasks concurrently. *)

val default_jobs : unit -> int
(** Recommended worker count for this machine (1 on the sequential
    backend). *)

val create : jobs:int -> t
(** [create ~jobs] makes a pool that runs batches on [jobs] workers
    (the calling thread participates as worker 0; [jobs - 1] domains
    are spawned per batch).  Raises [Invalid_argument] if [jobs < 1].
    On the sequential backend any [jobs] value degrades gracefully to
    in-order execution. *)

val jobs : t -> int

val run : t -> (int -> 'a) -> int -> 'a array
(** [run t f n] evaluates [f 0 .. f (n-1)], possibly concurrently, and
    returns the results in index order.  Task [i] is seeded to worker
    [i mod jobs]; idle workers steal from the back of the longest
    queue.  With [jobs = 1] (or on the sequential backend) tasks run
    in index order on the calling thread. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] is [run] over a list, preserving order. *)

(** Mutex shim shared with the backend: a real [Mutex.t] on the
    domains backend, a no-op below 5.0.  Used by the shared snapshot
    cache so it needs no threads dependency on the 4.14 leg. *)
module Lock : sig
  type t

  val create : unit -> t
  val protect : t -> (unit -> 'a) -> 'a
end
