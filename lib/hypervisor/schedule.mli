(** Schedules: how LIFS and Causality Analysis tell the hypervisor what
    to run.

    A {e preemption schedule} (reproduce schedule, §4.3) is an initial
    thread order plus scheduling points "after instruction I of thread
    T, switch to thread U"; between points each thread runs to
    completion.  A {e plan schedule} (diagnosis schedule, §4.5) is a
    total order of dynamic instructions to enforce; control flow may
    diverge from it — exactly the race-steered behaviour Causality
    Analysis observes — so enforcement is best-effort with bounded
    run-through, and lock holders are run when the planned thread
    blocks. *)

module Iid = Ksim.Access.Iid

type switch = {
  after : Iid.t;    (** preempt the thread after it executes this *)
  switch_to : int;  (** hand the CPU to this thread *)
}

type preemption = {
  order : int list;        (** run queue of top-level thread ids *)
  switches : switch list;  (** consumed in list order *)
}

val serial : int list -> preemption

val interleaving_count : preemption -> int
(** The paper's "interleaving count": number of forced preemptions. *)

val preemption_key : preemption -> string
(** Stable identity, for memoization. *)

val pp_switch : switch Fmt.t
val pp_preemption : preemption Fmt.t

val preemption_policy : preemption -> Controller.policy
(** Spawned background threads enter the run queue right after their
    spawner; the active thread runs until it finishes, blocks or hits a
    scheduling point. *)

val preemption_policy_tracked :
  preemption -> Controller.policy * (unit -> int list * switch list)
(** [preemption_policy] plus a dump of the live run queue and the
    not-yet-consumed switches.  Policy state only mutates inside policy
    calls, so a dump taken right after the call that decided step [k]
    is exactly the state the next call starts from — the invariant the
    snapshot cache captures. *)

val resume_policy :
  queue:int list ->
  switches:switch list ->
  Controller.policy * (unit -> int list * switch list)
(** The policy to continue a run restored from a snapshot: the dumped
    run queue with only the not-yet-consumed switches pending, plus the
    same state dump as {!preemption_policy_tracked} so the resumed run
    can itself be captured.  Bit-identical to the fresh policy from
    that position onward. *)

type plan = {
  events : Iid.t list;       (** the total order to enforce *)
  run_through_budget : int;  (** divergence tolerance per planned event *)
}

val plan : ?run_through_budget:int -> Iid.t list -> plan
val pp_plan : plan Fmt.t

val plan_drop : plan -> int -> plan
(** The suffix plan after the first [n] events — what remains to be
    enforced once a snapshot restored the state they produced. *)

val plan_policy : plan -> Controller.policy

val executed_events : plan -> Ksim.Machine.event list -> Iid.t list
(** Which planned events actually executed — disappeared ones witness
    race-steered control flows. *)
