(* Schedules: how LIFS and Causality Analysis tell the hypervisor what to
   run.

   Two forms mirror the paper's two stages:

   - A {e preemption schedule} (reproduce schedule, §4.3): an initial
     thread order plus a list of scheduling points "after thread T
     executes instruction I, switch to thread U".  Between points each
     thread runs to completion (the suspended ones sit in the
     trampoline).

   - A {e plan schedule} (diagnosis schedule, §4.5): a total order of
     dynamic instructions to enforce, produced by reordering a
     failure-causing sequence.  Control flow may diverge from the plan —
     that is precisely the race-steered behaviour Causality Analysis
     observes — so enforcement is best-effort with bounded run-through,
     and liveness is preserved by running lock holders when the planned
     thread blocks. *)

module Iid = Ksim.Access.Iid

type switch = {
  after : Iid.t;     (* preempt the thread that executed this instruction *)
  switch_to : int;   (* and hand the CPU to this thread *)
}

type preemption = {
  order : int list;          (* queue of top-level thread ids *)
  switches : switch list;    (* consumed in list order *)
}

let serial order = { order; switches = [] }

let pp_switch ppf s =
  Fmt.pf ppf "after %a -> t%d" Iid.pp_full s.after s.switch_to

let pp_preemption ppf p =
  Fmt.pf ppf "order=[%a] switches=[%a]"
    (Fmt.list ~sep:Fmt.comma Fmt.int) p.order
    (Fmt.list ~sep:Fmt.semi pp_switch) p.switches

(* Number of forced interleavings — the paper's "interleaving count". *)
let interleaving_count p = List.length p.switches

(* A stable key identifying a preemption schedule, for memoization. *)
let preemption_key p =
  Fmt.str "%a" pp_preemption p

(* --- preemption policy ------------------------------------------------ *)

(* The run queue: head is the active thread.  Spawned threads are
   inserted immediately after their spawner, modeling kworkerd/RCU work
   that becomes runnable as soon as it is queued.  The active thread runs
   until it finishes, blocks, or hits a scheduling point.

   [queue_policy] is the general form: it starts from an arbitrary run
   queue (a fresh schedule's [order], or a queue dumped from a snapshot)
   and exposes the live queue through the returned dump function so the
   snapshot cache can capture it alongside each machine state.  The
   queue only mutates inside policy calls, so a dump taken right after
   the call that decided step [k] is exactly the queue the next call
   would start from. *)
let queue_policy ~(queue : int list) ~(switches : switch list) :
    Controller.policy * (unit -> int list * switch list) =
  let queue = ref queue in
  let pending = ref switches in
  (* Insert a freshly spawned thread after its spawner — and after any
     earlier-spawned siblings already queued there, so deferred work
     keeps its FIFO order. *)
  let insert_after m parent tid q =
    let is_child y = Ksim.Machine.thread_parent m y = Some parent in
    let rec go = function
      | [] -> [ tid ]
      | x :: rest when x = parent ->
        let rec skip_siblings acc = function
          | y :: more when is_child y -> skip_siblings (y :: acc) more
          | remaining -> List.rev_append acc (tid :: remaining)
        in
        x :: skip_siblings [] rest
      | x :: rest -> x :: go rest
    in
    go q
  in
  let to_front tid q = tid :: List.filter (fun x -> x <> tid) q in
  let policy m runnable =
    (* Fold spawn and switch effects of the previous step lazily: we
       inspect the machine to learn about new threads. *)
    let known = !queue in
    let all = Ksim.Machine.thread_ids m in
    let new_threads = List.filter (fun t -> not (List.mem t known)) all in
    List.iter
      (fun t ->
        match Ksim.Machine.thread_parent m t with
        | Some parent -> queue := insert_after m parent t !queue
        | None -> queue := !queue @ [ t ])
      new_threads;
    (* Apply a pending switch if its trigger has executed. *)
    (match !pending with
    | { after; switch_to } :: rest ->
      let tid = after.Iid.tid in
      let executed =
        Ksim.Machine.has_thread m tid
        && Ksim.Machine.occurrences m tid after.Iid.label >= after.Iid.occ
      in
      if executed then (
        pending := rest;
        queue := to_front switch_to !queue)
    | [] -> ());
    (* Run the first runnable thread in queue order. *)
    let rec first = function
      | [] -> None
      | t :: rest ->
        if List.mem t runnable then Some t else first rest
    in
    first !queue
  in
  (policy, fun () -> (!queue, !pending))

let preemption_policy (p : preemption) : Controller.policy =
  fst (queue_policy ~queue:p.order ~switches:p.switches)

let preemption_policy_tracked (p : preemption) =
  queue_policy ~queue:p.order ~switches:p.switches

(* Resume from a snapshot: start from the dumped run queue with the
   not-yet-consumed switches still pending.  The snapshot cache arranges
   that exactly the suffix switches are passed, so the policy behaves
   bit-identically to the fresh policy from that position onward. *)
let resume_policy ~queue ~switches = queue_policy ~queue ~switches

(* --- plan schedules --------------------------------------------------- *)

type plan = {
  events : Iid.t list;          (* total order to enforce *)
  run_through_budget : int;     (* divergence tolerance per planned event *)
}

let plan ?(run_through_budget = 2_000) events = { events; run_through_budget }

(* The suffix of a plan after its first [n] events — what remains to be
   enforced once a snapshot restored the state those events produced.
   Along a matched prefix the policy resets its run-through budget at
   every event, so a fresh policy over the suffix plan is state-identical
   to the original policy after [n] matches. *)
let plan_drop (p : plan) n =
  let rec drop n l = if n <= 0 then l else match l with
    | [] -> []
    | _ :: rest -> drop (n - 1) rest
  in
  { p with events = drop n p.events }

let pp_plan ppf p =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any " => ") Iid.pp_full) p.events

let plan_policy (p : plan) : Controller.policy =
  let remaining = ref p.events in
  let budget = ref p.run_through_budget in
  fun m runnable ->
    let rec decide () =
      match !remaining with
      | [] -> (match runnable with [] -> None | t :: _ -> Some t)
      | ev :: rest -> (
        let tid = ev.Iid.tid in
        let drop () =
          remaining := rest;
          budget := p.run_through_budget;
          decide ()
        in
        if not (Ksim.Machine.has_thread m tid) then drop ()
        else
          match Ksim.Machine.next_label m tid with
          | None -> drop ()  (* thread finished before the planned event *)
          | Some next ->
            if List.mem tid runnable then (
              let next_occ = Ksim.Machine.occurrences m tid next + 1 in
              if String.equal next ev.Iid.label && next_occ = ev.Iid.occ then (
                (* Stepping [tid] now executes exactly [ev]. *)
                remaining := rest;
                budget := p.run_through_budget;
                Some tid)
              else if !budget > 0 then (
                (* Control flow diverged from the plan (race-steered):
                   run the thread through the new path, hoping it
                   reconverges on the planned instruction. *)
                decr budget;
                Some tid)
              else drop ())
            else
              (* Planned thread blocked on a lock: preserve liveness by
                 running the holder (the paper's critical-section rule
                 keeps planned flips away from lock cycles; this is the
                 runtime backstop). *)
              match Ksim.Machine.blocked_on m tid with
              | Some lock -> (
                match Ksim.Machine.lock_holder m lock with
                | Some holder when List.mem holder runnable -> Some holder
                | Some _ | None -> None)
              | None -> drop ())
    in
    decide ()

(* Which planned events actually executed in [trace]? Used to detect
   disappeared data races after a flip. *)
let executed_events (p : plan) (trace : Ksim.Machine.event list) =
  let executed =
    List.fold_left
      (fun acc (e : Ksim.Machine.event) -> (e.iid.Iid.tid, e.iid.Iid.label, e.iid.Iid.occ) :: acc)
      [] trace
  in
  List.filter
    (fun (ev : Iid.t) -> List.mem (ev.Iid.tid, ev.Iid.label, ev.Iid.occ) executed)
    p.events
