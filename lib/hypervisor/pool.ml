(* Work-stealing pool over the build-time selected backend.

   A batch of n tasks is dealt round-robin across per-worker deques
   (task i seeds worker i mod jobs, so each queue's front holds its
   lowest indices).  Workers pop their own queue from the front and,
   when empty, steal from the back of the longest other queue — the
   classic split keeps owners on cheap cache-warm work and thieves on
   the large straggler tails.  All tasks exist up front, so a worker
   that finds every queue empty can simply exit; no condition
   variables are needed.

   Determinism: results land in an array slot owned by exactly one
   task, and the caller reads them only after every worker has joined
   (Domain.join publishes the writes), so merging in index order gives
   output independent of scheduling.  Exceptions are captured per
   index and the lowest-indexed one is re-raised — the one a
   sequential left-to-right run would have hit first. *)

module Lock = Pool_backend.Lock

type t = { pool_jobs : int }

let backend = Pool_backend.name
let parallel_available = Pool_backend.parallel
let default_jobs () = max 1 (Pool_backend.cpu_count ())

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { pool_jobs = jobs }

let jobs t = t.pool_jobs

let run_seq f n =
  if n = 0 then [||]
  else begin
    let results = Array.make n (f 0) in
    for i = 1 to n - 1 do
      results.(i) <- f i
    done;
    results
  end

(* Remove and return the last element of a non-empty list. *)
let take_back q =
  let rec split acc = function
    | [ last ] -> (List.rev acc, last)
    | x :: rest -> split (x :: acc) rest
    | [] -> assert false
  in
  split [] q

let run_parallel t f n =
  let w = min t.pool_jobs n in
  let results = Array.make n None in
  let errors = Array.make n None in
  let lock = Lock.create () in
  let queues = Array.make w [] in
  for i = n - 1 downto 0 do
    queues.(i mod w) <- i :: queues.(i mod w)
  done;
  let take wid =
    Lock.protect lock (fun () ->
        match queues.(wid) with
        | i :: rest ->
          queues.(wid) <- rest;
          Some i
        | [] ->
          let victim = ref (-1) and best = ref 0 in
          for j = 0 to w - 1 do
            let len = List.length queues.(j) in
            if j <> wid && len > !best then begin
              victim := j;
              best := len
            end
          done;
          if !victim < 0 then None
          else begin
            let front, last = take_back queues.(!victim) in
            queues.(!victim) <- front;
            Some last
          end)
  in
  let rec worker wid =
    match take wid with
    | None -> ()
    | Some i ->
      (match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e);
      worker wid
  in
  let handles =
    List.init (w - 1) (fun k -> Pool_backend.spawn (fun () -> worker (k + 1)))
  in
  worker 0;
  List.iter Pool_backend.join handles;
  let first_err = ref None in
  for i = n - 1 downto 0 do
    match errors.(i) with Some e -> first_err := Some e | None -> ()
  done;
  (match !first_err with Some e -> raise e | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let run t f n =
  if n = 0 then [||]
  else if t.pool_jobs <= 1 || n = 1 || not Pool_backend.parallel then
    run_seq f n
  else run_parallel t f n

let map_list t f xs =
  let arr = Array.of_list xs in
  run t (fun i -> f arr.(i)) (Array.length arr) |> Array.to_list
