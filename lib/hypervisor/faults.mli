(** Deterministic, seedable fault injection for the execution layer.

    The paper drives a real kernel under KVM/QEMU, where hardware
    breakpoints miss, guests hang at boot or mid-run, and repeated
    reproductions of the same schedule disagree (§5 reports repeated
    attempts per schedule).  This module models that unreliability so
    the retry/quorum machinery above it can be exercised and tested
    deterministically: every decision is drawn from a seeded splitmix64
    stream, so a (spec, seed) pair fully determines the fault schedule.

    Fault taxonomy, by how the layers above can react:

    - {e detectable, transient} — boot failures, step hangs, missed
      preemptions (breakpoint misses), spurious extra context switches.
      These taint the attempt; the executor retries tainted attempts
      with exponential backoff.
    - {e detected at restore} — snapshot-restore corruption.  The
      executor poisons the bad cache entry and degrades to the reboot
      path; no retry is needed.
    - {e undetectable} — outcome flaps (a failing run spuriously
      passing, or a passing run spuriously failing).  Only quorum
      re-execution can mask these. *)

type spec = {
  boot : float;      (** probability a guest boot fails outright *)
  hang : float;      (** probability a run hangs before finishing *)
  miss : float;      (** probability one scheduling point is missed *)
  spurious : float;  (** probability of one spurious extra switch *)
  restore : float;   (** probability a snapshot restore is corrupted *)
  flap : float;      (** probability a run's verdict flips *)
  site : string option;
      (** restrict missed preemptions (breakpoint misses) to scheduling
          points at this static instruction label *)
}

val none : spec

val mixed : float -> spec
(** [mixed r] splits a total per-run fault rate [r] evenly across the
    six fault kinds. *)

val spec_of_string : string -> (spec, string) result
(** Parse a comma-separated [key=value] spec: [rate=R] (split evenly),
    the per-kind keys [boot], [hang], [miss], [spurious], [restore],
    [flap] (each a probability in [[0,1]]), and [site=LABEL].  Later
    keys override earlier ones. *)

val spec_to_string : spec -> string
val pp_spec : spec Fmt.t

type counts = {
  mutable n_boot : int;
  mutable n_hang : int;
  mutable n_miss : int;
  mutable n_spurious : int;
  mutable n_restore : int;
  mutable n_flap : int;
}

val total : counts -> int

type t

val create : ?seed:int -> spec -> t
(** Default seed 1.  Identical (spec, seed) pairs inject identical
    fault schedules given identical decision-point sequences. *)

val spec : t -> spec
val seed : t -> int
val counts : t -> counts

val injected : t -> int
(** Total faults injected so far ([total (counts t)]). *)

val active : t -> bool
(** Some kind has a positive rate. *)

val flappy : t -> bool
(** Outcome flaps are possible — the executor then needs quorum
    re-execution, since a flap is undetectable on a single run. *)

(** {1 Attempt lifecycle}

    The executor brackets each execution attempt with [start_attempt];
    detectable faults injected during the attempt mark it {e tainted},
    which the retry loop inspects after the run. *)

val start_attempt : t -> unit
val tainted : t -> bool

(** {1 Decision points}

    Each function draws from the seeded stream and, when the fault
    fires, updates [counts] and the [faults.*] telemetry counters. *)

val boot_fails : t -> bool
(** Decide whether this guest boot fails.  Taints the attempt when
    true. *)

val plan_hang : t -> max_steps:int -> int option
(** Decide whether (and after how many steps) this run hangs; the VM
    caps the watchdog budget at the returned step.  Counting and
    tainting happen in {!note_hang}, only if the cap actually fires —
    a run that finishes earlier was not perturbed. *)

val note_hang : t -> unit

val wrap_policy : t -> Controller.policy -> Controller.policy
(** Decide whether this run suffers one spurious extra context switch,
    and if so wrap the policy to divert one scheduling decision to
    another runnable thread.  Taints the attempt when the diversion
    actually happens. *)

val drop_switches : t -> Schedule.switch list -> Schedule.switch list * bool
(** Decide whether one scheduling point of a preemption schedule is
    missed (a breakpoint miss) and drop it.  Honours [spec.site].
    Taints the attempt when a switch is dropped. *)

val drop_plan_event : t -> Schedule.plan -> Schedule.plan * bool
(** The plan-schedule analogue of {!drop_switches}: one planned event
    is not enforced. *)

val corrupt_restore : t -> bool
(** Decide whether a snapshot restore is corrupted.  Detected by the
    executor (it poisons the entry and reboots), so this does {e not}
    taint the attempt. *)

val flap : t -> Controller.outcome -> Controller.outcome
(** Decide whether this run's verdict flips: a failing verdict becomes
    [Completed], any other verdict becomes a fabricated failure at the
    last executed instruction.  Undetectable, so it does not taint the
    attempt. *)
