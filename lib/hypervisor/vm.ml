(* Virtual-machine instances with run accounting.

   The paper launches 32 guest VMs; each schedule is one run of a guest,
   and a run that ends in a kernel failure forces a VM reboot — the
   dominant cost of Causality Analysis ("most of interleavings executed
   by Causality Analysis cause a failure.  When a failure occurs, AITIA
   has to reboot the virtual machine", §5.1).  Our substrate reverts a
   persistent machine value instead, so we model those costs explicitly
   to preserve the LIFS-cheap / CA-expensive time shape. *)

type cost_model = {
  per_schedule : float;  (* seconds per enforced schedule (VM run) *)
  per_reboot : float;    (* extra seconds when a run ends in a failure *)
}

(* Calibrated from Table 2: LIFS runs ~0.08 s/schedule; CA schedules that
   fail add a reboot on the order of a second. *)
let default_costs = { per_schedule = 0.083; per_reboot = 1.25 }

type stats = {
  mutable runs : int;
  mutable failures : int;
  mutable deadlocks : int;
  mutable steps : int;
  mutable reverts : int;  (* snapshot restores (non-failing runs) *)
}

type t = {
  group : Ksim.Program.group;
  costs : cost_model;
  stats : stats;
}

let create ?(costs = default_costs) group =
  { group; costs;
    stats = { runs = 0; failures = 0; deadlocks = 0; steps = 0; reverts = 0 } }

let group t = t.group

(* Boot a fresh guest: in the paper, restore the reproducer's memory
   snapshot. *)
let boot t =
  t.stats.reverts <- t.stats.reverts + 1;
  Telemetry.Probe.count "vm.snapshot_restores";
  Ksim.Machine.create t.group

let record t (o : Controller.outcome) =
  t.stats.runs <- t.stats.runs + 1;
  t.stats.steps <- t.stats.steps + o.steps;
  Telemetry.Probe.count "vm.runs";
  (match o.verdict with
  | Controller.Failed _ ->
    t.stats.failures <- t.stats.failures + 1;
    (* A failing run forces a guest reboot — the dominant CA cost. *)
    Telemetry.Probe.count "vm.reboots"
  | Controller.Deadlock | Controller.Step_limit ->
    t.stats.deadlocks <- t.stats.deadlocks + 1
  | Controller.Completed -> ())

(* Run one schedule on a fresh guest. *)
let run ?max_steps t policy =
  let m = boot t in
  let o = Controller.run ?max_steps m policy in
  record t o;
  o

let runs t = t.stats.runs
let failures t = t.stats.failures
let total_steps t = t.stats.steps

(* Simulated wall-clock seconds under the cost model. *)
let simulated_seconds t =
  (float_of_int t.stats.runs *. t.costs.per_schedule)
  +. (float_of_int t.stats.failures *. t.costs.per_reboot)

let pp_stats ppf t =
  Fmt.pf ppf "runs=%d failures=%d deadlocks=%d steps=%d sim=%.1fs"
    t.stats.runs t.stats.failures t.stats.deadlocks t.stats.steps
    (simulated_seconds t)
