(* Virtual-machine instances with run accounting.

   The paper launches 32 guest VMs; each schedule is one run of a guest,
   and a run that ends in a kernel failure forces a VM reboot — the
   dominant cost of Causality Analysis ("most of interleavings executed
   by Causality Analysis cause a failure.  When a failure occurs, AITIA
   has to reboot the virtual machine", §5.1).  Our substrate reverts a
   persistent machine value instead, so we model those costs explicitly
   to preserve the LIFS-cheap / CA-expensive time shape. *)

type cost_model = {
  per_schedule : float;  (* seconds per enforced schedule (VM run) *)
  per_reboot : float;    (* extra seconds when a run ends in a failure *)
  per_restore : float;   (* seconds to restore a mid-run snapshot *)
}

(* Calibrated from Table 2: LIFS runs ~0.08 s/schedule; CA schedules that
   fail add a reboot on the order of a second.  A mid-run snapshot
   restore is a memory revert, far cheaper than either. *)
let default_costs =
  { per_schedule = 0.083; per_reboot = 1.25; per_restore = 0.004 }

type stats = {
  mutable runs : int;
  mutable failures : int;
  mutable deadlocks : int;
  mutable steps : int;       (* trace steps, restored prefixes included *)
  mutable reverts : int;     (* snapshot restores (non-failing runs) *)
  mutable executed : int;    (* instructions actually executed *)
  mutable saved_steps : int; (* prefix instructions restored, not run *)
  mutable resumes : int;     (* runs resumed from a mid-run snapshot *)
  mutable sim_saved : float; (* modeled seconds saved by resuming *)
  mutable penalty : float;   (* modeled seconds added by retry backoff *)
  mutable last_run_failed : bool;
}

type t = {
  group : Ksim.Program.group;
  costs : cost_model;
  stats : stats;
  faults : Faults.t option;
  engine : Ksim.Engine.kind;
}

exception Boot_failure

let create ?(costs = default_costs) ?faults ?(engine = Ksim.Engine.default)
    group =
  { group; costs; faults; engine;
    stats =
      { runs = 0; failures = 0; deadlocks = 0; steps = 0; reverts = 0;
        executed = 0; saved_steps = 0; resumes = 0; sim_saved = 0.;
        penalty = 0.; last_run_failed = false } }

let group t = t.group
let faults t = t.faults
let engine t = t.engine

(* Boot a fresh guest: in the paper, restore the reproducer's memory
   snapshot.  An injected boot failure consumes the restore attempt and
   raises; the executor's retry loop handles it. *)
let boot t =
  t.stats.reverts <- t.stats.reverts + 1;
  Telemetry.Probe.count "vm.snapshot_restores";
  (match t.faults with
  | Some f when Faults.boot_fails f ->
    Telemetry.Probe.count "vm.boot_failures";
    raise Boot_failure
  | Some _ | None -> ());
  Ksim.Engine.boot t.engine t.group

let record t ~executed (o : Controller.outcome) =
  t.stats.runs <- t.stats.runs + 1;
  t.stats.steps <- t.stats.steps + o.steps;
  t.stats.executed <- t.stats.executed + executed;
  Telemetry.Probe.count "vm.runs";
  (match o.verdict with
  | Controller.Failed _ ->
    t.stats.failures <- t.stats.failures + 1;
    t.stats.last_run_failed <- true;
    (* A failing run forces a guest reboot — the dominant CA cost. *)
    Telemetry.Probe.count "vm.reboots"
  | Controller.Deadlock | Controller.Step_limit ->
    t.stats.deadlocks <- t.stats.deadlocks + 1;
    t.stats.last_run_failed <- false
  | Controller.Completed -> t.stats.last_run_failed <- false)

(* Per-run fault decisions: an injected hang caps the watchdog budget
   below the caller's limit (the run is truncated but every executed
   step is genuine), a spurious extra switch perturbs one scheduling
   decision, and a flap rewrites the verdict after the fact.  Without
   faults the run path is untouched. *)
let fault_plan t ~max_steps policy =
  match t.faults with
  | None -> (max_steps, policy, None, Fun.id)
  | Some f ->
    let limit = Option.value ~default:Controller.default_max_steps max_steps in
    let hang = Faults.plan_hang f ~max_steps:limit in
    let capped =
      match hang with Some h -> Some (min h limit) | None -> max_steps
    in
    (capped, Faults.wrap_policy f policy, hang, Faults.flap f)

let settle t ~hang (o : Controller.outcome) =
  (match (t.faults, hang) with
  | Some f, Some h
    when o.verdict = Controller.Step_limit && o.steps >= h ->
    Faults.note_hang f
  | _ -> ());
  o

(* Run one schedule on a fresh guest. *)
let run ?max_steps ?observe t policy =
  let max_steps, policy, hang, flap = fault_plan t ~max_steps policy in
  let m = boot t in
  let o = Controller.run ?max_steps ?observe m policy in
  let o = flap (settle t ~hang o) in
  record t ~executed:o.steps o;
  o

(* Continue a schedule from a restored mid-run snapshot: only the suffix
   beyond [start] executes.  In cost-model terms the restore replaces
   the fresh boot (and, when the previous run on this guest failed, the
   reboot that recovery would have required) — the savings accumulate in
   [sim_saved] so that with the cache disabled the accounting is
   bit-identical to before. *)
let resume ?max_steps ?observe t (start : Controller.start) policy =
  let max_steps, policy, hang, flap = fault_plan t ~max_steps policy in
  t.stats.resumes <- t.stats.resumes + 1;
  t.stats.saved_steps <- t.stats.saved_steps + start.Controller.start_steps;
  if t.stats.last_run_failed then
    t.stats.sim_saved <- t.stats.sim_saved +. t.costs.per_reboot;
  Telemetry.Probe.count "vm.resumes";
  let o = Controller.resume ?max_steps ?observe start policy in
  let o = flap (settle t ~hang o) in
  let prefix = start.Controller.start_steps in
  (if o.steps > 0 then
     let share =
       t.costs.per_schedule *. float_of_int prefix /. float_of_int o.steps
     in
     t.stats.sim_saved <-
       t.stats.sim_saved +. Float.max 0. (share -. t.costs.per_restore));
  record t ~executed:(o.steps - prefix) o;
  o

(* Modeled seconds added by the resilience layer's exponential backoff:
   the paper's harness sleeps between reproduction attempts; ours adds
   the delay to the cost model instead of the host clock. *)
let penalize t seconds = t.stats.penalty <- t.stats.penalty +. seconds

(* Fold a worker guest's accounting into an aggregate VM.  The pool
   gives each task its own guest (the paper runs 32 in parallel) and
   the coordinator absorbs them in shard-index order, so the merged
   counters match the order tasks were submitted, not the order they
   finished.  [last_run_failed] is deliberately left alone: it couples
   consecutive runs of one guest, a relation that does not exist
   between guests. *)
let absorb t (other : t) =
  let s = t.stats and o = other.stats in
  s.runs <- s.runs + o.runs;
  s.failures <- s.failures + o.failures;
  s.deadlocks <- s.deadlocks + o.deadlocks;
  s.steps <- s.steps + o.steps;
  s.reverts <- s.reverts + o.reverts;
  s.executed <- s.executed + o.executed;
  s.saved_steps <- s.saved_steps + o.saved_steps;
  s.resumes <- s.resumes + o.resumes;
  s.sim_saved <- s.sim_saved +. o.sim_saved;
  s.penalty <- s.penalty +. o.penalty

let runs t = t.stats.runs
let failures t = t.stats.failures
let total_steps t = t.stats.steps
let executed_steps t = t.stats.executed
let saved_steps t = t.stats.saved_steps
let resumes t = t.stats.resumes

(* Simulated wall-clock seconds under the cost model. *)
let simulated_seconds t =
  (float_of_int t.stats.runs *. t.costs.per_schedule)
  +. (float_of_int t.stats.failures *. t.costs.per_reboot)
  -. t.stats.sim_saved +. t.stats.penalty

let simulated_saved t = t.stats.sim_saved

let pp_stats ppf t =
  Fmt.pf ppf "runs=%d failures=%d deadlocks=%d steps=%d sim=%.1fs"
    t.stats.runs t.stats.failures t.stats.deadlocks t.stats.steps
    (simulated_seconds t)
