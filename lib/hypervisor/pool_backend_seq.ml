(* Pool backend, OCaml 4 build: no domains, so [spawn] runs the worker
   body inline to completion — the pool degenerates to a sequential
   drain of the queues — and locks are no-ops (there is provably a
   single thread of execution).  Selected by the dune rules below 5.0. *)

let name = "sequential"
let parallel = false
let cpu_count () = 1

module Lock = struct
  type t = unit

  let create () = ()
  let protect () f = f ()
end

type handle = unit

let spawn (f : unit -> unit) : handle = f ()
let join (_ : handle) = ()
