(** Prefix-sharing snapshot cache — the analogue of AITIA's VM snapshot
    tree.

    The machine is persistent, so a snapshot is the machine value
    reached after each step of a run (copy-on-write through the
    persistent maps, no deep copy).  A run's snapshots form one vector
    keyed by its schedule; a child schedule (one more switch, or a flip
    plan permuting the same trace) restores the longest cached prefix
    and executes only the divergent suffix.

    Two invariants are enforced at lookup time: a preemption hit
    requires the parent policy's pending-switch list to be empty at the
    divergence point (so resuming with only the new switch pending is
    bit-identical to a fresh run), and a {e poisoned} snapshot — one
    whose machine already carries a failure verdict — is never
    returned, so the faulting step always re-executes.  With a zero
    byte budget the cache is disabled and callers take the plain
    reboot path, bit-identical to no cache at all.

    The cache is safe to share between the workers of a {!Pool}: every
    operation holds one cache-wide lock (a no-op on the single-domain
    build), machines are persistent so restores never mutate shared
    state, and per-vector generation counters close the hit→store
    window — a child vector whose restored prefix came from a vector
    poisoned in between is silently dropped. *)

module Iid = Ksim.Access.Iid

type snap = {
  machine : Ksim.Machine.t;
  trace_rev : Ksim.Machine.event list;  (** events so far, reversed *)
  steps : int;
  queue : int list;  (** policy run queue dumped after the step *)
  pending : Schedule.switch list;  (** switches not yet consumed *)
}

type vector
(** The snapshots of one run: position [k] is the state after [k+1]
    steps. *)

type t
(** An LRU cache of vectors under an estimated byte budget. *)

val default_budget_bytes : int

val create : ?budget_bytes:int -> unit -> t

val enabled : t -> bool
(** False when the budget is zero or negative: every lookup misses and
    nothing is stored. *)

val store :
  t ->
  key:string ->
  ?parent:string * int ->
  base:snap array ->
  suffix_rev:snap list ->
  unit ->
  unit
(** Record the snapshot vector of a completed preemption run under the
    schedule's key.  [base] is the prefix inherited from the parent
    vector when the run was resumed (empty for a full run);
    [suffix_rev] is what the controller observer captured, newest
    first.  [parent] is the [(vector_key, parent_generation)] pair of
    the {!preemption_hit} the run resumed from; if that vector has
    been poisoned since the hit (concurrent workers only), the store
    is silently dropped — the base prefix is suspect.  Evicts
    least-recently-used vectors once over budget. *)

val poison : t -> key:string -> unit
(** Mark the entry under [key] unusable — a restore from it was
    detected as corrupted.  Future lookups refuse the whole vector (and
    count {!poisoned_refusals}), so callers degrade gracefully to the
    reboot path.  No-op for an absent or already-poisoned key. *)

type preemption_hit = {
  start : Controller.start;  (** restored position *)
  resume_queue : int list;
  resume_switches : Schedule.switch list;
      (** exactly the child's new switch, still pending *)
  base : snap array;  (** prefix snaps, adjusted for re-capture *)
  vector_key : string;
      (** the cache key of the vector the start was restored from —
          what {!poison} takes when the restore turns out corrupted *)
  parent_generation : int;
      (** that vector's generation at hit time; passed back to
          {!store} so a poisoning that lands between hit and store
          invalidates the child *)
}

val find_preemption : t -> Schedule.preemption -> preemption_hit option
(** The longest reusable prefix of a preemption schedule: the cached
    run of the same schedule minus its last switch, restored just after
    the step that triggers that switch.  [None] on any soundness doubt
    — unfired parent switches, poisoned snapshot, cold cache. *)

type plan_hit = {
  plan_start : Controller.start;
  suffix : Schedule.plan;  (** what remains to be enforced *)
  matched : int;  (** plan events satisfied by the restored prefix *)
}

val find_plan : t -> key:string -> Schedule.plan -> plan_hit option
(** The longest prefix of the plan coinciding with the stored run under
    [key] — for Causality Analysis, the failure run the flip permutes.
    Restoring it and enforcing only the suffix plan is bit-identical to
    a fresh run. *)

(** {1 Statistics} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val restored_instrs : t -> int
(** Prefix instructions obtained by restore instead of re-execution. *)

val poisonings : t -> int
(** Entries explicitly poisoned via {!poison}. *)

val poisoned_refusals : t -> int
(** Lookups refused because the snapshot they needed lies in a
    poisoned (or failing) region of its vector.  Also surfaced as the
    [snapshot.poisoned_refusals] telemetry counter, so degraded-mode
    runs are observable in [aitia stats]. *)

val cached_vectors : t -> int
val cached_bytes : t -> int
