(** Virtual-machine instances with run accounting.

    Each schedule is one run of a guest; a run ending in a kernel
    failure forces a VM reboot — the dominant cost of Causality Analysis
    in the paper (§5.1).  The substrate reverts a persistent machine
    instead, so these costs are modeled explicitly to preserve the
    LIFS-cheap / CA-expensive time shape. *)

type cost_model = {
  per_schedule : float;  (** seconds per enforced schedule *)
  per_reboot : float;    (** extra seconds when a run fails *)
  per_restore : float;   (** seconds to restore a mid-run snapshot *)
}

val default_costs : cost_model
(** Calibrated from Table 2's per-schedule rates; a mid-run snapshot
    restore is a memory revert, far cheaper than a schedule or a
    reboot. *)

type t

exception Boot_failure
(** An injected guest-boot failure (see {!Faults}); raised by {!boot}
    and by {!run} before any step executes.  The executor's retry loop
    is the intended handler. *)

val create :
  ?costs:cost_model -> ?faults:Faults.t -> ?engine:Ksim.Engine.kind ->
  Ksim.Program.group -> t
(** [faults] arms fault injection for every run of this VM; omitted,
    all paths are bit-identical to the fault-free build.  [engine]
    selects the machine implementation every boot of this guest uses
    (default {!Ksim.Engine.default}); worker guests the pool derives
    from this VM inherit it. *)

val group : t -> Ksim.Program.group

val faults : t -> Faults.t option

val engine : t -> Ksim.Engine.kind

val boot : t -> Ksim.Machine.t
(** A fresh guest (a snapshot restore, in the paper's terms).
    @raise Boot_failure when fault injection fails the boot. *)

val run :
  ?max_steps:int -> ?observe:Controller.observer -> t ->
  Controller.policy -> Controller.outcome
(** Run one schedule on a fresh guest, recording the outcome.  Under
    fault injection the run may be truncated by an injected hang
    (verdict [Step_limit]), perturbed by a spurious extra context
    switch, or have its verdict flapped; see {!Faults}.
    @raise Boot_failure when fault injection fails the boot. *)

val resume :
  ?max_steps:int -> ?observe:Controller.observer -> t ->
  Controller.start -> Controller.policy -> Controller.outcome
(** Continue a schedule from a restored mid-run snapshot: only the
    suffix beyond the start executes, but the outcome covers the whole
    run exactly as [run] would report it.  The modeled cost of the
    restored prefix (and of the reboot the restore made unnecessary,
    when the previous run failed) is credited to [simulated_saved]. *)

val penalize : t -> float -> unit
(** Add modeled seconds to the cost model — the resilience layer's
    exponential backoff between retries, charged to simulated time
    instead of the host clock. *)

val absorb : t -> t -> unit
(** [absorb t worker] folds the worker guest's accounting (runs,
    failures, steps, savings, penalties) into [t].  The pool gives
    each task its own guest and the coordinator absorbs them in
    shard-index order.  [t]'s [last_run_failed] coupling is left
    untouched: it relates consecutive runs of one guest, so the
    reboot-avoided credit of {!resume} can differ slightly between a
    sequential run and a parallel one — chains and schedule counts do
    not. *)

val runs : t -> int
val failures : t -> int
val total_steps : t -> int

val executed_steps : t -> int
(** Instructions actually executed — excludes restored prefixes, which
    [total_steps] includes. *)

val saved_steps : t -> int
(** Prefix instructions obtained from snapshots instead of execution. *)

val resumes : t -> int

val simulated_seconds : t -> float
(** Wall-clock estimate under the cost model, net of snapshot savings. *)

val simulated_saved : t -> float
(** Modeled seconds the snapshot cache saved ([0.] when disabled). *)

val pp_stats : t Fmt.t
