(* Prefix-sharing snapshot cache (our analogue of AITIA's VM snapshot
   tree).

   The machine is a persistent value, so a "snapshot" is just keeping
   the machine reached after each step of a run — copy-on-write through
   the persistent maps, no deep copy.  A run's snapshots form one
   vector, keyed by the schedule that produced it; because consecutive
   schedules explored by LIFS differ by one appended switch, the vector
   of a schedule IS the snapshot tree path shared with all its children:
   a child run restores the parent's snapshot at its divergence point
   and executes only the suffix.  Causality Analysis flip plans likewise
   share a long prefix with the failure trace they permute, so each flip
   restores the snapshot just before the flipped race instead of
   rebooting.

   Soundness rests on two invariants, both checked at lookup time:

   - {e policy-state capture}: a snapshot stores not just the machine
     but the enforcement policy's run queue and not-yet-consumed
     switches, dumped right after the decision that produced the step.
     A preemption hit requires the pending list at the divergence point
     to be empty — every parent switch already consumed — so resuming
     with exactly the child's new switch pending is bit-identical to a
     fresh run (schedules whose switches fire out of order simply miss
     and fall back to a full run).

   - {e poisoning}: a failing run's final snapshot carries the failure
     verdict; restoring it would skip the failure manifestation path.
     Lookups never return a failed snapshot — [healthy] caps how deep a
     prefix may be reused, so the faulting step itself always
     re-executes.

   Shared tier: every public operation takes one cache-wide lock (a
   no-op mutex on the single-domain build), so one cache can back all
   workers of a pool.  Machines are persistent values — restoring a
   snapshot never mutates it — so sharing needs no copying; the only
   new hazard under contention is the hit→store window: worker A
   restores a prefix from a parent vector, worker B poisons that
   vector (its restore was detected corrupted), and A would then store
   a child vector built on the bad prefix.  Each vector therefore
   carries a generation counter, bumped on poison; a preemption hit
   records the parent's generation and [store ~parent] silently drops
   the child when the recorded generation is stale. *)

module Iid = Ksim.Access.Iid

type snap = {
  machine : Ksim.Machine.t;
  trace_rev : Ksim.Machine.event list;  (* events 1..steps, reversed *)
  steps : int;
  queue : int list;                     (* policy run queue after the step *)
  pending : Schedule.switch list;       (* switches not yet consumed *)
}

type vector = {
  snaps : snap array;  (* snaps.(k) = position after k+1 steps *)
  iids : Iid.t array;  (* iids.(k) = the (k+1)-th executed instruction *)
  mutable healthy : int;  (* leading snaps whose machine has not failed;
                             forced to 0 when the entry is poisoned *)
  mutable generation : int;  (* bumped on poison; a hit records it so a
                                later store can detect the stale prefix *)
  bytes : int;         (* estimated footprint, for the LRU budget *)
  mutable tick : int;  (* LRU recency stamp *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable restored_instrs : int;  (* prefix instructions not re-executed *)
  mutable poisonings : int;           (* entries poisoned explicitly *)
  mutable poisoned_refusals : int;    (* lookups refused by poisoning *)
}

type t = {
  budget_bytes : int;
  tbl : (string, vector) Hashtbl.t;
  lock : Pool_backend.Lock.t;  (* guards tbl, stats, clock, totals *)
  mutable total_bytes : int;
  mutable clock : int;
  stats : stats;
}

let default_budget_bytes = 512 * 1024 * 1024

let create ?(budget_bytes = default_budget_bytes) () =
  { budget_bytes;
    tbl = Hashtbl.create 256;
    lock = Pool_backend.Lock.create ();
    total_bytes = 0;
    clock = 0;
    stats =
      { hits = 0; misses = 0; evictions = 0; restored_instrs = 0;
        poisonings = 0; poisoned_refusals = 0 } }

let locked t f = Pool_backend.Lock.protect t.lock f

(* A zero (or negative) budget disables the cache entirely: callers take
   the plain reboot path and behaviour is bit-identical to no cache. *)
let enabled t = t.budget_bytes > 0

let hits t = locked t (fun () -> t.stats.hits)
let misses t = locked t (fun () -> t.stats.misses)
let evictions t = locked t (fun () -> t.stats.evictions)
let restored_instrs t = locked t (fun () -> t.stats.restored_instrs)
let poisonings t = locked t (fun () -> t.stats.poisonings)
let poisoned_refusals t = locked t (fun () -> t.stats.poisoned_refusals)
let cached_vectors t = locked t (fun () -> Hashtbl.length t.tbl)
let cached_bytes t = locked t (fun () -> t.total_bytes)

(* Rough per-vector footprint for the LRU budget.  The budget bounds an
   estimate, not exact bytes, but the estimate must track the engine's
   actual representation: reference-engine snapshots share persistent
   map structure, so each one costs a handful of rewritten spine nodes
   (a flat per-step constant); compiled-engine snapshots sharing one
   arena cost their marginal undo-log delta, while a snapshot opening a
   fresh arena is charged a full clone.  [Ksim.Machine.snapshot_cost]
   measures each machine against its predecessor in the vector, and a
   fixed overhead covers the vector bookkeeping.  For a reference-engine
   vector of n snaps this reduces to the historical 1024 + 256*n. *)
let estimate_bytes (snaps : snap array) =
  let total = ref 1024 in
  Array.iteri
    (fun k s ->
      let prev = if k = 0 then None else Some snaps.(k - 1).machine in
      total := !total + Ksim.Engine.snapshot_cost ?prev s.machine)
    snaps;
  !total

let touch t v =
  t.clock <- t.clock + 1;
  v.tick <- t.clock

let lookup t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    Telemetry.Probe.count "snapshot.misses";
    None
  | Some v ->
    touch t v;
    Some v

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key v acc ->
        match acc with
        | Some (_, best) when best.tick <= v.tick -> acc
        | _ -> Some (key, v))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (key, v) ->
    Hashtbl.remove t.tbl key;
    t.total_bytes <- t.total_bytes - v.bytes;
    t.stats.evictions <- t.stats.evictions + 1;
    Telemetry.Probe.count "snapshot.evictions"

(* Store the snapshot vector of a completed preemption run.  [base] is
   the shared prefix inherited from the parent vector when the run was
   itself resumed (empty for a full run); [suffix_rev] is what the
   controller observer captured, newest first.  [parent] names the
   vector (and its generation at hit time) the base prefix was restored
   from: if that vector has been poisoned since — possible only with
   concurrent workers — the child is built on a corrupted prefix and is
   silently dropped.  An evicted parent does not drop the store:
   eviction is benign and poisoned entries stay resident by design. *)
let store t ~key ?(parent : (string * int) option) ~(base : snap array)
    ~(suffix_rev : snap list) () =
  locked t (fun () ->
      let parent_fresh =
        match parent with
        | None -> true
        | Some (pkey, gen) -> (
          match Hashtbl.find_opt t.tbl pkey with
          | None -> true
          | Some pv -> pv.generation = gen)
      in
      if parent_fresh && enabled t && not (Hashtbl.mem t.tbl key) then (
        let snaps =
          Array.append base (Array.of_list (List.rev suffix_rev))
        in
        (* Capture through the engine interface before publishing: a
           compiled-engine machine is frozen and gives up its in-place
           fast path, so concurrent restores from other workers only
           ever read the shared arena.  No-op for reference machines. *)
        Array.iter
          (fun s -> ignore (Ksim.Engine.snapshot s.machine : Ksim.Engine.snapshot))
          snaps;
        if Array.length snaps > 0 then (
          let iids =
            Array.map
              (fun s ->
                match s.trace_rev with
                | e :: _ -> e.Ksim.Machine.iid
                | [] -> assert false (* a snap always follows >= 1 step *))
              snaps
          in
          let healthy = ref (Array.length snaps) in
          Array.iteri
            (fun k s ->
              if !healthy = Array.length snaps
                 && Ksim.Machine.failed s.machine <> None
              then healthy := k)
            snaps;
          let bytes = estimate_bytes snaps in
          let v =
            { snaps; iids; healthy = !healthy; generation = 0; bytes;
              tick = 0 }
          in
          touch t v;
          Hashtbl.replace t.tbl key v;
          t.total_bytes <- t.total_bytes + bytes;
          while t.total_bytes > t.budget_bytes && Hashtbl.length t.tbl > 0 do
            evict_lru t
          done)))

(* Explicitly poison an entry — a restore from it was detected as
   corrupted (fault injection, or any future integrity check).  Forcing
   [healthy] to 0 makes every future lookup refuse the vector, so
   callers degrade to the reboot path; the entry stays resident (and
   counted) rather than deleted, mirroring the paper's quarantined
   snapshots. *)
let poison t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> ()
      | Some v ->
        if v.healthy > 0 then (
          v.healthy <- 0;
          v.generation <- v.generation + 1;
          t.stats.poisonings <- t.stats.poisonings + 1;
          Telemetry.Probe.count "snapshot.poisonings"))

(* A lookup walked into the poisoned (or failing) region of a vector
   and was refused: degraded-mode runs show up in [aitia stats] through
   this counter instead of failing silently. *)
let refuse_poisoned t =
  t.stats.poisoned_refusals <- t.stats.poisoned_refusals + 1;
  Telemetry.Probe.count "snapshot.poisoned_refusals"

(* --- preemption lookups ----------------------------------------------- *)

type preemption_hit = {
  start : Controller.start;
  resume_queue : int list;
  resume_switches : Schedule.switch list;
  base : snap array;  (* adjusted prefix snaps for re-capture *)
  vector_key : string;  (* the vector the start was restored from *)
  parent_generation : int;  (* its generation at hit time, for store *)
}

let start_of_snap (s : snap) : Controller.start =
  { Controller.start_machine = s.machine;
    start_trace_rev = s.trace_rev;
    start_steps = s.steps }

let index_of_iid (iids : Iid.t array) (iid : Iid.t) =
  let n = Array.length iids in
  let rec go k =
    if k >= n then None
    else if Iid.equal iids.(k) iid then Some k
    else go (k + 1)
  in
  go 0

let hit t (s : snap) =
  t.stats.hits <- t.stats.hits + 1;
  t.stats.restored_instrs <- t.stats.restored_instrs + s.steps;
  if Telemetry.Probe.installed () then (
    Telemetry.Probe.count "snapshot.hits";
    Telemetry.Probe.count ~by:s.steps "snapshot.restored_instrs")

(* The longest reusable prefix of a preemption schedule: the run of the
   same schedule minus its last switch, restored just after the step
   that triggers that switch. *)
let find_preemption t (sched : Schedule.preemption) : preemption_hit option =
  if not (enabled t) then None
  else
    match List.rev sched.Schedule.switches with
    | [] -> None (* a serial schedule has no parent prefix *)
    | last :: parent_rev ->
      locked t (fun () ->
          let parent =
            { sched with Schedule.switches = List.rev parent_rev }
          in
          let parent_key = Schedule.preemption_key parent in
          match lookup t parent_key with
          | None -> None
          | Some v -> (
            match index_of_iid v.iids last.Schedule.after with
            | None ->
              (* the trigger never executed in the parent run *)
              None
            | Some i ->
              let s = v.snaps.(i) in
              if i >= v.healthy || s.pending <> [] then (
                (* poisoned snapshot, or parent switches not all consumed
                   by the divergence point: fall back to a full run *)
                if i >= v.healthy then refuse_poisoned t;
                None)
              else (
                hit t s;
                (* For re-capture by the resumed run: the child's pending
                   list at each prefix position is the parent's plus the
                   new switch, still unconsumed there. *)
                let base =
                  Array.map
                    (fun (b : snap) ->
                      { b with pending = b.pending @ [ last ] })
                    (Array.sub v.snaps 0 (i + 1))
                in
                Some
                  { start = start_of_snap s;
                    resume_queue = s.queue;
                    resume_switches = [ last ];
                    base;
                    vector_key = parent_key;
                    parent_generation = v.generation })))

(* --- plan lookups ------------------------------------------------------ *)

type plan_hit = {
  plan_start : Controller.start;
  suffix : Schedule.plan;
  matched : int;  (* plan events satisfied by the restored prefix *)
}

(* The longest prefix of the plan that coincides with the stored run
   under [key] (for Causality Analysis: the failure run being
   permuted).  Along such a prefix the plan policy matches every event
   immediately, so restoring the snapshot and enforcing only the suffix
   plan is bit-identical to a fresh run. *)
let find_plan t ~key (plan : Schedule.plan) : plan_hit option =
  if not (enabled t) then None
  else
    locked t (fun () ->
        match lookup t key with
        | None -> None
        | Some v ->
          let rec matched k = function
            | ev :: rest
              when k < v.healthy
                   && k < Array.length v.iids
                   && Iid.equal v.iids.(k) ev ->
              matched (k + 1) rest
            | _ -> k
          in
          let l = matched 0 plan.Schedule.events in
          (* Did matching stop at the healthy cap rather than a genuine
             divergence?  Then poisoning is what refused (part of) the
             prefix. *)
          (if
             l >= v.healthy
             && l < Array.length v.iids
             &&
             match List.nth_opt plan.Schedule.events l with
             | Some ev -> Iid.equal v.iids.(l) ev
             | None -> false
           then refuse_poisoned t);
          if l = 0 then None
          else (
            let s = v.snaps.(l - 1) in
            hit t s;
            Some
              { plan_start = start_of_snap s;
                suffix = Schedule.plan_drop plan l;
                matched = l }))
