(** The generic schedule-enforcement loop — the KVM/QEMU analogue.

    Where the AITIA hypervisor installs breakpoints and parks threads in
    the trampoline, this controller steps the persistent machine one
    instruction at a time, asking a policy which thread runs next; a
    thread the policy does not pick is exactly a trampoline-suspended
    thread. *)

type verdict =
  | Completed                   (** every thread ran to the end *)
  | Failed of Ksim.Failure.t
  | Deadlock                    (** live threads, none runnable *)
  | Step_limit                  (** watchdog *)

type outcome = {
  verdict : verdict;
  trace : Ksim.Machine.event list;  (** execution order *)
  final : Ksim.Machine.t;
  steps : int;
}

val is_failure : outcome -> bool

type policy = Ksim.Machine.t -> int list -> int option
(** A policy sees the machine and the runnable set and picks a thread;
    [None] gives up (deadlock if threads remain). *)

type observer = Ksim.Machine.t -> Ksim.Machine.event list -> int -> unit
(** Called after every successfully executed step with the machine
    after the step, the trace so far in {e reverse} order, and the step
    count.  The snapshot cache captures prefix states through this; when
    absent the loop is unchanged. *)

type start = {
  start_machine : Ksim.Machine.t;
  start_trace_rev : Ksim.Machine.event list;  (** reversed prefix trace *)
  start_steps : int;
}
(** A resumable mid-run position.  The machine is persistent, so a start
    IS the state after its prefix — resuming is bit-identical to
    re-executing the prefix from a fresh boot. *)

val default_max_steps : int

val irq_in_progress : Ksim.Machine.t -> int list -> int option
(** A started hardware-interrupt handler among the runnable threads.  On
    its own CPU a handler is not preemptible, but it races freely with
    threads on other CPUs (the paper's §4.6 bug class); policies modeling
    a single-CPU guest can use this to run it to completion. *)

val run :
  ?max_steps:int -> ?observe:observer -> Ksim.Machine.t -> policy -> outcome
(** Runs under a [controller.run] telemetry span with step-loop
    counters (instructions stepped, context switches); when no sink is
    installed the instrumentation is a no-op and the outcome is
    bit-identical. *)

val resume : ?max_steps:int -> ?observe:observer -> start -> policy -> outcome
(** Continue a run from a restored snapshot position.  The outcome's
    trace and step count cover the whole run (prefix + suffix), exactly
    as [run] would report, but only the suffix instructions execute —
    the telemetry instruction counter reflects the suffix alone. *)

val context_switches : Ksim.Machine.event list -> int
(** Context switches of a trace — the scheduling analogue of the
    hypervisor's breakpoint-hit count. *)

val verdict_name : verdict -> string
(** Short stable name ([completed], [failed], …) for telemetry args. *)

val pp_verdict : verdict Fmt.t
