(** The generic schedule-enforcement loop — the KVM/QEMU analogue.

    Where the AITIA hypervisor installs breakpoints and parks threads in
    the trampoline, this controller steps the persistent machine one
    instruction at a time, asking a policy which thread runs next; a
    thread the policy does not pick is exactly a trampoline-suspended
    thread. *)

type verdict =
  | Completed                   (** every thread ran to the end *)
  | Failed of Ksim.Failure.t
  | Deadlock                    (** live threads, none runnable *)
  | Step_limit                  (** watchdog *)

type outcome = {
  verdict : verdict;
  trace : Ksim.Machine.event list;  (** execution order *)
  final : Ksim.Machine.t;
  steps : int;
}

val is_failure : outcome -> bool

type policy = Ksim.Machine.t -> int list -> int option
(** A policy sees the machine and the runnable set and picks a thread;
    [None] gives up (deadlock if threads remain). *)

val default_max_steps : int

val irq_in_progress : Ksim.Machine.t -> int list -> int option
(** A started hardware-interrupt handler among the runnable threads.  On
    its own CPU a handler is not preemptible, but it races freely with
    threads on other CPUs (the paper's §4.6 bug class); policies modeling
    a single-CPU guest can use this to run it to completion. *)

val run : ?max_steps:int -> Ksim.Machine.t -> policy -> outcome
(** Runs under a [controller.run] telemetry span with step-loop
    counters (instructions stepped, context switches); when no sink is
    installed the instrumentation is a no-op and the outcome is
    bit-identical. *)

val context_switches : Ksim.Machine.event list -> int
(** Context switches of a trace — the scheduling analogue of the
    hypervisor's breakpoint-hit count. *)

val verdict_name : verdict -> string
(** Short stable name ([completed], [failed], …) for telemetry args. *)

val pp_verdict : verdict Fmt.t
