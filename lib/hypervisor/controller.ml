(* The generic schedule-enforcement loop.

   This is our KVM/QEMU analogue: where the AITIA hypervisor installs
   breakpoints, parks threads in the trampoline and resumes them per the
   schedule, our controller steps the persistent machine one instruction
   at a time, asking a policy which thread to run next.  A thread that the
   policy does not pick is exactly a trampoline-suspended thread: it stays
   responsive (its lock state and spawn events remain visible) but makes
   no progress. *)

type verdict =
  | Completed                    (* every thread ran to the end, no failure *)
  | Failed of Ksim.Failure.t
  | Deadlock                     (* live threads but none runnable *)
  | Step_limit                   (* watchdog: the run did not converge *)

type outcome = {
  verdict : verdict;
  trace : Ksim.Machine.event list;  (* in execution order *)
  final : Ksim.Machine.t;
  steps : int;
}

let is_failure o = match o.verdict with Failed _ -> true | _ -> false

(* A policy sees the machine and the runnable set and picks a thread, or
   [None] to give up (treated as deadlock if threads remain). *)
type policy = Ksim.Machine.t -> int list -> int option

let default_max_steps = 200_000

(* A hardware interrupt handler that has started, among the runnable
   threads.  On the CPU that took the interrupt the handler is not
   preemptible, but it races freely with threads on other CPUs — which
   is exactly the bug class of the paper's §4.6 — so this is exposed for
   policies that model a single-CPU guest, not enforced globally. *)
let irq_in_progress m runnable =
  List.find_opt
    (fun tid ->
      Ksim.Machine.thread_context m tid = Ksim.Program.Hardirq
      && Ksim.Machine.has_started m tid)
    runnable

let verdict_name = function
  | Completed -> "completed"
  | Failed _ -> "failed"
  | Deadlock -> "deadlock"
  | Step_limit -> "step-limit"

(* Context switches of a trace: the scheduling analogue of the
   hypervisor's breakpoint-hit count — each switch is one trampoline
   interception in the paper's setup. *)
let context_switches (trace : Ksim.Machine.event list) =
  let rec go prev n = function
    | [] -> n
    | (e : Ksim.Machine.event) :: rest ->
      let tid = e.iid.Ksim.Access.Iid.tid in
      go (Some tid)
        (if prev = Some tid || prev = None then n else n + 1)
        rest
  in
  go None 0 trace

(* Run [m] under [policy] until completion, failure, deadlock or the step
   watchdog. *)
let run_raw ?(max_steps = default_max_steps) (m : Ksim.Machine.t)
    (policy : policy) : outcome =
  let rec loop m acc steps =
    if steps >= max_steps then
      { verdict = Step_limit; trace = List.rev acc; final = m; steps }
    else
      match Ksim.Machine.failed m with
      | Some f -> { verdict = Failed f; trace = List.rev acc; final = m; steps }
      | None -> (
        match Ksim.Machine.runnable m with
        | [] ->
          let m = Ksim.Machine.check_leaks m in
          (match Ksim.Machine.failed m with
          | Some f ->
            { verdict = Failed f; trace = List.rev acc; final = m; steps }
          | None ->
            if Ksim.Machine.all_done m then
              { verdict = Completed; trace = List.rev acc; final = m; steps }
            else
              { verdict = Deadlock; trace = List.rev acc; final = m; steps })
        | runnable -> (
          match policy m runnable with
          | None ->
            let m = Ksim.Machine.check_leaks m in
            (match Ksim.Machine.failed m with
            | Some f ->
              { verdict = Failed f; trace = List.rev acc; final = m; steps }
            | None ->
              if Ksim.Machine.all_done m then
                { verdict = Completed; trace = List.rev acc; final = m; steps }
              else
                { verdict = Deadlock; trace = List.rev acc; final = m; steps })
          | Some tid -> (
            match Ksim.Machine.step m tid with
            | Ok (m, ev) -> loop m (ev :: acc) (steps + 1)
            | Error (Ksim.Machine.Blocked_on_lock _) ->
              (* The policy picked a blocked thread; treat as deadlock
                 rather than spinning — policies are expected to consult
                 the runnable set. *)
              { verdict = Deadlock; trace = List.rev acc; final = m; steps }
            | Error Ksim.Machine.Thread_not_runnable ->
              { verdict = Deadlock; trace = List.rev acc; final = m; steps }
            | Error Ksim.Machine.Machine_failed -> (
              match Ksim.Machine.failed m with
              | Some f ->
                { verdict = Failed f; trace = List.rev acc; final = m; steps }
              | None -> assert false))))
  in
  loop m [] 0

(* The instrumented entry point: one span per enforced schedule, plus
   the step-loop counters (instructions stepped, context switches —
   our breakpoint hits).  The counters are derived after the run from
   local state, so the disabled path costs one ref read. *)
let run ?max_steps (m : Ksim.Machine.t) (policy : policy) : outcome =
  Telemetry.Probe.span_begin ~cat:"hypervisor" "controller.run";
  let o = run_raw ?max_steps m policy in
  if Telemetry.Probe.installed () then (
    Telemetry.Probe.count "controller.runs";
    Telemetry.Probe.count ~by:o.steps "controller.instructions";
    Telemetry.Probe.count
      ~by:(context_switches o.trace)
      "controller.context_switches";
    Telemetry.Probe.count ("controller.verdict." ^ verdict_name o.verdict);
    Telemetry.Probe.span_end
      ~args:
        [ ("verdict", verdict_name o.verdict);
          ("steps", string_of_int o.steps) ]
      ());
  o

let pp_verdict ppf = function
  | Completed -> Fmt.string ppf "completed"
  | Failed f -> Fmt.pf ppf "failed: %a" Ksim.Failure.pp f
  | Deadlock -> Fmt.string ppf "deadlock"
  | Step_limit -> Fmt.string ppf "step-limit"
