(* The generic schedule-enforcement loop.

   This is our KVM/QEMU analogue: where the AITIA hypervisor installs
   breakpoints, parks threads in the trampoline and resumes them per the
   schedule, our controller steps the persistent machine one instruction
   at a time, asking a policy which thread to run next.  A thread that the
   policy does not pick is exactly a trampoline-suspended thread: it stays
   responsive (its lock state and spawn events remain visible) but makes
   no progress. *)

type verdict =
  | Completed                    (* every thread ran to the end, no failure *)
  | Failed of Ksim.Failure.t
  | Deadlock                     (* live threads but none runnable *)
  | Step_limit                   (* watchdog: the run did not converge *)

type outcome = {
  verdict : verdict;
  trace : Ksim.Machine.event list;  (* in execution order *)
  final : Ksim.Machine.t;
  steps : int;
}

let is_failure o = match o.verdict with Failed _ -> true | _ -> false

(* A policy sees the machine and the runnable set and picks a thread, or
   [None] to give up (treated as deadlock if threads remain). *)
type policy = Ksim.Machine.t -> int list -> int option

(* An observer sees every successfully executed step: the machine after
   the step, the trace so far in reverse order, and the step count.  The
   snapshot cache uses it to capture prefix states as they are produced;
   when absent the loop is unchanged. *)
type observer = Ksim.Machine.t -> Ksim.Machine.event list -> int -> unit

(* A resumable position inside a run: the machine after [start_steps]
   steps together with the reversed trace that produced it.  Resuming
   from a start is bit-identical to re-executing the prefix because the
   machine is a persistent value — the start IS the mid-run state. *)
type start = {
  start_machine : Ksim.Machine.t;
  start_trace_rev : Ksim.Machine.event list;
  start_steps : int;
}

let default_max_steps = 200_000

(* A hardware interrupt handler that has started, among the runnable
   threads.  On the CPU that took the interrupt the handler is not
   preemptible, but it races freely with threads on other CPUs — which
   is exactly the bug class of the paper's §4.6 — so this is exposed for
   policies that model a single-CPU guest, not enforced globally. *)
let irq_in_progress m runnable =
  List.find_opt
    (fun tid ->
      Ksim.Machine.thread_context m tid = Ksim.Program.Hardirq
      && Ksim.Machine.has_started m tid)
    runnable

let verdict_name = function
  | Completed -> "completed"
  | Failed _ -> "failed"
  | Deadlock -> "deadlock"
  | Step_limit -> "step-limit"

(* Context switches of a trace: the scheduling analogue of the
   hypervisor's breakpoint-hit count — each switch is one trampoline
   interception in the paper's setup. *)
let context_switches (trace : Ksim.Machine.event list) =
  let rec go prev n = function
    | [] -> n
    | (e : Ksim.Machine.event) :: rest ->
      let tid = e.iid.Ksim.Access.Iid.tid in
      go (Some tid)
        (if prev = Some tid || prev = None then n else n + 1)
        rest
  in
  go None 0 trace

(* Run [m] under [policy] until completion, failure, deadlock or the step
   watchdog, starting from an arbitrary resumable position. *)
let run_from ?(max_steps = default_max_steps) ?observe (start : start)
    (policy : policy) : outcome =
  let rec loop m acc steps =
    if steps >= max_steps then
      { verdict = Step_limit; trace = List.rev acc; final = m; steps }
    else
      match Ksim.Machine.failed m with
      | Some f -> { verdict = Failed f; trace = List.rev acc; final = m; steps }
      | None -> (
        match Ksim.Machine.runnable m with
        | [] ->
          let m = Ksim.Machine.check_leaks m in
          (match Ksim.Machine.failed m with
          | Some f ->
            { verdict = Failed f; trace = List.rev acc; final = m; steps }
          | None ->
            if Ksim.Machine.all_done m then
              { verdict = Completed; trace = List.rev acc; final = m; steps }
            else
              { verdict = Deadlock; trace = List.rev acc; final = m; steps })
        | runnable -> (
          match policy m runnable with
          | None ->
            let m = Ksim.Machine.check_leaks m in
            (match Ksim.Machine.failed m with
            | Some f ->
              { verdict = Failed f; trace = List.rev acc; final = m; steps }
            | None ->
              if Ksim.Machine.all_done m then
                { verdict = Completed; trace = List.rev acc; final = m; steps }
              else
                { verdict = Deadlock; trace = List.rev acc; final = m; steps })
          | Some tid -> (
            match Ksim.Engine.step m tid with
            | Ok (m, ev) ->
              let acc = ev :: acc in
              let steps = steps + 1 in
              (match observe with
              | Some f -> f m acc steps
              | None -> ());
              loop m acc steps
            | Error (Ksim.Machine.Blocked_on_lock _) ->
              (* The policy picked a blocked thread; treat as deadlock
                 rather than spinning — policies are expected to consult
                 the runnable set. *)
              { verdict = Deadlock; trace = List.rev acc; final = m; steps }
            | Error Ksim.Machine.Thread_not_runnable ->
              { verdict = Deadlock; trace = List.rev acc; final = m; steps }
            | Error Ksim.Machine.Machine_failed -> (
              match Ksim.Machine.failed m with
              | Some f ->
                { verdict = Failed f; trace = List.rev acc; final = m; steps }
              | None -> assert false))))
  in
  loop start.start_machine start.start_trace_rev start.start_steps

let run_raw ?max_steps ?observe (m : Ksim.Machine.t) (policy : policy) :
    outcome =
  run_from ?max_steps ?observe
    { start_machine = m; start_trace_rev = []; start_steps = 0 }
    policy

(* The instrumented entry point: one span per enforced schedule, plus
   the step-loop counters (instructions stepped, context switches —
   our breakpoint hits).  The counters are derived after the run from
   local state, so the disabled path costs one ref read. *)
let run ?max_steps ?observe (m : Ksim.Machine.t) (policy : policy) : outcome =
  Telemetry.Probe.span_begin ~cat:"hypervisor" "controller.run";
  let o = run_raw ?max_steps ?observe m policy in
  if Telemetry.Probe.installed () then (
    Telemetry.Probe.count "controller.runs";
    Telemetry.Probe.count ~by:o.steps "controller.instructions";
    Telemetry.Probe.count
      ~by:(context_switches o.trace)
      "controller.context_switches";
    Telemetry.Probe.count ("controller.verdict." ^ verdict_name o.verdict);
    Telemetry.Probe.span_end
      ~args:
        [ ("verdict", verdict_name o.verdict);
          ("steps", string_of_int o.steps) ]
      ());
  o

(* A resumed run executes only the suffix beyond [start]: the span and
   instruction counter cover the divergent steps, never the restored
   prefix — that is the saving the snapshot cache exists to make. *)
let resume ?max_steps ?observe (start : start) (policy : policy) : outcome =
  Telemetry.Probe.span_begin ~cat:"hypervisor" "controller.resume";
  let o = run_from ?max_steps ?observe start policy in
  if Telemetry.Probe.installed () then (
    Telemetry.Probe.count "controller.resumed_runs";
    Telemetry.Probe.count ~by:(o.steps - start.start_steps)
      "controller.instructions";
    Telemetry.Probe.count ("controller.verdict." ^ verdict_name o.verdict);
    Telemetry.Probe.span_end
      ~args:
        [ ("verdict", verdict_name o.verdict);
          ("prefix_steps", string_of_int start.start_steps);
          ("steps", string_of_int o.steps) ]
      ());
  o

let pp_verdict ppf = function
  | Completed -> Fmt.string ppf "completed"
  | Failed f -> Fmt.pf ppf "failed: %a" Ksim.Failure.pp f
  | Deadlock -> Fmt.string ppf "deadlock"
  | Step_limit -> Fmt.string ppf "step-limit"
