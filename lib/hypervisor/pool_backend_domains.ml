(* Pool backend, OCaml 5 build: real domains.  The dune rules copy
   this file to pool_backend.ml on >= 5.0 and pool_backend_seq.ml (a
   single-threaded stand-in with the same signature) otherwise, so the
   4.14 matrix leg keeps compiling without a threads dependency. *)

let name = "domains"
let parallel = true
let cpu_count () = Domain.recommended_domain_count ()

module Lock = struct
  type t = Mutex.t

  let create () = Mutex.create ()

  (* Mutex.protect only appeared in 5.1; open-code it. *)
  let protect m f =
    Mutex.lock m;
    match f () with
    | v ->
      Mutex.unlock m;
      v
    | exception e ->
      Mutex.unlock m;
      raise e
end

type handle = unit Domain.t

let spawn (f : unit -> unit) : handle = Domain.spawn f
let join (h : handle) = Domain.join h
