(* Deterministic, seedable fault injection for the execution layer.

   Every decision is drawn from a splitmix64 stream seeded at creation,
   so a (spec, seed) pair fully determines the fault schedule across
   runs and OCaml versions.  Decision points are consumed in execution
   order; retried attempts therefore see fresh dice, which is exactly
   the transient-fault model the retry loop assumes. *)

type spec = {
  boot : float;
  hang : float;
  miss : float;
  spurious : float;
  restore : float;
  flap : float;
  site : string option;
}

let none =
  { boot = 0.; hang = 0.; miss = 0.; spurious = 0.; restore = 0.;
    flap = 0.; site = None }

let mixed rate =
  let p = rate /. 6. in
  { boot = p; hang = p; miss = p; spurious = p; restore = p; flap = p;
    site = None }

let spec_of_string s =
  let field acc item =
    let item = String.trim item in
    if String.equal item "" then acc
    else
      match String.index_opt item '=' with
      | None ->
        failwith (Fmt.str "expected key=value, got %S" item)
      | Some i ->
        let k = String.lowercase_ascii (String.sub item 0 i) in
        let v = String.sub item (i + 1) (String.length item - i - 1) in
        let rate () =
          match float_of_string_opt v with
          | Some r when r >= 0. && r <= 1. -> r
          | Some _ ->
            failwith (Fmt.str "rate out of range [0,1] in %S" item)
          | None -> failwith (Fmt.str "expected a rate in %S" item)
        in
        (match k with
        | "rate" -> { (mixed (rate ())) with site = acc.site }
        | "boot" -> { acc with boot = rate () }
        | "hang" -> { acc with hang = rate () }
        | "miss" -> { acc with miss = rate () }
        | "spurious" -> { acc with spurious = rate () }
        | "restore" -> { acc with restore = rate () }
        | "flap" -> { acc with flap = rate () }
        | "site" ->
          if String.equal v "" then
            failwith "site= expects an instruction label"
          else { acc with site = Some v }
        | _ -> failwith (Fmt.str "unknown fault kind %S" k))
  in
  match List.fold_left field none (String.split_on_char ',' s) with
  | spec -> Ok spec
  | exception Failure msg -> Error msg

let spec_to_string spec =
  let kinds =
    [ ("boot", spec.boot); ("hang", spec.hang); ("miss", spec.miss);
      ("spurious", spec.spurious); ("restore", spec.restore);
      ("flap", spec.flap) ]
  in
  let parts =
    List.filter_map
      (fun (k, r) -> if r > 0. then Some (Fmt.str "%s=%g" k r) else None)
      kinds
    @ match spec.site with Some l -> [ "site=" ^ l ] | None -> []
  in
  if parts = [] then "none" else String.concat "," parts

let pp_spec ppf spec = Fmt.string ppf (spec_to_string spec)

type counts = {
  mutable n_boot : int;
  mutable n_hang : int;
  mutable n_miss : int;
  mutable n_spurious : int;
  mutable n_restore : int;
  mutable n_flap : int;
}

let total c =
  c.n_boot + c.n_hang + c.n_miss + c.n_spurious + c.n_restore + c.n_flap

type t = {
  spec : spec;
  seed : int;
  mutable state : int64;
  counts : counts;
  mutable attempt_tainted : bool;
}

let create ?(seed = 1) spec =
  { spec; seed;
    state = Int64.of_int seed;
    counts =
      { n_boot = 0; n_hang = 0; n_miss = 0; n_spurious = 0; n_restore = 0;
        n_flap = 0 };
    attempt_tainted = false }

let spec t = t.spec
let seed t = t.seed
let counts t = t.counts
let injected t = total t.counts

let active t =
  let s = t.spec in
  s.boot > 0. || s.hang > 0. || s.miss > 0. || s.spurious > 0.
  || s.restore > 0. || s.flap > 0.

let flappy t = t.spec.flap > 0.

(* splitmix64: tiny, stateful, portable across OCaml versions. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0,1): the top 53 bits of the next output. *)
let unit_float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

let draw t rate = rate > 0. && unit_float t < rate

(* Uniform in [0,n). *)
let pick t n =
  Int64.to_int
    (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let start_attempt t = t.attempt_tainted <- false
let tainted t = t.attempt_tainted

let note t kind =
  let c = t.counts in
  let name =
    match kind with
    | `Boot -> c.n_boot <- c.n_boot + 1; "faults.boot"
    | `Hang -> c.n_hang <- c.n_hang + 1; "faults.hang"
    | `Miss -> c.n_miss <- c.n_miss + 1; "faults.miss"
    | `Spurious -> c.n_spurious <- c.n_spurious + 1; "faults.spurious"
    | `Restore -> c.n_restore <- c.n_restore + 1; "faults.restore"
    | `Flap -> c.n_flap <- c.n_flap + 1; "faults.flap"
  in
  Telemetry.Probe.count name

let boot_fails t =
  if draw t t.spec.boot then (
    note t `Boot;
    t.attempt_tainted <- true;
    true)
  else false

(* The hang step is drawn up front (bounded so short runs can still be
   hit); counting and tainting wait for the cap to actually fire. *)
let plan_hang t ~max_steps =
  if draw t t.spec.hang then
    Some (1 + pick t (max 1 (min max_steps 4096)))
  else None

let note_hang t =
  note t `Hang;
  t.attempt_tainted <- true

let wrap_policy t (policy : Controller.policy) : Controller.policy =
  if not (draw t t.spec.spurious) then policy
  else (
    let at = 1 + pick t 64 in
    let calls = ref 0 in
    fun m runnable ->
      let choice = policy m runnable in
      incr calls;
      if !calls <> at then choice
      else
        match choice with
        | Some tid -> (
          match List.find_opt (fun u -> u <> tid) runnable with
          | Some u ->
            note t `Spurious;
            t.attempt_tainted <- true;
            Some u
          | None -> choice)
        | None -> choice)

(* Which positions a site-targeted miss may hit: all of them without a
   site, only those at the named static label with one. *)
let eligible_indices t ~label items =
  List.mapi (fun i it -> (i, it)) items
  |> List.filter_map (fun (i, it) ->
         match t.spec.site with
         | None -> Some i
         | Some site -> if String.equal (label it) site then Some i else None)

let drop_switches t (switches : Schedule.switch list) =
  if switches = [] || not (draw t t.spec.miss) then (switches, false)
  else
    let label (sw : Schedule.switch) = sw.after.Ksim.Access.Iid.label in
    match eligible_indices t ~label switches with
    | [] -> (switches, false)
    | idxs ->
      let k = List.nth idxs (pick t (List.length idxs)) in
      note t `Miss;
      t.attempt_tainted <- true;
      (List.filteri (fun i _ -> i <> k) switches, true)

let drop_plan_event t (plan : Schedule.plan) =
  if plan.events = [] || not (draw t t.spec.miss) then (plan, false)
  else
    let label (iid : Schedule.Iid.t) = iid.Ksim.Access.Iid.label in
    match eligible_indices t ~label plan.events with
    | [] -> (plan, false)
    | idxs ->
      let k = List.nth idxs (pick t (List.length idxs)) in
      note t `Miss;
      t.attempt_tainted <- true;
      ({ plan with events = List.filteri (fun i _ -> i <> k) plan.events },
       true)

let corrupt_restore t =
  if draw t t.spec.restore then (
    note t `Restore;
    true)
  else false

let flap t (o : Controller.outcome) =
  if not (draw t t.spec.flap) then o
  else (
    note t `Flap;
    match o.verdict with
    | Controller.Failed _ ->
      (* Missed detection: the failure manifested but the harness did
         not see it. *)
      { o with verdict = Controller.Completed }
    | Controller.Completed | Controller.Deadlock | Controller.Step_limit ->
      (* Spurious detection: fabricate a crash at the last executed
         instruction. *)
      let at =
        match List.rev o.trace with
        | (e : Ksim.Machine.event) :: _ -> e.iid
        | [] -> Ksim.Access.Iid.make ~tid:0 ~label:"<flap>" ~occ:1
      in
      { o with
        verdict = Controller.Failed (Ksim.Failure.General_protection_fault { at })
      })
