(** Failure-relevance closure over abstract locations: the abstract
    domain the error-invariant engine ({!Invariants}) reasons in.

    A flow-insensitive fixpoint over the whole program group computes
    the set of {e relevant locations} — locations whose content can
    (transitively) influence a branch condition, a BUG_ON/WARN_ON
    predicate, an address computation, a spawn argument or a kfree
    target.  Reordering accesses confined to irrelevant locations
    cannot change any thread's instruction sequence nor the failure
    predicate's operands: that is the invariant the engine's segment
    certificates rest on, and the criterion LIFS uses to skip frontier
    slices. *)

type t

val of_group : Ksim.Program.group -> t
(** The relevance closure of a program group (all top-level threads and
    background entries). *)

val abstract : Ksim.Addr.t -> Absaddr.t
(** Bridge from concrete machine locations to the abstract domain:
    [Global g] stays itself, heap fields collapse to their field name,
    indices to [Slot], whole objects to [Whole]. *)

val mem_abs : t -> Absaddr.t -> bool
(** May the abstract location alias a relevant one? *)

val mem_addr : t -> Ksim.Addr.t -> bool
(** [mem_abs] after {!abstract}. *)

val relevant : t -> Absaddr.t list
(** The relevant locations, sorted (for reports). *)

val pp : t Fmt.t
