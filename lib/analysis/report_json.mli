(** JSON serialization of the static analysis, for `aitia analyze` and
    trajectory tracking.  Hand-rolled emission (the repo carries no JSON
    dependency); strings are escaped per RFC 8259. *)

val escape : string -> string
(** JSON string contents (without the surrounding quotes). *)

(** Emission combinators, for callers assembling their own documents
    (the bench harness, the lint report) without hand-concatenating
    strings. *)

val str : string -> string
(** A quoted, escaped JSON string. *)

val arr : string list -> string
(** A JSON array of already-serialized values. *)

val obj : (string * string) list -> string
(** A JSON object from key / already-serialized-value pairs. *)

val str_list : string list -> string
val bool : bool -> string
val int : int -> string

val float : float -> string
(** Fixed four-decimal rendering, stable across platforms. *)

val to_string : Candidates.result -> string
(** The full report: threads, serial prologue, headline stats, every
    site with its locksets, every classified pair. *)

val pp : Candidates.result Fmt.t

val lint_to_string : Lockorder.report -> string
(** The lock-order lint report: acquisition edges, cycles with witness
    paths and MHP schedulability, guarded-publication inversions with
    their two-node witness cycles. *)

val pp_lint : Lockorder.report Fmt.t

val redundant_json : Invariants.redundant -> string
(** One invariant-proven redundant critical section, with its witness
    segment (the Lock/Unlock labels delimiting the inert body). *)

val invariants_to_string : Absdom.t -> Invariants.redundant list -> string
(** The error-invariant section of the analyze report: the
    failure-relevance closure and the redundant critical sections it
    proves. *)
