(** JSON serialization of the static analysis, for `aitia analyze` and
    trajectory tracking.  Hand-rolled emission (the repo carries no JSON
    dependency); strings are escaped per RFC 8259. *)

val escape : string -> string
(** JSON string contents (without the surrounding quotes). *)

val to_string : Candidates.result -> string
(** The full report: threads, serial prologue, headline stats, every
    site with its locksets, every classified pair. *)

val pp : Candidates.result Fmt.t
