(** The error-invariant engine (after Holzer et al., {e Error
    Invariants for Concurrent Traces}).

    Derives, per flip plan, an invariant strong enough to prove the
    flipped re-execution cannot {e complete} — Causality Analysis'
    Benign verdict covers every non-completing outcome, so a proven
    flip is discharged without a VM run.  Two rules, tried in order:

    - {e segment}: the plan is an order/lock-respecting permutation
      whose displaced window touches only failure-irrelevant global
      locations (see {!Absdom}), so the failure predicate is preserved
      abstractly;
    - {e replay}: the flip's outcome is re-derived concretely by
      driving a pure {!Ksim.Machine} under an exact mirror of the
      hypervisor's plan-enforcement policy; the machine is
      deterministic, so the mirrored verdict is the VM's verdict.

    Proofs are emitted as checkable {!certificate}s (the {!Flipfeas}
    proof shape: a reason string plus re-derivable evidence), and
    identical plans share one proof through the family cache. *)

type rule = Family | Segment | Replay

val rule_name : rule -> string

type certificate = {
  cert_key : string;  (** race key the proof was first derived for *)
  cert_rule : rule;
  cert_failure : string;  (** predicted verdict class of the re-run *)
  cert_steps : int;  (** replay length; [0] for segment proofs *)
  cert_window : (int * int) option;
      (** displaced trace-index window of a segment proof *)
  cert_displaced : string list;  (** displaced abstract locations *)
  cert_fingerprints : string list;
      (** machine-state digests sampled along the replayed prefix — the
          invariant chain of a replay proof *)
}

val pp_certificate : certificate Fmt.t

type engine

val default_max_steps : int

val create :
  ?max_steps:int -> ?prologue:int list -> Ksim.Program.group -> engine
(** An engine for one failing execution's program group.  [prologue]
    and [max_steps] must match the executor's re-run configuration so
    the replay rule mirrors it exactly. *)

val relevance : engine -> Absdom.t
(** The failure-relevance closure the segment rule reasons over. *)

val prune :
  engine ->
  key:string ->
  trace:Ksim.Machine.event list ->
  plan:Ksim.Access.Iid.t list ->
  run_through_budget:int ->
  (string * certificate) option
(** [Some (reason, certificate)] when the flip identified by [key]
    (with failing [trace] and flip [plan]) provably cannot complete;
    [None] when it must execute.  Reasons are prefixed ["invariant
    segment:"], ["invariant replay:"] or ["invariant family:"].
    Results are cached per plan digest, so flip families sharing a plan
    are discharged by a single derivation. *)

val check :
  engine ->
  trace:Ksim.Machine.event list ->
  plan:Ksim.Access.Iid.t list ->
  run_through_budget:int ->
  certificate ->
  bool
(** Re-derive the proof from scratch and compare every piece of
    evidence (rule, verdict class, replay length, window, displaced
    locations, state fingerprints). *)

(** {2 Invariant-derived lint: redundant critical sections} *)

type redundant = {
  red_thread : string;  (** thread spec / entry name *)
  red_lock : string;
  red_start : string;  (** label of the [Lock] *)
  red_stop : string;  (** label of the matching [Unlock] *)
  red_body : int;  (** instructions inside the section *)
}

val pp_redundant : redundant Fmt.t

val redundant_sections :
  ?relevance:Absdom.t -> Ksim.Program.group -> redundant list
(** Lock acquisitions whose critical section provably guards nothing
    failure-relevant: every instruction inside is straight-line and
    touches only locations outside the relevance closure.  Advisory
    findings for [aitia lint]. *)
