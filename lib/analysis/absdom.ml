(* Failure-relevance closure: the abstract-domain half of the error-
   invariant engine.

   The engine (see Invariants) must prove, per schedule prefix, that a
   flip confined to some trace segment preserves the failure predicate.
   The proof obligation reduces to a reachability question over values:
   which memory locations can (transitively) influence a branch
   condition, a failure predicate, an address computation, a spawn
   argument or a free target?  Reordering accesses to any {e other}
   location changes data nobody ever acts on — every thread still
   executes the same instruction sequence and the faulting instruction
   sees the same operands.

   The closure is flow-insensitive over the whole program group, in the
   abstract location domain of {!Absaddr} (heap objects collapse to
   field names).  Per program it tracks the set of {e relevant
   registers} (those whose value may flow into a sink), globally the
   set of {e relevant locations}; the two grow together to a fixpoint:

   - sinks seed the register sets: branch conditions, BUG_ON/WARN_ON
     predicates, kfree targets, spawn arguments, and every register
     used in an address computation;
   - a load into a relevant register makes its source location
     relevant; a store to a relevant location makes its source
     registers relevant — and symmetrically for RMW, list and refcount
     operations.

   Location membership is answered through {!Absaddr.may_alias}, so the
   closure inherits the abstraction's sound collapsing of heap
   objects. *)

module I = Ksim.Instr
module SS = Flipfeas.SS
module AS = Set.Make (Absaddr)

type t = { rel : AS.t }

let abstract : Ksim.Addr.t -> Absaddr.t = function
  | Ksim.Addr.Global g -> Absaddr.Global g
  | Ksim.Addr.Field (_, f) -> Absaddr.Field f
  | Ksim.Addr.Index (_, _) -> Absaddr.Slot
  | Ksim.Addr.Whole _ -> Absaddr.Whole

let mem_abs t a = AS.exists (Absaddr.may_alias a) t.rel
let mem_addr t addr = mem_abs t (abstract addr)
let relevant t = AS.elements t.rel

(* Address expressions an instruction evaluates: their registers are
   always relevant (a changed address redirects an access). *)
let addr_exprs : I.t -> I.addr_expr list = function
  | I.Load { src; _ } -> [ src ]
  | I.Store { dst; _ } -> [ dst ]
  | I.Rmw { loc; _ } | I.Ref_get { loc } | I.Ref_put { loc; _ } -> [ loc ]
  | I.List_add { list; _ }
  | I.List_del { list; _ }
  | I.List_contains { list; _ }
  | I.List_empty { list; _ }
  | I.List_first { list; _ } -> [ list ]
  | I.Assign _ | I.Branch_if _ | I.Goto _ | I.Return | I.Nop | I.Lock _
  | I.Unlock _ | I.Alloc _ | I.Free _ | I.Queue_work _ | I.Call_rcu _
  | I.Arm_timer _ | I.Enable_irq _ | I.Bug_on _ | I.Warn_on _ -> []

(* One flow-insensitive transfer of [instr] over (relevant locations,
   relevant registers of its program).  Monotone: both sets only grow. *)
let transfer (rel, rs) (instr : I.t) =
  let rel = ref rel and rs = ref rs in
  let add_regs s = rs := SS.union s !rs in
  let add_loc a =
    let a = Absaddr.of_addr_expr a in
    if not (AS.mem a !rel) then rel := AS.add a !rel
  in
  let reg_rel r = SS.mem r !rs in
  let loc_rel a =
    AS.exists (Absaddr.may_alias (Absaddr.of_addr_expr a)) !rel
  in
  (* Sinks: registers feeding control flow, failure predicates, frees,
     spawns and address computations are relevant unconditionally. *)
  (match instr with
  | I.Branch_if { cond; _ } -> add_regs (Flipfeas.expr_regs SS.empty cond)
  | I.Bug_on e | I.Warn_on e -> add_regs (Flipfeas.expr_regs SS.empty e)
  | I.Free { ptr } -> add_regs (Flipfeas.expr_regs SS.empty ptr)
  | I.Queue_work { arg; _ }
  | I.Call_rcu { arg; _ }
  | I.Arm_timer { arg; _ }
  | I.Enable_irq { arg; _ } -> add_regs (Flipfeas.expr_regs SS.empty arg)
  | _ -> ());
  List.iter
    (fun a -> add_regs (Flipfeas.addr_regs SS.empty a))
    (addr_exprs instr);
  (* Backward value flow into the relevant sets. *)
  (match instr with
  | I.Load { dst; src } -> if reg_rel dst then add_loc src
  | I.Store { dst; src } ->
    if loc_rel dst then add_regs (Flipfeas.expr_regs SS.empty src)
  | I.Rmw { ret; loc; delta } ->
    (match ret with Some r when reg_rel r -> add_loc loc | _ -> ());
    if loc_rel loc then add_regs (Flipfeas.expr_regs SS.empty delta)
  | I.Assign { dst; src } ->
    if reg_rel dst then add_regs (Flipfeas.expr_regs SS.empty src)
  | I.Alloc { dst; fields; _ } ->
    if reg_rel dst then
      List.iter
        (fun (_, e) -> add_regs (Flipfeas.expr_regs SS.empty e))
        fields
  | I.List_contains { dst; list; item } ->
    if reg_rel dst then (
      add_loc list;
      add_regs (Flipfeas.expr_regs SS.empty item))
  | I.List_empty { dst; list } | I.List_first { dst; list } ->
    if reg_rel dst then add_loc list
  | I.List_add { list; item } | I.List_del { list; item } ->
    if loc_rel list then add_regs (Flipfeas.expr_regs SS.empty item)
  | I.Ref_put { ret; loc } -> (
    match ret with Some r when reg_rel r -> add_loc loc | _ -> ())
  | I.Branch_if _ | I.Goto _ | I.Return | I.Nop | I.Lock _ | I.Unlock _
  | I.Free _ | I.Queue_work _ | I.Call_rcu _ | I.Arm_timer _
  | I.Enable_irq _ | I.Bug_on _ | I.Warn_on _ | I.Ref_get _ -> ());
  (!rel, !rs)

let of_group (group : Ksim.Program.group) : t =
  Telemetry.Probe.with_span ~cat:"analysis" "analysis.absdom" @@ fun () ->
  let programs =
    List.map
      (fun (s : Ksim.Program.thread_spec) -> s.program)
      group.Ksim.Program.threads
    @ List.map snd group.Ksim.Program.entries
  in
  let regs = Array.make (List.length programs) SS.empty in
  let rel = ref AS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iteri
      (fun pi p ->
        let r = ref !rel and rs = ref regs.(pi) in
        for i = 0 to Ksim.Program.length p - 1 do
          let r', rs' = transfer (!r, !rs) (Ksim.Program.get p i).instr in
          r := r';
          rs := rs'
        done;
        if not (AS.equal !r !rel) then (
          rel := !r;
          changed := true);
        if not (SS.equal !rs regs.(pi)) then (
          regs.(pi) <- !rs;
          changed := true))
      programs
  done;
  { rel = !rel }

let pp ppf t =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma Absaddr.pp) (relevant t)
