(** Per-instruction static locksets.

    A forward dataflow fixpoint over a program's control-flow graph
    (labels, forward/backward branches) computing, for every
    instruction, the locks held {e when it executes}:

    - [must]: held on {e every} path reaching the instruction
      (intersection at merges) — the classic lockset of Savage et al.'s
      Eraser, restricted to one thread's program;
    - [may]: held on {e some} path (union at merges).

    [must] is the sound core: if [must] contains [l], every dynamic
    execution of the instruction holds [l].  Two accesses whose [must]
    sets intersect are serialized by that lock and cannot data-race. *)

module Names : Set.S with type elt = string

type point = {
  must : Names.t;  (** locks held on every path to this instruction *)
  may : Names.t;   (** locks held on some path to this instruction *)
}

type t

val of_program : Ksim.Program.t -> t

val find : t -> string -> point option
(** The lockset at entry of instruction [label]; [None] for labels not
    in the program.  Unreachable instructions report [must] = all locks
    (vacuous truth: no execution reaches them). *)

val universe : t -> Names.t
(** Every lock the program mentions. *)

val pp_point : point Fmt.t
