(* Flip-feasibility pre-analysis for Causality Analysis.

   Causality Analysis re-executes the failing sequence once per race,
   with the racing pair flipped.  A flip only needs execution when the
   re-run could plausibly {e complete}: the verdict Benign covers every
   non-completing outcome (still fails, deadlocks, diverges), so a flip
   whose re-run provably cannot complete can be marked Benign without
   touching the VM.  Two static proofs are attempted, on the failing
   trace and the flip plan alone:

   - {e Infeasible}: the plan cannot enforce the reversed order at all —
     the spawn-prerequisite hoist of {!flip_plan} restored the original
     program order (the planned order is the failing sequence itself, or
     keeps first before second).  Replaying it reproduces the failure.

   - {e Preserves_failure}: the planned order is a genuine permutation,
     but every reordered pair of conflicting accesses is independent of
     the failure's control/data slice.  Concretely: (a) the permutation
     is lock-consistent, so enforcement cannot block; (b) a dynamic
     backward slice from the faulting event — register def-use chains,
     branch conditions of slice threads, writers to sliced locations,
     spawn prerequisites — yields the location set the failure depends
     on, and no reordered access touches it (at object granularity for
     heap locations); (c) a forward taint walk from the reordered reads
     proves the changed values never reach a branch, an address
     computation, an allocation, a spawn argument, a failure predicate
     or a sliced location.  Then every thread executes the same
     instruction sequence, the faulting instruction sees the same
     operands, and the re-run fails identically.

   Anything short of both proofs is {e Unknown}: execute the flip. *)

module Iid = Ksim.Access.Iid
module Addr = Ksim.Addr
module I = Ksim.Instr
module SS = Set.Make (String)
module IS = Set.Make (Int)

type verdict =
  | Infeasible of string         (* the plan replays the original order *)
  | Preserves_failure of string  (* reordering cannot avert the failure *)
  | Unknown of string            (* no proof: execute the flip *)

let prunable = function
  | Infeasible r -> Some ("infeasible: " ^ r)
  | Preserves_failure r -> Some ("preserves failure: " ^ r)
  | Unknown _ -> None

let pp ppf = function
  | Infeasible r -> Fmt.pf ppf "infeasible (%s)" r
  | Preserves_failure r -> Fmt.pf ppf "preserves failure (%s)" r
  | Unknown r -> Fmt.pf ppf "unknown (%s)" r

(* --- instruction register use/def --------------------------------------- *)

let rec expr_regs acc : I.expr -> SS.t = function
  | I.Const _ -> acc
  | I.Reg r -> SS.add r acc
  | I.Add (a, b) | I.Sub (a, b) | I.Mul (a, b) | I.Eq (a, b) | I.Ne (a, b)
  | I.Lt (a, b) | I.Le (a, b) | I.Gt (a, b) | I.Ge (a, b) | I.And (a, b)
  | I.Or (a, b) -> expr_regs (expr_regs acc a) b
  | I.Not a | I.Is_null a -> expr_regs acc a

let addr_regs acc : I.addr_expr -> SS.t = function
  | I.Global _ -> acc
  | I.Deref (e, _) -> expr_regs acc e
  | I.At (e, i) -> expr_regs (expr_regs acc e) i

let uses : I.t -> SS.t = function
  | I.Load { src; _ } -> addr_regs SS.empty src
  | I.Store { dst; src } -> addr_regs (expr_regs SS.empty src) dst
  | I.Rmw { loc; delta; _ } -> addr_regs (expr_regs SS.empty delta) loc
  | I.Assign { src; _ } -> expr_regs SS.empty src
  | I.Branch_if { cond; _ } -> expr_regs SS.empty cond
  | I.Goto _ | I.Return | I.Nop | I.Lock _ | I.Unlock _ -> SS.empty
  | I.Alloc { fields; _ } ->
    List.fold_left (fun a (_, e) -> expr_regs a e) SS.empty fields
  | I.Free { ptr } -> expr_regs SS.empty ptr
  | I.Queue_work { arg; _ } | I.Call_rcu { arg; _ } | I.Arm_timer { arg; _ }
  | I.Enable_irq { arg; _ } -> expr_regs SS.empty arg
  | I.Bug_on e | I.Warn_on e -> expr_regs SS.empty e
  | I.List_add { list; item } | I.List_del { list; item } ->
    addr_regs (expr_regs SS.empty item) list
  | I.List_contains { list; item; _ } ->
    addr_regs (expr_regs SS.empty item) list
  | I.List_empty { list; _ } | I.List_first { list; _ } ->
    addr_regs SS.empty list
  | I.Ref_get { loc } | I.Ref_put { loc; _ } -> addr_regs SS.empty loc

let defines : I.t -> string option = function
  | I.Load { dst; _ } | I.Assign { dst; _ } | I.Alloc { dst; _ }
  | I.List_contains { dst; _ } | I.List_empty { dst; _ }
  | I.List_first { dst; _ } -> Some dst
  | I.Rmw { ret; _ } | I.Ref_put { ret; _ } -> ret
  | I.Store _ | I.Branch_if _ | I.Goto _ | I.Return | I.Nop | I.Free _
  | I.Lock _ | I.Unlock _ | I.Queue_work _ | I.Call_rcu _ | I.Arm_timer _
  | I.Enable_irq _ | I.Bug_on _ | I.Warn_on _ | I.List_add _ | I.List_del _
  | I.Ref_get _ -> None

(* --- critical-section nesting ------------------------------------------- *)

(* Locks held by the event's thread when it executed (the event's own
   acquisition counts).  This is the trace-level nesting depth the
   surrounding/nested structure of [Race.surrounds] reflects. *)
let nesting_depth (trace : Ksim.Machine.event list) (iid : Iid.t) : int =
  let held : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let rec go = function
    | [] -> 0
    | (e : Ksim.Machine.event) :: rest ->
      let tid = e.iid.Iid.tid in
      let d = Option.value ~default:0 (Hashtbl.find_opt held tid) in
      let d' =
        match e.lock_op with
        | Some (_, `Acquire) -> d + 1
        | Some (_, `Release) -> d - 1
        | None -> d
      in
      if Iid.equal e.iid iid then max d d'
      else (
        Hashtbl.replace held tid d';
        go rest)
  in
  go trace

(* --- the analysis ------------------------------------------------------- *)

let overlaps_set locs addr =
  Addr.Set.exists (fun l -> Addr.overlaps l addr) locs

let obj_in objs addr =
  match Addr.obj_of addr with Some o -> IS.mem o objs | None -> false

let analyze ~(trace : Ksim.Machine.event list) ~(plan : Iid.t list)
    ~(first : Ksim.Access.t) ~(second : Ksim.Access.t) : verdict =
  Telemetry.Probe.with_span ~cat:"analysis" "analysis.flipfeas" @@ fun () ->
  Telemetry.Probe.count "analysis.flipfeas_queries";
  let events = Array.of_list trace in
  let n = Array.length events in
  if n = 0 then Unknown "empty trace"
  else
    (* Trace index per iid, plan position per trace index. *)
    let index : (Iid.t, int) Hashtbl.t = Hashtbl.create (2 * n) in
    Array.iteri
      (fun i (e : Ksim.Machine.event) -> Hashtbl.replace index e.iid i)
      events;
    let plan_arr = Array.of_list plan in
    if
      Array.length plan_arr <> n
      || Array.exists (fun iid -> not (Hashtbl.mem index iid)) plan_arr
    then
      Unknown "plan inserts a pending event: not a permutation of the trace"
    else
      let pos = Array.make n (-1) in
      let dup = ref false in
      Array.iteri
        (fun p iid ->
          let i = Hashtbl.find index iid in
          if pos.(i) >= 0 then dup := true;
          pos.(i) <- p)
        plan_arr;
      if !dup then Unknown "plan repeats an event"
      else
        let identity = ref true in
        Array.iteri (fun i p -> if p <> i then identity := false) pos;
        if !identity then
          Infeasible "the planned order replays the failing sequence"
        else
          let kept_order =
            match
              (Hashtbl.find_opt index first.iid,
               Hashtbl.find_opt index second.iid)
            with
            | Some fi, Some si -> pos.(fi) < pos.(si)
            | _ -> false
          in
          (* Lock consistency of the permuted order: enforcement must
             never block, or the plan policy diverges from the plan. *)
          let lock_issue =
            let holders : (string, int) Hashtbl.t = Hashtbl.create 4 in
            let issue = ref None in
            Array.iter
              (fun iid ->
                if !issue = None then
                  let e = events.(Hashtbl.find index iid) in
                  match e.lock_op with
                  | Some (l, `Acquire) -> (
                    match Hashtbl.find_opt holders l with
                    | Some _ ->
                      issue :=
                        Some
                          (Fmt.str "planned order blocks on lock %s at %a" l
                             Iid.pp e.iid)
                    | None -> Hashtbl.replace holders l e.iid.Iid.tid)
                  | Some (l, `Release) -> Hashtbl.remove holders l
                  | None -> ())
              plan_arr;
            !issue
          in
          match lock_issue with
          | Some r -> Unknown r
          | None ->
            (* Dynamic backward slice from the faulting event (the last
               trace event): the registers, locations, branches and
               spawns the failure depends on. *)
            let sliced = Array.make n false in
            let l_locs = ref Addr.Set.empty in
            let rel_tids = ref IS.empty in
            let changed = ref true in
            while !changed do
              changed := false;
              let live : (int, SS.t ref) Hashtbl.t = Hashtbl.create 8 in
              let live_of tid =
                match Hashtbl.find_opt live tid with
                | Some s -> s
                | None ->
                  let s = ref SS.empty in
                  Hashtbl.add live tid s;
                  s
              in
              for i = n - 1 downto 0 do
                let e = events.(i) in
                let tid = e.iid.Iid.tid in
                let lv = live_of tid in
                let def = defines e.instr in
                let defs_live =
                  match def with Some d -> SS.mem d !lv | None -> false
                in
                let writes_l =
                  match e.access with
                  | Some a when a.kind <> I.Read ->
                    overlaps_set !l_locs a.addr
                  | _ -> false
                in
                let spawn_rel =
                  List.exists
                    (fun (t, _) -> IS.mem t !rel_tids)
                    e.spawned
                in
                let ctrl_rel =
                  (* Branches steer which sliced instructions execute;
                     allocations create the objects sliced locations
                     live in. *)
                  match e.instr with
                  | I.Branch_if _ | I.Alloc _ -> IS.mem tid !rel_tids
                  | _ -> false
                in
                if
                  i = n - 1 || sliced.(i) || defs_live || writes_l
                  || spawn_rel || ctrl_rel
                then (
                  if not sliced.(i) then (
                    sliced.(i) <- true;
                    changed := true);
                  if not (IS.mem tid !rel_tids) then (
                    rel_tids := IS.add tid !rel_tids;
                    changed := true);
                  (match def with
                  | Some d -> lv := SS.remove d !lv
                  | None -> ());
                  lv := SS.union (uses e.instr) !lv;
                  match e.access with
                  | Some a ->
                    if not (Addr.Set.mem a.addr !l_locs) then (
                      l_locs := Addr.Set.add a.addr !l_locs;
                      changed := true)
                  | None -> ())
              done
            done;
            let l_objs =
              Addr.Set.fold
                (fun l acc ->
                  match Addr.obj_of l with
                  | Some o -> IS.add o acc
                  | None -> acc)
                !l_locs IS.empty
            in
            let touches_slice addr =
              overlaps_set !l_locs addr || obj_in l_objs addr
            in
            (* Reordered conflicting pairs.  A pair on the slice means
               the failure-relevant memory order changed: execute.  Off
               the slice, the read ends seed the taint walk and
               write-against-write reorders dirty their location (a
               later read of it sees the other writer). *)
            let seeds = Array.make n false in
            let dirty0 = ref Addr.Set.empty in
            let slice_hit = ref None in
            for i = 0 to n - 1 do
              match events.(i).access with
              | None -> ()
              | Some a ->
                for j = i + 1 to n - 1 do
                  match events.(j).access with
                  | None -> ()
                  | Some b ->
                    if pos.(j) < pos.(i) && Ksim.Access.conflicting a b
                    then
                      if touches_slice a.addr || touches_slice b.addr then
                        (if !slice_hit = None then
                           slice_hit :=
                             Some
                               (Fmt.str
                                  "reorders %a against %a on the failure \
                                   slice"
                                  Addr.pp a.addr Addr.pp b.addr))
                      else (
                        if a.kind <> I.Write && b.kind <> I.Read then
                          seeds.(i) <- true;
                        if b.kind <> I.Write && a.kind <> I.Read then
                          seeds.(j) <- true;
                        if a.kind <> I.Read && b.kind <> I.Read then
                          dirty0 :=
                            Addr.Set.add a.addr
                              (Addr.Set.add b.addr !dirty0))
                done
            done;
            (match !slice_hit with
            | Some r -> Unknown r
            | None ->
              (* Forward taint from the reordered reads: where can the
                 changed values flow?  Register taint is recomputed per
                 pass; the dirty location set grows monotonically. *)
              let dirty = ref !dirty0 in
              let bail = ref None in
              let pass () =
                let grew = ref false in
                let taint : (int, SS.t ref) Hashtbl.t = Hashtbl.create 8 in
                let taint_of tid =
                  match Hashtbl.find_opt taint tid with
                  | Some s -> s
                  | None ->
                    let s = ref SS.empty in
                    Hashtbl.add taint tid s;
                    s
                in
                let i = ref 0 in
                while !bail = None && !i < n do
                  let e = events.(!i) in
                  let tid = e.iid.Iid.tid in
                  let tn = taint_of tid in
                  let t_expr ex =
                    not (SS.is_empty (SS.inter (expr_regs SS.empty ex) !tn))
                  in
                  let t_addr a =
                    not (SS.is_empty (SS.inter (addr_regs SS.empty a) !tn))
                  in
                  let set r b =
                    tn := if b then SS.add r !tn else SS.remove r !tn
                  in
                  let reads_dirty =
                    seeds.(!i)
                    ||
                    match e.access with
                    | Some a when a.kind <> I.Write ->
                      overlaps_set !dirty a.addr
                    | _ -> false
                  in
                  let add_dirty () =
                    match e.access with
                    | Some a ->
                      if not (Addr.Set.mem a.addr !dirty) then (
                        dirty := Addr.Set.add a.addr !dirty;
                        grew := true)
                    | None -> ()
                  in
                  let stop r = bail := Some r in
                  (match e.instr with
                  | I.Assign { dst; src } -> set dst (t_expr src)
                  | I.Load { dst; src = a } ->
                    if t_addr a then stop "tainted address computation"
                    else set dst reads_dirty
                  | I.Store { dst = a; src } ->
                    if t_addr a then stop "tainted address computation"
                    else if t_expr src then add_dirty ()
                  | I.Rmw { ret; loc = a; delta } ->
                    if t_addr a then stop "tainted address computation"
                    else (
                      if t_expr delta || reads_dirty then add_dirty ();
                      match ret with
                      | Some r -> set r reads_dirty
                      | None -> ())
                  | I.Branch_if { cond; _ } ->
                    if t_expr cond then stop "tainted branch condition"
                  | I.Bug_on ex | I.Warn_on ex ->
                    if t_expr ex then stop "tainted failure predicate"
                  | I.Free { ptr } ->
                    if t_expr ptr then stop "tainted free target"
                  | I.Alloc { dst; fields; _ } ->
                    if List.exists (fun (_, ex) -> t_expr ex) fields then
                      stop "tainted allocation"
                    else set dst false
                  | I.Queue_work { arg; _ } | I.Call_rcu { arg; _ }
                  | I.Arm_timer { arg; _ } | I.Enable_irq { arg; _ } ->
                    if t_expr arg then stop "tainted spawn argument"
                  | I.List_add { list = a; item }
                  | I.List_del { list = a; item } ->
                    if t_addr a then stop "tainted address computation"
                    else if t_expr item then add_dirty ()
                  | I.List_contains { dst; list = a; item } ->
                    if t_addr a then stop "tainted address computation"
                    else set dst (reads_dirty || t_expr item)
                  | I.List_empty { dst; list = a }
                  | I.List_first { dst; list = a } ->
                    if t_addr a then stop "tainted address computation"
                    else set dst reads_dirty
                  | I.Ref_get { loc = a } ->
                    if t_addr a then stop "tainted address computation"
                    else if reads_dirty then add_dirty ()
                  | I.Ref_put { ret; loc = a } ->
                    if t_addr a then stop "tainted address computation"
                    else (
                      if reads_dirty then add_dirty ();
                      match ret with
                      | Some r -> set r reads_dirty
                      | None -> ())
                  | I.Goto _ | I.Return | I.Nop | I.Lock _ | I.Unlock _ ->
                    ());
                  incr i
                done;
                !grew
              in
              let rec fix () = if pass () && !bail = None then fix () in
              fix ();
              match !bail with
              | Some r -> Unknown r
              | None ->
                if
                  Addr.Set.exists
                    (fun d ->
                      overlaps_set !l_locs d || obj_in l_objs d)
                    !dirty
                then Unknown "value impact reaches the failure slice"
                else if kept_order then
                  Infeasible
                    "spawn prerequisites keep the pair in program order"
                else
                  Preserves_failure
                    "the reordered accesses are independent of the \
                     failure's control/data slice")
