(* Headline statistics and the hint lookup handed to LIFS. *)

type stats = {
  n_threads : int;
  n_sites : int;
  n_pairs : int;
  n_guarded : int;
  n_unguarded : int;
  n_ambiguous : int;
  pruning_ratio : float;
}

let stats (r : Candidates.result) : stats =
  let count c =
    List.length (List.filter (fun (p : Candidates.pair) -> p.cls = c) r.pairs)
  in
  let n_pairs = List.length r.pairs in
  let n_guarded = count Candidates.Guarded in
  { n_threads = List.length r.thread_names;
    n_sites = List.length r.sites;
    n_pairs;
    n_guarded;
    n_unguarded = count Candidates.Unguarded;
    n_ambiguous = count Candidates.Ambiguous;
    pruning_ratio =
      (if n_pairs = 0 then 0.0
       else float_of_int n_guarded /. float_of_int n_pairs) }

let pp_stats ppf s =
  Fmt.pf ppf
    "%d thread(s), %d site(s), %d pair(s): %d guarded / %d unguarded / %d \
     ambiguous (pruning ratio %.2f)"
    s.n_threads s.n_sites s.n_pairs s.n_guarded s.n_unguarded s.n_ambiguous
    s.pruning_ratio

(* --- lock-order lint headline ------------------------------------------ *)

type lint_stats = {
  n_lock_edges : int;
  n_cycles : int;
  n_parallel_cycles : int;  (* cycles whose witness threads can overlap *)
  n_inversions : int;
}

let lint_stats (r : Lockorder.report) : lint_stats =
  { n_lock_edges = List.length r.edges;
    n_cycles = List.length r.cycles;
    n_parallel_cycles =
      List.length
        (List.filter (fun (c : Lockorder.cycle) -> c.parallel) r.cycles);
    n_inversions = List.length r.inversions }

let clean l = l.n_cycles = 0 && l.n_inversions = 0

let pp_lint_stats ppf l =
  Fmt.pf ppf
    "%d acquisition edge(s), %d cycle(s) (%d schedulable), %d inversion(s)"
    l.n_lock_edges l.n_cycles l.n_parallel_cycles l.n_inversions

(* Classification lookup keyed by the canonically ordered pair of
   (thread, label) site identities. *)
type hints = (string, Candidates.pair) Hashtbl.t

let pair_key (ta, la) (tb, lb) =
  let a = ta ^ ":" ^ la and b = tb ^ ":" ^ lb in
  if String.compare a b <= 0 then a ^ "|" ^ b else b ^ "|" ^ a

(* A (thread, label) static pair can appear several times in the
   candidate set only via the entry self-pairing degenerate case; the
   classification is a function of the two locksets, hence identical
   across duplicates, so last-write-wins is safe. *)
let hints (r : Candidates.result) : hints =
  let h = Hashtbl.create (List.length r.pairs * 2) in
  List.iter
    (fun (p : Candidates.pair) ->
      Hashtbl.replace h
        (pair_key (p.site_a.thread, p.site_a.label)
           (p.site_b.thread, p.site_b.label))
        p)
    r.pairs;
  h

let classify h ~a ~b =
  Option.map
    (fun (p : Candidates.pair) -> p.cls)
    (Hashtbl.find_opt h (pair_key a b))

let guarded_rank = 4

(* An Unguarded pair whose conflict threatens object lifetime — one
   endpoint frees or reallocates the whole object — or that is
   write-against-write is the strongest static race signal; those come
   first.  Plain Unguarded read/write conflicts follow, then Ambiguous
   (may-lock overlap only), then pairs outside the static candidate set
   (e.g. dynamically discovered aliasing the abstraction missed).
   Guarded pairs rank last and are prunable. *)
let pair_rank (p : Candidates.pair) =
  match p.cls with
  | Candidates.Guarded -> guarded_rank
  | Candidates.Ambiguous -> 2
  | Candidates.Unguarded ->
    let lifetime =
      p.site_a.addr = Absaddr.Whole || p.site_b.addr = Absaddr.Whole
    in
    let write_write =
      p.site_a.kind <> Ksim.Instr.Read && p.site_b.kind <> Ksim.Instr.Read
    in
    if lifetime || write_write then 0 else 1

let rank h ~a ~b =
  match Hashtbl.find_opt h (pair_key a b) with
  | None -> 3
  | Some p -> pair_rank p

type pruned_kind =
  [ `Lifs_equivalent
  | `Lifs_static
  | `Lifs_invariant
  | `Ca_static
  | `Ca_invariant ]

let pruned_counter = function
  | `Lifs_equivalent -> "pruned/lifs_equivalent"
  | `Lifs_static -> "pruned/lifs_static"
  | `Lifs_invariant -> "pruned/lifs_invariant"
  | `Ca_static -> "pruned/ca_static"
  | `Ca_invariant -> "pruned/ca_invariant"

let pruned_alias = function
  | `Lifs_equivalent -> "lifs.schedules_pruned"
  | `Lifs_static -> "lifs.schedules_statically_skipped"
  | `Lifs_invariant -> "lifs.invariant_pruned_slices"
  | `Ca_static -> "causality.flips_statically_pruned"
  | `Ca_invariant -> "causality.invariant_pruned_flips"

let count_pruned ?by kind =
  Telemetry.Probe.count ?by (pruned_counter kind);
  Telemetry.Probe.count ?by (pruned_alias kind)
