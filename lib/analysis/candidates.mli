(** Classified cross-thread candidate pairs: the static race analysis
    LIFS consumes.

    A {e site} is a memory-accessing instruction of one thread, with its
    abstract location and the locksets holding when it executes.  A
    {e pair} is two sites of may-happen-in-parallel threads whose
    locations may alias and whose kinds conflict — a statically possible
    race, classified by lockset intersection:

    - [Guarded]: the must-locksets share a lock.  Every execution of
      both sites holds it, so the accesses are serialized: the pair
      cannot data-race (it can still exhibit a critical-section-order
      bug, which lockset reasoning deliberately leaves to the full
      dynamic search).
    - [Ambiguous]: only the may-locksets share a lock — a common lock on
      some paths, so neither proof nor refutation.
    - [Unguarded]: no common lock on any path.

    Soundness contract (tested over the corpus and by qcheck): every
    dynamically observed data race whose endpoints do not hold a common
    lock falls in [Unguarded ∪ Ambiguous]. *)

type cls = Guarded | Unguarded | Ambiguous

val cls_name : cls -> string

type site = {
  thread : string;   (** stable thread identity (spec or entry name) *)
  label : string;    (** static instruction label *)
  addr : Absaddr.t;
  kind : Ksim.Instr.access_kind;
  point : Lockset.point;
  src : Ksim.Program.loc;
}

type pair = {
  site_a : site;
  site_b : site;
  cls : cls;
  witness : string list;
      (** the common locks: must-locks for [Guarded], may-locks for
          [Ambiguous], empty for [Unguarded] *)
}

type result = {
  group_name : string;
  thread_names : string list;
  serial : string list;
  sites : site list;
  pairs : pair list;
}

val analyze : ?serial:string list -> Ksim.Program.group -> result
(** The full static pre-pass: locksets per thread, MHP, pair
    enumeration, classification.  [serial] names prologue threads. *)

val classify_points : Lockset.point -> Lockset.point -> cls * string list

val sites_of_thread : Mhp.thread -> site list

val pp_pair : pair Fmt.t
