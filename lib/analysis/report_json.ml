(* JSON emission for the analyze report.  The base combinators moved
   to Telemetry.Json (shared with the metrics exporters and the perf
   gate); this module re-exports them so existing callers keep
   compiling, and keeps the analysis-specific serializers. *)

let escape = Telemetry.Json.escape
let str = Telemetry.Json.str
let arr = Telemetry.Json.arr
let obj = Telemetry.Json.obj
let str_list = Telemetry.Json.str_list
let bool = Telemetry.Json.bool
let int = Telemetry.Json.int
let float = Telemetry.Json.float

let kind_json k = str (Fmt.to_to_string Ksim.Instr.pp_access_kind k)

let site_json (s : Candidates.site) =
  obj
    [ ("thread", str s.thread);
      ("label", str s.label);
      ("addr", str (Absaddr.to_string s.addr));
      ("kind", kind_json s.kind);
      ("func", str s.src.Ksim.Program.func);
      ("line", string_of_int s.src.Ksim.Program.line);
      ("must_locks", str_list (Lockset.Names.elements s.point.Lockset.must));
      ("may_locks", str_list (Lockset.Names.elements s.point.Lockset.may)) ]

let endpoint_json (s : Candidates.site) =
  obj
    [ ("thread", str s.thread);
      ("label", str s.label);
      ("addr", str (Absaddr.to_string s.addr));
      ("kind", kind_json s.kind) ]

let pair_json (p : Candidates.pair) =
  obj
    [ ("a", endpoint_json p.site_a);
      ("b", endpoint_json p.site_b);
      ("class", str (Candidates.cls_name p.cls));
      ("witness_locks", str_list p.witness) ]

let stats_json (s : Summary.stats) =
  obj
    [ ("threads", string_of_int s.n_threads);
      ("sites", string_of_int s.n_sites);
      ("pairs", string_of_int s.n_pairs);
      ("guarded", string_of_int s.n_guarded);
      ("unguarded", string_of_int s.n_unguarded);
      ("ambiguous", string_of_int s.n_ambiguous);
      ("pruning_ratio", Printf.sprintf "%.4f" s.pruning_ratio) ]

let to_string (r : Candidates.result) =
  obj
    [ ("group", str r.group_name);
      ("threads", str_list r.thread_names);
      ("serial_prologue", str_list r.serial);
      ("stats", stats_json (Summary.stats r));
      ("sites", arr (List.map site_json r.sites));
      ("pairs", arr (List.map pair_json r.pairs)) ]

let pp ppf r = Fmt.string ppf (to_string r)

(* --- lock-order lint ---------------------------------------------------- *)

let edge_json (e : Lockorder.edge) =
  obj
    [ ("held", str e.held);
      ("acquired", str e.acquired);
      ("thread", str e.via_thread);
      ("label", str e.via_label);
      ("must", bool e.must) ]

let cycle_json (c : Lockorder.cycle) =
  obj
    [ ("locks", str_list c.cycle_locks);
      ("witness", arr (List.map edge_json c.cycle_edges));
      ("parallel", bool c.parallel) ]

let site_ref (thread, label) =
  obj [ ("thread", str thread); ("label", str label) ]

let inversion_json (v : Lockorder.inversion) =
  obj
    [ ("lock", str v.inv_lock);
      ("global", str v.inv_global);
      ("publisher", site_ref v.publisher);
      ("consumer", site_ref v.consumer);
      ("unchecked_use", site_ref v.use);
      (* The two-node witness cycle in the section-order graph: the
         publication dependence edge vs the unenforced schedule edge. *)
      ("witness_cycle", arr [ site_ref v.publisher; site_ref v.consumer ]) ]

let lint_to_string (r : Lockorder.report) =
  obj
    [ ("group", str r.group_name);
      ("threads", str_list r.thread_names);
      ("edges", arr (List.map edge_json r.edges));
      ("cycles", arr (List.map cycle_json r.cycles));
      ("inversions", arr (List.map inversion_json r.inversions)) ]

let pp_lint ppf r = Fmt.string ppf (lint_to_string r)

(* --- error-invariant sections ------------------------------------------ *)

let redundant_json (r : Invariants.redundant) =
  obj
    [ ("thread", str r.red_thread);
      ("lock", str r.red_lock);
      (* the witness segment: the section the invariant proves inert *)
      ("witness_start", str r.red_start);
      ("witness_stop", str r.red_stop);
      ("body_instrs", int r.red_body) ]

let invariants_to_string (rel : Absdom.t)
    (redundant : Invariants.redundant list) =
  obj
    [ ("relevant_locations",
       str_list (List.map Absaddr.to_string (Absdom.relevant rel)));
      ("redundant_sections", arr (List.map redundant_json redundant)) ]
