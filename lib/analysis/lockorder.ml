(* Lockdep-style static lock-order analysis.

   The kernel's lockdep builds a runtime graph of lock-acquisition
   orders (held -> acquired) and reports a potential ABBA deadlock when
   the graph has a cycle.  Here the same graph is built statically: the
   PR-1 per-instruction locksets say which locks are held when a [Lock]
   instruction executes, so every Lock site contributes one edge per
   held lock.  Edges carry a witness (thread, label) and a [must] bit —
   held on every path to the acquisition, or only on some path.

   A cycle is a potential deadlock only if its contributing threads can
   actually overlap; the MHP relation decides that, and cycles whose
   witnesses all live in one top-level thread (or in threads serialized
   by the prologue) are reported with [parallel = false].

   Beyond ABBA cycles the pass detects {e guarded-publication
   inversions} (the [ext_lock_order] pattern): a lock serializes a
   publishing store to a NULL-initialized global against a consuming
   load, but nothing orders {e which} critical section runs first — the
   consumer can read the initial NULL and later dereference it without a
   check.  The intended publication order and the unenforced schedule
   order form a two-node cycle in the combined section-order graph,
   which is how the finding is reported. *)

module Names = Lockset.Names

type edge = {
  held : string;        (* the lock already held *)
  acquired : string;    (* the lock being taken while [held] is held *)
  via_thread : string;  (* witness thread (spec or entry name) *)
  via_label : string;   (* witness label: the inner Lock instruction *)
  must : bool;          (* held on every path to the acquisition *)
}

type cycle = {
  cycle_locks : string list;  (* distinct locks in cycle order *)
  cycle_edges : edge list;    (* one witness edge per hop *)
  parallel : bool;            (* the witness threads can overlap (MHP) *)
}

type inversion = {
  inv_lock : string;           (* the lock serializing both sections *)
  inv_global : string;         (* the published NULL-initialized global *)
  publisher : string * string; (* thread, label of the guarded store *)
  consumer : string * string;  (* thread, label of the guarded load *)
  use : string * string;       (* thread, label of the unchecked deref *)
}

type report = {
  group_name : string;
  thread_names : string list;
  edges : edge list;
  cycles : cycle list;
  inversions : inversion list;
}

(* --- acquisition edges ------------------------------------------------- *)

let labeled_instrs (p : Ksim.Program.t) =
  List.init (Ksim.Program.length p) (Ksim.Program.get p)

let edges_of_thread (th : Mhp.thread) : edge list =
  let ls = Lockset.of_program th.program in
  List.concat_map
    (fun (l : Ksim.Program.labeled) ->
      match l.instr with
      | Ksim.Instr.Lock acquired -> (
        match Lockset.find ls l.label with
        | None -> []
        | Some pt ->
          (* [acquired] already in [must] means the site is unreachable
             (vacuous universe lockset) or a self-deadlock the machine
             would catch; either way it is not an ordering witness. *)
          if Names.mem acquired pt.Lockset.must then []
          else
            Names.fold
              (fun held acc ->
                if String.equal held acquired then acc
                else
                  { held; acquired;
                    via_thread = th.Mhp.thread_name;
                    via_label = l.label;
                    must = Names.mem held pt.Lockset.must }
                  :: acc)
              pt.Lockset.may [])
      | _ -> [])
    (labeled_instrs th.program)

(* --- cycle enumeration -------------------------------------------------- *)

(* Simple cycles by DFS; each cycle is enumerated from its
   lexicographically smallest lock only, so every cyclic lock sequence
   appears once.  Lock universes are tiny (kernel subsystems rarely nest
   more than a handful), so the exponential worst case is irrelevant. *)
let enumerate_cycles (edges : edge list) : edge list list =
  let locks =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> [ e.held; e.acquired ]) edges)
  in
  let out = ref [] in
  let rec dfs start visiting path l =
    List.iter
      (fun e ->
        if String.equal e.held l then
          if String.equal e.acquired start then
            out := List.rev (e :: path) :: !out
          else if
            String.compare e.acquired start > 0
            && not (Names.mem e.acquired visiting)
          then
            dfs start (Names.add e.acquired visiting) (e :: path) e.acquired)
      edges
  in
  List.iter (fun s -> dfs s (Names.singleton s) [] s) locks;
  (* Several witness edges over the same lock pair yield duplicate lock
     sequences: keep the first witness per sequence. *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun cyc ->
      let key = String.concat ">" (List.map (fun e -> e.held) cyc) in
      if Hashtbl.mem seen key then false
      else (
        Hashtbl.add seen key ();
        true))
    (List.rev !out)

let cycle_of_edges mhp (cycle_edges : edge list) : cycle =
  let threads = List.map (fun e -> e.via_thread) cycle_edges in
  let rec pairs = function
    | [] -> []
    | t :: rest -> List.map (fun u -> (t, u)) rest @ pairs rest
  in
  let parallel =
    List.for_all
      (fun (a, b) -> Mhp.may_happen_in_parallel mhp a b)
      (pairs threads)
  in
  { cycle_locks = List.map (fun e -> e.held) cycle_edges;
    cycle_edges;
    parallel }

(* --- guarded-publication inversions ------------------------------------- *)

let rec expr_mentions r : Ksim.Instr.expr -> bool = function
  | Const _ -> false
  | Reg r' -> String.equal r r'
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Ne (a, b)
  | Lt (a, b) | Le (a, b) | Gt (a, b) | Ge (a, b) | And (a, b) | Or (a, b)
    -> expr_mentions r a || expr_mentions r b
  | Not a | Is_null a -> expr_mentions r a

let addr_mentions r : Ksim.Instr.addr_expr -> bool = function
  | Global _ -> false
  | Deref (e, _) -> expr_mentions r e
  | At (e, i) -> expr_mentions r e || expr_mentions r i

(* The register an instruction (re)defines, if any. *)
let defines : Ksim.Instr.t -> string option = function
  | Load { dst; _ } | Assign { dst; _ } | Alloc { dst; _ }
  | List_contains { dst; _ } | List_empty { dst; _ } | List_first { dst; _ }
    -> Some dst
  | Rmw { ret; _ } | Ref_put { ret; _ } -> ret
  | Store _ | Branch_if _ | Goto _ | Return | Nop | Free _ | Lock _
  | Unlock _ | Queue_work _ | Call_rcu _ | Arm_timer _ | Enable_irq _
  | Bug_on _ | Warn_on _ | List_add _ | List_del _ | Ref_get _ -> None

(* Does the instruction dereference register [r] as a base pointer?
   [Free] is excluded: kfree(NULL) is a no-op, not a fault. *)
let derefs r : Ksim.Instr.t -> bool = function
  | Load { src = a; _ } | Store { dst = a; _ } | Rmw { loc = a; _ }
  | List_add { list = a; _ } | List_del { list = a; _ }
  | List_contains { list = a; _ } | List_empty { list = a; _ }
  | List_first { list = a; _ } | Ref_get { loc = a } | Ref_put { loc = a; _ }
    -> addr_mentions r a
  | Assign _ | Branch_if _ | Goto _ | Return | Nop | Alloc _ | Free _
  | Lock _ | Unlock _ | Queue_work _ | Call_rcu _ | Arm_timer _
  | Enable_irq _ | Bug_on _ | Warn_on _ -> false

(* From the guarded load of [r] at position [i], scan forward in program
   order for a dereference of [r] that no intervening instruction
   guards: a redefinition of [r] or a branch testing [r] (a NULL check)
   ends the scan. *)
let unchecked_deref_after (p : Ksim.Program.t) ~r ~from : string option =
  let n = Ksim.Program.length p in
  let rec go i =
    if i >= n then None
    else
      let { Ksim.Program.label; instr; _ } = Ksim.Program.get p i in
      if derefs r instr then Some label
      else
        match instr with
        | Ksim.Instr.Branch_if { cond; _ } when expr_mentions r cond -> None
        | Ksim.Instr.Return -> None
        | _ when defines instr = Some r -> None
        | _ -> go (i + 1)
  in
  go (from + 1)

let inversions_of mhp (group : Ksim.Program.group) : inversion list =
  let null_globals =
    List.filter_map
      (fun (n, v) -> if Ksim.Value.is_null v then Some n else None)
      group.globals
  in
  if null_globals = [] then []
  else
    let threads = Mhp.threads mhp in
    let with_locksets =
      List.map (fun (th : Mhp.thread) -> (th, Lockset.of_program th.program))
      threads
    in
    (* Guarded publishing stores: global := <non-constant> under a lock. *)
    let publishers =
      List.concat_map
        (fun ((th : Mhp.thread), ls) ->
          List.filter_map
            (fun (l : Ksim.Program.labeled) ->
              match l.instr with
              | Ksim.Instr.Store { dst = Global gname; src }
                when List.mem gname null_globals
                     && (match src with Ksim.Instr.Const _ -> false
                                      | _ -> true) -> (
                match Lockset.find ls l.label with
                | Some pt when not (Names.is_empty pt.Lockset.must) ->
                  Some (th.Mhp.thread_name, l.label, gname, pt.Lockset.must)
                | _ -> None)
              | _ -> None)
            (labeled_instrs th.program))
        with_locksets
    in
    if publishers = [] then []
    else
      (* Guarded consuming loads followed by an unchecked dereference. *)
      List.concat_map
        (fun ((th : Mhp.thread), ls) ->
          let instrs = labeled_instrs th.program in
          List.concat
            (List.mapi
               (fun i (l : Ksim.Program.labeled) ->
                 match l.instr with
                 | Ksim.Instr.Load { dst = r; src = Global gname }
                   when List.mem gname null_globals -> (
                   match Lockset.find ls l.label with
                   | Some pt when not (Names.is_empty pt.Lockset.must) -> (
                     match
                       unchecked_deref_after th.Mhp.program ~r ~from:i
                     with
                     | None -> []
                     | Some use_label ->
                       List.filter_map
                         (fun (pt_thread, pt_label, pg, pmust) ->
                           let common =
                             Names.inter pmust pt.Lockset.must
                           in
                           if
                             String.equal pg gname
                             && (not (Names.is_empty common))
                             && Mhp.may_happen_in_parallel mhp pt_thread
                                  th.Mhp.thread_name
                           then
                             Some
                               { inv_lock = Names.min_elt common;
                                 inv_global = gname;
                                 publisher = (pt_thread, pt_label);
                                 consumer = (th.Mhp.thread_name, l.label);
                                 use = (th.Mhp.thread_name, use_label) }
                           else None)
                         publishers)
                   | _ -> [])
                 | _ -> [])
               instrs))
        with_locksets

(* --- entry point -------------------------------------------------------- *)

let analyze ?serial (group : Ksim.Program.group) : report =
  Telemetry.Probe.with_span ~cat:"analysis" "analysis.lockorder"
    ~args:[ ("group", group.Ksim.Program.group_name) ] @@ fun () ->
  let mhp = Mhp.of_group ?serial group in
  let threads = Mhp.threads mhp in
  let edges = List.concat_map edges_of_thread threads in
  let cycles = List.map (cycle_of_edges mhp) (enumerate_cycles edges) in
  let inversions = inversions_of mhp group in
  { group_name = group.group_name;
    thread_names = List.map (fun (t : Mhp.thread) -> t.thread_name) threads;
    edges;
    cycles;
    inversions }

(* --- rendering ---------------------------------------------------------- *)

let pp_edge ppf e =
  Fmt.pf ppf "%s -> %s (%s@%s, %s)" e.held e.acquired e.via_thread
    e.via_label
    (if e.must then "must" else "may")

let pp_cycle ppf c =
  Fmt.pf ppf "%s%s [%a]"
    (String.concat " -> " (c.cycle_locks @ [ List.hd c.cycle_locks ]))
    (if c.parallel then "" else " (threads serialized: not schedulable)")
    (Fmt.list ~sep:Fmt.comma pp_edge)
    c.cycle_edges

let pp_inversion ppf (v : inversion) =
  Fmt.pf ppf
    "lock %s orders the sections on &%s but not their schedule: %s@%s \
     publishes, %s@%s may consume the initial NULL and dereference it \
     unchecked at %s (witness cycle: %s@%s -> %s@%s -> %s@%s)"
    v.inv_lock v.inv_global (fst v.publisher) (snd v.publisher)
    (fst v.consumer) (snd v.consumer) (snd v.use) (fst v.publisher)
    (snd v.publisher) (fst v.consumer) (snd v.consumer) (fst v.publisher)
    (snd v.publisher)

let pp ppf (r : report) =
  Fmt.pf ppf "%s: %d acquisition edge(s), %d cycle(s), %d inversion(s)"
    r.group_name (List.length r.edges) (List.length r.cycles)
    (List.length r.inversions);
  List.iter (fun c -> Fmt.pf ppf "@.  cycle: %a" pp_cycle c) r.cycles;
  List.iter (fun v -> Fmt.pf ppf "@.  inversion: %a" pp_inversion v)
    r.inversions
