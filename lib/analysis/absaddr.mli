(** Static abstraction of the memory locations a program can touch.

    The dynamic address space ({!Ksim.Addr.t}) names concrete heap
    objects, which do not exist statically; the abstraction collapses
    every object into its field (or slot) name.  The result
    over-approximates the dynamic overlap relation: whenever two dynamic
    accesses conflict, their static abstractions {!may_alias}. *)

type t =
  | Global of string  (** a named global *)
  | Field of string   (** some object's field of this name *)
  | Slot              (** some object's indexed slot *)
  | Whole             (** a whole object (the kfree target) *)

val of_addr_expr : Ksim.Instr.addr_expr -> t

val of_instr : Ksim.Instr.t -> (t * Ksim.Instr.access_kind) option
(** The shared-memory access an instruction performs, if any.  Unlike
    {!Ksim.Instr.access_kind} this includes [Free], which the machine
    records as a [Write] to the whole object. *)

val may_alias : t -> t -> bool
(** Sound over-approximation of {!Ksim.Addr.overlaps}: equal globals,
    same-named fields, any two slots, and [Whole] against any heap
    location. *)

val conflicting_kinds :
  Ksim.Instr.access_kind -> Ksim.Instr.access_kind -> bool
(** At least one side writes. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string
