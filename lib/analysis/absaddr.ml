(* Static abstraction of memory locations.

   Heap objects are dynamic; statically an access through [e->f] can
   reach field [f] of any object, so the abstraction keeps only the
   field name.  This is the coarsest abstraction that still separates
   the corpus's racing variables (globals and named fields), and it is
   sound by construction: Addr.overlaps implies may_alias of the
   abstractions (equal globals stay equal globals; Field (o, f) maps to
   Field f; Index to Slot; Whole o overlaps only locations of o, all of
   which abstract to Field/Slot/Whole). *)

type t =
  | Global of string
  | Field of string
  | Slot
  | Whole

let of_addr_expr : Ksim.Instr.addr_expr -> t = function
  | Ksim.Instr.Global g -> Global g
  | Ksim.Instr.Deref (_, f) -> Field f
  | Ksim.Instr.At (_, _) -> Slot

(* Which location an instruction touches.  Mirrors the machine's access
   instrumentation, including the [Free] special case: access_kind says
   None for Free, but the machine emits a Write access to [Whole obj]
   (and kfree conflicts with every access to the object's fields). *)
let of_instr (i : Ksim.Instr.t) : (t * Ksim.Instr.access_kind) option =
  match i with
  | Ksim.Instr.Free _ -> Some (Whole, Ksim.Instr.Write)
  | _ -> (
    match Ksim.Instr.access_kind i with
    | None -> None
    | Some kind ->
      let addr =
        match i with
        | Ksim.Instr.Load { src; _ } -> src
        | Ksim.Instr.Store { dst; _ } -> dst
        | Ksim.Instr.Rmw { loc; _ }
        | Ksim.Instr.Ref_get { loc }
        | Ksim.Instr.Ref_put { loc; _ } ->
          loc
        | Ksim.Instr.List_add { list; _ }
        | Ksim.Instr.List_del { list; _ }
        | Ksim.Instr.List_contains { list; _ }
        | Ksim.Instr.List_empty { list; _ }
        | Ksim.Instr.List_first { list; _ } ->
          list
        | _ -> assert false (* access_kind returned Some for these only *)
      in
      Some (of_addr_expr addr, kind))

let may_alias a b =
  match a, b with
  | Global x, Global y -> String.equal x y
  | Field x, Field y -> String.equal x y
  | Slot, Slot -> true
  | Whole, (Field _ | Slot | Whole) | (Field _ | Slot), Whole -> true
  | Global _, _ | _, Global _ -> false
  | Field _, Slot | Slot, Field _ -> false

let conflicting_kinds a b =
  not (a = Ksim.Instr.Read && b = Ksim.Instr.Read)

let equal a b =
  match a, b with
  | Global x, Global y | Field x, Field y -> String.equal x y
  | Slot, Slot | Whole, Whole -> true
  | _ -> false

let compare = Stdlib.compare

let pp ppf = function
  | Global g -> Fmt.pf ppf "&%s" g
  | Field f -> Fmt.pf ppf "*->%s" f
  | Slot -> Fmt.string ppf "*[_]"
  | Whole -> Fmt.string ppf "obj"

let to_string = Fmt.to_to_string pp
