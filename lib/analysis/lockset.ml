(* Per-instruction static locksets: a forward must/may dataflow fixpoint
   over the program's CFG.

   Transfer: Lock l adds l, Unlock l removes l, everything else is the
   identity.  Merge: intersection for must, union for may.  The entry
   instruction starts with the empty lockset (threads begin lock-free);
   unreachable instructions keep must = top — vacuously sound, since no
   execution reaches them — and are excluded from propagation so they
   cannot pollute reachable states. *)

module Names = Set.Make (String)

type point = { must : Names.t; may : Names.t }

type t = {
  points : (string, point) Hashtbl.t;  (* label -> lockset at entry *)
  universe : Names.t;
}

let universe t = t.universe

let find t label = Hashtbl.find_opt t.points label

let pp_point ppf { must; may } =
  Fmt.pf ppf "must:{%a} may:{%a}"
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    (Names.elements must)
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    (Names.elements may)

let of_program (p : Ksim.Program.t) : t =
  let n = Ksim.Program.length p in
  let instr i = (Ksim.Program.get p i).Ksim.Program.instr in
  let locks =
    let rec collect i acc =
      if i >= n then acc
      else
        let acc =
          match instr i with
          | Ksim.Instr.Lock l | Ksim.Instr.Unlock l -> Names.add l acc
          | _ -> acc
        in
        collect (i + 1) acc
    in
    collect 0 Names.empty
  in
  let succs i =
    match instr i with
    | Ksim.Instr.Branch_if { target; _ } ->
      let fall = if i + 1 < n then [ i + 1 ] else [] in
      Ksim.Program.position_of_label p target :: fall
    | Ksim.Instr.Goto target -> [ Ksim.Program.position_of_label p target ]
    | Ksim.Instr.Return -> []
    | _ -> if i + 1 < n then [ i + 1 ] else []
  in
  (* Reachability from the entry instruction. *)
  let reachable = Array.make (max n 1) false in
  let rec reach i =
    if i < n && not (reachable.(i)) then (
      reachable.(i) <- true;
      List.iter reach (succs i))
  in
  if n > 0 then reach 0;
  let must = Array.make (max n 1) locks in
  let may = Array.make (max n 1) Names.empty in
  if n > 0 then must.(0) <- Names.empty;
  let transfer i s =
    match instr i with
    | Ksim.Instr.Lock l -> Names.add l s
    | Ksim.Instr.Unlock l -> Names.remove l s
    | _ -> s
  in
  (* Chaotic iteration to the fixpoint: must only shrinks, may only
     grows, both within the finite lock universe — termination is
     immediate.  The entry keeps must = {} (its virtual predecessor is
     the lock-free thread start). *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if reachable.(i) then
        let out_must = transfer i must.(i) in
        let out_may = transfer i may.(i) in
        List.iter
          (fun j ->
            let must' =
              if j = 0 then must.(0) (* entry: pinned to {} *)
              else Names.inter must.(j) out_must
            in
            let may' = Names.union may.(j) out_may in
            if not (Names.equal must' must.(j)) then (
              must.(j) <- must';
              changed := true);
            if not (Names.equal may' may.(j)) then (
              may.(j) <- may';
              changed := true))
          (succs i)
    done
  done;
  let points = Hashtbl.create (max n 1) in
  for i = 0 to n - 1 do
    Hashtbl.replace points (Ksim.Program.get p i).Ksim.Program.label
      { must = must.(i); may = may.(i) }
  done;
  { points; universe = locks }
