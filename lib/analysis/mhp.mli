(** May-happen-in-parallel over a program group's threads.

    The thread universe is the group's top-level threads plus every
    background entry reachable through the spawn instructions
    (queue_work / call_rcu / arm_timer / enable_irq), transitively —
    an entry nobody can reach never runs and is excluded.

    The relation is a sound over-approximation of "two instruction
    instances of these threads can be simultaneously live":
    - two distinct non-serial top-level threads always may;
    - a [serial] (resource-setup prologue) top-level thread never
      overlaps another top-level thread — the executor forces it to
      run to completion first;
    - background entries may overlap everything, including other
      instances of themselves (a work item can be queued twice);
    - a top-level thread has a single instance, so it never overlaps
      itself. *)

type role = Toplevel of Ksim.Program.context | Entry

type thread = {
  thread_name : string;       (** spec name or entry name *)
  program : Ksim.Program.t;
  role : role;
  serial : bool;              (** forced serial prologue *)
}

type t

val of_group : ?serial:string list -> Ksim.Program.group -> t
(** [serial] names the top-level threads forced to run serially before
    the concurrent phase (the diagnose prologue). *)

val threads : t -> thread list

val find : t -> string -> thread option

val may_happen_in_parallel : t -> string -> string -> bool
(** By thread name (spec or entry name); false for unknown names. *)
