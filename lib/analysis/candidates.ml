(* Candidate-pair enumeration and lockset classification.

   The enumeration is the static mirror of the dynamic conflict
   predicate: different threads (MHP), overlapping locations
   (may_alias), at least one write.  Classification intersects
   locksets: must ∩ must ≠ ∅ proves mutual exclusion; may ∩ may ≠ ∅
   leaves the pair ambiguous; otherwise no lock can ever cover both. *)

type cls = Guarded | Unguarded | Ambiguous

let cls_name = function
  | Guarded -> "guarded"
  | Unguarded -> "unguarded"
  | Ambiguous -> "ambiguous"

type site = {
  thread : string;
  label : string;
  addr : Absaddr.t;
  kind : Ksim.Instr.access_kind;
  point : Lockset.point;
  src : Ksim.Program.loc;
}

type pair = {
  site_a : site;
  site_b : site;
  cls : cls;
  witness : string list;
}

type result = {
  group_name : string;
  thread_names : string list;
  serial : string list;
  sites : site list;
  pairs : pair list;
}

let sites_of_thread (th : Mhp.thread) : site list =
  let locks = Lockset.of_program th.Mhp.program in
  let n = Ksim.Program.length th.Mhp.program in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let { Ksim.Program.label; instr; src } =
        Ksim.Program.get th.Mhp.program i
      in
      let acc =
        match Absaddr.of_instr instr with
        | None -> acc
        | Some (addr, kind) ->
          let point =
            match Lockset.find locks label with
            | Some p -> p
            | None -> { Lockset.must = Lockset.Names.empty;
                        may = Lockset.universe locks }
          in
          { thread = th.Mhp.thread_name; label; addr; kind; point; src }
          :: acc
      in
      go (i + 1) acc
  in
  go 0 []

let classify_points (a : Lockset.point) (b : Lockset.point) :
    cls * string list =
  let common_must = Lockset.Names.inter a.Lockset.must b.Lockset.must in
  if not (Lockset.Names.is_empty common_must) then
    (Guarded, Lockset.Names.elements common_must)
  else
    let common_may = Lockset.Names.inter a.Lockset.may b.Lockset.may in
    if Lockset.Names.is_empty common_may then (Unguarded, [])
    else (Ambiguous, Lockset.Names.elements common_may)

let pair_of a b =
  let cls, witness = classify_points a.point b.point in
  { site_a = a; site_b = b; cls; witness }

let analyze ?(serial = []) (g : Ksim.Program.group) : result =
  Telemetry.Probe.with_span ~cat:"analysis" "analysis.candidates"
    ~args:[ ("group", g.Ksim.Program.group_name) ] @@ fun () ->
  let mhp =
    Telemetry.Probe.with_span ~cat:"analysis" "analysis.lockset_mhp"
      (fun () -> Mhp.of_group ~serial g)
  in
  let threads = Mhp.threads mhp in
  let by_thread = List.map (fun th -> (th, sites_of_thread th)) threads in
  let sites = List.concat_map snd by_thread in
  let conflicting a b =
    Absaddr.may_alias a.addr b.addr
    && Absaddr.conflicting_kinds a.kind b.kind
  in
  (* Unordered thread pairs, including an entry with itself (two dynamic
     instances of the same entry program can race). *)
  let rec thread_pairs = function
    | [] -> []
    | (th, ss) :: rest ->
      let self =
        if Mhp.may_happen_in_parallel mhp th.Mhp.thread_name
             th.Mhp.thread_name
        then [ ((th, ss), (th, ss)) ]
        else []
      in
      self
      @ List.filter_map
          (fun (th', ss') ->
            if
              Mhp.may_happen_in_parallel mhp th.Mhp.thread_name
                th'.Mhp.thread_name
            then Some ((th, ss), (th', ss'))
            else None)
          rest
      @ thread_pairs rest
  in
  let pairs =
    List.concat_map
      (fun ((th, ss), (th', ss')) ->
        if th == th' then
          (* Self-pairing: sites at index i <= j, once each. *)
          let arr = Array.of_list ss in
          let out = ref [] in
          Array.iteri
            (fun i a ->
              Array.iteri
                (fun j b ->
                  if j >= i && conflicting a b then out := pair_of a b :: !out)
                arr)
            arr;
          List.rev !out
        else
          List.concat_map
            (fun a ->
              List.filter_map
                (fun b ->
                  if conflicting a b then Some (pair_of a b) else None)
                ss')
            ss)
      (thread_pairs by_thread)
  in
  Telemetry.Probe.count "analysis.candidate_passes";
  Telemetry.Probe.count ~by:(List.length sites) "analysis.sites";
  Telemetry.Probe.count ~by:(List.length pairs) "analysis.pairs";
  { group_name = g.Ksim.Program.group_name;
    thread_names = List.map (fun th -> th.Mhp.thread_name) threads;
    serial;
    sites;
    pairs }

let pp_pair ppf p =
  Fmt.pf ppf "%s:%s %a ~ %s:%s %a @@ %a/%a [%s%a]" p.site_a.thread
    p.site_a.label Ksim.Instr.pp_access_kind p.site_a.kind p.site_b.thread
    p.site_b.label Ksim.Instr.pp_access_kind p.site_b.kind Absaddr.pp
    p.site_a.addr Absaddr.pp p.site_b.addr (cls_name p.cls)
    (fun ppf -> function
      | [] -> ()
      | ws -> Fmt.pf ppf ": %a" (Fmt.list ~sep:Fmt.comma Fmt.string) ws)
    p.witness
