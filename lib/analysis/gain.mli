(** Expected-information-gain scheduling for Causality flips and LIFS
    frontier extensions (after Fariha et al., {e Causality-Guided
    Adaptive Interventional Debugging}).

    Every candidate is a Bernoulli experiment; its expected information
    is the binary entropy of its estimated success probability.  The
    gain-ordered schedulers in {!Causality} and {!Lifs} always run the
    candidate with the highest entropy — the one whose outcome is least
    predictable — updating estimates with the session's evidence. *)

val entropy : float -> float
(** Binary entropy in bits; [0.] outside (0, 1). *)

val flip_prior : int -> float
(** Prior survival probability of a flip from its static rank (0 =
    lifetime or write-write race, 1 = other). *)

val flip_gain : rank:int -> roots:int -> benigns:int -> float
(** Expected information of executing a flip: binary entropy of the
    Beta-posterior survival probability, seeded with two
    pseudo-observations of {!flip_prior}[ rank] and updated with the
    session's [roots]/[benigns] verdict counts. *)

val serial_gain : index:int -> float
(** Gain of the [index]-th serial (preemption-free) execution.  The
    first is [infinity] — it seeds the race database and must run
    before any extension; later serials complete the database, so they
    outrank every deeper extension but not the depth-1 extensions of
    the strongest (rank-0) pairs. *)

val extension_prior : int -> float
(** Prior reproduction probability of a frontier extension from its
    {!Summary} pair rank. *)

val extension_gain : rank:int -> depth:int -> site_runs:int -> float
(** Gain of executing a frontier extension: the prior decayed by the
    fewest-preemptions principle ([0.85^(depth-1)] for [depth]
    preemptions) and by adaptive site feedback ([0.6^site_runs] after
    [site_runs] non-reproducing runs at the same preemption site). *)
