(** Aggregation of a static analysis result: headline statistics and the
    fast pair-classification lookup LIFS consumes as search hints. *)

type stats = {
  n_threads : int;
  n_sites : int;
  n_pairs : int;      (** statically possible conflicting pairs *)
  n_guarded : int;
  n_unguarded : int;
  n_ambiguous : int;
  pruning_ratio : float;
      (** guarded / total pairs: the fraction of the static conflict
          space a lockset argument eliminates (0 when no pairs) *)
}

val stats : Candidates.result -> stats
val pp_stats : stats Fmt.t

type lint_stats = {
  n_lock_edges : int;
  n_cycles : int;
  n_parallel_cycles : int;
      (** cycles whose witness threads can actually overlap (MHP) *)
  n_inversions : int;
}

val lint_stats : Lockorder.report -> lint_stats

val clean : lint_stats -> bool
(** No cycles and no inversions: the lint found nothing. *)

val pp_lint_stats : lint_stats Fmt.t

type hints
(** Constant-time classification of a site pair, keyed by the stable
    (thread name, instruction label) identity {!Ksim.Kcov.site} uses —
    the currency LIFS's access database already speaks. *)

val hints : Candidates.result -> hints

val classify :
  hints -> a:string * string -> b:string * string -> Candidates.cls option
(** [classify h ~a:(thread, label) ~b:(thread, label)]; symmetric;
    [None] for pairs outside the candidate set. *)

val pair_rank : Candidates.pair -> int

val rank : hints -> a:string * string -> b:string * string -> int
(** Search priority for LIFS: lifetime-threatening or write-write
    [Unguarded] pairs 0 (first), other [Unguarded] 1, [Ambiguous] 2,
    unknown 3, [Guarded] {!guarded_rank} (prunable). *)

val guarded_rank : int
