(** Aggregation of a static analysis result: headline statistics and the
    fast pair-classification lookup LIFS consumes as search hints. *)

type stats = {
  n_threads : int;
  n_sites : int;
  n_pairs : int;      (** statically possible conflicting pairs *)
  n_guarded : int;
  n_unguarded : int;
  n_ambiguous : int;
  pruning_ratio : float;
      (** guarded / total pairs: the fraction of the static conflict
          space a lockset argument eliminates (0 when no pairs) *)
}

val stats : Candidates.result -> stats
val pp_stats : stats Fmt.t

type lint_stats = {
  n_lock_edges : int;
  n_cycles : int;
  n_parallel_cycles : int;
      (** cycles whose witness threads can actually overlap (MHP) *)
  n_inversions : int;
}

val lint_stats : Lockorder.report -> lint_stats

val clean : lint_stats -> bool
(** No cycles and no inversions: the lint found nothing. *)

val pp_lint_stats : lint_stats Fmt.t

type hints
(** Constant-time classification of a site pair, keyed by the stable
    (thread name, instruction label) identity {!Ksim.Kcov.site} uses —
    the currency LIFS's access database already speaks. *)

val hints : Candidates.result -> hints

val classify :
  hints -> a:string * string -> b:string * string -> Candidates.cls option
(** [classify h ~a:(thread, label) ~b:(thread, label)]; symmetric;
    [None] for pairs outside the candidate set. *)

val pair_rank : Candidates.pair -> int

val rank : hints -> a:string * string -> b:string * string -> int
(** Search priority for LIFS: lifetime-threatening or write-write
    [Unguarded] pairs 0 (first), other [Unguarded] 1, [Ambiguous] 2,
    unknown 3, [Guarded] {!guarded_rank} (prunable). *)

val guarded_rank : int

(** {2 Unified pruning-counter namespace}

    LIFS and Causality historically emitted differently-shaped counter
    names ([lifs.schedules_statically_skipped],
    [causality.flips_statically_pruned]).  Every pruning source now
    also emits a canonical [pruned/*] name; the old names are kept as
    deprecated aliases so committed benchmarks stay comparable. *)

type pruned_kind =
  [ `Lifs_equivalent  (** DPOR-equivalent schedules *)
  | `Lifs_static  (** statically-skipped (Guarded) extensions *)
  | `Lifs_invariant  (** failure-irrelevant frontier slices *)
  | `Ca_static  (** flip-feasibility proofs *)
  | `Ca_invariant  (** error-invariant proofs *) ]

val pruned_counter : pruned_kind -> string
(** Canonical counter name, e.g. ["pruned/ca_invariant"]. *)

val pruned_alias : pruned_kind -> string
(** The deprecated pre-unification name, e.g.
    ["causality.flips_statically_pruned"]. *)

val count_pruned : ?by:int -> pruned_kind -> unit
(** Bump both the canonical counter and its deprecated alias. *)
