(** Lockdep-style static lock-order analysis: a cross-thread
    lock-acquisition-order graph built from the per-instruction
    locksets, its cycles (potential ABBA deadlocks / lock-order
    inversions) with witness paths, and guarded-publication inversions
    (a lock that serializes a publishing store against a consuming load
    without ordering which section runs first). *)

type edge = {
  held : string;        (** the lock already held *)
  acquired : string;    (** the lock being taken while [held] is held *)
  via_thread : string;  (** witness thread (spec or entry name) *)
  via_label : string;   (** witness label: the inner [Lock] instruction *)
  must : bool;          (** [held] held on every path to the acquisition *)
}

type cycle = {
  cycle_locks : string list;  (** distinct locks in cycle order *)
  cycle_edges : edge list;    (** one witness edge per hop *)
  parallel : bool;            (** the witness threads can overlap (MHP) *)
}

type inversion = {
  inv_lock : string;            (** the lock serializing both sections *)
  inv_global : string;          (** the published NULL-initialized global *)
  publisher : string * string;  (** thread, label of the guarded store *)
  consumer : string * string;   (** thread, label of the guarded load *)
  use : string * string;        (** thread, label of the unchecked deref *)
}

type report = {
  group_name : string;
  thread_names : string list;
  edges : edge list;
  cycles : cycle list;
  inversions : inversion list;
}

val analyze : ?serial:string list -> Ksim.Program.group -> report
(** [serial] names prologue threads forced to run before the concurrent
    phase (they never overlap anything, so they contribute no
    schedulable cycles or inversions). *)

val pp_edge : edge Fmt.t
val pp_cycle : cycle Fmt.t
val pp_inversion : inversion Fmt.t
val pp : report Fmt.t
