(** Flip-feasibility pre-analysis for Causality Analysis.

    Decides, on the failing trace and the flip plan alone, whether
    re-executing a flipped race can possibly {e complete}.  The Benign
    verdict of Causality Analysis covers every non-completing outcome,
    so a flip that provably cannot complete is Benign without a VM run:

    - {!Infeasible}: the plan cannot enforce the reversed order (it
      replays the failing sequence, or spawn-prerequisite hoisting kept
      the pair in program order); replaying reproduces the failure.
    - {!Preserves_failure}: the plan is a lock-consistent permutation
      and every reordered conflicting access pair is independent of the
      failure's control/data slice — a dynamic backward slice from the
      faulting event plus a forward taint walk over the reordered reads
      prove the faulting instruction sees the same operands.
    - {!Unknown}: no proof; the flip must execute. *)

type verdict =
  | Infeasible of string
  | Preserves_failure of string
  | Unknown of string

val prunable : verdict -> string option
(** The reason to record when the flip can be skipped; [None] for
    {!Unknown}. *)

val analyze :
  trace:Ksim.Machine.event list ->
  plan:Ksim.Access.Iid.t list ->
  first:Ksim.Access.t ->
  second:Ksim.Access.t ->
  verdict
(** [trace] is the failing sequence (faulting event last); [plan] is the
    total order the flip would enforce; [first]/[second] are the racing
    endpoints being reversed. *)

val nesting_depth : Ksim.Machine.event list -> Ksim.Access.Iid.t -> int
(** Critical-section nesting of an event: locks its thread holds when it
    executes (its own acquisition counts). *)

(** {2 Register use/def helpers}

    Shared with the failure-relevance closure ({!Absdom}). *)

module SS : Set.S with type elt = string

val expr_regs : SS.t -> Ksim.Instr.expr -> SS.t
val addr_regs : SS.t -> Ksim.Instr.addr_expr -> SS.t
val uses : Ksim.Instr.t -> SS.t
val defines : Ksim.Instr.t -> string option

val pp : verdict Fmt.t
