(* May-happen-in-parallel from thread structure: top-level concurrency,
   the serial-prologue discipline, and spawn reachability for
   background entries. *)

type role = Toplevel of Ksim.Program.context | Entry

type thread = {
  thread_name : string;
  program : Ksim.Program.t;
  role : role;
  serial : bool;
}

type t = { all : thread list }

(* Entries a program can spawn. *)
let spawn_targets (p : Ksim.Program.t) : string list =
  let n = Ksim.Program.length p in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let acc =
        match (Ksim.Program.get p i).Ksim.Program.instr with
        | Ksim.Instr.Queue_work { entry; _ }
        | Ksim.Instr.Call_rcu { entry; _ }
        | Ksim.Instr.Arm_timer { entry; _ }
        | Ksim.Instr.Enable_irq { entry; _ } ->
          entry :: acc
        | _ -> acc
      in
      go (i + 1) acc
  in
  go 0 []

let of_group ?(serial = []) (g : Ksim.Program.group) : t =
  let top =
    List.map
      (fun (s : Ksim.Program.thread_spec) ->
        { thread_name = s.spec_name;
          program = s.program;
          role = Toplevel s.context;
          serial = List.mem s.spec_name serial })
      g.Ksim.Program.threads
  in
  (* Transitive closure of spawn reachability over the entry table:
     entries can queue further work themselves. *)
  let reached = Hashtbl.create 8 in
  let rec visit entry =
    if not (Hashtbl.mem reached entry) then
      match List.assoc_opt entry g.Ksim.Program.entries with
      | None -> () (* dangling entry name: the machine would fail; skip *)
      | Some p ->
        Hashtbl.add reached entry p;
        List.iter visit (spawn_targets p)
  in
  List.iter
    (fun (s : Ksim.Program.thread_spec) ->
      List.iter visit (spawn_targets s.program))
    g.Ksim.Program.threads;
  let entries =
    List.filter_map
      (fun (name, _) ->
        match Hashtbl.find_opt reached name with
        | None -> None
        | Some p ->
          Some { thread_name = name; program = p; role = Entry; serial = false })
      g.Ksim.Program.entries
  in
  { all = top @ entries }

let threads t = t.all

let find t name =
  List.find_opt (fun th -> String.equal th.thread_name name) t.all

let may_happen_in_parallel t a b =
  match find t a, find t b with
  | Some ta, Some tb -> (
    match ta.role, tb.role with
    | Toplevel _, Toplevel _ ->
      (not (String.equal a b)) && (not ta.serial) && not tb.serial
    | Entry, _ | _, Entry ->
      (* Spawned threads run asynchronously: they overlap every other
         thread, and a re-queued entry overlaps its own instances. *)
      true)
  | None, _ | _, None -> false
