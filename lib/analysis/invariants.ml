(* The error-invariant engine (after Holzer et al., "Error Invariants
   for Concurrent Traces").

   Causality Analysis re-executes the failing sequence once per race
   with the racing pair flipped; the Benign verdict covers every
   non-completing outcome.  Flip-feasibility proofs (see Flipfeas)
   already discharge flips whose re-run provably replays or preserves
   the failure; this engine discharges whole {e families} of the
   remaining flips by deriving, per schedule prefix, an invariant
   strong enough to show the flip cannot avert the failure:

   - the {e segment} rule proves it abstractly: when the flip plan is a
     per-thread-order-preserving, lock-consistent permutation whose
     displaced window touches only global locations outside the
     failure-relevance closure ({!Absdom}), the machine states at the
     window boundaries agree on every relevant location, so every
     thread executes the same instruction sequence and the failure
     predicate evaluates identically;

   - the {e replay} rule derives the invariant in the strongest domain
     available — the concrete machine state itself.  It re-derives the
     flip's outcome by driving a pure {!Ksim.Machine} under an exact
     mirror of the hypervisor's plan-enforcement policy (the machine is
     deterministic, so the mirrored verdict {e is} the VM's verdict)
     and samples state fingerprints along the prefix as the invariant
     chain.  A non-completing verdict proves the flip Benign without a
     VM run; a completing one means the flip is a root cause and must
     execute.

   Both rules emit checkable certificates in the Flipfeas proof shape
   (a reason string plus enough evidence to re-derive the proof), and
   identical plans share one certificate through the family cache —
   the wholesale "flip family" discharge of the paper's technique. *)

module Iid = Ksim.Access.Iid
module I = Ksim.Instr

type rule = Family | Segment | Replay

let rule_name = function
  | Family -> "family"
  | Segment -> "segment"
  | Replay -> "replay"

type certificate = {
  cert_key : string;  (* race key the proof was first derived for *)
  cert_rule : rule;
  cert_failure : string;  (* predicted verdict class of the re-run *)
  cert_steps : int;  (* replay length; 0 for segment proofs *)
  cert_window : (int * int) option;  (* displaced trace-index window *)
  cert_displaced : string list;  (* displaced abstract locations *)
  cert_fingerprints : string list;  (* sampled machine-state digests *)
}

let pp_certificate ppf c =
  Fmt.pf ppf "%s proof for %s: %s (%d step(s)%a%a, %d fingerprint(s))"
    (rule_name c.cert_rule) c.cert_key c.cert_failure c.cert_steps
    (Fmt.option (fun ppf (lo, hi) -> Fmt.pf ppf ", window [%d,%d]" lo hi))
    c.cert_window
    (fun ppf -> function
      | [] -> ()
      | locs ->
        Fmt.pf ppf ", displaced %a" (Fmt.list ~sep:Fmt.comma Fmt.string) locs)
    c.cert_displaced
    (List.length c.cert_fingerprints)

type engine = {
  group : Ksim.Program.group;
  prologue : int list;
  max_steps : int;
  rel : Absdom.t;
  (* Plan digest -> shared proof (None: no proof, the flip executes). *)
  families : (string, (string * certificate) option) Hashtbl.t;
  mutable derivations : int;  (* proofs derived (family hits excluded) *)
  mutable replays : int;  (* replay-rule machine re-derivations *)
}

let default_max_steps = 200_000

let create ?(max_steps = default_max_steps) ?(prologue = [])
    (group : Ksim.Program.group) : engine =
  { group;
    prologue;
    max_steps;
    rel = Absdom.of_group group;
    families = Hashtbl.create 64;
    derivations = 0;
    replays = 0 }

let relevance e = e.rel

let plan_digest (plan : Iid.t list) =
  Digest.to_hex
    (Digest.string (String.concat ";" (List.map Iid.to_string plan)))

(* --- the replay rule: an exact mirror of plan enforcement ------------- *)

(* The policy below reproduces Hypervisor.Schedule.plan_policy verbatim
   (match the planned event, run through divergence on a bounded
   budget, run lock holders when the planned thread blocks, drop
   unreachable events), and the loop reproduces the controller's
   verdict logic.  Executor.run_plan drives exactly this pair over
   [Ksim.Machine.create group] when no faults are armed, so machine
   determinism makes the mirrored verdict equal to the VM's. *)

type verdict_mirror =
  | M_completed
  | M_failed of Ksim.Failure.t
  | M_deadlock
  | M_step_limit

let mirror_verdict_name = function
  | M_completed -> "completed"
  | M_failed f -> "failed: " ^ Ksim.Failure.symptom f
  | M_deadlock -> "deadlock"
  | M_step_limit -> "step-limit"

let plan_policy_mirror (events : Iid.t list) ~(budget : int) :
    Ksim.Machine.t -> int list -> int option =
  let remaining = ref events in
  let budget_left = ref budget in
  fun m runnable ->
    let rec decide () =
      match !remaining with
      | [] -> ( match runnable with [] -> None | t :: _ -> Some t)
      | ev :: rest -> (
        let tid = ev.Iid.tid in
        let drop () =
          remaining := rest;
          budget_left := budget;
          decide ()
        in
        if not (Ksim.Machine.has_thread m tid) then drop ()
        else
          match Ksim.Machine.next_label m tid with
          | None -> drop ()
          | Some next ->
            if List.mem tid runnable then (
              let next_occ = Ksim.Machine.occurrences m tid next + 1 in
              if String.equal next ev.Iid.label && next_occ = ev.Iid.occ
              then (
                remaining := rest;
                budget_left := budget;
                Some tid)
              else if !budget_left > 0 then (
                decr budget_left;
                Some tid)
              else drop ())
            else
              match Ksim.Machine.blocked_on m tid with
              | Some lock -> (
                match Ksim.Machine.lock_holder m lock with
                | Some holder when List.mem holder runnable -> Some holder
                | Some _ | None -> None)
              | None -> drop ())
    in
    decide ()

let with_prologue_mirror (prologue : int list) policy m runnable =
  let rec pick = function
    | [] -> policy m runnable
    | tid :: rest ->
      if Ksim.Machine.is_done m tid then pick rest
      else if List.mem tid runnable then Some tid
      else None
  in
  pick prologue

(* Drive the machine to a verdict, retaining the machines produced so
   the invariant chain can be sampled afterwards. *)
let replay (e : engine) ~(plan : Iid.t list) ~(run_through_budget : int) :
    verdict_mirror * int * string list =
  e.replays <- e.replays + 1;
  Telemetry.Probe.count "analysis.invariant_replays";
  let policy =
    with_prologue_mirror e.prologue
      (plan_policy_mirror plan ~budget:run_through_budget)
  in
  let states = ref [] in
  (* newest first *)
  let finish verdict m steps =
    let n = List.length !states in
    let arr = Array.make (n + 1) m in
    List.iteri (fun i s -> arr.(n - 1 - i) <- s) !states;
    arr.(n) <- m;
    let sample =
      List.sort_uniq compare [ 0; n / 4; n / 2; 3 * n / 4; n ]
    in
    let fps = List.map (fun i -> Ksim.Machine.fingerprint arr.(i)) sample in
    (verdict, steps, fps)
  in
  let rec loop m steps =
    if steps >= e.max_steps then finish M_step_limit m steps
    else
      match Ksim.Machine.failed m with
      | Some f -> finish (M_failed f) m steps
      | None -> (
        match Ksim.Machine.runnable m with
        | [] ->
          let m = Ksim.Machine.check_leaks m in
          (match Ksim.Machine.failed m with
          | Some f -> finish (M_failed f) m steps
          | None ->
            if Ksim.Machine.all_done m then finish M_completed m steps
            else finish M_deadlock m steps)
        | runnable -> (
          match policy m runnable with
          | None ->
            let m = Ksim.Machine.check_leaks m in
            (match Ksim.Machine.failed m with
            | Some f -> finish (M_failed f) m steps
            | None ->
              if Ksim.Machine.all_done m then finish M_completed m steps
              else finish M_deadlock m steps)
          | Some tid -> (
            match Ksim.Machine.step m tid with
            | Ok (m', _ev) ->
              states := m :: !states;
              loop m' (steps + 1)
            | Error (Ksim.Machine.Blocked_on_lock _)
            | Error Ksim.Machine.Thread_not_runnable ->
              finish M_deadlock m steps
            | Error Ksim.Machine.Machine_failed -> (
              match Ksim.Machine.failed m with
              | Some f -> finish (M_failed f) m steps
              | None -> assert false))))
  in
  loop (Ksim.Machine.create e.group) 0

(* --- the segment rule -------------------------------------------------- *)

(* A displaced window confined to irrelevant globals.  Requirements for
   the abstract proof (anything missing falls through to the replay
   rule): the plan is a duplicate-free permutation of the trace that
   preserves every thread's own order, it is lock-consistent (the
   enforcement never blocks), no displaced event spawns a thread, and
   every displaced access targets a global location outside the
   relevance closure (globals alias only themselves, so the
   abstraction is exact there; heap locations go to the replay rule,
   where object lifetime is tracked concretely). *)
let segment (e : engine) ~(trace : Ksim.Machine.event list)
    ~(plan : Iid.t list) : (string * (int * int) option * string list) option
    =
  let events = Array.of_list trace in
  let n = Array.length events in
  if n = 0 then None
  else
    let index : (Iid.t, int) Hashtbl.t = Hashtbl.create (2 * n) in
    Array.iteri
      (fun i (ev : Ksim.Machine.event) -> Hashtbl.replace index ev.iid i)
      events;
    let plan_arr = Array.of_list plan in
    if
      Array.length plan_arr <> n
      || Array.exists (fun iid -> not (Hashtbl.mem index iid)) plan_arr
    then None
    else
      let pos = Array.make n (-1) in
      let dup = ref false in
      Array.iteri
        (fun p iid ->
          let i = Hashtbl.find index iid in
          if pos.(i) >= 0 then dup := true;
          pos.(i) <- p)
        plan_arr;
      if !dup then None
      else
        (* Per-thread program order must survive the permutation. *)
        let thread_order_kept =
          let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
          Array.for_all
            (fun (iid : Iid.t) ->
              let i = Hashtbl.find index iid in
              let ok =
                match Hashtbl.find_opt last iid.Iid.tid with
                | Some prev -> prev < i
                | None -> true
              in
              Hashtbl.replace last iid.Iid.tid i;
              ok)
            plan_arr
        in
        if not thread_order_kept then None
        else
          let lock_ok =
            let holders : (string, unit) Hashtbl.t = Hashtbl.create 4 in
            Array.for_all
              (fun (iid : Iid.t) ->
                let ev = events.(Hashtbl.find index iid) in
                match ev.lock_op with
                | Some (l, `Acquire) ->
                  if Hashtbl.mem holders l then false
                  else (
                    Hashtbl.replace holders l ();
                    true)
                | Some (l, `Release) ->
                  Hashtbl.remove holders l;
                  true
                | None -> true)
              plan_arr
          in
          if not lock_ok then None
          else
            let displaced = ref [] in
            Array.iteri
              (fun i p -> if p <> i then displaced := i :: !displaced)
              pos;
            match !displaced with
            | [] ->
              Some
                ( "empty displaced window: the plan replays the failing \
                   sequence",
                  None,
                  [] )
            | d ->
              let lo = List.fold_left min n d
              and hi = List.fold_left max (-1) d in
              let ok = ref true in
              let locs = ref [] in
              List.iter
                (fun i ->
                  let ev = events.(i) in
                  if ev.Ksim.Machine.spawned <> [] then ok := false;
                  match ev.Ksim.Machine.access with
                  | None -> ()
                  | Some a -> (
                    match Absdom.abstract a.Ksim.Access.addr with
                    | Absaddr.Global _ as g ->
                      if Absdom.mem_abs e.rel g then ok := false
                      else if
                        not (List.mem (Absaddr.to_string g) !locs)
                      then locs := Absaddr.to_string g :: !locs
                    | Absaddr.Field _ | Absaddr.Slot | Absaddr.Whole ->
                      ok := false))
                d;
              if not !ok then None
              else
                Some
                  ( Fmt.str
                      "displaced window [%d,%d] touches only \
                       failure-irrelevant globals"
                      lo hi,
                    Some (lo, hi),
                    List.sort String.compare !locs )

(* --- the prune cascade ------------------------------------------------- *)

let derive (e : engine) ~(key : string) ~(trace : Ksim.Machine.event list)
    ~(plan : Iid.t list) ~(run_through_budget : int) :
    (string * certificate) option =
  e.derivations <- e.derivations + 1;
  match segment e ~trace ~plan with
  | Some (why, window, displaced) ->
    Some
      ( "invariant segment: " ^ why,
        { cert_key = key;
          cert_rule = Segment;
          cert_failure = "failed (state invariant preserved)";
          cert_steps = 0;
          cert_window = window;
          cert_displaced = displaced;
          cert_fingerprints = [] } )
  | None -> (
    let verdict, steps, fps = replay e ~plan ~run_through_budget in
    let cert rule why =
      ( why,
        { cert_key = key;
          cert_rule = rule;
          cert_failure = mirror_verdict_name verdict;
          cert_steps = steps;
          cert_window = None;
          cert_displaced = [];
          cert_fingerprints = fps } )
    in
    match verdict with
    | M_completed -> None (* the flip averts the failure: execute it *)
    | M_failed f ->
      Some
        (cert Replay
           (Fmt.str "invariant replay: the enforced order still fails (%s)"
              (Ksim.Failure.symptom f)))
    | M_deadlock ->
      Some (cert Replay "invariant replay: the enforced order deadlocks")
    | M_step_limit ->
      Some
        (cert Replay
           "invariant replay: the enforced order diverges (step limit)"))

let prune (e : engine) ~(key : string) ~(trace : Ksim.Machine.event list)
    ~(plan : Iid.t list) ~(run_through_budget : int) :
    (string * certificate) option =
  Telemetry.Probe.count "analysis.invariant_queries";
  let digest = plan_digest plan in
  match Hashtbl.find_opt e.families digest with
  | Some cached ->
    Telemetry.Probe.count "analysis.invariant_family_hits";
    Option.map
      (fun (why, c) ->
        if String.equal c.cert_key key then (why, c)
        else ("invariant family: shares the proof of " ^ c.cert_key, c))
      cached
  | None ->
    let res = derive e ~key ~trace ~plan ~run_through_budget in
    Hashtbl.replace e.families digest res;
    res

(* Re-derive a certificate from scratch and compare the evidence: the
   rule, the predicted verdict class, the replay length, the window and
   the sampled state fingerprints must all reproduce. *)
let check (e : engine) ~(trace : Ksim.Machine.event list)
    ~(plan : Iid.t list) ~(run_through_budget : int) (c : certificate) :
    bool =
  match
    derive e ~key:c.cert_key ~trace ~plan ~run_through_budget
  with
  | None -> false
  | Some (_, c') ->
    (match (c.cert_rule, c'.cert_rule) with
    | Family, _ | _, Family -> true (* family shares another rule's proof *)
    | a, b -> a = b)
    && String.equal c.cert_failure c'.cert_failure
    && c.cert_steps = c'.cert_steps
    && c.cert_window = c'.cert_window
    && c.cert_displaced = c'.cert_displaced
    && c.cert_fingerprints = c'.cert_fingerprints

(* --- invariant-derived lint: redundant critical sections --------------- *)

(* A lock acquisition is redundant (w.r.t. the failure predicate) when
   its critical section provably guards nothing relevant: every
   instruction inside is straight-line, spawns nothing, frees nothing,
   asserts nothing and touches only locations outside the relevance
   closure.  Reported by `aitia lint` as advisory findings with the
   witness segment. *)

type redundant = {
  red_thread : string;  (* thread spec / entry name *)
  red_lock : string;
  red_start : string;  (* label of the Lock *)
  red_stop : string;  (* label of the matching Unlock *)
  red_body : int;  (* instructions inside the section *)
}

let pp_redundant ppf r =
  Fmt.pf ppf "%s: lock %s section %s..%s (%d instr(s))" r.red_thread
    r.red_lock r.red_start r.red_stop r.red_body

let section_irrelevant rel (instrs : Ksim.Program.labeled list) =
  List.for_all
    (fun (l : Ksim.Program.labeled) ->
      match l.instr with
      | I.Branch_if _ | I.Goto _ | I.Return | I.Lock _ | I.Unlock _
      | I.Free _ | I.Queue_work _ | I.Call_rcu _ | I.Arm_timer _
      | I.Enable_irq _ | I.Bug_on _ | I.Warn_on _ -> false
      | I.Nop | I.Assign _ | I.Alloc _ -> true
      | I.Load _ | I.Store _ | I.Rmw _ | I.List_add _ | I.List_del _
      | I.List_contains _ | I.List_empty _ | I.List_first _ | I.Ref_get _
      | I.Ref_put _ -> (
        match Absaddr.of_instr l.instr with
        | None -> true
        | Some (a, _) -> not (Absdom.mem_abs rel a)))
    instrs

let redundant_in_program rel ~thread (p : Ksim.Program.t) =
  let out = ref [] in
  let n = Ksim.Program.length p in
  for i = 0 to n - 1 do
    match (Ksim.Program.get p i).instr with
    | I.Lock l ->
      let rec find_unlock j body =
        if j >= n then None
        else
          let lj = Ksim.Program.get p j in
          match lj.instr with
          | I.Unlock l' when String.equal l l' -> Some (lj, List.rev body)
          | _ -> find_unlock (j + 1) (lj :: body)
      in
      (match find_unlock (i + 1) [] with
      | Some (unlock, body) when section_irrelevant rel body ->
        out :=
          { red_thread = thread;
            red_lock = l;
            red_start = (Ksim.Program.get p i).label;
            red_stop = unlock.label;
            red_body = List.length body }
          :: !out
      | _ -> ())
    | _ -> ()
  done;
  List.rev !out

let redundant_sections ?relevance (group : Ksim.Program.group) :
    redundant list =
  let rel =
    match relevance with Some r -> r | None -> Absdom.of_group group
  in
  List.concat_map
    (fun (s : Ksim.Program.thread_spec) ->
      redundant_in_program rel ~thread:s.spec_name s.program)
    group.Ksim.Program.threads
  @ List.concat_map
      (fun (name, p) -> redundant_in_program rel ~thread:name p)
      group.Ksim.Program.entries
