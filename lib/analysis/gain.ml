(* Expected-information-gain scheduling (after Fariha et al.,
   "Causality-Guided Adaptive Interventional Debugging").

   Each candidate intervention — a flip in Causality Analysis, a
   frontier extension in LIFS — is a Bernoulli experiment: the flip
   survives (root cause) or not (benign); the extension reproduces the
   failure or not.  The information an experiment yields is the binary
   entropy of its success probability, so the scheduler always runs the
   candidate whose current estimate is closest to a coin toss and
   leaves near-certain candidates (whose outcome we can already
   predict) for last.  Estimates start from the static classifier
   (Summary ranks: how suspicious the racing pair looks) and are
   updated by the evidence the session accumulates: executed-flip
   verdicts feed a Beta posterior, repeated failures to extend at a
   site decay its estimate, deeper preemption nests pay the paper's
   fewest-preemptions prior. *)

let entropy p =
  if p <= 0. || p >= 1. then 0.
  else
    let q = 1. -. p in
    -.((p *. log p) +. (q *. log q)) /. log 2.

(* --- Causality flips --------------------------------------------------- *)

(* Rank 0: lifetime races (a Whole-object endpoint, i.e. free/realloc)
   and write-write races — the classes the corpus' root causes live in,
   closest to even odds of surviving.  Rank 1: everything else. *)
let flip_prior = function 0 -> 0.5 | 1 -> 0.35 | _ -> 0.25

let flip_gain ~rank ~roots ~benigns =
  let p0 = flip_prior rank in
  (* Beta posterior with 2 pseudo-observations of the static prior,
     updated by this session's executed-and-pruned verdicts. *)
  let a = (2. *. p0) +. float_of_int roots
  and b = (2. *. (1. -. p0)) +. float_of_int benigns in
  entropy (a /. (a +. b))

(* --- LIFS frontier ----------------------------------------------------- *)

let serial_gain ~index =
  (* The first serial execution seeds the whole cross-thread race
     database: run it before anything else.  Later serials complete the
     database — threads whose guarded paths only execute under another
     start order contribute their accesses there — so they are worth
     more than any deeper (depth >= 2) extension, but less than a
     depth-1 extension of a lifetime/write-write pair, the class the
     corpus' minimal reproductions live in. *)
  if index = 0 then infinity else entropy 0.4

let extension_prior = function
  | 0 -> 0.42 (* lifetime: free/realloc against use *)
  | 1 -> 0.30 (* unguarded write-write *)
  | 2 -> 0.20 (* ambiguous locking *)
  | _ -> 0.12 (* consistently guarded / unranked *)

let extension_gain ~rank ~depth ~site_runs =
  let p =
    extension_prior rank
    *. (0.85 ** float_of_int (max 0 (depth - 1)))
    (* fewest-preemptions prior: each extra preemption is less likely
       to be the minimal reproduction *)
    *. (0.6 ** float_of_int site_runs)
    (* adaptive decay: a site that keeps not reproducing loses odds *)
  in
  entropy p
