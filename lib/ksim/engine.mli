(** The execution-engine selector.

    AITIA's diagnosis cost is dominated by guest re-execution, so the
    machine comes in two engines: the persistent {e reference} semantics
    and the arena/undo-log {e compiled} engine (see {!Machine}).  This
    module is the single switch point — [--engine=reference|compiled] on
    the CLI becomes a {!kind} carried by [Hypervisor.Vm], and every
    layer that boots a machine goes through {!boot}.

    The [step]/[snapshot]/[restore]/[fingerprint] quartet is the engine
    interface the executor and snapshot cache consume, so they never
    pattern-match on machine internals. *)

type kind = Reference | Compiled

val default : kind
(** {!Compiled} — parity with the reference engine is enforced by the
    differential oracle, so the fast engine is the default. *)

val to_string : kind -> string
val of_string : string -> (kind, string) result
val pp : kind Fmt.t

val boot : kind -> Program.group -> Machine.t
(** A fresh machine on the chosen engine. *)

val kind_of : Machine.t -> kind

(** {1 The engine interface} *)

val step : Machine.t -> int -> (Machine.t * Machine.event, Machine.step_error) result

type snapshot

val snapshot : Machine.t -> snapshot
(** Capture the machine's state for later restoration.  Freezes a
    compiled-engine machine so the snapshot may be restored concurrently
    from several domains. *)

val restore : snapshot -> Machine.t
(** The machine at the snapshotted state.  O(1); a compiled-engine
    restore defers the arena clone-and-rewind until the machine is
    actually stepped or inspected. *)

val snapshot_cost : ?prev:Machine.t -> Machine.t -> int
(** Estimated marginal bytes of retaining a snapshot, given the
    previously accounted snapshot of the same chain — the unit the
    snapshot cache's LRU budget counts in.  Reference-engine snapshots
    cost a flat per-step constant (persistent-map spine sharing);
    compiled-engine snapshots sharing an arena cost their undo-log
    delta, and a fresh arena is charged as a full clone. *)

val fingerprint : Machine.t -> string
