(** The slab-allocator model with KASAN-style shadow state.

    Object identities are never reused within a run, so the metadata of
    a freed object survives (as in KASAN's quarantine) and a dangling
    access classifies as use-after-free rather than a wild fault.  The
    heap is persistent: snapshotting costs nothing. *)

type state = Live | Freed of Access.Iid.t

type obj = {
  tag : string;          (** slab cache name, e.g. ["packet_fanout"] *)
  gen : int;
  state : state;
  slots : int;           (** indexable size; 0 for plain structs *)
  leak_check : bool;     (** report at end of run if never freed *)
  alloc_at : Access.Iid.t;
}

type t

val empty : t

val alloc :
  t -> tag:string -> slots:int -> leak_check:bool -> at:Access.Iid.t ->
  t * Value.obj_id

val find : t -> Value.obj_id -> obj option

val free :
  t -> ptr:Value.ptr -> at:Access.Iid.t -> (t, Failure.t) result
(** Classifies double-frees and invalid frees. *)

val check_access :
  t -> ptr:Value.ptr -> index:int option -> kind:Instr.access_kind ->
  at:Access.Iid.t -> Failure.t option
(** KASAN check for a field ([index = None]) or slot access; slots are
    bounds-checked. *)

val leaked : t -> (Value.obj_id * string) list
(** Live [leak_check] objects, for the end-of-run leak report. *)

val live_count : t -> int

val fold : (Value.obj_id -> obj -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every object, live and freed, in increasing id order —
    a canonical traversal for state fingerprinting. *)

val next_id : t -> int
(** The next object id the allocator would hand out. *)

val of_objs : (Value.obj_id * obj) list -> next:int -> t
(** Rebuild a heap from an explicit object list.  Used by the compiled
    engine to materialize its arena into the persistent form. *)
