(* The slab-allocator model with KASAN-style shadow state.

   Object identities are never reused within a run, so a dangling pointer
   always refers to an object whose metadata records that it was freed —
   exactly the information KASAN's quarantine preserves to classify a bad
   access as use-after-free rather than a wild fault.  The heap is a
   persistent structure: snapshotting a machine is O(1). *)

module Int_map = Map.Make (Int)

type state = Live | Freed of Access.Iid.t

type obj = {
  tag : string;               (* slab cache name, e.g. "packet_fanout" *)
  gen : int;
  state : state;
  slots : int;                (* indexable size; 0 for plain structs *)
  leak_check : bool;          (* report at end-of-run if never freed *)
  alloc_at : Access.Iid.t;
}

type t = {
  objs : obj Int_map.t;
  next : int;
}

let empty = { objs = Int_map.empty; next = 0 }

let alloc t ~tag ~slots ~leak_check ~at =
  let id = t.next in
  let obj = { tag; gen = 0; state = Live; slots; leak_check; alloc_at = at } in
  ({ objs = Int_map.add id obj t.objs; next = id + 1 }, id)

let find t id = Int_map.find_opt id t.objs

(* Free a pointer; classifies double-frees. *)
let free t ~(ptr : Value.ptr) ~at =
  match find t ptr.obj with
  | None -> Error (Failure.Invalid_free { at })
  | Some o -> (
    match o.state with
    | Freed _ ->
      Error (Failure.Double_free { at; obj = ptr.obj; tag = o.tag })
    | Live ->
      let o = { o with state = Freed at } in
      Ok { t with objs = Int_map.add ptr.obj o t.objs })

(* KASAN check for a field or indexed access through [ptr].  [index] is
   [Some i] for slot accesses, which are additionally bounds-checked. *)
let check_access t ~(ptr : Value.ptr) ~index ~kind ~at =
  match find t ptr.obj with
  | None -> Some (Failure.General_protection_fault { at })
  | Some o -> (
    match o.state with
    | Freed freed_at ->
      Some
        (Failure.Use_after_free
           { at; obj = ptr.obj; tag = o.tag; kind; freed_at = Some freed_at })
    | Live -> (
      match index with
      | Some i when i < 0 || i >= o.slots ->
        Some
          (Failure.Out_of_bounds
             { at; obj = ptr.obj; tag = o.tag; index = i; size = o.slots })
      | Some _ | None -> None))

(* Objects flagged for leak checking that are still live. *)
let leaked t =
  Int_map.fold
    (fun id o acc ->
      match o.state with
      | Live when o.leak_check -> (id, o.tag) :: acc
      | Live | Freed _ -> acc)
    t.objs []
  |> List.rev

let live_count t =
  Int_map.fold
    (fun _ o n -> match o.state with Live -> n + 1 | Freed _ -> n)
    t.objs 0

(* In-order enumeration of every object (live and freed), for the
   machine fingerprint: Int_map folds in increasing key order, so the
   traversal is canonical regardless of insertion history. *)
let fold f t init = Int_map.fold f t.objs init

let next_id t = t.next

(* Rebuild a heap from an explicit object list — the bridge the compiled
   engine uses to materialize its mutable arena back into the persistent
   representation for fingerprinting. *)
let of_objs objs ~next =
  let m =
    List.fold_left (fun acc (id, o) -> Int_map.add id o acc) Int_map.empty objs
  in
  { objs = m; next }
