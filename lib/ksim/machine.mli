(** The kernel machine: a deterministic, sequentially consistent
    interpreter over a program group.

    The machine is a persistent value: [step] returns a new machine, so
    a snapshot is just keeping the old value — this is what the AITIA
    hypervisor's "revert the memory contents of the reproducer" becomes
    on this substrate.  A scheduler above (see {!Hypervisor.Controller})
    decides which thread steps next; the machine has no policy. *)

exception Model_error of string
(** A malformed bug model (unset register, unlock of a lock not held,
    list op on a non-list value) — a bug in the model, not a kernel
    failure. *)

type t

(** What one executed instruction did. *)
type event = {
  iid : Access.Iid.t;
  instr : Instr.t;
  src : Program.loc;
  access : Access.t option;       (** the shared-memory access, if any *)
  spawned : (int * string) list;  (** (tid, entry) of new kthreads *)
  lock_op : (string * [ `Acquire | `Release ]) option;
  context : Program.context;
  thread_name : string;
}

type step_error =
  | Blocked_on_lock of string
  | Thread_not_runnable
  | Machine_failed

val create : Program.group -> t
(** A fresh machine: top-level threads ready, globals initialized,
    heap empty. *)

(** {1 Inspection} *)

val failed : t -> Failure.t option
val clock : t -> int
val thread_ids : t -> int list
val has_thread : t -> int -> bool

val has_started : t -> int -> bool
(** Has [tid] executed at least one instruction? *)

val occurrences : t -> int -> string -> int
(** How many times thread [tid] has executed instruction [label]. *)

val thread_name : t -> int -> string

val thread_base : t -> int -> string
(** Stable identity across runs of the same group: the thread-spec name
    for top-level threads, the entry name for spawned kthreads. *)

val thread_context : t -> int -> Program.context
val thread_parent : t -> int -> int option

val next_labeled : t -> int -> Program.labeled option
val next_label : t -> int -> string option
val is_done : t -> int -> bool

val blocked_on : t -> int -> string option
(** The lock [tid] would block on if stepped now, if any.  Kernel
    spinlocks do not re-enter: holding the lock yourself blocks too. *)

val lock_holder : t -> string -> int option

val runnable : t -> int list
(** Threads that can step: not done, not lock-blocked, machine healthy. *)

val all_done : t -> bool
val reg : t -> int -> string -> Value.t option
val mem_read : t -> Addr.t -> Value.t
(** Unwritten memory reads as zero. *)

val live_objects : t -> int

(** {1 Stepping} *)

val step : t -> int -> (t * event, step_error) result
(** Execute one instruction of [tid].  On failure manifestation the new
    machine records the failure and the faulting event (including the
    attempted access, when its base pointer is known) is still
    returned. *)

val check_leaks : t -> t
(** Once every thread finished: flag still-live [leak_check] objects as
    a {!Failure.Memory_leak}. *)

val fingerprint : t -> string
(** Canonical hex digest of the complete machine state (threads,
    registers, memory, heap, locks, failure, clock).  Two structurally
    equal machines fingerprint identically regardless of the history
    that built their persistent maps.  Used by the snapshot cache's
    differential oracle to assert restore+suffix ≡ fresh execution. *)
