(** The kernel machine: a deterministic, sequentially consistent
    interpreter over a program group.

    Two engines implement one observable semantics.  The {e reference}
    engine ({!create}) is a persistent value: [step] returns a new
    machine, so a snapshot is just keeping the old value — this is what
    the AITIA hypervisor's "revert the memory contents of the
    reproducer" becomes on this substrate.  The {e compiled} engine
    ({!create_compiled}) lowers each program once into a flat array of
    integer opcodes with pre-resolved operands and executes in a mutable
    arena with an undo log, so the hot step is branch-light and nearly
    allocation-free while snapshots are O(delta) undo-log marks.  Both
    engines answer every query below identically — {!fingerprint}
    parity is enforced by the differential oracle in test/test_engine.ml.
    A scheduler above (see {!Hypervisor.Controller}) decides which
    thread steps next; the machine has no policy. *)

exception Model_error of string
(** A malformed bug model (unset register, unlock of a lock not held,
    list op on a non-list value) — a bug in the model, not a kernel
    failure. *)

type t

(** What one executed instruction did. *)
type event = {
  iid : Access.Iid.t;
  instr : Instr.t;
  src : Program.loc;
  access : Access.t option;       (** the shared-memory access, if any *)
  spawned : (int * string) list;  (** (tid, entry) of new kthreads *)
  lock_op : (string * [ `Acquire | `Release ]) option;
  context : Program.context;
  thread_name : string;
}

type step_error =
  | Blocked_on_lock of string
  | Thread_not_runnable
  | Machine_failed

val create : Program.group -> t
(** A fresh machine on the reference (persistent) engine: top-level
    threads ready, globals initialized, heap empty. *)

val create_compiled : Program.group -> t
(** A fresh machine on the compiled engine — observably identical to
    {!create}, but stepping mutates an arena behind an undo log.
    Programs are compiled once per group (a small process-wide cache
    keyed by the group's physical identity). *)

val compiled : t -> bool
(** Is this machine running on the compiled engine? *)

(** {1 Inspection} *)

val failed : t -> Failure.t option
val clock : t -> int
val thread_ids : t -> int list
val has_thread : t -> int -> bool

val has_started : t -> int -> bool
(** Has [tid] executed at least one instruction? *)

val occurrences : t -> int -> string -> int
(** How many times thread [tid] has executed instruction [label]. *)

val thread_name : t -> int -> string

val thread_base : t -> int -> string
(** Stable identity across runs of the same group: the thread-spec name
    for top-level threads, the entry name for spawned kthreads. *)

val thread_context : t -> int -> Program.context
val thread_parent : t -> int -> int option

val next_labeled : t -> int -> Program.labeled option
val next_label : t -> int -> string option
val is_done : t -> int -> bool

val blocked_on : t -> int -> string option
(** The lock [tid] would block on if stepped now, if any.  Kernel
    spinlocks do not re-enter: holding the lock yourself blocks too. *)

val lock_holder : t -> string -> int option

val runnable : t -> int list
(** Threads that can step: not done, not lock-blocked, machine healthy. *)

val all_done : t -> bool
val reg : t -> int -> string -> Value.t option
val mem_read : t -> Addr.t -> Value.t
(** Unwritten memory reads as zero. *)

val live_objects : t -> int

(** {1 Stepping} *)

val step : t -> int -> (t * event, step_error) result
(** Execute one instruction of [tid].  On failure manifestation the new
    machine records the failure and the faulting event (including the
    attempted access, when its base pointer is known) is still
    returned. *)

val check_leaks : t -> t
(** Once every thread finished: flag still-live [leak_check] objects as
    a {!Failure.Memory_leak}. *)

val fingerprint : t -> string
(** Canonical hex digest of the complete machine state (threads,
    registers, memory, heap, locks, failure, clock).  Two structurally
    equal machines fingerprint identically regardless of the history
    that built their persistent maps {e and regardless of engine}: the
    compiled engine materializes the persistent representation and
    digests through the same renderer.  Used by the snapshot cache's
    differential oracle to assert restore+suffix ≡ fresh execution, and
    by test/test_engine.ml for reference-vs-compiled lockstep parity. *)

(** {1 Snapshot support} *)

val freeze : t -> unit
(** Release the compiled engine's in-place fast path for this value, so
    the snapshot can later be restored concurrently from several
    domains (a frozen arena is only ever read).  No-op on the reference
    engine.  Call before publishing a machine into a shared cache. *)

val snapshot_cost : ?prev:t -> t -> int
(** Approximate bytes of keeping this machine alive in a snapshot
    vector.  For the compiled engine the cost of a snapshot that shares
    its predecessor's arena is the marginal undo-log delta; an
    unrelated snapshot is charged a full arena clone.  Reference-engine
    snapshots share structure persistently and are charged a small
    constant. *)

(** {1 Instrumentation tables}

    Per-PC classification precomputed by the compiled engine; exposed so
    the parity tests can assert the static tables against the reference
    engine's dynamic behaviour. *)

module Flags : sig
  val read : int
  val write : int
  val update : int
  val spawn : int
  val lock : int
  val control : int
  val check : int

  val accesses : int
  (** [read lor write lor update] — any bit implying the step may record
      a shared-memory access. *)
end

val instr_flags : Program.t -> int -> int
(** The {!Flags} bitset of the instruction at a pc. *)

val instr_globals : Program.t -> int -> string list
(** The global variables the instruction at a pc may address directly —
    the static watchpoint set.  Exact for globals: heap accesses never
    resolve to a global address. *)
