(* The kernel machine: a deterministic sequentially consistent interpreter
   over a program group.

   Two engines share one observable interface:

   - The *pure* engine below is the reference semantics: a persistent
     value, where [step] returns a new machine and a snapshot is just
     keeping the old value (this is what the AITIA hypervisor's "revert
     the memory contents of the reproducer" becomes in our substrate).

   - The *compiled* engine (module [Fast]) compiles each program once
     into a flat instruction array with integer opcodes and pre-resolved
     operands, executes in a mutable arena, and records an undo log so a
     snapshot is an O(1) mark into that log.  It must be observably
     bit-identical to the pure engine — the differential oracle in
     test/test_engine.ml holds it to that.

   A scheduler decides which thread steps next; the machine itself has no
   scheduling policy. *)

module Smap = Map.Make (String)
module Imap = Map.Make (Int)

exception Model_error of string

let model_error fmt = Fmt.kstr (fun s -> raise (Model_error s)) fmt

type status = Runnable | Done

type thread = {
  id : int;
  name : string;
  base : string;  (* stable identity across runs: spec or entry name *)
  context : Program.context;
  program : Program.t;
  pc : int;
  regs : Value.t Smap.t;
  occ : int Smap.t;  (* label -> times executed so far *)
  status : status;
  parent : int option;
}

type pure = {
  group : Program.group;
  threads : thread Imap.t;
  mem : Value.t Addr.Map.t;
  heap : Heap.t;
  locks : int Smap.t;  (* lock id -> holder tid *)
  failure : Failure.t option;
  next_tid : int;
  clock : int;
}

type event = {
  iid : Access.Iid.t;
  instr : Instr.t;
  src : Program.loc;
  access : Access.t option;
  spawned : (int * string) list;  (* (tid, entry name) of new threads *)
  lock_op : (string * [ `Acquire | `Release ]) option;
  context : Program.context;
  thread_name : string;
}

type step_error =
  | Blocked_on_lock of string
  | Thread_not_runnable
  | Machine_failed

(* Per-PC classification bits precomputed by the compiled engine; the
   race/breakpoint/watchpoint instrumentation tests assert these against
   the reference behaviour. *)
module Flags = struct
  let read = 1
  let write = 2
  let update = 4
  let spawn = 8
  let lock = 16
  let control = 32
  let check = 64

  (* Any bit implying the step may record a shared-memory access.  Free
     is included: a successful kfree records a whole-object write. *)
  let accesses = read lor write lor update
end

(* --- construction --------------------------------------------------- *)

let make_thread ~id ~name ~base ~context ~program ~parent ~arg =
  let regs =
    match arg with None -> Smap.empty | Some v -> Smap.add "arg" v Smap.empty
  in
  { id; name; base; context; program; pc = 0; regs; occ = Smap.empty;
    status = Runnable; parent }

let create (group : Program.group) =
  let threads, next_tid =
    List.fold_left
      (fun (acc, id) (spec : Program.thread_spec) ->
        let th =
          make_thread ~id ~name:spec.Program.spec_name
            ~base:spec.Program.spec_name ~context:spec.context
            ~program:spec.program ~parent:None ~arg:None
        in
        (Imap.add id th acc, id + 1))
      (Imap.empty, 0) group.Program.threads
  in
  let mem =
    List.fold_left
      (fun m (name, v) -> Addr.Map.add (Addr.Global name) v m)
      Addr.Map.empty group.Program.globals
  in
  { group; threads; mem; heap = Heap.empty; locks = Smap.empty;
    failure = None; next_tid; clock = 0 }

(* --- inspection ----------------------------------------------------- *)

let failed t = t.failure
let clock t = t.clock
let thread_ids t = Imap.fold (fun id _ acc -> id :: acc) t.threads [] |> List.rev
let find_thread t tid =
  match Imap.find_opt tid t.threads with
  | Some th -> th
  | None -> model_error "no thread %d" tid

let has_thread t tid = Imap.mem tid t.threads

(* Has [tid] executed at least one instruction? *)
let has_started t tid =
  let th = find_thread t tid in
  th.pc > 0 || th.status = Done || not (Smap.is_empty th.occ)

(* How many times has [tid] executed the instruction [label] so far? *)
let occurrences t tid label =
  Option.value ~default:0 (Smap.find_opt label (find_thread t tid).occ)

let thread_name t tid = (find_thread t tid).name

(* Stable identity of a thread across runs of the same group: the
   thread-spec name for top-level threads, the entry name for spawned
   background threads. *)
let thread_base t tid = (find_thread t tid).base
let thread_context t tid = (find_thread t tid).context
let thread_parent t tid = (find_thread t tid).parent

let next_labeled t tid =
  let th = find_thread t tid in
  match th.status with
  | Done -> None
  | Runnable ->
    if th.pc >= Program.length th.program then None
    else Some (Program.get th.program th.pc)

(* A thread is done when it returned or fell off the end of its program. *)
let is_done t tid = next_labeled t tid = None

let next_label t tid =
  Option.map (fun (l : Program.labeled) -> l.label) (next_labeled t tid)

(* The lock [tid] would block on if stepped now, if any. *)
let blocked_on t tid =
  match next_labeled t tid with
  | Some { instr = Instr.Lock l; _ } -> (
    match Smap.find_opt l t.locks with
    | Some holder when holder <> tid -> Some l
    | Some _ -> Some l  (* self-deadlock: kernel spinlocks don't re-enter *)
    | None -> None)
  | Some _ | None -> None

let lock_holder t lock = Smap.find_opt lock t.locks

let runnable t =
  match t.failure with
  | Some _ -> []
  | None ->
    List.filter
      (fun tid ->
        (not (is_done t tid))
        && next_labeled t tid <> None
        && blocked_on t tid = None)
      (thread_ids t)

let all_done t =
  List.for_all (fun tid -> next_labeled t tid = None) (thread_ids t)

let reg t tid r = Smap.find_opt r (find_thread t tid).regs

(* Shared immutable value blocks: booleans and the zero of unwritten
   memory are by far the most constructed values, so both engines reuse
   one physical block instead of allocating per evaluation. *)
let v_true = Value.Int 1
let v_false = Value.Int 0
let v_zero = v_false

let mem_read t addr =
  match Addr.Map.find_opt addr t.mem with
  | Some v -> v
  | None -> v_zero  (* zero-initialized memory *)

let live_objects t = Heap.live_count t.heap

(* --- expression evaluation ------------------------------------------ *)

let bool_val b = if b then v_true else v_false

let as_int label = function
  | Value.Int n -> n
  | v -> model_error "%s: expected int, got %s" label (Value.to_string v)

let rec eval regs (e : Instr.expr) : Value.t =
  let int2 op a b =
    Value.Int (op (as_int "arith" (eval regs a)) (as_int "arith" (eval regs b)))
  in
  let cmp op a b =
    bool_val (op (as_int "cmp" (eval regs a)) (as_int "cmp" (eval regs b)))
  in
  match e with
  | Const v -> v
  | Reg r -> (
    match Smap.find_opt r regs with
    | Some v -> v
    | None -> model_error "read of unset register %s" r)
  | Add (a, b) -> int2 ( + ) a b
  | Sub (a, b) -> int2 ( - ) a b
  | Mul (a, b) -> int2 ( * ) a b
  | Eq (a, b) -> bool_val (Value.equal (eval regs a) (eval regs b))
  | Ne (a, b) -> bool_val (not (Value.equal (eval regs a) (eval regs b)))
  | Lt (a, b) -> cmp ( < ) a b
  | Le (a, b) -> cmp ( <= ) a b
  | Gt (a, b) -> cmp ( > ) a b
  | Ge (a, b) -> cmp ( >= ) a b
  | And (a, b) ->
    bool_val (Value.truthy (eval regs a) && Value.truthy (eval regs b))
  | Or (a, b) ->
    bool_val (Value.truthy (eval regs a) || Value.truthy (eval regs b))
  | Not a -> bool_val (not (Value.truthy (eval regs a)))
  | Is_null a -> bool_val (Value.is_null (eval regs a))

(* Resolve an address expression.  KASAN-checks heap accesses; a bad base
   pointer resolves to a failure instead of an address. *)
let resolve t regs ~kind ~iid (a : Instr.addr_expr) :
    (Addr.t, Failure.t) result =
  match a with
  | Global g -> Ok (Addr.Global g)
  | Deref (e, field) -> (
    match eval regs e with
    | Value.Null | Value.Int 0 -> Error (Failure.Null_dereference { at = iid })
    | Value.Int _ | Value.List _ ->
      Error (Failure.General_protection_fault { at = iid })
    | Value.Ptr p -> (
      match Heap.check_access t.heap ~ptr:p ~index:None ~kind ~at:iid with
      | Some f -> Error f
      | None -> Ok (Addr.Field (p.obj, field))))
  | At (e, idx) -> (
    match eval regs e with
    | Value.Null | Value.Int 0 -> Error (Failure.Null_dereference { at = iid })
    | Value.Int _ | Value.List _ ->
      Error (Failure.General_protection_fault { at = iid })
    | Value.Ptr p ->
      let i = as_int "index" (eval regs idx) in
      (match Heap.check_access t.heap ~ptr:p ~index:(Some i) ~kind ~at:iid with
      | Some f -> Error f
      | None -> Ok (Addr.Index (p.obj, i))))

(* --- stepping -------------------------------------------------------- *)

let set_thread t th = { t with threads = Imap.add th.id th t.threads }

let advance th = { th with pc = th.pc + 1 }

let jump th target = { th with pc = Program.position_of_label th.program target }

let finish_thread th = { th with status = Done }

let spawn t ~entry ~context ~parent ~arg =
  let program = Program.find_entry t.group entry in
  let id = t.next_tid in
  let name = Fmt.str "%s.%d" entry id in
  let th =
    make_thread ~id ~name ~base:entry ~context ~program ~parent:(Some parent)
      ~arg
  in
  ({ t with threads = Imap.add id th t.threads; next_tid = id + 1 }, id)

let no_event iid instr src (th : thread) t =
  { iid; instr; src; access = None; spawned = []; lock_op = None;
    context = th.context; thread_name = th.name }
  |> fun e -> (t, e)

(* Execute one instruction of [tid].  On failure manifestation the machine
   records the failure and the faulting event is still returned (the
   access that crashed did happen — it is typically one end of the racing
   pair AITIA reasons about). *)
let step t tid : (pure * event, step_error) result =
  match t.failure with
  | Some _ -> Error Machine_failed
  | None -> (
    let th = find_thread t tid in
    match th.status with
    | Done -> Error Thread_not_runnable
    | Runnable ->
      if th.pc >= Program.length th.program then Error Thread_not_runnable
      else (
        let { Program.label; instr; src } = Program.get th.program th.pc in
        let occ = (Option.value ~default:0 (Smap.find_opt label th.occ)) + 1 in
        let iid = Access.Iid.make ~tid ~label ~occ in
        let th = { th with occ = Smap.add label occ th.occ } in
        let t = { t with clock = t.clock + 1 } in
        let held =
          Smap.fold
            (fun l holder acc -> if holder = tid then l :: acc else acc)
            t.locks []
        in
        let mk_access addr kind =
          Some { Access.iid; addr; kind; time = t.clock; held }
        in
        let fail t f = { t with failure = Some f } in
        let base_event =
          { iid; instr; src; access = None; spawned = []; lock_op = None;
            context = th.context; thread_name = th.name }
        in
        let store_result ~addr ~kind t' th' =
          (set_thread t' (advance th'), { base_event with access = mk_access addr kind })
        in
        (* The access a faulting instruction was attempting, when its base
           pointer is known: KASAN reports it, and it is usually one end
           of the racing pair AITIA reasons about. *)
        let attempted_access (a : Instr.addr_expr) kind =
          match a with
          | Instr.Deref (e, f') -> (
            match eval th.regs e with
            | Value.Ptr p -> mk_access (Addr.Field (p.obj, f')) kind
            | Value.Int _ | Value.Null | Value.List _ -> None)
          | Instr.At (e, idx) -> (
            match eval th.regs e with
            | Value.Ptr p -> (
              match eval th.regs idx with
              | Value.Int i -> mk_access (Addr.Index (p.obj, i)) kind
              | Value.Ptr _ | Value.Null | Value.List _ -> None)
            | Value.Int _ | Value.Null | Value.List _ -> None)
          | Instr.Global gname -> mk_access (Addr.Global gname) kind
        in
        match instr with
        | Instr.Nop -> Ok (no_event iid instr src th (set_thread t (advance th)))
        | Instr.Assign { dst; src = e } ->
          let v = eval th.regs e in
          let th = advance { th with regs = Smap.add dst v th.regs } in
          Ok (no_event iid instr src th (set_thread t th))
        | Instr.Branch_if { cond; target } ->
          let th =
            if Value.truthy (eval th.regs cond) then jump th target
            else advance th
          in
          Ok (no_event iid instr src th (set_thread t th))
        | Instr.Goto target ->
          let th = jump th target in
          Ok (no_event iid instr src th (set_thread t th))
        | Instr.Return ->
          let th = finish_thread th in
          Ok (no_event iid instr src th (set_thread t th))
        | Instr.Load { dst; src = a } -> (
          match resolve t th.regs ~kind:Instr.Read ~iid a with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access a Instr.Read })
          | Ok addr ->
            let v = mem_read t addr in
            let th = { th with regs = Smap.add dst v th.regs } in
            Ok (store_result ~addr ~kind:Instr.Read t th))
        | Instr.Store { dst = a; src = e } -> (
          match resolve t th.regs ~kind:Instr.Write ~iid a with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access a Instr.Write })
          | Ok addr ->
            let v = eval th.regs e in
            let t = { t with mem = Addr.Map.add addr v t.mem } in
            Ok (store_result ~addr ~kind:Instr.Write t th))
        | Instr.Rmw { ret; loc; delta } -> (
          match resolve t th.regs ~kind:Instr.Update ~iid loc with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access loc Instr.Update })
          | Ok addr ->
            let old = as_int "rmw" (mem_read t addr) in
            let d = as_int "rmw delta" (eval th.regs delta) in
            let t = { t with mem = Addr.Map.add addr (Value.Int (old + d)) t.mem } in
            let th =
              match ret with
              | Some r -> { th with regs = Smap.add r (Value.Int old) th.regs }
              | None -> th
            in
            Ok (store_result ~addr ~kind:Instr.Update t th))
        | Instr.Alloc { dst; tag; fields; slots; leak_check } ->
          let heap, obj = Heap.alloc t.heap ~tag ~slots ~leak_check ~at:iid in
          let mem =
            List.fold_left
              (fun m (f, e) -> Addr.Map.add (Addr.Field (obj, f)) (eval th.regs e) m)
              t.mem fields
          in
          let v = Value.ptr ~obj ~gen:0 in
          let th = advance { th with regs = Smap.add dst v th.regs } in
          Ok (no_event iid instr src th (set_thread { t with heap; mem } th))
        | Instr.Free { ptr } -> (
          match eval th.regs ptr with
          | Value.Null | Value.Int 0 ->
            (* kfree(NULL) is a no-op in the kernel. *)
            Ok (no_event iid instr src th (set_thread t (advance th)))
          | Value.Int _ | Value.List _ ->
            Ok (fail t (Failure.Invalid_free { at = iid }), base_event)
          | Value.Ptr p -> (
            match Heap.free t.heap ~ptr:p ~at:iid with
            | Error f ->
              let access = mk_access (Addr.Whole p.obj) Instr.Write in
              Ok (fail t f, { base_event with access })
            | Ok heap ->
              let t = { t with heap } in
              Ok (store_result ~addr:(Addr.Whole p.obj) ~kind:Instr.Write t th)))
        | Instr.Lock l -> (
          match Smap.find_opt l t.locks with
          | Some _ -> Error (Blocked_on_lock l)
          | None ->
            let t = { t with locks = Smap.add l tid t.locks } in
            let th = advance th in
            Ok
              ( set_thread t th,
                { base_event with lock_op = Some (l, `Acquire) } ))
        | Instr.Unlock l -> (
          match Smap.find_opt l t.locks with
          | Some holder when holder = tid ->
            let t = { t with locks = Smap.remove l t.locks } in
            let th = advance th in
            Ok
              ( set_thread t th,
                { base_event with lock_op = Some (l, `Release) } )
          | Some _ | None ->
            model_error "thread %d unlocks %s it does not hold" tid l)
        | Instr.Queue_work { entry; arg } ->
          let arg = eval th.regs arg in
          let t, id =
            spawn t ~entry ~context:Program.Kworker ~parent:tid ~arg:(Some arg)
          in
          let th = advance th in
          Ok (set_thread t th, { base_event with spawned = [ (id, entry) ] })
        | Instr.Call_rcu { entry; arg } ->
          let arg = eval th.regs arg in
          let t, id =
            spawn t ~entry ~context:Program.Rcu_softirq ~parent:tid
              ~arg:(Some arg)
          in
          let th = advance th in
          Ok (set_thread t th, { base_event with spawned = [ (id, entry) ] })
        | Instr.Arm_timer { entry; arg } ->
          let arg = eval th.regs arg in
          let t, id =
            spawn t ~entry ~context:Program.Timer_softirq ~parent:tid
              ~arg:(Some arg)
          in
          let th = advance th in
          Ok (set_thread t th, { base_event with spawned = [ (id, entry) ] })
        | Instr.Enable_irq { entry; arg } ->
          let arg = eval th.regs arg in
          let t, id =
            spawn t ~entry ~context:Program.Hardirq ~parent:tid
              ~arg:(Some arg)
          in
          let th = advance th in
          Ok (set_thread t th, { base_event with spawned = [ (id, entry) ] })
        | Instr.Bug_on e ->
          if Value.truthy (eval th.regs e) then
            Ok (fail t (Failure.Assertion_violation { at = iid }), base_event)
          else Ok (no_event iid instr src th (set_thread t (advance th)))
        | Instr.Warn_on e ->
          if Value.truthy (eval th.regs e) then
            Ok (fail t (Failure.Warning { at = iid }), base_event)
          else Ok (no_event iid instr src th (set_thread t (advance th)))
        | Instr.List_add { list; item } -> (
          match resolve t th.regs ~kind:Instr.Write ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr -> (
            match eval th.regs item with
            | Value.Ptr p -> (
              let cur =
                match mem_read t addr with
                | Value.List ps -> ps
                | Value.Int 0 | Value.Null -> []
                | v ->
                  model_error "list_add on non-list value %s" (Value.to_string v)
              in
              if List.exists (fun q -> Value.ptr_equal p q) cur then
                let f =
                  Failure.List_corruption
                    { at = iid; reason = "double list_add of the same entry" }
                in
                Ok (fail t f, { base_event with access = mk_access addr Instr.Write })
              else
                let t =
                  { t with mem = Addr.Map.add addr (Value.List (p :: cur)) t.mem }
                in
                Ok (store_result ~addr ~kind:Instr.Write t th))
            | v -> model_error "list_add of non-pointer %s" (Value.to_string v)))
        | Instr.List_del { list; item } -> (
          match resolve t th.regs ~kind:Instr.Write ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr -> (
            match eval th.regs item with
            | Value.Ptr p -> (
              let cur =
                match mem_read t addr with
                | Value.List ps -> ps
                | Value.Int 0 | Value.Null -> []
                | v ->
                  model_error "list_del on non-list value %s" (Value.to_string v)
              in
              if not (List.exists (fun q -> Value.ptr_equal p q) cur) then
                let f =
                  Failure.List_corruption
                    { at = iid; reason = "list_del of entry not on the list" }
                in
                Ok (fail t f, { base_event with access = mk_access addr Instr.Write })
              else
                let cur' =
                  List.filter (fun q -> not (Value.ptr_equal p q)) cur
                in
                let t =
                  { t with mem = Addr.Map.add addr (Value.List cur') t.mem }
                in
                Ok (store_result ~addr ~kind:Instr.Write t th))
            | v -> model_error "list_del of non-pointer %s" (Value.to_string v)))
        | Instr.List_contains { dst; list; item } -> (
          match resolve t th.regs ~kind:Instr.Read ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr ->
            let cur =
              match mem_read t addr with
              | Value.List ps -> ps
              | _ -> []
            in
            let present =
              match eval th.regs item with
              | Value.Ptr p -> List.exists (fun q -> Value.ptr_equal p q) cur
              | _ -> false
            in
            let th = { th with regs = Smap.add dst (bool_val present) th.regs } in
            Ok (store_result ~addr ~kind:Instr.Read t th))
        | Instr.List_empty { dst; list } -> (
          match resolve t th.regs ~kind:Instr.Read ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr ->
            let empty =
              match mem_read t addr with
              | Value.List (_ :: _) -> false
              | Value.List [] | _ -> true
            in
            let th = { th with regs = Smap.add dst (bool_val empty) th.regs } in
            Ok (store_result ~addr ~kind:Instr.Read t th))
        | Instr.List_first { dst; list } -> (
          match resolve t th.regs ~kind:Instr.Read ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr ->
            let v =
              match mem_read t addr with
              | Value.List (p :: _) -> Value.Ptr p
              | Value.List [] | _ -> Value.Null
            in
            let th = { th with regs = Smap.add dst v th.regs } in
            Ok (store_result ~addr ~kind:Instr.Read t th))
        | Instr.Ref_get { loc } -> (
          match resolve t th.regs ~kind:Instr.Update ~iid loc with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access loc Instr.Update })
          | Ok addr ->
            let old = as_int "refcount" (mem_read t addr) in
            if old <= 0 then
              (* refcount_inc on zero: object already dying. *)
              Ok (fail t (Failure.Warning { at = iid }),
                  { base_event with access = mk_access addr Instr.Update })
            else
              let t =
                { t with mem = Addr.Map.add addr (Value.Int (old + 1)) t.mem }
              in
              Ok (store_result ~addr ~kind:Instr.Update t th))
        | Instr.Ref_put { ret; loc } -> (
          match resolve t th.regs ~kind:Instr.Update ~iid loc with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access loc Instr.Update })
          | Ok addr ->
            let old = as_int "refcount" (mem_read t addr) in
            if old <= 0 then
              (* refcount underflow: WARNING, as the kernel's refcount_t. *)
              Ok (fail t (Failure.Warning { at = iid }),
                  { base_event with access = mk_access addr Instr.Update })
            else
              let t =
                { t with mem = Addr.Map.add addr (Value.Int (old - 1)) t.mem }
              in
              let th =
                match ret with
                | Some r ->
                  { th with regs = Smap.add r (Value.Int (old - 1)) th.regs }
                | None -> th
              in
              Ok (store_result ~addr ~kind:Instr.Update t th))))

(* End-of-run leak detection: once every thread has finished, objects
   flagged [leak_check] that were never freed constitute a memory leak. *)
let check_leaks t =
  match t.failure with
  | Some _ -> t
  | None ->
    if not (all_done t) then t
    else (
      match Heap.leaked t.heap with
      | [] -> t
      | objs -> { t with failure = Some (Failure.Memory_leak { objs }) })

(* --- fingerprinting -------------------------------------------------- *)

(* Canonical digest of the complete machine state.  Every component is
   rendered through an order-canonical traversal (maps fold in key
   order), so two machines that are structurally equal produce the same
   digest regardless of how their persistent maps were built.  Used by
   the snapshot cache's differential tests to assert that restoring a
   prefix and executing the suffix reaches a state identical to a fresh
   run. *)
let fingerprint t =
  let b = Buffer.create 1024 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  add "clock=%d;next_tid=%d;" t.clock t.next_tid;
  (match t.failure with
  | None -> add "ok;"
  | Some f -> add "failure=%s;" (Failure.to_string f));
  Smap.iter (fun l holder -> add "lock:%s=%d;" l holder) t.locks;
  Imap.iter
    (fun id th ->
      add "thread:%d name=%s base=%s ctx=%a pc=%d status=%s parent=%s;" id
        th.name th.base Program.pp_context th.context th.pc
        (match th.status with Runnable -> "runnable" | Done -> "done")
        (match th.parent with None -> "-" | Some p -> string_of_int p);
      Smap.iter (fun r v -> add "reg:%s=%s;" r (Value.to_string v)) th.regs;
      Smap.iter (fun l n -> add "occ:%s=%d;" l n) th.occ)
    t.threads;
  Addr.Map.iter
    (fun addr v -> add "mem:%s=%s;" (Addr.to_string addr) (Value.to_string v))
    t.mem;
  Heap.fold
    (fun id (o : Heap.obj) () ->
      add "obj:%d tag=%s gen=%d state=%s slots=%d leak=%b at=%s;" id o.tag
        o.gen
        (match o.state with
        | Heap.Live -> "live"
        | Heap.Freed at -> "freed@" ^ Access.Iid.to_string at)
        o.slots o.leak_check
        (Access.Iid.to_string o.alloc_at))
    t.heap ();
  add "heap_next=%d" (Heap.next_id t.heap);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ===================================================================== *)
(* The compiled engine.

   [compile_program] lowers a [Program.t] once into a flat array of
   integer-indexed instructions: register names become dense slots,
   branch targets become pcs (labels are validated unique and resolvable
   by [Program.make]), global address expressions become preallocated
   [Addr.t] values, and every pc carries a classification bitset
   ([Flags]) so the step loop can skip the lock-held computation for
   instructions that can never record an access.

   Execution mutates an *arena* — flat arrays and a hashtable instead of
   persistent maps — while appending inverse operations to an undo log.
   A machine value over this engine is a [handle]: the arena plus a mark
   into the undo log.  Exactly one handle (the arena's [ar_current]) is
   positioned at the arena's tip and may step in place; stepping or
   inspecting any other handle first clones the arena and rewinds the
   clone's undo suffix back to the handle's mark, reproducing that
   state.  [freeze] drops the tip handle so a published snapshot can be
   restored concurrently from several domains — a frozen arena is only
   ever read. *)

module Fast = struct
  type cexpr =
    | C_const of Value.t
    | C_reg of int * string  (* slot, name (kept for error parity) *)
    | C_add of cexpr * cexpr
    | C_sub of cexpr * cexpr
    | C_mul of cexpr * cexpr
    | C_eq of cexpr * cexpr
    | C_ne of cexpr * cexpr
    | C_lt of cexpr * cexpr
    | C_le of cexpr * cexpr
    | C_gt of cexpr * cexpr
    | C_ge of cexpr * cexpr
    | C_and of cexpr * cexpr
    | C_or of cexpr * cexpr
    | C_not of cexpr
    | C_is_null of cexpr

  type caddr =
    | Ca_global of int * Addr.t
        (* slot into the arena's flat global array + the preallocated
           address the access event carries *)
    | Ca_deref of cexpr * int * string
        (* base, interned field slot, field name (for access events) *)
    | Ca_at of cexpr * cexpr

  type cop =
    | O_nop
    | O_assign of int * cexpr
    | O_branch_if of cexpr * int  (* target pre-resolved to a pc *)
    | O_goto of int
    | O_return
    | O_load of int * caddr
    | O_store of caddr * cexpr
    | O_rmw of int option * caddr * cexpr
    | O_alloc of {
        al_dst : int;
        al_tag : string;
        al_fields : (int * cexpr) list;  (* interned field slot, value *)
        al_slots : int;
        al_leak : bool;
      }
    | O_free of cexpr
    | O_lock of string
    | O_unlock of string
    | O_spawn of { sp_entry : string; sp_arg : cexpr; sp_ctx : Program.context }
    | O_bug_on of cexpr
    | O_warn_on of cexpr
    | O_list_add of caddr * cexpr
    | O_list_del of caddr * cexpr
    | O_list_contains of int * caddr * cexpr
    | O_list_empty of int * caddr
    | O_list_first of int * caddr
    | O_ref_get of caddr
    | O_ref_put of int option * caddr

  type cinstr = {
    ci_label : string;
    ci_instr : Instr.t;  (* original, shared into events *)
    ci_src : Program.loc;
    ci_op : cop;
    ci_flags : int;
    ci_globals : string list;  (* globals statically addressed here *)
  }

  type cprog = {
    c_source : Program.t;
    c_code : cinstr array;
    c_nslots : int;
    c_slots : (string, int) Hashtbl.t;  (* register name -> slot *)
    c_regs : string array;              (* slot -> register name *)
  }

  (* --- classification bitsets --------------------------------------- *)

  let flags_of (i : Instr.t) =
    let acc =
      match Instr.access_kind i with
      | Some Instr.Read -> Flags.read
      | Some Instr.Write -> Flags.write
      | Some Instr.Update -> Flags.update
      | None -> (
        (* A successful kfree records a whole-object write access. *)
        match i with Instr.Free _ -> Flags.write | _ -> 0)
    in
    let extra =
      match i with
      | Instr.Queue_work _ | Instr.Call_rcu _ | Instr.Arm_timer _
      | Instr.Enable_irq _ -> Flags.spawn
      | Instr.Lock _ | Instr.Unlock _ -> Flags.lock
      | Instr.Branch_if _ | Instr.Goto _ | Instr.Return -> Flags.control
      | Instr.Bug_on _ | Instr.Warn_on _ -> Flags.check
      | _ -> 0
    in
    acc lor extra

  let addr_globals = function
    | Instr.Global g -> [ g ]
    | Instr.Deref _ | Instr.At _ -> []

  (* The global variables an instruction may address directly — the
     static watchpoint set.  Heap accesses (Deref/At) never resolve to a
     global, so for globals this set is exact, never a false negative. *)
  let globals_of (i : Instr.t) =
    match i with
    | Instr.Load { src = a; _ } | Instr.Store { dst = a; _ }
    | Instr.Rmw { loc = a; _ } | Instr.Ref_get { loc = a }
    | Instr.Ref_put { loc = a; _ } | Instr.List_add { list = a; _ }
    | Instr.List_del { list = a; _ } | Instr.List_contains { list = a; _ }
    | Instr.List_empty { list = a; _ } | Instr.List_first { list = a; _ } ->
      addr_globals a
    | _ -> []

  (* --- compilation --------------------------------------------------- *)

  let compile_program ~(gslot : string -> int) ~(fslot : string -> int)
      (p : Program.t) : cprog =
    let slots : (string, int) Hashtbl.t = Hashtbl.create 8 in
    (* Slot 0 is always "arg", the register spawned threads receive. *)
    Hashtbl.add slots "arg" 0;
    let names = ref [ "arg" ] in
    let nslots = ref 1 in
    let slot_of r =
      match Hashtbl.find_opt slots r with
      | Some s -> s
      | None ->
        let s = !nslots in
        Hashtbl.add slots r s;
        names := r :: !names;
        incr nslots;
        s
    in
    let rec cexpr (e : Instr.expr) : cexpr =
      match e with
      | Instr.Const v -> C_const v
      | Instr.Reg r -> C_reg (slot_of r, r)
      | Instr.Add (a, b) -> C_add (cexpr a, cexpr b)
      | Instr.Sub (a, b) -> C_sub (cexpr a, cexpr b)
      | Instr.Mul (a, b) -> C_mul (cexpr a, cexpr b)
      | Instr.Eq (a, b) -> C_eq (cexpr a, cexpr b)
      | Instr.Ne (a, b) -> C_ne (cexpr a, cexpr b)
      | Instr.Lt (a, b) -> C_lt (cexpr a, cexpr b)
      | Instr.Le (a, b) -> C_le (cexpr a, cexpr b)
      | Instr.Gt (a, b) -> C_gt (cexpr a, cexpr b)
      | Instr.Ge (a, b) -> C_ge (cexpr a, cexpr b)
      | Instr.And (a, b) -> C_and (cexpr a, cexpr b)
      | Instr.Or (a, b) -> C_or (cexpr a, cexpr b)
      | Instr.Not a -> C_not (cexpr a)
      | Instr.Is_null a -> C_is_null (cexpr a)
    in
    let caddr (a : Instr.addr_expr) : caddr =
      match a with
      | Instr.Global g -> Ca_global (gslot g, Addr.Global g)
      | Instr.Deref (e, f) -> Ca_deref (cexpr e, fslot f, f)
      | Instr.At (e, i) -> Ca_at (cexpr e, cexpr i)
    in
    let cop (i : Instr.t) : cop =
      match i with
      | Instr.Nop -> O_nop
      | Instr.Assign { dst; src } -> O_assign (slot_of dst, cexpr src)
      | Instr.Branch_if { cond; target } ->
        O_branch_if (cexpr cond, Program.position_of_label p target)
      | Instr.Goto target -> O_goto (Program.position_of_label p target)
      | Instr.Return -> O_return
      | Instr.Load { dst; src } -> O_load (slot_of dst, caddr src)
      | Instr.Store { dst; src } -> O_store (caddr dst, cexpr src)
      | Instr.Rmw { ret; loc; delta } ->
        O_rmw (Option.map slot_of ret, caddr loc, cexpr delta)
      | Instr.Alloc { dst; tag; fields; slots = al_slots; leak_check } ->
        O_alloc
          { al_dst = slot_of dst; al_tag = tag;
            al_fields = List.map (fun (f, e) -> (fslot f, cexpr e)) fields;
            al_slots; al_leak = leak_check }
      | Instr.Free { ptr } -> O_free (cexpr ptr)
      | Instr.Lock l -> O_lock l
      | Instr.Unlock l -> O_unlock l
      | Instr.Queue_work { entry; arg } ->
        O_spawn { sp_entry = entry; sp_arg = cexpr arg; sp_ctx = Program.Kworker }
      | Instr.Call_rcu { entry; arg } ->
        O_spawn
          { sp_entry = entry; sp_arg = cexpr arg; sp_ctx = Program.Rcu_softirq }
      | Instr.Arm_timer { entry; arg } ->
        O_spawn
          { sp_entry = entry; sp_arg = cexpr arg;
            sp_ctx = Program.Timer_softirq }
      | Instr.Enable_irq { entry; arg } ->
        O_spawn { sp_entry = entry; sp_arg = cexpr arg; sp_ctx = Program.Hardirq }
      | Instr.Bug_on e -> O_bug_on (cexpr e)
      | Instr.Warn_on e -> O_warn_on (cexpr e)
      | Instr.List_add { list; item } -> O_list_add (caddr list, cexpr item)
      | Instr.List_del { list; item } -> O_list_del (caddr list, cexpr item)
      | Instr.List_contains { dst; list; item } ->
        O_list_contains (slot_of dst, caddr list, cexpr item)
      | Instr.List_empty { dst; list } -> O_list_empty (slot_of dst, caddr list)
      | Instr.List_first { dst; list } -> O_list_first (slot_of dst, caddr list)
      | Instr.Ref_get { loc } -> O_ref_get (caddr loc)
      | Instr.Ref_put { ret; loc } -> O_ref_put (Option.map slot_of ret, caddr loc)
    in
    let code =
      Array.init (Program.length p) (fun i ->
          let l = Program.get p i in
          { ci_label = l.Program.label; ci_instr = l.Program.instr;
            ci_src = l.Program.src; ci_op = cop l.Program.instr;
            ci_flags = flags_of l.Program.instr;
            ci_globals = globals_of l.Program.instr })
    in
    { c_source = p; c_code = code; c_nslots = !nslots; c_slots = slots;
      c_regs = Array.of_list (List.rev !names) }

  type cgroup = {
    cg_source : Program.group;
    cg_top : cprog array;               (* one per top-level thread spec *)
    cg_progs : (Program.t * cprog) list;  (* keyed by physical identity *)
    cg_gtbl : (string, int) Hashtbl.t;  (* global name -> arena slot *)
    cg_gnames : string array;           (* arena slot -> global name *)
    cg_ftbl : (string, int) Hashtbl.t;  (* field name -> object slot *)
    cg_fnames : string array;           (* object slot -> field name *)
  }

  (* Global variables are resolved to dense arena slots at compile time:
     the group's initializer list claims slots first, then every global
     any program of the group addresses.  The step loop then reads and
     writes a flat array — no hashing on the hot path. *)
  let compile_group (g : Program.group) : cgroup =
    let gtbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let gnames = ref [] in
    let gn = ref 0 in
    let gslot name =
      match Hashtbl.find_opt gtbl name with
      | Some s -> s
      | None ->
        let s = !gn in
        Hashtbl.add gtbl name s;
        gnames := name :: !gnames;
        incr gn;
        s
    in
    List.iter (fun (name, _) -> ignore (gslot name)) g.Program.globals;
    (* Field names get the same dense-slot treatment: every field any
       program of the group dereferences or initializes at alloc time
       becomes an index into each object's flat value array. *)
    let ftbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let fnames = ref [] in
    let fn = ref 0 in
    let fslot name =
      match Hashtbl.find_opt ftbl name with
      | Some s -> s
      | None ->
        let s = !fn in
        Hashtbl.add ftbl name s;
        fnames := name :: !fnames;
        incr fn;
        s
    in
    let progs = ref [] in
    let compiled p =
      match List.assq_opt p !progs with
      | Some cp -> cp
      | None ->
        let cp = compile_program ~gslot ~fslot p in
        progs := (p, cp) :: !progs;
        cp
    in
    let cg_top =
      Array.of_list
        (List.map
           (fun (s : Program.thread_spec) -> compiled s.Program.program)
           g.Program.threads)
    in
    List.iter (fun (_, p) -> ignore (compiled p)) g.Program.entries;
    { cg_source = g; cg_top; cg_progs = !progs; cg_gtbl = gtbl;
      cg_gnames = Array.of_list (List.rev !gnames); cg_ftbl = ftbl;
      cg_fnames = Array.of_list (List.rev !fnames) }

  (* LIFS boots thousands of machines per group; compiling on every boot
     would eat the speedup.  A small bounded cache keyed by the group's
     physical identity (groups are immutable literals) makes compilation
     once-per-group.  Atomic CAS keeps it safe under OCaml 5 domains. *)
  let group_cache : (Program.group * cgroup) list Atomic.t = Atomic.make []
  let max_cached_groups = 32

  let cgroup_of (g : Program.group) : cgroup =
    match List.assq_opt g (Atomic.get group_cache) with
    | Some cg -> cg
    | None ->
      let cg = compile_group g in
      let rec publish () =
        let cur = Atomic.get group_cache in
        match List.assq_opt g cur with
        | Some cg' -> cg'
        | None ->
          let cur' =
            if List.length cur >= max_cached_groups then
              List.filteri (fun i _ -> i < max_cached_groups - 1) cur
            else cur
          in
          if Atomic.compare_and_set group_cache cur ((g, cg) :: cur') then cg
          else publish ()
      in
      publish ()

  (* --- the arena ------------------------------------------------------ *)

  type athread = {
    a_id : int;
    a_name : string;
    a_base : string;
    a_context : Program.context;
    a_prog : cprog;
    mutable a_pc : int;
    mutable a_done : bool;
    a_regs : Value.t option array;  (* slot -> value *)
    a_occ : int array;              (* pc -> times executed *)
    a_parent : int option;
  }

  type undo =
    | U_step of int * int
        (* tid, old pc — one entry for a whole retired step: undoes the
           pc advance, the occurrence bump at the old pc and the clock
           tick, which every successful step performs together *)
    | U_step_done of int
        (* tid retired a Return: un-done it, occ/clock as U_step *)
    | U_reg of int * int * Value.t option  (* tid, slot, old value *)
    | U_global of int * Value.t option     (* global slot, old value *)
    | U_fmem of int * int * Value.t   (* obj, field slot, old value *)
    | U_imem of int * int * Value.t   (* obj, index, old value *)
    | U_locks of (string * int) list       (* old lock list *)
    | U_heap_set of int * Heap.obj         (* old object record *)
    | U_heap_alloc                         (* pop the newest object *)
    | U_spawn                              (* pop the newest thread *)
    | U_failure of Failure.t option
    | U_clock of int

  (* Distinguished "absent binding" marker for the per-object value
     arrays; compared physically.  [Sys.opaque_identity] guarantees a
     unique block that no program-constant [List []] value can alias. *)
  let v_unbound : Value.t = Value.List (Sys.opaque_identity [])

  type arena = {
    ar_cg : cgroup;
    mutable ar_threads : athread array;  (* slots [0, ar_nthreads) live *)
    mutable ar_nthreads : int;
    ar_globals : Value.t option array;   (* global slot -> binding *)
    mutable ar_objs : Heap.obj array;    (* slots [0, ar_nobjs) live *)
    mutable ar_fvals : Value.t array array;
        (* obj -> field slot -> value; [v_unbound] marks absent bindings
           so heap reads and writes never hash — parallel to [ar_objs] *)
    mutable ar_ivals : Value.t array array;
        (* obj -> array index -> value, sized by the object's slot
           count at allocation; indices are bounds-checked by
           [fcheck_access] before any load or store *)
    mutable ar_nobjs : int;
    mutable ar_locks : (string * int) list;  (* sorted ascending by name *)
    mutable ar_failure : Failure.t option;
    mutable ar_clock : int;
    mutable ar_undo : undo array array;
        (* chunked log: spine of 128-entry chunks.  Chunks stay under
           the minor-heap allocation limit and never move once filled,
           so a long run costs no major-heap array churn and no
           doubling blits; the spine itself is 1/128th the size. *)
    mutable ar_undo_n : int;  (* total entries across all chunks *)
    mutable ar_current : handle option;  (* the handle at the tip, if any *)
  }

  and handle = {
    h_arena : arena;
    h_mark : int;  (* undo-log length at this state *)
    (* Cached tip facts so shared (frozen) handles answer the hot
       inspection queries without touching the arena state. *)
    h_nthreads : int;
    h_failure : Failure.t option;
    h_clock : int;
  }

  let is_current h =
    match h.h_arena.ar_current with Some h' -> h' == h | None -> false

  (* --- undo log ------------------------------------------------------- *)

  let undo_chunk_bits = 7
  let undo_chunk_size = 1 lsl undo_chunk_bits
  let undo_chunk_mask = undo_chunk_size - 1

  let push_undo ar u =
    let n = ar.ar_undo_n in
    let ci = n lsr undo_chunk_bits in
    let spine = ar.ar_undo in
    let spine =
      if ci < Array.length spine then spine
      else begin
        let spine' = Array.make (max 8 (2 * Array.length spine)) [||] in
        Array.blit spine 0 spine' 0 (Array.length spine);
        ar.ar_undo <- spine';
        spine'
      end
    in
    let chunk = spine.(ci) in
    let chunk =
      if Array.length chunk > 0 then chunk
      else begin
        let c = Array.make undo_chunk_size u in
        spine.(ci) <- c;
        c
      end
    in
    chunk.(n land undo_chunk_mask) <- u;
    ar.ar_undo_n <- n + 1

  let undo_get ar i = ar.ar_undo.(i lsr undo_chunk_bits).(i land undo_chunk_mask)

  let set_reg ar th slot v =
    push_undo ar (U_reg (th.a_id, slot, th.a_regs.(slot)));
    th.a_regs.(slot) <- Some v

  let write_global ar slot v =
    push_undo ar (U_global (slot, ar.ar_globals.(slot)));
    ar.ar_globals.(slot) <- Some v

  let read_global ar slot =
    match ar.ar_globals.(slot) with Some v -> v | None -> v_zero

  (* Heap storage: flat per-object arrays, no hashing.  Object ids and
     field slots are validated by [fcheck_access] / compilation before
     these run; array indices by [fcheck_access] against the object's
     slot count. *)
  let write_field ar obj fslot v =
    let fv = ar.ar_fvals.(obj) in
    push_undo ar (U_fmem (obj, fslot, fv.(fslot)));
    fv.(fslot) <- v

  let read_field ar obj fslot =
    let v = ar.ar_fvals.(obj).(fslot) in
    if v == v_unbound then v_zero else v

  let write_idx ar obj i v =
    let iv = ar.ar_ivals.(obj) in
    push_undo ar (U_imem (obj, i, iv.(i)));
    iv.(i) <- v

  let read_idx ar obj i =
    let v = ar.ar_ivals.(obj).(i) in
    if v == v_unbound then v_zero else v

  let set_locks ar locks =
    push_undo ar (U_locks ar.ar_locks);
    ar.ar_locks <- locks

  let set_failure ar f =
    push_undo ar (U_failure ar.ar_failure);
    ar.ar_failure <- Some f

  let bump_clock ar =
    push_undo ar (U_clock ar.ar_clock);
    ar.ar_clock <- ar.ar_clock + 1

  let set_obj ar id o =
    push_undo ar (U_heap_set (id, ar.ar_objs.(id)));
    ar.ar_objs.(id) <- o

  let find_obj ar id =
    if id >= 0 && id < ar.ar_nobjs then Some ar.ar_objs.(id) else None

  let push_obj ar (o : Heap.obj) =
    let n = ar.ar_nobjs in
    if n >= Array.length ar.ar_objs then begin
      let cap = max 8 (2 * Array.length ar.ar_objs) in
      let a = Array.make cap o in
      Array.blit ar.ar_objs 0 a 0 n;
      ar.ar_objs <- a;
      let fa = Array.make cap [||] in
      Array.blit ar.ar_fvals 0 fa 0 n;
      ar.ar_fvals <- fa;
      let ia = Array.make cap [||] in
      Array.blit ar.ar_ivals 0 ia 0 n;
      ar.ar_ivals <- ia
    end;
    ar.ar_objs.(n) <- o;
    (* Fresh value arrays: a popped-and-reallocated slot must not see
       stale bindings from the previous incarnation. *)
    ar.ar_fvals.(n) <- Array.make (Array.length ar.ar_cg.cg_fnames) v_unbound;
    ar.ar_ivals.(n) <- Array.make o.Heap.slots v_unbound;
    ar.ar_nobjs <- n + 1

  let push_thread ar th =
    let n = ar.ar_nthreads in
    if n >= Array.length ar.ar_threads then begin
      let cap = max 4 (2 * Array.length ar.ar_threads) in
      let a = Array.make cap th in
      Array.blit ar.ar_threads 0 a 0 n;
      ar.ar_threads <- a
    end;
    ar.ar_threads.(n) <- th;
    ar.ar_nthreads <- n + 1

  let apply_undo ar = function
    | U_step (tid, old_pc) ->
      let th = ar.ar_threads.(tid) in
      th.a_occ.(old_pc) <- th.a_occ.(old_pc) - 1;
      th.a_pc <- old_pc;
      ar.ar_clock <- ar.ar_clock - 1
    | U_step_done tid ->
      let th = ar.ar_threads.(tid) in
      th.a_done <- false;
      th.a_occ.(th.a_pc) <- th.a_occ.(th.a_pc) - 1;
      ar.ar_clock <- ar.ar_clock - 1
    | U_reg (tid, slot, old) -> ar.ar_threads.(tid).a_regs.(slot) <- old
    | U_global (slot, old) -> ar.ar_globals.(slot) <- old
    | U_fmem (obj, fslot, v) -> ar.ar_fvals.(obj).(fslot) <- v
    | U_imem (obj, i, v) -> ar.ar_ivals.(obj).(i) <- v
    | U_locks old -> ar.ar_locks <- old
    | U_heap_set (id, old) -> ar.ar_objs.(id) <- old
    | U_heap_alloc -> ar.ar_nobjs <- ar.ar_nobjs - 1
    | U_spawn -> ar.ar_nthreads <- ar.ar_nthreads - 1
    | U_failure old -> ar.ar_failure <- old
    | U_clock old -> ar.ar_clock <- old

  let clone_thread a =
    { a with a_regs = Array.copy a.a_regs; a_occ = Array.copy a.a_occ }

  (* Materialize the state a non-tip handle denotes: copy the arena at
     its tip, then play the source's undo suffix backwards down to the
     handle's mark.  O(state + suffix).  The clone starts a fresh undo
     log: entries below the mark can never be replayed against it (every
     handle of the new arena has a mark at or above its creation point),
     so the prefix is not copied.  The source arena is only read, so
     this is safe against a frozen arena from any domain. *)
  let clone_at (h : handle) : arena =
    let src = h.h_arena in
    let ar =
      { ar_cg = src.ar_cg;
        ar_threads =
          Array.init src.ar_nthreads (fun i -> clone_thread src.ar_threads.(i));
        ar_nthreads = src.ar_nthreads;
        ar_globals = Array.copy src.ar_globals;
        ar_objs = Array.sub src.ar_objs 0 src.ar_nobjs;
        ar_fvals =
          Array.init src.ar_nobjs (fun i -> Array.copy src.ar_fvals.(i));
        ar_ivals =
          Array.init src.ar_nobjs (fun i -> Array.copy src.ar_ivals.(i));
        ar_nobjs = src.ar_nobjs;
        ar_locks = src.ar_locks;
        ar_failure = src.ar_failure;
        ar_clock = src.ar_clock;
        ar_undo = [||];
        ar_undo_n = 0;
        ar_current = None }
    in
    for i = src.ar_undo_n - 1 downto h.h_mark do
      apply_undo ar (undo_get src i)
    done;
    ar

  (* Read-only view of [h]'s state: the live arena when [h] is the tip,
     a throwaway rewound clone otherwise. *)
  let reading h f = if is_current h then f h.h_arena else f (clone_at h)

  let retip ar =
    let h =
      { h_arena = ar; h_mark = ar.ar_undo_n; h_nthreads = ar.ar_nthreads;
        h_failure = ar.ar_failure; h_clock = ar.ar_clock }
    in
    ar.ar_current <- Some h;
    h

  let freeze h = h.h_arena.ar_current <- None

  (* Marginal byte cost of keeping [h] alive in a snapshot vector, given
     the previously accounted snapshot [prev] of the same chain. *)
  let snapshot_cost ~prev h =
    match prev with
    | Some p when p.h_arena == h.h_arena && h.h_mark >= p.h_mark ->
      48 + (24 * (h.h_mark - p.h_mark))
    | Some _ | None -> 4096

  (* --- construction --------------------------------------------------- *)

  let new_thread (cp : cprog) ~id ~name ~base ~context ~parent ~arg =
    let regs = Array.make cp.c_nslots None in
    (match arg with Some v -> regs.(0) <- Some v | None -> ());
    { a_id = id; a_name = name; a_base = base; a_context = context;
      a_prog = cp; a_pc = 0; a_done = false; a_regs = regs;
      a_occ = Array.make (Array.length cp.c_code) 0; a_parent = parent }

  let create (group : Program.group) : handle =
    let cg = cgroup_of group in
    let specs = Array.of_list group.Program.threads in
    let n = Array.length specs in
    let threads =
      Array.init n (fun i ->
          let spec = specs.(i) in
          new_thread cg.cg_top.(i) ~id:i ~name:spec.Program.spec_name
            ~base:spec.Program.spec_name ~context:spec.Program.context
            ~parent:None ~arg:None)
    in
    let globals = Array.make (Array.length cg.cg_gnames) None in
    List.iter
      (fun (name, v) -> globals.(Hashtbl.find cg.cg_gtbl name) <- Some v)
      group.Program.globals;
    retip
      { ar_cg = cg; ar_threads = threads; ar_nthreads = n;
        ar_globals = globals; ar_objs = [||]; ar_fvals = [||];
        ar_ivals = [||]; ar_nobjs = 0; ar_locks = []; ar_failure = None;
        ar_clock = 0; ar_undo = [||]; ar_undo_n = 0; ar_current = None }

  (* --- expression evaluation ------------------------------------------ *)

  (* Mirrors [eval] above shape-for-shape so evaluation order — and hence
     which Model_error surfaces first — is identical. *)
  let rec feval (regs : Value.t option array) (e : cexpr) : Value.t =
    match e with
    | C_const v -> v
    | C_reg (slot, name) -> (
      match regs.(slot) with
      | Some v -> v
      | None -> model_error "read of unset register %s" name)
    | C_add (a, b) -> arith ( + ) regs a b
    | C_sub (a, b) -> arith ( - ) regs a b
    | C_mul (a, b) -> arith ( * ) regs a b
    | C_eq (a, b) -> bool_val (Value.equal (feval regs a) (feval regs b))
    | C_ne (a, b) -> bool_val (not (Value.equal (feval regs a) (feval regs b)))
    | C_lt (a, b) -> fcmp ( < ) regs a b
    | C_le (a, b) -> fcmp ( <= ) regs a b
    | C_gt (a, b) -> fcmp ( > ) regs a b
    | C_ge (a, b) -> fcmp ( >= ) regs a b
    | C_and (a, b) ->
      bool_val (Value.truthy (feval regs a) && Value.truthy (feval regs b))
    | C_or (a, b) ->
      bool_val (Value.truthy (feval regs a) || Value.truthy (feval regs b))
    | C_not a -> bool_val (not (Value.truthy (feval regs a)))
    | C_is_null a -> bool_val (Value.is_null (feval regs a))

  and arith op regs a b =
    Value.Int (op (as_int "arith" (feval regs a)) (as_int "arith" (feval regs b)))

  and fcmp op regs a b =
    bool_val (op (as_int "cmp" (feval regs a)) (as_int "cmp" (feval regs b)))

  let fcheck_access ar ~(ptr : Value.ptr) ~index ~kind ~at =
    match find_obj ar ptr.obj with
    | None -> Some (Failure.General_protection_fault { at })
    | Some o -> (
      match o.Heap.state with
      | Heap.Freed freed_at ->
        Some
          (Failure.Use_after_free
             { at; obj = ptr.obj; tag = o.Heap.tag; kind;
               freed_at = Some freed_at })
      | Heap.Live -> (
        match index with
        | Some i when i < 0 || i >= o.Heap.slots ->
          Some
            (Failure.Out_of_bounds
               { at; obj = ptr.obj; tag = o.Heap.tag; index = i;
                 size = o.Heap.slots })
        | Some _ | None -> None))

  let fresolve ar regs ~kind ~iid (a : caddr) : (Addr.t, Failure.t) result =
    match a with
    | Ca_global (_, addr) -> Ok addr
    | Ca_deref (e, _, field) -> (
      match feval regs e with
      | Value.Null | Value.Int 0 -> Error (Failure.Null_dereference { at = iid })
      | Value.Int _ | Value.List _ ->
        Error (Failure.General_protection_fault { at = iid })
      | Value.Ptr p -> (
        match fcheck_access ar ~ptr:p ~index:None ~kind ~at:iid with
        | Some f -> Error f
        | None -> Ok (Addr.Field (p.obj, field))))
    | Ca_at (e, idx) -> (
      match feval regs e with
      | Value.Null | Value.Int 0 -> Error (Failure.Null_dereference { at = iid })
      | Value.Int _ | Value.List _ ->
        Error (Failure.General_protection_fault { at = iid })
      | Value.Ptr p ->
        let i = as_int "index" (feval regs idx) in
        (match fcheck_access ar ~ptr:p ~index:(Some i) ~kind ~at:iid with
        | Some f -> Error f
        | None -> Ok (Addr.Index (p.obj, i))))

  let rec lock_insert l tid = function
    | [] -> [ (l, tid) ]
    | (l', _) :: _ as rest when l < l' -> (l, tid) :: rest
    | b :: rest -> b :: lock_insert l tid rest

  (* --- stepping ------------------------------------------------------- *)

  (* Per-step helpers are top-level and fully applied at every call
     site, so the hot loop allocates no closures: the only per-step
     allocations are the returned event, the new tip handle and the
     undo entries of the mutations actually performed. *)

  (* Locks held by [tid]: the prepend order over the ascending lock list
     matches the pure engine's Smap fold-prepend (descending names). *)
  let rec held_locks locks tid acc =
    match locks with
    | [] -> acc
    | (l, holder) :: rest ->
      held_locks rest tid (if holder = tid then l :: acc else acc)

  let some_access iid addr kind time held =
    Some { Access.iid; addr; kind; time; held }

  (* The access a failing resolve was attempting, when its base pointer
     is known.  Expressions are pure and already evaluated once by the
     failed resolve, so re-evaluating cannot raise a fresh error. *)
  let attempted_access regs iid time held (a : caddr) kind =
    match a with
    | Ca_deref (e, _, f') -> (
      match feval regs e with
      | Value.Ptr p -> some_access iid (Addr.Field (p.obj, f')) kind time held
      | Value.Int _ | Value.Null | Value.List _ -> None)
    | Ca_at (e, idx) -> (
      match feval regs e with
      | Value.Ptr p -> (
        match feval regs idx with
        | Value.Int i -> some_access iid (Addr.Index (p.obj, i)) kind time held
        | Value.Ptr _ | Value.Null | Value.List _ -> None)
      | Value.Int _ | Value.Null | Value.List _ -> None)
    | Ca_global (_, addr) -> some_access iid addr kind time held

  (* Read/write a location [fresolve] vouched for: global slots hit the
     flat global array, heap locations the per-object value arrays.
     The resolved [addr] pins the object id and checked index. *)
  let read_loc ar (a : caddr) (addr : Addr.t) =
    match (a, addr) with
    | Ca_global (slot, _), _ -> read_global ar slot
    | Ca_deref (_, fslot, _), Addr.Field (obj, _) -> read_field ar obj fslot
    | Ca_at _, Addr.Index (obj, i) -> read_idx ar obj i
    | (Ca_deref _ | Ca_at _), _ -> assert false (* fresolve shape *)

  let write_loc ar (a : caddr) (addr : Addr.t) v =
    match (a, addr) with
    | Ca_global (slot, _), _ -> write_global ar slot v
    | Ca_deref (_, fslot, _), Addr.Field (obj, _) -> write_field ar obj fslot v
    | Ca_at _, Addr.Index (obj, i) -> write_idx ar obj i v
    | (Ca_deref _ | Ca_at _), _ -> assert false (* fresolve shape *)

  let rec ptr_mem p = function
    | [] -> false
    | q :: rest -> Value.ptr_equal p q || ptr_mem p rest

  (* A completed step: clock and occurrence advance and the thread moves
     on — one [U_step] entry undoes all three. *)
  let finish_ok ar (th : athread) old_pc new_pc iid (ci : cinstr) access
      spawned lock_op =
    push_undo ar (U_step (th.a_id, old_pc));
    ar.ar_clock <- ar.ar_clock + 1;
    th.a_occ.(old_pc) <- th.a_occ.(old_pc) + 1;
    th.a_pc <- new_pc;
    Ok
      (retip ar,
       { iid; instr = ci.ci_instr; src = ci.ci_src; access; spawned; lock_op;
         context = th.a_context; thread_name = th.a_name })

  (* A retired Return: as [finish_ok] but the thread parks as done. *)
  let finish_done ar (th : athread) pc iid (ci : cinstr) =
    push_undo ar (U_step_done th.a_id);
    ar.ar_clock <- ar.ar_clock + 1;
    th.a_occ.(pc) <- th.a_occ.(pc) + 1;
    th.a_done <- true;
    Ok
      (retip ar,
       { iid; instr = ci.ci_instr; src = ci.ci_src; access = None;
         spawned = []; lock_op = None; context = th.a_context;
         thread_name = th.a_name })

  (* A manifested failure: the clock advances and the failure is
     recorded, but the faulting instruction does not retire — no
     occurrence bump, no pc advance — mirroring the pure engine, which
     discards its locally advanced thread on this path. *)
  let finish_fail ar (th : athread) f iid (ci : cinstr) access =
    bump_clock ar;
    set_failure ar f;
    Ok
      (retip ar,
       { iid; instr = ci.ci_instr; src = ci.ci_src; access; spawned = [];
         lock_op = None; context = th.a_context; thread_name = th.a_name })

  let step (h : handle) (tid : int) : (handle * event, step_error) result =
    match h.h_failure with
    | Some _ -> Error Machine_failed
    | None ->
      if tid < 0 || tid >= h.h_nthreads then model_error "no thread %d" tid;
      let ar = if is_current h then h.h_arena else clone_at h in
      let th = ar.ar_threads.(tid) in
      if th.a_done || th.a_pc >= Array.length th.a_prog.c_code then
        Error Thread_not_runnable
      else begin
        let pc = th.a_pc in
        let ci = th.a_prog.c_code.(pc) in
        let iid =
          Access.Iid.make ~tid ~label:ci.ci_label ~occ:(th.a_occ.(pc) + 1)
        in
        let regs = th.a_regs in
        (* The flags bitset skips the lock walk for instructions that
           can never record an access. *)
        let held =
          if ci.ci_flags land Flags.accesses = 0 then []
          else held_locks ar.ar_locks tid []
        in
        let time = ar.ar_clock + 1 in
        (* Every case evaluates all expressions (the only source of
           Model_error) before its first arena mutation, so a raise
           leaves the arena — and [h] — untouched, like the pure
           engine discarding its local copies. *)
        match ci.ci_op with
        | O_nop -> finish_ok ar th pc (pc + 1) iid ci None [] None
        | O_assign (dst, e) ->
          let v = feval regs e in
          set_reg ar th dst v;
          finish_ok ar th pc (pc + 1) iid ci None [] None
        | O_branch_if (cond, target) ->
          let new_pc =
            if Value.truthy (feval regs cond) then target else pc + 1
          in
          finish_ok ar th pc new_pc iid ci None [] None
        | O_goto target -> finish_ok ar th pc target iid ci None [] None
        | O_return -> finish_done ar th pc iid ci
        | O_load (dst, a) -> (
          match fresolve ar regs ~kind:Instr.Read ~iid a with
          | Error f ->
            finish_fail ar th f iid ci
              (attempted_access regs iid time held a Instr.Read)
          | Ok addr ->
            set_reg ar th dst (read_loc ar a addr);
            finish_ok ar th pc (pc + 1) iid ci
              (some_access iid addr Instr.Read time held)
              [] None)
        | O_store (a, e) -> (
          match fresolve ar regs ~kind:Instr.Write ~iid a with
          | Error f ->
            finish_fail ar th f iid ci
              (attempted_access regs iid time held a Instr.Write)
          | Ok addr ->
            let v = feval regs e in
            write_loc ar a addr v;
            finish_ok ar th pc (pc + 1) iid ci
              (some_access iid addr Instr.Write time held)
              [] None)
        | O_rmw (ret, a, delta) -> (
          match fresolve ar regs ~kind:Instr.Update ~iid a with
          | Error f ->
            finish_fail ar th f iid ci
              (attempted_access regs iid time held a Instr.Update)
          | Ok addr ->
            let old = as_int "rmw" (read_loc ar a addr) in
            let d = as_int "rmw delta" (feval regs delta) in
            write_loc ar a addr (Value.Int (old + d));
            (match ret with
            | Some r -> set_reg ar th r (Value.Int old)
            | None -> ());
            finish_ok ar th pc (pc + 1) iid ci
              (some_access iid addr Instr.Update time held)
              [] None)
        | O_alloc { al_dst; al_tag; al_fields; al_slots; al_leak } ->
          let vals = List.map (fun (f, e) -> (f, feval regs e)) al_fields in
          let obj = ar.ar_nobjs in
          push_undo ar U_heap_alloc;
          push_obj ar
            { Heap.tag = al_tag; gen = 0; state = Heap.Live; slots = al_slots;
              leak_check = al_leak; alloc_at = iid };
          List.iter (fun (fslot, v) -> write_field ar obj fslot v) vals;
          set_reg ar th al_dst (Value.ptr ~obj ~gen:0);
          finish_ok ar th pc (pc + 1) iid ci None [] None
        | O_free e -> (
          match feval regs e with
          | Value.Null | Value.Int 0 ->
            finish_ok ar th pc (pc + 1) iid ci None [] None
          | Value.Int _ | Value.List _ ->
            finish_fail ar th (Failure.Invalid_free { at = iid }) iid ci None
          | Value.Ptr p -> (
            let access = some_access iid (Addr.Whole p.obj) Instr.Write time held in
            match find_obj ar p.obj with
            | None ->
              finish_fail ar th (Failure.Invalid_free { at = iid }) iid ci
                access
            | Some o -> (
              match o.Heap.state with
              | Heap.Freed _ ->
                finish_fail ar th
                  (Failure.Double_free
                     { at = iid; obj = p.obj; tag = o.Heap.tag })
                  iid ci access
              | Heap.Live ->
                set_obj ar p.obj { o with Heap.state = Heap.Freed iid };
                finish_ok ar th pc (pc + 1) iid ci access [] None)))
        | O_lock l ->
          if List.mem_assoc l ar.ar_locks then Error (Blocked_on_lock l)
          else begin
            set_locks ar (lock_insert l tid ar.ar_locks);
            finish_ok ar th pc (pc + 1) iid ci None [] (Some (l, `Acquire))
          end
        | O_unlock l -> (
          match List.assoc_opt l ar.ar_locks with
          | Some holder when holder = tid ->
            set_locks ar (List.remove_assoc l ar.ar_locks);
            finish_ok ar th pc (pc + 1) iid ci None [] (Some (l, `Release))
          | Some _ | None ->
            model_error "thread %d unlocks %s it does not hold" tid l)
        | O_spawn { sp_entry; sp_arg; sp_ctx } ->
          let argv = feval regs sp_arg in
          let prog = Program.find_entry ar.ar_cg.cg_source sp_entry in
          let cp = List.assq prog ar.ar_cg.cg_progs in
          let id = ar.ar_nthreads in
          let nth =
            new_thread cp ~id ~name:(Fmt.str "%s.%d" sp_entry id)
              ~base:sp_entry ~context:sp_ctx ~parent:(Some tid)
              ~arg:(Some argv)
          in
          push_undo ar U_spawn;
          push_thread ar nth;
          finish_ok ar th pc (pc + 1) iid ci None [ (id, sp_entry) ] None
        | O_bug_on e ->
          if Value.truthy (feval regs e) then
            finish_fail ar th (Failure.Assertion_violation { at = iid }) iid
              ci None
          else finish_ok ar th pc (pc + 1) iid ci None [] None
        | O_warn_on e ->
          if Value.truthy (feval regs e) then
            finish_fail ar th (Failure.Warning { at = iid }) iid ci None
          else finish_ok ar th pc (pc + 1) iid ci None [] None
        | O_list_add (a, item) -> (
          match fresolve ar regs ~kind:Instr.Write ~iid a with
          | Error f -> finish_fail ar th f iid ci None
          | Ok addr -> (
            match feval regs item with
            | Value.Ptr p ->
              let cur =
                match read_loc ar a addr with
                | Value.List ps -> ps
                | Value.Int 0 | Value.Null -> []
                | v ->
                  model_error "list_add on non-list value %s"
                    (Value.to_string v)
              in
              if ptr_mem p cur then
                finish_fail ar th
                  (Failure.List_corruption
                     { at = iid; reason = "double list_add of the same entry" })
                  iid ci
                  (some_access iid addr Instr.Write time held)
              else begin
                write_loc ar a addr (Value.List (p :: cur));
                finish_ok ar th pc (pc + 1) iid ci
                  (some_access iid addr Instr.Write time held)
                  [] None
              end
            | v ->
              model_error "list_add of non-pointer %s" (Value.to_string v)))
        | O_list_del (a, item) -> (
          match fresolve ar regs ~kind:Instr.Write ~iid a with
          | Error f -> finish_fail ar th f iid ci None
          | Ok addr -> (
            match feval regs item with
            | Value.Ptr p ->
              let cur =
                match read_loc ar a addr with
                | Value.List ps -> ps
                | Value.Int 0 | Value.Null -> []
                | v ->
                  model_error "list_del on non-list value %s"
                    (Value.to_string v)
              in
              if not (ptr_mem p cur) then
                finish_fail ar th
                  (Failure.List_corruption
                     { at = iid; reason = "list_del of entry not on the list" })
                  iid ci
                  (some_access iid addr Instr.Write time held)
              else begin
                let cur' =
                  List.filter (fun q -> not (Value.ptr_equal p q)) cur
                in
                write_loc ar a addr (Value.List cur');
                finish_ok ar th pc (pc + 1) iid ci
                  (some_access iid addr Instr.Write time held)
                  [] None
              end
            | v ->
              model_error "list_del of non-pointer %s" (Value.to_string v)))
        | O_list_contains (dst, a, item) -> (
          match fresolve ar regs ~kind:Instr.Read ~iid a with
          | Error f -> finish_fail ar th f iid ci None
          | Ok addr ->
            let cur =
              match read_loc ar a addr with Value.List ps -> ps | _ -> []
            in
            let present =
              match feval regs item with
              | Value.Ptr p -> ptr_mem p cur
              | _ -> false
            in
            set_reg ar th dst (bool_val present);
            finish_ok ar th pc (pc + 1) iid ci
              (some_access iid addr Instr.Read time held)
              [] None)
        | O_list_empty (dst, a) -> (
          match fresolve ar regs ~kind:Instr.Read ~iid a with
          | Error f -> finish_fail ar th f iid ci None
          | Ok addr ->
            let empty =
              match read_loc ar a addr with
              | Value.List (_ :: _) -> false
              | Value.List [] | _ -> true
            in
            set_reg ar th dst (bool_val empty);
            finish_ok ar th pc (pc + 1) iid ci
              (some_access iid addr Instr.Read time held)
              [] None)
        | O_list_first (dst, a) -> (
          match fresolve ar regs ~kind:Instr.Read ~iid a with
          | Error f -> finish_fail ar th f iid ci None
          | Ok addr ->
            let v =
              match read_loc ar a addr with
              | Value.List (p :: _) -> Value.Ptr p
              | Value.List [] | _ -> Value.Null
            in
            set_reg ar th dst v;
            finish_ok ar th pc (pc + 1) iid ci
              (some_access iid addr Instr.Read time held)
              [] None)
        | O_ref_get a -> (
          match fresolve ar regs ~kind:Instr.Update ~iid a with
          | Error f ->
            finish_fail ar th f iid ci
              (attempted_access regs iid time held a Instr.Update)
          | Ok addr ->
            let old = as_int "refcount" (read_loc ar a addr) in
            if old <= 0 then
              finish_fail ar th (Failure.Warning { at = iid }) iid ci
                (some_access iid addr Instr.Update time held)
            else begin
              write_loc ar a addr (Value.Int (old + 1));
              finish_ok ar th pc (pc + 1) iid ci
                (some_access iid addr Instr.Update time held)
                [] None
            end)
        | O_ref_put (ret, a) -> (
          match fresolve ar regs ~kind:Instr.Update ~iid a with
          | Error f ->
            finish_fail ar th f iid ci
              (attempted_access regs iid time held a Instr.Update)
          | Ok addr ->
            let old = as_int "refcount" (read_loc ar a addr) in
            if old <= 0 then
              finish_fail ar th (Failure.Warning { at = iid }) iid ci
                (some_access iid addr Instr.Update time held)
            else begin
              write_loc ar a addr (Value.Int (old - 1));
              (match ret with
              | Some r -> set_reg ar th r (Value.Int (old - 1))
              | None -> ());
              finish_ok ar th pc (pc + 1) iid ci
                (some_access iid addr Instr.Update time held)
                [] None
            end)
      end

  (* --- inspection ----------------------------------------------------- *)

  let check_tid h tid =
    if tid < 0 || tid >= h.h_nthreads then model_error "no thread %d" tid

  (* Name, base, context, parent are immutable per thread record and
     thread slots below a handle's count are never overwritten in its
     arena, so these never need a clone. *)
  let thread_rec h tid =
    check_tid h tid;
    h.h_arena.ar_threads.(tid)

  let thread_name h tid = (thread_rec h tid).a_name
  let thread_base h tid = (thread_rec h tid).a_base
  let thread_context h tid = (thread_rec h tid).a_context
  let thread_parent h tid = (thread_rec h tid).a_parent
  let thread_ids h = List.init h.h_nthreads (fun i -> i)
  let has_thread h tid = tid >= 0 && tid < h.h_nthreads

  let running (th : athread) =
    (not th.a_done) && th.a_pc < Array.length th.a_prog.c_code

  let next_labeled h tid =
    check_tid h tid;
    reading h (fun ar ->
        let th = ar.ar_threads.(tid) in
        if running th then Some (Program.get th.a_prog.c_source th.a_pc)
        else None)

  let is_done h tid =
    check_tid h tid;
    reading h (fun ar -> not (running ar.ar_threads.(tid)))

  let blocked_on h tid =
    check_tid h tid;
    reading h (fun ar ->
        let th = ar.ar_threads.(tid) in
        if not (running th) then None
        else
          match th.a_prog.c_code.(th.a_pc).ci_op with
          | O_lock l -> if List.mem_assoc l ar.ar_locks then Some l else None
          | _ -> None)

  let lock_holder h l = reading h (fun ar -> List.assoc_opt l ar.ar_locks)

  let runnable h =
    match h.h_failure with
    | Some _ -> []
    | None ->
      reading h (fun ar ->
          let acc = ref [] in
          for tid = ar.ar_nthreads - 1 downto 0 do
            let th = ar.ar_threads.(tid) in
            if running th then (
              match th.a_prog.c_code.(th.a_pc).ci_op with
              | O_lock l when List.mem_assoc l ar.ar_locks -> ()
              | _ -> acc := tid :: !acc)
          done;
          !acc)

  let all_done h =
    reading h (fun ar ->
        let ok = ref true in
        for tid = 0 to ar.ar_nthreads - 1 do
          if running ar.ar_threads.(tid) then ok := false
        done;
        !ok)

  let has_started h tid =
    check_tid h tid;
    reading h (fun ar ->
        let th = ar.ar_threads.(tid) in
        th.a_pc > 0 || th.a_done || Array.exists (fun n -> n > 0) th.a_occ)

  let occurrences h tid label =
    check_tid h tid;
    reading h (fun ar ->
        let th = ar.ar_threads.(tid) in
        match Program.position_of_label th.a_prog.c_source label with
        | exception Program.Unknown_label _ -> 0
        | pc -> th.a_occ.(pc))

  let reg h tid r =
    check_tid h tid;
    reading h (fun ar ->
        let th = ar.ar_threads.(tid) in
        match Hashtbl.find_opt th.a_prog.c_slots r with
        | None -> None
        | Some slot -> th.a_regs.(slot))

  let mem_read h addr =
    reading h (fun ar ->
        match addr with
        | Addr.Global g -> (
          match Hashtbl.find_opt ar.ar_cg.cg_gtbl g with
          | Some slot -> read_global ar slot
          | None -> v_zero)
        | Addr.Field (obj, f) -> (
          match Hashtbl.find_opt ar.ar_cg.cg_ftbl f with
          | Some fslot when obj >= 0 && obj < ar.ar_nobjs ->
            read_field ar obj fslot
          | Some _ | None -> v_zero)
        | Addr.Index (obj, i) ->
          if
            obj >= 0 && obj < ar.ar_nobjs && i >= 0
            && i < Array.length ar.ar_ivals.(obj)
          then read_idx ar obj i
          else v_zero
        | Addr.Whole _ -> v_zero)

  let live_objects h =
    reading h (fun ar ->
        let n = ref 0 in
        for i = 0 to ar.ar_nobjs - 1 do
          match ar.ar_objs.(i).Heap.state with
          | Heap.Live -> incr n
          | Heap.Freed _ -> ()
        done;
        !n)

  (* --- leaks ---------------------------------------------------------- *)

  let check_leaks h =
    match h.h_failure with
    | Some _ -> h
    | None ->
      let decide ar =
        let finished = ref true in
        for tid = 0 to ar.ar_nthreads - 1 do
          if running ar.ar_threads.(tid) then finished := false
        done;
        if not !finished then None
        else begin
          let objs = ref [] in
          for i = ar.ar_nobjs - 1 downto 0 do
            let o = ar.ar_objs.(i) in
            match o.Heap.state with
            | Heap.Live when o.Heap.leak_check ->
              objs := (i, o.Heap.tag) :: !objs
            | Heap.Live | Heap.Freed _ -> ()
          done;
          match !objs with [] -> None | objs -> Some objs
        end
      in
      if is_current h then (
        match decide h.h_arena with
        | None -> h
        | Some objs ->
          let ar = h.h_arena in
          set_failure ar (Failure.Memory_leak { objs });
          retip ar)
      else
        let ar = clone_at h in
        (match decide ar with
        | None -> h
        | Some objs ->
          set_failure ar (Failure.Memory_leak { objs });
          retip ar)

  (* --- bridge to the pure engine -------------------------------------- *)

  (* Materialize the persistent representation of [h]'s state, for
     fingerprinting: the digest is computed by the one canonical pure
     renderer, so fingerprint parity is structural state parity. *)
  let to_pure (h : handle) : pure =
    let build ar =
      let threads = ref Imap.empty in
      for tid = ar.ar_nthreads - 1 downto 0 do
        let a = ar.ar_threads.(tid) in
        let regs = ref Smap.empty in
        Array.iteri
          (fun slot v ->
            match v with
            | Some v -> regs := Smap.add a.a_prog.c_regs.(slot) v !regs
            | None -> ())
          a.a_regs;
        let occ = ref Smap.empty in
        Array.iteri
          (fun pc n ->
            if n > 0 then occ := Smap.add a.a_prog.c_code.(pc).ci_label n !occ)
          a.a_occ;
        threads :=
          Imap.add tid
            { id = tid; name = a.a_name; base = a.a_base;
              context = a.a_context; program = a.a_prog.c_source; pc = a.a_pc;
              regs = !regs; occ = !occ;
              status = (if a.a_done then Done else Runnable);
              parent = a.a_parent }
            !threads
      done;
      let mem = ref Addr.Map.empty in
      Array.iteri
        (fun slot v ->
          match v with
          | Some v ->
            mem := Addr.Map.add (Addr.Global ar.ar_cg.cg_gnames.(slot)) v !mem
          | None -> ())
        ar.ar_globals;
      let fnames = ar.ar_cg.cg_fnames in
      for obj = 0 to ar.ar_nobjs - 1 do
        let fv = ar.ar_fvals.(obj) in
        for fslot = 0 to Array.length fv - 1 do
          if fv.(fslot) != v_unbound then
            mem := Addr.Map.add (Addr.Field (obj, fnames.(fslot))) fv.(fslot) !mem
        done;
        let iv = ar.ar_ivals.(obj) in
        for i = 0 to Array.length iv - 1 do
          if iv.(i) != v_unbound then
            mem := Addr.Map.add (Addr.Index (obj, i)) iv.(i) !mem
        done
      done;
      let mem = !mem in
      let objs = ref [] in
      for i = ar.ar_nobjs - 1 downto 0 do
        objs := (i, ar.ar_objs.(i)) :: !objs
      done;
      let heap = Heap.of_objs !objs ~next:ar.ar_nobjs in
      let locks =
        List.fold_left
          (fun m (l, holder) -> Smap.add l holder m)
          Smap.empty ar.ar_locks
      in
      { group = ar.ar_cg.cg_source; threads = !threads; mem; heap; locks;
        failure = ar.ar_failure; next_tid = ar.ar_nthreads;
        clock = ar.ar_clock }
    in
    reading h build

  (* --- compile-table introspection (for the parity tests) ------------- *)

  let pc_flags p pc =
    (compile_program ~gslot:(fun _ -> 0) ~fslot:(fun _ -> 0) p)
      .c_code.(pc)
      .ci_flags

  let pc_globals p pc =
    (compile_program ~gslot:(fun _ -> 0) ~fslot:(fun _ -> 0) p)
      .c_code.(pc)
      .ci_globals
end

(* ===================================================================== *)
(* Facade: a machine is either engine.  Each wrapper below shadows the
   pure implementation above; inside a wrapper's body the unqualified
   name still denotes the pure version ([let] is non-recursive). *)

type t = Pure of pure | Fast of Fast.handle

let create group = Pure (create group)
let create_compiled group = Fast (Fast.create group)
let compiled = function Pure _ -> false | Fast _ -> true

let failed = function Pure p -> failed p | Fast h -> h.Fast.h_failure
let clock = function Pure p -> clock p | Fast h -> h.Fast.h_clock
let thread_ids = function Pure p -> thread_ids p | Fast h -> Fast.thread_ids h

let has_thread m tid =
  match m with Pure p -> has_thread p tid | Fast h -> Fast.has_thread h tid

let has_started m tid =
  match m with Pure p -> has_started p tid | Fast h -> Fast.has_started h tid

let occurrences m tid label =
  match m with
  | Pure p -> occurrences p tid label
  | Fast h -> Fast.occurrences h tid label

let thread_name m tid =
  match m with Pure p -> thread_name p tid | Fast h -> Fast.thread_name h tid

let thread_base m tid =
  match m with Pure p -> thread_base p tid | Fast h -> Fast.thread_base h tid

let thread_context m tid =
  match m with
  | Pure p -> thread_context p tid
  | Fast h -> Fast.thread_context h tid

let thread_parent m tid =
  match m with
  | Pure p -> thread_parent p tid
  | Fast h -> Fast.thread_parent h tid

let next_labeled m tid =
  match m with
  | Pure p -> next_labeled p tid
  | Fast h -> Fast.next_labeled h tid

let is_done m tid =
  match m with Pure p -> is_done p tid | Fast h -> Fast.is_done h tid

let next_label m tid =
  match m with
  | Pure p -> next_label p tid
  | Fast h ->
    Option.map (fun (l : Program.labeled) -> l.label) (Fast.next_labeled h tid)

let blocked_on m tid =
  match m with Pure p -> blocked_on p tid | Fast h -> Fast.blocked_on h tid

let lock_holder m l =
  match m with Pure p -> lock_holder p l | Fast h -> Fast.lock_holder h l

let runnable = function Pure p -> runnable p | Fast h -> Fast.runnable h
let all_done = function Pure p -> all_done p | Fast h -> Fast.all_done h

let reg m tid r =
  match m with Pure p -> reg p tid r | Fast h -> Fast.reg h tid r

let mem_read m addr =
  match m with Pure p -> mem_read p addr | Fast h -> Fast.mem_read h addr

let live_objects = function
  | Pure p -> live_objects p
  | Fast h -> Fast.live_objects h

let step m tid =
  match m with
  | Pure p -> (
    match step p tid with
    | Ok (p', ev) -> Ok (Pure p', ev)
    | Error _ as e -> e)
  | Fast h -> (
    match Fast.step h tid with
    | Ok (h', ev) -> Ok (Fast h', ev)
    | Error _ as e -> e)

let check_leaks = function
  | Pure p -> Pure (check_leaks p)
  | Fast h -> Fast (Fast.check_leaks h)

let fingerprint = function
  | Pure p -> fingerprint p
  | Fast h -> fingerprint (Fast.to_pure h)

(* --- compiled-engine management -------------------------------------- *)

let freeze = function Pure _ -> () | Fast h -> Fast.freeze h

let snapshot_cost ?prev m =
  match m with
  | Pure _ -> 256
  | Fast h ->
    let prev = match prev with Some (Fast p) -> Some p | Some (Pure _) | None -> None in
    Fast.snapshot_cost ~prev h

let instr_flags = Fast.pc_flags
let instr_globals = Fast.pc_globals
