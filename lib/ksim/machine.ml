(* The kernel machine: a deterministic sequentially consistent interpreter
   over a program group.

   The machine is a persistent value: [step] returns a new machine, so a
   snapshot is just keeping the old value (this is what the AITIA
   hypervisor's "revert the memory contents of the reproducer" becomes in
   our substrate).  A scheduler decides which thread steps next; the
   machine itself has no scheduling policy. *)

module Smap = Map.Make (String)
module Imap = Map.Make (Int)

exception Model_error of string

let model_error fmt = Fmt.kstr (fun s -> raise (Model_error s)) fmt

type status = Runnable | Done

type thread = {
  id : int;
  name : string;
  base : string;  (* stable identity across runs: spec or entry name *)
  context : Program.context;
  program : Program.t;
  pc : int;
  regs : Value.t Smap.t;
  occ : int Smap.t;  (* label -> times executed so far *)
  status : status;
  parent : int option;
}

type t = {
  group : Program.group;
  threads : thread Imap.t;
  mem : Value.t Addr.Map.t;
  heap : Heap.t;
  locks : int Smap.t;  (* lock id -> holder tid *)
  failure : Failure.t option;
  next_tid : int;
  clock : int;
}

type event = {
  iid : Access.Iid.t;
  instr : Instr.t;
  src : Program.loc;
  access : Access.t option;
  spawned : (int * string) list;  (* (tid, entry name) of new threads *)
  lock_op : (string * [ `Acquire | `Release ]) option;
  context : Program.context;
  thread_name : string;
}

type step_error =
  | Blocked_on_lock of string
  | Thread_not_runnable
  | Machine_failed

(* --- construction --------------------------------------------------- *)

let make_thread ~id ~name ~base ~context ~program ~parent ~arg =
  let regs =
    match arg with None -> Smap.empty | Some v -> Smap.add "arg" v Smap.empty
  in
  { id; name; base; context; program; pc = 0; regs; occ = Smap.empty;
    status = Runnable; parent }

let create (group : Program.group) =
  let threads, next_tid =
    List.fold_left
      (fun (acc, id) (spec : Program.thread_spec) ->
        let th =
          make_thread ~id ~name:spec.Program.spec_name
            ~base:spec.Program.spec_name ~context:spec.context
            ~program:spec.program ~parent:None ~arg:None
        in
        (Imap.add id th acc, id + 1))
      (Imap.empty, 0) group.Program.threads
  in
  let mem =
    List.fold_left
      (fun m (name, v) -> Addr.Map.add (Addr.Global name) v m)
      Addr.Map.empty group.Program.globals
  in
  { group; threads; mem; heap = Heap.empty; locks = Smap.empty;
    failure = None; next_tid; clock = 0 }

(* --- inspection ----------------------------------------------------- *)

let failed t = t.failure
let clock t = t.clock
let thread_ids t = Imap.fold (fun id _ acc -> id :: acc) t.threads [] |> List.rev
let find_thread t tid =
  match Imap.find_opt tid t.threads with
  | Some th -> th
  | None -> model_error "no thread %d" tid

let has_thread t tid = Imap.mem tid t.threads

(* Has [tid] executed at least one instruction? *)
let has_started t tid =
  let th = find_thread t tid in
  th.pc > 0 || th.status = Done || not (Smap.is_empty th.occ)

(* How many times has [tid] executed the instruction [label] so far? *)
let occurrences t tid label =
  Option.value ~default:0 (Smap.find_opt label (find_thread t tid).occ)

let thread_name t tid = (find_thread t tid).name

(* Stable identity of a thread across runs of the same group: the
   thread-spec name for top-level threads, the entry name for spawned
   background threads. *)
let thread_base t tid = (find_thread t tid).base
let thread_context t tid = (find_thread t tid).context
let thread_parent t tid = (find_thread t tid).parent

let next_labeled t tid =
  let th = find_thread t tid in
  match th.status with
  | Done -> None
  | Runnable ->
    if th.pc >= Program.length th.program then None
    else Some (Program.get th.program th.pc)

(* A thread is done when it returned or fell off the end of its program. *)
let is_done t tid = next_labeled t tid = None

let next_label t tid =
  Option.map (fun (l : Program.labeled) -> l.label) (next_labeled t tid)

(* The lock [tid] would block on if stepped now, if any. *)
let blocked_on t tid =
  match next_labeled t tid with
  | Some { instr = Instr.Lock l; _ } -> (
    match Smap.find_opt l t.locks with
    | Some holder when holder <> tid -> Some l
    | Some _ -> Some l  (* self-deadlock: kernel spinlocks don't re-enter *)
    | None -> None)
  | Some _ | None -> None

let lock_holder t lock = Smap.find_opt lock t.locks

let runnable t =
  match t.failure with
  | Some _ -> []
  | None ->
    List.filter
      (fun tid ->
        (not (is_done t tid))
        && next_labeled t tid <> None
        && blocked_on t tid = None)
      (thread_ids t)

let all_done t =
  List.for_all (fun tid -> next_labeled t tid = None) (thread_ids t)

let reg t tid r = Smap.find_opt r (find_thread t tid).regs

let mem_read t addr =
  match Addr.Map.find_opt addr t.mem with
  | Some v -> v
  | None -> Value.Int 0  (* zero-initialized memory *)

let live_objects t = Heap.live_count t.heap

(* --- expression evaluation ------------------------------------------ *)

let bool_val b = Value.Int (if b then 1 else 0)

let as_int label = function
  | Value.Int n -> n
  | v -> model_error "%s: expected int, got %s" label (Value.to_string v)

let rec eval regs (e : Instr.expr) : Value.t =
  let int2 op a b =
    Value.Int (op (as_int "arith" (eval regs a)) (as_int "arith" (eval regs b)))
  in
  let cmp op a b =
    bool_val (op (as_int "cmp" (eval regs a)) (as_int "cmp" (eval regs b)))
  in
  match e with
  | Const v -> v
  | Reg r -> (
    match Smap.find_opt r regs with
    | Some v -> v
    | None -> model_error "read of unset register %s" r)
  | Add (a, b) -> int2 ( + ) a b
  | Sub (a, b) -> int2 ( - ) a b
  | Mul (a, b) -> int2 ( * ) a b
  | Eq (a, b) -> bool_val (Value.equal (eval regs a) (eval regs b))
  | Ne (a, b) -> bool_val (not (Value.equal (eval regs a) (eval regs b)))
  | Lt (a, b) -> cmp ( < ) a b
  | Le (a, b) -> cmp ( <= ) a b
  | Gt (a, b) -> cmp ( > ) a b
  | Ge (a, b) -> cmp ( >= ) a b
  | And (a, b) ->
    bool_val (Value.truthy (eval regs a) && Value.truthy (eval regs b))
  | Or (a, b) ->
    bool_val (Value.truthy (eval regs a) || Value.truthy (eval regs b))
  | Not a -> bool_val (not (Value.truthy (eval regs a)))
  | Is_null a -> bool_val (Value.is_null (eval regs a))

(* Resolve an address expression.  KASAN-checks heap accesses; a bad base
   pointer resolves to a failure instead of an address. *)
let resolve t regs ~kind ~iid (a : Instr.addr_expr) :
    (Addr.t, Failure.t) result =
  match a with
  | Global g -> Ok (Addr.Global g)
  | Deref (e, field) -> (
    match eval regs e with
    | Value.Null | Value.Int 0 -> Error (Failure.Null_dereference { at = iid })
    | Value.Int _ | Value.List _ ->
      Error (Failure.General_protection_fault { at = iid })
    | Value.Ptr p -> (
      match Heap.check_access t.heap ~ptr:p ~index:None ~kind ~at:iid with
      | Some f -> Error f
      | None -> Ok (Addr.Field (p.obj, field))))
  | At (e, idx) -> (
    match eval regs e with
    | Value.Null | Value.Int 0 -> Error (Failure.Null_dereference { at = iid })
    | Value.Int _ | Value.List _ ->
      Error (Failure.General_protection_fault { at = iid })
    | Value.Ptr p ->
      let i = as_int "index" (eval regs idx) in
      (match Heap.check_access t.heap ~ptr:p ~index:(Some i) ~kind ~at:iid with
      | Some f -> Error f
      | None -> Ok (Addr.Index (p.obj, i))))

(* --- stepping -------------------------------------------------------- *)

let set_thread t th = { t with threads = Imap.add th.id th t.threads }

let advance th = { th with pc = th.pc + 1 }

let jump th target = { th with pc = Program.position_of_label th.program target }

let finish_thread th = { th with status = Done }

let spawn t ~entry ~context ~parent ~arg =
  let program = Program.find_entry t.group entry in
  let id = t.next_tid in
  let name = Fmt.str "%s.%d" entry id in
  let th =
    make_thread ~id ~name ~base:entry ~context ~program ~parent:(Some parent)
      ~arg
  in
  ({ t with threads = Imap.add id th t.threads; next_tid = id + 1 }, id)

let no_event iid instr src (th : thread) t =
  { iid; instr; src; access = None; spawned = []; lock_op = None;
    context = th.context; thread_name = th.name }
  |> fun e -> (t, e)

(* Execute one instruction of [tid].  On failure manifestation the machine
   records the failure and the faulting event is still returned (the
   access that crashed did happen — it is typically one end of the racing
   pair AITIA reasons about). *)
let step t tid : (t * event, step_error) result =
  match t.failure with
  | Some _ -> Error Machine_failed
  | None -> (
    let th = find_thread t tid in
    match th.status with
    | Done -> Error Thread_not_runnable
    | Runnable ->
      if th.pc >= Program.length th.program then Error Thread_not_runnable
      else (
        let { Program.label; instr; src } = Program.get th.program th.pc in
        let occ = (Option.value ~default:0 (Smap.find_opt label th.occ)) + 1 in
        let iid = Access.Iid.make ~tid ~label ~occ in
        let th = { th with occ = Smap.add label occ th.occ } in
        let t = { t with clock = t.clock + 1 } in
        let held =
          Smap.fold
            (fun l holder acc -> if holder = tid then l :: acc else acc)
            t.locks []
        in
        let mk_access addr kind =
          Some { Access.iid; addr; kind; time = t.clock; held }
        in
        let fail t f = { t with failure = Some f } in
        let base_event =
          { iid; instr; src; access = None; spawned = []; lock_op = None;
            context = th.context; thread_name = th.name }
        in
        let store_result ~addr ~kind t' th' =
          (set_thread t' (advance th'), { base_event with access = mk_access addr kind })
        in
        (* The access a faulting instruction was attempting, when its base
           pointer is known: KASAN reports it, and it is usually one end
           of the racing pair AITIA reasons about. *)
        let attempted_access (a : Instr.addr_expr) kind =
          match a with
          | Instr.Deref (e, f') -> (
            match eval th.regs e with
            | Value.Ptr p -> mk_access (Addr.Field (p.obj, f')) kind
            | Value.Int _ | Value.Null | Value.List _ -> None)
          | Instr.At (e, idx) -> (
            match eval th.regs e with
            | Value.Ptr p -> (
              match eval th.regs idx with
              | Value.Int i -> mk_access (Addr.Index (p.obj, i)) kind
              | Value.Ptr _ | Value.Null | Value.List _ -> None)
            | Value.Int _ | Value.Null | Value.List _ -> None)
          | Instr.Global gname -> mk_access (Addr.Global gname) kind
        in
        match instr with
        | Instr.Nop -> Ok (no_event iid instr src th (set_thread t (advance th)))
        | Instr.Assign { dst; src = e } ->
          let v = eval th.regs e in
          let th = advance { th with regs = Smap.add dst v th.regs } in
          Ok (no_event iid instr src th (set_thread t th))
        | Instr.Branch_if { cond; target } ->
          let th =
            if Value.truthy (eval th.regs cond) then jump th target
            else advance th
          in
          Ok (no_event iid instr src th (set_thread t th))
        | Instr.Goto target ->
          let th = jump th target in
          Ok (no_event iid instr src th (set_thread t th))
        | Instr.Return ->
          let th = finish_thread th in
          Ok (no_event iid instr src th (set_thread t th))
        | Instr.Load { dst; src = a } -> (
          match resolve t th.regs ~kind:Instr.Read ~iid a with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access a Instr.Read })
          | Ok addr ->
            let v = mem_read t addr in
            let th = { th with regs = Smap.add dst v th.regs } in
            Ok (store_result ~addr ~kind:Instr.Read t th))
        | Instr.Store { dst = a; src = e } -> (
          match resolve t th.regs ~kind:Instr.Write ~iid a with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access a Instr.Write })
          | Ok addr ->
            let v = eval th.regs e in
            let t = { t with mem = Addr.Map.add addr v t.mem } in
            Ok (store_result ~addr ~kind:Instr.Write t th))
        | Instr.Rmw { ret; loc; delta } -> (
          match resolve t th.regs ~kind:Instr.Update ~iid loc with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access loc Instr.Update })
          | Ok addr ->
            let old = as_int "rmw" (mem_read t addr) in
            let d = as_int "rmw delta" (eval th.regs delta) in
            let t = { t with mem = Addr.Map.add addr (Value.Int (old + d)) t.mem } in
            let th =
              match ret with
              | Some r -> { th with regs = Smap.add r (Value.Int old) th.regs }
              | None -> th
            in
            Ok (store_result ~addr ~kind:Instr.Update t th))
        | Instr.Alloc { dst; tag; fields; slots; leak_check } ->
          let heap, obj = Heap.alloc t.heap ~tag ~slots ~leak_check ~at:iid in
          let mem =
            List.fold_left
              (fun m (f, e) -> Addr.Map.add (Addr.Field (obj, f)) (eval th.regs e) m)
              t.mem fields
          in
          let v = Value.ptr ~obj ~gen:0 in
          let th = advance { th with regs = Smap.add dst v th.regs } in
          Ok (no_event iid instr src th (set_thread { t with heap; mem } th))
        | Instr.Free { ptr } -> (
          match eval th.regs ptr with
          | Value.Null | Value.Int 0 ->
            (* kfree(NULL) is a no-op in the kernel. *)
            Ok (no_event iid instr src th (set_thread t (advance th)))
          | Value.Int _ | Value.List _ ->
            Ok (fail t (Failure.Invalid_free { at = iid }), base_event)
          | Value.Ptr p -> (
            match Heap.free t.heap ~ptr:p ~at:iid with
            | Error f ->
              let access = mk_access (Addr.Whole p.obj) Instr.Write in
              Ok (fail t f, { base_event with access })
            | Ok heap ->
              let t = { t with heap } in
              Ok (store_result ~addr:(Addr.Whole p.obj) ~kind:Instr.Write t th)))
        | Instr.Lock l -> (
          match Smap.find_opt l t.locks with
          | Some _ -> Error (Blocked_on_lock l)
          | None ->
            let t = { t with locks = Smap.add l tid t.locks } in
            let th = advance th in
            Ok
              ( set_thread t th,
                { base_event with lock_op = Some (l, `Acquire) } ))
        | Instr.Unlock l -> (
          match Smap.find_opt l t.locks with
          | Some holder when holder = tid ->
            let t = { t with locks = Smap.remove l t.locks } in
            let th = advance th in
            Ok
              ( set_thread t th,
                { base_event with lock_op = Some (l, `Release) } )
          | Some _ | None ->
            model_error "thread %d unlocks %s it does not hold" tid l)
        | Instr.Queue_work { entry; arg } ->
          let arg = eval th.regs arg in
          let t, id =
            spawn t ~entry ~context:Program.Kworker ~parent:tid ~arg:(Some arg)
          in
          let th = advance th in
          Ok (set_thread t th, { base_event with spawned = [ (id, entry) ] })
        | Instr.Call_rcu { entry; arg } ->
          let arg = eval th.regs arg in
          let t, id =
            spawn t ~entry ~context:Program.Rcu_softirq ~parent:tid
              ~arg:(Some arg)
          in
          let th = advance th in
          Ok (set_thread t th, { base_event with spawned = [ (id, entry) ] })
        | Instr.Arm_timer { entry; arg } ->
          let arg = eval th.regs arg in
          let t, id =
            spawn t ~entry ~context:Program.Timer_softirq ~parent:tid
              ~arg:(Some arg)
          in
          let th = advance th in
          Ok (set_thread t th, { base_event with spawned = [ (id, entry) ] })
        | Instr.Enable_irq { entry; arg } ->
          let arg = eval th.regs arg in
          let t, id =
            spawn t ~entry ~context:Program.Hardirq ~parent:tid
              ~arg:(Some arg)
          in
          let th = advance th in
          Ok (set_thread t th, { base_event with spawned = [ (id, entry) ] })
        | Instr.Bug_on e ->
          if Value.truthy (eval th.regs e) then
            Ok (fail t (Failure.Assertion_violation { at = iid }), base_event)
          else Ok (no_event iid instr src th (set_thread t (advance th)))
        | Instr.Warn_on e ->
          if Value.truthy (eval th.regs e) then
            Ok (fail t (Failure.Warning { at = iid }), base_event)
          else Ok (no_event iid instr src th (set_thread t (advance th)))
        | Instr.List_add { list; item } -> (
          match resolve t th.regs ~kind:Instr.Write ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr -> (
            match eval th.regs item with
            | Value.Ptr p -> (
              let cur =
                match mem_read t addr with
                | Value.List ps -> ps
                | Value.Int 0 | Value.Null -> []
                | v ->
                  model_error "list_add on non-list value %s" (Value.to_string v)
              in
              if List.exists (fun q -> Value.ptr_equal p q) cur then
                let f =
                  Failure.List_corruption
                    { at = iid; reason = "double list_add of the same entry" }
                in
                Ok (fail t f, { base_event with access = mk_access addr Instr.Write })
              else
                let t =
                  { t with mem = Addr.Map.add addr (Value.List (p :: cur)) t.mem }
                in
                Ok (store_result ~addr ~kind:Instr.Write t th))
            | v -> model_error "list_add of non-pointer %s" (Value.to_string v)))
        | Instr.List_del { list; item } -> (
          match resolve t th.regs ~kind:Instr.Write ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr -> (
            match eval th.regs item with
            | Value.Ptr p -> (
              let cur =
                match mem_read t addr with
                | Value.List ps -> ps
                | Value.Int 0 | Value.Null -> []
                | v ->
                  model_error "list_del on non-list value %s" (Value.to_string v)
              in
              if not (List.exists (fun q -> Value.ptr_equal p q) cur) then
                let f =
                  Failure.List_corruption
                    { at = iid; reason = "list_del of entry not on the list" }
                in
                Ok (fail t f, { base_event with access = mk_access addr Instr.Write })
              else
                let cur' =
                  List.filter (fun q -> not (Value.ptr_equal p q)) cur
                in
                let t =
                  { t with mem = Addr.Map.add addr (Value.List cur') t.mem }
                in
                Ok (store_result ~addr ~kind:Instr.Write t th))
            | v -> model_error "list_del of non-pointer %s" (Value.to_string v)))
        | Instr.List_contains { dst; list; item } -> (
          match resolve t th.regs ~kind:Instr.Read ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr ->
            let cur =
              match mem_read t addr with
              | Value.List ps -> ps
              | _ -> []
            in
            let present =
              match eval th.regs item with
              | Value.Ptr p -> List.exists (fun q -> Value.ptr_equal p q) cur
              | _ -> false
            in
            let th = { th with regs = Smap.add dst (bool_val present) th.regs } in
            Ok (store_result ~addr ~kind:Instr.Read t th))
        | Instr.List_empty { dst; list } -> (
          match resolve t th.regs ~kind:Instr.Read ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr ->
            let empty =
              match mem_read t addr with
              | Value.List (_ :: _) -> false
              | Value.List [] | _ -> true
            in
            let th = { th with regs = Smap.add dst (bool_val empty) th.regs } in
            Ok (store_result ~addr ~kind:Instr.Read t th))
        | Instr.List_first { dst; list } -> (
          match resolve t th.regs ~kind:Instr.Read ~iid list with
          | Error f -> Ok (fail t f, base_event)
          | Ok addr ->
            let v =
              match mem_read t addr with
              | Value.List (p :: _) -> Value.Ptr p
              | Value.List [] | _ -> Value.Null
            in
            let th = { th with regs = Smap.add dst v th.regs } in
            Ok (store_result ~addr ~kind:Instr.Read t th))
        | Instr.Ref_get { loc } -> (
          match resolve t th.regs ~kind:Instr.Update ~iid loc with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access loc Instr.Update })
          | Ok addr ->
            let old = as_int "refcount" (mem_read t addr) in
            if old <= 0 then
              (* refcount_inc on zero: object already dying. *)
              Ok (fail t (Failure.Warning { at = iid }),
                  { base_event with access = mk_access addr Instr.Update })
            else
              let t =
                { t with mem = Addr.Map.add addr (Value.Int (old + 1)) t.mem }
              in
              Ok (store_result ~addr ~kind:Instr.Update t th))
        | Instr.Ref_put { ret; loc } -> (
          match resolve t th.regs ~kind:Instr.Update ~iid loc with
          | Error f ->
            Ok (fail t f, { base_event with access = attempted_access loc Instr.Update })
          | Ok addr ->
            let old = as_int "refcount" (mem_read t addr) in
            if old <= 0 then
              (* refcount underflow: WARNING, as the kernel's refcount_t. *)
              Ok (fail t (Failure.Warning { at = iid }),
                  { base_event with access = mk_access addr Instr.Update })
            else
              let t =
                { t with mem = Addr.Map.add addr (Value.Int (old - 1)) t.mem }
              in
              let th =
                match ret with
                | Some r ->
                  { th with regs = Smap.add r (Value.Int (old - 1)) th.regs }
                | None -> th
              in
              Ok (store_result ~addr ~kind:Instr.Update t th))))

(* End-of-run leak detection: once every thread has finished, objects
   flagged [leak_check] that were never freed constitute a memory leak. *)
let check_leaks t =
  match t.failure with
  | Some _ -> t
  | None ->
    if not (all_done t) then t
    else (
      match Heap.leaked t.heap with
      | [] -> t
      | objs -> { t with failure = Some (Failure.Memory_leak { objs }) })

(* --- fingerprinting -------------------------------------------------- *)

(* Canonical digest of the complete machine state.  Every component is
   rendered through an order-canonical traversal (maps fold in key
   order), so two machines that are structurally equal produce the same
   digest regardless of how their persistent maps were built.  Used by
   the snapshot cache's differential tests to assert that restoring a
   prefix and executing the suffix reaches a state identical to a fresh
   run. *)
let fingerprint t =
  let b = Buffer.create 1024 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  add "clock=%d;next_tid=%d;" t.clock t.next_tid;
  (match t.failure with
  | None -> add "ok;"
  | Some f -> add "failure=%s;" (Failure.to_string f));
  Smap.iter (fun l holder -> add "lock:%s=%d;" l holder) t.locks;
  Imap.iter
    (fun id th ->
      add "thread:%d name=%s base=%s ctx=%a pc=%d status=%s parent=%s;" id
        th.name th.base Program.pp_context th.context th.pc
        (match th.status with Runnable -> "runnable" | Done -> "done")
        (match th.parent with None -> "-" | Some p -> string_of_int p);
      Smap.iter (fun r v -> add "reg:%s=%s;" r (Value.to_string v)) th.regs;
      Smap.iter (fun l n -> add "occ:%s=%d;" l n) th.occ)
    t.threads;
  Addr.Map.iter
    (fun addr v -> add "mem:%s=%s;" (Addr.to_string addr) (Value.to_string v))
    t.mem;
  Heap.fold
    (fun id (o : Heap.obj) () ->
      add "obj:%d tag=%s gen=%d state=%s slots=%d leak=%b at=%s;" id o.tag
        o.gen
        (match o.state with
        | Heap.Live -> "live"
        | Heap.Freed at -> "freed@" ^ Access.Iid.to_string at)
        o.slots o.leak_check
        (Access.Iid.to_string o.alloc_at))
    t.heap ();
  add "heap_next=%d" (Heap.next_id t.heap);
  Digest.to_hex (Digest.string (Buffer.contents b))
