(* The execution-engine selector: one name for "which Machine
   implementation runs the guest", threaded from the CLI through Vm into
   every layer that boots machines.  The interface deliberately mirrors
   how the executor and the snapshot cache consume machines — step,
   snapshot, restore, fingerprint — so those layers need never
   pattern-match on machine internals. *)

type kind = Reference | Compiled

let default = Compiled

let to_string = function Reference -> "reference" | Compiled -> "compiled"

let of_string = function
  | "reference" -> Ok Reference
  | "compiled" -> Ok Compiled
  | s -> Error (Fmt.str "unknown engine %S (expected reference|compiled)" s)

let pp ppf k = Fmt.string ppf (to_string k)

let boot = function
  | Reference -> Machine.create
  | Compiled -> Machine.create_compiled

let kind_of m = if Machine.compiled m then Compiled else Reference

let step = Machine.step

(* A snapshot is the machine value itself: the reference engine is
   persistent, and the compiled engine is frozen so the shared arena is
   only ever read (restores clone-and-rewind from it). *)
type snapshot = Machine.t

let snapshot m =
  Machine.freeze m;
  m

let restore s = s

let snapshot_cost ?prev (m : Machine.t) = Machine.snapshot_cost ?prev m

let fingerprint = Machine.fingerprint
