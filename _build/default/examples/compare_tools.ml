(* Run the prior-work comparators on one bug and regenerate the Table 1
   requirements matrix over the Syzkaller corpus (§5.3 / Table 1).

     dune exec examples/compare_tools.exe *)

let () =
  (* One bug in detail: the tight multi-variable L2TP UAF (#3). *)
  let bug = Bugs.Syz_03_l2tp_uaf.bug in
  Fmt.pr "=== baselines on %s ===@." bug.id;
  let report =
    Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
      (bug.case ())
  in
  let ev =
    match Baselines.Requirements.evidence_of_report report with
    | Some ev -> ev
    | None -> failwith "not diagnosed"
  in
  let chain = Baselines.Requirements.chain_of ev in
  Fmt.pr "ground truth (AITIA): %a@.@." Aitia.Chain.pp chain;

  let passing =
    ev.passing @ Baselines.Requirements.production_runs ev.report.case.group
  in
  (* Kairux: a single inflection point. *)
  let kairux = Baselines.Kairux.analyze ~failing:ev.failing ~passing in
  Fmt.pr "Kairux:  %a@." Baselines.Kairux.pp kairux;
  Fmt.pr "         covers the chain? %b (a single instruction cannot)@.@."
    (Baselines.Kairux.covers_chain kairux chain);

  (* Cooperative bug localization: top statistical pattern. *)
  let cbl =
    Baselines.Coop_bug_localization.analyze ~failing:[ ev.failing ] ~passing
  in
  (match Baselines.Coop_bug_localization.top cbl with
  | Some s ->
    Fmt.pr "CBL:     top pattern %a (score %.2f)@."
      Baselines.Coop_bug_localization.pp_pattern s.pattern s.score
  | None -> Fmt.pr "CBL:     no pattern@.");
  Fmt.pr
    "         covers the chain? %b (multi-variable: outside the pattern \
     set)@.@."
    (Baselines.Coop_bug_localization.covers_chain ~single_variable:false cbl
       chain);

  (* MUVI: inferred variable correlations. *)
  let muvi = Baselines.Muvi.analyze (ev.failing :: passing) in
  Fmt.pr "MUVI:    %a@." Baselines.Muvi.pp muvi;
  Fmt.pr "         covers the chain? %b (a tight multi-variable pair)@.@."
    (Baselines.Muvi.covers_chain muvi chain);

  (* Table 1 over the whole Syzkaller corpus. *)
  Fmt.pr "=== Table 1 over the 12 Syzkaller bugs ===@.";
  let caps =
    List.filter_map
      (fun (bug : Bugs.Bug.t) ->
        let report =
          Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
            (bug.case ())
        in
        Option.map
          (Baselines.Requirements.capability
             ~single_variable:(bug.variables = Bugs.Bug.Single))
          (Baselines.Requirements.evidence_of_report report))
      Bugs.Registry.syzkaller
  in
  Fmt.pr "%-30s %-6s %-6s %-6s@." "tool" "compr." "p-agn." "concise";
  List.iter
    (fun s -> Fmt.pr "%a@." Baselines.Requirements.pp_score s)
    (Baselines.Requirements.table1 caps)
