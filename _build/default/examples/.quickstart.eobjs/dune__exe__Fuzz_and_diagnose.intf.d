examples/fuzz_and_diagnose.mli:
