examples/explore_lifs.ml: Aitia Bugs Fmt Hypervisor Ksim List Trace
