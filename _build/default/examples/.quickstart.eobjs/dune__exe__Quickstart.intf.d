examples/quickstart.mli:
