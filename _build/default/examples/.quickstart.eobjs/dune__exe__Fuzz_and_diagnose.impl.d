examples/fuzz_and_diagnose.ml: Aitia Bugs Fmt Fuzz Ksim List Trace
