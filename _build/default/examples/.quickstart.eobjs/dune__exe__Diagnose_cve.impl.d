examples/diagnose_cve.ml: Aitia Bugs Fmt Hypervisor Ksim List Trace
