examples/explore_lifs.mli:
