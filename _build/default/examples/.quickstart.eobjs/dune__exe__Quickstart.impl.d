examples/quickstart.ml: Aitia Bugs Fmt Ksim
