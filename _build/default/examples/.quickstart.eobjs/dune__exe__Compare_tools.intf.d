examples/compare_tools.mli:
