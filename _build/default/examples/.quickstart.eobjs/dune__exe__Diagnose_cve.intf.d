examples/diagnose_cve.mli:
