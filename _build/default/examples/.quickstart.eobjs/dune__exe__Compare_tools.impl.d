examples/compare_tools.ml: Aitia Baselines Bugs Fmt List Option
