(* Walk through the paper's central example, CVE-2017-15649 (Figure 2),
   showing each stage of the pipeline in detail: the slice, the LIFS
   reproduction, the Causality Analysis flip log (Figure 6), and the
   final causality chain (Figure 3).

     dune exec examples/diagnose_cve.exe *)

let () =
  let bug = Bugs.Cve_2017_15649.bug in
  let case = bug.case () in
  Fmt.pr "=== %s — %s ===@." bug.id bug.description;

  (* Stage 1: modeling.  The execution history is sliced backward from
     the failure point. *)
  let slices = Trace.Slicer.slices case.history in
  Fmt.pr "@.[modeling] %d candidate slice(s); nearest to the failure:@."
    (List.length slices);
  let slice = List.hd slices in
  Fmt.pr "  %a@." Trace.Slicer.pp slice;

  (* Stage 2: reproducing with LIFS. *)
  let group, prologue =
    match Aitia.Diagnose.realize case slice with
    | Some x -> x
    | None -> failwith "slice not realizable"
  in
  let crash = Trace.History.crash case.history in
  let vm = Hypervisor.Vm.create group in
  let lifs =
    Aitia.Lifs.search ~prologue vm ~target:(Trace.Crash.matches crash) ()
  in
  Fmt.pr
    "@.[reproducing] %d schedules run, %d pruned as equivalent, \
     interleaving count %d, %.1f simulated s@."
    lifs.stats.schedules lifs.stats.pruned lifs.stats.interleavings
    lifs.stats.simulated;
  let success =
    match lifs.found with
    | Some s -> s
    | None -> failwith "not reproduced"
  in
  Fmt.pr "  failure: %a@." Ksim.Failure.pp success.failure;
  Fmt.pr "  data races in the failure-causing sequence: %d@."
    (List.length success.races);

  (* Stage 3: diagnosing with Causality Analysis (the Figure 6 steps). *)
  let ca_vm = Hypervisor.Vm.create group in
  let ca =
    Aitia.Causality.analyze ~prologue ca_vm ~failing:success.outcome
      ~races:success.races ()
  in
  Fmt.pr "@.[diagnosing] flip log (backward from the failure):@.";
  List.iteri
    (fun i (t : Aitia.Causality.tested) ->
      Fmt.pr "  step %2d: flip %-24s -> %s@." (i + 1)
        (Fmt.str "%a" Aitia.Race.pp_short t.race)
        (match t.verdict with
        | Aitia.Causality.Root_cause -> "no failure  => root cause"
        | Aitia.Causality.Benign -> "still fails => benign"))
    ca.tested;
  Fmt.pr "  root causes: %d, benign races excluded: %d@."
    (List.length ca.root_causes)
    (List.length ca.benign);

  (* Stage 4: the causality chain. *)
  let chain = Aitia.Chain.of_causality ca ~failure:success.failure in
  Fmt.pr "@.[output] causality chain:@.  %a@." Aitia.Chain.pp chain;
  Fmt.pr
    "@.The kernel developers' fix makes po->running and po->fanout \
     accessed atomically — exactly the conjunction at the head of the \
     chain.@."
