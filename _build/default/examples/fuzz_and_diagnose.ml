(* The §5.2 workflow: a Syzkaller-style fuzzer finds kernel crashes, and
   AITIA diagnoses each one from the fuzzer's own outputs (execution
   history + crash report) — no manual input.

     dune exec examples/fuzz_and_diagnose.exe *)

let prologue_of (group : Ksim.Program.group) =
  List.mapi (fun i (s : Ksim.Program.thread_spec) -> (i, s.spec_name))
    group.Ksim.Program.threads
  |> List.filter_map (fun (i, n) -> if n = "init" then Some i else None)

let () =
  let targets =
    [ Bugs.Fig9_irqfd.bug; Bugs.Syz_10_md_assert.bug;
      Bugs.Syz_12_bluetooth_uaf.bug ]
  in
  List.iter
    (fun (bug : Bugs.Bug.t) ->
      Fmt.pr "=== fuzzing workload of %s (%s) ===@." bug.id bug.subsystem;
      let case = bug.case () in
      let prologue = prologue_of case.group in
      (* Scan seeds the way a fuzzing campaign scans inputs. *)
      let rec campaign seed =
        if seed > 50 then Error ()
        else
          match
            Fuzz.Fuzzer.run ~max_runs:500 ~seed ~prologue
              ~subsystem:bug.subsystem case.group
          with
          | Ok f -> Ok (seed, f)
          | Error _ -> campaign (seed + 1)
      in
      match campaign 1 with
      | Error () -> Fmt.pr "no crash found@."
      | Ok (seed, finding) ->
        Fmt.pr "seed %d crashed after %d random schedule(s): %a@." seed
          finding.runs_until_crash Ksim.Failure.pp finding.failure;
        Fmt.pr "ftrace history (%d events), crash report: %a@."
          (List.length (Trace.History.events finding.history))
          Trace.Crash.pp
          (Trace.History.crash finding.history);
        (* Hand the fuzzer's outputs to AITIA. *)
        let case' = { case with history = finding.history } in
        let report =
          Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
            case'
        in
        (match report.chain with
        | Some chain -> Fmt.pr "diagnosis: %a@.@." Aitia.Chain.pp chain
        | None -> Fmt.pr "diagnosis failed to reproduce@.@."))
    targets
