(* Quickstart: model a tiny kernel concurrency bug from scratch and let
   AITIA diagnose it.

     dune exec examples/quickstart.exe

   We write the two racing "system calls" of Figure 1 in the program
   eDSL, wrap them in a case with a synthetic ftrace history and a crash
   report, and run the whole pipeline: slicing -> LIFS -> Causality
   Analysis -> causality chain. *)

open Ksim.Program.Build

let () =
  (* 1. Model the kernel code under test.  Thread A enables a device and
     dereferences its buffer; thread B resets the device, NULLing the
     buffer when nobody appears to be using it. *)
  let thread_a =
    { Ksim.Program.spec_name = "A";
      context = Ksim.Program.Syscall { call = "ioctl_enable"; sysno = 0 };
      program =
        Ksim.Program.make ~name:"ioctl_enable"
          [ store "A1" (g "ptr_valid") (cint 1) ~func:"dev_enable" ~line:20;
            load "A2" "p" (g "ptr") ~func:"dev_enable" ~line:21;
            load "A2_deref" "v" (reg "p" **-> "data") ~func:"dev_enable"
              ~line:21 ];
      resources = [ "dev0" ] }
  in
  let thread_b =
    { Ksim.Program.spec_name = "B";
      context = Ksim.Program.Syscall { call = "ioctl_reset"; sysno = 0 };
      program =
        Ksim.Program.make ~name:"ioctl_reset"
          [ load "B1" "valid" (g "ptr_valid") ~func:"dev_reset" ~line:30;
            branch_if "B1_chk" (Eq (reg "valid", cint 0)) "B_ret"
              ~func:"dev_reset" ~line:30;
            store "B2" (g "ptr") cnull ~func:"dev_reset" ~line:31;
            return "B_ret" ~func:"dev_reset" ~line:32 ];
      resources = [ "dev0" ] }
  in
  let setup =
    { Ksim.Program.spec_name = "init";
      context = Ksim.Program.Syscall { call = "open"; sysno = 0 };
      program =
        Ksim.Program.make ~name:"open"
          [ alloc "I1" "buf" "device_buffer" ~fields:[ ("data", cint 42) ]
              ~func:"dev_open" ~line:10;
            store "I2" (g "ptr") (reg "buf") ~func:"dev_open" ~line:11 ];
      resources = [ "dev0" ] }
  in
  let group =
    Ksim.Program.group ~name:"quickstart"
      ~globals:[ ("ptr", Ksim.Value.Null); ("ptr_valid", Ksim.Value.Int 0) ]
      [ setup; thread_a; thread_b ]
  in

  (* 2. The inputs a bug finder would hand to AITIA: a timestamped
     execution history and the crash report. *)
  let case : Aitia.Diagnose.case =
    { case_name = "quickstart";
      subsystem = "example-driver";
      group;
      history =
        Bugs.Caselib.history ~group ~setup:[ "init" ]
          ~symptom:"null-ptr-deref" ~location:"A2_deref"
          ~subsystem:"example-driver" () }
  in

  (* 3. Diagnose. *)
  let report = Aitia.Diagnose.diagnose case in
  Fmt.pr "%a@." Aitia.Report.pp report;

  (* 4. The chain tells us how to fix the bug: prevent either interleaving
     order and the failure cannot happen. *)
  match report.chain with
  | Some chain ->
    Fmt.pr
      "@.To fix: disallow one of the orders in the chain — e.g. make \
       A1/A2 atomic with respect to B1/B2.@.chain: %a@."
      Aitia.Chain.pp chain
  | None -> Fmt.pr "failure was not reproduced@."
