(* Visualize the Least Interleaving First Search on the Figure 5 example:
   every schedule it runs, in order, with its interleaving count, verdict
   and the partial-order-reduction skips.

     dune exec examples/explore_lifs.exe *)

let () =
  let bug = Bugs.Fig5_search.bug in
  let case = bug.case () in
  let crash = Trace.History.crash case.history in
  let slice = List.hd (Trace.Slicer.slices case.history) in
  let group, prologue =
    match Aitia.Diagnose.realize case slice with
    | Some x -> x
    | None -> failwith "slice not realizable"
  in
  let vm = Hypervisor.Vm.create group in
  let result =
    Aitia.Lifs.search ~prologue vm ~target:(Trace.Crash.matches crash) ()
  in
  Fmt.pr "LIFS search tree over %s (threads A, B + dynamic kworker K):@.@."
    case.case_name;
  let last_inter = ref (-1) in
  List.iteri
    (fun i
         ( (sched : Hypervisor.Schedule.preemption),
           (o : Hypervisor.Controller.outcome) ) ->
      let inter = Hypervisor.Schedule.interleaving_count sched in
      if inter <> !last_inter then (
        last_inter := inter;
        Fmt.pr "--- interleaving count %d ---@." inter);
      let accesses =
        List.filter_map (fun (e : Ksim.Machine.event) -> e.access) o.trace
      in
      Fmt.pr "search order %2d: %-40s -> %a@."
        (i + 1)
        (Fmt.str "%a"
           (Fmt.list ~sep:(Fmt.any " ") (fun ppf (a : Ksim.Access.t) ->
                Ksim.Access.Iid.pp ppf a.iid))
           accesses)
        Hypervisor.Controller.pp_verdict o.verdict)
    result.runs;
  Fmt.pr "@.%d schedule(s) executed, %d pruned as equivalent (the 'skip' \
          nodes of Figure 5)@."
    result.stats.schedules result.stats.pruned;
  match result.found with
  | Some s ->
    Fmt.pr "failure reproduced at interleaving count %d: %a@."
      result.stats.interleavings Ksim.Failure.pp s.failure;
    Fmt.pr "failure-causing sequence: %a@."
      (Fmt.list ~sep:(Fmt.any " => ") (fun ppf (e : Ksim.Machine.event) ->
           Ksim.Access.Iid.pp ppf e.iid))
      (List.filter
         (fun (e : Ksim.Machine.event) -> e.access <> None)
         s.outcome.trace)
  | None -> Fmt.pr "not reproduced@."
