(* Unit tests for the execution-history modeling layer: events,
   histories, crash reports and the slicer. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let enter t call thread resources =
  { Trace.Event.time = t;
    kind = Trace.Event.Syscall_enter { call; thread; resources } }

let exit_ t call thread =
  { Trace.Event.time = t; kind = Trace.Event.Syscall_exit { call; thread } }

let invoke t entry source =
  { Trace.Event.time = t;
    kind =
      Trace.Event.Kthread_invoked
        { entry; source; context = Ksim.Program.Kworker } }

let crash ?location ~at symptom =
  { Trace.Crash.symptom; location; subsystem = "test"; report_time = at }

(* --- history -------------------------------------------------------------- *)

let test_events_sorted () =
  let h =
    Trace.History.make
      ~events:[ enter 2.0 "b" "B" []; enter 1.0 "a" "A" [] ]
      ~crash:(crash ~at:3.0 "boom")
  in
  match Trace.History.events h with
  | [ e1; e2 ] -> checkb "ascending" true (e1.time < e2.time)
  | _ -> Alcotest.fail "two events"

let test_episode_pairing () =
  let h =
    Trace.History.make
      ~events:
        [ enter 1.0 "read" "A" [ "fd1" ];
          exit_ 2.0 "read" "A";
          invoke 1.5 "kw" "A";
          { Trace.Event.time = 1.8; kind = Trace.Event.Kthread_done { entry = "kw" } } ]
      ~crash:(crash ~at:3.0 "boom")
  in
  let eps = Trace.History.episodes h in
  checki "two episodes" 2 (List.length eps);
  let a = List.find (fun (e : Trace.History.episode) -> e.thread = "A") eps in
  checkb "bounds" true (a.start = 1.0 && a.stop = 2.0);
  let k = List.find (fun (e : Trace.History.episode) -> e.thread = "kw") eps in
  checkb "kthread source" true (k.source = Some "A")

let test_unclosed_episode_is_live () =
  let h =
    Trace.History.make
      ~events:[ enter 1.0 "write" "A" [] ]
      ~crash:(crash ~at:2.0 "boom")
  in
  match Trace.History.episodes h with
  | [ e ] -> checkb "open interval" true (e.stop = infinity)
  | _ -> Alcotest.fail "one episode"

let test_overlap () =
  let ep t0 t1 =
    { Trace.History.thread = "t"; call = "c"; start = t0; stop = t1;
      resources = []; context = Ksim.Program.Kworker; source = None }
  in
  checkb "overlapping" true (Trace.History.overlap (ep 0. 2.) (ep 1. 3.));
  checkb "disjoint" false (Trace.History.overlap (ep 0. 1.) (ep 2. 3.));
  checkb "touching" false (Trace.History.overlap (ep 0. 1.) (ep 1. 2.))

(* --- crash matching -------------------------------------------------------- *)

let test_crash_matching () =
  let iid = Ksim.Access.Iid.make ~tid:0 ~label:"A2" ~occ:1 in
  let f = Ksim.Failure.Null_dereference { at = iid } in
  let c = crash ~at:1.0 ~location:"A2" "null-ptr-deref" in
  checkb "matches" true (Trace.Crash.matches c f);
  let c2 = crash ~at:1.0 ~location:"B9" "null-ptr-deref" in
  checkb "wrong location" false (Trace.Crash.matches c2 f);
  let c3 = crash ~at:1.0 ~location:"A2" "KASAN: use-after-free" in
  checkb "wrong symptom" false (Trace.Crash.matches c3 f);
  let leak = Ksim.Failure.Memory_leak { objs = [ (0, "x") ] } in
  let c4 = crash ~at:1.0 "memory leak" in
  checkb "location-free" true (Trace.Crash.matches c4 leak)

let test_crash_of_failure () =
  let iid = Ksim.Access.Iid.make ~tid:1 ~label:"B7" ~occ:2 in
  let f =
    Ksim.Failure.Use_after_free
      { at = iid; obj = 3; tag = "sock"; kind = Ksim.Instr.Read;
        freed_at = None }
  in
  let c = Trace.Crash.of_failure ~subsystem:"net" ~report_time:9.0 f in
  checkb "symptom" true (String.equal c.symptom "KASAN: use-after-free");
  checkb "location" true (c.location = Some "B7");
  checkb "self match" true (Trace.Crash.matches c f)

(* --- slicer ----------------------------------------------------------------- *)

let concurrent_pair_history () =
  Trace.History.make
    ~events:
      [ (* earlier unrelated sequential call *)
        enter 0.1 "getpid" "X" [];
        exit_ 0.2 "getpid" "X";
        (* resource setup *)
        enter 0.3 "open" "init" [ "fd1" ];
        exit_ 0.4 "open" "init";
        (* the racing pair *)
        enter 1.0 "read" "A" [ "fd1" ];
        enter 1.01 "close" "B" [ "fd1" ];
        exit_ 1.5 "read" "A";
        exit_ 1.5 "close" "B" ]
    ~crash:(crash ~at:1.6 "boom")

let test_slicer_groups_concurrent () =
  let slices = Trace.Slicer.slices (concurrent_pair_history ()) in
  checkb "at least one slice" true (slices <> []);
  let first = List.hd slices in
  (* nearest to the failure: the A/B racing window *)
  Alcotest.(check (slist string compare)) "threads" [ "A"; "B" ]
    (Trace.Slicer.threads first)

let test_slicer_resource_closure () =
  let slices = Trace.Slicer.slices (concurrent_pair_history ()) in
  let first = List.hd slices in
  let setup =
    List.map (fun (e : Trace.History.episode) -> e.thread) first.setup
  in
  Alcotest.(check (list string)) "open pulled in" [ "init" ] setup

let test_slicer_backward_order () =
  let slices = Trace.Slicer.slices (concurrent_pair_history ()) in
  (* the sequential episodes form their own, later-ranked slices *)
  checkb "more than one slice" true (List.length slices > 1);
  let first = List.hd slices in
  checki "failure-adjacent first" 0 first.distance_from_failure

let test_slicer_splits_wide_groups () =
  let events =
    List.concat_map
      (fun i ->
        let name = Fmt.str "T%d" i in
        [ enter 1.0 "call" name []; exit_ 2.0 "call" name ])
      [ 1; 2; 3; 4; 5 ]
  in
  let h = Trace.History.make ~events ~crash:(crash ~at:2.5 "boom") in
  let slices = Trace.Slicer.slices h in
  checkb "split happened" true (List.length slices > 1);
  List.iter
    (fun (s : Trace.Slicer.t) ->
      checkb "bounded width" true
        (List.length s.episodes <= Trace.Slicer.max_threads_per_slice))
    slices

let () =
  Alcotest.run "trace"
    [ ( "history",
        [ Alcotest.test_case "events sorted" `Quick test_events_sorted;
          Alcotest.test_case "episode pairing" `Quick test_episode_pairing;
          Alcotest.test_case "unclosed episode" `Quick
            test_unclosed_episode_is_live;
          Alcotest.test_case "overlap" `Quick test_overlap ] );
      ( "crash",
        [ Alcotest.test_case "matching" `Quick test_crash_matching;
          Alcotest.test_case "of_failure" `Quick test_crash_of_failure ] );
      ( "slicer",
        [ Alcotest.test_case "concurrent grouping" `Quick
            test_slicer_groups_concurrent;
          Alcotest.test_case "resource closure" `Quick
            test_slicer_resource_closure;
          Alcotest.test_case "backward order" `Quick
            test_slicer_backward_order;
          Alcotest.test_case "width bound" `Quick
            test_slicer_splits_wide_groups ] ) ]
