(* Integration suite: every modeled bug of the corpus must reproduce and
   diagnose with the shape its metadata declares (Tables 2 and 3). *)

module Iid = Ksim.Access.Iid

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Diagnose each bug once; the corpus is fast enough to run eagerly. *)
let reports =
  lazy
    (List.map
       (fun (bug : Bugs.Bug.t) ->
         ( bug,
           Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
             (bug.case ()) ))
       Bugs.Registry.all)

let report_of (bug : Bugs.Bug.t) =
  List.assq bug (Lazy.force reports)

let test_reproduced (bug : Bugs.Bug.t) () =
  let r = report_of bug in
  checkb "reproduced" true (Aitia.Diagnose.reproduced r)

let test_interleavings (bug : Bugs.Bug.t) () =
  let r = report_of bug in
  checki "interleaving count" bug.expectation.exp_interleavings
    r.lifs.stats.interleavings

let test_chain_shape (bug : Bugs.Bug.t) () =
  let r = report_of bug in
  match r.chain with
  | None -> Alcotest.fail "no chain"
  | Some chain -> (
    checkb "chain non-empty" true (Aitia.Chain.length chain > 0);
    match bug.expectation.exp_chain_races with
    | Some n -> checki "races in chain" n (Aitia.Chain.length chain)
    | None -> ())

let test_ambiguity (bug : Bugs.Bug.t) () =
  let r = report_of bug in
  match r.causality with
  | None -> Alcotest.fail "no causality analysis"
  | Some ca ->
    checkb "ambiguity flag" bug.expectation.exp_ambiguous
      (ca.ambiguous <> [])

let test_kthread_involvement (bug : Bugs.Bug.t) () =
  let r = report_of bug in
  match r.chain with
  | None -> Alcotest.fail "no chain"
  | Some chain ->
    let final =
      match r.lifs.found with
      | Some s -> s.outcome.final
      | None -> Alcotest.fail "no failing run"
    in
    let has_kthread =
      List.exists
        (fun (race : Aitia.Race.t) ->
          let bg tid =
            match Ksim.Machine.thread_context final tid with
            | Ksim.Program.Kworker | Ksim.Program.Rcu_softirq
            | Ksim.Program.Timer_softirq | Ksim.Program.Hardirq -> true
            | Ksim.Program.Syscall _ -> false
          in
          bg race.first.iid.Iid.tid || bg race.second.iid.Iid.tid)
        (Aitia.Chain.races chain)
    in
    checkb "kernel-thread involvement" bug.expectation.exp_kthread
      has_kthread

let test_chain_has_no_noise (bug : Bugs.Bug.t) () =
  let r = report_of bug in
  match r.chain with
  | None -> Alcotest.fail "no chain"
  | Some chain ->
    List.iter
      (fun (race : Aitia.Race.t) ->
        let is_noise (iid : Iid.t) =
          let l = iid.label in
          String.length l > 3
          &&
          let rec find i =
            i + 3 <= String.length l
            && (String.sub l i 3 = "_n_" || find (i + 1))
          in
          find 0
        in
        checkb "no benign statistics race in chain" false
          (is_noise race.first.iid || is_noise race.second.iid))
      (Aitia.Chain.races chain)

let test_failure_type_matches (bug : Bugs.Bug.t) () =
  let r = report_of bug in
  match r.lifs.found with
  | None -> Alcotest.fail "no failing run"
  | Some s ->
    let ok =
      match bug.bug_type, s.failure with
      | Bugs.Bug.Use_after_free,
        (Ksim.Failure.Use_after_free _ | Ksim.Failure.Double_free _) -> true
      | Bugs.Bug.Slab_out_of_bounds, Ksim.Failure.Out_of_bounds _ -> true
      | Bugs.Bug.Assertion_violation,
        (Ksim.Failure.Assertion_violation _ | Ksim.Failure.Warning _) -> true
      | Bugs.Bug.General_protection_fault,
        Ksim.Failure.General_protection_fault _ -> true
      | Bugs.Bug.Memory_leak, Ksim.Failure.Memory_leak _ -> true
      | Bugs.Bug.Null_dereference, Ksim.Failure.Null_dereference _ -> true
      | Bugs.Bug.Refcount_warning, Ksim.Failure.Warning _ -> true
      | Bugs.Bug.List_corruption, Ksim.Failure.List_corruption _ -> true
      | _, _ -> false
    in
    checkb
      (Fmt.str "failure type (%s)" (Ksim.Failure.symptom s.failure))
      true ok

(* Golden causality chains: lock in the exact diagnosis of every corpus
   case, so any behavioural drift in the pipeline is caught verbatim. *)
let golden_chains =
  [ ("fig1", "(A1 => B1) --> (B2 => A2) --> null-ptr-deref");
    ("fig4b", "(R1 => W1) --> KASAN: use-after-free");
    ("fig5", "(A1 => B1) --> (K1 => A3_deref) --> KASAN: use-after-free");
    ("fig7", "(A2 => B1) --> kernel BUG (BUG_ON)");
    ("fig9", "(A1 => B1) --> (K1 => A2) --> KASAN: use-after-free");
    ("cve-2019-11486",
     "(B1 => A3) --> (A2 => B2) --> KASAN: use-after-free");
    ("cve-2019-6974",
     "(A1 => B1) --> (B5 => A2b) --> KASAN: use-after-free");
    ("cve-2018-12232",
     "(B1 => A2) --> (A3 => B2) --> KASAN: use-after-free");
    ("cve-2017-15649",
     "(B2 => A6) /\\ (A2 => B11) --> (A6 => B12) --> (B17 => A12) --> \
      kernel BUG (BUG_ON)");
    ("cve-2017-10661",
     "(B1 => A3) --> list corruption (CONFIG_DEBUG_LIST)");
    ("cve-2017-7533",
     "(B1 => A3) /\\ (A2 => B2) --> KASAN: slab-out-of-bounds");
    ("cve-2017-2671",
     "(B1 => A2) --> (A1 => B2) --> general protection fault");
    ("cve-2017-2636", "(B1 => A2) --> KASAN: double-free");
    ("cve-2016-10200",
     "(B0 => A0) --> (A2 => B1) --> kernel BUG (BUG_ON)");
    ("cve-2016-8655",
     "(B1 => A3) --> (A2 => B2) --> KASAN: use-after-free");
    ("syz-01",
     "(B1 => A1) --> (B2 => A2) /\\ (A3 => B4) --> KASAN: \
      slab-out-of-bounds");
    ("syz-02",
     "(A1 => B1) --> (B2 => A2) --> (A3 => B3) --> (B4 => A4_ld) --> \
      kernel BUG (BUG_ON)");
    ("syz-03",
     "(A1 => B1) --> (A2 => B2) --> (B3 => A3) --> KASAN: use-after-free");
    ("syz-04", "(A1 => B1) --> (K1 => A2) --> KASAN: use-after-free");
    ("syz-05", "(K1 => A2) --> KASAN: use-after-free");
    ("syz-06",
     "(B2 => A6) /\\ (A2 => B11) --> (A6 => B12) --> (B13 => A8) --> \
      general protection fault");
    ("syz-07", "(B1 => A2) --> (A3 => B2) --> KASAN: use-after-free");
    ("syz-08",
     "(B2 => A6) /\\ (A2 => B11) --> (A6 => B12) --> (B13 => A12) --> \
      KASAN: use-after-free");
    ("syz-09", "(A0 => B0) --> (A1 => B3) --> memory leak");
    ("syz-10", "(A1 => B1) --> (K2 => A2) --> kernel BUG (BUG_ON)");
    ("syz-11", "(A1 => B2) --> (B4 => A3) --> WARNING");
    ("syz-12", "(B2 => A1) --> (A3 => T1) --> KASAN: use-after-free");
    ("ext-irq", "(I1 => A2) --> (A3 => I2) --> KASAN: use-after-free");
    ("ext-lock", "(B2 => A3) --> null-ptr-deref") ]

let test_golden_chain (bug : Bugs.Bug.t) () =
  let r = report_of bug in
  match r.chain, List.assoc_opt bug.id golden_chains with
  | Some chain, Some expected ->
    Alcotest.(check string) "golden chain" expected
      (Aitia.Chain.to_string chain)
  | None, _ -> Alcotest.fail "no chain"
  | _, None -> Alcotest.failf "no golden chain recorded for %s" bug.id

(* Paper-vs-measured sanity for the corpus-wide conciseness claim
   (§5.2): chains are a few races; detected races are many more. *)
let test_conciseness_aggregate () =
  let syz =
    List.filter
      (fun ((b : Bugs.Bug.t), _) ->
        match b.source with Bugs.Bug.Syzkaller _ -> true | _ -> false)
      (Lazy.force reports)
  in
  let metrics =
    List.filter_map (fun (_, (r : Aitia.Diagnose.report)) -> r.metrics) syz
  in
  checki "all 12 measured" 12 (List.length metrics);
  let avg f =
    List.fold_left (fun acc m -> acc +. float_of_int (f m)) 0.0 metrics
    /. float_of_int (List.length metrics)
  in
  let avg_chain = avg (fun (m : Aitia.Diagnose.metrics) -> m.races_in_chain) in
  let avg_races = avg (fun (m : Aitia.Diagnose.metrics) -> m.races_detected) in
  let avg_instrs =
    avg (fun (m : Aitia.Diagnose.metrics) -> m.mem_accessing_instrs)
  in
  checkb "chains are small (paper: 3.0 avg)" true
    (avg_chain >= 1.0 && avg_chain <= 5.0);
  checkb "chains are much smaller than the race count" true
    (avg_races > 2.0 *. avg_chain);
  checkb "instructions dwarf the chain" true (avg_instrs > 10.0 *. avg_chain)

let per_bug_cases =
  List.concat_map
    (fun ((bug : Bugs.Bug.t), _) ->
      [ Alcotest.test_case (bug.id ^ " reproduces") `Quick
          (test_reproduced bug);
        Alcotest.test_case (bug.id ^ " interleavings") `Quick
          (test_interleavings bug);
        Alcotest.test_case (bug.id ^ " chain shape") `Quick
          (test_chain_shape bug);
        Alcotest.test_case (bug.id ^ " ambiguity") `Quick
          (test_ambiguity bug);
        Alcotest.test_case (bug.id ^ " kthread") `Quick
          (test_kthread_involvement bug);
        Alcotest.test_case (bug.id ^ " no noise in chain") `Quick
          (test_chain_has_no_noise bug);
        Alcotest.test_case (bug.id ^ " failure type") `Quick
          (test_failure_type_matches bug);
        Alcotest.test_case (bug.id ^ " golden chain") `Quick
          (test_golden_chain bug) ])
    (Lazy.force reports)

let () =
  Alcotest.run "bugs"
    [ ("corpus", per_bug_cases);
      ( "aggregate",
        [ Alcotest.test_case "conciseness" `Quick test_conciseness_aggregate ]
      ) ]
