(* Tests for the prior-work comparators: Kairux, cooperative bug
   localization, MUVI, and the Table-1 / §5.3 scoring. *)

module Iid = Ksim.Access.Iid

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let diagnose (bug : Bugs.Bug.t) =
  Aitia.Diagnose.diagnose ?max_interleavings:bug.max_interleavings
    (bug.case ())

let evidence (bug : Bugs.Bug.t) =
  match Baselines.Requirements.evidence_of_report (diagnose bug) with
  | Some ev -> ev
  | None -> Alcotest.failf "%s not diagnosed" bug.id

let capability (bug : Bugs.Bug.t) =
  Baselines.Requirements.capability
    ~single_variable:(bug.variables = Bugs.Bug.Single)
    (evidence bug)

(* --- Kairux ------------------------------------------------------------- *)

let test_kairux_lcp () =
  let mk labels =
    List.map (fun l -> Iid.make ~tid:0 ~label:l ~occ:1) labels
  in
  checki "prefix length" 2
    (Baselines.Kairux.common_prefix_length
       (mk [ "a"; "b"; "c" ])
       (mk [ "a"; "b"; "x" ]))

let test_kairux_inflection_point () =
  let ev = evidence Bugs.Fig1_nullderef.bug in
  let r =
    Baselines.Kairux.analyze ~failing:ev.failing ~passing:ev.passing
  in
  checkb "found an inflection point" true (r.inflection <> None);
  checkb "deviates after a shared prefix" true (r.lcp_length > 0)

let test_kairux_single_instruction_insufficient () =
  (* Multi-race chains cannot be covered by one instruction. *)
  let cap = capability Bugs.Cve_2017_15649.bug in
  checkb "kairux fails on multi-variable" false cap.cap_kairux

(* --- Cooperative bug localization ----------------------------------------- *)

let test_cbl_finds_order_violation () =
  let ev = evidence Bugs.Syz_05_rxrpc_uaf.bug in
  let r =
    Baselines.Coop_bug_localization.analyze ~failing:[ ev.failing ]
      ~passing:
        (ev.passing
        @ Baselines.Requirements.production_runs ev.report.case.group)
  in
  match Baselines.Coop_bug_localization.top r with
  | Some { pattern = Baselines.Coop_bug_localization.Order_violation _; score; _ }
    ->
    checkb "perfectly correlated" true (score > 0.9)
  | Some _ -> Alcotest.fail "expected an order violation on top"
  | None -> Alcotest.fail "no pattern"

let test_cbl_handles_single_variable_bugs () =
  List.iter
    (fun bug ->
      let cap = capability bug in
      checkb (bug.Bugs.Bug.id ^ " diagnosed by CBL") true cap.cap_cbl)
    [ Bugs.Syz_05_rxrpc_uaf.bug; Bugs.Syz_11_floppy_warn.bug;
      Bugs.Syz_12_bluetooth_uaf.bug ]

let test_cbl_fails_multi_variable_bugs () =
  List.iter
    (fun bug ->
      let cap = capability bug in
      checkb (bug.Bugs.Bug.id ^ " beyond CBL") false cap.cap_cbl)
    [ Bugs.Syz_03_l2tp_uaf.bug; Bugs.Syz_06_bpf_gpf.bug;
      Bugs.Syz_08_can_j1939.bug ]

(* --- MUVI ------------------------------------------------------------------ *)

let test_muvi_infers_tight_correlation () =
  let ev = evidence Bugs.Cve_2017_7533.bug in
  let r = Baselines.Muvi.analyze (ev.failing :: ev.passing) in
  checkb "(len, ptr) correlated" true
    (Baselines.Muvi.inferred r (Ksim.Addr.Global "d_name_len")
       (Ksim.Addr.Global "d_name_ptr"))

let test_muvi_explains_tight_multis_only () =
  let expect_yes =
    [ Bugs.Syz_03_l2tp_uaf.bug; Bugs.Syz_06_bpf_gpf.bug;
      Bugs.Syz_08_can_j1939.bug ]
  in
  let expect_no =
    [ Bugs.Syz_01_l2tp_oob.bug (* loose *); Bugs.Syz_09_seccomp_leak.bug
      (* loose *); Bugs.Syz_05_rxrpc_uaf.bug (* single *) ]
  in
  List.iter
    (fun bug ->
      checkb (bug.Bugs.Bug.id ^ " within MUVI") true (capability bug).cap_muvi)
    expect_yes;
  List.iter
    (fun bug ->
      checkb
        (bug.Bugs.Bug.id ^ " outside MUVI")
        false (capability bug).cap_muvi)
    expect_no

(* --- DataCollider ------------------------------------------------------------ *)

let test_data_collider_finds_races () =
  let bug = Bugs.Cve_2017_15649.bug in
  let case = bug.case () in
  let slice = List.hd (Trace.Slicer.slices case.history) in
  match Aitia.Diagnose.realize case slice with
  | None -> Alcotest.fail "no slice"
  | Some (group, prologue) ->
    let r = Baselines.Data_collider.detect ~rounds:48 ~prologue group in
    checkb "placed traps" true (r.traps_placed = 48);
    checkb "detected races" true (List.length r.races > 0);
    (* Reports are deduplicated static pairs. *)
    let keys = List.map Baselines.Data_collider.race_key r.races in
    checki "deduplicated" (List.length keys)
      (List.length (List.sort_uniq String.compare keys))

let test_data_collider_benign_burden () =
  (* Most of what a sampling detector reports is benign — the Sec. 2.3
     motivation for Causality Analysis. *)
  let bug = Bugs.Cve_2018_12232.bug in
  let case = bug.case () in
  let slice = List.hd (Trace.Slicer.slices case.history) in
  match Aitia.Diagnose.realize case slice with
  | None -> Alcotest.fail "no slice"
  | Some (group, prologue) ->
    let r = Baselines.Data_collider.detect ~rounds:64 ~prologue group in
    let report = diagnose bug in
    (match report.chain with
    | None -> Alcotest.fail "no chain"
    | Some chain ->
      let frac = Baselines.Data_collider.benign_fraction r chain in
      checkb "mostly benign" true (frac > 0.5))

(* --- Table 1 ---------------------------------------------------------------- *)

let test_table1_shape () =
  let caps =
    List.map capability
      [ Bugs.Syz_03_l2tp_uaf.bug; Bugs.Syz_05_rxrpc_uaf.bug;
        Bugs.Syz_06_bpf_gpf.bug; Bugs.Syz_11_floppy_warn.bug ]
  in
  let scores = Baselines.Requirements.table1 caps in
  let find tool =
    List.find
      (fun (s : Baselines.Requirements.score) ->
        String.length s.tool >= String.length tool
        && String.sub s.tool 0 (String.length tool) = tool)
      scores
  in
  let aitia = find "AITIA" in
  checkb "AITIA comprehensive" true
    (aitia.comprehensive = Baselines.Requirements.Satisfied);
  checkb "AITIA concise" true
    (aitia.concise = Baselines.Requirements.Satisfied);
  let kairux = find "Kairux" in
  checkb "Kairux not comprehensive" true
    (kairux.comprehensive <> Baselines.Requirements.Satisfied);
  checkb "Kairux pattern-agnostic" true
    (kairux.pattern_agnostic = Baselines.Requirements.Satisfied);
  let cbl = find "CBL" in
  checkb "CBL pattern-bound" true
    (cbl.pattern_agnostic = Baselines.Requirements.Unsatisfied);
  let rept = find "Failure reproduction" in
  checkb "replay not concise" true
    (rept.concise = Baselines.Requirements.Unsatisfied)

(* --- §5.3 full sweep --------------------------------------------------------- *)

let test_section_5_3_totals () =
  let caps =
    List.map
      (fun (bug : Bugs.Bug.t) ->
        Baselines.Requirements.capability
          ~single_variable:(bug.variables = Bugs.Bug.Single)
          (evidence bug))
      Bugs.Registry.syzkaller
  in
  let count f = List.length (List.filter f caps) in
  checki "AITIA diagnoses all 12" 12
    (count (fun c -> c.Baselines.Requirements.cap_aitia));
  (* "Snorlax and Gist cannot diagnose the half of bugs" *)
  checki "CBL diagnoses the single-variable half" 6
    (count (fun c -> c.Baselines.Requirements.cap_cbl));
  (* "only 3 out of 12 failures satisfy the assumption of MUVI" *)
  checki "MUVI explains 3" 3
    (count (fun c -> c.Baselines.Requirements.cap_muvi))

let () =
  Alcotest.run "baselines"
    [ ( "kairux",
        [ Alcotest.test_case "lcp" `Quick test_kairux_lcp;
          Alcotest.test_case "inflection point" `Quick
            test_kairux_inflection_point;
          Alcotest.test_case "single instruction" `Quick
            test_kairux_single_instruction_insufficient ] );
      ( "cbl",
        [ Alcotest.test_case "order violation" `Quick
            test_cbl_finds_order_violation;
          Alcotest.test_case "single-variable ok" `Quick
            test_cbl_handles_single_variable_bugs;
          Alcotest.test_case "multi-variable fails" `Quick
            test_cbl_fails_multi_variable_bugs ] );
      ( "muvi",
        [ Alcotest.test_case "tight correlation" `Quick
            test_muvi_infers_tight_correlation;
          Alcotest.test_case "assumption boundary" `Quick
            test_muvi_explains_tight_multis_only ] );
      ( "data-collider",
        [ Alcotest.test_case "finds races" `Quick
            test_data_collider_finds_races;
          Alcotest.test_case "benign burden" `Quick
            test_data_collider_benign_burden ] );
      ( "scoring",
        [ Alcotest.test_case "table 1" `Quick test_table1_shape;
          Alcotest.test_case "section 5.3" `Quick test_section_5_3_totals ]
      ) ]
