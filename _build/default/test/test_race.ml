(* Unit tests for data-race extraction and structural relations. *)

open Ksim.Program.Build
module Iid = Ksim.Access.Iid
module Race = Aitia.Race
module Schedule = Hypervisor.Schedule
module Controller = Hypervisor.Controller

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let thread name instrs =
  { Ksim.Program.spec_name = name;
    context = Ksim.Program.Syscall { call = name; sysno = 0 };
    program = Ksim.Program.make ~name instrs;
    resources = [] }

let group ?entries ?globals threads =
  Ksim.Program.group ?entries ?globals ~name:"test" threads

(* Run a group under an explicit plan of (tid, label) pairs. *)
let run_plan grp plan =
  let plan =
    Schedule.plan
      (List.map (fun (tid, label) -> Iid.make ~tid ~label ~occ:1) plan)
  in
  Controller.run (Ksim.Machine.create grp) (Schedule.plan_policy plan)

let race_strings races =
  List.map (fun r -> Fmt.str "%a" Race.pp_short r) races

(* --- of_trace --------------------------------------------------------- *)

let test_write_read_race () =
  let grp =
    group
      [ thread "A" [ store "a1" (g "x") (cint 1) ];
        thread "B" [ load "b1" "v" (g "x") ] ]
  in
  let o = run_plan grp [ (0, "a1"); (1, "b1") ] in
  Alcotest.(check (list string)) "one race" [ "a1 => b1" ]
    (race_strings (Race.of_trace o.trace))

let test_read_read_no_race () =
  let grp =
    group
      [ thread "A" [ load "a1" "v" (g "x") ];
        thread "B" [ load "b1" "v" (g "x") ] ]
  in
  let o = run_plan grp [ (0, "a1"); (1, "b1") ] in
  checki "no race" 0 (List.length (Race.of_trace o.trace))

let test_same_thread_no_race () =
  let grp =
    group
      [ thread "A"
          [ store "a1" (g "x") (cint 1); load "a2" "v" (g "x") ] ]
  in
  let o = run_plan grp [ (0, "a1"); (0, "a2") ] in
  checki "no race" 0 (List.length (Race.of_trace o.trace))

let test_read_skips_to_first_write () =
  (* A1 R, B1 R, B2 W: the race is A1 => B2, across the interposed read
     (the CVE-2017-2636 shape). *)
  let grp =
    group
      [ thread "A" [ load "a1" "v" (g "x") ];
        thread "B" [ load "b1" "v" (g "x"); store "b2" (g "x") (cint 1) ] ]
  in
  let o = run_plan grp [ (0, "a1"); (1, "b1"); (1, "b2") ] in
  Alcotest.(check (slist string compare)) "race across read"
    [ "a1 => b2" ]
    (race_strings (Race.of_trace o.trace))

let test_supersession () =
  (* A1 W, A2 W, B1 R: A2 supersedes A1; only A2 => B1 is a race. *)
  let grp =
    group
      [ thread "A"
          [ store "a1" (g "x") (cint 1); store "a2" (g "x") (cint 2) ];
        thread "B" [ load "b1" "v" (g "x") ] ]
  in
  let o = run_plan grp [ (0, "a1"); (0, "a2"); (1, "b1") ] in
  Alcotest.(check (list string)) "superseded" [ "a2 => b1" ]
    (race_strings (Race.of_trace o.trace))

let test_free_conflicts_with_field () =
  let grp =
    group
      [ thread "A"
          [ alloc "a0" "p" "obj";
            store "a1" (g "ptr") (reg "p");
            free "a2" (reg "p") ];
        thread "B"
          [ load "b1" "q" (g "ptr"); load "b2" "v" (reg "q" **-> "f") ] ]
  in
  (* B reads the pointer, A frees, B dereferences: UAF race a2 => b2. *)
  let o =
    run_plan grp [ (0, "a0"); (0, "a1"); (1, "b1"); (0, "a2"); (1, "b2") ]
  in
  checkb "failed" true
    (match o.verdict with Controller.Failed _ -> true | _ -> false);
  let races = race_strings (Race.of_trace o.trace) in
  checkb "free-use race found" true (List.mem "a2 => b2" races)

(* --- pending races ------------------------------------------------------ *)

let test_pending_race_after_failure () =
  (* B's assertion fires before A's write executes; the write is known
     from the access database and becomes a pending race (the B17 => A12
     shape of Figure 6). *)
  let grp =
    group
      [ thread "A" [ store "a1" (g "x") (cint 1) ];
        thread "B"
          [ load "b1" "v" (g "x"); bug_on "b2" (Eq (reg "v", cint 0)) ] ]
  in
  (* Learn A's access in a passing run. *)
  let pass = run_plan grp [ (0, "a1"); (1, "b1"); (1, "b2") ] in
  checkb "passes" true (pass.verdict = Controller.Completed);
  let db =
    Ksim.Kcov.add_trace
      ~thread_base:(Ksim.Machine.thread_base pass.final)
      Ksim.Kcov.empty pass.trace
  in
  (* Failing order: b1 reads 0, BUG fires, a1 never runs. *)
  let fail_ = run_plan grp [ (1, "b1"); (1, "b2"); (0, "a1") ] in
  checkb "fails" true
    (match fail_.verdict with Controller.Failed _ -> true | _ -> false);
  let pending =
    Race.pending_of_failure ~db ~final:fail_.final fail_.trace
  in
  Alcotest.(check (list string)) "pending race" [ "b1 => a1" ]
    (race_strings pending)

(* --- structural relations ----------------------------------------------- *)

let access tid label time addr kind =
  { Ksim.Access.iid = Iid.make ~tid ~label ~occ:1; addr; kind; time; held = [] }

let test_surrounds () =
  let x = Ksim.Addr.Global "x" and y = Ksim.Addr.Global "y" in
  (* trace order: A1(x) A2(y) B1(y) B2(x) — Figure 7 *)
  let outer =
    { Race.first = access 0 "A1" 1 x Ksim.Instr.Write;
      second = access 1 "B2" 4 x Ksim.Instr.Read }
  in
  let inner =
    { Race.first = access 0 "A2" 2 y Ksim.Instr.Write;
      second = access 1 "B1" 3 y Ksim.Instr.Read }
  in
  checkb "outer surrounds inner" true (Race.surrounds outer inner);
  checkb "inner does not surround outer" false (Race.surrounds inner outer);
  checkb "not self" false (Race.surrounds outer outer)

let test_occurred_in_is_order_aware () =
  let grp =
    group
      [ thread "A" [ store "a1" (g "x") (cint 1) ];
        thread "B" [ load "b1" "v" (g "x") ] ]
  in
  let o = run_plan grp [ (0, "a1"); (1, "b1") ] in
  let r = List.hd (Race.of_trace o.trace) in
  checkb "occurred" true (Race.occurred_in o.trace r);
  (* Reversed order: same endpoints, opposite interleaving. *)
  let o' = run_plan grp [ (1, "b1"); (0, "a1") ] in
  checkb "inverted does not occur" false (Race.occurred_in o'.trace r)

let test_race_key_direction () =
  let x = Ksim.Addr.Global "x" in
  let a = access 0 "A1" 1 x Ksim.Instr.Write in
  let b = access 1 "B1" 2 x Ksim.Instr.Read in
  let r1 = { Race.first = a; second = b } in
  let r2 = { Race.first = b; second = a } in
  checkb "direction matters" false (Race.equal r1 r2);
  checkb "self equal" true (Race.equal r1 r1)

let test_cs_order_annotation () =
  let grp =
    group
      [ thread "A"
          [ lock "al" "m"; store "a1" (g "x") (cint 1); unlock "au" "m" ];
        thread "B"
          [ lock "bl" "m"; load "b1" "v" (g "x"); unlock "bu" "m" ] ]
  in
  let o =
    run_plan grp
      [ (0, "al"); (0, "a1"); (0, "au"); (1, "bl"); (1, "b1"); (1, "bu") ]
  in
  (match Race.of_trace o.trace with
  | [ r ] ->
    checkb "lock-protected pair flagged" true (Race.is_cs_order r)
  | rs -> Alcotest.failf "expected one race, got %d" (List.length rs));
  (* An unlocked pair is a plain data race. *)
  let grp2 =
    group
      [ thread "A" [ store "a1" (g "x") (cint 1) ];
        thread "B" [ load "b1" "v" (g "x") ] ]
  in
  let o2 = run_plan grp2 [ (0, "a1"); (1, "b1") ] in
  match Race.of_trace o2.trace with
  | [ r ] -> checkb "unlocked pair not flagged" false (Race.is_cs_order r)
  | _ -> Alcotest.fail "expected one race"

let test_location_sequences_merges_whole () =
  let x = Ksim.Addr.Field (3, "f") in
  let w = Ksim.Addr.Whole 3 in
  let accesses =
    [ access 0 "a" 1 x Ksim.Instr.Read; access 1 "k" 2 w Ksim.Instr.Write ]
  in
  let seqs = Race.location_sequences accesses in
  let field_seq =
    List.assoc x (List.map (fun (a, s) -> (a, List.length s)) seqs)
  in
  checki "whole merged into field sequence" 2 field_seq

let () =
  Alcotest.run "race"
    [ ( "of_trace",
        [ Alcotest.test_case "write/read" `Quick test_write_read_race;
          Alcotest.test_case "read/read" `Quick test_read_read_no_race;
          Alcotest.test_case "same thread" `Quick test_same_thread_no_race;
          Alcotest.test_case "across reads" `Quick
            test_read_skips_to_first_write;
          Alcotest.test_case "supersession" `Quick test_supersession;
          Alcotest.test_case "free/field" `Quick
            test_free_conflicts_with_field ] );
      ( "pending",
        [ Alcotest.test_case "after failure" `Quick
            test_pending_race_after_failure ] );
      ( "relations",
        [ Alcotest.test_case "surrounds" `Quick test_surrounds;
          Alcotest.test_case "occurred_in order" `Quick
            test_occurred_in_is_order_aware;
          Alcotest.test_case "key direction" `Quick test_race_key_direction;
          Alcotest.test_case "cs-order flag" `Quick test_cs_order_annotation;
          Alcotest.test_case "whole merge" `Quick
            test_location_sequences_merges_whole ] ) ]
