test/test_props.ml: Aitia Alcotest Fmt Fun Fuzz Hypervisor Ksim List QCheck QCheck_alcotest String
