test/test_fuzz.ml: Aitia Alcotest Bugs Fuzz Ksim List Trace
