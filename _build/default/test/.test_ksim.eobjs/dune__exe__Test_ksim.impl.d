test/test_ksim.ml: Access Addr Alcotest Failure Instr Kcov Ksim List Machine Map Program String Value
