test/test_hypervisor.ml: Alcotest Float Fmt Hypervisor Ksim List String
