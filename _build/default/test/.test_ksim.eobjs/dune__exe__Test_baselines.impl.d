test/test_baselines.ml: Aitia Alcotest Baselines Bugs Ksim List String Trace
