test/test_core.ml: Aitia Alcotest Bugs Hypervisor Ksim List String Trace
