test/test_race.ml: Aitia Alcotest Fmt Hypervisor Ksim List
