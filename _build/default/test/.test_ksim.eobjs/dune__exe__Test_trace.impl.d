test/test_trace.ml: Alcotest Fmt Ksim List String Trace
