test/test_bugs.ml: Aitia Alcotest Bugs Fmt Ksim Lazy List String
