(* Unit tests for the kernel-simulator substrate. *)

open Ksim
open Ksim.Program.Build

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- helpers ----------------------------------------------------------- *)

let thread name instrs =
  { Program.spec_name = name;
    context = Program.Syscall { call = name; sysno = 0 };
    program = Program.make ~name instrs;
    resources = [] }

let group ?entries ?globals ?locks threads =
  Program.group ?entries ?globals ?locks ~name:"test" threads

(* Run thread [tid] to completion (or failure/block), returning machine +
   events. *)
let run_thread m tid =
  let rec go m acc =
    match Machine.step m tid with
    | Ok (m, e) -> go m (e :: acc)
    | Error _ -> (m, List.rev acc)
  in
  go m []

let run_all m =
  let rec go m acc =
    match Machine.runnable m with
    | [] -> (Machine.check_leaks m, List.rev acc)
    | tid :: _ -> (
      match Machine.step m tid with
      | Ok (m, e) -> go m (e :: acc)
      | Error _ -> (m, List.rev acc))
  in
  go m []

(* --- value ------------------------------------------------------------- *)

let test_value_truthy () =
  checkb "null falsy" false (Value.truthy Value.Null);
  checkb "zero falsy" false (Value.truthy (Value.Int 0));
  checkb "int truthy" true (Value.truthy (Value.Int 3));
  checkb "neg truthy" true (Value.truthy (Value.Int (-1)));
  checkb "ptr truthy" true (Value.truthy (Value.ptr ~obj:0 ~gen:0));
  checkb "list truthy" true (Value.truthy (Value.List []))

let test_value_equal () =
  checkb "null = 0" true (Value.equal Value.Null (Value.Int 0));
  checkb "0 = null" true (Value.equal (Value.Int 0) Value.Null);
  checkb "ints" true (Value.equal (Value.Int 7) (Value.Int 7));
  checkb "ptr vs int" false
    (Value.equal (Value.ptr ~obj:1 ~gen:0) (Value.Int 1));
  checkb "same ptr" true
    (Value.equal (Value.ptr ~obj:1 ~gen:0) (Value.ptr ~obj:1 ~gen:0));
  checkb "diff obj" false
    (Value.equal (Value.ptr ~obj:1 ~gen:0) (Value.ptr ~obj:2 ~gen:0));
  checkb "lists" true
    (Value.equal
       (Value.List [ { Value.obj = 1; gen = 0 } ])
       (Value.List [ { Value.obj = 1; gen = 0 } ]))

let test_value_is_null () =
  checkb "null" true (Value.is_null Value.Null);
  checkb "zero" true (Value.is_null (Value.Int 0));
  checkb "one" false (Value.is_null (Value.Int 1))

(* --- addr -------------------------------------------------------------- *)

let test_addr_overlap () =
  let f = Addr.Field (3, "x") in
  let g = Addr.Global "g" in
  checkb "equal overlaps" true (Addr.overlaps f f);
  checkb "whole/field" true (Addr.overlaps (Addr.Whole 3) f);
  checkb "field/whole" true (Addr.overlaps f (Addr.Whole 3));
  checkb "whole/index" true (Addr.overlaps (Addr.Whole 3) (Addr.Index (3, 0)));
  checkb "diff obj" false (Addr.overlaps (Addr.Whole 4) f);
  checkb "global/whole" false (Addr.overlaps g (Addr.Whole 3));
  checkb "diff fields" false (Addr.overlaps f (Addr.Field (3, "y")))

let test_addr_compare () =
  let xs =
    [ Addr.Global "b"; Addr.Field (1, "a"); Addr.Whole 0; Addr.Global "a";
      Addr.Index (1, 2) ]
  in
  let sorted = List.sort Addr.compare xs in
  checki "stable size" 5 (List.length sorted);
  checkb "total order" true
    (List.for_all2 (fun a b -> Addr.compare a b = 0) sorted sorted);
  (* Map round-trip *)
  let m =
    List.fold_left (fun m a -> Addr.Map.add a () m) Addr.Map.empty xs
  in
  checki "map size" 5 (Addr.Map.cardinal m)

(* --- program ----------------------------------------------------------- *)

let test_program_labels () =
  let p =
    Program.make ~name:"p"
      [ nop "a"; goto "b" "c"; nop "c"; return "d" ]
  in
  checki "length" 4 (Program.length p);
  checki "pos of c" 2 (Program.position_of_label p "c");
  check (Alcotest.list Alcotest.string) "labels" [ "a"; "b"; "c"; "d" ]
    (Program.labels p)

let test_program_duplicate_label () =
  Alcotest.check_raises "duplicate" (Program.Duplicate_label "x") (fun () ->
      ignore (Program.make ~name:"p" [ nop "x"; nop "x" ]))

let test_program_dangling_goto () =
  Alcotest.check_raises "dangling" (Program.Unknown_label "nowhere")
    (fun () -> ignore (Program.make ~name:"p" [ goto "a" "nowhere" ]))

(* --- machine: basics ---------------------------------------------------- *)

let test_assign_branch () =
  let t =
    thread "A"
      [ assign "i0" "x" (cint 5);
        branch_if "i1" (Gt (reg "x", cint 3)) "skip";
        assign "i2" "x" (cint 0);
        assign "skip" "y" (Add (reg "x", cint 1)) ]
  in
  let m = Machine.create (group [ t ]) in
  let m, events = run_thread m 0 in
  checki "events" 3 (List.length events);
  checkb "x kept" true (Machine.reg m 0 "x" = Some (Value.Int 5));
  checkb "y = 6" true (Machine.reg m 0 "y" = Some (Value.Int 6))

let test_load_store_defaults () =
  let t =
    thread "A"
      [ load "l" "a" (g "uninitialized");
        store "s" (g "other") (cint 9);
        load "l2" "b" (g "other") ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  checkb "zero default" true (Machine.reg m 0 "a" = Some (Value.Int 0));
  checkb "stored" true (Machine.reg m 0 "b" = Some (Value.Int 9))

let test_globals_initialized () =
  let t = thread "A" [ load "l" "x" (g "flag") ] in
  let m =
    Machine.create (group ~globals:[ ("flag", Value.Int 42) ] [ t ])
  in
  let m, _ = run_thread m 0 in
  checkb "init" true (Machine.reg m 0 "x" = Some (Value.Int 42))

let test_null_dereference () =
  let t = thread "A" [ load "l" "x" (Deref (cnull, "f")) ] in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  match Machine.failed m with
  | Some (Failure.Null_dereference { at }) ->
    check Alcotest.string "at" "l" at.label
  | _ -> Alcotest.fail "expected null deref"

let test_gpf_on_int_deref () =
  let t =
    thread "A"
      [ assign "a" "p" (cint 0xdead); store "s" (reg "p" **-> "f") (cint 1) ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  match Machine.failed m with
  | Some (Failure.General_protection_fault _) -> ()
  | _ -> Alcotest.fail "expected GPF"

let test_alloc_fields_and_uaf () =
  let t =
    thread "A"
      [ alloc "a" "p" "obj" ~fields:[ ("v", cint 7) ];
        load "l" "x" (reg "p" **-> "v");
        free "f" (reg "p");
        load "l2" "y" (reg "p" **-> "v") ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  (match Machine.failed m with
  | Some (Failure.Use_after_free { at; freed_at = Some fa; _ }) ->
    check Alcotest.string "fault" "l2" at.label;
    check Alcotest.string "freed at" "f" fa.label
  | _ -> Alcotest.fail "expected UAF");
  checkb "field read ok before free" true
    (Machine.reg m 0 "x" = Some (Value.Int 7))

let test_double_free () =
  let t =
    thread "A"
      [ alloc "a" "p" "obj"; free "f1" (reg "p"); free "f2" (reg "p") ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  match Machine.failed m with
  | Some (Failure.Double_free _) -> ()
  | _ -> Alcotest.fail "expected double free"

let test_free_null_is_noop () =
  let t = thread "A" [ free "f" cnull; assign "a" "x" (cint 1) ] in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  checkb "no failure" true (Machine.failed m = None);
  checkb "continued" true (Machine.reg m 0 "x" = Some (Value.Int 1))

let test_out_of_bounds () =
  let t =
    thread "A"
      [ alloc "a" "p" "arr" ~slots:3;
        store "s" (reg "p" **@ cint 2) (cint 1);
        store "s2" (reg "p" **@ cint 3) (cint 1) ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  match Machine.failed m with
  | Some (Failure.Out_of_bounds { index = 3; size = 3; _ }) -> ()
  | _ -> Alcotest.fail "expected OOB at 3"

let test_bug_on_and_warn_on () =
  let t1 = thread "A" [ bug_on "b" (cint 1) ] in
  let m, _ = run_thread (Machine.create (group [ t1 ])) 0 in
  (match Machine.failed m with
  | Some (Failure.Assertion_violation _) -> ()
  | _ -> Alcotest.fail "expected BUG_ON");
  let t2 = thread "A" [ warn_on "w" (cint 1) ] in
  let m, _ = run_thread (Machine.create (group [ t2 ])) 0 in
  (match Machine.failed m with
  | Some (Failure.Warning _) -> ()
  | _ -> Alcotest.fail "expected WARNING");
  let t3 = thread "A" [ bug_on "b" (cint 0); warn_on "w" (cint 0) ] in
  let m, _ = run_thread (Machine.create (group [ t3 ])) 0 in
  checkb "no failure" true (Machine.failed m = None)

(* --- machine: locks ------------------------------------------------------ *)

let test_lock_mutual_exclusion () =
  let ta = thread "A" [ lock "l1" "mu"; nop "n"; unlock "u1" "mu" ] in
  let tb = thread "B" [ lock "l2" "mu"; unlock "u2" "mu" ] in
  let m = Machine.create (group ~locks:[ "mu" ] [ ta; tb ]) in
  (* A acquires. *)
  let m, e =
    match Machine.step m 0 with Ok x -> x | Error _ -> Alcotest.fail "step"
  in
  checkb "acquire event" true (e.lock_op = Some ("mu", `Acquire));
  checkb "holder" true (Machine.lock_holder m "mu" = Some 0);
  (* B blocks. *)
  checkb "B blocked" true (Machine.blocked_on m 1 = Some "mu");
  checkb "B not runnable" false (List.mem 1 (Machine.runnable m));
  (match Machine.step m 1 with
  | Error (Machine.Blocked_on_lock "mu") -> ()
  | _ -> Alcotest.fail "expected blocked");
  (* A releases; B proceeds. *)
  let m, _ = run_thread m 0 in
  checkb "released" true (Machine.lock_holder m "mu" = None);
  checkb "B runnable" true (List.mem 1 (Machine.runnable m));
  let m, _ = run_thread m 1 in
  checkb "B done" true (Machine.is_done m 1)

let test_lock_self_deadlock () =
  let t = thread "A" [ lock "l1" "mu"; lock "l2" "mu" ] in
  let m = Machine.create (group ~locks:[ "mu" ] [ t ]) in
  let m, _ = run_thread m 0 in
  checkb "blocked on own lock" true (Machine.blocked_on m 0 = Some "mu");
  checkb "not runnable" true (Machine.runnable m = [])

let test_unlock_not_held_is_model_error () =
  let t = thread "A" [ unlock "u" "mu" ] in
  let m = Machine.create (group ~locks:[ "mu" ] [ t ]) in
  (match Machine.step m 0 with
  | exception Machine.Model_error _ -> ()
  | _ -> Alcotest.fail "expected model error")

(* --- machine: background threads ---------------------------------------- *)

let test_queue_work_spawns () =
  let worker = ("w", Program.make ~name:"w" [ store "k" (g "done_") (reg "arg") ]) in
  let t =
    thread "A" [ assign "a" "v" (cint 5); queue_work "q" "w" ~arg:(reg "v") ]
  in
  let m = Machine.create (group ~entries:[ worker ] [ t ]) in
  let m, events = run_thread m 0 in
  let spawned =
    List.concat_map (fun (e : Machine.event) -> e.spawned) events
  in
  checki "one spawn" 1 (List.length spawned);
  let tid, entry = List.hd spawned in
  check Alcotest.string "entry" "w" entry;
  checkb "context" true (Machine.thread_context m tid = Program.Kworker);
  checkb "base" true (Machine.thread_base m tid = "w");
  checkb "parent" true (Machine.thread_parent m tid = Some 0);
  (* The worker received the argument. *)
  let m, _ = run_thread m tid in
  checkb "arg delivered" true
    (Machine.mem_read m (Addr.Global "done_") = Value.Int 5)

let test_enable_irq_spawns_hardirq () =
  let handler = ("h", Program.make ~name:"h" [ store "i1" (g "hit") (reg "arg") ]) in
  let t =
    thread "A" [ assign "a" "v" (cint 9); i "e" (Instr.Enable_irq { entry = "h"; arg = Reg "v" }) ]
  in
  let m = Machine.create (group ~entries:[ handler ] [ t ]) in
  let m, events = run_thread m 0 in
  let spawned =
    List.concat_map (fun (e : Machine.event) -> e.spawned) events
  in
  checki "one handler" 1 (List.length spawned);
  let tid, _ = List.hd spawned in
  checkb "hardirq context" true (Machine.thread_context m tid = Program.Hardirq);
  checkb "not started yet" false (Machine.has_started m tid);
  let m, _ = run_thread m tid in
  checkb "started" true (Machine.has_started m tid);
  checkb "arg delivered" true
    (Machine.mem_read m (Addr.Global "hit") = Value.Int 9)

let test_rcu_and_timer_contexts () =
  let cb = ("cb", Program.make ~name:"cb" [ nop "n" ]) in
  let t = thread "A" [ call_rcu "r" "cb"; arm_timer "t" "cb" ] in
  let m = Machine.create (group ~entries:[ cb ] [ t ]) in
  let m, events = run_thread m 0 in
  let spawned =
    List.concat_map (fun (e : Machine.event) -> e.spawned) events
  in
  checki "two spawns" 2 (List.length spawned);
  let contexts = List.map (fun (tid, _) -> Machine.thread_context m tid) spawned in
  checkb "rcu" true (List.mem Program.Rcu_softirq contexts);
  checkb "timer" true (List.mem Program.Timer_softirq contexts)

(* --- machine: lists ------------------------------------------------------ *)

let test_list_ops () =
  let t =
    thread "A"
      [ alloc "a" "p" "obj";
        list_empty "e1" "was_empty" (g "lst");
        list_add "ad" (g "lst") (reg "p");
        list_contains "c" "has" (g "lst") (reg "p");
        list_first "f" "head" (g "lst");
        list_empty "e2" "now_empty" (g "lst");
        list_del "d" (g "lst") (reg "p");
        list_empty "e3" "after_del" (g "lst") ]
  in
  let m = Machine.create (group ~globals:[ ("lst", Value.List []) ] [ t ]) in
  let m, _ = run_thread m 0 in
  checkb "no failure" true (Machine.failed m = None);
  checkb "was empty" true (Machine.reg m 0 "was_empty" = Some (Value.Int 1));
  checkb "contains" true (Machine.reg m 0 "has" = Some (Value.Int 1));
  checkb "not empty" true (Machine.reg m 0 "now_empty" = Some (Value.Int 0));
  checkb "head is p" true
    (match Machine.reg m 0 "head", Machine.reg m 0 "p" with
    | Some h, Some p -> Value.equal h p
    | _ -> false);
  checkb "after del empty" true
    (Machine.reg m 0 "after_del" = Some (Value.Int 1))

let test_list_double_add_corruption () =
  let t =
    thread "A"
      [ alloc "a" "p" "obj";
        list_add "a1" (g "lst") (reg "p");
        list_add "a2" (g "lst") (reg "p") ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  match Machine.failed m with
  | Some (Failure.List_corruption { at; _ }) ->
    check Alcotest.string "at" "a2" at.label
  | _ -> Alcotest.fail "expected list corruption"

let test_list_del_missing_corruption () =
  let t =
    thread "A" [ alloc "a" "p" "obj"; list_del "d" (g "lst") (reg "p") ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  match Machine.failed m with
  | Some (Failure.List_corruption _) -> ()
  | _ -> Alcotest.fail "expected list corruption"

(* --- machine: rmw / refcount -------------------------------------------- *)

let test_rmw () =
  let t =
    thread "A"
      [ store "s" (g "ctr") (cint 10);
        rmw "r1" ~ret:"old" (g "ctr") (cint 5);
        load "l" "now" (g "ctr") ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  checkb "old" true (Machine.reg m 0 "old" = Some (Value.Int 10));
  checkb "now" true (Machine.reg m 0 "now" = Some (Value.Int 15))

let test_refcount_lifecycle () =
  let t =
    thread "A"
      [ store "s" (g "rc") (cint 1);
        ref_get "g1" (g "rc");
        ref_put "p1" ~ret:"r1" (g "rc");
        ref_put "p2" ~ret:"r2" (g "rc") ]
  in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  checkb "no failure" true (Machine.failed m = None);
  checkb "r1 = 1" true (Machine.reg m 0 "r1" = Some (Value.Int 1));
  checkb "r2 = 0" true (Machine.reg m 0 "r2" = Some (Value.Int 0))

let test_refcount_underflow_warns () =
  let t = thread "A" [ ref_put "p" (g "rc") ] in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  match Machine.failed m with
  | Some (Failure.Warning _) -> ()
  | _ -> Alcotest.fail "expected refcount warning"

let test_refcount_inc_on_zero_warns () =
  let t = thread "A" [ ref_get "g1" (g "rc") ] in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_thread m 0 in
  match Machine.failed m with
  | Some (Failure.Warning _) -> ()
  | _ -> Alcotest.fail "expected refcount warning"

(* --- machine: misc -------------------------------------------------------- *)

let test_occurrences_in_loop () =
  let t =
    thread "A"
      [ assign "i" "n" (cint 0);
        assign "top" "n" (Add (reg "n", cint 1));
        store "w" (g "x") (reg "n");
        branch_if "br" (Lt (reg "n", cint 3)) "top" ]
  in
  let m = Machine.create (group [ t ]) in
  let m, events = run_thread m 0 in
  checki "w executed thrice" 3 (Machine.occurrences m 0 "w");
  let occs =
    List.filter_map
      (fun (e : Machine.event) ->
        if e.iid.label = "w" then Some e.iid.occ else None)
      events
  in
  check (Alcotest.list Alcotest.int) "occ numbering" [ 1; 2; 3 ] occs

let test_leak_detection () =
  let t = thread "A" [ alloc "a" "p" "obj" ~leak_check:true ] in
  let m = Machine.create (group [ t ]) in
  let m, _ = run_all m in
  (match Machine.failed m with
  | Some (Failure.Memory_leak { objs = [ (_, "obj") ] }) -> ()
  | _ -> Alcotest.fail "expected leak");
  (* freed objects do not leak *)
  let t2 =
    thread "A" [ alloc "a" "p" "obj" ~leak_check:true; free "f" (reg "p") ]
  in
  let m, _ = run_all (Machine.create (group [ t2 ])) in
  checkb "no leak" true (Machine.failed m = None)

let test_persistence_snapshot () =
  let t = thread "A" [ store "s" (g "x") (cint 1) ] in
  let m0 = Machine.create (group [ t ]) in
  let m1, _ = run_thread m0 0 in
  (* The old machine value is an untouched snapshot. *)
  checkb "snapshot unchanged" true
    (Machine.mem_read m0 (Addr.Global "x") = Value.Int 0);
  checkb "new machine updated" true
    (Machine.mem_read m1 (Addr.Global "x") = Value.Int 1)

let test_failure_same_bug () =
  let iid l = Access.Iid.make ~tid:0 ~label:l ~occ:1 in
  let uaf1 =
    Failure.Use_after_free
      { at = iid "A2"; obj = 1; tag = "x"; kind = Instr.Read;
        freed_at = None }
  in
  let uaf2 =
    Failure.Use_after_free
      { at = iid "A2"; obj = 9; tag = "y"; kind = Instr.Write;
        freed_at = Some (iid "K1") }
  in
  checkb "same symptom + label" true (Failure.same_bug uaf1 uaf2);
  let uaf3 =
    Failure.Use_after_free
      { at = iid "B7"; obj = 1; tag = "x"; kind = Instr.Read;
        freed_at = None }
  in
  checkb "different label" false (Failure.same_bug uaf1 uaf3);
  let bug = Failure.Assertion_violation { at = iid "A2" } in
  checkb "different symptom" false (Failure.same_bug uaf1 bug);
  let leak1 = Failure.Memory_leak { objs = [ (1, "a") ] } in
  let leak2 = Failure.Memory_leak { objs = [ (2, "b") ] } in
  checkb "location-free failures" true (Failure.same_bug leak1 leak2)

let test_failure_printing () =
  let iid l = Access.Iid.make ~tid:3 ~label:l ~occ:2 in
  List.iter
    (fun f -> checkb "non-empty" true (String.length (Failure.to_string f) > 5))
    [ Failure.Null_dereference { at = iid "x" };
      Failure.Out_of_bounds { at = iid "x"; obj = 1; tag = "t"; index = 9;
                              size = 4 };
      Failure.Double_free { at = iid "x"; obj = 1; tag = "t" };
      Failure.Invalid_free { at = iid "x" };
      Failure.Warning { at = iid "x" };
      Failure.General_protection_fault { at = iid "x" };
      Failure.List_corruption { at = iid "x"; reason = "r" };
      Failure.Memory_leak { objs = [ (1, "t") ] };
      Failure.Watchdog { after_steps = 10 } ]

let test_kcov_coverage () =
  let ta = thread "A" [ nop "a1"; nop "a2"; nop "a3" ] in
  let tb = thread "B" [ nop "b1" ] in
  let m = Machine.create (group [ ta; tb ]) in
  let m, ea = run_thread m 0 in
  let m, eb = run_thread m 1 in
  let cov =
    Kcov.coverage [ ea @ eb ] ~thread_base:(Machine.thread_base m)
  in
  let module Smap = Map.Make (String) in
  checki "A covers 3 labels" 3 (Smap.find "A" cov);
  checki "B covers 1 label" 1 (Smap.find "B" cov)

let test_kcov_db () =
  let ta = thread "A" [ store "s" (g "x") (cint 1) ] in
  let tb = thread "B" [ load "l" "v" (g "x") ] in
  let m = Machine.create (group [ ta; tb ]) in
  let m, ea = run_thread m 0 in
  let m, eb = run_thread m 1 in
  let thread_base tid = Machine.thread_base m tid in
  let db = Kcov.add_trace ~thread_base Kcov.empty (ea @ eb) in
  checki "two sites" 2 (List.length (Kcov.sites db));
  checkb "conflict for A:s" true
    (Kcov.has_conflict db
       ~site:{ Kcov.site_thread = "A"; site_label = "s" }
       ~addr:(Addr.Global "x") ~kind:Instr.Write);
  checkb "read/read no conflict" false
    (Kcov.has_conflict db
       ~site:{ Kcov.site_thread = "B"; site_label = "l" }
       ~addr:(Addr.Global "y") ~kind:Instr.Read)

let () =
  Alcotest.run "ksim"
    [ ( "value",
        [ Alcotest.test_case "truthiness" `Quick test_value_truthy;
          Alcotest.test_case "equality" `Quick test_value_equal;
          Alcotest.test_case "is_null" `Quick test_value_is_null ] );
      ( "addr",
        [ Alcotest.test_case "overlap" `Quick test_addr_overlap;
          Alcotest.test_case "compare/map" `Quick test_addr_compare ] );
      ( "program",
        [ Alcotest.test_case "labels" `Quick test_program_labels;
          Alcotest.test_case "duplicate label" `Quick
            test_program_duplicate_label;
          Alcotest.test_case "dangling goto" `Quick test_program_dangling_goto
        ] );
      ( "machine-basics",
        [ Alcotest.test_case "assign/branch" `Quick test_assign_branch;
          Alcotest.test_case "load/store defaults" `Quick
            test_load_store_defaults;
          Alcotest.test_case "globals" `Quick test_globals_initialized;
          Alcotest.test_case "null deref" `Quick test_null_dereference;
          Alcotest.test_case "gpf" `Quick test_gpf_on_int_deref;
          Alcotest.test_case "alloc/uaf" `Quick test_alloc_fields_and_uaf;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "kfree(NULL)" `Quick test_free_null_is_noop;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "bug_on/warn_on" `Quick test_bug_on_and_warn_on
        ] );
      ( "machine-locks",
        [ Alcotest.test_case "mutual exclusion" `Quick
            test_lock_mutual_exclusion;
          Alcotest.test_case "self deadlock" `Quick test_lock_self_deadlock;
          Alcotest.test_case "unlock not held" `Quick
            test_unlock_not_held_is_model_error ] );
      ( "machine-kthreads",
        [ Alcotest.test_case "queue_work" `Quick test_queue_work_spawns;
          Alcotest.test_case "rcu/timer" `Quick test_rcu_and_timer_contexts;
          Alcotest.test_case "enable_irq" `Quick
            test_enable_irq_spawns_hardirq ] );
      ( "machine-lists",
        [ Alcotest.test_case "list ops" `Quick test_list_ops;
          Alcotest.test_case "double add" `Quick
            test_list_double_add_corruption;
          Alcotest.test_case "del missing" `Quick
            test_list_del_missing_corruption ] );
      ( "machine-rmw",
        [ Alcotest.test_case "rmw" `Quick test_rmw;
          Alcotest.test_case "refcount lifecycle" `Quick
            test_refcount_lifecycle;
          Alcotest.test_case "underflow" `Quick test_refcount_underflow_warns;
          Alcotest.test_case "inc on zero" `Quick
            test_refcount_inc_on_zero_warns ] );
      ( "machine-misc",
        [ Alcotest.test_case "occurrences" `Quick test_occurrences_in_loop;
          Alcotest.test_case "leak detection" `Quick test_leak_detection;
          Alcotest.test_case "persistence" `Quick test_persistence_snapshot;
          Alcotest.test_case "kcov db" `Quick test_kcov_db;
          Alcotest.test_case "same_bug" `Quick test_failure_same_bug;
          Alcotest.test_case "failure printing" `Quick test_failure_printing;
          Alcotest.test_case "kcov coverage" `Quick test_kcov_coverage ] ) ]
