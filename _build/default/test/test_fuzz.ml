(* Tests for the Syzkaller-analogue fuzzer and its PRNG. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- rng ----------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Fuzz.Rng.create 7 and b = Fuzz.Rng.create 7 in
  let xs = List.init 20 (fun _ -> Fuzz.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Fuzz.Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_rng_bounds () =
  let r = Fuzz.Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Fuzz.Rng.int r 7 in
    checkb "in range" true (x >= 0 && x < 7)
  done

let test_rng_split_diverges () =
  let r = Fuzz.Rng.create 11 in
  let s = Fuzz.Rng.split r in
  let xs = List.init 10 (fun _ -> Fuzz.Rng.int r 1_000_000) in
  let ys = List.init 10 (fun _ -> Fuzz.Rng.int s 1_000_000) in
  checkb "different streams" false (xs = ys)

let test_rng_shuffle_is_permutation () =
  let r = Fuzz.Rng.create 5 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let ys = Fuzz.Rng.shuffle r xs in
  Alcotest.(check (slist int compare)) "permutation" xs ys

let test_rng_pick_member () =
  let r = Fuzz.Rng.create 9 in
  for _ = 1 to 50 do
    checkb "member" true (List.mem (Fuzz.Rng.pick r [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done

(* --- fuzzer ---------------------------------------------------------------- *)

(* Find a seed that crashes a given bug group quickly. *)
let find_crash (bug : Bugs.Bug.t) =
  let case = bug.case () in
  let prologue =
    List.mapi (fun i (s : Ksim.Program.thread_spec) -> (i, s.spec_name))
      case.group.Ksim.Program.threads
    |> List.filter_map (fun (i, n) -> if n = "init" then Some i else None)
  in
  let rec try_seed seed =
    if seed > 20 then Alcotest.failf "%s: no crashing seed found" bug.id
    else
      match
        Fuzz.Fuzzer.run ~max_runs:500 ~seed ~prologue
          ~subsystem:bug.subsystem case.group
      with
      | Ok finding -> (seed, case, finding)
      | Error _ -> try_seed (seed + 1)
  in
  try_seed 1

let test_fuzzer_finds_crash () =
  let _, _, finding = find_crash Bugs.Fig1_nullderef.bug in
  checkb "found in bounded runs" true (finding.runs_until_crash <= 500);
  match finding.failure with
  | Ksim.Failure.Null_dereference _ -> ()
  | f -> Alcotest.failf "unexpected failure %s" (Ksim.Failure.to_string f)

let test_fuzzer_deterministic () =
  let seed, case, f1 = find_crash Bugs.Fig1_nullderef.bug in
  let prologue = [ 0 ] in
  match
    Fuzz.Fuzzer.run ~max_runs:500 ~seed ~prologue
      ~subsystem:case.subsystem case.group
  with
  | Ok f2 -> checki "same run index" f1.runs_until_crash f2.runs_until_crash
  | Error _ -> Alcotest.fail "crash not reproduced with same seed"

let test_fuzzer_history_well_formed () =
  let _, _, finding = find_crash Bugs.Fig1_nullderef.bug in
  let eps = Trace.History.episodes finding.history in
  checkb "episodes for racing threads" true (List.length eps >= 2);
  let crash = Trace.History.crash finding.history in
  checkb "crash recorded" true (crash.symptom <> "none")

let test_fuzz_then_diagnose_end_to_end () =
  (* The §5.2 workflow: the bug finder produces the inputs, AITIA
     diagnoses.  The chain must match the directly-diagnosed one. *)
  let _, case, finding = find_crash Bugs.Fig1_nullderef.bug in
  let fuzzed_case = { case with Aitia.Diagnose.history = finding.history } in
  let fuzzed = Aitia.Diagnose.diagnose fuzzed_case in
  let direct = Aitia.Diagnose.diagnose (Bugs.Fig1_nullderef.bug.case ()) in
  match fuzzed.chain, direct.chain with
  | Some c1, Some c2 ->
    Alcotest.(check string) "same chain" (Aitia.Chain.to_string c2)
      (Aitia.Chain.to_string c1)
  | _ -> Alcotest.fail "both paths must diagnose"

let test_fuzzer_on_kthread_bug () =
  let _, case, finding = find_crash Bugs.Fig9_irqfd.bug in
  let fuzzed_case = { case with Aitia.Diagnose.history = finding.history } in
  let report = Aitia.Diagnose.diagnose fuzzed_case in
  checkb "kworkerd bug diagnosed from fuzzer input" true
    (Aitia.Diagnose.reproduced report)

let () =
  Alcotest.run "fuzz"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_diverges;
          Alcotest.test_case "shuffle" `Quick
            test_rng_shuffle_is_permutation;
          Alcotest.test_case "pick" `Quick test_rng_pick_member ] );
      ( "fuzzer",
        [ Alcotest.test_case "finds crash" `Quick test_fuzzer_finds_crash;
          Alcotest.test_case "deterministic" `Quick test_fuzzer_deterministic;
          Alcotest.test_case "history" `Quick
            test_fuzzer_history_well_formed;
          Alcotest.test_case "fuzz+diagnose" `Quick
            test_fuzz_then_diagnose_end_to_end;
          Alcotest.test_case "kthread bug" `Quick test_fuzzer_on_kthread_bug
        ] ) ]
