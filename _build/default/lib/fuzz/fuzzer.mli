(** A miniature Syzkaller: randomized concurrent execution of a syscall
    workload with ftrace-style tracing and crash collection — the
    "cooperation with an automated bug-finding system" workflow of
    §5.2.  On a crash it emits exactly what AITIA consumes: a
    timestamped execution history and a crash report. *)

type finding = {
  seed : int;
  runs_until_crash : int;
  failure : Ksim.Failure.t;
  history : Trace.History.t;
  outcome : Hypervisor.Controller.outcome;
}

type stats = {
  executed : int;
  crashed : bool;
}

val random_policy : Rng.t -> Hypervisor.Controller.policy
(** Pick any runnable thread at every step. *)

val with_prologue :
  int list -> Hypervisor.Controller.policy -> Hypervisor.Controller.policy

val history_of_run :
  group:Ksim.Program.group -> subsystem:string ->
  Hypervisor.Controller.outcome -> Trace.History.t
(** Reconstruct an ftrace history (syscall enter/exit, kthread
    invocations, crash report) from an executed trace. *)

val run :
  ?max_runs:int -> ?max_steps:int -> ?prologue:int list ->
  seed:int -> subsystem:string -> Ksim.Program.group ->
  (finding, stats) result
(** Fuzz for up to [max_runs] random schedules; return the first crash
    with its history, or the campaign statistics. *)
