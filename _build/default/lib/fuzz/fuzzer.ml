(* A miniature Syzkaller: randomized concurrent execution of a syscall
   workload with ftrace-style tracing and crash collection (§5.2's
   "cooperation with an automated bug-finding system").

   The fuzzer knows nothing about schedules or races; it runs the
   workload under a seeded random scheduler, watching for failures.  On
   a crash it emits exactly what AITIA consumes: a timestamped execution
   history and the crash report. *)

type finding = {
  seed : int;
  runs_until_crash : int;
  failure : Ksim.Failure.t;
  history : Trace.History.t;
  outcome : Hypervisor.Controller.outcome;
}

type stats = {
  executed : int;
  crashed : bool;
}

(* A random scheduler: at every step pick any runnable thread.  This is
   the "diversify interleavings" strategy of stress-style kernel
   fuzzers. *)
let random_policy (rng : Rng.t) : Hypervisor.Controller.policy =
 fun _m runnable ->
  match runnable with
  | [] -> None
  | xs -> Some (Rng.pick rng xs)

(* Serial-prologue wrapper for setup threads. *)
let with_prologue prologue (policy : Hypervisor.Controller.policy) :
    Hypervisor.Controller.policy =
 fun m runnable ->
  let rec pick = function
    | [] -> policy m runnable
    | tid :: rest ->
      if Ksim.Machine.is_done m tid then pick rest
      else if List.mem tid runnable then Some tid
      else None
  in
  pick prologue

(* Reconstruct an ftrace history from an executed trace: syscall
   enter/exit and kernel-thread invocation events with timestamps
   derived from the machine clock. *)
let history_of_run ~(group : Ksim.Program.group) ~subsystem
    (o : Hypervisor.Controller.outcome) : Trace.History.t =
  let tick i = 1.0 +. (0.001 *. float_of_int i) in
  let final = o.final in
  let events = ref [] in
  let started : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let spec_of tid =
    List.find_opt
      (fun (s : Ksim.Program.thread_spec) ->
        String.equal s.spec_name (Ksim.Machine.thread_base final tid))
      group.Ksim.Program.threads
  in
  List.iteri
    (fun i (e : Ksim.Machine.event) ->
      let tid = e.iid.Ksim.Access.Iid.tid in
      if not (Hashtbl.mem started tid) then (
        Hashtbl.add started tid ();
        match e.context with
        | Ksim.Program.Syscall { call; _ } ->
          let resources =
            match spec_of tid with Some s -> s.resources | None -> []
          in
          events :=
            { Trace.Event.time = tick i;
              kind =
                Trace.Event.Syscall_enter
                  { call; thread = Ksim.Machine.thread_base final tid;
                    resources } }
            :: !events
        | Ksim.Program.Kworker | Ksim.Program.Rcu_softirq
        | Ksim.Program.Timer_softirq | Ksim.Program.Hardirq ->
          events :=
            { Trace.Event.time = tick i;
              kind =
                Trace.Event.Kthread_invoked
                  { entry = Ksim.Machine.thread_base final tid;
                    source = "syscall";
                    context = e.context } }
            :: !events))
    o.trace;
  (* Close each episode right after the thread's last executed event —
     a thread that finished before another started must not look
     concurrent with it. *)
  let last_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i (e : Ksim.Machine.event) ->
      Hashtbl.replace last_index e.iid.Ksim.Access.Iid.tid i)
    o.trace;
  let n = List.length o.trace in
  Hashtbl.iter
    (fun tid () ->
      let last = Option.value ~default:n (Hashtbl.find_opt last_index tid) in
      let stop = tick last +. 0.0005 in
      match Ksim.Machine.thread_context final tid with
      | Ksim.Program.Syscall { call; _ } ->
        events :=
          { Trace.Event.time = stop;
            kind =
              Trace.Event.Syscall_exit
                { call; thread = Ksim.Machine.thread_base final tid } }
          :: !events
      | _ ->
        events :=
          { Trace.Event.time = stop;
            kind =
              Trace.Event.Kthread_done
                { entry = Ksim.Machine.thread_base final tid } }
          :: !events)
    started;
  let failure =
    match o.verdict with
    | Hypervisor.Controller.Failed f -> Some f
    | _ -> None
  in
  let crash =
    match failure with
    | Some f ->
      Trace.Crash.of_failure ~subsystem ~report_time:(tick (n + 100)) f
    | None ->
      { Trace.Crash.symptom = "none"; location = None; subsystem;
        report_time = tick (n + 100) }
  in
  Trace.History.make ~events:!events ~crash

(* Fuzz [group] for up to [max_runs] random schedules; return the first
   crash found, with its history. *)
let run ?(max_runs = 2_000) ?(max_steps = 50_000) ?(prologue = [])
    ~(seed : int) ~subsystem (group : Ksim.Program.group) :
    (finding, stats) result =
  let rng = Rng.create seed in
  let rec go i =
    if i >= max_runs then Error { executed = i; crashed = false }
    else
      let run_rng = Rng.split rng in
      let m = Ksim.Machine.create group in
      let policy = with_prologue prologue (random_policy run_rng) in
      let o = Hypervisor.Controller.run ~max_steps m policy in
      match o.verdict with
      | Hypervisor.Controller.Failed failure ->
        Ok
          { seed; runs_until_crash = i + 1; failure;
            history = history_of_run ~group ~subsystem o; outcome = o }
      | _ -> go (i + 1)
  in
  go 0
