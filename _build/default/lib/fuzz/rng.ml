(* Deterministic splittable PRNG (splitmix64).  The fuzzer must be
   reproducible: the same seed always finds the same failure with the
   same history, so tests and benches are stable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
                  (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let split t = { state = next t }

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
