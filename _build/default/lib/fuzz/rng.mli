(** Deterministic splittable PRNG (splitmix64).  The fuzzer must be
    reproducible: the same seed always finds the same failure with the
    same history. *)

type t

val create : int -> t
val next : t -> int64

val int : t -> int -> int
(** Uniform in [[0, bound)].  @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val pick : t -> 'a list -> 'a
val shuffle : t -> 'a list -> 'a list
