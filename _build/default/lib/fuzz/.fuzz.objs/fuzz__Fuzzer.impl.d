lib/fuzz/fuzzer.ml: Hashtbl Hypervisor Ksim List Option Rng String Trace
