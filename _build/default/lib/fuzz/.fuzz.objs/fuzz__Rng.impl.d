lib/fuzz/rng.ml: Array Int64 List
