lib/fuzz/rng.mli:
