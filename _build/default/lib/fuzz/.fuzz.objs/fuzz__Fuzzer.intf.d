lib/fuzz/fuzzer.mli: Hypervisor Ksim Rng Trace
