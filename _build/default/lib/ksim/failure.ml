(* Failure taxonomy: the symptoms appearing in Tables 2 and 3 of the
   paper, plus the watchdog symptom used for hangs. *)

type t =
  | Null_dereference of { at : Access.Iid.t }
  | Use_after_free of { at : Access.Iid.t; obj : Value.obj_id; tag : string;
                        kind : Instr.access_kind;
                        freed_at : Access.Iid.t option }
  | Out_of_bounds of { at : Access.Iid.t; obj : Value.obj_id; tag : string;
                       index : int; size : int }
  | Double_free of { at : Access.Iid.t; obj : Value.obj_id; tag : string }
  | Invalid_free of { at : Access.Iid.t }
  | Assertion_violation of { at : Access.Iid.t }        (* BUG_ON *)
  | Warning of { at : Access.Iid.t }                    (* WARN_ON / refcount *)
  | General_protection_fault of { at : Access.Iid.t }
  | List_corruption of { at : Access.Iid.t; reason : string }
  | Memory_leak of { objs : (Value.obj_id * string) list }
  | Watchdog of { after_steps : int }

(* The location a crash report points at; leaks and watchdogs have no
   single faulting instruction. *)
let location = function
  | Null_dereference { at }
  | Use_after_free { at; _ }
  | Out_of_bounds { at; _ }
  | Double_free { at; _ }
  | Invalid_free { at }
  | Assertion_violation { at }
  | Warning { at }
  | General_protection_fault { at }
  | List_corruption { at; _ } -> Some at
  | Memory_leak _ | Watchdog _ -> None

let symptom = function
  | Null_dereference _ -> "null-ptr-deref"
  | Use_after_free _ -> "KASAN: use-after-free"
  | Out_of_bounds _ -> "KASAN: slab-out-of-bounds"
  | Double_free _ -> "KASAN: double-free"
  | Invalid_free _ -> "invalid-free"
  | Assertion_violation _ -> "kernel BUG (BUG_ON)"
  | Warning _ -> "WARNING"
  | General_protection_fault _ -> "general protection fault"
  | List_corruption _ -> "list corruption (CONFIG_DEBUG_LIST)"
  | Memory_leak _ -> "memory leak"
  | Watchdog _ -> "watchdog: task hung"

(* Two failures are the "same bug" for reproduction purposes when they
   share a symptom class and faulting location label. *)
let same_bug a b =
  String.equal (symptom a) (symptom b)
  &&
  match location a, location b with
  | Some x, Some y -> String.equal x.Access.Iid.label y.Access.Iid.label
  | None, None -> true
  | Some _, None | None, Some _ -> false

let pp ppf f =
  match f with
  | Null_dereference { at } ->
    Fmt.pf ppf "null-ptr-deref at %a" Access.Iid.pp_full at
  | Use_after_free { at; obj; tag; kind; freed_at } ->
    Fmt.pf ppf "use-after-free %a of obj%d<%s> at %a%a" Instr.pp_access_kind
      kind obj tag Access.Iid.pp_full at
      (Fmt.option (fun ppf i ->
           Fmt.pf ppf " (freed at %a)" Access.Iid.pp_full i))
      freed_at
  | Out_of_bounds { at; obj; tag; index; size } ->
    Fmt.pf ppf "slab-out-of-bounds obj%d<%s>[%d] (size %d) at %a" obj tag
      index size Access.Iid.pp_full at
  | Double_free { at; obj; tag } ->
    Fmt.pf ppf "double-free of obj%d<%s> at %a" obj tag Access.Iid.pp_full at
  | Invalid_free { at } -> Fmt.pf ppf "invalid-free at %a" Access.Iid.pp_full at
  | Assertion_violation { at } ->
    Fmt.pf ppf "BUG_ON at %a" Access.Iid.pp_full at
  | Warning { at } -> Fmt.pf ppf "WARNING at %a" Access.Iid.pp_full at
  | General_protection_fault { at } ->
    Fmt.pf ppf "general protection fault at %a" Access.Iid.pp_full at
  | List_corruption { at; reason } ->
    Fmt.pf ppf "list corruption (%s) at %a" reason Access.Iid.pp_full at
  | Memory_leak { objs } ->
    Fmt.pf ppf "memory leak of %a"
      (Fmt.list ~sep:Fmt.comma (fun ppf (o, t) -> Fmt.pf ppf "obj%d<%s>" o t))
      objs
  | Watchdog { after_steps } ->
    Fmt.pf ppf "watchdog: no progress after %d steps" after_steps

let to_string f = Fmt.str "%a" pp f
