(* Programs, threads and program groups.

   A program is a straight array of labeled instructions; control flow is
   by label.  A group bundles the concurrently executed top-level threads
   (system calls in the paper's terms), the registered background-thread
   entry points reachable via queue_work/call_rcu/arm_timer, the global
   variables and their initial values, and the declared locks. *)

type loc = {
  func : string;       (* kernel function name, for reports *)
  line : int;          (* line number in the modeled source *)
}

let loc ?(func = "?") ?(line = 0) () = { func; line }

type labeled = {
  label : string;      (* unique within the program, e.g. "A6" *)
  instr : Instr.t;
  src : loc;
}

type t = {
  name : string;                       (* program name, e.g. "setsockopt" *)
  code : labeled array;
  index : (string, int) Hashtbl.t;     (* label -> position *)
}

exception Duplicate_label of string
exception Unknown_label of string

let make ~name instrs =
  let code = Array.of_list instrs in
  let index = Hashtbl.create (Array.length code) in
  Array.iteri
    (fun i { label; _ } ->
      if Hashtbl.mem index label then raise (Duplicate_label label);
      Hashtbl.add index label i)
    code;
  (* Validate branch targets eagerly: a dangling goto is a bug in the
     model, not a runtime condition. *)
  Array.iter
    (fun { instr; _ } ->
      match instr with
      | Instr.Branch_if { target; _ } | Instr.Goto target ->
        if not (Hashtbl.mem index target) then raise (Unknown_label target)
      | _ -> ())
    code;
  { name; code; index }

let length p = Array.length p.code
let get p i = p.code.(i)
let position_of_label p label =
  match Hashtbl.find_opt p.index label with
  | Some i -> i
  | None -> raise (Unknown_label label)

let labels p = Array.to_list (Array.map (fun l -> l.label) p.code)

(* The kind of execution context a thread models; mirrors the contexts
   AITIA controls (system calls, softirq for RCU, kworkerd, timers). *)
type context =
  | Syscall of { call : string; sysno : int }
  | Kworker
  | Rcu_softirq
  | Timer_softirq
  | Hardirq

let pp_context ppf = function
  | Syscall { call; _ } -> Fmt.pf ppf "syscall:%s" call
  | Kworker -> Fmt.string ppf "kworkerd"
  | Rcu_softirq -> Fmt.string ppf "rcu"
  | Timer_softirq -> Fmt.string ppf "timer"
  | Hardirq -> Fmt.string ppf "hardirq"

type thread_spec = {
  spec_name : string;   (* display name, e.g. "A" *)
  context : context;
  program : t;
  (* Resource tags (file descriptors, socket ids) this thread touches;
     the slicer uses them to close slices over open/close semantics. *)
  resources : string list;
}

type group = {
  group_name : string;
  threads : thread_spec list;                 (* top-level concurrent threads *)
  entries : (string * t) list;                (* background entry points *)
  globals : (string * Value.t) list;          (* initial global values *)
  locks : string list;
}

let group ?(entries = []) ?(globals = []) ?(locks = []) ~name threads =
  (* Entry names must be unique and resolvable. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then raise (Duplicate_label n);
      Hashtbl.add seen n ())
    entries;
  { group_name = name; threads; entries; globals; locks }

let find_entry group name =
  match List.assoc_opt name group.entries with
  | Some p -> p
  | None -> raise (Unknown_label name)

(* Builder eDSL: lets bug models read like the paper's code snippets. *)
module Build = struct
  open Instr

  let i ?func ?line label instr = { label; instr; src = loc ?func ?line () }

  let load ?func ?line label dst src = i ?func ?line label (Load { dst; src })
  let store ?func ?line label dst src = i ?func ?line label (Store { dst; src })
  let rmw ?func ?line ?ret label loc' delta =
    i ?func ?line label (Rmw { ret; loc = loc'; delta })
  let assign ?func ?line label dst src =
    i ?func ?line label (Assign { dst; src })
  let branch_if ?func ?line label cond target =
    i ?func ?line label (Branch_if { cond; target })
  let goto ?func ?line label target = i ?func ?line label (Goto target)
  let return ?func ?line label = i ?func ?line label Return
  let nop ?func ?line label = i ?func ?line label Nop
  let alloc ?func ?line ?(fields = []) ?(slots = 0) ?(leak_check = false)
      label dst tag =
    i ?func ?line label (Alloc { dst; tag; fields; slots; leak_check })
  let free ?func ?line label ptr = i ?func ?line label (Free { ptr })
  let lock ?func ?line label l = i ?func ?line label (Lock l)
  let unlock ?func ?line label l = i ?func ?line label (Unlock l)
  let queue_work ?func ?line ?(arg = Const Value.Null) label entry =
    i ?func ?line label (Queue_work { entry; arg })
  let call_rcu ?func ?line ?(arg = Const Value.Null) label entry =
    i ?func ?line label (Call_rcu { entry; arg })
  let arm_timer ?func ?line ?(arg = Const Value.Null) label entry =
    i ?func ?line label (Arm_timer { entry; arg })
  let enable_irq ?func ?line ?(arg = Const Value.Null) label entry =
    i ?func ?line label (Enable_irq { entry; arg })
  let bug_on ?func ?line label e = i ?func ?line label (Bug_on e)
  let warn_on ?func ?line label e = i ?func ?line label (Warn_on e)
  let list_add ?func ?line label list item =
    i ?func ?line label (List_add { list; item })
  let list_del ?func ?line label list item =
    i ?func ?line label (List_del { list; item })
  let list_contains ?func ?line label dst list item =
    i ?func ?line label (List_contains { dst; list; item })
  let list_empty ?func ?line label dst list =
    i ?func ?line label (List_empty { dst; list })
  let list_first ?func ?line label dst list =
    i ?func ?line label (List_first { dst; list })
  let ref_get ?func ?line label loc' = i ?func ?line label (Ref_get { loc = loc' })
  let ref_put ?func ?line ?ret label loc' =
    i ?func ?line label (Ref_put { ret; loc = loc' })

  (* Expression shorthands. *)
  let cint n = Const (Value.Int n)
  let cnull = Const Value.Null
  let reg r = Reg r
  let g name = Global name
  let ( **-> ) e f = Deref (e, f)
  let ( **@ ) e idx = At (e, idx)
end
