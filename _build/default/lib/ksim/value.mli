(** Runtime values of the kernel simulator. *)

type obj_id = int
(** Identity of a heap object; never reused within a run. *)

type ptr = {
  obj : obj_id;  (** the heap object pointed into *)
  gen : int;     (** allocation generation when the pointer was made *)
}
(** A pointer value.  The generation lets the sanitizer distinguish a
    dangling pointer from a fresh one even under allocator reuse. *)

type t =
  | Int of int
  | Ptr of ptr
  | Null
  | List of ptr list  (** a kernel list head: the members, front first *)

val null : t
val int : int -> t
val ptr : obj:obj_id -> gen:int -> t

val is_null : t -> bool
(** [is_null v] — [Null] and [Int 0] are NULL, as in kernel C. *)

val truthy : t -> bool
(** Kernel C truthiness: any non-zero value is true. *)

val ptr_equal : ptr -> ptr -> bool

val equal : t -> t -> bool
(** Structural equality; [Null] equals [Int 0]. *)

val pp : t Fmt.t
val to_string : t -> string
