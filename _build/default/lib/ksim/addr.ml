(* Concrete memory locations.

   The simulator addresses memory symbolically: a location is either a named
   global, a field of a heap object, or an indexed slot of a heap object
   (used by array-like objects so that out-of-bounds indices are
   detectable). The conflict predicate of the Linux kernel memory model
   compares locations for equality, which symbolic addresses support
   directly. *)

type t =
  | Global of string                    (* &name *)
  | Field of Value.obj_id * string      (* obj->field *)
  | Index of Value.obj_id * int         (* obj[i] *)
  | Whole of Value.obj_id               (* the object itself (kfree target) *)

let equal a b =
  match a, b with
  | Global x, Global y -> String.equal x y
  | Field (o, f), Field (o', f') -> o = o' && String.equal f f'
  | Index (o, i), Index (o', i') -> o = o' && i = i'
  | Whole o, Whole o' -> o = o'
  | (Global _ | Field _ | Index _ | Whole _), _ -> false

let compare a b =
  let tag = function Global _ -> 0 | Field _ -> 1 | Index _ -> 2 | Whole _ -> 3 in
  match a, b with
  | Global x, Global y -> String.compare x y
  | Field (o, f), Field (o', f') ->
    let c = Int.compare o o' in
    if c <> 0 then c else String.compare f f'
  | Index (o, i), Index (o', i') ->
    let c = Int.compare o o' in
    if c <> 0 then c else Int.compare i i'
  | Whole o, Whole o' -> Int.compare o o'
  | _, _ -> Int.compare (tag a) (tag b)

let hash = Hashtbl.hash

let obj_of = function
  | Global _ -> None
  | Field (o, _) | Index (o, _) | Whole o -> Some o

(* Two locations overlap when they are equal, or when one is the whole of
   an object the other lies inside (a [kfree] of the object touches all of
   its fields). *)
let overlaps a b =
  equal a b
  ||
  match a, b with
  | Whole o, (Field (o', _) | Index (o', _))
  | (Field (o', _) | Index (o', _)), Whole o -> o = o'
  | _, _ -> false

let pp ppf = function
  | Global g -> Fmt.pf ppf "&%s" g
  | Field (o, f) -> Fmt.pf ppf "obj%d->%s" o f
  | Index (o, i) -> Fmt.pf ppf "obj%d[%d]" o i
  | Whole o -> Fmt.pf ppf "obj%d" o

let to_string a = Fmt.str "%a" pp a

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)
