(** Concrete (symbolic) memory locations.

    The Linux-kernel-memory-model conflict predicate compares locations;
    symbolic addresses support it directly, and [Whole] lets a [kfree]
    of an object conflict with accesses to any of its fields. *)

type t =
  | Global of string                (** [&name] *)
  | Field of Value.obj_id * string  (** [obj->field] *)
  | Index of Value.obj_id * int     (** [obj[i]] *)
  | Whole of Value.obj_id           (** the object itself (kfree target) *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val obj_of : t -> Value.obj_id option
(** The heap object a location lies in, if any. *)

val overlaps : t -> t -> bool
(** Equal locations overlap; [Whole o] overlaps every field and slot of
    [o]. *)

val pp : t Fmt.t
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
