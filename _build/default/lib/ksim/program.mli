(** Programs, thread specifications and program groups. *)

type loc = {
  func : string;  (** modeled kernel function, for reports *)
  line : int;     (** line number in the modeled source *)
}

val loc : ?func:string -> ?line:int -> unit -> loc

type labeled = {
  label : string;  (** unique within the program, e.g. ["A6"] *)
  instr : Instr.t;
  src : loc;
}

type t
(** A program: an array of labeled instructions; control flow by label. *)

exception Duplicate_label of string
exception Unknown_label of string

val make : name:string -> labeled list -> t
(** Validates label uniqueness and branch targets eagerly.
    @raise Duplicate_label @raise Unknown_label on malformed programs. *)

val length : t -> int
val get : t -> int -> labeled
val position_of_label : t -> string -> int
val labels : t -> string list

(** The execution contexts AITIA controls (§3.1). *)
type context =
  | Syscall of { call : string; sysno : int }
  | Kworker
  | Rcu_softirq
  | Timer_softirq
  | Hardirq

val pp_context : context Fmt.t

type thread_spec = {
  spec_name : string;        (** display name, e.g. ["A"] *)
  context : context;
  program : t;
  resources : string list;   (** fds/sockets, for slice resource closure *)
}

type group = {
  group_name : string;
  threads : thread_spec list;          (** top-level concurrent threads *)
  entries : (string * t) list;         (** background entry points *)
  globals : (string * Value.t) list;   (** initial global values *)
  locks : string list;
}

val group :
  ?entries:(string * t) list ->
  ?globals:(string * Value.t) list ->
  ?locks:string list ->
  name:string ->
  thread_spec list ->
  group

val find_entry : group -> string -> t

(** Builder eDSL: bug models read like the paper's code snippets.  Each
    constructor takes the instruction label first; [?func]/[?line] attach
    source locations. *)
module Build : sig
  val i : ?func:string -> ?line:int -> string -> Instr.t -> labeled
  val load : ?func:string -> ?line:int -> string -> Instr.reg ->
    Instr.addr_expr -> labeled
  val store : ?func:string -> ?line:int -> string -> Instr.addr_expr ->
    Instr.expr -> labeled
  val rmw : ?func:string -> ?line:int -> ?ret:Instr.reg -> string ->
    Instr.addr_expr -> Instr.expr -> labeled
  val assign : ?func:string -> ?line:int -> string -> Instr.reg ->
    Instr.expr -> labeled
  val branch_if : ?func:string -> ?line:int -> string -> Instr.expr ->
    string -> labeled
  val goto : ?func:string -> ?line:int -> string -> string -> labeled
  val return : ?func:string -> ?line:int -> string -> labeled
  val nop : ?func:string -> ?line:int -> string -> labeled
  val alloc : ?func:string -> ?line:int ->
    ?fields:(string * Instr.expr) list -> ?slots:int -> ?leak_check:bool ->
    string -> Instr.reg -> string -> labeled
  val free : ?func:string -> ?line:int -> string -> Instr.expr -> labeled
  val lock : ?func:string -> ?line:int -> string -> Instr.lock_id -> labeled
  val unlock : ?func:string -> ?line:int -> string -> Instr.lock_id -> labeled
  val queue_work : ?func:string -> ?line:int -> ?arg:Instr.expr -> string ->
    string -> labeled
  val call_rcu : ?func:string -> ?line:int -> ?arg:Instr.expr -> string ->
    string -> labeled
  val arm_timer : ?func:string -> ?line:int -> ?arg:Instr.expr -> string ->
    string -> labeled
  val enable_irq : ?func:string -> ?line:int -> ?arg:Instr.expr -> string ->
    string -> labeled
  val bug_on : ?func:string -> ?line:int -> string -> Instr.expr -> labeled
  val warn_on : ?func:string -> ?line:int -> string -> Instr.expr -> labeled
  val list_add : ?func:string -> ?line:int -> string -> Instr.addr_expr ->
    Instr.expr -> labeled
  val list_del : ?func:string -> ?line:int -> string -> Instr.addr_expr ->
    Instr.expr -> labeled
  val list_contains : ?func:string -> ?line:int -> string -> Instr.reg ->
    Instr.addr_expr -> Instr.expr -> labeled
  val list_empty : ?func:string -> ?line:int -> string -> Instr.reg ->
    Instr.addr_expr -> labeled
  val list_first : ?func:string -> ?line:int -> string -> Instr.reg ->
    Instr.addr_expr -> labeled
  val ref_get : ?func:string -> ?line:int -> string -> Instr.addr_expr ->
    labeled
  val ref_put : ?func:string -> ?line:int -> ?ret:Instr.reg -> string ->
    Instr.addr_expr -> labeled

  (** Expression shorthands. *)

  val cint : int -> Instr.expr
  val cnull : Instr.expr
  val reg : Instr.reg -> Instr.expr
  val g : string -> Instr.addr_expr
  val ( **-> ) : Instr.expr -> string -> Instr.addr_expr
  val ( **@ ) : Instr.expr -> Instr.expr -> Instr.addr_expr
end
