(* Coverage and memory-access instrumentation over executed event traces.

   This plays the role kcov + disassembly play in the paper: the user
   agent learns which instructions each thread executed and which of them
   access memory, and accumulates a database of accesses across runs so
   that LIFS can derive candidate conflicting instructions. *)

module Smap = Map.Make (String)

type trace = Machine.event list

(* Static identity of an instruction inside a group: thread id is dynamic
   across runs for spawned threads, so the database keys accesses by
   (thread name is unstable too for spawned threads) — we use the entry
   name + label, which is stable. *)
type site = {
  site_thread : string;  (* top-level thread spec name or entry name *)
  site_label : string;
}

let site_compare a b =
  let c = String.compare a.site_thread b.site_thread in
  if c <> 0 then c else String.compare a.site_label b.site_label

module Site_map = Map.Make (struct
  type t = site
  let compare = site_compare
end)

let pp_site ppf s = Fmt.pf ppf "%s:%s" s.site_thread s.site_label

(* Which addresses has each instruction site been seen to access, and
   how.  [writers]/[readers] index sites by address for conflict
   derivation. *)
type db = {
  by_site : (Addr.t * Instr.access_kind) list Site_map.t;
  by_addr : (site * Instr.access_kind) list Addr.Map.t;
}

let empty = { by_site = Site_map.empty; by_addr = Addr.Map.empty }

let site_of_event ~thread_base (e : Machine.event) =
  { site_thread = thread_base e.iid.Access.Iid.tid;
    site_label = e.iid.Access.Iid.label }

let add_event ~thread_base db (e : Machine.event) =
  match e.access with
  | None -> db
  | Some a ->
    let s = site_of_event ~thread_base e in
    let entry = (a.addr, a.kind) in
    let known =
      Option.value ~default:[] (Site_map.find_opt s db.by_site)
    in
    if List.exists (fun (ad, k) -> Addr.equal ad a.addr && k = a.kind) known
    then db
    else
      { by_site = Site_map.add s (entry :: known) db.by_site;
        by_addr =
          Addr.Map.update a.addr
            (fun l -> Some ((s, a.kind) :: Option.value ~default:[] l))
            db.by_addr }

let add_trace ~thread_base db trace =
  List.fold_left (add_event ~thread_base) db trace

(* Sites known to access [addr] (or an overlapping location). *)
let accessors db addr =
  Addr.Map.fold
    (fun a sites acc ->
      if Addr.overlaps a addr then List.rev_append sites acc else acc)
    db.by_addr []

(* Does some *other* thread conflict with an access by [site] to [addr]? *)
let has_conflict db ~site ~addr ~kind =
  accessors db addr
  |> List.exists (fun (s, k) ->
         (not (String.equal s.site_thread site.site_thread))
         && (kind <> Instr.Read || k <> Instr.Read))

let sites db = Site_map.bindings db.by_site |> List.map fst

(* Coverage summary: distinct labels executed per thread base name. *)
let coverage (traces : trace list) ~thread_base =
  List.fold_left
    (fun acc trace ->
      List.fold_left
        (fun acc (e : Machine.event) ->
          let base = thread_base e.iid.Access.Iid.tid in
          let labels = Option.value ~default:Smap.empty (Smap.find_opt base acc) in
          Smap.add base (Smap.add e.iid.Access.Iid.label () labels) acc)
        acc trace)
    Smap.empty traces
  |> Smap.map (fun labels -> Smap.cardinal labels)
