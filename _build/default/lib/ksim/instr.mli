(** The instruction set executed by the kernel simulator.

    Every shared-memory access is its own instruction, matching the
    granularity AITIA reasons at (one racing access = one instruction);
    expressions are pure over thread-local registers. *)

type reg = string

(** Pure expressions over registers and constants. *)
type expr =
  | Const of Value.t
  | Reg of reg
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | Gt of expr * expr
  | Ge of expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr

(** Where a load/store goes.  A [Deref]/[At] base must evaluate to a
    live pointer; NULL, a freed object or a non-pointer manifests the
    corresponding failure. *)
type addr_expr =
  | Global of string          (** [&global] *)
  | Deref of expr * string    (** [e->field] *)
  | At of expr * expr         (** [e[i]] *)

type lock_id = string

type t =
  | Load of { dst : reg; src : addr_expr }
  | Store of { dst : addr_expr; src : expr }
  | Rmw of { ret : reg option; loc : addr_expr; delta : expr }
      (** atomic read-modify-write: [loc += delta], old value in [ret] *)
  | Assign of { dst : reg; src : expr }
  | Branch_if of { cond : expr; target : string }
  | Goto of string
  | Return
  | Nop
  | Alloc of { dst : reg; tag : string; fields : (string * expr) list;
               slots : int; leak_check : bool }
      (** kmalloc from slab cache [tag]; [slots > 0] adds an indexable
          array; [leak_check] reports the object if never freed *)
  | Free of { ptr : expr }  (** kfree; [kfree(NULL)] is a no-op *)
  | Lock of lock_id
  | Unlock of lock_id
  | Queue_work of { entry : string; arg : expr }
      (** enqueue deferred work executed by a kworkerd thread *)
  | Call_rcu of { entry : string; arg : expr }
  | Arm_timer of { entry : string; arg : expr }
  | Enable_irq of { entry : string; arg : expr }
      (** hardware interrupt: once enabled the handler may be injected
          at any point, racing with every other CPU's context *)
  | Bug_on of expr   (** BUG_ON(cond) *)
  | Warn_on of expr  (** WARN_ON(cond) *)
  | List_add of { list : addr_expr; item : expr }
  | List_del of { list : addr_expr; item : expr }
  | List_contains of { dst : reg; list : addr_expr; item : expr }
  | List_empty of { dst : reg; list : addr_expr }
  | List_first of { dst : reg; list : addr_expr }
  | Ref_get of { loc : addr_expr }
  | Ref_put of { ret : reg option; loc : addr_expr }

(** How an instruction touches its (single) shared location. *)
type access_kind = Read | Write | Update

val access_kind : t -> access_kind option
(** [None] for control and register-only instructions. *)

val pp_access_kind : access_kind Fmt.t
val pp_expr : expr Fmt.t
val pp_addr_expr : addr_expr Fmt.t
val pp : t Fmt.t
val to_string : t -> string
