(** Failure taxonomy: every symptom appearing in the paper's Tables 2
    and 3, plus the watchdog symptom for hangs. *)

type t =
  | Null_dereference of { at : Access.Iid.t }
  | Use_after_free of { at : Access.Iid.t; obj : Value.obj_id; tag : string;
                        kind : Instr.access_kind;
                        freed_at : Access.Iid.t option }
  | Out_of_bounds of { at : Access.Iid.t; obj : Value.obj_id; tag : string;
                       index : int; size : int }
  | Double_free of { at : Access.Iid.t; obj : Value.obj_id; tag : string }
  | Invalid_free of { at : Access.Iid.t }
  | Assertion_violation of { at : Access.Iid.t }  (** BUG_ON *)
  | Warning of { at : Access.Iid.t }              (** WARN_ON / refcount *)
  | General_protection_fault of { at : Access.Iid.t }
  | List_corruption of { at : Access.Iid.t; reason : string }
  | Memory_leak of { objs : (Value.obj_id * string) list }
  | Watchdog of { after_steps : int }

val location : t -> Access.Iid.t option
(** The faulting instruction a crash report points at; leaks and
    watchdogs have none. *)

val symptom : t -> string
(** The crash-report headline, e.g. ["KASAN: use-after-free"]. *)

val same_bug : t -> t -> bool
(** Same symptom class and faulting label: the reproduction criterion. *)

val pp : t Fmt.t
val to_string : t -> string
