(** Dynamic memory-access events and the conflict predicate. *)

(** Dynamic instruction identity: (thread, static label, occurrence),
    so the same static instruction executed twice in a loop yields two
    distinct identities. *)
module Iid : sig
  type t = {
    tid : int;       (** thread id within the machine *)
    label : string;  (** static instruction label *)
    occ : int;       (** 1-based execution count of [label] in [tid] *)
  }

  val make : tid:int -> label:string -> occ:int -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int

  val pp : t Fmt.t
  (** Short form: [label] (with [#occ] only when > 1). *)

  val pp_full : t Fmt.t
  (** Full form: [t<tid>:<label>#<occ>]. *)

  val to_string : t -> string
end

type t = {
  iid : Iid.t;
  addr : Addr.t;
  kind : Instr.access_kind;
  time : int;  (** global machine clock when the access executed *)
  held : string list;  (** locks the thread held while accessing *)
}

val commonly_locked : t -> t -> bool
(** Both ends hold a common lock: not a data race in the LKMM/KCSAN
    sense, but an unintended critical-section order (§3.4). *)

val is_write : t -> bool

val conflicting : t -> t -> bool
(** Conflicting memory accesses per the Linux kernel memory model: same
    (overlapping) location, different threads, at least one store. *)

val pp : t Fmt.t
