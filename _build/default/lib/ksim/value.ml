(* Runtime values of the kernel simulator.

   A pointer carries the identity of the heap object (or global region) it
   points into together with the allocation generation, so that the
   sanitizer can tell a dangling pointer from a fresh one even when the
   allocator reuses object slots. *)

type obj_id = int

type ptr = {
  obj : obj_id;  (* heap object identity *)
  gen : int;     (* allocation generation of [obj] when the pointer was made *)
}

type t =
  | Int of int
  | Ptr of ptr
  | Null
  | List of ptr list  (* a kernel list head: the members, front first *)

let null = Null
let int n = Int n
let ptr ~obj ~gen = Ptr { obj; gen }

let is_null = function
  | Null | Int 0 -> true
  | Int _ | Ptr _ | List _ -> false

(* Kernel C treats any non-zero value as true; an empty list head is a
   valid (true) pointer to itself. *)
let truthy = function
  | Null -> false
  | Int 0 -> false
  | Int _ | Ptr _ | List _ -> true

let ptr_equal p q = p.obj = q.obj && p.gen = q.gen

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Ptr p, Ptr q -> ptr_equal p q
  | Null, Null -> true
  | (Null | Int 0), (Null | Int 0) -> true
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 ptr_equal xs ys
  | (Int _ | Ptr _ | Null | List _), _ -> false

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Ptr p -> Fmt.pf ppf "&obj%d.g%d" p.obj p.gen
  | Null -> Fmt.string ppf "NULL"
  | List ps ->
    Fmt.pf ppf "[%a]"
      (Fmt.list ~sep:(Fmt.any "; ") (fun ppf p -> Fmt.pf ppf "obj%d" p.obj))
      ps

let to_string v = Fmt.str "%a" pp v
