lib/ksim/failure.ml: Access Fmt Instr String Value
