lib/ksim/addr.ml: Fmt Hashtbl Int Map Set String Value
