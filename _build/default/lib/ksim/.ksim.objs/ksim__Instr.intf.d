lib/ksim/instr.mli: Fmt Value
