lib/ksim/heap.mli: Access Failure Instr Value
