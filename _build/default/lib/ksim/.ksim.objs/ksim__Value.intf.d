lib/ksim/value.mli: Fmt
