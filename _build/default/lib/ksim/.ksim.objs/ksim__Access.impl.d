lib/ksim/access.ml: Addr Fmt Instr Int List String
