lib/ksim/instr.ml: Fmt Value
