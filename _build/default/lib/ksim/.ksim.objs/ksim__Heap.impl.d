lib/ksim/heap.ml: Access Failure Int List Map Value
