lib/ksim/kcov.ml: Access Addr Fmt Instr List Machine Map Option String
