lib/ksim/access.mli: Addr Fmt Instr
