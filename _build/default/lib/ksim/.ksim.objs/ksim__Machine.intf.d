lib/ksim/machine.mli: Access Addr Failure Instr Program Value
