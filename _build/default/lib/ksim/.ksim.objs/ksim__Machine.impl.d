lib/ksim/machine.ml: Access Addr Failure Fmt Heap Instr Int List Map Option Program String Value
