lib/ksim/kcov.mli: Addr Fmt Instr Machine Map String
