lib/ksim/value.ml: Fmt List
