lib/ksim/failure.mli: Access Fmt Instr Value
