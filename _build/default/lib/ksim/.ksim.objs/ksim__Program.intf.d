lib/ksim/program.mli: Fmt Instr Value
