lib/ksim/addr.mli: Fmt Map Set Value
