lib/ksim/program.ml: Array Fmt Hashtbl Instr List Value
