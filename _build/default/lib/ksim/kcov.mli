(** Coverage and memory-access instrumentation over executed traces —
    the kcov + disassembly role of the paper (§4.3): it tells AITIA
    which instruction sites access which locations, across runs. *)

type trace = Machine.event list

type site = {
  site_thread : string;  (** stable thread identity (spec/entry name) *)
  site_label : string;   (** static instruction label *)
}

val site_compare : site -> site -> int
val pp_site : site Fmt.t

module Site_map : Map.S with type key = site

type db
(** The cross-run access database: which addresses each instruction site
    has been seen to access, and the reverse index. *)

val empty : db

val add_event : thread_base:(int -> string) -> db -> Machine.event -> db
val add_trace : thread_base:(int -> string) -> db -> trace -> db
(** [thread_base] maps dynamic thread ids to stable names (see
    {!Machine.thread_base}). *)

val accessors : db -> Addr.t -> (site * Instr.access_kind) list
(** Sites known to access [addr] or an overlapping location. *)

val has_conflict :
  db -> site:site -> addr:Addr.t -> kind:Instr.access_kind -> bool
(** Does some other thread's site conflict with an access by [site]? *)

val sites : db -> site list

val coverage :
  trace list -> thread_base:(int -> string) -> int Map.Make(String).t
(** Distinct labels executed per thread base name. *)
