(* Dynamic memory-access events and the conflict predicate.

   Instruction identity follows the paper: a dynamic instruction is a
   (thread, static label, occurrence) triple, so the same static
   instruction executed twice in a loop yields two distinct events. *)

module Iid = struct
  type t = {
    tid : int;       (* thread id within the machine *)
    label : string;  (* static instruction label *)
    occ : int;       (* 1-based execution count of [label] in [tid] *)
  }

  let make ~tid ~label ~occ = { tid; label; occ }

  let equal a b = a.tid = b.tid && a.occ = b.occ && String.equal a.label b.label

  let compare a b =
    let c = Int.compare a.tid b.tid in
    if c <> 0 then c
    else
      let c = String.compare a.label b.label in
      if c <> 0 then c else Int.compare a.occ b.occ

  let pp ppf { tid; label; occ } =
    if occ = 1 then Fmt.pf ppf "%s" label else Fmt.pf ppf "%s#%d" label occ;
    ignore tid

  let pp_full ppf { tid; label; occ } = Fmt.pf ppf "t%d:%s#%d" tid label occ
  let to_string i = Fmt.str "%a" pp_full i
end

type t = {
  iid : Iid.t;
  addr : Addr.t;
  kind : Instr.access_kind;
  time : int;  (* global machine clock when the access executed *)
  held : string list;  (* locks the thread held while accessing *)
}

(* Both ends hold a common lock: not a data race in the LKMM/KCSAN sense
   — an unintended critical-section order (§3.4). *)
let commonly_locked a b =
  List.exists (fun l -> List.mem l b.held) a.held

let is_write a =
  match a.kind with
  | Instr.Write | Instr.Update -> true
  | Instr.Read -> false

(* Conflicting memory accesses per the Linux kernel memory model: same
   (overlapping) location, different threads, at least one store.  Overlap
   rather than equality so that a [kfree] of an object conflicts with any
   access to its fields. *)
let conflicting a b =
  a.iid.Iid.tid <> b.iid.Iid.tid
  && Addr.overlaps a.addr b.addr
  && (is_write a || is_write b)

let pp ppf a =
  Fmt.pf ppf "%a %a %a" Iid.pp_full a.iid Instr.pp_access_kind a.kind Addr.pp
    a.addr
