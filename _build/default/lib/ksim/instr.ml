(* The instruction set executed by the kernel simulator.

   Design constraint: every shared-memory access is its own instruction, so
   AITIA can reason about interleavings at the granularity the paper uses
   (one racing access = one instruction). Expressions are therefore pure
   over thread-local registers and constants; [Load]/[Store] are the only
   way to touch shared memory, and the composite kernel primitives
   (list/refcount ops) each access exactly one location. *)

type reg = string

(* Pure expressions over registers. *)
type expr =
  | Const of Value.t
  | Reg of reg
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | Gt of expr * expr
  | Ge of expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr

(* Address expressions: where a load/store goes.  [Deref]s base must
   evaluate to a pointer at runtime; NULL or a stale generation is a
   failure the machine detects. *)
type addr_expr =
  | Global of string          (* &global *)
  | Deref of expr * string    (* e->field *)
  | At of expr * expr         (* e[i] *)

type lock_id = string

type t =
  | Load of { dst : reg; src : addr_expr }
  | Store of { dst : addr_expr; src : expr }
  (* Atomic read-modify-write of one location: dst := f(old); returns old
     in [ret] if given.  Models atomic_inc/dec, xchg, test_and_set. *)
  | Rmw of { ret : reg option; loc : addr_expr; delta : expr }
  | Assign of { dst : reg; src : expr }
  | Branch_if of { cond : expr; target : string }   (* if cond goto target *)
  | Goto of string
  | Return                                          (* end the thread *)
  | Nop
  (* Heap. [fields] lists field names initialized to the given values;
     [slots] > 0 additionally creates an indexable array of that size. *)
  | Alloc of { dst : reg; tag : string; fields : (string * expr) list;
               slots : int; leak_check : bool }
  | Free of { ptr : expr }
  (* Locking. *)
  | Lock of lock_id
  | Unlock of lock_id
  (* Kernel background-thread machinery: enqueue a deferred work item /
     RCU callback / timer.  [entry] names a program registered in the
     group; [arg] is passed in register "arg" of the new thread. *)
  | Queue_work of { entry : string; arg : expr }
  | Call_rcu of { entry : string; arg : expr }
  | Arm_timer of { entry : string; arg : expr }
  (* Hardware interrupt: once enabled, the handler may be injected at
     any point, racing with every other CPU's context (paper Sec. 4.6). *)
  | Enable_irq of { entry : string; arg : expr }
  (* Failure-manifesting checks. *)
  | Bug_on of expr          (* BUG_ON(cond): fail if cond is true *)
  | Warn_on of expr         (* WARN_ON(cond): warning failure if true *)
  (* Kernel linked lists: each op is a single access to the list-head
     location (write for add/del, read for contains into [dst]). *)
  | List_add of { list : addr_expr; item : expr }
  | List_del of { list : addr_expr; item : expr }
  | List_contains of { dst : reg; list : addr_expr; item : expr }
  | List_empty of { dst : reg; list : addr_expr }
  | List_first of { dst : reg; list : addr_expr }  (* head or NULL *)
  (* Reference counting: a single read-modify-write access; underflow and
     use of a zero refcount manifest as refcount warnings. *)
  | Ref_get of { loc : addr_expr }
  | Ref_put of { ret : reg option; loc : addr_expr }

(* Classification used when instrumenting memory accesses. *)
type access_kind = Read | Write | Update

let pp_access_kind ppf = function
  | Read -> Fmt.string ppf "R"
  | Write -> Fmt.string ppf "W"
  | Update -> Fmt.string ppf "RW"

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Reg r -> Fmt.string ppf r
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_expr a pp_expr b
  | Eq (a, b) -> Fmt.pf ppf "(%a == %a)" pp_expr a pp_expr b
  | Ne (a, b) -> Fmt.pf ppf "(%a != %a)" pp_expr a pp_expr b
  | Lt (a, b) -> Fmt.pf ppf "(%a < %a)" pp_expr a pp_expr b
  | Le (a, b) -> Fmt.pf ppf "(%a <= %a)" pp_expr a pp_expr b
  | Gt (a, b) -> Fmt.pf ppf "(%a > %a)" pp_expr a pp_expr b
  | Ge (a, b) -> Fmt.pf ppf "(%a >= %a)" pp_expr a pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_expr a pp_expr b
  | Not a -> Fmt.pf ppf "!%a" pp_expr a
  | Is_null a -> Fmt.pf ppf "(%a == NULL)" pp_expr a

let pp_addr_expr ppf = function
  | Global g -> Fmt.pf ppf "&%s" g
  | Deref (e, f) -> Fmt.pf ppf "%a->%s" pp_expr e f
  | At (e, i) -> Fmt.pf ppf "%a[%a]" pp_expr e pp_expr i

let pp ppf = function
  | Load { dst; src } -> Fmt.pf ppf "%s = *%a" dst pp_addr_expr src
  | Store { dst; src } -> Fmt.pf ppf "*%a = %a" pp_addr_expr dst pp_expr src
  | Rmw { ret; loc; delta } ->
    Fmt.pf ppf "%srmw(%a, %a)"
      (match ret with Some r -> r ^ " = " | None -> "")
      pp_addr_expr loc pp_expr delta
  | Assign { dst; src } -> Fmt.pf ppf "%s = %a" dst pp_expr src
  | Branch_if { cond; target } ->
    Fmt.pf ppf "if %a goto %s" pp_expr cond target
  | Goto l -> Fmt.pf ppf "goto %s" l
  | Return -> Fmt.string ppf "return"
  | Nop -> Fmt.string ppf "nop"
  | Alloc { dst; tag; _ } -> Fmt.pf ppf "%s = kmalloc<%s>()" dst tag
  | Free { ptr } -> Fmt.pf ppf "kfree(%a)" pp_expr ptr
  | Lock l -> Fmt.pf ppf "lock(%s)" l
  | Unlock l -> Fmt.pf ppf "unlock(%s)" l
  | Queue_work { entry; _ } -> Fmt.pf ppf "queue_work(%s)" entry
  | Call_rcu { entry; _ } -> Fmt.pf ppf "call_rcu(%s)" entry
  | Arm_timer { entry; _ } -> Fmt.pf ppf "arm_timer(%s)" entry
  | Enable_irq { entry; _ } -> Fmt.pf ppf "enable_irq(%s)" entry
  | Bug_on e -> Fmt.pf ppf "BUG_ON(%a)" pp_expr e
  | Warn_on e -> Fmt.pf ppf "WARN_ON(%a)" pp_expr e
  | List_add { list; item } ->
    Fmt.pf ppf "list_add(%a, %a)" pp_expr item pp_addr_expr list
  | List_del { list; item } ->
    Fmt.pf ppf "list_del(%a, %a)" pp_expr item pp_addr_expr list
  | List_contains { dst; list; item } ->
    Fmt.pf ppf "%s = list_contains(%a, %a)" dst pp_expr item pp_addr_expr list
  | List_empty { dst; list } ->
    Fmt.pf ppf "%s = list_empty(%a)" dst pp_addr_expr list
  | List_first { dst; list } ->
    Fmt.pf ppf "%s = list_first(%a)" dst pp_addr_expr list
  | Ref_get { loc } -> Fmt.pf ppf "refcount_inc(%a)" pp_addr_expr loc
  | Ref_put { loc; _ } -> Fmt.pf ppf "refcount_dec(%a)" pp_addr_expr loc

let to_string i = Fmt.str "%a" pp i

(* Does this instruction (potentially) access shared memory, and how?
   Returns the access kind for the single location it touches.  Control
   and register-only instructions return [None]. *)
let access_kind = function
  | Load _ | List_contains _ | List_empty _ | List_first _ -> Some Read
  | Store _ | List_add _ | List_del _ -> Some Write
  | Rmw _ | Ref_get _ | Ref_put _ -> Some Update
  | Assign _ | Branch_if _ | Goto _ | Return | Nop | Alloc _ | Free _
  | Lock _ | Unlock _ | Queue_work _ | Call_rcu _ | Arm_timer _
  | Enable_irq _ | Bug_on _ | Warn_on _ -> None
