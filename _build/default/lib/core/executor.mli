(** Running schedules on a VM and harvesting what AITIA needs: the
    trace, access-database updates, and failure outcomes. *)

type run = {
  schedule_kind : [ `Preemption | `Plan ];
  outcome : Hypervisor.Controller.outcome;
}

val with_prologue :
  int list -> Hypervisor.Controller.policy -> Hypervisor.Controller.policy
(** Force resource-setup threads to run to completion, in order, before
    the policy takes over. *)

val run_preemption :
  ?max_steps:int -> ?prologue:int list -> Hypervisor.Vm.t ->
  Hypervisor.Schedule.preemption -> run

val run_plan :
  ?max_steps:int -> ?prologue:int list -> Hypervisor.Vm.t ->
  Hypervisor.Schedule.plan -> run

val learn : Ksim.Kcov.db -> run -> Ksim.Kcov.db
(** Fold the run's accesses into the cross-run database, keyed by stable
    thread base names. *)

val failed : run -> Ksim.Failure.t option
