(** Causality Analysis (§3.4).

    From the failure-causing instruction sequence, pop data races from
    the back, flip each one while keeping the other orders, and
    re-execute: a race whose flip averts the failure is a root cause; a
    race whose flip leaves the kernel failing is benign.  Flips of
    root-cause races that erase other root-cause races (race-steered
    control flows) yield causality edges.  Critical sections are flipped
    as units; a race surrounding a nested root cause is ambiguous. *)

type verdict = Root_cause | Benign

type tested = {
  race : Race.t;
  verdict : verdict;
  flip_outcome : Hypervisor.Controller.outcome;
  disappeared : Race.t list;
      (** test-set races absent from the surviving flipped run *)
  ambiguous : bool;
  enforced : bool;
      (** did the flipped order actually execute? (ablation metric) *)
}

type stats = {
  schedules : int;
  elapsed : float;
  simulated : float;
}

type result = {
  tested : tested list;           (** in testing order *)
  root_causes : Race.t list;      (** in trace order *)
  benign : Race.t list;
  edges : (Race.t * Race.t) list; (** (r1, r2): flipping r1 removes r2 *)
  ambiguous : Race.t list;
  stats : stats;
}

type section = {
  cs_tid : int;
  cs_lock : string;
  cs_start : int;
  cs_stop : int option;
}

val critical_sections : Ksim.Machine.event list -> section list

val flip_plan : Ksim.Machine.event list -> Race.t -> Hypervisor.Schedule.plan
(** The diagnosis schedule enforcing [second => first] while preserving
    the rest of the failing sequence: critical sections move as units,
    background threads' spawning instructions are hoisted along, pending
    second endpoints are inserted before the first. *)

val test_order :
  ?direction:[ `Backward | `Forward ] -> Race.t list -> Race.t list
(** Backward (latest second access first) by default, nested races
    always before the races surrounding them; [`Forward] exists for the
    ablation study. *)

val analyze :
  ?max_steps:int ->
  ?prologue:int list ->
  ?direction:[ `Backward | `Forward ] ->
  Hypervisor.Vm.t ->
  failing:Hypervisor.Controller.outcome ->
  races:Race.t list ->
  unit ->
  result
