lib/core/lifs.ml: Array Executor Fmt Fun Hashtbl Hypervisor Ksim List Logs Race String Unix
