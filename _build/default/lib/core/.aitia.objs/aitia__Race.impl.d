lib/core/race.ml: Fmt Hashtbl Int Ksim List Option String
