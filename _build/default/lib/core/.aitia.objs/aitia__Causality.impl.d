lib/core/causality.ml: Array Executor Hashtbl Hypervisor Int Ksim List Logs Option Race String Unix
