lib/core/diagnose.ml: Causality Chain Fmt Hypervisor Ksim Lifs List Logs Race String Trace
