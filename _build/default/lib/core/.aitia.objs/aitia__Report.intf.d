lib/core/report.mli: Causality Diagnose Fmt Ksim Lifs Race
