lib/core/race.mli: Fmt Ksim
