lib/core/executor.ml: Hypervisor Ksim List
