lib/core/chain.ml: Causality Fmt Int Ksim List Race String
