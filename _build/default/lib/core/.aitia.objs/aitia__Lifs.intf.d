lib/core/lifs.mli: Hypervisor Ksim Race
