lib/core/diagnose.mli: Causality Chain Ksim Lifs Trace
