lib/core/report.ml: Causality Chain Diagnose Fmt Ksim Lifs List Race Trace
