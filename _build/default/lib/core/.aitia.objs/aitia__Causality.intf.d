lib/core/causality.mli: Hypervisor Ksim Race
