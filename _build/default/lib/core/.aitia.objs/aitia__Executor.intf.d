lib/core/executor.mli: Hypervisor Ksim
