lib/core/chain.mli: Causality Fmt Ksim Race
