(* Data races over dynamic accesses, and their extraction from a trace.

   A race [first => second] is a pair of conflicting accesses with an
   observed (or to-be-enforced) execution order.  The test set of
   Causality Analysis is initialized with the races of the
   failure-causing instruction sequence (§3.4). *)

module Iid = Ksim.Access.Iid

type t = {
  first : Ksim.Access.t;
  second : Ksim.Access.t;
}

(* Races are identified by their dynamic endpoints and direction. *)
let key r =
  Fmt.str "%a=>%a@%a" Iid.pp_full r.first.iid Iid.pp_full r.second.iid
    Ksim.Addr.pp r.first.addr

let equal a b = String.equal (key a) (key b)

let addr r = r.first.addr

(* A lock-protected pair is not a data race in the KCSAN sense; flag it
   as the critical-section-order case it is (§3.4). *)
let is_cs_order r = Ksim.Access.commonly_locked r.first r.second

let pp ppf r =
  Fmt.pf ppf "%a(%a) => %a(%a)%s" Iid.pp_full r.first.iid Ksim.Addr.pp
    r.first.addr Iid.pp_full r.second.iid Ksim.Addr.pp r.second.addr
    (if is_cs_order r then " [critical-section order]" else "")

let pp_short ppf r =
  Fmt.pf ppf "%s => %s" r.first.iid.Iid.label r.second.iid.Iid.label

(* --- extraction from traces ------------------------------------------ *)

let accesses_of_trace (trace : Ksim.Machine.event list) : Ksim.Access.t list =
  List.filter_map (fun (e : Ksim.Machine.event) -> e.access) trace

(* The per-location access sequences of a trace.  A [Whole o] access
   (kfree) participates in the sequence of every location of object [o]
   that the trace touches, because it overlaps them all. *)
let location_sequences (accesses : Ksim.Access.t list) :
    (Ksim.Addr.t * Ksim.Access.t list) list =
  let exact =
    List.fold_left
      (fun m (a : Ksim.Access.t) ->
        Ksim.Addr.Map.update a.addr
          (fun l -> Some (a :: Option.value ~default:[] l))
          m)
      Ksim.Addr.Map.empty accesses
  in
  Ksim.Addr.Map.fold
    (fun addr seq acc ->
      let seq =
        match addr with
        | Ksim.Addr.Whole _ -> seq
        | _ ->
          (* Merge in overlapping Whole accesses from other locations. *)
          let wholes =
            List.filter
              (fun (a : Ksim.Access.t) ->
                (not (Ksim.Addr.equal a.addr addr))
                && Ksim.Addr.overlaps a.addr addr)
              accesses
          in
          wholes @ seq
      in
      let seq =
        List.sort
          (fun (a : Ksim.Access.t) b -> Int.compare a.time b.time)
          seq
      in
      (addr, seq) :: acc)
    exact []

(* All races of a trace.  Per location, each access [a] races with the
   first later access [b] that conflicts with it — unless an access by
   [a]'s own thread in between supersedes [a] (e.g. a later write to the
   same location: the race that matters is between that write and [b],
   not the stale [a]). *)
let of_trace (trace : Ksim.Machine.event list) : t list =
  let accesses = accesses_of_trace trace in
  let seen = Hashtbl.create 64 in
  let races = ref [] in
  let supersedes (a : Ksim.Access.t) (c : Ksim.Access.t)
      (b : Ksim.Access.t) =
    (* [c] lies between [a] and [b] in program order of [a]'s thread and
       itself conflicts with [b]: it shadows [a]. *)
    c.iid.Iid.tid = a.iid.Iid.tid && Ksim.Access.conflicting c b
  in
  List.iter
    (fun (_addr, seq) ->
      let rec scan = function
        | [] -> ()
        | a :: rest ->
          let rec first_conflict between = function
            | [] -> ()
            | b :: more ->
              if Ksim.Access.conflicting a b then (
                if not (List.exists (fun c -> supersedes a c b) between)
                then (
                  let r = { first = a; second = b } in
                  let k = key r in
                  if not (Hashtbl.mem seen k) then (
                    Hashtbl.add seen k ();
                    races := r :: !races)))
              else first_conflict (b :: between) more
          in
          first_conflict [] rest;
          scan rest
      in
      scan seq)
    (location_sequences accesses);
  (* Order by the position (time) of the second access: the natural
     backward-processing order is the reverse of this. *)
  List.sort (fun a b -> Int.compare a.second.time b.second.time) !races

(* Races whose second access did not execute because the failure halted
   the machine: for the last access of each location in the failing
   trace, consult the cross-run access database for conflicting
   instructions of other threads that had not yet executed (e.g. the
   B17 => A12 race of Figure 6: the BUG_ON fired before A12 ran). *)
let pending_of_failure ~(db : Ksim.Kcov.db) ~(final : Ksim.Machine.t)
    (trace : Ksim.Machine.event list) : t list =
  let accesses = accesses_of_trace trace in
  let thread_of_base base =
    List.find_opt
      (fun tid -> String.equal (Ksim.Machine.thread_base final tid) base)
      (Ksim.Machine.thread_ids final)
  in
  let executed_labels tid label =
    Ksim.Machine.occurrences final tid label
  in
  let pend (last : Ksim.Access.t) =
    Ksim.Kcov.accessors db last.addr
    |> List.filter_map (fun ((site : Ksim.Kcov.site), kind) ->
           match thread_of_base site.site_thread with
           | None -> None
           | Some tid ->
             if tid = last.iid.Iid.tid then None
             else if kind = Ksim.Instr.Read && not (Ksim.Access.is_write last)
             then None
             else if executed_labels tid site.site_label > 0 then None
             else if Ksim.Machine.is_done final tid then None
             else
               let iid =
                 Iid.make ~tid ~label:site.site_label ~occ:1
               in
               Some
                 { first = last;
                   second =
                     { Ksim.Access.iid; addr = last.addr; kind;
                       time = last.time + 1; held = [] } })
  in
  match List.rev trace with
  | [] -> []
  | _ ->
    let seen = Hashtbl.create 16 in
    location_sequences accesses
    |> List.concat_map (fun (_addr, seq) ->
           match List.rev seq with
           | [] -> []
           | last :: _ -> pend last)
    |> List.filter (fun r ->
           let k = key r in
           if Hashtbl.mem seen k then false
           else (
             Hashtbl.add seen k ();
             true))

(* --- structural relations used by Causality Analysis ------------------ *)

(* [surrounds outer inner]: flipping [outer] cannot preserve [inner]'s
   order (Figure 7).  This happens when [inner.second] precedes
   [outer.second] in the same thread and [outer.first] precedes
   [inner.first] in the same thread: enforcing outer.second before
   outer.first then forces inner.second before inner.first too. *)
let surrounds outer inner =
  (not (equal outer inner))
  && inner.second.iid.Iid.tid = outer.second.iid.Iid.tid
  && inner.second.time < outer.second.time
  && inner.first.iid.Iid.tid = outer.first.iid.Iid.tid
  && outer.first.time < inner.first.time

(* Did [r] occur in [trace] — both endpoints executed, in the race's
   order?  An inverted pair is a different interleaving order, hence a
   different race, so it does not count as an occurrence of [r]. *)
let occurred_in (trace : Ksim.Machine.event list) r =
  let index iid =
    let rec go i = function
      | [] -> None
      | (e : Ksim.Machine.event) :: rest ->
        if Iid.equal e.iid iid then Some i else go (i + 1) rest
    in
    go 0 trace
  in
  match index r.first.iid, index r.second.iid with
  | Some i, Some j -> i < j
  | None, _ | _, None -> false
