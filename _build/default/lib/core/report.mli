(** Human-readable diagnosis reports with instruction-level information
    (function names and line numbers of the modeled kernel source). *)

val pp_lifs_stats : Lifs.stats Fmt.t
val pp_ca_stats : Causality.stats Fmt.t

val locate : Diagnose.case -> Ksim.Access.Iid.t -> Ksim.Program.loc option
(** Source location of an instruction in the case's programs. *)

val pp_race_with_source : Diagnose.case -> Race.t Fmt.t
val pp : Diagnose.report Fmt.t
val to_string : Diagnose.report -> string
