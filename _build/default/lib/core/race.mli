(** Data races over dynamic accesses, and their extraction from traces.

    A race [first => second] is a pair of conflicting accesses with an
    observed (or to-be-enforced) execution order; the test set of
    Causality Analysis is initialized with the races of the
    failure-causing instruction sequence (§3.4). *)

module Iid = Ksim.Access.Iid

type t = {
  first : Ksim.Access.t;
  second : Ksim.Access.t;
}

val key : t -> string
(** Identity: endpoints + direction + location. *)

val equal : t -> t -> bool
val addr : t -> Ksim.Addr.t

val is_cs_order : t -> bool
(** Both endpoints hold a common lock: an unintended critical-section
    order rather than a data race (a KCSAN-style detector would never
    flag it; Causality Analysis diagnoses it anyway, §3.4). *)

val pp : t Fmt.t
val pp_short : t Fmt.t  (** [A6 => B12] *)

val accesses_of_trace : Ksim.Machine.event list -> Ksim.Access.t list

val location_sequences :
  Ksim.Access.t list -> (Ksim.Addr.t * Ksim.Access.t list) list
(** Per-location access sequences, time-sorted; a [Whole] access (kfree)
    joins the sequence of every location of its object. *)

val of_trace : Ksim.Machine.event list -> t list
(** Per location, each access races with the first later conflicting
    access — unless a later access by its own thread supersedes it.
    Sorted by the position of the second access. *)

val pending_of_failure :
  db:Ksim.Kcov.db -> final:Ksim.Machine.t -> Ksim.Machine.event list ->
  t list
(** Races whose second access did not execute because the failure halted
    the machine, derived from the cross-run access database — e.g. the
    B17 => A12 race of Figure 6. *)

val surrounds : t -> t -> bool
(** [surrounds outer inner]: flipping [outer] cannot preserve [inner]'s
    order (Figure 7's nested-race geometry). *)

val occurred_in : Ksim.Machine.event list -> t -> bool
(** Both endpoints executed, in the race's order.  An inverted pair is a
    different interleaving order, hence not an occurrence. *)
