lib/trace/history.ml: Crash Event Float Fmt Hashtbl Ksim List
