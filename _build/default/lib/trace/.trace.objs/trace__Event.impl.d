lib/trace/event.ml: Fmt Ksim
