lib/trace/slicer.ml: Array Crash Float Fmt Fun Hashtbl History List Option
