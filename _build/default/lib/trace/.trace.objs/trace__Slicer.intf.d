lib/trace/slicer.mli: Fmt History
