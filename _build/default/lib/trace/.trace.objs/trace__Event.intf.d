lib/trace/event.mli: Fmt Ksim
