lib/trace/history.mli: Crash Event Fmt Ksim
