lib/trace/crash.mli: Fmt Ksim
