lib/trace/crash.ml: Fmt Ksim Option String
