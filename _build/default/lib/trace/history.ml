(* The execution history: a time-ordered event log plus the crash report.

   AITIA splits the history into groups of concurrently executed threads
   (slices); a thread here is a system call or a kernel background
   thread (§4.2, footnote 2). *)

type t = {
  events : Event.t list;  (* ascending by time *)
  crash : Crash.t;
}

let make ~events ~crash =
  let events =
    List.sort (fun (a : Event.t) b -> Float.compare a.time b.time) events
  in
  { events; crash }

let events t = t.events
let crash t = t.crash

(* An episode is one thread's active interval: a syscall between its
   enter and exit, or a background thread between invocation and
   completion. *)
type episode = {
  thread : string;             (* thread or entry name *)
  call : string;               (* syscall or work-function name *)
  start : float;
  stop : float;                (* +inf if no exit was recorded (crashed) *)
  resources : string list;
  context : Ksim.Program.context;
  source : string option;      (* who invoked a background thread *)
}

let pp_episode ppf e =
  Fmt.pf ppf "%s:%s [%g, %g)" e.thread e.call e.start e.stop

(* Pair up enter/exit (and invoke/done) events into episodes. *)
let episodes t : episode list =
  let open Event in
  let pending : (string, episode) Hashtbl.t = Hashtbl.create 16 in
  let finished = ref [] in
  let close key stop =
    match Hashtbl.find_opt pending key with
    | Some ep ->
      Hashtbl.remove pending key;
      finished := { ep with stop } :: !finished
    | None -> ()
  in
  List.iter
    (fun ev ->
      match ev.kind with
      | Syscall_enter { call; thread; resources } ->
        Hashtbl.replace pending thread
          { thread; call; start = ev.time; stop = infinity; resources;
            context = Ksim.Program.Syscall { call; sysno = 0 };
            source = None }
      | Syscall_exit { thread; _ } -> close thread ev.time
      | Kthread_invoked { entry; source; context } ->
        Hashtbl.replace pending entry
          { thread = entry; call = entry; start = ev.time; stop = infinity;
            resources = []; context; source = Some source }
      | Kthread_done { entry } -> close entry ev.time)
    t.events;
  Hashtbl.iter (fun _ ep -> finished := ep :: !finished) pending;
  List.sort (fun a b -> Float.compare a.start b.start) !finished

let overlap a b = a.start < b.stop && b.start < a.stop
