(* Slice construction (§4.2).

   A slice is a group of concurrently executed threads.  AITIA creates
   slices backward from the failure point (the root cause is likely close
   to the failure), keeps cross-syscall semantics by pulling in the
   open()/close() of any file descriptor used inside the slice, and
   splits slices containing concurrent events so that each has at most
   three threads (failures involving more than four contexts are rare,
   footnote 3). *)

type t = {
  episodes : History.episode list;  (* the concurrent threads to replay *)
  setup : History.episode list;     (* resource-closure prefix, run first *)
  distance_from_failure : int;      (* 0 = the group containing the crash *)
}

let max_threads_per_slice = 3

let threads t = List.map (fun (e : History.episode) -> e.thread) t.episodes

let pp ppf t =
  Fmt.pf ppf "slice@%d {%a}%a" t.distance_from_failure
    (Fmt.list ~sep:Fmt.comma History.pp_episode)
    t.episodes
    (fun ppf -> function
      | [] -> ()
      | setup ->
        Fmt.pf ppf " setup {%a}"
          (Fmt.list ~sep:Fmt.comma History.pp_episode)
          setup)
    t.setup

(* Group episodes into maximal sets of pairwise-overlapping intervals
   (connected components of the temporal-overlap graph). *)
let concurrency_groups (eps : History.episode list) :
    History.episode list list =
  let n = List.length eps in
  let arr = Array.of_list eps in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if History.overlap arr.(i) arr.(j) then union i j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i ep ->
      let r = find i in
      Hashtbl.replace groups r (ep :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    arr;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []
  |> List.sort (fun a b ->
         let start g =
           List.fold_left (fun m (e : History.episode) -> Float.min m e.start)
             infinity g
         in
         Float.compare (start a) (start b))

(* All combinations of [k] elements, preserving order. *)
let rec choose k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
      List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

(* Episodes that set up resources used by [group]: open/close-style calls
   on the same resource that finished before the group started. *)
let resource_closure (all : History.episode list)
    (group : History.episode list) =
  let used =
    List.concat_map (fun (e : History.episode) -> e.resources) group
  in
  let group_start =
    List.fold_left (fun m (e : History.episode) -> Float.min m e.start)
      infinity group
  in
  List.filter
    (fun (e : History.episode) ->
      e.stop <= group_start
      && (not (List.memq e group))
      && List.exists (fun r -> List.mem r used) e.resources)
    all

(* Build candidate slices, nearest-to-failure first. *)
let slices (history : History.t) : t list =
  let eps = History.episodes history in
  let crash_time = (History.crash history).Crash.report_time in
  let groups =
    concurrency_groups eps
    (* Backward from the failure point: sort groups by how close their
       end is to the crash, descending. *)
    |> List.map (fun g ->
           let stop =
             List.fold_left
               (fun m (e : History.episode) ->
                 Float.max m (Float.min e.stop crash_time))
               neg_infinity g
           in
           (stop, g))
    |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
    |> List.map snd
  in
  let mk distance group =
    { episodes = group;
      setup = resource_closure eps group;
      distance_from_failure = distance }
  in
  List.concat
    (List.mapi
       (fun distance group ->
         if List.length group <= max_threads_per_slice then
           [ mk distance group ]
         else
           (* Split an over-wide group into all 3-thread sub-slices;
              keep sub-slices containing the latest episode first. *)
           choose max_threads_per_slice group |> List.map (mk distance))
       groups)
