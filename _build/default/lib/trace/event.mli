(** Timestamped kernel events, as obtained from ftrace in the paper
    (§4.2): executed system calls and invocations of kernel background
    threads, with fine-grained timestamps that make concurrency
    identifiable. *)

type kind =
  | Syscall_enter of {
      call : string;
      thread : string;
      resources : string list;  (** fds/sockets the call touches *)
    }
  | Syscall_exit of { call : string; thread : string }
  | Kthread_invoked of {
      entry : string;
      source : string;                 (** invoking thread *)
      context : Ksim.Program.context;  (** kworkerd / RCU / timer *)
    }
  | Kthread_done of { entry : string }

type t = {
  time : float;
  kind : kind;
}

val time : t -> float
val thread_of : t -> string option

val pp_kind : kind Fmt.t
val pp : t Fmt.t
