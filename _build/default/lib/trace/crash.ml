(* Crash reports: the coredump-derived failure information AITIA starts
   from.  Modeling identifies the symptom of the failure and its
   location (§4.2). *)

type t = {
  symptom : string;            (* e.g. "KASAN: use-after-free" *)
  location : string option;    (* faulting instruction label, if any *)
  subsystem : string;          (* e.g. "Packet socket" *)
  report_time : float;         (* when the crash was observed *)
}

let of_failure ~subsystem ~report_time (f : Ksim.Failure.t) =
  { symptom = Ksim.Failure.symptom f;
    location =
      Option.map (fun (i : Ksim.Access.Iid.t) -> i.label)
        (Ksim.Failure.location f);
    subsystem;
    report_time }

(* Does a failure observed during reproduction match this report?  The
   modeling stage compares symptom class and faulting location. *)
let matches t (f : Ksim.Failure.t) =
  String.equal t.symptom (Ksim.Failure.symptom f)
  &&
  match t.location, Ksim.Failure.location f with
  | Some l, Some at -> String.equal l at.Ksim.Access.Iid.label
  | None, None -> true
  | Some _, None | None, Some _ -> false

let pp ppf t =
  Fmt.pf ppf "%s in %s%a" t.symptom t.subsystem
    (Fmt.option (fun ppf l -> Fmt.pf ppf " at %s" l))
    t.location
