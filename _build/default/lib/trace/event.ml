(* Timestamped kernel events, as obtained from ftrace in the paper.

   The execution history consists of executed system calls with their
   parameters and kernel events such as invocations of kernel background
   threads, with the source of the invocation; all entries carry a
   fine-grained timestamp so concurrency is identifiable (§4.2). *)

type kind =
  | Syscall_enter of {
      call : string;            (* e.g. "setsockopt" *)
      thread : string;          (* user thread name, e.g. "A" *)
      resources : string list;  (* fds / socket ids the call touches *)
    }
  | Syscall_exit of { call : string; thread : string }
  | Kthread_invoked of {
      entry : string;                  (* work-function name *)
      source : string;                 (* invoking thread *)
      context : Ksim.Program.context;  (* kworkerd / RCU / timer *)
    }
  | Kthread_done of { entry : string }

type t = {
  time : float;  (* seconds, fine-grained *)
  kind : kind;
}

let time e = e.time

let thread_of e =
  match e.kind with
  | Syscall_enter { thread; _ } | Syscall_exit { thread; _ } -> Some thread
  | Kthread_invoked { entry; _ } | Kthread_done { entry } -> Some entry

let pp_kind ppf = function
  | Syscall_enter { call; thread; resources } ->
    Fmt.pf ppf "enter %s [%s]%a" call thread
      (fun ppf -> function
        | [] -> ()
        | rs -> Fmt.pf ppf " res=%a" (Fmt.list ~sep:Fmt.comma Fmt.string) rs)
      resources
  | Syscall_exit { call; thread } -> Fmt.pf ppf "exit %s [%s]" call thread
  | Kthread_invoked { entry; source; context } ->
    Fmt.pf ppf "invoke %s (%a) from %s" entry Ksim.Program.pp_context context
      source
  | Kthread_done { entry } -> Fmt.pf ppf "done %s" entry

let pp ppf e = Fmt.pf ppf "%8.6f %a" e.time pp_kind e.kind
