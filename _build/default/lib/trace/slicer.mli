(** Slice construction (§4.2): groups of concurrently executed threads,
    built backward from the failure point, closed over resource
    open/close semantics, and split to at most three threads each. *)

type t = {
  episodes : History.episode list;  (** the concurrent threads *)
  setup : History.episode list;     (** resource-closure prefix *)
  distance_from_failure : int;      (** 0 = the group nearest the crash *)
}

val max_threads_per_slice : int

val threads : t -> string list
val pp : t Fmt.t

val concurrency_groups : History.episode list -> History.episode list list
(** Connected components of the temporal-overlap graph. *)

val slices : History.t -> t list
(** Candidate slices, nearest-to-failure first; over-wide groups are
    split into all [max_threads_per_slice]-subsets. *)
