(** Crash reports: the coredump-derived failure information AITIA
    starts from — a symptom and a faulting location (§4.2). *)

type t = {
  symptom : string;          (** e.g. ["KASAN: use-after-free"] *)
  location : string option;  (** faulting instruction label, if any *)
  subsystem : string;
  report_time : float;
}

val of_failure :
  subsystem:string -> report_time:float -> Ksim.Failure.t -> t

val matches : t -> Ksim.Failure.t -> bool
(** Does a failure observed during reproduction match this report?
    Symptom class and faulting location must agree. *)

val pp : t Fmt.t
