(** The execution history: a time-ordered event log plus the crash
    report.  A thread is a system call or a kernel background thread
    (§4.2). *)

type t

val make : events:Event.t list -> crash:Crash.t -> t
(** Events are sorted by timestamp. *)

val events : t -> Event.t list
val crash : t -> Crash.t

(** One thread's active interval. *)
type episode = {
  thread : string;
  call : string;
  start : float;
  stop : float;           (** [infinity] if never closed (crashed) *)
  resources : string list;
  context : Ksim.Program.context;
  source : string option;  (** who invoked a background thread *)
}

val pp_episode : episode Fmt.t

val episodes : t -> episode list
(** Pair up enter/exit (and invoke/done) events, sorted by start time. *)

val overlap : episode -> episode -> bool
